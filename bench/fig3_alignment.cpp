// Figure 3 + Theorems 3 and 9 reproduction: the constructed worst-case
// warp inputs.  Renders the paper's two depicted instances (w=16, E=7 and
// E=9), then sweeps every co-prime E for w in {16, 32, 64}, comparing the
// construction's aligned count against the closed forms, and prints the
// Sec. III-C small-vs-large trade-off table.

#include <iostream>

#include "core/conflict_model.hpp"
#include "core/numbers.hpp"
#include "core/warp_construction.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;
  using core::ERegime;

  std::cout << "=== Figure 3 (left): w=16, E=7, small-E construction ===\n\n";
  std::cout << core::render_warp(core::worst_case_warp(16, 7)) << '\n';
  std::cout << "=== Figure 3 (right): w=16, E=9, large-E construction ===\n\n";
  std::cout << core::render_warp(core::worst_case_warp(16, 9)) << '\n';

  std::cout << "=== Theorems 3 & 9: aligned elements for every co-prime E "
               "===\n\n";
  bool all_match = true;
  for (const u32 w : {16u, 32u, 64u}) {
    Table t({"w", "E", "regime", "aligned", "closed_form", "match",
             "beta2", "eff_parallelism"});
    for (u32 e = 3; e < w; e += 2) {
      const auto regime = core::classify_e(w, e);
      if (regime != ERegime::small && regime != ERegime::large) {
        continue;
      }
      const auto wa = core::worst_case_warp(w, e);
      const auto eval =
          core::evaluate_warp(wa, core::alignment_window_start(w, e));
      const u64 closed = core::aligned_worst_case(w, e);
      all_match = all_match && eval.aligned == closed;
      t.new_row()
          .add(static_cast<std::size_t>(w))
          .add(static_cast<std::size_t>(e))
          .add(regime == ERegime::small ? "small" : "large")
          .add(eval.aligned)
          .add(static_cast<unsigned long long>(closed))
          .add(eval.aligned == closed ? "yes" : "NO")
          .add(core::predicted_beta2(w, e), 2)
          .add(static_cast<unsigned long long>(
              core::effective_parallelism(w, e)));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== Sec. III-C trade-off: total conflicts, small vs large E "
               "(w = 32) ===\n\n";
  Table trade({"E", "aligned_total", "w^2/4", "w^2/2"});
  for (u32 e = 3; e < 32; e += 2) {
    const auto regime = core::classify_e(32, e);
    if (regime != ERegime::small && regime != ERegime::large) {
      continue;
    }
    trade.new_row()
        .add(static_cast<std::size_t>(e))
        .add(static_cast<unsigned long long>(core::aligned_worst_case(32, e)))
        .add(static_cast<std::size_t>(32 * 32 / 4))
        .add(static_cast<std::size_t>(32 * 32 / 2));
  }
  trade.print(std::cout);
  maybe_export_csv(trade, "fig3_tradeoff");

  std::cout << "\nshape checks:\n"
            << "  paper Fig. 3 left  (w=16,E=7):  49 aligned (E^2) — "
            << (core::aligned_worst_case(16, 7) == 49 ? "ok" : "MISMATCH")
            << '\n'
            << "  paper Fig. 3 right (w=16,E=9):  80 aligned — "
            << (core::aligned_worst_case(16, 9) == 80 ? "ok" : "MISMATCH")
            << '\n'
            << "  construction == closed form for every (w, E): "
            << (all_match ? "ok" : "MISMATCH") << '\n'
            << "  small E tops out at w^2/4; large E approaches w^2/2 as E "
               "-> w (see table).\n";
  return 0;
}
