// Figure 1 reproduction: alignment of *sorted* data for a single warp,
// w = 16, E = 12, gcd(w, E) = 4 — every d-th chunk of E elements is
// aligned.  Regenerates the depicted bank matrix and the aligned counts
// for a gcd sweep (Sec. III "Considered values of E").

#include <iostream>

#include "core/warp_construction.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;

  std::cout << "=== Figure 1: sorted order, w=16, E=12 (gcd 4) ===\n\n";
  const auto wa = core::sorted_order_warp(16, 12);
  std::cout << core::render_warp(wa) << '\n';

  const auto eval = core::evaluate_warp(wa, 0);
  std::cout << "aligned elements: " << eval.aligned << " of " << 16 * 12
            << "\n\n";

  // Sweep: in sorted order, the fraction of aligned chunks is 1/d' where
  // d' = w / gcd(w, E) (thread starts repeat with period w/gcd); E a power
  // of two (d = E) makes sorted order the worst case.
  std::cout << "=== Sorted-order alignment vs gcd(w, E), w = 16 ===\n\n";
  Table t({"E", "gcd(w,E)", "aligned", "of", "aligned_threads"});
  for (u32 e = 2; e <= 16; ++e) {
    const auto warp = core::sorted_order_warp(16, e);
    const auto ev = core::evaluate_warp(warp, 0);
    t.new_row()
        .add(static_cast<std::size_t>(e))
        .add(gcd(16, e))
        .add(ev.aligned)
        .add(static_cast<std::size_t>(16) * e)
        .add(ev.aligned / e);
  }
  t.print(std::cout);
  maybe_export_csv(t, "fig1_sorted_alignment");

  std::cout << "\nshape check (paper Sec. III): aligned chunks scale with "
               "gcd; E = 16 (= w) aligns every chunk -> sorted order is the "
               "worst case for power-of-two E.\n";
  return 0;
}
