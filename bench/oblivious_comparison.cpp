// Oblivious-vs-adaptive comparison: pairwise merge sort (fast on random,
// attackable) against bitonic sort (data-oblivious, immune to the
// constructed inputs, but Theta(n log^2 n) work).  Quantifies the trade the
// paper's introduction describes: conflict-free / oblivious algorithms "come
// at a price of increased complexity ... more overall work".

#include <iostream>

#include "sort/bitonic.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const auto merge_cfg = sort::params_15_512();
  sort::SortConfig bitonic_cfg;
  bitonic_cfg.E = 2;
  bitonic_cfg.b = 512;

  std::cout << "=== Merge sort vs bitonic sort under attack (" << dev.name
            << ") ===\n\n";

  Table t({"n", "merge_rand_ms", "merge_worst_ms", "merge_slowdown",
           "bitonic_rand_ms", "bitonic_worst_ms", "bitonic_slowdown"});

  double merge_rand_last = 0, bitonic_rand_last = 0,
         bitonic_worst_last = 0;
  for (u32 k = 4; k <= 6; ++k) {
    // Merge sort sweeps bE * 2^k; bitonic needs a power of two, so use the
    // nearest power of two for its runs and compare slowdowns (the attack
    // is defined relative to each algorithm's own input).
    const std::size_t n_merge = merge_cfg.tile() << k;
    std::size_t n_bitonic = 1;
    while (n_bitonic * 2 <= n_merge) {
      n_bitonic *= 2;
    }

    const auto merge_rand = sort::pairwise_merge_sort(
        workload::random_permutation(n_merge, k), merge_cfg, dev);
    const auto merge_worst = sort::pairwise_merge_sort(
        workload::make_input(workload::InputKind::worst_case, n_merge,
                             merge_cfg, k),
        merge_cfg, dev);
    // The merge sort's worst-case permutation, scaled to bitonic's size, is
    // just "some input" to an oblivious network; random is equivalent.
    const auto bitonic_rand = sort::bitonic_sort(
        workload::random_permutation(n_bitonic, k), bitonic_cfg, dev);
    const auto bitonic_worst = sort::bitonic_sort(
        workload::reversed_input(n_bitonic), bitonic_cfg, dev);

    merge_rand_last = merge_rand.seconds();
    bitonic_rand_last = bitonic_rand.seconds();
    bitonic_worst_last = bitonic_worst.seconds();

    t.new_row()
        .add(n_merge)
        .add(merge_rand.seconds() * 1e3, 3)
        .add(merge_worst.seconds() * 1e3, 3)
        .add(format_fixed((merge_worst.seconds() - merge_rand.seconds()) /
                              merge_rand.seconds() * 100.0,
                          1) +
             "%")
        .add(bitonic_rand.seconds() * 1e3, 3)
        .add(bitonic_worst.seconds() * 1e3, 3)
        .add(format_fixed((bitonic_worst.seconds() - bitonic_rand.seconds()) /
                              bitonic_rand.seconds() * 100.0,
                          1) +
             "%");
  }
  t.print(std::cout);

  std::cout << "\n(bitonic sizes are the nearest power of two below the "
               "merge sizes; bitonic's \"worst\" column is reversed input — "
               "for an oblivious network every input costs the same)\n\n";

  const bool immune =
      std::abs(bitonic_worst_last - bitonic_rand_last) <
      1e-9 * bitonic_rand_last;
  const bool merge_wins_random = merge_rand_last < bitonic_rand_last * 1.05;
  std::cout << "shape checks:\n"
            << "  bitonic is immune to input choice (identical modeled time "
               "on every input): "
            << (immune ? "ok" : "MISMATCH") << '\n'
            << "  merge sort is the faster algorithm on random inputs "
               "(why Thrust uses it despite the worst case): "
            << (merge_wins_random ? "ok" : "MISMATCH") << '\n';
  return 0;
}
