// Figure 6 reproduction: runtime per element and bank conflicts per element
// for Thrust on the RTX 2080 Ti model, both parameter sets, on the
// constructed worst-case inputs.  The paper's two claims:
//   1. the conflicts-per-element curve *predicts* the runtime-per-element
//      curve (their relative order matches), and
//   2. both grow logarithmically in n (each doubling of n adds one merge
//      round of roughly constant per-element cost).

#include <cmath>
#include <iostream>

#include "analysis/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::rtx_2080ti();
  analysis::SweepSpec base;
  base.device = dev;
  base.library = sort::MergeSortLibrary::thrust;
  base.input = workload::InputKind::worst_case;
  base.min_k = 1;
  base.max_k = 8;
  analysis::apply_env_overrides(base);

  analysis::SweepSpec s1 = base;
  s1.config = sort::params_15_512();
  analysis::SweepSpec s2 = base;
  s2.config = sort::params_17_256();
  const auto c1 = analysis::run_sweep(s1);
  const auto c2 = analysis::run_sweep(s2);

  std::cout << "=== Figure 6: per-element runtime and bank conflicts, "
               "Thrust worst-case on "
            << dev.name << " ===\n\n";
  Table t({"k", "n(15,512)", "ns/elem(15,512)", "confl/elem(15,512)",
           "n(17,256)", "ns/elem(17,256)", "confl/elem(17,256)"});
  for (std::size_t i = 0; i < c1.size(); ++i) {
    t.new_row()
        .add(static_cast<std::size_t>(base.min_k + i))
        .add(c1[i].n)
        .add(c1[i].seconds / static_cast<double>(c1[i].n) * 1e9, 3)
        .add(c1[i].conflicts_per_elem, 3)
        .add(c2[i].n)
        .add(c2[i].seconds / static_cast<double>(c2[i].n) * 1e9, 3)
        .add(c2[i].conflicts_per_elem, 3);
  }
  t.print(std::cout);
  maybe_export_csv(t, "fig6_conflicts_runtime");

  // Claim 1: conflicts/element predicts runtime/element — compare relative
  // order of the two configurations' curves at the common-k grid.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    const bool conflicts_higher = c1[i].conflicts_per_elem >
                                  c2[i].conflicts_per_elem;
    const bool runtime_higher =
        c1[i].seconds / static_cast<double>(c1[i].n) >
        c2[i].seconds / static_cast<double>(c2[i].n);
    agree += conflicts_higher == runtime_higher ? 1 : 0;
  }

  // Claim 2: logarithmic growth — per-doubling increments of
  // conflicts/element are roughly constant (linear in k = log2(n / bE)).
  std::vector<double> inc;
  for (std::size_t i = 1; i < c1.size(); ++i) {
    inc.push_back(c1[i].conflicts_per_elem - c1[i - 1].conflicts_per_elem);
  }
  double inc_min = inc[0], inc_max = inc[0];
  for (const double d : inc) {
    inc_min = std::min(inc_min, d);
    inc_max = std::max(inc_max, d);
  }

  std::cout << "\nshape checks (paper Sec. IV-B, Fig. 6):\n"
            << "  conflicts/element predicts runtime/element ranking at "
            << agree << "/" << c1.size() << " sizes\n"
            << "  logarithmic growth: per-doubling conflict increment in ["
            << format_fixed(inc_min, 3) << ", " << format_fixed(inc_max, 3)
            << "] (roughly constant -> log growth): "
            << (inc_max - inc_min < 0.5 * inc_max + 0.2 ? "ok" : "MISMATCH")
            << '\n';
  return 0;
}
