// Ablation bench: the design choices of the generator, isolated.
//
//   A. attack scope — neutral (no attack) / global rounds only (the paper's
//      construction) / global + intra-block extension (paper Sec. V future
//      work: the per-warp pattern applies to any merge round with >= 2
//      warps per pair).
//   B. base-tile order — ascending tiles vs seeded-shuffled tiles (the
//      permutation *family* of Sec. V item 2: elements invisible to the
//      attacked rounds can be permuted freely).
//   C. input-kind spectrum — sorted / nearly-sorted / random / reversed /
//      worst-case, demonstrating where the constructed input sits relative
//      to natural input classes.

#include <iostream>

#include "core/generator.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const auto cfg = sort::params_15_512();
  const u32 k = 5;
  const std::size_t n = cfg.tile() << k;

  std::cout << "=== Ablation A/B: attack scope x base-tile order ("
            << dev.name << ", " << cfg.to_string() << ", n=" << n
            << ") ===\n\n";

  struct Variant {
    const char* name;
    core::AttackOptions opts;
  };
  const Variant variants[] = {
      {"no attack, ascending tiles", {false, false, 0}},
      {"no attack, shuffled tiles", {false, false, 99}},
      {"global attack, ascending tiles", {true, false, 0}},
      {"global attack, shuffled tiles", {true, false, 99}},
      {"global+intra attack, ascending", {true, true, 0}},
      {"global+intra attack, shuffled", {true, true, 99}},
  };

  const auto random_input = workload::random_permutation(n, 7);
  const auto r_random = sort::pairwise_merge_sort(random_input, cfg, dev);

  Table t({"variant", "time_ms", "slowdown_vs_random", "confl/elem",
           "beta2"});
  t.new_row()
      .add("random baseline")
      .add(r_random.seconds() * 1e3, 3)
      .add("-")
      .add(r_random.conflicts_per_element(), 3)
      .add(r_random.beta2(), 2);
  for (const auto& v : variants) {
    const auto input = core::worst_case_input(n, cfg, v.opts);
    const auto r = sort::pairwise_merge_sort(input, cfg, dev);
    t.new_row()
        .add(v.name)
        .add(r.seconds() * 1e3, 3)
        .add(format_fixed(
                 (r.seconds() - r_random.seconds()) / r_random.seconds() *
                     100.0,
                 2) +
             "%")
        .add(r.conflicts_per_element(), 3)
        .add(r.beta2(), 2);
  }
  t.print(std::cout);

  std::cout << "\n=== Ablation D: Lemma 2 alignment strategies (same "
               "conflicts, different permutations) ===\n\n";
  Table ts({"strategy", "time_ms", "confl/elem", "beta2",
            "permutation_prefix"});
  for (const auto s : {core::AlignmentStrategy::front_to_back,
                       core::AlignmentStrategy::back_to_front,
                       core::AlignmentStrategy::outside_in}) {
    core::AttackOptions opts;
    opts.tile_shuffle_seed = 99;
    opts.small_e_strategy = s;
    const auto input = core::worst_case_input(n, cfg, opts);
    const auto r = sort::pairwise_merge_sort(input, cfg, dev);
    std::string prefix;
    for (int i = 0; i < 4; ++i) {
      prefix += std::to_string(input[static_cast<std::size_t>(i)]) + " ";
    }
    ts.new_row()
        .add(core::to_string(s))
        .add(r.seconds() * 1e3, 3)
        .add(r.conflicts_per_element(), 3)
        .add(r.beta2(), 2)
        .add(prefix + "...");
  }
  ts.print(std::cout);

  std::cout << "\n=== Ablation E: merge-read accounting fidelity ===\n\n";
  Table tf({"fidelity", "input", "beta2(last round)", "time_ms"});
  for (const bool realistic : {false, true}) {
    sort::SortConfig fcfg = cfg;
    fcfg.realistic_refills = realistic;
    for (const auto kind :
         {workload::InputKind::random, workload::InputKind::worst_case}) {
      const auto input = workload::make_input(kind, n, fcfg, 7);
      const auto r = sort::pairwise_merge_sort(input, fcfg, dev);
      tf.new_row()
          .add(realistic ? "realistic refills" : "consumed (paper model)")
          .add(workload::to_string(kind))
          .add(gpusim::beta2(r.rounds.back().kernel), 2)
          .add(r.seconds() * 1e3, 3);
    }
  }
  tf.print(std::cout);
  std::cout << "(the attack's serialization survives the realistic "
               "counting: aligned refills collide one bank over)\n";

  std::cout << "\n=== Ablation C: input-kind spectrum ===\n\n";
  Table t2({"input", "time_ms", "confl/elem", "beta2"});
  for (const auto kind :
       {workload::InputKind::sorted, workload::InputKind::nearly_sorted,
        workload::InputKind::random, workload::InputKind::reversed,
        workload::InputKind::worst_case}) {
    const auto input = workload::make_input(kind, n, cfg, 7);
    const auto r = sort::pairwise_merge_sort(input, cfg, dev);
    t2.new_row()
        .add(workload::to_string(kind))
        .add(r.seconds() * 1e3, 3)
        .add(r.conflicts_per_element(), 3)
        .add(r.beta2(), 2);
  }
  t2.print(std::cout);

  std::cout
      << "\nshape checks:\n"
      << "  shuffled base tiles strictly increase the attack's damage (the\n"
      << "  ascending-tile base case is accidentally conflict-light), and\n"
      << "  the intra-block extension adds further conflicts on top;\n"
      << "  worst-case sits above every natural input class.\n";
  return 0;
}
