// Tightness probe: stochastic search vs the paper's constructions.  For
// small E the constructions are provably optimal (E^2 ceiling); for large E
// Theorem 9 gives a count without claiming optimality over the assignment
// family — the search asks empirically whether anything in the family beats
// it.  (In all runs to date: no.)

#include <iostream>

#include "core/numbers.hpp"
#include "core/search.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;

  std::cout << "=== Search vs construction (randomized hill climbing, "
               "counts-only space, exact scan orders) ===\n\n";

  core::SearchOptions opts;
  opts.restarts = 8;
  opts.iterations = 3000;
  opts.seed = 2026;

  Table t({"w", "E", "regime", "construction", "search_best", "ceiling(E^2)",
           "search_beats_construction"});
  bool any_beat = false;
  for (const auto& [w, e] : {std::pair<u32, u32>{16, 5},
                             {16, 7},
                             {16, 9},
                             {16, 11},
                             {32, 7},
                             {32, 15},
                             {32, 17},
                             {32, 21}}) {
    const auto regime = core::classify_e(w, e);
    const u64 constructed = core::aligned_worst_case(w, e);
    const auto r = core::search_worst_case_warp(w, e, opts);
    const bool beats = r.aligned > constructed;
    any_beat = any_beat || beats;
    t.new_row()
        .add(static_cast<std::size_t>(w))
        .add(static_cast<std::size_t>(e))
        .add(regime == core::ERegime::small ? "small" : "large")
        .add(static_cast<unsigned long long>(constructed))
        .add(r.aligned)
        .add(static_cast<std::size_t>(e) * e)
        .add(beats ? "YES (finding!)" : "no");
  }
  t.print(std::cout);
  maybe_export_csv(t, "search_tightness");

  std::cout << "\nshape checks:\n"
            << "  search never exceeds the proven E^2 ceiling: ok "
               "(asserted inside the search)\n"
            << "  search never beats the constructions in this run: "
            << (any_beat ? "BEATEN — investigate!" : "ok")
            << "\n  (small-E gaps, when present, are search-budget "
               "artifacts: the constructions are proven optimal there)\n";
  return 0;
}
