// Figure 5 reproduction: throughput on the RTX 2080 Ti model for both
// software parameter sets (E=15,b=512 and E=17,b=256), Thrust and Modern
// GPU, random vs worst-case inputs.  One simulation per (config, input,
// size); the Modern GPU curves are re-costed from the same event counters
// (same algorithm, different constant factors), exactly like the paper runs
// both libraries with the same parameters.
//
// Paper headline numbers: E=15,b=512 peak slowdown 42.43% (Thrust) /
// 42.62% (MGPU); E=17,b=256 peak 22.94% / 20.34%.  Asserted shape:
// E=15,b=512 faster on random but *larger* slowdown under attack.

// Each (config, input, size) simulation is one independent job on the
// campaign runtime's parallel_map (WCM_THREADS overrides the worker
// count); seeds are unchanged, so the numbers match the serial version.

#include <array>
#include <iostream>

#include "analysis/experiment.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stopwatch.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  // WCM_TRACE_OUT=<path> records the bench as a Chrome trace; the wall
  // clock below shares the tracer's time source (telemetry/stopwatch.hpp).
  telemetry::configure_from_env();
  const telemetry::Stopwatch wall;

  const auto dev = gpusim::rtx_2080ti();
  u32 min_k = 1, max_k = 8;
  {
    analysis::SweepSpec probe;
    probe.min_k = min_k;
    probe.max_k = max_k;
    analysis::apply_env_overrides(probe);
    min_k = probe.min_k;
    max_k = probe.max_k;
  }

  struct Curves {
    sort::SortConfig config;
    // [input][lib] -> series; input 0 = random, 1 = worst; lib 0 = thrust,
    // 1 = mgpu.
    std::vector<analysis::SeriesPoint> series[2][2];
  };
  Curves sets[2] = {{sort::params_15_512(), {}},
                    {sort::params_17_256(), {}}};

  // Flatten the (set, input, size) grid into independent jobs; each job
  // returns the Thrust point plus its Modern GPU re-cost.
  struct Cell {
    int set;
    int input;
    u32 k;
  };
  std::vector<Cell> cells;
  for (int set = 0; set < 2; ++set) {
    for (int input = 0; input < 2; ++input) {
      for (u32 k = min_k; k <= max_k; ++k) {
        cells.push_back({set, input, k});
      }
    }
  }
  const u32 workers = runtime::recommended_workers(
      runtime::threads_from_env(0), dev, sets[0].config.b,
      sets[0].config.shared_bytes());
  const auto points = runtime::parallel_map(
      cells.size(), workers,
      [&](std::size_t i) -> std::array<analysis::SeriesPoint, 2> {
        WCM_SPAN("bench.fig5.cell");
        const auto& cell = cells[i];
        const auto& config = sets[cell.set].config;
        const auto kind = cell.input == 0 ? workload::InputKind::random
                                          : workload::InputKind::worst_case;
        const std::size_t n = config.tile() << cell.k;
        const auto keys = workload::make_input(kind, n, config, 1 + cell.k);
        const auto thrust_report = sort::pairwise_merge_sort(
            keys, config, dev, sort::MergeSortLibrary::thrust);
        const auto mgpu_report =
            sort::recost(thrust_report, dev, sort::MergeSortLibrary::mgpu);
        std::array<analysis::SeriesPoint, 2> out;
        for (std::size_t lib = 0; lib < 2; ++lib) {
          const auto& rep = lib == 0 ? thrust_report : mgpu_report;
          out[lib].n = n;
          out[lib].throughput = rep.throughput();
          out[lib].seconds = rep.seconds();
          out[lib].conflicts_per_elem = rep.conflicts_per_element();
          out[lib].beta2 = rep.beta2();
        }
        return out;
      });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t lib = 0; lib < 2; ++lib) {
      sets[cells[i].set].series[cells[i].input][lib].push_back(points[i][lib]);
    }
  }

  for (int lib = 0; lib < 2; ++lib) {
    std::cout << "=== Figure 5 ("
              << (lib == 0 ? "left: Thrust" : "right: Modern GPU") << ") on "
              << dev.name << " (Me/s, modeled) ===\n\n";
    Table t({"k", "n(15,512)", "rand(15,512)", "worst(15,512)", "n(17,256)",
             "rand(17,256)", "worst(17,256)"});
    for (std::size_t i = 0; i < sets[0].series[0][0].size(); ++i) {
      t.new_row()
          .add(static_cast<std::size_t>(min_k + i))
          .add(sets[0].series[0][0][i].n)
          .add(sets[0].series[0][lib][i].throughput / 1e6, 1)
          .add(sets[0].series[1][lib][i].throughput / 1e6, 1)
          .add(sets[1].series[0][0][i].n)
          .add(sets[1].series[0][lib][i].throughput / 1e6, 1)
          .add(sets[1].series[1][lib][i].throughput / 1e6, 1);
    }
    t.print(std::cout);
    maybe_export_csv(t, lib == 0 ? "fig5_thrust" : "fig5_mgpu");
    std::cout << '\n';
  }

  const char* paper[2][2] = {{"42.43% / 33.31%", "42.62% / 35.25%"},
                             {"22.94% / 16.54%", "20.34% / 12.97%"}};
  double peak[2][2];
  std::cout << "slowdown of constructed inputs vs random (peak / average):\n";
  for (int set = 0; set < 2; ++set) {
    for (int lib = 0; lib < 2; ++lib) {
      const auto stats = analysis::compare_series(sets[set].series[0][lib],
                                                  sets[set].series[1][lib]);
      peak[set][lib] = stats.peak_percent;
      std::cout << "  " << sets[set].config.to_string() << " "
                << (lib == 0 ? "Thrust" : "MGPU  ") << ": "
                << format_fixed(stats.peak_percent, 2) << "% / "
                << format_fixed(stats.average_percent, 2)
                << "%   (paper: " << paper[set][lib] << ")\n";
    }
  }

  const bool random_order =
      sets[0].series[0][0].back().throughput >
      sets[1].series[0][0].back().throughput;
  const bool slowdown_order =
      peak[0][0] > peak[1][0] && peak[0][1] > peak[1][1];
  std::cout << "\nshape checks (paper Sec. IV-B):\n"
            << "  E=15,b=512 outperforms E=17,b=256 on random inputs: "
            << (random_order ? "ok" : "MISMATCH") << '\n'
            << "  ...but suffers the larger slowdown on constructed inputs: "
            << (slowdown_order ? "ok" : "MISMATCH") << '\n';
  std::cout << "wall time: " << format_fixed(wall.elapsed_seconds(), 2)
            << " s\n";
  telemetry::flush_trace(&std::cerr);
  return 0;
}
