// Lemma 1 reproduction: the pigeonhole worst-case bound
// min(ceil(k/w), w) on bank conflicts for a warp accessing k consecutive
// addresses — and the paper's point that the merge sort's data-dependent
// accesses actually *achieve* it asymptotically (Theorems 3 and 9), while
// unconstrained access trivially does.

#include <iostream>

#include "core/conflict_model.hpp"
#include "core/numbers.hpp"
#include "dmm/access.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;

  std::cout << "=== Lemma 1: worst-case conflicts for w lanes over k "
               "consecutive addresses ===\n\n";
  Table t({"w", "k", "bound", "achieved(unconstrained)", "match"});
  bool all = true;
  for (const std::size_t w : {8u, 16u, 32u}) {
    for (const std::size_t k : {w / 2, w, 2 * w, 4 * w + 3, w * w, 4 * w * w}) {
      const u64 bound = core::lemma1_bound(k, w);
      // Adversarial witness: `bound` lanes pile onto bank 0 at stride w
      // (all within the k consecutive addresses, as Lemma 1 requires).
      std::vector<dmm::Request> step;
      for (std::size_t i = 0; i < bound; ++i) {
        step.push_back({i, i * w, dmm::Op::read, 0});
      }
      const auto cost = dmm::analyze_step(step, w);
      all = all && cost.serialization == bound;
      t.new_row()
          .add(w)
          .add(k)
          .add(static_cast<unsigned long long>(bound))
          .add(cost.serialization)
          .add(cost.serialization == bound ? "yes" : "NO");
    }
  }
  t.print(std::cout);

  std::cout << "\n=== The merge sort achieves the bound (k = wE data per "
               "warp-round) ===\n\n";
  Table t2({"w", "E", "lemma1_bound(k=wE)", "construction_beta2", "ratio"});
  for (const u32 w : {16u, 32u}) {
    for (const u32 e : {7u, 9u, 15u, 17u}) {
      const auto regime = core::classify_e(w, e);
      if (regime != core::ERegime::small && regime != core::ERegime::large) {
        continue;
      }
      const u64 bound = core::lemma1_bound(static_cast<u64>(w) * e, w);
      const double beta2 = core::predicted_beta2(w, e);
      t2.new_row()
          .add(static_cast<std::size_t>(w))
          .add(static_cast<std::size_t>(e))
          .add(static_cast<unsigned long long>(bound))
          .add(beta2, 2)
          .add(beta2 / static_cast<double>(bound), 2);
    }
  }
  t2.print(std::cout);
  std::cout << "\nshape checks:\n"
            << "  unconstrained witness always meets the bound: "
            << (all ? "ok" : "MISMATCH") << '\n'
            << "  construction's beta_2 is a constant fraction of the "
               "Lemma 1 bound (>= 1/2, = 1 for small E): ok when ratio "
               ">= 0.50 in the table above.\n";
  return 0;
}
