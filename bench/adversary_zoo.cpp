// Adversary zoo: four sorting algorithms x four input classes.  The
// generalization of the paper's thesis: worst cases are *algorithm
// shaped* — the constructed permutation devastates the pairwise merge sort
// it targets, partially transfers to the K-way tree, leaves the oblivious
// bitonic network untouched, and barely grazes radix sort, which has its
// own (all-equal-keys) adversary that the comparison sorts shrug off.

#include <iostream>

#include "sort/bitonic.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const sort::SortConfig cfg{15, 128, 32};
  const std::size_t n = cfg.tile() << 5;  // 61440: not a power of two
  std::size_t n_pow2 = 1;                 // bitonic needs a power of two
  while (n_pow2 * 2 <= n) {
    n_pow2 *= 2;
  }

  struct Inputs {
    const char* name;
    std::vector<dmm::word> general;  // size n
    std::vector<dmm::word> pow2;     // size n_pow2 (for bitonic)
  };
  const auto truncate = [&](std::vector<dmm::word> v) {
    v.resize(n_pow2);
    return v;
  };
  std::vector<Inputs> inputs;
  inputs.push_back({"random", workload::random_permutation(n, 7),
                    workload::random_permutation(n_pow2, 7)});
  inputs.push_back(
      {"merge-adversary",
       workload::make_input(workload::InputKind::worst_case, n, cfg, 7),
       truncate(workload::make_input(workload::InputKind::worst_case, n, cfg,
                                     7))});
  inputs.push_back({"radix-adversary", sort::radix_adversarial_input(n),
                    sort::radix_adversarial_input(n_pow2)});
  inputs.push_back({"reversed", workload::reversed_input(n),
                    workload::reversed_input(n_pow2)});

  std::cout << "=== Adversary zoo (" << dev.name << ", " << cfg.to_string()
            << ", n=" << n << "; bitonic at n=" << n_pow2
            << ") — modeled ms ===\n\n";

  Table t({"input", "pairwise", "4-way", "bitonic", "radix"});
  double cell[4][4];
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& in = inputs[i];
    cell[i][0] = sort::pairwise_merge_sort(in.general, cfg, dev).seconds();
    cell[i][1] =
        sort::multiway_merge_sort(in.general, cfg, dev, 4).seconds();
    sort::SortConfig bcfg;
    bcfg.E = 2;
    bcfg.b = cfg.b;
    cell[i][2] = sort::bitonic_sort(in.pow2, bcfg, dev).seconds();
    cell[i][3] = sort::radix_sort(in.general, cfg, dev).seconds();
    t.new_row().add(in.name);
    for (int a = 0; a < 4; ++a) {
      t.add(cell[i][a] * 1e3, 3);
    }
  }
  t.print(std::cout);
  maybe_export_csv(t, "adversary_zoo");

  const auto slowdown = [&](int input, int algo) {
    return (cell[input][algo] - cell[0][algo]) / cell[0][algo] * 100.0;
  };
  std::cout << "\nslowdown vs the random row (per algorithm):\n";
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    std::cout << "  " << inputs[i].name << ": pairwise "
              << format_fixed(slowdown(static_cast<int>(i), 0), 1)
              << "%, 4-way "
              << format_fixed(slowdown(static_cast<int>(i), 1), 1)
              << "%, bitonic "
              << format_fixed(slowdown(static_cast<int>(i), 2), 1)
              << "%, radix "
              << format_fixed(slowdown(static_cast<int>(i), 3), 1) << "%\n";
  }

  const bool merge_adv_targets_pairwise =
      slowdown(1, 0) > 1.5 * slowdown(1, 1) && slowdown(1, 2) < 1.0 &&
      slowdown(1, 3) < 1.0;
  const bool radix_adv_targets_radix =
      slowdown(2, 3) > 10.0 && slowdown(2, 0) < 1.0;
  std::cout << "\nshape checks:\n"
            << "  the paper's construction is pairwise-merge-shaped "
               "(>= 1.5x the 4-way damage, ~0 on bitonic and radix): "
            << (merge_adv_targets_pairwise ? "ok" : "MISMATCH") << '\n'
            << "  radix's adversary is radix-shaped (harmless to the "
               "comparison sorts): "
            << (radix_adv_targets_radix ? "ok" : "MISMATCH") << '\n';
  return 0;
}
