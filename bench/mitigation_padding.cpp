// Mitigation bench: Dotsenko-style shared-memory padding versus the
// worst-case construction.  The paper's introduction cites padding as the
// classic way to make an algorithm bank-conflict free; this bench measures
// both sides of that trade on the attacked merge sort:
//
//   * padding destroys the congruence the construction relies on, so the
//     adversarial input collapses to random-like behavior, but
//   * it also perturbs the regular (previously conflict-free) staging
//     phases and wastes shared memory, taxing *random* inputs — the
//     "increased complexity / higher constant factors" cost the paper
//     mentions for conflict-free algorithms.

#include <iostream>

#include "gpusim/occupancy.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/scan.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const u32 k = 5;

  std::cout << "=== Padding mitigation vs the worst-case construction ("
            << dev.name << ", E=15, b=512, n = bE * 2^" << k << ") ===\n\n";

  Table t({"pad", "input", "time_ms", "beta2", "confl/elem", "shared_KiB",
           "resident_blocks"});
  double worst_time[3] = {};
  double rand_time[3] = {};
  for (const u32 pad : {0u, 1u, 2u}) {
    sort::SortConfig cfg = sort::params_15_512();
    cfg.padding = pad;
    const std::size_t n = cfg.tile() << k;
    const auto occ = gpusim::occupancy(dev, cfg.b, cfg.shared_bytes());
    for (const auto kind :
         {workload::InputKind::random, workload::InputKind::worst_case}) {
      const auto input = workload::make_input(kind, n, cfg, 7);
      const auto r = sort::pairwise_merge_sort(input, cfg, dev);
      (kind == workload::InputKind::random ? rand_time
                                           : worst_time)[pad] = r.seconds();
      t.new_row()
          .add(static_cast<std::size_t>(pad))
          .add(workload::to_string(kind))
          .add(r.seconds() * 1e3, 3)
          .add(r.beta2(), 2)
          .add(r.conflicts_per_element(), 3)
          .add(static_cast<double>(cfg.shared_bytes()) / 1024.0, 1)
          .add(static_cast<std::size_t>(occ.resident_blocks));
    }
  }
  t.print(std::cout);

  const double attack_unpadded =
      (worst_time[0] - rand_time[0]) / rand_time[0] * 100.0;
  const double attack_padded =
      (worst_time[1] - rand_time[1]) / rand_time[1] * 100.0;
  const double padding_tax =
      (rand_time[1] - rand_time[0]) / rand_time[0] * 100.0;

  // The origin of the technique: Dotsenko et al.'s scan (paper intro).
  std::cout << "\n=== The original Dotsenko scan result (per-thread stride "
               "E vs banks) ===\n\n";
  Table ts({"E", "gcd(E,w)", "pad", "replays/elem", "time_ms"});
  for (const u32 e : {15u, 16u}) {
    for (const u32 pad : {0u, 1u}) {
      sort::SortConfig scfg{e, 256, 32};
      scfg.padding = pad;
      const std::size_t sn = scfg.tile() * 8;
      auto in = workload::random_permutation(sn, 3);
      const auto r = sort::block_scan(in, scfg, dev);
      ts.new_row()
          .add(static_cast<std::size_t>(e))
          .add(gcd(e, 32))
          .add(static_cast<std::size_t>(pad))
          .add(static_cast<double>(r.totals.shared.replays) /
                   static_cast<double>(sn),
               3)
          .add(r.seconds() * 1e3, 4);
    }
  }
  ts.print(std::cout);
  std::cout << "(E=16 shares a factor 16 with the 32 banks: every scan "
               "access serializes 16 ways until padded or made co-prime — "
               "the observation that started the bank-conflict-free line "
               "of work the paper departs from)\n";

  std::cout << "\nattack effect without padding: "
            << format_fixed(attack_unpadded, 2) << "%\n"
            << "attack effect with 1-word padding: "
            << format_fixed(attack_padded, 2) << "%\n"
            << "padding tax on random inputs: "
            << format_fixed(padding_tax, 2) << "%\n\n";

  std::cout << "shape checks:\n"
            << "  padding neutralizes the constructed input (attack effect "
               "within noise of zero): "
            << (attack_padded < attack_unpadded / 4.0 ? "ok" : "MISMATCH")
            << '\n'
            << "  ...but costs random inputs a few percent (why production "
               "merge sorts do not pad): "
            << (padding_tax > 0.0 ? "ok" : "MISMATCH") << '\n';
  return 0;
}
