// Microbenchmarks (google-benchmark): host-side throughput of the
// library's building blocks — the constructions, the generator, merge
// path, the DMM step analyzer, and the simulator itself.  These measure
// *this library's* code on the host CPU (the figure benches report modeled
// GPU time instead).

#include <benchmark/benchmark.h>

#include "core/generator.hpp"
#include "core/warp_construction.hpp"
#include "dmm/access.hpp"
#include "mergepath/partition.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace {

using namespace wcm;

void BM_WarpConstructionSmallE(benchmark::State& state) {
  const u32 e = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_warp(32, e));
  }
}
BENCHMARK(BM_WarpConstructionSmallE)->Arg(5)->Arg(15);

void BM_WarpConstructionLargeE(benchmark::State& state) {
  const u32 e = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_warp(32, e));
  }
}
BENCHMARK(BM_WarpConstructionLargeE)->Arg(17)->Arg(31);

void BM_WorstCaseGenerator(benchmark::State& state) {
  const auto cfg = sort::params_15_512();
  const std::size_t n = cfg.tile() << static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_input(n, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WorstCaseGenerator)->Arg(1)->Arg(4)->Arg(7);

void BM_MergePathPartition(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = workload::sorted_input(n);
  auto b = workload::sorted_input(n);
  for (auto& x : b) {
    x += 1;  // interleave
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mergepath::partition_tiles(a, b, n / 64));
  }
}
BENCHMARK(BM_MergePathPartition)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DmmAnalyzeStep(benchmark::State& state) {
  // A 32-lane step with a mid-grade conflict pattern.
  std::vector<dmm::Request> step;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    step.push_back({lane, (lane % 8) * 32 + lane, dmm::Op::read, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dmm::analyze_step(step, 32));
  }
}
BENCHMARK(BM_DmmAnalyzeStep);

void BM_SimulatedSort(benchmark::State& state) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() << static_cast<u32>(state.range(0));
  const auto input = workload::random_permutation(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatedSort)->Arg(1)->Arg(3);

void BM_CpuReferenceSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto input = workload::random_permutation(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sort::cpu_pairwise_merge_sort(input, 512));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CpuReferenceSort)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
