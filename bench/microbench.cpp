// Microbenchmarks (google-benchmark): host-side throughput of the
// library's building blocks — the constructions, the generator, merge
// path, the DMM step analyzer, and the simulator itself.  These measure
// *this library's* code on the host CPU (the figure benches report modeled
// GPU time instead).

#include <benchmark/benchmark.h>

#include "core/generator.hpp"
#include "core/warp_construction.hpp"
#include "dmm/access.hpp"
#include "mergepath/partition.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "workload/inputs.hpp"

namespace {

using namespace wcm;

void BM_WarpConstructionSmallE(benchmark::State& state) {
  const u32 e = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_warp(32, e));
  }
}
BENCHMARK(BM_WarpConstructionSmallE)->Arg(5)->Arg(15);

void BM_WarpConstructionLargeE(benchmark::State& state) {
  const u32 e = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_warp(32, e));
  }
}
BENCHMARK(BM_WarpConstructionLargeE)->Arg(17)->Arg(31);

void BM_WorstCaseGenerator(benchmark::State& state) {
  const auto cfg = sort::params_15_512();
  const std::size_t n = cfg.tile() << static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_input(n, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WorstCaseGenerator)->Arg(1)->Arg(4)->Arg(7);

void BM_MergePathPartition(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = workload::sorted_input(n);
  auto b = workload::sorted_input(n);
  for (auto& x : b) {
    x += 1;  // interleave
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mergepath::partition_tiles(a, b, n / 64));
  }
}
BENCHMARK(BM_MergePathPartition)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DmmAnalyzeStep(benchmark::State& state) {
  // A 32-lane step with a mid-grade conflict pattern.
  std::vector<dmm::Request> step;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    step.push_back({lane, (lane % 8) * 32 + lane, dmm::Op::read, 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dmm::analyze_step(step, 32));
  }
}
BENCHMARK(BM_DmmAnalyzeStep);

void BM_SimulatedSort(benchmark::State& state) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() << static_cast<u32>(state.range(0));
  const auto input = workload::random_permutation(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatedSort)->Arg(1)->Arg(3);

// Telemetry overhead pins (ISSUE acceptance: disabled telemetry must cost
// <2% on the simulator microbenches).  BM_SimulatedSort above runs with
// every instrumented site compiled in but telemetry off — compare it
// against the pre-telemetry baseline for the <2% budget — and
// BM_SimulatedSortTelemetryOn quantifies the opt-in cost of metrics +
// tracing on the same workload.

void BM_TelemetrySpanDisabled(benchmark::State& state) {
  // The off-path of WCM_SPAN: one relaxed atomic load, no buffer touch.
  telemetry::set_tracing(false);
  for (auto _ : state) {
    WCM_SPAN("bm.span.off");
  }
}
BENCHMARK(BM_TelemetrySpanDisabled);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::set_tracing(true);
  std::size_t since_drain = 0;
  for (auto _ : state) {
    {
      WCM_SPAN("bm.span.on");
    }
    if (++since_drain == 65536) {  // bound the buffer, off the clock
      since_drain = 0;
      state.PauseTiming();
      telemetry::reset_trace();
      state.ResumeTiming();
    }
  }
  telemetry::set_tracing(false);
  telemetry::reset_trace();
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetryCounterAdd(benchmark::State& state) {
  // Hot path of an instrumented site that caches its handle.
  telemetry::set_enabled(true);
  auto& counter = telemetry::registry().counter("bm.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  telemetry::set_enabled(false);
  telemetry::registry().reset();
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryRegistryLookup(benchmark::State& state) {
  // Hot path of a site that re-looks-up by (name, labels) every time, the
  // pattern record_round_telemetry uses.
  telemetry::set_enabled(true);
  const telemetry::Labels labels = {{"engine", "pairwise"}, {"round", "r1"}};
  for (auto _ : state) {
    telemetry::registry().counter("bm.lookup", labels).add(1);
  }
  telemetry::set_enabled(false);
  telemetry::registry().reset();
}
BENCHMARK(BM_TelemetryRegistryLookup);

void BM_SimulatedSortTelemetryOn(benchmark::State& state) {
  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() << 1;
  const auto input = workload::random_permutation(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000()));
  }
  telemetry::set_tracing(false);
  telemetry::set_enabled(false);
  telemetry::reset_trace();
  telemetry::registry().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatedSortTelemetryOn);

void BM_CpuReferenceSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto input = workload::random_permutation(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sort::cpu_pairwise_merge_sort(input, 512));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CpuReferenceSort)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
