// Multiway-vs-pairwise comparison (Karsin et al. 2018 context): K-way
// merging buys fewer global rounds; the paper's worst-case input targets
// the pairwise tree, so this bench also measures the attack's specificity.

#include <iostream>

#include "core/kway_attack.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const auto cfg = sort::params_15_512();
  const u32 k = 5;
  const std::size_t n = cfg.tile() << k;

  const auto random = workload::random_permutation(n, 7);
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 7);

  std::cout << "=== Pairwise vs K-way merge sort (" << dev.name << ", "
            << cfg.to_string() << ", n=" << n << ") ===\n\n";

  Table t({"algorithm", "global_rounds", "rand_ms", "worst_ms", "slowdown",
           "rand_beta2", "worst_beta2", "global_txn(rand)"});

  const auto pw_rand = sort::pairwise_merge_sort(random, cfg, dev);
  const auto pw_worst = sort::pairwise_merge_sort(worst, cfg, dev);
  t.new_row()
      .add("pairwise")
      .add(pw_rand.rounds.size() - 1)
      .add(pw_rand.seconds() * 1e3, 3)
      .add(pw_worst.seconds() * 1e3, 3)
      .add(format_fixed((pw_worst.seconds() - pw_rand.seconds()) /
                            pw_rand.seconds() * 100.0,
                        1) +
           "%")
      .add(pw_rand.beta2(), 2)
      .add(pw_worst.beta2(), 2)
      .add(pw_rand.totals.global_transactions);

  double mw_slow[3] = {};
  int idx = 0;
  for (const u32 ways : {2u, 4u, 8u}) {
    const auto mw_rand = sort::multiway_merge_sort(random, cfg, dev, ways);
    const auto mw_worst = sort::multiway_merge_sort(worst, cfg, dev, ways);
    mw_slow[idx++] = (mw_worst.seconds() - mw_rand.seconds()) /
                     mw_rand.seconds() * 100.0;
    t.new_row()
        .add(std::to_string(ways) + "-way")
        .add(mw_rand.rounds.size() - 1)
        .add(mw_rand.seconds() * 1e3, 3)
        .add(mw_worst.seconds() * 1e3, 3)
        .add(format_fixed(mw_slow[idx - 1], 1) + "%")
        .add(mw_rand.beta2(), 2)
        .add(mw_worst.beta2(), 2)
        .add(mw_rand.totals.global_transactions);
  }
  t.print(std::cout);

  // Our extension: the construction generalized to the K-way tree (the
  // per-warp greedy with K runs and rotated warp groups) — the tailored
  // adversary the transferred pairwise input is not.
  std::cout << "\n=== K-way-specific attack (extension; n = bE * 4^j) "
               "===\n\n";
  Table t2({"input", "4way_ms", "4way_beta2(last round)"});
  {
    sort::SortConfig kcfg = cfg;  // b/w = 16, divisible by 4
    const std::size_t kn = kcfg.tile() * 64;  // 4^3
    const auto kworst = core::kway_worst_case_input(kn, kcfg, 4, 9);
    const auto krand = workload::random_permutation(kn, 9);
    const auto kpair =
        workload::make_input(workload::InputKind::worst_case, kn, kcfg, 9);
    for (const auto& [name, input] :
         {std::pair<const char*, const std::vector<dmm::word>&>{"random",
                                                                krand},
          {"pairwise worst case (transferred)", kpair},
          {"4-way worst case (tailored)", kworst}}) {
      const auto r = sort::multiway_merge_sort(input, kcfg, dev, 4);
      t2.new_row()
          .add(name)
          .add(r.seconds() * 1e3, 3)
          .add(gpusim::beta2(r.rounds.back().kernel), 2);
    }
    t2.print(std::cout);
    std::cout << "(the tailored input restores beta_2 toward the E = "
              << kcfg.E << " ceiling on the K-way tree)\n";
  }

  const double pw_slowdown = (pw_worst.seconds() - pw_rand.seconds()) /
                             pw_rand.seconds() * 100.0;
  std::cout << "\nshape checks:\n"
            << "  K-way merging reduces global traffic (its design goal): "
            << "ok when global_txn falls with ways in the table\n"
            << "  the pairwise worst-case input transfers only partially to "
               "the K-way tree (attack specificity): "
            << (mw_slow[1] < pw_slowdown ? "ok" : "MISMATCH") << " ("
            << format_fixed(pw_slowdown, 1) << "% pairwise vs "
            << format_fixed(mw_slow[1], 1) << "% on 4-way)\n";
  return 0;
}
