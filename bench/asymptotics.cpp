// Asymptotics ablation: the paper's analysis is parameterized by the warp /
// bank width w.  With synthetic devices of w in {16, 32, 64} and E chosen
// in each regime, this bench verifies the scaling claims of Sec. III-C on
// the full pipeline:
//   * attacked beta_2 grows linearly with E (conflicts ~ E^2 per warp),
//   * effective parallelism collapses to ceil(w/E) regardless of w,
//   * small E tops out at w^2/4 total conflicts per warp, large E
//     approaches w^2/2.

#include <iostream>

#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main() {
  using namespace wcm;

  std::cout << "=== Attack scaling across bank widths (synthetic devices) "
               "===\n\n";

  Table t({"w", "E", "regime", "beta2_attacked", "beta2_random",
           "eff_parallelism", "aligned/warp", "w^2/4", "w^2/2"});
  bool parallelism_ok = true;
  for (const u32 w : {16u, 32u, 64u}) {
    const auto dev = gpusim::synthetic_device(w);
    for (const u32 e :
         {static_cast<u32>(w / 4 + 1) | 1u, static_cast<u32>(w / 2 + 1),
          static_cast<u32>(w - 1)}) {
      const auto regime = core::classify_e(w, e);
      if (regime != core::ERegime::small && regime != core::ERegime::large) {
        continue;
      }
      sort::SortConfig cfg{e, 4 * w, w};
      const std::size_t n = cfg.tile() * 4;
      const auto worst =
          workload::make_input(workload::InputKind::worst_case, n, cfg, 3);
      const auto random = workload::random_permutation(n, 3);
      const auto rw = sort::pairwise_merge_sort(worst, cfg, dev);
      const auto rr = sort::pairwise_merge_sort(random, cfg, dev);
      const double attacked_beta2 =
          gpusim::beta2(rw.rounds.back().kernel);
      parallelism_ok =
          parallelism_ok &&
          std::abs(attacked_beta2 - core::exact_beta2_prediction(w, e)) <
              1e-9;
      t.new_row()
          .add(static_cast<std::size_t>(w))
          .add(static_cast<std::size_t>(e))
          .add(regime == core::ERegime::small ? "small" : "large")
          .add(attacked_beta2, 2)
          .add(gpusim::beta2(rr.rounds.back().kernel), 2)
          .add(static_cast<unsigned long long>(
              core::effective_parallelism(w, e)))
          .add(static_cast<unsigned long long>(
              core::aligned_worst_case(w, e)))
          .add(static_cast<std::size_t>(w) * w / 4)
          .add(static_cast<std::size_t>(w) * w / 2);
    }
  }
  t.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  simulated attacked beta_2 == evaluator prediction for "
               "every (w, E): "
            << (parallelism_ok ? "ok" : "MISMATCH") << '\n'
            << "  random beta_2 stays near the balls-in-bins max load "
               "(~3-4) while the attack scales with E — the gap widens "
               "with w, the paper's asymptotic claim.\n";
  return 0;
}
