// Expected-case analysis (the open problem of the paper's conclusion):
// Monte Carlo distribution of bank conflicts over random inputs, the
// worst-case input's place in that distribution, and the
// inversions-vs-conflicts correlation (Karsin et al. 2018).
//
// The paper's related-work critique — "a random sample of only a dozen
// inputs represents no statistical significance" — is exactly why this
// bench reports the distribution (mean, stddev, min, max) rather than a
// single average.

#include <iostream>

#include "analysis/expectation.hpp"
#include "util/table.hpp"
#include "workload/inversions.hpp"

int main() {
  using namespace wcm;

  const auto dev = gpusim::quadro_m4000();
  const sort::SortConfig cfg{15, 128, 32};  // small tile: many cheap samples
  const std::size_t n = cfg.tile() << 4;
  const std::size_t samples = 24;

  std::cout << "=== Expected conflicts over random inputs (" << dev.name
            << ", " << cfg.to_string() << ", n=" << n << ", " << samples
            << " samples) ===\n\n";

  const auto random_dist = analysis::sample_distribution(
      workload::InputKind::random, n, cfg, dev, samples, 1000);

  Table t({"metric", "mean", "stddev", "min", "max"});
  const auto row = [&](const char* name, const analysis::Moments& m,
                       int prec) {
    t.new_row().add(name).add(m.mean, prec).add(m.stddev, prec).add(m.min,
                                                                    prec)
        .add(m.max, prec);
  };
  row("beta2", random_dist.beta2, 3);
  row("conflicts/elem", random_dist.conflicts_per_element, 3);
  row("time_ms*", random_dist.seconds, 6);
  t.print(std::cout);
  std::cout << "(*seconds scaled: modeled)\n\n";

  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 1);
  const auto worst_report = sort::pairwise_merge_sort(worst, cfg, dev);
  std::cout << "constructed worst case: beta2 = "
            << format_fixed(worst_report.beta2(), 3) << " ("
            << format_fixed(
                   analysis::z_score(random_dist.beta2,
                                     worst_report.beta2()),
                   1)
            << " stddevs above the random mean), conflicts/elem = "
            << format_fixed(worst_report.conflicts_per_element(), 3) << " ("
            << format_fixed(
                   analysis::z_score(random_dist.conflicts_per_element,
                                     worst_report.conflicts_per_element()),
                   1)
            << " stddevs)\n\n";

  std::cout << "=== Conflicts vs inversions (nearly-sorted family) ===\n\n";
  const std::vector<std::size_t> swap_counts{0,      n / 512, n / 128,
                                             n / 32, n / 8,   n / 2, 2 * n};
  const auto sweep = analysis::inversion_sweep(n, cfg, dev, swap_counts, 7);
  Table t2({"swaps", "inversion_fraction", "beta2", "confl/elem"});
  for (const auto& p : sweep) {
    t2.new_row()
        .add(p.swaps)
        .add(p.inversion_fraction, 4)
        .add(p.beta2, 3)
        .add(p.conflicts_per_element, 3);
  }
  t2.print(std::cout);

  bool monotone = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    monotone = monotone &&
               sweep[i].conflicts_per_element >=
                   sweep[i - 1].conflicts_per_element * 0.98;
  }
  const double spread_sigma_over_mean =
      random_dist.seconds.stddev / random_dist.seconds.mean;
  std::cout << "\nshape checks:\n"
            << "  conflicts grow with inversions (Karsin et al.): "
            << (monotone ? "ok" : "MISMATCH") << '\n'
            << "  random-input runtime variance is small (sigma/mean = "
            << format_fixed(spread_sigma_over_mean * 100.0, 2)
            << "%) while the worst case sits far outside it — the paper's "
               "point that averages over a dozen random inputs say nothing "
               "about the worst case.\n";
  return 0;
}
