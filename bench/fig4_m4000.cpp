// Figure 4 reproduction: throughput of Thrust (E=15, b=512) and Modern GPU
// (E=15, b=128) on the Quadro M4000 model, random vs constructed worst-case
// inputs, over n = bE * 2^k.  Prints the four curves and the paper's
// headline slowdown statistics (paper: peak 50.49% / average 43.53% for
// Thrust, 33.82% / 27.3% for Modern GPU — magnitudes are model-calibrated;
// the asserted shape is "worst slower everywhere, Thrust above MGPU, peak
// slowdown grows with n").
//
// Size range: WCM_MIN_K / WCM_MAX_K environment variables (default 1..8;
// functional simulation of the paper's 6e7-element points takes hours on a
// single host core, and the shape is stable from k ~ 5).  The four sweeps
// run concurrently on the campaign runtime (WCM_THREADS overrides the
// worker count); seeds match the serial analysis::run_sweep, so the
// numbers are identical to the pre-runtime version of this bench.

#include <iostream>

#include "analysis/experiment.hpp"
#include "runtime/campaign.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace wcm;
  using analysis::SweepSpec;

  // WCM_TRACE_OUT=<path> records the bench as a Chrome trace; the wall
  // clock below shares the tracer's time source (telemetry/stopwatch.hpp).
  telemetry::configure_from_env();
  const telemetry::Stopwatch wall;

  const auto dev = gpusim::quadro_m4000();

  struct Curve {
    const char* label;
    sort::SortConfig config;
    sort::MergeSortLibrary lib;
    workload::InputKind input;
    std::vector<analysis::SeriesPoint> series;
  };
  std::vector<Curve> curves = {
      {"thrust/random", sort::params_15_512(), sort::MergeSortLibrary::thrust,
       workload::InputKind::random, {}},
      {"thrust/worst", sort::params_15_512(), sort::MergeSortLibrary::thrust,
       workload::InputKind::worst_case, {}},
      {"mgpu/random", sort::params_15_128(), sort::MergeSortLibrary::mgpu,
       workload::InputKind::random, {}},
      {"mgpu/worst", sort::params_15_128(), sort::MergeSortLibrary::mgpu,
       workload::InputKind::worst_case, {}},
  };

  SweepSpec base;
  base.device = dev;
  base.min_k = 1;
  base.max_k = 8;
  analysis::apply_env_overrides(base);

  std::vector<SweepSpec> specs;
  specs.reserve(curves.size());
  for (const auto& c : curves) {
    SweepSpec spec = base;
    spec.config = c.config;
    spec.library = c.lib;
    spec.input = c.input;
    specs.push_back(spec);
  }
  {
    WCM_SPAN("bench.fig4.sweeps");
    auto series = runtime::run_sweeps(specs);
    for (std::size_t i = 0; i < curves.size(); ++i) {
      curves[i].series = std::move(series[i]);
    }
  }

  std::cout << "=== Figure 4: throughput on " << dev.name
            << " (elements/s, modeled) ===\n\n";
  Table t({"n", "thrust_random", "thrust_worst", "mgpu_random(n')",
           "mgpu_worst(n')"});
  for (std::size_t i = 0; i < curves[0].series.size(); ++i) {
    t.new_row().add(curves[0].series[i].n);
    for (const auto& c : curves) {
      t.add(c.series[i].throughput / 1e6, 1);
    }
  }
  t.print(std::cout);
  maybe_export_csv(t, "fig4_m4000");
  std::cout << "(columns in Me/s; mgpu sizes n' = 1920 * 2^k differ from "
               "thrust's 7680 * 2^k, as both sweep their own bE * 2^k)\n\n";

  const auto thrust = analysis::compare_series(curves[0].series,
                                               curves[1].series);
  const auto mgpu = analysis::compare_series(curves[2].series,
                                             curves[3].series);
  std::cout << "slowdown of constructed inputs vs random:\n";
  std::cout << "  Thrust     peak " << format_fixed(thrust.peak_percent, 2)
            << "% at n=" << thrust.peak_n << ", average "
            << format_fixed(thrust.average_percent, 2)
            << "%   (paper: peak 50.49%, average 43.53%)\n";
  std::cout << "  Modern GPU peak " << format_fixed(mgpu.peak_percent, 2)
            << "% at n=" << mgpu.peak_n << ", average "
            << format_fixed(mgpu.average_percent, 2)
            << "%   (paper: peak 33.82%, average 27.3%)\n\n";

  // Check from n >= 8 tiles: below that a single merge round's partition
  // noise can outweigh the (single round of) extra conflicts, on the real
  // GPUs as much as in the model.
  bool worst_always_slower = true;
  for (const std::size_t c : {0u, 2u}) {
    for (std::size_t i = 0; i < curves[c].series.size(); ++i) {
      if (curves[c].series[i].n < curves[c].config.tile() * 8) {
        continue;
      }
      worst_always_slower = worst_always_slower &&
                            curves[c + 1].series[i].seconds >
                                curves[c].series[i].seconds;
    }
  }
  const bool thrust_above_mgpu =
      curves[0].series.back().throughput > curves[2].series.back().throughput;
  std::cout << "shape checks:\n"
            << "  worst-case slower than random at every size: "
            << (worst_always_slower ? "ok" : "MISMATCH") << '\n'
            << "  Thrust outperforms Modern GPU (random): "
            << (thrust_above_mgpu ? "ok" : "MISMATCH") << '\n'
            << "  slowdown grows with n (log-shaped): "
            << (thrust.peak_n == curves[0].series.back().n ? "ok"
                                                           : "check table")
            << '\n';
  std::cout << "wall time: " << format_fixed(wall.elapsed_seconds(), 2)
            << " s\n";
  telemetry::flush_trace(&std::cerr);
  return 0;
}
