// In-flight request coalescing (runtime::SingleFlight): the leader/join
// contract, exactly-once callback delivery in join order, flight teardown
// after complete(), callback re-entrancy (callbacks run outside the table
// lock), and a concurrent stress proving N racing demands for one key
// elect exactly one leader.  The daemon-level consequence — one scheduler
// job and one cache store for N identical requests — is asserted in
// test_serve_daemon.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/singleflight.hpp"

namespace wcm::runtime {
namespace {

FlightResult ok_result(std::string value) {
  FlightResult r;
  r.ok = true;
  r.value = std::move(value);
  return r;
}

TEST(SingleFlight, FirstCallerLeadsLaterCallersJoin) {
  SingleFlight flights;
  std::vector<std::string> delivered;
  EXPECT_TRUE(flights.lead_or_join(
      7, [&](const FlightResult& r) { delivered.push_back("L:" + r.value); }));
  EXPECT_FALSE(flights.lead_or_join(
      7, [&](const FlightResult& r) { delivered.push_back("F:" + r.value); }));
  EXPECT_EQ(flights.inflight(), 1u);
  EXPECT_TRUE(delivered.empty());  // nothing fires before complete()

  flights.complete(7, ok_result("x"));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], "L:x");  // leader first, then followers in order
  EXPECT_EQ(delivered[1], "F:x");
  EXPECT_EQ(flights.inflight(), 0u);
}

TEST(SingleFlight, DistinctKeysAreIndependentFlights) {
  SingleFlight flights;
  int a = 0;
  int b = 0;
  EXPECT_TRUE(flights.lead_or_join(1, [&](const FlightResult&) { ++a; }));
  EXPECT_TRUE(flights.lead_or_join(2, [&](const FlightResult&) { ++b; }));
  EXPECT_EQ(flights.inflight(), 2u);
  flights.complete(1, ok_result(""));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
  flights.complete(2, ok_result(""));
  EXPECT_EQ(b, 1);
}

TEST(SingleFlight, FlightIsForgottenAfterComplete) {
  SingleFlight flights;
  int first = 0;
  int second = 0;
  EXPECT_TRUE(flights.lead_or_join(7, [&](const FlightResult&) { ++first; }));
  flights.complete(7, ok_result(""));
  // The key is free again: the next demand elects a fresh leader and the
  // old callback must not fire a second time.
  EXPECT_TRUE(flights.lead_or_join(7, [&](const FlightResult&) { ++second; }));
  flights.complete(7, ok_result(""));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SingleFlight, CompleteWithoutFlightIsANoOp) {
  SingleFlight flights;
  flights.complete(42, ok_result("ignored"));  // must not crash or leak
  EXPECT_EQ(flights.inflight(), 0u);
}

TEST(SingleFlight, ErrorResultsFanOutVerbatim) {
  SingleFlight flights;
  FlightResult seen;
  EXPECT_TRUE(flights.lead_or_join(
      9, [&](const FlightResult& r) { seen = r; }));
  FlightResult failure;
  failure.ok = false;
  failure.error_type = "overloaded";
  failure.error_message = "queue full";
  flights.complete(9, failure);
  EXPECT_FALSE(seen.ok);
  EXPECT_EQ(seen.error_type, "overloaded");
  EXPECT_EQ(seen.error_message, "queue full");
}

TEST(SingleFlight, CallbacksMayReenterTheTable) {
  SingleFlight flights;
  int chained = 0;
  // Completing key 1 starts a flight for key 2 from inside the callback —
  // this deadlocks unless callbacks run outside the table lock.
  EXPECT_TRUE(flights.lead_or_join(1, [&](const FlightResult&) {
    EXPECT_TRUE(
        flights.lead_or_join(2, [&](const FlightResult&) { ++chained; }));
    flights.complete(2, ok_result(""));
  }));
  flights.complete(1, ok_result(""));
  EXPECT_EQ(chained, 1);
}

TEST(SingleFlight, ConcurrentDemandsElectExactlyOneLeader) {
  constexpr int kThreads = 16;
  SingleFlight flights;
  std::atomic<int> leaders{0};
  std::atomic<int> delivered{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      if (flights.lead_or_join(
              7, [&](const FlightResult&) { delivered.fetch_add(1); })) {
        leaders.fetch_add(1);
        flights.complete(7, ok_result("x"));
      }
    });
  }
  go.store(true);
  for (auto& t : threads) {
    t.join();
  }
  // Exactly one thread computed; everyone got an answer.  (Late arrivals
  // that missed the flight re-lead a fresh one, so leaders can exceed 1
  // only if a completion raced a join — which complete()'s fan-out-then-
  // forget ordering forbids for callers that joined before it ran.)
  EXPECT_GE(leaders.load(), 1);
  EXPECT_EQ(delivered.load(), kThreads);
  EXPECT_EQ(flights.inflight(), 0u);
}

}  // namespace
}  // namespace wcm::runtime
