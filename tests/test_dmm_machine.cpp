// Tests for the functional DMM machine: value movement, stats accumulation,
// bounds and CREW enforcement.

#include <gtest/gtest.h>

#include "dmm/machine.hpp"
#include "util/check.hpp"

namespace wcm::dmm {
namespace {

TEST(Machine, PeekPokeFillDump) {
  Machine m(8, 64);
  EXPECT_EQ(m.num_modules(), 8u);
  EXPECT_EQ(m.memory_words(), 64u);
  m.poke(3, 42);
  EXPECT_EQ(m.peek(3), 42);
  const std::vector<word> vals{1, 2, 3};
  m.fill(vals, 10);
  EXPECT_EQ(m.dump(10, 3), vals);
  EXPECT_THROW((void)m.peek(64), contract_error);
  EXPECT_THROW(m.poke(64, 0), contract_error);
  EXPECT_THROW(m.fill(vals, 62), contract_error);
  EXPECT_THROW((void)m.dump(62, 3), contract_error);
}

TEST(Machine, StepReadsReturnValuesInRequestOrder) {
  Machine m(4, 16);
  for (std::size_t a = 0; a < 16; ++a) {
    m.poke(a, static_cast<word>(a * 10));
  }
  std::vector<Request> step{{0, 5, Op::read, 0},
                            {1, 2, Op::read, 0},
                            {2, 9, Op::read, 0}};
  std::vector<word> out;
  m.step(step, &out);
  EXPECT_EQ(out, (std::vector<word>{50, 20, 90}));
}

TEST(Machine, StepAppliesWrites) {
  Machine m(4, 16);
  std::vector<Request> step{{0, 1, Op::write, 11}, {1, 2, Op::write, 22}};
  m.step(step, nullptr);
  EXPECT_EQ(m.peek(1), 11);
  EXPECT_EQ(m.peek(2), 22);
}

TEST(Machine, SynchronousSemantics) {
  // A read and a write to *different* addresses in one step: the read sees
  // the pre-step value even if the write lands "first" in request order.
  Machine m(4, 16);
  m.poke(3, 7);
  std::vector<Request> step{{0, 3, Op::write, 99}, {1, 7, Op::read, 0}};
  std::vector<word> out;
  m.step(step, &out);
  EXPECT_EQ(m.peek(3), 99);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Machine, StatsAccumulateAcrossSteps) {
  Machine m(4, 16);
  std::vector<Request> conflict{{0, 0, Op::read, 0}, {1, 4, Op::read, 0}};
  m.step(conflict, nullptr);
  m.step(conflict, nullptr);
  EXPECT_EQ(m.stats().steps, 2u);
  EXPECT_EQ(m.stats().requests, 4u);
  EXPECT_EQ(m.stats().serialization_cycles, 4u);
  EXPECT_EQ(m.stats().replays, 2u);
  EXPECT_EQ(m.stats().max_bank_degree, 2u);
  m.reset_stats();
  EXPECT_EQ(m.stats().steps, 0u);
}

TEST(Machine, RejectsOutOfRangeRequests) {
  Machine m(4, 16);
  std::vector<Request> bad_proc{{4, 0, Op::read, 0}};
  EXPECT_THROW(m.step(bad_proc, nullptr), contract_error);
  std::vector<Request> bad_addr{{0, 16, Op::read, 0}};
  EXPECT_THROW(m.step(bad_addr, nullptr), contract_error);
}

TEST(Machine, CrewViolationDoesNotCorruptMemory) {
  Machine m(4, 16);
  m.poke(5, 1);
  std::vector<Request> bad{{0, 5, Op::write, 2}, {1, 5, Op::write, 3}};
  EXPECT_THROW(m.step(bad, nullptr), contract_error);
  EXPECT_EQ(m.peek(5), 1);  // analyze rejected the step before any write
}

TEST(MachineStats, MergeOfTotals) {
  MachineStats a;
  a.steps = 1;
  a.requests = 2;
  a.serialization_cycles = 3;
  a.replays = 1;
  a.conflicting_accesses = 2;
  a.max_bank_degree = 2;
  MachineStats b = a;
  b.max_bank_degree = 5;
  a += b;
  EXPECT_EQ(a.steps, 2u);
  EXPECT_EQ(a.requests, 4u);
  EXPECT_EQ(a.serialization_cycles, 6u);
  EXPECT_EQ(a.max_bank_degree, 5u);
}

}  // namespace
}  // namespace wcm::dmm
