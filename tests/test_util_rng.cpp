// Tests for the deterministic RNG: reproducibility, bound correctness, and
// shuffle permutation invariants.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm {
namespace {

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  u64 s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_THROW((void)rng.below(0), contract_error);
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro256, BelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr u64 kBuckets = 8;
  constexpr int kDraws = 8000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets / 2);
    EXPECT_LT(c, kDraws / kBuckets * 2);
  }
}

TEST(ForkSeed, PureFunctionOfRootAndStream) {
  EXPECT_EQ(fork_seed(1, 0), fork_seed(1, 0));
  EXPECT_NE(fork_seed(1, 0), fork_seed(1, 1));
  EXPECT_NE(fork_seed(1, 0), fork_seed(2, 0));
  // Adjacent streams of adjacent roots must not collide pairwise.
  std::set<u64> seeds;
  for (u64 root = 0; root < 16; ++root) {
    for (u64 stream = 0; stream < 64; ++stream) {
      seeds.insert(fork_seed(root, stream));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 64u);
}

TEST(Fork, ConstAndIndependentOfCallOrder) {
  const Xoshiro256 root(2026);
  // Forking never advances the parent, so any fork order yields the same
  // children: fork(3) first or last makes no difference.
  Xoshiro256 late = root.fork(3);
  Xoshiro256 a = root.fork(0);
  Xoshiro256 b = root.fork(1);
  Xoshiro256 early = root.fork(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(early(), late());
  }
  // ... and distinct streams diverge.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Fork, ChildrenUnaffectedByInterleavedDraws) {
  Xoshiro256 parent(77);
  // Snapshot children before and after draining draws from earlier
  // children in a scrambled order: each child stream is a pure function of
  // the parent state at fork time, exactly what parallel jobs need.
  std::vector<u64> expected;
  for (u64 job = 0; job < 8; ++job) {
    Xoshiro256 child = parent.fork(job);
    expected.push_back(child());
  }
  for (u64 job : {5ULL, 2ULL, 7ULL, 0ULL, 6ULL, 1ULL, 4ULL, 3ULL}) {
    Xoshiro256 child = parent.fork(job);
    EXPECT_EQ(child(), expected[job]) << "stream " << job;
  }
}

TEST(Shuffle, ProducesPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Xoshiro256 rng(5);
  shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Shuffle, DeterministicPerSeed) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Xoshiro256 r1(9), r2(9);
  shuffle(a, r1);
  shuffle(b, r2);
  EXPECT_EQ(a, b);
}

TEST(Shuffle, ActuallyMoves) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const auto before = v;
  Xoshiro256 rng(13);
  shuffle(v, rng);
  EXPECT_NE(v, before);
}

}  // namespace
}  // namespace wcm
