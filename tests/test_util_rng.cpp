// Tests for the deterministic RNG: reproducibility, bound correctness, and
// shuffle permutation invariants.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm {
namespace {

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  u64 s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_THROW((void)rng.below(0), contract_error);
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Xoshiro256, BelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr u64 kBuckets = 8;
  constexpr int kDraws = 8000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets / 2);
    EXPECT_LT(c, kDraws / kBuckets * 2);
  }
}

TEST(Shuffle, ProducesPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Xoshiro256 rng(5);
  shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Shuffle, DeterministicPerSeed) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Xoshiro256 r1(9), r2(9);
  shuffle(a, r1);
  shuffle(b, r2);
  EXPECT_EQ(a, b);
}

TEST(Shuffle, ActuallyMoves) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const auto before = v;
  Xoshiro256 rng(13);
  shuffle(v, rng);
  EXPECT_NE(v, before);
}

}  // namespace
}  // namespace wcm
