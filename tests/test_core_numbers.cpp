// Tests for the paper's number-theoretic lemmas: regime classification,
// Lemma 1, Lemma 4, and the x_i / y_i sequence properties of Lemmas 7 / 8,
// verified exhaustively over all valid (w, E) pairs with TEST_P sweeps.

#include <gtest/gtest.h>

#include <set>

#include "core/numbers.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

TEST(Classify, Regimes) {
  EXPECT_EQ(classify_e(32, 15), ERegime::small);
  EXPECT_EQ(classify_e(32, 17), ERegime::large);
  EXPECT_EQ(classify_e(32, 16), ERegime::power_of_two);
  EXPECT_EQ(classify_e(32, 8), ERegime::power_of_two);
  EXPECT_EQ(classify_e(32, 12), ERegime::shared_factor);
  EXPECT_EQ(classify_e(32, 2), ERegime::unsupported);   // E < 3
  EXPECT_EQ(classify_e(32, 32), ERegime::unsupported);  // E >= w
  EXPECT_EQ(classify_e(32, 40), ERegime::unsupported);
  EXPECT_THROW((void)classify_e(30, 5), contract_error);
}

TEST(Lemma1, Bound) {
  EXPECT_EQ(lemma1_bound(16, 32), 1u);
  EXPECT_EQ(lemma1_bound(32, 32), 1u);
  EXPECT_EQ(lemma1_bound(33, 32), 2u);
  EXPECT_EQ(lemma1_bound(64, 32), 2u);
  EXPECT_EQ(lemma1_bound(32 * 32, 32), 32u);
  EXPECT_EQ(lemma1_bound(100000, 32), 32u);  // capped at w
  EXPECT_THROW((void)lemma1_bound(5, 0), contract_error);
}

TEST(Lemma4, RIsOddAndCoprime) {
  for (const u32 w : {8u, 16u, 32u, 64u, 128u}) {
    for (u32 E = w / 2 + 1; E < w; E += 2) {
      if (classify_e(w, E) != ERegime::large) {
        continue;
      }
      const u32 r = large_e_r(w, E);
      EXPECT_EQ(r, w - E);
      EXPECT_EQ(r % 2, 1u);              // difference of even and odd
      EXPECT_EQ(gcd(E, r), 1u);          // Lemma 4
    }
  }
  EXPECT_THROW((void)large_e_r(32, 15), contract_error);  // small regime
}

struct SequenceCase {
  u32 w;
  u32 E;
};

class LargeESequences : public ::testing::TestWithParam<SequenceCase> {};

// Lemma 7.1: x_i + y_i = E for all i in 1..E-1.
TEST_P(LargeESequences, Lemma7SumIsE) {
  const auto [w, E] = GetParam();
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  for (u32 i = 1; i < E; ++i) {
    EXPECT_EQ(x[i] + y[i], E) << "i=" << i;
    EXPECT_GT(x[i], 0u);  // never zero (proof of Lemma 7.1)
    EXPECT_GT(y[i], 0u);
  }
}

// Lemma 7.2: all x_i distinct, all y_i distinct.
TEST_P(LargeESequences, Lemma7Uniqueness) {
  const auto [w, E] = GetParam();
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  const std::set<u32> xs(x.begin() + 1, x.end());
  const std::set<u32> ys(y.begin() + 1, y.end());
  EXPECT_EQ(xs.size(), static_cast<std::size_t>(E - 1));
  EXPECT_EQ(ys.size(), static_cast<std::size_t>(E - 1));
}

// Lemma 7.3: x_i = y_{E-i}.
TEST_P(LargeESequences, Lemma7Symmetry) {
  const auto [w, E] = GetParam();
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  for (u32 i = 1; i < E; ++i) {
    EXPECT_EQ(x[i], y[E - i]) << "i=" << i;
  }
}

// Lemma 8.3: consecutive sums x_i + y_{i+1} are either r or w, with
// exactly (r-1) of them equal to r and (E-r-1) equal to w.
TEST_P(LargeESequences, Lemma8ConsecutiveSums) {
  const auto [w, E] = GetParam();
  const u32 r = large_e_r(w, E);
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  u32 sum_r = 0, sum_w = 0;
  for (u32 i = 1; i + 1 < E; ++i) {
    const u32 s = x[i] + y[i + 1];
    EXPECT_TRUE(s == r || s == w) << "i=" << i << " sum=" << s;
    if (s == r) {
      ++sum_r;
    } else {
      ++sum_w;
    }
    // Lemma 8.3's case split: sum is r iff x_i < r.
    EXPECT_EQ(s == r, x[i] < r) << "i=" << i;
  }
  EXPECT_EQ(sum_r, r - 1);
  EXPECT_EQ(sum_w, E - r - 1);
}

// Boundary values used by sequence T's rule 1:
// (a_1, b_1) = (y_1, x_1) = (r, E - r) and x_{E-1} = r.
TEST_P(LargeESequences, BoundaryValues) {
  const auto [w, E] = GetParam();
  const u32 r = large_e_r(w, E);
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  EXPECT_EQ(y[1], r);
  EXPECT_EQ(x[1], E - r);
  EXPECT_EQ(x[E - 1], r);
  EXPECT_EQ(y[E - 1], E - r);
}

std::vector<SequenceCase> all_large_cases() {
  std::vector<SequenceCase> cases;
  for (const u32 w : {8u, 16u, 32u, 64u, 128u}) {
    for (u32 E = 3; E < w; E += 2) {
      if (classify_e(w, E) == ERegime::large) {
        cases.push_back({w, E});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLargeE, LargeESequences,
                         ::testing::ValuesIn(all_large_cases()),
                         [](const auto& tinfo) {
                           return "w" + std::to_string(tinfo.param.w) + "_E" +
                                  std::to_string(tinfo.param.E);
                         });

TEST(ClosedForms, SmallE) {
  EXPECT_EQ(aligned_small_e(7), 49u);
  EXPECT_EQ(aligned_small_e(15), 225u);
}

TEST(ClosedForms, LargeEPaperValues) {
  // Figure 3 right: w=16, E=9 aligns 80 of 144 elements.
  EXPECT_EQ(aligned_large_e(16, 9), 80u);
  // Paper Sec. III-B: E = w/2 + 1 gives E^2 - 1.
  for (const u32 w : {8u, 16u, 32u, 64u}) {
    const u32 e = w / 2 + 1;
    EXPECT_EQ(aligned_large_e(w, e), static_cast<u64>(e) * e - 1);
  }
  // E = w - 1 gives E^2/2 + 3E/2 - 1 (paper: (E^2 + 3E)/2 - 1 ... with
  // E odd this is integer).
  for (const u32 w : {8u, 16u, 32u, 64u}) {
    const u32 e = w - 1;
    EXPECT_EQ(aligned_large_e(w, e),
              (static_cast<u64>(e) * e + 3 * e) / 2 - 1);
  }
}

TEST(ClosedForms, DispatcherRejectsOtherRegimes) {
  EXPECT_EQ(aligned_worst_case(32, 15), 225u);
  EXPECT_EQ(aligned_worst_case(32, 17), 288u);
  EXPECT_THROW((void)aligned_worst_case(32, 16), contract_error);
  EXPECT_THROW((void)aligned_worst_case(32, 12), contract_error);
}

// Sec. III-C: for small E the total is at most w^2/4; for large E it
// approaches w^2/2 as E approaches w.
TEST(ClosedForms, SectionIIICTradeoff) {
  for (const u32 w : {16u, 32u, 64u}) {
    for (u32 E = 3; E < w; E += 2) {
      const auto regime = classify_e(w, E);
      if (regime == ERegime::small) {
        EXPECT_LE(aligned_small_e(E), static_cast<u64>(w) * w / 4);
      } else if (regime == ERegime::large) {
        EXPECT_LE(aligned_large_e(w, E), static_cast<u64>(E) * E);
        EXPECT_GE(aligned_large_e(w, E), static_cast<u64>(E) * E / 2);
      }
    }
    // The largest E gets within E/2 + ... of w^2/2.
    const u32 e_max = w - 1;
    EXPECT_GT(aligned_large_e(w, e_max), static_cast<u64>(w) * w / 2 - 2 * w);
  }
}

}  // namespace
}  // namespace wcm::core
