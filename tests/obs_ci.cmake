# Observability gate (ISSUE acceptance): the request-tracing and metrics
# surfaces end to end, through the real binaries —
#
#   1. a traced serve session (WCM_TRACE_OUT + WCM_EVENTLOG + telemetry)
#      exports one Chrome trace in which every request's spans share that
#      request's wire trace_id across >= 2 exported threads, with the
#      serve.request -> scheduler.job -> serve.respond causal chain and
#      the wire parent_span_id on the root span;
#   2. the structured event log strict-parses line by line as JSON and
#      carries the same correlation ids;
#   3. a live daemon answers `wcmgen metrics` in all three exposition
#      formats (json parses, prometheus carries # TYPE headers and
#      cumulative histogram buckets) and one `wcm-top --once` frame;
#   4. WCM_TRACE_MAX_SPANS=4 under load degrades the trace, not the
#      daemon: every request still answers, and the metrics op reports a
#      nonzero telemetry.dropped_spans counter;
#   5. wcm-benchdiff: identical reports exit 0, a synthetically regressed
#      p99 exits 1 (and 0 under --report-only), an unreadable report
#      exits 3.
#
# Run as:  cmake -DWCMD=<bin> -DLOADGEN=<bin> -DWCMGEN=<bin>
#                -DWCMTOP=<bin> -DBENCHDIFF=<bin>
#                -DBENCH=<BENCH_serve.json> -DWORKDIR=<dir> -P obs_ci.cmake

# string(JSON ...) needs 3.19; this also sets the IN_LIST policy.
cmake_minimum_required(VERSION 3.19)

foreach(var WCMD LOADGEN WCMGEN WCMTOP BENCHDIFF BENCH WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORKDIR})
# Abstract-namespace sockets are machine-global; a random run id keeps
# concurrent build trees from colliding.
string(RANDOM LENGTH 8 ALPHABET 0123456789abcdef run_id)

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

function(require_match file pattern why)
  file(READ ${file} contents)
  if(NOT contents MATCHES "${pattern}")
    message(FATAL_ERROR "${why}\npattern: ${pattern}\nin ${file}:\n${contents}")
  endif()
endfunction()

# ---- 1. traced session: one Chrome trace, one causal tree per request ----

set(trace_json ${WORKDIR}/obs_trace.json)
set(eventlog ${WORKDIR}/obs_events.jsonl)
file(REMOVE ${trace_json} ${eventlog})

# r1 carries a bare trace_id; r2 adds a caller-side parent span, which
# must come back as the parent of r2's serve.request root.
set(script ${WORKDIR}/obs_traced.txt)
file(WRITE ${script} [[{"op":"generate","id":"r1","params":{"E":5,"b":64,"k":1},"trace":{"trace_id":"a1"}}
{"op":"generate","id":"r2","params":{"E":7,"b":64,"k":1},"trace":{"parent_span_id":"c3","trace_id":"b2"}}
]])
expect_exit(0 ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1 WCM_THREADS=2
            WCM_TRACE_OUT=${trace_json} WCM_EVENTLOG=${eventlog}
            ${LOADGEN} --socket @wcm-obs-${run_id}-traced --spawn ${WCMD}
            --script ${script} --out ${WORKDIR}/obs_traced_out.txt --drain)

if(NOT EXISTS ${trace_json})
  message(FATAL_ERROR "traced daemon exited without exporting ${trace_json}")
endif()
file(READ ${trace_json} trace)
string(JSON n_events ERROR_VARIABLE jerr LENGTH "${trace}" traceEvents)
if(NOT jerr STREQUAL "NOTFOUND")
  message(FATAL_ERROR "Chrome trace is not valid JSON: ${jerr}")
endif()

# Walk every exported span and bin (name, tid, parent) by args.trace_id.
set(t_a1 "00000000000000a1")
set(t_b2 "00000000000000b2")
foreach(t ${t_a1} ${t_b2})
  set(names_${t} "")
  set(tids_${t} "")
  set(root_parent_${t} "")
endforeach()
math(EXPR last "${n_events} - 1")
foreach(i RANGE 0 ${last})
  string(JSON tid ERROR_VARIABLE jerr GET "${trace}" traceEvents ${i}
         args trace_id)
  if(NOT jerr STREQUAL "NOTFOUND")
    continue()  # untraced span: no args object
  endif()
  set(t ${tid})
  if(NOT DEFINED names_${t})
    continue()  # daemon-minted id (e.g. the drain op's own trace)
  endif()
  string(JSON name GET "${trace}" traceEvents ${i} name)
  string(JSON thread GET "${trace}" traceEvents ${i} tid)
  list(APPEND names_${t} ${name})
  list(APPEND tids_${t} ${thread})
  if(name STREQUAL "serve.request")
    string(JSON root_parent_${t} GET "${trace}" traceEvents ${i}
           args parent_span_id)
  endif()
endforeach()

foreach(t ${t_a1} ${t_b2})
  foreach(required serve.request scheduler.job serve.respond)
    if(NOT "${required}" IN_LIST names_${t})
      message(FATAL_ERROR
        "trace ${t} is missing its '${required}' span; got: ${names_${t}}")
    endif()
  endforeach()
  list(REMOVE_DUPLICATES tids_${t})
  list(LENGTH tids_${t} n_tids)
  if(n_tids LESS 2)
    message(FATAL_ERROR
      "trace ${t} never crossed a thread boundary (tids: ${tids_${t}})")
  endif()
endforeach()
if(NOT root_parent_${t_a1} STREQUAL "0000000000000000")
  message(FATAL_ERROR
    "r1 sent no parent span, but its root has parent "
    "'${root_parent_${t_a1}}'")
endif()
if(NOT root_parent_${t_b2} STREQUAL "00000000000000c3")
  message(FATAL_ERROR
    "r2's wire parent_span_id c3 was lost; root parent is "
    "'${root_parent_${t_b2}}'")
endif()

# ---- 2. event log: strict JSONL with the same correlation ids ------------

if(NOT EXISTS ${eventlog})
  message(FATAL_ERROR "WCM_EVENTLOG produced no ${eventlog}")
endif()
file(STRINGS ${eventlog} ev_lines)
list(LENGTH ev_lines n_lines)
if(n_lines EQUAL 0)
  message(FATAL_ERROR "event log is empty")
endif()
set(ev_names "")
set(ev_traces "")
foreach(line ${ev_lines})
  string(JSON ev ERROR_VARIABLE jerr GET "${line}" event)
  if(NOT jerr STREQUAL "NOTFOUND")
    message(FATAL_ERROR "event-log line is not strict JSON: ${jerr}\n${line}")
  endif()
  list(APPEND ev_names ${ev})
  string(JSON t ERROR_VARIABLE jerr GET "${line}" trace_id)
  if(jerr STREQUAL "NOTFOUND")
    list(APPEND ev_traces ${t})
  endif()
endforeach()
foreach(required serve.request serve.respond)
  if(NOT "${required}" IN_LIST ev_names)
    message(FATAL_ERROR "event log has no '${required}' event: ${ev_names}")
  endif()
endforeach()
if(NOT "${t_a1}" IN_LIST ev_traces)
  message(FATAL_ERROR
    "event log never mentions r1's trace id ${t_a1}: ${ev_traces}")
endif()

# ---- 3. live daemon: exposition formats + one wcm-top frame ---------------

set(live_sock @wcm-obs-${run_id}-live)
set(pidfile ${WORKDIR}/obs_wcmd.pid)
# Backgrounded by hand (loadgen --spawn reaps its daemon at exit, but this
# phase needs one that outlives several client invocations).  Output is
# redirected so the pipe closes when sh exits.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1
          sh -c "${WCMD} --socket ${live_sock} --quiet >/dev/null 2>&1 & \
                 echo $! > ${pidfile}"
  RESULT_VARIABLE rv ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "could not background a live daemon: ${err}")
endif()

# wcmgen retries the connect up to --timeout-ms, so this both waits for
# the socket and checks the json exposition parses.
execute_process(
  COMMAND ${WCMGEN} metrics --socket ${live_sock} --format json
          --timeout-ms 10000
  RESULT_VARIABLE rv OUTPUT_VARIABLE metrics_json ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "wcmgen metrics --format json failed (${rv}): ${err}")
endif()
string(JSON n ERROR_VARIABLE jerr LENGTH "${metrics_json}" metrics)
if(NOT jerr STREQUAL "NOTFOUND")
  message(FATAL_ERROR
    "metrics json exposition does not parse: ${jerr}\n${metrics_json}")
endif()

# Some traffic, so the serve counters and latency histogram exist.
expect_exit(0 ${LOADGEN} --socket ${live_sock}
            --requests 60 --conns 2 --seed 3
            --out ${WORKDIR}/obs_live_mix.json)

execute_process(
  COMMAND ${WCMGEN} metrics --socket ${live_sock} --format prometheus
  RESULT_VARIABLE rv OUTPUT_VARIABLE prom ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "prometheus exposition failed (${rv}): ${err}")
endif()
foreach(pattern
    "# TYPE serve_requests_total counter"
    "serve_requests_total 6[0-9]"  # 60 mix requests + the metrics ops
    "# TYPE serve_latency_ms histogram"
    "serve_latency_ms_bucket{le=\"\\+Inf\"} "
    "serve_latency_ms_count ")
  if(NOT prom MATCHES "${pattern}")
    message(FATAL_ERROR
      "prometheus exposition is missing '${pattern}':\n${prom}")
  endif()
endforeach()

execute_process(
  COMMAND ${WCMGEN} metrics --socket ${live_sock} --format text
  RESULT_VARIABLE rv OUTPUT_VARIABLE text_out ERROR_VARIABLE err)
if(NOT rv EQUAL 0 OR NOT text_out MATCHES "serve.requests")
  message(FATAL_ERROR "text exposition failed (${rv}):\n${text_out}\n${err}")
endif()

execute_process(
  COMMAND ${WCMTOP} --once --no-clear --socket ${live_sock}
  RESULT_VARIABLE rv OUTPUT_VARIABLE top_out ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "wcm-top --once failed (${rv}): ${err}")
endif()
foreach(pattern "qps" "p50" "p99" "cache" "queue" "quarantine")
  if(NOT top_out MATCHES "${pattern}")
    message(FATAL_ERROR "wcm-top frame is missing '${pattern}':\n${top_out}")
  endif()
endforeach()

# Stop the live daemon through the drain op, then wait for the pid to go.
set(drain_script ${WORKDIR}/obs_drain.txt)
file(WRITE ${drain_script} "{\"op\":\"health\",\"id\":\"h\"}\n")
expect_exit(0 ${LOADGEN} --socket ${live_sock} --script ${drain_script}
            --out ${WORKDIR}/obs_drain_out.txt --drain)
execute_process(
  COMMAND sh -c "pid=$(cat ${pidfile}); for i in $(seq 1 100); do \
                 kill -0 $pid 2>/dev/null || exit 0; sleep 0.1; done; exit 1"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "live daemon did not exit after the drain op")
endif()

# ---- 4. bounded span buffers degrade the trace, never the service --------

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1 WCM_TRACE_MAX_SPANS=4
          WCM_TRACE_OUT=${WORKDIR}/obs_trace_capped.json
          ${LOADGEN} --socket @wcm-obs-${run_id}-capped --spawn ${WCMD}
          --requests 80 --conns 2 --seed 5
          --metrics-out ${WORKDIR}/obs_capped_metrics.json
          --require-counter serve.requests:80,serve.responses:80
          --drain
  RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "capped-trace run dropped responses instead of spans (${rv})\n${err}")
endif()
require_match(${WORKDIR}/obs_capped_metrics.json
              "\"name\":\"telemetry.dropped_spans\",\"value\":[1-9]"
              "WCM_TRACE_MAX_SPANS=4 under load reported no dropped spans")

# ---- 5. wcm-benchdiff: the perf-regression gate ---------------------------

expect_exit(0 ${BENCHDIFF} ${BENCH} ${BENCH})

file(READ ${BENCH} bench)
string(JSON regressed SET "${bench}" latency_ms p99 9999.5)
file(WRITE ${WORKDIR}/obs_regressed.json "${regressed}")
expect_exit(1 ${BENCHDIFF} ${BENCH} ${WORKDIR}/obs_regressed.json)
expect_exit(0 ${BENCHDIFF} ${BENCH} ${WORKDIR}/obs_regressed.json
            --report-only)
expect_exit(3 ${BENCHDIFF} ${BENCH} ${WORKDIR}/does_not_exist.json)

file(REMOVE_RECURSE ${WORKDIR})
