// Tests for the K-way merge sort substrate: correctness across ways and
// sizes, round-count arithmetic, and the attack-specificity property (the
// pairwise worst-case input does not transfer its full damage).

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/cpu_reference.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() { return SortConfig{5, 64, 32}; }

TEST(MultiwaySort, SortsRandomForVariousWays) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 16;
  const auto input = workload::random_permutation(n, 41);
  for (const u32 ways : {2u, 3u, 4u, 8u}) {
    std::vector<word> out;
    (void)multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), ways,
                              &out);
    EXPECT_EQ(out, std_sort(input)) << "ways=" << ways;
  }
}

TEST(MultiwaySort, NonMultipleRunCounts) {
  const auto cfg = tiny();
  for (const std::size_t tiles : {3u, 5u, 7u, 9u}) {
    const auto input =
        workload::random_permutation(cfg.tile() * tiles, tiles);
    std::vector<word> out;
    (void)multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), 4, &out);
    EXPECT_EQ(out, std_sort(input)) << "tiles=" << tiles;
  }
}

TEST(MultiwaySort, DuplicateKeysStable) {
  const auto cfg = tiny();
  auto input = workload::random_permutation(cfg.tile() * 8, 3);
  for (auto& x : input) {
    x /= 16;
  }
  std::vector<word> out;
  (void)multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), 4, &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(MultiwaySort, RoundCountArithmetic) {
  const auto cfg = tiny();
  EXPECT_EQ(multiway_round_count(cfg.tile() * 16, cfg, 4), 2u);
  EXPECT_EQ(multiway_round_count(cfg.tile() * 16, cfg, 2), 4u);
  EXPECT_EQ(multiway_round_count(cfg.tile() * 17, cfg, 4), 3u);
  EXPECT_EQ(multiway_round_count(cfg.tile(), cfg, 4), 0u);
  EXPECT_THROW((void)multiway_round_count(100, cfg, 1), contract_error);
}

TEST(MultiwaySort, FewerGlobalRoundsThanPairwise) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 16;
  const auto input = workload::random_permutation(n, 5);
  const auto dev = gpusim::quadro_m4000();
  const auto pw = pairwise_merge_sort(input, cfg, dev);
  const auto mw = multiway_merge_sort(input, cfg, dev, 4);
  EXPECT_EQ(pw.rounds.size(), 5u);  // block sort + 4 pairwise rounds
  EXPECT_EQ(mw.rounds.size(), 3u);  // block sort + 2 four-way rounds
  // The headline benefit: less global traffic.
  EXPECT_LT(mw.totals.global_transactions, pw.totals.global_transactions);
}

TEST(MultiwaySort, PairwiseWorstCaseDoesNotTransferInFull) {
  // The construction targets the pairwise merge tree; on the K-way tree
  // the same permutation cannot pin every warp to beta_2 = E.
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 16;
  const auto dev = gpusim::quadro_m4000();
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 3);

  const auto pw = pairwise_merge_sort(worst, cfg, dev);
  const auto mw = multiway_merge_sort(worst, cfg, dev, 4);
  // Pairwise: every global round at exactly beta_2 = E = 5.
  for (std::size_t i = 1; i < pw.rounds.size(); ++i) {
    EXPECT_NEAR(gpusim::beta2(pw.rounds[i].kernel), 5.0, 1e-9);
  }
  // Multiway: strictly below the pairwise worst case.
  for (std::size_t i = 1; i < mw.rounds.size(); ++i) {
    EXPECT_LT(gpusim::beta2(mw.rounds[i].kernel), 5.0);
  }
}

TEST(MultiwaySort, SizeContracts) {
  const auto cfg = tiny();
  const auto dev = gpusim::quadro_m4000();
  EXPECT_THROW(
      (void)multiway_merge_sort(std::vector<word>{}, cfg, dev, 4),
      contract_error);
  EXPECT_THROW((void)multiway_merge_sort(
                   workload::random_permutation(cfg.tile() + 3, 1), cfg, dev,
                   4),
               contract_error);
  EXPECT_THROW((void)multiway_merge_sort(
                   workload::random_permutation(cfg.tile() * 2, 1), cfg, dev,
                   1),
               contract_error);
}

TEST(MultiwaySort, TwoWayMatchesPairwiseMergeTreeOutput) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 8;
  const auto input = workload::random_permutation(n, 11);
  std::vector<word> out_mw, out_pw;
  (void)multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), 2, &out_mw);
  (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out_pw);
  EXPECT_EQ(out_mw, out_pw);
}

}  // namespace
}  // namespace wcm::sort
