// Span-tracer coverage: the golden two-thread nested trace from the ISSUE
// satellite — three nested spans on the main thread plus a two-span worker
// — must export strict Chrome-trace JSON (round-tripped through
// util/json) with monotonic timestamps, child spans contained in their
// parents, dense deterministic thread-ids {0, 1}, and a stable text
// flamegraph.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/span.hpp"
#include "util/json.hpp"

namespace wcm {
namespace {

struct ParsedEvent {
  std::string name;
  u64 tid = 0;
  double ts = 0.0;
  double dur = 0.0;
};

/// Export the current trace buffers and parse them back through the strict
/// JSON reader, grouped by exported thread-id (JSON array order is
/// per-thread seq order, which the assertions rely on).
std::map<u64, std::vector<ParsedEvent>> export_and_parse() {
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const json::Value doc = json::parse(os.str());
  std::map<u64, std::vector<ParsedEvent>> by_tid;
  for (const auto& v : doc.as_object().at("traceEvents").as_array()) {
    const auto& obj = v.as_object();
    EXPECT_EQ(obj.at("cat").as_string(), "wcm");
    EXPECT_EQ(obj.at("ph").as_string(), "X");
    EXPECT_EQ(obj.at("pid").as_u64(), 0u);
    ParsedEvent e;
    e.name = obj.at("name").as_string();
    e.tid = obj.at("tid").as_u64();
    e.ts = obj.at("ts").as_double();
    e.dur = obj.at("dur").as_double();
    by_tid[e.tid].push_back(e);
  }
  return by_tid;
}

class TelemetryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::reset_trace();
    telemetry::set_tracing(true);
  }
  void TearDown() override {
    telemetry::set_tracing(false);
    telemetry::reset_trace();
    telemetry::set_trace_path("");
  }
};

TEST_F(TelemetryTraceTest, SpanWhileTracingOffRecordsNothing) {
  telemetry::set_tracing(false);
  {
    WCM_SPAN("dark");
  }
  EXPECT_EQ(telemetry::trace_event_count(), 0u);
}

TEST_F(TelemetryTraceTest, ResetDropsBufferedEvents) {
  {
    WCM_SPAN("ephemeral");
  }
  EXPECT_EQ(telemetry::trace_event_count(), 1u);
  telemetry::reset_trace();
  EXPECT_EQ(telemetry::trace_event_count(), 0u);
}

TEST_F(TelemetryTraceTest, TwoSpansInOneScopeCompile) {
  WCM_SPAN("first");
  WCM_SPAN("second");  // __COUNTER__ keeps the identifiers distinct
}

TEST_F(TelemetryTraceTest, GoldenNestedTwoThreadTrace) {
  {
    WCM_SPAN("outer");
    {
      WCM_SPAN("mid");
      {
        WCM_SPAN("inner");
      }
    }
    // The worker starts strictly after "outer" begins, so the main thread
    // deterministically owns the earliest event and dense tid 0.
    std::thread worker([] {
      WCM_SPAN("w.outer");
      {
        WCM_SPAN("w.inner");
      }
    });
    worker.join();
  }
  EXPECT_EQ(telemetry::trace_event_count(), 5u);

  const auto by_tid = export_and_parse();
  ASSERT_EQ(by_tid.size(), 2u);
  ASSERT_TRUE(by_tid.count(0));  // dense ids, not OS thread ids
  ASSERT_TRUE(by_tid.count(1));

  const auto& main_events = by_tid.at(0);
  ASSERT_EQ(main_events.size(), 3u);
  EXPECT_EQ(main_events[0].name, "outer");
  EXPECT_EQ(main_events[1].name, "mid");
  EXPECT_EQ(main_events[2].name, "inner");

  const auto& worker_events = by_tid.at(1);
  ASSERT_EQ(worker_events.size(), 2u);
  EXPECT_EQ(worker_events[0].name, "w.outer");
  EXPECT_EQ(worker_events[1].name, "w.inner");

  // Timestamps are relative to the earliest event and monotonic in entry
  // order within each thread; durations are never negative.
  EXPECT_DOUBLE_EQ(main_events[0].ts, 0.0);
  for (const auto& [tid, events] : by_tid) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_GE(events[i].dur, 0.0) << "tid " << tid << " event " << i;
      if (i > 0) {
        EXPECT_GE(events[i].ts, events[i - 1].ts)
            << "tid " << tid << " event " << i;
      }
    }
  }

  // Containment: each child lies within [ts, ts + dur] of its parent
  // (slack for the 1ns -> 0.001us decimal rendering).
  const auto contained = [](const ParsedEvent& child,
                            const ParsedEvent& parent) {
    EXPECT_GE(child.ts + 1e-6, parent.ts) << child.name;
    EXPECT_LE(child.ts + child.dur, parent.ts + parent.dur + 1e-6)
        << child.name;
  };
  contained(main_events[1], main_events[0]);
  contained(main_events[2], main_events[1]);
  contained(worker_events[1], worker_events[0]);
  // The worker ran entirely inside the main thread's "outer" span.
  contained(worker_events[0], main_events[0]);
}

TEST_F(TelemetryTraceTest, FlamegraphAggregatesCallPaths) {
  for (int i = 0; i < 2; ++i) {
    WCM_SPAN("root");
    {
      WCM_SPAN("leaf");
    }
  }
  std::ostringstream os;
  telemetry::write_flamegraph(os);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("root  count=2  total_us=", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("root;leaf  count=2  total_us=", 0), 0u)
      << lines[1];
}

TEST_F(TelemetryTraceTest, FlushTraceWritesFileAndClearsPath) {
  {
    WCM_SPAN("flushed");
  }
  const std::string path =
      ::testing::TempDir() + "wcm_telemetry_trace_test.json";
  telemetry::set_trace_path(path);
  EXPECT_TRUE(telemetry::flush_trace(nullptr));
  EXPECT_TRUE(telemetry::trace_path().empty());  // one flush per config

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const json::Value doc = json::parse(content.str());
  EXPECT_EQ(doc.as_object()
                .at("traceEvents")
                .as_array()
                .front()
                .as_object()
                .at("name")
                .as_string(),
            "flushed");
  std::remove(path.c_str());
}

TEST_F(TelemetryTraceTest, FlushTraceWithNoPathIsNoOp) {
  telemetry::set_trace_path("");
  EXPECT_TRUE(telemetry::flush_trace(nullptr));
}

}  // namespace
}  // namespace wcm
