// Table-driven corrupt-input corpus for the WCMI reader — every malformed
// file must surface a typed wcm::io_error, never crash, hang, or drive a
// pathological allocation, and v1 files must stay readable forever — plus
// the matching corpus for the WCMT trace reader (wcm::parse_error).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/trace.hpp"
#include "runtime/journal.hpp"
#include "util/error.hpp"
#include "workload/inputs.hpp"
#include "workload/io.hpp"

namespace wcm::workload {
namespace {

/// Byte-level WCMI builder so each corpus entry can corrupt one field.
struct FileBuilder {
  std::vector<char> bytes;

  FileBuilder& raw(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    bytes.insert(bytes.end(), p, p + len);
    return *this;
  }
  FileBuilder& magic(const char* m = "WCMI") { return raw(m, 4); }
  FileBuilder& u32(std::uint32_t v) { return raw(&v, sizeof(v)); }
  FileBuilder& u64(std::uint64_t v) { return raw(&v, sizeof(v)); }
  FileBuilder& keys(const std::vector<std::int32_t>& ks) {
    return ks.empty() ? *this : raw(ks.data(), ks.size() * sizeof(ks[0]));
  }
};

class IoCorruptTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("wcm_io_corrupt_" + std::to_string(::getpid()) + ".wcmi");
  void TearDown() override { std::filesystem::remove(path_); }

  void write_file(const std::vector<char>& bytes) {
    std::ofstream os(path_, std::ios::binary);
    ASSERT_TRUE(os.is_open());
    if (!bytes.empty()) {
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
  }

  /// A byte-exact valid v2 file for 4 keys (via the real writer).
  std::vector<char> valid_v2_bytes() {
    write_binary(path_, {3, 1, 2, 0});
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }
};

TEST_F(IoCorruptTest, CorpusThrowsTypedIoError) {
  struct Case {
    const char* name;
    std::vector<char> bytes;
  };
  const std::vector<Case> corpus = {
      {"zero-length file", {}},
      {"truncated header", FileBuilder{}.magic().u32(2).bytes},
      {"bad magic",
       FileBuilder{}.magic("XXXX").u32(2).u64(0).u64(0).bytes},
      {"wrong version",
       FileBuilder{}.magic().u32(99).u64(0).u64(0).bytes},
      {"oversized count",
       FileBuilder{}.magic().u32(2).u64(std::uint64_t{1} << 60).bytes},
      {"count beyond cap with plausible size",
       FileBuilder{}.magic().u32(2).u64(max_wcmi_keys + 1).bytes},
      {"v2 payload shorter than count",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(100)
           .keys({1, 2, 3})
           .u64(0)
           .bytes},
      {"v2 payload longer than count",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(1)
           .keys({1, 2, 3, 4})
           .u64(0)
           .bytes},
      {"v1 truncated payload",
       FileBuilder{}.magic().u32(1).u64(100).keys({1, 2, 3}).bytes},
      {"v2 bad checksum",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(2)
           .keys({0, 1})
           .u64(0xdeadbeef)
           .bytes},
  };
  for (const auto& c : corpus) {
    SCOPED_TRACE(c.name);
    write_file(c.bytes);
    EXPECT_THROW((void)read_binary(path_), io_error);
  }
}

TEST_F(IoCorruptTest, MissingFileIsIoError) {
  EXPECT_THROW((void)read_binary(path_.string() + ".definitely-missing"),
               io_error);
}

TEST_F(IoCorruptTest, FlippedChecksumByteIsDetected) {
  auto bytes = valid_v2_bytes();
  ASSERT_GE(bytes.size(), 8u);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file(bytes);
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoCorruptTest, FlippedPayloadByteIsDetected) {
  auto bytes = valid_v2_bytes();
  ASSERT_GE(bytes.size(), 16u + 4u + 8u);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x40);  // first key byte
  write_file(bytes);
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoCorruptTest, TruncatedEverywhereNeverCrashes) {
  const auto bytes = valid_v2_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE(len);
    write_file({bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW((void)read_binary(path_), io_error);
  }
}

TEST_F(IoCorruptTest, ErrorsCarryIoFailureCode) {
  write_file({});
  try {
    (void)read_binary(path_);
    FAIL() << "zero-length file was accepted";
  } catch (const io_error& e) {
    EXPECT_EQ(e.code(), errc::io_failure);
  }
}

TEST_F(IoCorruptTest, V1FilesStillRoundTrip) {
  const std::vector<std::int32_t> keys{4, 2, 0, 3, 1};
  write_file(FileBuilder{}.magic().u32(1).u64(keys.size()).keys(keys).bytes);
  const auto read = read_binary(path_);
  ASSERT_EQ(read.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(read[i], keys[i]);
  }
}

TEST_F(IoCorruptTest, V1EmptyFileReads) {
  write_file(FileBuilder{}.magic().u32(1).u64(0).bytes);
  EXPECT_TRUE(read_binary(path_).empty());
}

TEST_F(IoCorruptTest, WriterEmitsV2ReaderRoundTrips) {
  const auto keys = random_permutation(777, 5);
  write_binary(path_, keys);
  EXPECT_EQ(read_binary(path_), keys);
  // Layout check: header + 4n payload + trailing 8-byte checksum.
  EXPECT_EQ(std::filesystem::file_size(path_), 16 + 4 * keys.size() + 8);
}

// The WCMT trace reader gets the same treatment: every malformed stream is
// a typed wcm::parse_error.  (wcm-lint maps these to exit code 3; see
// docs/LINT.md for the grammar.)
TEST(TraceCorrupt, CorpusThrowsTypedParseError) {
  struct Case {
    const char* name;
    const char* text;
  };
  const std::vector<Case> corpus = {
      {"empty stream", ""},
      {"bad magic", "WCMX 32 64 1\nR 0:0\n"},
      {"v2 header missing word count", "WCMT2 32 1\nR 0:0\n"},
      {"zero warp size", "WCMT2 0 64 1\nR 0:0\n"},
      {"warp size beyond mask word", "WCMT2 65 64 1\nR 0:0\n"},
      {"fewer steps than declared", "WCMT2 32 64 3\nR 0:0\nW 1:1\n"},
      {"more steps than declared", "WCMT2 32 64 1\nR 0:0\nW 1:1\n"},
      {"unknown step kind", "WCMT2 32 64 1\nQ 0:0\n"},
      {"access without colon", "WCMT2 32 64 1\nR 00\n"},
      {"non-numeric lane", "WCMT2 32 64 1\nR x:0\n"},
      {"duplicate lane in one step", "WCMT2 32 64 1\nR 3:0 3:1\n"},
      {"lane >= warp size", "WCMT2 32 64 1\nR 99:0\n"},
      {"barrier with operands", "WCMT2 32 64 1\nB 1\n"},
      {"fill missing count", "WCMT2 32 64 1\nF 0\n"},
      {"fill with extra operand", "WCMT2 32 64 1\nF 0 4 9\n"},
      {"trailing garbage after last step", "WCMT2 32 64 1\nR 0:0\njunk\n"},
      {"v1 with atomic step", "WCMT 32 1\nAR 0:0\n"},
      {"v1 with barrier", "WCMT 32 1\nB\n"},
  };
  for (const auto& c : corpus) {
    SCOPED_TRACE(c.name);
    std::istringstream is(c.text);
    EXPECT_THROW((void)gpusim::read_trace(is), parse_error);
  }
}

// The WCMJ campaign journal gets the same treatment.  Its contract is
// subtler than the WCMI reader's: a torn or corrupt *tail* is the
// expected crash artifact and must be truncated (keeping the sealed
// prefix), while a file that is recognizably not WCMJ at all is a typed
// io_error that never gets clobbered.
class JournalCorruptTest : public ::testing::Test {
 protected:
  static constexpr u64 kSalt = 11;
  static constexpr u64 kFingerprint = 22;
  static constexpr std::size_t kHeader = 32;  // documented WCMJ layout
  static constexpr std::size_t kRecord = 64;

  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("wcm_journal_corrupt_" + std::to_string(::getpid()) + ".wcmj");
  void TearDown() override { std::filesystem::remove(path_); }

  /// A byte-exact valid journal of `records` sealed cells (via the real
  /// writer), returned for surgical corruption.
  std::vector<char> valid_bytes(int records) {
    std::filesystem::remove(path_);
    {
      runtime::JournalWriter writer(path_, kSalt, kFingerprint,
                                    runtime::JournalReplay{});
      for (int i = 0; i < records; ++i) {
        runtime::CellMetrics m;
        m.n = 64u + static_cast<u64>(i);
        m.seconds = 0.25 * i;
        m.throughput = 100.0 + i;
        writer.append(100 + static_cast<u64>(i), m);
      }
    }
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const std::vector<char>& bytes) {
    std::ofstream os(path_, std::ios::binary);
    ASSERT_TRUE(os.is_open());
    if (!bytes.empty()) {
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
  }

  runtime::JournalReplay replay() {
    return runtime::replay_journal(path_, kSalt, kFingerprint);
  }
};

TEST_F(JournalCorruptTest, MissingAndEmptyFilesAreFreshStarts) {
  std::filesystem::remove(path_);
  auto r = replay();
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.compatible);
  EXPECT_FALSE(r.truncated);

  write_file({});
  r = replay();
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.compatible);
  EXPECT_FALSE(r.truncated);
}

TEST_F(JournalCorruptTest, RoundTripReplaysEveryRecord) {
  const auto bytes = valid_bytes(3);
  EXPECT_EQ(bytes.size(), kHeader + 3 * kRecord);
  const auto r = replay();
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_TRUE(r.compatible);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.valid_bytes, bytes.size());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.records[i].key, 100 + i);
    EXPECT_EQ(r.records[i].metrics.n, 64 + i);
    EXPECT_EQ(r.records[i].metrics.seconds, 0.25 * static_cast<double>(i));
    EXPECT_EQ(r.records[i].metrics.throughput,
              100.0 + static_cast<double>(i));
  }
}

TEST_F(JournalCorruptTest, TruncatedEverywhereKeepsTheSealedPrefix) {
  // Chop the file at every possible byte: replay never throws, never
  // crashes, and always yields exactly the records whose chain word made
  // it to disk intact.
  const auto bytes = valid_bytes(2);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE(len);
    write_file({bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    const auto r = replay();
    EXPECT_TRUE(r.compatible);
    const std::size_t sealed = len < kHeader ? 0 : (len - kHeader) / kRecord;
    EXPECT_EQ(r.records.size(), sealed);
    // A cut exactly at a record boundary is a clean (shorter) journal;
    // anything else is a torn tail.
    const bool torn =
        len < kHeader ? len > 0 : (len - kHeader) % kRecord != 0;
    EXPECT_EQ(r.truncated, torn);
  }
}

TEST_F(JournalCorruptTest, FlippedPayloadByteDropsThatRecordAndTheTail) {
  auto bytes = valid_bytes(3);
  bytes[kHeader + kRecord + 5] ^= 0x20;  // inside record 1's payload
  write_file(bytes);
  const auto r = replay();
  ASSERT_EQ(r.records.size(), 1u);  // record 0 survives; 1 and 2 are gone
  EXPECT_EQ(r.records[0].key, 100u);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.valid_bytes, kHeader + kRecord);
}

TEST_F(JournalCorruptTest, FlippedChainByteDropsTheRecordItSeals) {
  auto bytes = valid_bytes(2);
  bytes[kHeader + kRecord - 1] ^= 0x01;  // record 0's chain word
  write_file(bytes);
  const auto r = replay();
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.valid_bytes, kHeader);
}

TEST_F(JournalCorruptTest, GarbageTailIsTruncatedNotFatal) {
  auto bytes = valid_bytes(2);
  const std::size_t clean = bytes.size();
  const char junk[] = "crash-mid-write leftovers";
  bytes.insert(bytes.end(), junk, junk + sizeof(junk));
  write_file(bytes);
  const auto r = replay();
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.valid_bytes, clean);
}

TEST_F(JournalCorruptTest, FlippedHeaderSumByteIsATornHeader) {
  auto bytes = valid_bytes(1);
  bytes[kHeader - 2] ^= 0x04;  // inside header_sum
  write_file(bytes);
  const auto r = replay();
  EXPECT_TRUE(r.records.empty());
  EXPECT_TRUE(r.compatible);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.valid_bytes, 0u);  // writer rewrites from scratch
}

TEST_F(JournalCorruptTest, BadMagicIsTypedIoError) {
  write_file({'X', 'X', 'X', 'X', 0, 0, 0, 0});
  EXPECT_THROW((void)replay(), io_error);
  write_file({'p', 'r', 'e', 'c', 'i', 'o', 'u', 's'});
  try {
    (void)replay();
    FAIL() << "non-WCMJ file was accepted";
  } catch (const io_error& e) {
    EXPECT_EQ(e.code(), errc::io_failure);
  }
}

TEST_F(JournalCorruptTest, UnsupportedVersionIsTypedIoError) {
  auto bytes = valid_bytes(1);
  bytes[4] = 99;  // version u32 follows the magic
  write_file(bytes);
  EXPECT_THROW((void)replay(), io_error);
}

TEST_F(JournalCorruptTest, SaltOrFingerprintMismatchIsIncompatible) {
  (void)valid_bytes(2);
  auto r = runtime::replay_journal(path_, kSalt + 1, kFingerprint);
  EXPECT_FALSE(r.compatible);
  EXPECT_TRUE(r.records.empty());
  r = runtime::replay_journal(path_, kSalt, kFingerprint + 1);
  EXPECT_FALSE(r.compatible);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(JournalCorruptTest, WriterRefusesToClobberForeignFiles) {
  const std::vector<char> precious{'n', 'o', 't', ' ', 'w', 'c', 'm', 'j'};
  write_file(precious);
  EXPECT_THROW(runtime::JournalWriter(path_, kSalt, kFingerprint,
                                      runtime::JournalReplay{}),
               io_error);
  std::ifstream is(path_, std::ios::binary);
  const std::vector<char> after{std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>()};
  EXPECT_EQ(after, precious);  // untouched
}

TEST_F(JournalCorruptTest, WriterResumesPastATornTail) {
  auto bytes = valid_bytes(2);
  bytes.push_back('j');  // torn tail: half-written third record
  bytes.push_back('u');
  write_file(bytes);
  auto r = replay();
  ASSERT_EQ(r.records.size(), 2u);
  ASSERT_TRUE(r.truncated);
  {
    runtime::JournalWriter writer(path_, kSalt, kFingerprint, r);
    runtime::CellMetrics m;
    m.n = 999;
    writer.append(555, m);
  }
  r = replay();  // tail gone, chain intact through the new record
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.records[2].key, 555u);
  EXPECT_EQ(r.records[2].metrics.n, 999u);
}

TEST(TraceCorrupt, ValidStreamsStillParse) {
  std::istringstream v2("WCMT2 32 64 4\nF 0 64\nAW 0:1 1:2\nB\nR 5:3\n");
  const auto t2 = gpusim::read_trace(v2);
  EXPECT_EQ(t2.steps.size(), 4u);
  EXPECT_EQ(t2.logical_words, 64u);

  std::istringstream v1("WCMT 32 2\nW 0:0 1:1\nR 1:0 0:1\n");
  const auto t1 = gpusim::read_trace(v1);
  EXPECT_EQ(t1.steps.size(), 2u);
  EXPECT_EQ(t1.logical_words, 0u);  // v1 carries no word count
}

}  // namespace
}  // namespace wcm::workload
