// Table-driven corrupt-input corpus for the WCMI reader — every malformed
// file must surface a typed wcm::io_error, never crash, hang, or drive a
// pathological allocation, and v1 files must stay readable forever — plus
// the matching corpus for the WCMT trace reader (wcm::parse_error).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/trace.hpp"
#include "util/error.hpp"
#include "workload/inputs.hpp"
#include "workload/io.hpp"

namespace wcm::workload {
namespace {

/// Byte-level WCMI builder so each corpus entry can corrupt one field.
struct FileBuilder {
  std::vector<char> bytes;

  FileBuilder& raw(const void* data, std::size_t len) {
    const char* p = static_cast<const char*>(data);
    bytes.insert(bytes.end(), p, p + len);
    return *this;
  }
  FileBuilder& magic(const char* m = "WCMI") { return raw(m, 4); }
  FileBuilder& u32(std::uint32_t v) { return raw(&v, sizeof(v)); }
  FileBuilder& u64(std::uint64_t v) { return raw(&v, sizeof(v)); }
  FileBuilder& keys(const std::vector<std::int32_t>& ks) {
    return ks.empty() ? *this : raw(ks.data(), ks.size() * sizeof(ks[0]));
  }
};

class IoCorruptTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("wcm_io_corrupt_" + std::to_string(::getpid()) + ".wcmi");
  void TearDown() override { std::filesystem::remove(path_); }

  void write_file(const std::vector<char>& bytes) {
    std::ofstream os(path_, std::ios::binary);
    ASSERT_TRUE(os.is_open());
    if (!bytes.empty()) {
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
  }

  /// A byte-exact valid v2 file for 4 keys (via the real writer).
  std::vector<char> valid_v2_bytes() {
    write_binary(path_, {3, 1, 2, 0});
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }
};

TEST_F(IoCorruptTest, CorpusThrowsTypedIoError) {
  struct Case {
    const char* name;
    std::vector<char> bytes;
  };
  const std::vector<Case> corpus = {
      {"zero-length file", {}},
      {"truncated header", FileBuilder{}.magic().u32(2).bytes},
      {"bad magic",
       FileBuilder{}.magic("XXXX").u32(2).u64(0).u64(0).bytes},
      {"wrong version",
       FileBuilder{}.magic().u32(99).u64(0).u64(0).bytes},
      {"oversized count",
       FileBuilder{}.magic().u32(2).u64(std::uint64_t{1} << 60).bytes},
      {"count beyond cap with plausible size",
       FileBuilder{}.magic().u32(2).u64(max_wcmi_keys + 1).bytes},
      {"v2 payload shorter than count",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(100)
           .keys({1, 2, 3})
           .u64(0)
           .bytes},
      {"v2 payload longer than count",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(1)
           .keys({1, 2, 3, 4})
           .u64(0)
           .bytes},
      {"v1 truncated payload",
       FileBuilder{}.magic().u32(1).u64(100).keys({1, 2, 3}).bytes},
      {"v2 bad checksum",
       FileBuilder{}
           .magic()
           .u32(2)
           .u64(2)
           .keys({0, 1})
           .u64(0xdeadbeef)
           .bytes},
  };
  for (const auto& c : corpus) {
    SCOPED_TRACE(c.name);
    write_file(c.bytes);
    EXPECT_THROW((void)read_binary(path_), io_error);
  }
}

TEST_F(IoCorruptTest, MissingFileIsIoError) {
  EXPECT_THROW((void)read_binary(path_.string() + ".definitely-missing"),
               io_error);
}

TEST_F(IoCorruptTest, FlippedChecksumByteIsDetected) {
  auto bytes = valid_v2_bytes();
  ASSERT_GE(bytes.size(), 8u);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file(bytes);
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoCorruptTest, FlippedPayloadByteIsDetected) {
  auto bytes = valid_v2_bytes();
  ASSERT_GE(bytes.size(), 16u + 4u + 8u);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x40);  // first key byte
  write_file(bytes);
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoCorruptTest, TruncatedEverywhereNeverCrashes) {
  const auto bytes = valid_v2_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE(len);
    write_file({bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW((void)read_binary(path_), io_error);
  }
}

TEST_F(IoCorruptTest, ErrorsCarryIoFailureCode) {
  write_file({});
  try {
    (void)read_binary(path_);
    FAIL() << "zero-length file was accepted";
  } catch (const io_error& e) {
    EXPECT_EQ(e.code(), errc::io_failure);
  }
}

TEST_F(IoCorruptTest, V1FilesStillRoundTrip) {
  const std::vector<std::int32_t> keys{4, 2, 0, 3, 1};
  write_file(FileBuilder{}.magic().u32(1).u64(keys.size()).keys(keys).bytes);
  const auto read = read_binary(path_);
  ASSERT_EQ(read.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(read[i], keys[i]);
  }
}

TEST_F(IoCorruptTest, V1EmptyFileReads) {
  write_file(FileBuilder{}.magic().u32(1).u64(0).bytes);
  EXPECT_TRUE(read_binary(path_).empty());
}

TEST_F(IoCorruptTest, WriterEmitsV2ReaderRoundTrips) {
  const auto keys = random_permutation(777, 5);
  write_binary(path_, keys);
  EXPECT_EQ(read_binary(path_), keys);
  // Layout check: header + 4n payload + trailing 8-byte checksum.
  EXPECT_EQ(std::filesystem::file_size(path_), 16 + 4 * keys.size() + 8);
}

// The WCMT trace reader gets the same treatment: every malformed stream is
// a typed wcm::parse_error.  (wcm-lint maps these to exit code 3; see
// docs/LINT.md for the grammar.)
TEST(TraceCorrupt, CorpusThrowsTypedParseError) {
  struct Case {
    const char* name;
    const char* text;
  };
  const std::vector<Case> corpus = {
      {"empty stream", ""},
      {"bad magic", "WCMX 32 64 1\nR 0:0\n"},
      {"v2 header missing word count", "WCMT2 32 1\nR 0:0\n"},
      {"zero warp size", "WCMT2 0 64 1\nR 0:0\n"},
      {"warp size beyond mask word", "WCMT2 65 64 1\nR 0:0\n"},
      {"fewer steps than declared", "WCMT2 32 64 3\nR 0:0\nW 1:1\n"},
      {"more steps than declared", "WCMT2 32 64 1\nR 0:0\nW 1:1\n"},
      {"unknown step kind", "WCMT2 32 64 1\nQ 0:0\n"},
      {"access without colon", "WCMT2 32 64 1\nR 00\n"},
      {"non-numeric lane", "WCMT2 32 64 1\nR x:0\n"},
      {"duplicate lane in one step", "WCMT2 32 64 1\nR 3:0 3:1\n"},
      {"lane >= warp size", "WCMT2 32 64 1\nR 99:0\n"},
      {"barrier with operands", "WCMT2 32 64 1\nB 1\n"},
      {"fill missing count", "WCMT2 32 64 1\nF 0\n"},
      {"fill with extra operand", "WCMT2 32 64 1\nF 0 4 9\n"},
      {"trailing garbage after last step", "WCMT2 32 64 1\nR 0:0\njunk\n"},
      {"v1 with atomic step", "WCMT 32 1\nAR 0:0\n"},
      {"v1 with barrier", "WCMT 32 1\nB\n"},
  };
  for (const auto& c : corpus) {
    SCOPED_TRACE(c.name);
    std::istringstream is(c.text);
    EXPECT_THROW((void)gpusim::read_trace(is), parse_error);
  }
}

TEST(TraceCorrupt, ValidStreamsStillParse) {
  std::istringstream v2("WCMT2 32 64 4\nF 0 64\nAW 0:1 1:2\nB\nR 5:3\n");
  const auto t2 = gpusim::read_trace(v2);
  EXPECT_EQ(t2.steps.size(), 4u);
  EXPECT_EQ(t2.logical_words, 64u);

  std::istringstream v1("WCMT 32 2\nW 0:0 1:1\nR 1:0 0:1\n");
  const auto t1 = gpusim::read_trace(v1);
  EXPECT_EQ(t1.steps.size(), 2u);
  EXPECT_EQ(t1.logical_words, 0u);  // v1 carries no word count
}

}  // namespace
}  // namespace wcm::workload
