// Unit and property tests for util/math: gcd, power-of-two helpers,
// modular arithmetic, and the number-theory facts (Facts 5 and 6 of the
// paper) the large-E construction relies on.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/math.hpp"

namespace wcm {
namespace {

TEST(Gcd, BaseCases) {
  EXPECT_EQ(gcd(0, 0), 0u);
  EXPECT_EQ(gcd(0, 7), 7u);
  EXPECT_EQ(gcd(7, 0), 7u);
  EXPECT_EQ(gcd(1, 1), 1u);
}

TEST(Gcd, KnownValues) {
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(17, 32), 1u);
  EXPECT_EQ(gcd(15, 32), 1u);
  EXPECT_EQ(gcd(12, 16), 4u);
  EXPECT_EQ(gcd(1071, 462), 21u);
}

TEST(Gcd, CommutativeAndDividesBoth) {
  for (u64 a = 1; a <= 40; ++a) {
    for (u64 b = 1; b <= 40; ++b) {
      const u64 g = gcd(a, b);
      EXPECT_EQ(g, gcd(b, a));
      EXPECT_EQ(a % g, 0u);
      EXPECT_EQ(b % g, 0u);
    }
  }
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_THROW((void)floor_log2(0), contract_error);
}

TEST(Log2Exact, RequiresPowerOfTwo) {
  EXPECT_EQ(log2_exact(512), 9u);
  EXPECT_THROW((void)log2_exact(511), contract_error);
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_THROW((void)ceil_div(1, 0), contract_error);
}

TEST(ModFloor, NegativeOperands) {
  EXPECT_EQ(mod_floor(-1, 5), 4);
  EXPECT_EQ(mod_floor(-5, 5), 0);
  EXPECT_EQ(mod_floor(-6, 5), 4);
  EXPECT_EQ(mod_floor(7, 5), 2);
  EXPECT_THROW((void)mod_floor(1, 0), contract_error);
}

// Fact 6: the inverse exists and is unique modulo m when gcd(a, m) = 1.
TEST(ModInverse, Property) {
  for (u64 m = 2; m <= 60; ++m) {
    for (u64 a = 1; a < m; ++a) {
      if (gcd(a, m) != 1) {
        EXPECT_THROW((void)mod_inverse(a, m), contract_error);
        continue;
      }
      const u64 inv = mod_inverse(a, m);
      EXPECT_LT(inv, m);
      EXPECT_EQ(a * inv % m, 1u) << "a=" << a << " m=" << m;
    }
  }
}

// Fact 5: ax === b (mod m) has exactly one solution in Z_m when
// gcd(a, m) = 1; verify the solver finds it for all b.
TEST(LinearCongruence, SolvesAllResidues) {
  for (u64 m : {5ULL, 9ULL, 15ULL, 17ULL, 31ULL}) {
    for (u64 a = 1; a < m; ++a) {
      if (gcd(a, m) != 1) {
        continue;
      }
      for (u64 b = 0; b < m; ++b) {
        const u64 x = solve_linear_congruence(a, b, m);
        EXPECT_LT(x, m);
        EXPECT_EQ(a * x % m, b % m);
      }
    }
  }
}

}  // namespace
}  // namespace wcm
