# Prover gate (ISSUE acceptance): every engine must prove clean — exit 0,
# all step groups bounded, theorems reproduced — under the plain layout and
# one word of padding, and the machine-readable reports must be
# byte-identical to the committed goldens (tests/golden/prove_*.json), so
# any change to a derived bound is a reviewed diff, not a silent drift.
# A recorded pairwise trace must certify against its bounds; a fabricated
# stride-w store must be flagged (exit 1); corrupt and missing traces must
# exit 3 and usage errors 2, proving the gate can actually fail.
#
# Run as:  cmake -DWCMGEN=<bin> -DWCMPROVE=<bin> -DWORKDIR=<dir>
#                -DGOLDEN_DIR=<dir> -P wcmprove_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WCMPROVE OR NOT DEFINED WORKDIR
   OR NOT DEFINED GOLDEN_DIR)
  message(FATAL_ERROR
    "pass -DWCMGEN=<bin> -DWCMPROVE=<bin> -DWORKDIR=<dir> -DGOLDEN_DIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Prove one engine clean under one pad and diff its JSON report against
# the committed golden.
function(prove_golden engine pad)
  expect_exit(0 ${WCMPROVE} --engine ${engine} --pad ${pad})
  execute_process(COMMAND ${WCMPROVE} --engine ${engine} --pad ${pad} --json
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "--json run failed (${rv}) for ${engine} pad ${pad}: ${err}")
  endif()
  set(golden ${GOLDEN_DIR}/prove_${engine}_pad${pad}.json)
  if(NOT EXISTS ${golden})
    message(FATAL_ERROR "missing golden report ${golden}")
  endif()
  file(READ ${golden} want)
  if(NOT out STREQUAL want)
    file(WRITE ${WORKDIR}/prove_${engine}_pad${pad}.json "${out}")
    message(FATAL_ERROR
      "JSON report for ${engine} pad ${pad} diverges from ${golden}; "
      "actual output saved to ${WORKDIR}/prove_${engine}_pad${pad}.json")
  endif()
endfunction()

foreach(engine blocksort block-merge pairwise multiway bitonic radix scan
        shearsort)
  foreach(pad 0 1)
    prove_golden(${engine} ${pad})
  endforeach()
endforeach()

# The wcmgen front end must agree with the standalone binary byte for byte.
execute_process(COMMAND ${WCMGEN} prove --engine pairwise --json
                RESULT_VARIABLE rv OUTPUT_VARIABLE via_wcmgen ERROR_QUIET)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "wcmgen prove --json failed (${rv})")
endif()
execute_process(COMMAND ${WCMPROVE} --engine pairwise --json
                RESULT_VARIABLE rv OUTPUT_VARIABLE via_prove ERROR_QUIET)
if(NOT rv EQUAL 0 OR NOT via_wcmgen STREQUAL via_prove)
  message(FATAL_ERROR "wcmgen prove and wcm-prove disagree on pairwise JSON")
endif()
expect_exit(0 ${WCMGEN} prove)

# Dynamic certification: a recorded pairwise trace must stay within the
# bounds proved for its exact configuration, plain and padded.
set(trace ${WORKDIR}/pairwise.wcmt)
expect_exit(0 ${WCMGEN} sort --E 5 --b 64 --k 2 --input worst-case
            --trace-out ${trace})
expect_exit(0 ${WCMPROVE} --engine pairwise --E-min 5 --E-max 5
            --trace ${trace})
expect_exit(0 ${WCMPROVE} --engine pairwise --E-min 5 --E-max 5 --pad 1
            --trace ${trace})

# A fabricated stride-w store (all 32 lanes in bank 0) exceeds every
# proved write bound -> exit 1 with a symbolic-divergence finding.
set(line "W")
foreach(lane RANGE 31)
  math(EXPR addr "${lane} * 32")
  string(APPEND line " ${lane}:${addr}")
endforeach()
file(WRITE ${WORKDIR}/overbound.wcmt "WCMT2 32 1024 2\nF 0 1024\n${line}\n")
expect_exit(1 ${WCMPROVE} --engine pairwise --trace ${WORKDIR}/overbound.wcmt)
execute_process(COMMAND ${WCMPROVE} --engine pairwise --json
                        --trace ${WORKDIR}/overbound.wcmt
                RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rv EQUAL 1 OR NOT out MATCHES "symbolic-divergence")
  message(FATAL_ERROR
    "over-bound trace not flagged as symbolic-divergence (exit ${rv})")
endif()

# Corrupt / missing trace files -> 3.
file(WRITE ${WORKDIR}/corrupt.wcmt "WCMT2 32 64 2\nR 0:1\n")
expect_exit(3 ${WCMPROVE} --engine pairwise --trace ${WORKDIR}/corrupt.wcmt)
expect_exit(3 ${WCMPROVE} --engine pairwise
            --trace ${WORKDIR}/definitely-missing.wcmt)

# Usage errors -> 2.
expect_exit(2 ${WCMPROVE} --engine quicksort)
expect_exit(2 ${WCMPROVE} --frobnicate)
expect_exit(2 ${WCMPROVE} --w nope)
expect_exit(2 ${WCMPROVE} --w 15)
expect_exit(2 ${WCMPROVE} --trace ${trace})
expect_exit(2 ${WCMGEN} prove --engine quicksort)
expect_exit(2 ${WCMGEN} prove --frobnicate 1)

file(REMOVE ${trace} ${WORKDIR}/overbound.wcmt ${WORKDIR}/corrupt.wcmt)
