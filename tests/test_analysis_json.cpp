// Tests for the JSON report export: structural validity (balanced braces,
// quoted strings, expected keys) and value round-trips for the fields a
// downstream plotter would consume.

#include <gtest/gtest.h>

#include <string>

#include "analysis/json_export.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm::analysis {
namespace {

sort::SortReport sample_report() {
  const sort::SortConfig cfg{5, 64, 32};
  const auto input = workload::random_permutation(cfg.tile() * 4, 3);
  return sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
}

// Tiny structural validator: balanced {} and [] outside strings, no
// trailing commas before closers.
bool structurally_valid(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false;
  char prev = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '"' && prev != '\\') {
        in_string = false;
      }
    } else {
      switch (c) {
        case '"':
          in_string = true;
          break;
        case '{':
          ++brace;
          break;
        case '}':
          if (prev == ',') {
            return false;
          }
          --brace;
          break;
        case '[':
          ++bracket;
          break;
        case ']':
          if (prev == ',') {
            return false;
          }
          --bracket;
          break;
        default:
          break;
      }
      if (brace < 0 || bracket < 0) {
        return false;
      }
    }
    prev = c;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(JsonExport, StructurallyValid) {
  const auto report = sample_report();
  const std::string json = report_to_json(report);
  EXPECT_TRUE(structurally_valid(json)) << json.substr(0, 200);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(JsonExport, ContainsExpectedFields) {
  const auto report = sample_report();
  const std::string json = report_to_json(report);
  for (const char* key :
       {"\"device\":\"Quadro M4000\"", "\"config\":", "\"E\":5", "\"b\":64",
        "\"n\":1280", "\"beta2\":", "\"rounds\":[", "\"name\":\"block-sort\"",
        "\"totals\":", "\"shared_replays\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(JsonExport, RoundCountMatches) {
  const auto report = sample_report();
  const std::string json = report_to_json(report);
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"name\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, report.rounds.size());
}

TEST(JsonExport, EscapesStrings) {
  auto report = sample_report();
  report.rounds[0].name = "weird \"name\"\nwith newline";
  const std::string json = report_to_json(report);
  EXPECT_TRUE(structurally_valid(json));
  EXPECT_NE(json.find("weird \\\"name\\\"\\nwith newline"),
            std::string::npos);
}

TEST(JsonExport, Deterministic) {
  const auto report = sample_report();
  EXPECT_EQ(report_to_json(report), report_to_json(report));
}

}  // namespace
}  // namespace wcm::analysis
