// Tests for the certification mode of the symbolic prover: verdicts over
// (b, pad) grids, replay-confirmed counterexamples for vulnerable engines,
// and the stability of the machine-readable certificate (the artifact the
// wcm_certify_ci gate pins).

#include <gtest/gtest.h>

#include <sstream>

#include "analyze/symbolic/certify.hpp"
#include "util/error.hpp"

namespace wcm::analyze::symbolic {
namespace {

CertifyOptions base() {
  CertifyOptions opts;
  opts.w = 32;
  opts.bs = {64};
  opts.pads = {0};
  return opts;
}

TEST(Certify, ShearsortCertifiesUnderXorRotationAndCoprimePad) {
  for (const auto kind : {gpusim::LayoutKind::xor_swizzle,
                          gpusim::LayoutKind::rotation}) {
    auto opts = base();
    opts.layout = kind;
    const auto cert = certify_engine("shearsort", opts);
    EXPECT_TRUE(cert.certified) << gpusim::to_string(kind);
    EXPECT_TRUE(cert.counterexamples.empty());
    ASSERT_EQ(cert.cells.size(), 1u);
    EXPECT_EQ(cert.cells[0].report.max_read_bound, 1u);
    EXPECT_EQ(cert.cells[0].report.max_write_bound, 1u);
  }
  auto opts = base();
  opts.pads = {1};  // gcd(1, 32) = 1: the padded column sweeps all banks
  const auto cert = certify_engine("shearsort", opts);
  EXPECT_TRUE(cert.certified);
}

TEST(Certify, ShearsortRefutedUnderLinearWithConfirmedWitness) {
  const auto cert = certify_engine("shearsort", base());
  EXPECT_FALSE(cert.certified);
  ASSERT_FALSE(cert.counterexamples.empty());
  for (const auto& cx : cert.counterexamples) {
    EXPECT_TRUE(cx.confirmed) << cx.group;
    // The witness is the full-degree column conflict, and the DMM replay
    // reproduces exactly the degree the symbolic bound promised.
    EXPECT_EQ(cx.witness_degree, 32u);
    EXPECT_EQ(cx.replayed_degree, cx.witness_degree);
    EXPECT_EQ(cx.bound_degree, 32u);
    EXPECT_EQ(cx.addresses.size(), 32u);
  }
}

TEST(Certify, VulnerableEngineRefutedUnderEveryLayout) {
  for (const auto kind :
       {gpusim::LayoutKind::linear, gpusim::LayoutKind::xor_swizzle,
        gpusim::LayoutKind::rotation}) {
    auto opts = base();
    opts.layout = kind;
    const auto cert = certify_engine("pairwise", opts);
    EXPECT_FALSE(cert.certified) << gpusim::to_string(kind);
    bool any_confirmed = false;
    for (const auto& cx : cert.counterexamples) {
      any_confirmed = any_confirmed || cx.confirmed;
    }
    EXPECT_TRUE(any_confirmed) << gpusim::to_string(kind);
  }
}

TEST(Certify, MixedGridRefutesAndKeepsEveryCell) {
  auto opts = base();
  opts.bs = {64, 128};
  opts.pads = {0, 1};
  const auto cert = certify_engine("shearsort", opts);
  EXPECT_FALSE(cert.certified);  // the pad-0 cells are vulnerable
  ASSERT_EQ(cert.cells.size(), 4u);
  EXPECT_EQ(cert.cells[0].b, 64u);
  EXPECT_EQ(cert.cells[0].pad, 0u);
  EXPECT_EQ(cert.cells[3].b, 128u);
  EXPECT_EQ(cert.cells[3].pad, 1u);
  // Counterexamples come only from the vulnerable pad-0 cells.
  for (const auto& cx : cert.counterexamples) {
    EXPECT_EQ(cx.pad, 0u);
  }
}

TEST(Certify, RotationPlusPaddingLosesTheCertificate) {
  // Effective column bank stride under rotation is 1 + pad: pad 1 halves
  // the bank coverage, so the certificate must be revoked.
  auto opts = base();
  opts.layout = gpusim::LayoutKind::rotation;
  opts.pads = {1};
  const auto cert = certify_engine("shearsort", opts);
  EXPECT_FALSE(cert.certified);
  ASSERT_FALSE(cert.counterexamples.empty());
  EXPECT_EQ(cert.counterexamples[0].bound_degree, 2u);
  EXPECT_TRUE(cert.counterexamples[0].confirmed);
}

TEST(Certify, JsonIsDeterministicAndSealed) {
  auto opts = base();
  opts.layout = gpusim::LayoutKind::xor_swizzle;
  const auto c1 = certify_engine("shearsort", opts);
  const auto c2 = certify_engine("shearsort", opts);
  std::ostringstream o1;
  std::ostringstream o2;
  render_json(o1, c1);
  render_json(o2, c2);
  EXPECT_EQ(o1.str(), o2.str());
  EXPECT_EQ(c1.digest, c2.digest);
  EXPECT_NE(c1.digest, 0u);
  EXPECT_NE(o1.str().find("\"verdict\":\"certified\""), std::string::npos);
  EXPECT_NE(o1.str().find("\"wcm_certify\":1"), std::string::npos);
}

TEST(Certify, DigestCoversTheVerdict) {
  auto xopts = base();
  xopts.layout = gpusim::LayoutKind::xor_swizzle;
  const auto certified = certify_engine("shearsort", xopts);
  const auto refuted = certify_engine("shearsort", base());
  EXPECT_NE(certified.digest, refuted.digest);
}

TEST(Certify, UnknownEngineThrows) {
  EXPECT_THROW((void)certify_engine("quicksort", base()), parse_error);
}

TEST(Certify, TextRendersCounterexampleValuations) {
  const auto cert = certify_engine("shearsort", base());
  std::ostringstream os;
  render_text(os, cert);
  EXPECT_NE(os.str().find("verdict: refuted"), std::string::npos);
  EXPECT_NE(os.str().find("(confirmed)"), std::string::npos);
  EXPECT_NE(os.str().find("column load"), std::string::npos);
}

}  // namespace
}  // namespace wcm::analyze::symbolic
