// Digest-pinning tests for the shared FNV-1a implementation
// (util/hash.hpp).  Three on-disk/derived formats chain this hash — WCMI
// checksums, WCMC cache keys, and the symbolic prover's report digests —
// so the constants and the byte-for-byte digest values are pinned against
// the published FNV-1a 64-bit reference vectors.  If any of these tests
// fail, every existing WCMI/WCMC file in the wild is invalidated: that
// must be a deliberate format bump, never an accident.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace wcm {
namespace {

TEST(UtilHash, ConstantsMatchFnv1a64Reference) {
  EXPECT_EQ(fnv_offset_basis, 14695981039346656037ULL);
  EXPECT_EQ(fnv_offset_basis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv_prime, 1099511628211ULL);
  EXPECT_EQ(fnv_prime, 0x100000001b3ULL);
}

TEST(UtilHash, PinsPublishedReferenceVectors) {
  // Vectors from the FNV reference distribution (fnv64a of short strings).
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("b"), 0xaf63df4c8601f1a5ULL);
  EXPECT_EQ(fnv1a("c"), 0xaf63de4c8601eff2ULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(fnv1a("chongo was here!\n"), 0x46810940eff5f915ULL);
}

TEST(UtilHash, ChainingEqualsOneShot) {
  // Hashing a split string through a chained state must equal hashing the
  // concatenation — the property the WCMI/WCMC writers rely on when they
  // mix header fields one at a time.
  const std::string text = "WCMI-header-then-payload";
  const u64 whole = fnv1a(text);
  u64 h = fnv_offset_basis;
  h = fnv1a(h, text.substr(0, 4));
  h = fnv1a(h, text.data() + 4, text.size() - 4);
  EXPECT_EQ(h, whole);
}

TEST(UtilHash, BinaryFieldChainIsStable) {
  // A WCMC-key-style chain over binary fields: pin the digest so a change
  // to the hash silently re-keying every cache shows up here first.
  const std::uint32_t version = 1;
  const std::uint64_t n = 1024;
  u64 h = fnv_offset_basis;
  h = fnv1a(h, "WCMC");
  h = fnv1a(h, &version, sizeof(version));
  h = fnv1a(h, &n, sizeof(n));
  EXPECT_EQ(h, 0xc690b0fd356999eaULL);
}

TEST(UtilHash, SeededChainsDiffer) {
  EXPECT_NE(fnv1a("key"), fnv1a(fnv1a("salt"), "key"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

}  // namespace
}  // namespace wcm
