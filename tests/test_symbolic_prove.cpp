// End-to-end tests of the symbolic prover (analyze/symbolic/prove): the
// Theorem 3/9 cross-check instances over every co-prime (w, E), clean
// proofs for all seven engines under plain and padded layouts, the
// static-vs-dynamic certification of recorded traces, and the JSON
// report's digest determinism.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "analyze/symbolic/prove.hpp"
#include "analyze/symbolic/theorems.hpp"
#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/error.hpp"

namespace wcm::analyze::symbolic {
namespace {

// Every co-prime odd E in [3, w) must reproduce its closed form three
// independent ways and respect the symbolic merge-read bound.
TEST(Theorems, AllCoprimeInstancesCheckOut) {
  for (const u32 w : {16u, 32u, 64u}) {
    const auto instances = check_theorems(w, 3, w - 1);
    ASSERT_FALSE(instances.empty()) << "w=" << w;
    for (const auto& inst : instances) {
      EXPECT_TRUE(inst.ok) << "w=" << inst.w << " E=" << inst.E << ": "
                           << inst.note;
      EXPECT_EQ(std::gcd(inst.w, inst.E), 1u);
      EXPECT_EQ(inst.aligned_static, inst.aligned_closed);
      EXPECT_EQ(inst.aligned_dynamic, inst.aligned_closed);
      EXPECT_LE(inst.max_step_degree, inst.step_bound);
      if (inst.small) {
        // Theorem 3: E^2 aligned elements, per-step degree beta_2 = E.
        EXPECT_EQ(inst.aligned_closed,
                  static_cast<u64>(inst.E) * inst.E);
      } else {
        // Theorem 9: (E^2 + E + 2Er - r^2 - r) / 2 with r = w - E.
        const u64 e = inst.E;
        const u64 r = inst.w - inst.E;
        EXPECT_EQ(inst.aligned_closed,
                  (e * e + e + 2 * e * r - r * r - r) / 2);
      }
    }
  }
}

TEST(Theorems, SweepSkipsSharedFactorE) {
  for (const auto& inst : check_theorems(32, 3, 31)) {
    EXPECT_NE(inst.E % 2, 0u);  // even E shares a factor with w = 32
  }
}

TEST(Prove, AllEnginesProveCleanPlainAndPadded) {
  for (const u32 pad : {0u, 1u}) {
    ProveOptions opts;
    opts.pad = pad;
    const ProveReport report = prove(all_engines(), opts);
    EXPECT_TRUE(report.findings.empty()) << [&] {
      std::ostringstream os;
      render_text(os, report);
      return os.str();
    }();
    ASSERT_EQ(report.engines.size(), all_engines().size());
    for (const auto& eng : report.engines) {
      EXPECT_TRUE(eng.all_proved) << eng.engine << " pad=" << pad;
      EXPECT_GE(eng.max_read_bound, 1u) << eng.engine;
      EXPECT_GE(eng.max_write_bound, 1u) << eng.engine;
      for (const auto& group : eng.groups) {
        EXPECT_NE(group.bound.method, "trivial")
            << eng.engine << " / " << group.name;
        EXPECT_TRUE(group.bound.divergence.empty())
            << eng.engine << " / " << group.name << ": "
            << group.bound.divergence;
      }
    }
    EXPECT_FALSE(report.theorems.empty());
  }
}

TEST(Prove, PairwiseTheoremSiteBoundIsE) {
  // At an exact E the pairwise merge-read window bound must be small: the
  // per-step degree Theorem 3 calls beta_2 = E (plus the straddle of the
  // second range).
  ProveOptions opts;
  opts.e_min = 5;
  opts.e_max = 5;
  const EngineReport eng = prove_engine("pairwise", opts);
  bool saw_site = false;
  for (const auto& group : eng.groups) {
    if (!group.theorem_site) {
      continue;
    }
    saw_site = true;
    EXPECT_LE(group.bound.degree, 6u) << group.name;
  }
  EXPECT_TRUE(saw_site);
}

TEST(Prove, UnknownEngineThrowsParseError) {
  ProveOptions opts;
  EXPECT_THROW((void)prove_engine("quicksort", opts), parse_error);
  EXPECT_THROW((void)prove({"pairwise", "quicksort"}, opts), parse_error);
}

TEST(Prove, JsonReportIsDeterministicAndDigested) {
  ProveOptions opts;
  opts.e_min = 3;
  opts.e_max = 9;
  const ProveReport report = prove({"pairwise", "bitonic"}, opts);
  std::ostringstream a;
  std::ostringstream b;
  render_json(a, report);
  render_json(b, report);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"digest\":\"fnv1a:"), std::string::npos);
  EXPECT_NE(report.digest, 0u);

  std::ostringstream text;
  render_text(text, report);
  EXPECT_NE(text.str().find("fnv1a:"), std::string::npos);
}

TEST(Prove, AppendFindingsRefreshesDigest) {
  ProveOptions opts;
  ProveReport report = prove({"pairwise"}, opts);
  const u64 before = report.digest;
  Diagnostic d;
  d.rule = Rule::symbolic_divergence;
  d.message = "synthetic";
  append_findings(report, {d});
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.digest, before);
}

// Dynamic side: a real recorded pairwise trace must certify against the
// bounds proved for its exact configuration.
TEST(Certify, RecordedPairwiseTraceIsWithinBounds) {
  sort::SortConfig cfg{5, 64, 32};
  gpusim::TraceRecorder rec;
  cfg.trace_sink = &rec;
  std::vector<dmm::word> input(cfg.tile() * 2);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<dmm::word>((input.size() - i) * 7 % 97);
  }
  std::vector<dmm::word> out;
  (void)sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                                  sort::MergeSortLibrary::thrust, &out);
  const gpusim::Trace trace = rec.take();
  ASSERT_GT(trace.access_steps(), 0u);

  ProveOptions opts;
  opts.w = cfg.w;
  opts.b = cfg.b;
  opts.e_min = cfg.E;
  opts.e_max = cfg.E;
  const EngineReport eng = prove_engine("pairwise", opts);
  const auto findings = certify_trace(trace, eng);
  EXPECT_TRUE(findings.empty()) << findings.size() << " violations, first: "
                                << findings.front().message;
}

// And the negative: a fabricated stride-w store (every lane in bank 0)
// costs w, far beyond the proved write bound — certify must flag it.
// (The read side is window-capped at w lanes, so writes are the sharp
// bound for this engine.)
TEST(Certify, OverBoundStepIsFlaggedAsSymbolicDivergence) {
  ProveOptions opts;
  const EngineReport eng = prove_engine("pairwise", opts);
  ASSERT_LT(eng.max_write_bound, 32u);

  gpusim::Trace trace;
  trace.warp_size = 32;
  trace.logical_words = 32u * 32u;
  gpusim::TraceStep step;
  step.kind = gpusim::StepKind::write;
  for (u32 lane = 0; lane < 32; ++lane) {
    step.accesses.emplace_back(lane, static_cast<std::size_t>(lane) * 32u);
  }
  trace.steps.push_back(step);

  const auto findings = certify_trace(trace, eng);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().rule, Rule::symbolic_divergence);
}

}  // namespace
}  // namespace wcm::analyze::symbolic
