// Metrics-registry coverage: instrument semantics, canonical label
// ordering, deterministic snapshots, strict-JSON round-trips through
// util/json, and the ISSUE acceptance cross-check — summing the
// per-round `sim.round.*` counters of an instrumented sort reproduces
// the report's KernelStats totals bit-for-bit.

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "runtime/scheduler.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "workload/inputs.hpp"

namespace wcm {
namespace {

class TelemetryMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::registry().reset();
  }
  void TearDown() override {
    telemetry::registry().reset();
    telemetry::set_enabled(false);
  }
};

TEST_F(TelemetryMetricsTest, CounterAccumulates) {
  auto& c = telemetry::registry().counter("t.count");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(&telemetry::registry().counter("t.count"), &c);
}

TEST_F(TelemetryMetricsTest, GaugeSetAndAdd) {
  auto& g = telemetry::registry().gauge("t.gauge");
  g.set(3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(TelemetryMetricsTest, HistogramBucketsAndSum) {
  auto& h = telemetry::registry().histogram("t.hist", {}, {1.0, 10.0});
  h.observe(0.5);   // le1
  h.observe(1.0);   // le1 (inclusive upper bound)
  h.observe(5.0);   // le10
  h.observe(99.0);  // +inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST_F(TelemetryMetricsTest, LabelOrderIsCanonical) {
  // The same label set in any order addresses the same instrument.
  auto& a = telemetry::registry().counter(
      "t.labeled", {{"engine", "pairwise"}, {"round", "r1"}});
  auto& b = telemetry::registry().counter(
      "t.labeled", {{"round", "r1"}, {"engine", "pairwise"}});
  EXPECT_EQ(&a, &b);
  a.add(7);

  std::ostringstream os;
  telemetry::registry().snapshot().write_text(os);
  EXPECT_NE(os.str().find("t.labeled{engine=pairwise,round=r1} 7"),
            std::string::npos)
      << os.str();
}

TEST_F(TelemetryMetricsTest, KindMismatchThrowsContractError) {
  (void)telemetry::registry().counter("t.kind");
  EXPECT_THROW((void)telemetry::registry().gauge("t.kind"), contract_error);
  EXPECT_THROW(
      (void)telemetry::registry().histogram("t.kind", {}, {1.0}),
      contract_error);
  // A histogram re-registered with different bounds is a contract bug too.
  (void)telemetry::registry().histogram("t.bounds", {}, {1.0, 2.0});
  EXPECT_THROW(
      (void)telemetry::registry().histogram("t.bounds", {}, {1.0, 3.0}),
      contract_error);
}

TEST_F(TelemetryMetricsTest, SnapshotRowsAreSorted) {
  telemetry::registry().counter("z.last").add(1);
  telemetry::registry().counter("a.first").add(1);
  telemetry::registry().counter("m.mid", {{"k", "b"}}).add(1);
  telemetry::registry().counter("m.mid", {{"k", "a"}}).add(1);
  const auto snap = telemetry::registry().snapshot();
  ASSERT_EQ(snap.rows.size(), 4u);
  EXPECT_EQ(snap.rows[0].name, "a.first");
  EXPECT_EQ(snap.rows[1].name, "m.mid");
  EXPECT_EQ(snap.rows[1].labels[0].second, "a");
  EXPECT_EQ(snap.rows[2].labels[0].second, "b");
  EXPECT_EQ(snap.rows[3].name, "z.last");
}

TEST_F(TelemetryMetricsTest, CounterTotalSumsAcrossLabelSets) {
  telemetry::registry().counter("t.total", {{"round", "r1"}}).add(10);
  telemetry::registry().counter("t.total", {{"round", "r2"}}).add(32);
  telemetry::registry().counter("t.other").add(5);
  const auto snap = telemetry::registry().snapshot();
  EXPECT_EQ(snap.counter_total("t.total"), 42u);
  EXPECT_EQ(snap.counter_total("t.other"), 5u);
  EXPECT_EQ(snap.counter_total("t.missing"), 0u);
}

TEST_F(TelemetryMetricsTest, JsonSnapshotRoundTripsStrictParser) {
  telemetry::registry()
      .counter("json.counter", {{"engine", "pairwise"}, {"E", "5"}})
      .add(3);
  telemetry::registry().gauge("json.gauge").set(1.25);
  telemetry::registry().histogram("json.hist", {}, {1.0, 10.0}).observe(4.0);

  std::ostringstream os;
  telemetry::registry().snapshot().write_json(os);
  const json::Value doc = json::parse(os.str());  // throws on non-strict JSON

  const auto& metrics = doc.as_object().at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 3u);
  // Rows are sorted by instrument key: counter < gauge < hist here.
  const auto& counter = metrics[0].as_object();
  EXPECT_EQ(counter.at("name").as_string(), "json.counter");
  EXPECT_EQ(counter.at("kind").as_string(), "counter");
  EXPECT_EQ(counter.at("value").as_u64(), 3u);
  EXPECT_EQ(counter.at("labels").as_object().at("E").as_string(), "5");

  const auto& gauge = metrics[1].as_object();
  EXPECT_EQ(gauge.at("kind").as_string(), "gauge");
  EXPECT_DOUBLE_EQ(gauge.at("value").as_double(), 1.25);

  const auto& hist = metrics[2].as_object();
  EXPECT_EQ(hist.at("kind").as_string(), "histogram");
  EXPECT_EQ(hist.at("count").as_u64(), 1u);
  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);
  // The overflow bucket's bound is JSON null (no +inf in strict JSON).
  EXPECT_TRUE(buckets[2].as_object().at("le").is_null());
}

TEST_F(TelemetryMetricsTest, ResetDropsEverything) {
  telemetry::registry().counter("t.reset").add(1);
  EXPECT_GE(telemetry::registry().size(), 1u);
  telemetry::registry().reset();
  EXPECT_EQ(telemetry::registry().size(), 0u);
  EXPECT_TRUE(telemetry::registry().snapshot().rows.empty());
}

TEST_F(TelemetryMetricsTest, DisabledRegistryStillWorksButSitesSkipIt) {
  // The master switch gates *instrumented sites*, not the registry API:
  // record_round_telemetry must be a no-op when disabled.
  telemetry::set_enabled(false);
  const sort::SortConfig cfg{5, 64, 32};
  const auto input = workload::make_input(workload::InputKind::random,
                                          cfg.tile() * 2, cfg, 1);
  (void)sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  EXPECT_EQ(telemetry::registry().snapshot().counter_total("sim.round.replays"),
            0u);
}

// ISSUE acceptance: the per-round counters must sum EXACTLY (integer
// equality, not approximately) to the totals the simulator itself reports,
// because both are fed from the same KernelStats at the same site.
TEST_F(TelemetryMetricsTest, PairwiseRoundCountersSumToKernelStatsTotals) {
  const sort::SortConfig cfg{5, 64, 32};
  const auto input = workload::make_input(workload::InputKind::worst_case,
                                          cfg.tile() * 4, cfg, 1);
  const auto report =
      sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  const auto snap = telemetry::registry().snapshot();

  EXPECT_EQ(snap.counter_total("sim.round.replays"),
            static_cast<u64>(report.totals.shared.replays));
  EXPECT_EQ(snap.counter_total("sim.round.serialization_cycles"),
            static_cast<u64>(report.totals.shared.serialization_cycles));
  EXPECT_EQ(snap.counter_total("sim.round.conflicting_accesses"),
            static_cast<u64>(report.totals.shared.conflicting_accesses));
  EXPECT_EQ(snap.counter_total("sim.round.requests"),
            static_cast<u64>(report.totals.shared.requests));
  EXPECT_EQ(snap.counter_total("sim.round.merge_read.replays"),
            static_cast<u64>(report.totals.shared_merge_reads.replays));
  EXPECT_EQ(snap.counter_total("sim.round.search.replays"),
            static_cast<u64>(report.totals.shared_search.replays));
  EXPECT_EQ(snap.counter_total("sim.round.global_transactions"),
            static_cast<u64>(report.totals.global_transactions));
  EXPECT_EQ(snap.counter_total("sim.round.elements"),
            static_cast<u64>(report.totals.elements_processed));
  // One sim.rounds increment and one histogram observation per round.
  EXPECT_EQ(snap.counter_total("sim.rounds"), report.rounds.size());
  for (const auto& row : snap.rows) {
    if (row.name == "sim.replays_per_round") {
      EXPECT_EQ(row.hist_count, report.rounds.size());
    }
  }
}

TEST_F(TelemetryMetricsTest, MultiwayRoundCountersSumToKernelStatsTotals) {
  const sort::SortConfig cfg{5, 64, 32};
  const auto input = workload::make_input(workload::InputKind::worst_case,
                                          cfg.tile() * 4, cfg, 1);
  const auto report =
      sort::multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), 2);
  const auto snap = telemetry::registry().snapshot();
  EXPECT_EQ(snap.counter_total("sim.round.replays"),
            static_cast<u64>(report.totals.shared.replays));
  EXPECT_EQ(snap.counter_total("sim.round.serialization_cycles"),
            static_cast<u64>(report.totals.shared.serialization_cycles));
  EXPECT_EQ(snap.counter_total("sim.round.elements"),
            static_cast<u64>(report.totals.elements_processed));
}

// Satellite: deterministic metrics under WCM_THREADS>1.  Two identical
// 4-worker runs must render byte-identical counter rows (gauges and
// timing histograms carry wall-clock values and are excluded by design).
TEST_F(TelemetryMetricsTest, ParallelRunsRenderIdenticalCounterRows) {
  const auto run_once = [] {
    telemetry::registry().reset();
    const sort::SortConfig cfg{5, 64, 32};
    (void)runtime::parallel_map(
        4, 4, [&](std::size_t i) -> std::size_t {
          const auto input = workload::make_input(
              i % 2 == 0 ? workload::InputKind::random
                         : workload::InputKind::worst_case,
              cfg.tile() * 2, cfg, static_cast<u64>(1 + i));
          return sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000())
              .totals.shared.replays;
        });
    std::ostringstream os;
    for (const auto& row : telemetry::registry().snapshot().rows) {
      if (row.kind == telemetry::MetricKind::counter) {
        os << row.name << '{';
        for (const auto& [k, v] : row.labels) {
          os << k << '=' << v << ',';
        }
        os << "} " << row.counter_value << '\n';
      }
    }
    return os.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace wcm
