// Tests for the simulated block scan — correctness plus the Dotsenko
// bank-conflict law the paper's introduction cites: per-thread stride E
// sharing a factor d with the bank count costs d-way conflicts; co-prime
// strides (or padding) are conflict-free.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "gpusim/trace.hpp"
#include "sort/scan.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

std::vector<word> host_scan(std::span<const word> v) {
  std::vector<word> out(v.size());
  std::partial_sum(v.begin(), v.end(), out.begin());
  return out;
}

TEST(BlockScan, ComputesInclusivePrefixSum) {
  for (const u32 e : {4u, 15u, 16u}) {
    const SortConfig cfg{e, 64, 32};
    const std::size_t n = cfg.tile() * 3;
    auto input = workload::random_permutation(n, e);
    for (auto& x : input) {
      x %= 100;
    }
    std::vector<word> out;
    (void)block_scan(input, cfg, gpusim::quadro_m4000(), &out);
    EXPECT_EQ(out, host_scan(input)) << "E=" << e;
  }
}

TEST(BlockScan, RecordedTraceSanitizesClean) {
  // The scan kernel's barrier placement (publish / gather / scatter) must
  // satisfy the static race detector, and its strided phase-1 accesses are
  // exactly the affine steps the stride predictor prices in closed form.
  for (const u32 pad : {0u, 1u}) {
    SortConfig cfg{6, 64, 32};
    cfg.padding = pad;
    gpusim::TraceRecorder rec;
    cfg.trace_sink = &rec;
    const auto input = workload::random_permutation(cfg.tile() * 2, 42);
    std::vector<word> out;
    (void)block_scan(input, cfg, gpusim::quadro_m4000(), &out);

    analyze::AnalyzeOptions opts;
    opts.pad = pad;
    const auto report = analyze::analyze_trace(rec.take(), opts);
    ASSERT_TRUE(report.cross_checked) << "pad " << pad;
    if (!report.clean()) {
      std::ostringstream os;
      analyze::render_text(os, report, "block-scan");
      FAIL() << os.str();
    }
    EXPECT_GT(report.barriers, 0u);
  }
}

TEST(BlockScan, SingleTileAndContracts) {
  const SortConfig cfg{8, 64, 32};
  const auto input = workload::sorted_input(cfg.tile());
  std::vector<word> out;
  (void)block_scan(input, cfg, gpusim::quadro_m4000(), &out);
  EXPECT_EQ(out, host_scan(input));
  EXPECT_THROW(
      (void)block_scan(std::vector<word>{}, cfg, gpusim::quadro_m4000()),
      contract_error);
  EXPECT_THROW((void)block_scan(workload::sorted_input(cfg.tile() + 1), cfg,
                                gpusim::quadro_m4000()),
               contract_error);
}

// The Dotsenko law: the scan's conflicts are data-independent and scale
// with gcd(E, w).
TEST(BlockScan, ConflictsScaleWithGcd) {
  const auto dev = gpusim::quadro_m4000();
  double replays_per_elem[3];
  int i = 0;
  for (const u32 e : {15u, 16u, 8u}) {  // gcd 1, 16, 8
    const SortConfig cfg{e, 64, 32};
    const auto input = workload::random_permutation(cfg.tile() * 2, 1);
    const auto report = block_scan(input, cfg, dev);
    replays_per_elem[i++] =
        static_cast<double>(report.totals.shared.replays) /
        static_cast<double>(report.n);
  }
  // Closed form: phases 1 and 3 touch each element 4 times (2 reads + 2
  // writes) in warp steps of w lanes with d-way serialization, so replays
  // per element = 4 (d - 1) / w; the Hillis-Steele combine over the totals
  // region adds a small extra for the co-prime case only.
  EXPECT_LT(replays_per_elem[0], 0.3);                 // gcd 1: ~0
  EXPECT_DOUBLE_EQ(replays_per_elem[1], 4.0 * 15 / 32);  // E=16: 1.875
  EXPECT_DOUBLE_EQ(replays_per_elem[2], 4.0 * 7 / 32);   // E=8:  0.875
  EXPECT_GT(replays_per_elem[1], replays_per_elem[2]);
}

TEST(BlockScan, DataIndependentConflicts) {
  const SortConfig cfg{16, 64, 32};
  const auto dev = gpusim::quadro_m4000();
  const auto r1 = block_scan(
      workload::random_permutation(cfg.tile() * 2, 1), cfg, dev);
  const auto r2 = block_scan(workload::sorted_input(cfg.tile() * 2), cfg,
                             dev);
  EXPECT_EQ(r1.totals.shared.replays, r2.totals.shared.replays);
  EXPECT_EQ(r1.totals.shared.serialization_cycles,
            r2.totals.shared.serialization_cycles);
}

// Dotsenko's fix, both forms: pick E co-prime with w, or pad.
TEST(BlockScan, PaddingFixesSharedFactorStride) {
  const auto dev = gpusim::quadro_m4000();
  SortConfig cfg{16, 64, 32};
  const auto input = workload::random_permutation(cfg.tile() * 2, 1);
  const auto unpadded = block_scan(input, cfg, dev);
  cfg.padding = 1;
  std::vector<word> out;
  const auto padded = block_scan(input, cfg, dev, &out);
  EXPECT_EQ(out, host_scan(input));  // still correct
  EXPECT_LT(padded.totals.shared.replays * 10,
            unpadded.totals.shared.replays);
  EXPECT_LT(padded.seconds(), unpadded.seconds());
}

}  // namespace
}  // namespace wcm::sort
