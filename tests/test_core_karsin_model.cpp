// Tests for the quoted Karsin complexity formulas (paper Sec. II-A) and
// their agreement with the simulator's measured access counts — scaling
// checks (ratios across n), since the formulas are asymptotic.

#include <gtest/gtest.h>

#include "core/karsin_model.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::core {
namespace {

TEST(KarsinModel, Contracts) {
  const auto cfg = sort::params_15_512();
  EXPECT_THROW((void)karsin_global_accesses(1 << 20, cfg, 0.0),
               contract_error);
  EXPECT_THROW((void)karsin_shared_accesses(1 << 20, cfg, 100.0, 0.5, 2.0),
               contract_error);
}

TEST(KarsinModel, MoreCoresMeanFewerParallelAccesses) {
  const auto cfg = sort::params_15_512();
  const std::size_t n = cfg.tile() * 256;
  EXPECT_GT(karsin_global_accesses(n, cfg, 1664.0),
            karsin_global_accesses(n, cfg, 4352.0));
  EXPECT_GT(karsin_shared_accesses(n, cfg, 1664.0, 3.1, 2.2),
            karsin_shared_accesses(n, cfg, 4352.0, 3.1, 2.2));
}

TEST(KarsinModel, SharedFormulaLinearInBeta2WhenMergingDominates) {
  // With E >= log(bE), the merging term dominates (paper Sec. III opening):
  // doubling beta_2 roughly doubles A_s.
  const auto cfg = sort::params_15_512();  // E = 15 >= log2(7680) ~ 12.9
  const std::size_t n = cfg.tile() * 1024;
  const double base =
      karsin_shared_accesses(n, cfg, 1664.0, 3.1, 2.2);
  const double attacked =
      karsin_shared_accesses(n, cfg, 1664.0, 3.1, 15.0);
  EXPECT_GT(attacked / base, 15.0 / 2.2 * 0.5);
  EXPECT_LT(attacked / base, 15.0 / 2.2);
}

// Measured scaling: the simulator's per-sort shared *requests* follow
// A_s * P (total work) — i.e. Theta(N log(N/bE)) for fixed (E, b) — so the
// ratio between sizes matches the formula's ratio within a few percent.
TEST(KarsinModel, SimulatedSharedAccessesScaleLikeAs) {
  const sort::SortConfig cfg{5, 64, 32};
  const auto dev = gpusim::quadro_m4000();
  const double P = 1.0;  // total work: drop the parallel division

  double measured[2], predicted[2];
  int i = 0;
  for (const std::size_t tiles : {8u, 32u}) {
    const std::size_t n = cfg.tile() * tiles;
    const auto input = workload::random_permutation(n, 3);
    const auto report = sort::pairwise_merge_sort(input, cfg, dev);
    // Merge-stage reads of the global rounds (the A_s merging term).
    std::size_t reqs = 0;
    for (std::size_t r = 1; r < report.rounds.size(); ++r) {
      reqs += report.rounds[r].kernel.shared_merge_reads.requests;
    }
    measured[i] = static_cast<double>(reqs);
    predicted[i] = karsin_shared_accesses(n, cfg, P, 1.0, 1.0);
    ++i;
  }
  const double measured_ratio = measured[1] / measured[0];
  const double predicted_ratio = predicted[1] / predicted[0];
  EXPECT_NEAR(measured_ratio, predicted_ratio, 0.25 * predicted_ratio);
}

TEST(KarsinModel, PaperReferenceBetas) {
  // The paper quotes beta_1 = 3.1, beta_2 = 2.2 for Modern GPU on random
  // inputs; our simulator's random-input values land in the same range.
  EXPECT_NEAR(kKarsinBeta1Random, 3.1, 1e-12);
  EXPECT_NEAR(kKarsinBeta2Random, 2.2, 1e-12);
  const auto cfg = sort::params_15_128();
  const std::size_t n = cfg.tile() * 16;
  const auto report = sort::pairwise_merge_sort(
      workload::random_permutation(n, 9), cfg, gpusim::quadro_m4000());
  EXPECT_GT(report.beta2(), 1.5);
  EXPECT_LT(report.beta2(), 4.5);
  EXPECT_GT(report.beta1(), 1.2);
  EXPECT_LT(report.beta1(), 4.5);
}

}  // namespace
}  // namespace wcm::core
