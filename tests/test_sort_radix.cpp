// Tests for the simulated radix sort: correctness across digit widths,
// pass arithmetic, and its distinct conflict mechanism — immune to the
// merge sort's adversary, vulnerable to its own (equal digits).

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/cpu_reference.hpp"
#include "sort/radix.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() { return SortConfig{5, 64, 32}; }

TEST(RadixSort, SortsRandomForDigitWidths) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 8;
  const auto input = workload::random_permutation(n, 77);
  for (const u32 bits : {1u, 2u, 4u, 8u}) {
    std::vector<word> out;
    (void)radix_sort(input, cfg, gpusim::quadro_m4000(), bits, &out);
    EXPECT_EQ(out, std_sort(input)) << "digit_bits=" << bits;
  }
}

TEST(RadixSort, DuplicatesAndSkewedKeys) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  auto input = workload::random_permutation(n, 3);
  for (auto& x : input) {
    x = (x % 9) * 1000 + x % 3;  // heavy duplication, gappy digits
  }
  std::vector<word> out;
  (void)radix_sort(input, cfg, gpusim::quadro_m4000(), 4, &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(RadixSort, PassArithmetic) {
  EXPECT_EQ(radix_pass_count(20, 4), 5u);
  EXPECT_EQ(radix_pass_count(20, 8), 3u);
  EXPECT_EQ(radix_pass_count(1, 4), 1u);
  EXPECT_THROW((void)radix_pass_count(20, 0), contract_error);
}

TEST(RadixSort, RejectsNegativeKeys) {
  const auto cfg = tiny();
  std::vector<word> bad(cfg.tile() * 2, -1);
  EXPECT_THROW((void)radix_sort(bad, cfg, gpusim::quadro_m4000()),
               contract_error);
}

TEST(RadixSort, MergeSortAdversaryMostlyHarmless) {
  // Globally the merge sort's worst-case permutation has the digit
  // statistics of any permutation of 0..n-1, but its unmerge tree places
  // *structured value subsets* in each tile, which mildly skews per-warp
  // digit distributions (a real, emergent effect).  The damage stays far
  // below both the merge sort's own slowdown and radix's true adversary.
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 8;
  const auto dev = gpusim::quadro_m4000();
  const auto merge_worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 3);
  const auto random = workload::random_permutation(n, 3);
  const auto r_worst = radix_sort(merge_worst, cfg, dev);
  const auto r_random = radix_sort(random, cfg, dev);
  EXPECT_LT(static_cast<double>(r_worst.totals.shared.steps),
            1.5 * static_cast<double>(r_random.totals.shared.steps));
  // Radix's true adversary is far worse than the merge adversary.
  const auto r_adv = radix_sort(radix_adversarial_input(n), cfg, dev);
  EXPECT_GT(static_cast<double>(r_adv.totals.shared.steps),
            1.5 * static_cast<double>(r_worst.totals.shared.steps));
}

TEST(RadixSort, HasItsOwnAdversary) {
  // Equal keys collide on one histogram bin: every warp's update pass
  // serializes into w retry rounds, inflating shared steps and time.
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  const auto uniform = workload::random_permutation(n, 5);
  const auto adversary = radix_adversarial_input(n);
  const auto r_uniform = radix_sort(uniform, cfg, dev);
  const auto r_adv = radix_sort(adversary, cfg, dev);
  EXPECT_GT(static_cast<double>(r_adv.totals.shared.steps),
            1.5 * static_cast<double>(r_uniform.totals.shared.steps));
  EXPECT_GT(r_adv.seconds(), r_uniform.seconds());
  // And it still sorts (trivially).
  std::vector<word> out;
  (void)radix_sort(adversary, cfg, dev, 4, &out);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(RadixSort, RoundStructure) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;  // keys < 1280 -> 11 bits -> 3 passes
  const auto report = radix_sort(workload::random_permutation(n, 9), cfg,
                                 gpusim::quadro_m4000(), 4);
  ASSERT_EQ(report.rounds.size(), 3u);
  EXPECT_EQ(report.rounds[0].name, "radix pass 0");
  for (const auto& r : report.rounds) {
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
}

}  // namespace
}  // namespace wcm::sort
