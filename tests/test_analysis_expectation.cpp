// Tests for inversion counting and the Monte Carlo expectation machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/expectation.hpp"
#include "util/check.hpp"
#include "workload/inversions.hpp"

namespace wcm {
namespace {

using dmm::word;

TEST(Inversions, BaseCases) {
  EXPECT_EQ(workload::count_inversions(std::vector<word>{}), 0u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{5}), 0u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{1, 2, 3}), 0u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{3, 2, 1}), 3u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{2, 1, 3}), 1u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{1, 3, 2, 4}), 1u);
}

TEST(Inversions, MatchesBruteForce) {
  const auto v = workload::random_permutation(200, 9);
  u64 brute = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      brute += v[i] > v[j] ? 1u : 0u;
    }
  }
  EXPECT_EQ(workload::count_inversions(v), brute);
}

TEST(Inversions, ExtremesOfTheFraction) {
  EXPECT_DOUBLE_EQ(
      workload::inversion_fraction(workload::sorted_input(100)), 0.0);
  EXPECT_DOUBLE_EQ(
      workload::inversion_fraction(workload::reversed_input(100)), 1.0);
  const double random_frac =
      workload::inversion_fraction(workload::random_permutation(2000, 3));
  EXPECT_NEAR(random_frac, 0.5, 0.05);  // E[fraction] = 1/2
}

TEST(Inversions, DuplicatesAreNotInversions) {
  EXPECT_EQ(workload::count_inversions(std::vector<word>{2, 2, 2}), 0u);
  EXPECT_EQ(workload::count_inversions(std::vector<word>{2, 1, 2}), 1u);
}

TEST(Moments, Statistics) {
  const auto m = analysis::moments_of({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
  EXPECT_NEAR(m.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_THROW((void)analysis::moments_of({}), contract_error);
}

TEST(Moments, ZScore) {
  analysis::Moments m;
  m.mean = 10.0;
  m.stddev = 2.0;
  EXPECT_DOUBLE_EQ(analysis::z_score(m, 14.0), 2.0);
  m.stddev = 0.0;
  EXPECT_TRUE(std::isinf(analysis::z_score(m, 14.0)));
  EXPECT_DOUBLE_EQ(analysis::z_score(m, 10.0), 0.0);
}

TEST(Expectation, DistributionIsTightAndReproducible) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  const auto d1 = analysis::sample_distribution(workload::InputKind::random,
                                                n, cfg, dev, 6, 42);
  const auto d2 = analysis::sample_distribution(workload::InputKind::random,
                                                n, cfg, dev, 6, 42);
  EXPECT_EQ(d1.samples, 6u);
  EXPECT_DOUBLE_EQ(d1.beta2.mean, d2.beta2.mean);  // deterministic seeding
  EXPECT_GT(d1.beta2.mean, 1.0);
  EXPECT_LE(d1.beta2.min, d1.beta2.mean);
  EXPECT_LE(d1.beta2.mean, d1.beta2.max);
  // Random-input conflicts concentrate: spread within ~15% of the mean.
  EXPECT_LT(d1.beta2.stddev, 0.15 * d1.beta2.mean);
}

TEST(Expectation, WorstCaseIsFarOutsideRandomDistribution) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  const auto dist = analysis::sample_distribution(workload::InputKind::random,
                                                  n, cfg, dev, 8, 17);
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 1);
  const auto report = sort::pairwise_merge_sort(worst, cfg, dev);
  EXPECT_GT(analysis::z_score(dist.beta2, report.beta2()), 5.0);
  EXPECT_GT(report.beta2(), dist.beta2.max);
}

TEST(Expectation, InversionSweepIsMonotoneInConflicts) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  const auto sweep =
      analysis::inversion_sweep(n, cfg, dev, {0, 10, 100, 1000}, 3);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_DOUBLE_EQ(sweep[0].inversion_fraction, 0.0);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].inversion_fraction, sweep[i - 1].inversion_fraction);
    EXPECT_GT(sweep[i].conflicts_per_element,
              sweep[0].conflicts_per_element);
  }
}

}  // namespace
}  // namespace wcm
