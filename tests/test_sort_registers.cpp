// Tests for the odd-even transposition network (the base case's in-register
// sort): correctness on all permutations of small sizes (the 0-1 principle
// would also do, but exhaustive small-n is direct), and the comparator-count
// closed form.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sort/registers.hpp"
#include "util/rng.hpp"

namespace wcm::sort {
namespace {

TEST(OddEvenSort, AllPermutationsUpTo7) {
  for (std::size_t n = 0; n <= 7; ++n) {
    std::vector<word> perm(n);
    std::iota(perm.begin(), perm.end(), word{0});
    do {
      std::vector<word> v = perm;
      odd_even_sort(v);
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()))
          << "n=" << n;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(OddEvenSort, DuplicatesAndRandom) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<word> v(17);
    for (auto& x : v) {
      x = static_cast<word>(rng.below(5));
    }
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    odd_even_sort(v);
    EXPECT_EQ(v, expected);
  }
}

TEST(OddEvenSort, ComparatorCountIsDataIndependent) {
  // A sorting *network* must execute the same comparators regardless of the
  // data — required for lock-step warp execution.
  for (const std::size_t n : {1u, 2u, 5u, 15u, 17u}) {
    std::vector<word> sorted_in(n), reversed_in(n);
    std::iota(sorted_in.begin(), sorted_in.end(), word{0});
    std::iota(reversed_in.rbegin(), reversed_in.rend(), word{0});
    const std::size_t c1 = odd_even_sort(sorted_in);
    const std::size_t c2 = odd_even_sort(reversed_in);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, odd_even_comparator_count(n));
  }
}

TEST(OddEvenSort, ComparatorClosedForm) {
  EXPECT_EQ(odd_even_comparator_count(0), 0u);
  EXPECT_EQ(odd_even_comparator_count(1), 0u);
  EXPECT_EQ(odd_even_comparator_count(2), 1u);
  EXPECT_EQ(odd_even_comparator_count(15), 105u);  // 15*14/2
  EXPECT_EQ(odd_even_comparator_count(17), 136u);  // 17*16/2
}

}  // namespace
}  // namespace wcm::sort
