// Tests for the Theorem 9 (large E) construction: sequence S and T
// structure (insertion rules, group sums) and the exact closed-form aligned
// count, swept over every valid (w, E) pair.

#include <gtest/gtest.h>

#include "core/large_e.hpp"
#include "core/numbers.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

struct Case {
  u32 w;
  u32 E;
};

class LargeE : public ::testing::TestWithParam<Case> {};

TEST_P(LargeE, SequenceSHasEntriesSummingToE) {
  const auto [w, E] = GetParam();
  const auto s = build_sequence_s(w, E);
  ASSERT_EQ(s.size(), static_cast<std::size_t>(E - 1));
  for (const auto& t : s) {
    EXPECT_EQ(t.from_a + t.from_b, E);
  }
}

TEST_P(LargeE, SequenceTHasWEntries) {
  const auto [w, E] = GetParam();
  const auto t = build_sequence_t(w, E);
  EXPECT_EQ(t.size(), static_cast<std::size_t>(w));  // r+1 insertions
  for (const auto& ta : t) {
    EXPECT_EQ(ta.from_a + ta.from_b, E);
  }
}

// Theorem 9's proof: T consists of E groups of consecutive entries whose
// A- (or B-) components sum to w: (E-1)/2 + 1 groups in A, (E-1)/2 in B.
TEST_P(LargeE, SequenceTGroupsSumToW) {
  const auto [w, E] = GetParam();
  const auto t = build_sequence_t(w, E);

  const auto count_groups = [&](const bool use_a) {
    u32 groups = 0;
    u32 acc = 0;
    for (const auto& ta : t) {
      acc += use_a ? ta.from_a : ta.from_b;
      EXPECT_LE(acc, w);
      if (acc == w) {
        ++groups;
        acc = 0;
      }
    }
    EXPECT_EQ(acc, 0u);  // the final group closes exactly
    return groups;
  };
  EXPECT_EQ(count_groups(true), (E - 1) / 2 + 1);
  EXPECT_EQ(count_groups(false), (E - 1) / 2);
}

TEST_P(LargeE, AlignsClosedFormCount) {
  const auto [w, E] = GetParam();
  const auto wa = build_large_e(w, E);
  const auto eval = evaluate_warp(wa, w - E);
  EXPECT_EQ(eval.aligned, aligned_large_e(w, E));
}

TEST_P(LargeE, MirroredWarpAlignsEquallyMany) {
  const auto [w, E] = GetParam();
  const auto wa = build_large_e(w, E).mirrored();
  const auto eval = evaluate_warp(wa, w - E);
  EXPECT_EQ(eval.aligned, aligned_large_e(w, E));
}

TEST_P(LargeE, AsymptoticallyQuadratic) {
  // Sec. III-B: the count is Theta(E^2) — between E^2/2 and E^2.
  const auto [w, E] = GetParam();
  const u64 aligned = aligned_large_e(w, E);
  EXPECT_GE(aligned, static_cast<u64>(E) * E / 2);
  EXPECT_LE(aligned, static_cast<u64>(E) * E);
}

std::vector<Case> all_large_cases() {
  std::vector<Case> cases;
  for (const u32 w : {8u, 16u, 32u, 64u, 128u}) {
    for (u32 E = 3; E < w; E += 2) {
      if (classify_e(w, E) == ERegime::large) {
        cases.push_back({w, E});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLargeE, LargeE, ::testing::ValuesIn(all_large_cases()),
                         [](const auto& tinfo) {
                           return "w" + std::to_string(tinfo.param.w) + "_E" +
                                  std::to_string(tinfo.param.E);
                         });

TEST(LargeEConstruction, RejectsWrongRegime) {
  EXPECT_THROW((void)build_large_e(32, 15), contract_error);  // small
  EXPECT_THROW((void)build_large_e(32, 16), contract_error);  // pow2
}

TEST(LargeEConstruction, PaperFigure3RightValue) {
  // w=16, E=9: 80 aligned elements (Figure 3, right subfigure).
  const auto wa = build_large_e(16, 9);
  EXPECT_EQ(evaluate_warp(wa, 7).aligned, 80u);
}

TEST(LargeEConstruction, SequenceSStartsAndEndsWithR) {
  // (a_1, b_1) = (r, E-r) and (a_{E-1}, b_{E-1}) = (r, E-r): the anchors of
  // insertion rule 1.
  const u32 w = 16, E = 9, r = 7;
  const auto s = build_sequence_s(w, E);
  EXPECT_EQ(s.front().from_a, r);
  EXPECT_EQ(s.front().from_b, E - r);
  EXPECT_EQ(s.back().from_a, r);
  EXPECT_EQ(s.back().from_b, E - r);
}

}  // namespace
}  // namespace wcm::core
