// Property tests for the congruence/interval domain and the per-group
// bound engine (analyze/symbolic/domain).  The load-bearing sweep is the
// satellite contract: for w in {16, 32, 64} and every stride s, the
// symbolic bound of a full-warp affine step must equal both the exact
// per-bank address count and analyze/stride.cpp's gcd closed form — three
// independent derivations of the same number.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analyze/stride.hpp"
#include "analyze/symbolic/domain.hpp"
#include "gpusim/access_ir.hpp"

namespace wcm::analyze::symbolic {
namespace {

using gpusim::ir::GroupKind;
using gpusim::ir::KernelDesc;
using gpusim::ir::LinForm;
using gpusim::ir::SymRole;

KernelDesc make_desc(u32 w, u32 pad) {
  KernelDesc d;
  d.kernel = "test";
  d.w = w;
  d.b = w;
  d.pad = pad;
  return d;
}

TEST(AbsVal, ConstantsAreExact) {
  const AbsVal v = abs_constant(7);
  EXPECT_TRUE(v.exact());
  EXPECT_EQ(v.lo, 7);
  EXPECT_EQ(v.hi, 7);
  EXPECT_EQ(v.rem, 7 % static_cast<i64>(v.mod));
}

TEST(AbsVal, AddMeetsCongruences) {
  // (≡1 mod 4) + (≡5 mod 6) stays ≡ 0 (mod gcd(4,6) = 2).
  AbsVal a;
  a.lo = 1;
  a.hi = 9;
  a.mod = 4;
  a.rem = 1;
  AbsVal b;
  b.lo = 5;
  b.hi = 11;
  b.mod = 6;
  b.rem = 5;
  const AbsVal sum = abs_add(a, b);
  EXPECT_EQ(sum.lo, 6);
  EXPECT_EQ(sum.hi, 20);
  EXPECT_EQ(sum.mod, 2u);
  EXPECT_EQ(sum.rem, 0);
}

TEST(AbsVal, ScaleMultipliesModulus) {
  AbsVal a;
  a.lo = 1;
  a.hi = 31;
  a.mod = 2;
  a.rem = 1;
  const AbsVal s = abs_scale(a, 3);
  EXPECT_EQ(s.lo, 3);
  EXPECT_EQ(s.hi, 93);
  EXPECT_EQ(s.mod, 6u);
  EXPECT_EQ(s.rem, 3);
}

TEST(AbsVal, OddValuesAreNonzeroModPowerOfTwo) {
  // The flagship congruence fact: an odd value is never ≡ 0 (mod 2^k).
  AbsVal odd;
  odd.lo = 3;
  odd.hi = 1000;
  odd.mod = 2;
  odd.rem = 1;
  EXPECT_TRUE(proves_nonzero_mod(odd, 32));
  EXPECT_TRUE(proves_nonzero_mod(odd, 16));
  EXPECT_FALSE(proves_zero_mod(odd, 32));
}

TEST(AbsVal, MultiplesOfWAreZeroModW) {
  AbsVal v;
  v.lo = 32;
  v.hi = 320;
  v.mod = 32;
  v.rem = 0;
  EXPECT_TRUE(proves_zero_mod(v, 32));
  EXPECT_FALSE(proves_nonzero_mod(v, 32));
}

TEST(AbsVal, IntervalAloneCanRefuteZeroMod) {
  // 1 <= v <= 31 excludes every multiple of 32 even without a congruence.
  AbsVal v;
  v.lo = 1;
  v.hi = 31;
  EXPECT_TRUE(proves_nonzero_mod(v, 32));
}

// The satellite sweep: symbolic bound == exact per-bank counting ==
// gcd(w, s), the closed form test_analyze_stride pins.
TEST(BoundGroup, FullWarpStrideMatchesGcdTableAndExactCount) {
  for (const u32 w : {16u, 32u, 64u}) {
    std::vector<u32> lane_ids(w);
    std::iota(lane_ids.begin(), lane_ids.end(), 0u);
    for (u32 s = 1; s <= 2 * w; ++s) {
      const KernelDesc desc = make_desc(w, 0);
      const auto group = gpusim::ir::affine_group(
          "sweep", GroupKind::read, w, LinForm::constant(0),
          LinForm::constant(static_cast<i64>(s)), "once");
      const StepBound bound = bound_group(desc, group);
      const u64 expected = std::gcd<u64, u64>(w, s);

      std::vector<i64> addrs(w);
      for (u32 lane = 0; lane < w; ++lane) {
        addrs[lane] = static_cast<i64>(lane) * static_cast<i64>(s);
      }
      ASSERT_EQ(bound.degree, expected)
          << "w=" << w << " s=" << s << " method=" << bound.method;
      EXPECT_EQ(exact_degree(w, 0, addrs), expected) << "w=" << w << " s=" << s;
      EXPECT_EQ(predict_affine_serialization(w, static_cast<i64>(s), lane_ids),
                expected)
          << "w=" << w << " s=" << s;
      EXPECT_TRUE(bound.divergence.empty()) << bound.divergence;
      EXPECT_EQ(bound.free, expected == 1);
    }
  }
}

TEST(BoundGroup, BroadcastIsFree) {
  const KernelDesc desc = make_desc(32, 0);
  const auto group =
      gpusim::ir::affine_group("broadcast", GroupKind::read, 32,
                               LinForm::constant(5), LinForm::constant(0),
                               "once");
  const StepBound bound = bound_group(desc, group);
  EXPECT_TRUE(bound.free);
  EXPECT_EQ(bound.degree, 1u);
}

// A symbolic odd stride is proven conflict-free for EVERY odd E in range
// at once — the congruence method, no enumeration.
TEST(BoundGroup, SymbolicOddStrideIsProvenFreeForAllValuations) {
  for (const u32 w : {16u, 32u, 64u}) {
    KernelDesc desc = make_desc(w, 0);
    const int e = desc.add_symbol("E", SymRole::parameter, 3,
                                  static_cast<i64>(w) - 1, 2, 1);
    const auto group = gpusim::ir::affine_group(
        "serial scan", GroupKind::read, w, LinForm::constant(0),
        LinForm::sym(e), "per round");
    const StepBound bound = bound_group(desc, group);
    EXPECT_TRUE(bound.free) << "w=" << w << " method=" << bound.method;
    EXPECT_EQ(bound.degree, 1u);
    EXPECT_EQ(bound.method, "congruence");
  }
}

// Warp-shift symbols shift every lane equally by a multiple of w and must
// not disturb the proof.
TEST(BoundGroup, WarpShiftDoesNotDisturbCongruenceProof) {
  KernelDesc desc = make_desc(32, 0);
  const int e = desc.add_symbol("E", SymRole::parameter, 3, 31, 2, 1);
  const int ws = desc.add_symbol("wsE", SymRole::warp_shift, 0, 0, 32, 0);
  const auto group = gpusim::ir::affine_group(
      "shifted scan", GroupKind::write, 32, LinForm::sym(ws), LinForm::sym(e),
      "per warp");
  const StepBound bound = bound_group(desc, group);
  EXPECT_TRUE(bound.free);
  EXPECT_EQ(bound.degree, 1u);
}

// Stride w is the classic worst case (all lanes in one bank) and one word
// of padding is the classic fix; enumeration must find both exactly.
TEST(BoundGroup, PaddingRepairsStrideW) {
  for (const u32 w : {16u, 32u}) {
    const auto group = gpusim::ir::affine_group(
        "column", GroupKind::read, w, LinForm::constant(0),
        LinForm::constant(static_cast<i64>(w)), "once");
    const StepBound plain = bound_group(make_desc(w, 0), group);
    EXPECT_EQ(plain.degree, w);
    EXPECT_TRUE(plain.exact);
    const StepBound padded = bound_group(make_desc(w, 1), group);
    EXPECT_EQ(padded.degree, 1u) << "w=" << w << " method=" << padded.method;
    EXPECT_TRUE(padded.free);
  }
}

TEST(BoundGroup, EnumerationSweepsSymbolRangesExactly) {
  // E in [1, 8] with no congruence: the bound must be max over the range
  // of gcd(32, E) = 8 (attained at E = 8), and exact.
  KernelDesc desc = make_desc(32, 0);
  const int e = desc.add_symbol("E", SymRole::parameter, 1, 8);
  const auto group =
      gpusim::ir::affine_group("range sweep", GroupKind::read, 32,
                               LinForm::constant(0), LinForm::sym(e), "once");
  const StepBound bound = bound_group(desc, group);
  EXPECT_EQ(bound.degree, 8u);
  EXPECT_TRUE(bound.exact);
  EXPECT_EQ(bound.method, "enumeration");
  EXPECT_TRUE(bound.divergence.empty()) << bound.divergence;
}

TEST(BoundGroup, WindowCapacityPlainAndPadded) {
  // A 64-word contiguous window on 32 banks: at most ceil(64/32) = 2
  // addresses per bank; one straddled block more when padded.
  {
    KernelDesc desc = make_desc(32, 0);
    const auto group = gpusim::ir::window_group(
        "merge reads", GroupKind::read, 32, LinForm::constant(64),
        LinForm::constant(1), "per step");
    const StepBound bound = bound_group(desc, group);
    EXPECT_EQ(bound.degree, 2u);
    EXPECT_EQ(bound.method, "window");
  }
  {
    KernelDesc desc = make_desc(32, 1);
    const auto group = gpusim::ir::window_group(
        "merge reads", GroupKind::read, 32, LinForm::constant(64),
        LinForm::constant(1), "per step");
    const StepBound bound = bound_group(desc, group);
    EXPECT_EQ(bound.degree, 3u);
  }
}

TEST(BoundGroup, WindowBoundIsCappedByActiveLanes) {
  KernelDesc desc = make_desc(32, 0);
  const auto group = gpusim::ir::window_group(
      "search probes", GroupKind::read, 32, LinForm::constant(4096),
      LinForm::constant(1), "per round");
  const StepBound bound = bound_group(desc, group);
  EXPECT_EQ(bound.degree, 32u);  // ceil(4096/32) = 128, capped at w lanes
}

TEST(WindowBoundAt, InstantiatesTheoremSiteDegree) {
  // The Theorem 3 site: a w*E merge window split in two ranges gives a
  // per-step bound of E + 1; a single range gives exactly E.
  KernelDesc desc = make_desc(32, 0);
  const int e = desc.add_symbol("E", SymRole::parameter, 3, 31, 2, 1);
  const auto one = gpusim::ir::window_group(
      "merge reads", GroupKind::read, 32, LinForm::sym(e, 32),
      LinForm::constant(1), "per step", false, true);
  const auto two = gpusim::ir::window_group(
      "merge reads", GroupKind::read, 32, LinForm::sym(e, 32),
      LinForm::constant(2), "per step", false, true);
  for (i64 ev = 3; ev <= 13; ev += 2) {
    Valuation val(desc.symbols.size(), 0);
    val[static_cast<std::size_t>(e)] = ev;
    EXPECT_EQ(window_bound_at(desc, one, val), static_cast<u64>(ev));
    EXPECT_EQ(window_bound_at(desc, two, val), static_cast<u64>(ev) + 1);
  }
}

TEST(InstantiateAddresses, MatchesManualAffineExpansion) {
  KernelDesc desc = make_desc(32, 0);
  const int e = desc.add_symbol("E", SymRole::parameter, 3, 31, 2, 1);
  const int s = desc.add_symbol("s", SymRole::parameter, 0, 30, 1, 0, e);
  const auto group = gpusim::ir::affine_group(
      "store", GroupKind::write, 32, LinForm::sym(s), LinForm::sym(e),
      "per iteration");
  Valuation val(desc.symbols.size(), 0);
  val[static_cast<std::size_t>(e)] = 5;
  val[static_cast<std::size_t>(s)] = 2;
  const auto addrs = instantiate_addresses(desc, group, val);
  ASSERT_EQ(addrs.size(), 32u);
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(addrs[lane], 2 + 5 * static_cast<i64>(lane));
  }
}

TEST(ExactDegree, CountsDistinctAddressesPerBank) {
  // Two lanes on the same address are a broadcast (degree 1); two lanes on
  // distinct addresses in one bank are a conflict (degree 2).
  EXPECT_EQ(exact_degree(32, 0, {5, 5, 5}), 1u);
  EXPECT_EQ(exact_degree(32, 0, {5, 37, 69}), 3u);
  EXPECT_EQ(exact_degree(32, 0, {5, 37, 6}), 2u);
  // Padding remaps bank(64) from 0 to 2 under pad=1 (physical 66).
  EXPECT_EQ(exact_degree(32, 1, {0, 64}), 1u);
}

}  // namespace
}  // namespace wcm::analyze::symbolic
