// Tests for the unmerge machinery: block masks, pair masks, neutral masks,
// and the value splitter.

#include <gtest/gtest.h>

#include <numeric>

#include "core/unmerge.hpp"
#include "core/warp_construction.hpp"
#include "mergepath/serial_merge.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

sort::SortConfig cfg_small() { return sort::SortConfig{5, 64, 32}; }

TEST(AttackBlockMask, HalfTrueAndWellFormed) {
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto mask = attack_block_mask(cfg, l, r);
  EXPECT_EQ(mask.size(), cfg.tile());
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(mask.begin(), mask.end(), true)),
            cfg.tile() / 2);
}

TEST(AttackBlockMask, PerThreadRunsAreContiguous) {
  // Every thread scans one list then the other, so within each E-rank
  // window the true entries form one contiguous run (possibly empty).
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto mask = attack_block_mask(cfg, l, r);
  for (std::size_t t = 0; t < cfg.b; ++t) {
    const std::size_t base = t * cfg.E;
    u32 transitions = 0;
    for (u32 k = 1; k < cfg.E; ++k) {
      transitions += mask[base + k] != mask[base + k - 1] ? 1u : 0u;
    }
    EXPECT_LE(transitions, 1u) << "thread " << t;
  }
}

TEST(AttackBlockMask, WarpPrefixesAreWarpAligned) {
  // The construction requires every warp's A segment to start at bank 0,
  // i.e. the cumulative from-A count at each warp boundary is a multiple
  // of w.
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto mask = attack_block_mask(cfg, l, r);
  const std::size_t warp_span = static_cast<std::size_t>(cfg.w) * cfg.E;
  std::size_t from_a = 0;
  for (std::size_t rank = 0; rank < mask.size(); ++rank) {
    if (rank % warp_span == 0) {
      EXPECT_EQ(from_a % cfg.w, 0u) << "warp boundary at rank " << rank;
    }
    from_a += mask[rank] ? 1u : 0u;
  }
}

TEST(AttackBlockMask, RejectsAsymmetricLR) {
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  EXPECT_THROW((void)attack_block_mask(cfg, l, l), contract_error);
}

TEST(AttackPairMask, TilesBlockMask) {
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto block = attack_block_mask(cfg, l, r);
  const auto pair = attack_pair_mask(4 * cfg.tile(), cfg, l, r);
  ASSERT_EQ(pair.size(), 4 * cfg.tile());
  for (std::size_t i = 0; i < pair.size(); ++i) {
    EXPECT_EQ(pair[i], block[i % cfg.tile()]);
  }
  EXPECT_THROW((void)attack_pair_mask(cfg.tile() + 1, cfg, l, r),
               contract_error);
}

TEST(NeutralPairMask, FirstHalfTrue) {
  const auto mask = neutral_pair_mask(10);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(mask[i]);
    EXPECT_FALSE(mask[5 + i]);
  }
  EXPECT_THROW((void)neutral_pair_mask(7), contract_error);
}

TEST(Unmerge, SplitsAndRemergesToIdentity) {
  // unmerge followed by a stable merge is the identity on sorted input —
  // the core invariant the generator relies on.
  const auto cfg = cfg_small();
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto mask = attack_block_mask(cfg, l, r);

  std::vector<dmm::word> values(cfg.tile());
  std::iota(values.begin(), values.end(), dmm::word{100});
  const auto split = unmerge(values, mask);
  EXPECT_EQ(split.a.size(), cfg.tile() / 2);
  EXPECT_EQ(split.b.size(), cfg.tile() / 2);
  EXPECT_TRUE(mergepath::is_sorted_run(split.a));
  EXPECT_TRUE(mergepath::is_sorted_run(split.b));
  EXPECT_EQ(mergepath::serial_merge(split.a, split.b), values);
}

TEST(Unmerge, SizeMismatchThrows) {
  std::vector<dmm::word> values(4);
  std::vector<bool> mask(5);
  EXPECT_THROW((void)unmerge(values, mask), contract_error);
}

TEST(AttackMasks, LargeERegimeAlsoWellFormed) {
  const sort::SortConfig cfg{17, 256, 32};
  const auto l = worst_case_warp(cfg.w, cfg.E, WarpSide::L);
  const auto r = worst_case_warp(cfg.w, cfg.E, WarpSide::R);
  const auto mask = attack_block_mask(cfg, l, r);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(mask.begin(), mask.end(), true)),
            cfg.tile() / 2);
}

}  // namespace
}  // namespace wcm::core
