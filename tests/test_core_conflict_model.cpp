// Tests for the closed-form conflict predictions and their agreement with
// the measured simulation.

#include <gtest/gtest.h>

#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

TEST(ConflictModel, EffectiveParallelism) {
  // The paper's headline: parallelism drops from w to ceil(w/E).
  EXPECT_EQ(effective_parallelism(32, 15), 3u);
  EXPECT_EQ(effective_parallelism(32, 17), 2u);
  EXPECT_EQ(effective_parallelism(32, 31), 2u);
  EXPECT_EQ(effective_parallelism(32, 3), 11u);
  EXPECT_EQ(effective_parallelism(16, 7), 3u);
  EXPECT_THROW((void)effective_parallelism(32, 0), contract_error);
}

TEST(ConflictModel, PredictedBeta2) {
  EXPECT_DOUBLE_EQ(predicted_beta2(32, 15), 15.0);  // small E: exactly E
  EXPECT_DOUBLE_EQ(predicted_beta2(32, 17), 288.0 / 17.0);
  EXPECT_GT(predicted_beta2(32, 17), 16.0);  // still nearly E
}

TEST(ConflictModel, PredictedTotals) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 8;  // 3 attacked rounds
  const u64 predicted = predicted_total_conflicts(n, cfg, 3);
  // warps = n / (wE) = 16; aligned(32,5) = 25; 16 * 3 * 25 = 1200.
  EXPECT_EQ(predicted, 1200u);
}

TEST(ConflictModel, MeasuredMergeSerializationMatchesPrediction) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 8;
  const auto input = worst_case_input(n, cfg);
  const auto report =
      sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  // Summed over the 3 attacked rounds, merge-read serialization equals the
  // prediction exactly (for configurations where the evaluator's
  // serialization equals the aligned count, which holds for E=5).
  std::size_t measured = 0;
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    measured += report.rounds[i].kernel.shared_merge_reads.serialization_cycles;
  }
  EXPECT_EQ(measured, predicted_total_conflicts(n, cfg, 3));
}

TEST(ConflictModel, PredictionScalesLinearlyInRoundsAndWarps) {
  const sort::SortConfig cfg{15, 512, 32};
  const std::size_t n1 = cfg.tile() * 2;
  EXPECT_EQ(predicted_total_conflicts(n1 * 2, cfg, 1),
            2 * predicted_total_conflicts(n1, cfg, 1));
  EXPECT_EQ(predicted_total_conflicts(n1, cfg, 4),
            4 * predicted_total_conflicts(n1, cfg, 1));
}

TEST(ConflictModel, RequiresWarpMultiple) {
  const sort::SortConfig cfg{5, 64, 32};
  EXPECT_THROW((void)predicted_total_conflicts(100, cfg, 1), contract_error);
}

}  // namespace
}  // namespace wcm::core
