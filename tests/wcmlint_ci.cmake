# Lint gate for every sort engine (ISSUE acceptance): record shared-memory
# traces from blocksort, pairwise, multiway, bitonic, and radix on random
# and adversarial inputs — small-E (5) and large-E (17) — and require
# `wcm-lint` to report zero diagnostics (races, bounds, uninitialized
# reads, and stride-prediction divergence are all errors).  A seeded-race
# fixture must exit 1 and a corrupt stream must exit 3, proving the gate
# can actually fail.
#
# Run as:  cmake -DWCMGEN=<bin> -DWCMLINT=<bin> -DTRACE_EXPLORER=<bin>
#                -DWORKDIR=<dir> -P wcmlint_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WCMLINT OR NOT DEFINED TRACE_EXPLORER
   OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "pass -DWCMGEN=<bin> -DWCMLINT=<bin> -DTRACE_EXPLORER=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Record one engine's trace and lint it clean (exit 0), unpadded and with
# one word of padding (the cross-check must hold under both layouts).
function(lint_clean name)
  set(trace ${WORKDIR}/${name}.wcmt)
  expect_exit(0 ${WCMGEN} sort ${ARGN} --trace-out ${trace})
  expect_exit(0 ${WCMLINT} ${trace})
  expect_exit(0 ${WCMLINT} --pad 1 ${trace})
  file(REMOVE ${trace})
endfunction()

# Pairwise engine (includes the blocksort base case): adversarial and
# random, small-E and large-E.
lint_clean(pw_small_adv  --E 5 --b 64 --k 2 --input worst-case)
lint_clean(pw_small_rand --E 5 --b 64 --k 2 --input random --seed 7)
lint_clean(pw_large_adv  --E 17 --b 256 --k 1 --input worst-case)
lint_clean(pw_large_rand --E 17 --b 256 --k 1 --input random --seed 7)

# Multiway engine.
lint_clean(mw_small_adv  --E 5 --b 128 --k 2 --algorithm multiway
           --input worst-case)
lint_clean(mw_small_rand --E 5 --b 128 --k 2 --algorithm multiway
           --input random --seed 11)
lint_clean(mw_large_adv  --E 17 --b 256 --k 1 --algorithm multiway
           --input worst-case)

# Bitonic engine.
lint_clean(bt_small_rand --E 5 --b 64 --k 2 --algorithm bitonic
           --input random --seed 3)
lint_clean(bt_small_adv  --E 5 --b 64 --k 2 --algorithm bitonic
           --input worst-case)

# Radix engine (modeled shared-memory atomics must not be flagged; the
# all-equal adversarial input maximizes atomic collisions).
lint_clean(rx_small_rand --E 5 --b 64 --k 1 --algorithm radix
           --input random --seed 5)
lint_clean(rx_small_adv  --E 5 --b 64 --k 1 --algorithm radix
           --input sorted)

# Standalone blocksort capture via trace_explorer (adversarial tile).
execute_process(COMMAND ${TRACE_EXPLORER} 5 64 ${WORKDIR}/blocksort.wcmt
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "trace_explorer failed: ${err}")
endif()
expect_exit(0 ${WCMLINT} ${WORKDIR}/blocksort.wcmt)
file(REMOVE ${WORKDIR}/blocksort.wcmt)

# Seeded race: a store and a load of the same address by different lanes
# with no intervening barrier must be flagged (exit 1).
file(WRITE ${WORKDIR}/seeded_race.wcmt
     "WCMT2 32 64 3\nF 0 64\nW 0:5\nR 1:5\n")
expect_exit(1 ${WCMLINT} ${WORKDIR}/seeded_race.wcmt)
expect_exit(1 ${WCMLINT} --json ${WORKDIR}/seeded_race.wcmt)

# The same pair separated by a barrier is clean.
file(WRITE ${WORKDIR}/barriered.wcmt
     "WCMT2 32 64 4\nF 0 64\nW 0:5\nB\nR 1:5\n")
expect_exit(0 ${WCMLINT} ${WORKDIR}/barriered.wcmt)

# Corrupt / missing streams -> 3 (dominating the racy file's 1).
file(WRITE ${WORKDIR}/corrupt.wcmt "WCMT2 32 64 2\nR 0:1\n")
expect_exit(3 ${WCMLINT} ${WORKDIR}/corrupt.wcmt)
expect_exit(3 ${WCMLINT} ${WORKDIR}/corrupt.wcmt ${WORKDIR}/seeded_race.wcmt)
expect_exit(3 ${WCMLINT} ${WORKDIR}/definitely-missing.wcmt)

# Usage errors -> 2.
expect_exit(2 ${WCMLINT})
expect_exit(2 ${WCMLINT} --frobnicate ${WORKDIR}/seeded_race.wcmt)
expect_exit(2 ${WCMLINT} --pad nope ${WORKDIR}/seeded_race.wcmt)

file(REMOVE ${WORKDIR}/seeded_race.wcmt ${WORKDIR}/barriered.wcmt
     ${WORKDIR}/corrupt.wcmt)
