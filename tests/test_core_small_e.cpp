// Tests for the Theorem 3 (small E) construction: exhaustive TEST_P sweep
// over every valid (w, E) pair asserting the exact E^2 aligned count, plus
// structural checks mirroring the proof.

#include <gtest/gtest.h>

#include "core/numbers.hpp"
#include "core/small_e.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

struct Case {
  u32 w;
  u32 E;
};

class SmallE : public ::testing::TestWithParam<Case> {};

TEST_P(SmallE, AlignsExactlyESquared) {
  const auto [w, E] = GetParam();
  const auto wa = build_small_e(w, E);
  const auto eval = evaluate_warp(wa, 0);
  EXPECT_EQ(eval.aligned, static_cast<std::size_t>(E) * E);
}

TEST_P(SmallE, ListSizesMatchGeneralStrategy) {
  const auto [w, E] = GetParam();
  const auto wa = build_small_e(w, E);
  EXPECT_EQ(wa.total_a(), static_cast<std::size_t>((E + 1) / 2) * w);
  EXPECT_EQ(wa.total_b(), static_cast<std::size_t>((E - 1) / 2) * w);
}

TEST_P(SmallE, EveryStepIsEWaySerialized) {
  // Theorem 3 achieves the absolute worst case: at every merge iteration,
  // E threads read the same bank (beta_2 = E).
  const auto [w, E] = GetParam();
  const auto wa = build_small_e(w, E);
  const auto eval = evaluate_warp(wa, 0);
  ASSERT_EQ(eval.step_degree.size(), E);
  for (u32 j = 0; j < E; ++j) {
    EXPECT_GE(eval.step_degree[j], E) << "step " << j;
  }
  EXPECT_GE(eval.totals.serialization, static_cast<std::size_t>(E) * E);
}

TEST_P(SmallE, ExactlyEAlignedThreads) {
  // The proof aligns E full columns: (E+1)/2 in A, (E-1)/2 in B, each
  // claimed by one thread scanning a single list.
  const auto [w, E] = GetParam();
  const auto wa = build_small_e(w, E);
  u32 full_a = 0, full_b = 0;
  for (const auto& t : wa.threads) {
    if (t.from_a == E) {
      ++full_a;
    }
    if (t.from_b == E) {
      ++full_b;
    }
  }
  EXPECT_GE(full_a, (E + 1) / 2);
  EXPECT_GE(full_b, (E - 1) / 2);
}

TEST_P(SmallE, MirroredWarpAlignsEquallyMany) {
  const auto [w, E] = GetParam();
  const auto wa = build_small_e(w, E).mirrored();
  const auto eval = evaluate_warp(wa, 0);
  EXPECT_EQ(eval.aligned, static_cast<std::size_t>(E) * E);
}

// Lemma 2's three alignment strategies: all reach E^2 aligned, from
// different assignments (distinct members of the worst-case family).
TEST_P(SmallE, AllThreeStrategiesReachESquared) {
  const auto [w, E] = GetParam();
  for (const auto s :
       {AlignmentStrategy::front_to_back, AlignmentStrategy::back_to_front,
        AlignmentStrategy::outside_in}) {
    const auto c = build_small_e_variant(w, E, s);
    const auto eval = evaluate_warp(c.warp, c.window_start);
    EXPECT_EQ(eval.aligned, static_cast<std::size_t>(E) * E)
        << to_string(s);
  }
}

TEST_P(SmallE, StrategiesProduceDistinctAssignments) {
  const auto [w, E] = GetParam();
  const auto ftb =
      build_small_e_variant(w, E, AlignmentStrategy::front_to_back);
  const auto btf =
      build_small_e_variant(w, E, AlignmentStrategy::back_to_front);
  // The mirror walk claims columns in the opposite thread order; the
  // per-thread count vectors differ (unless the greedy is palindromic,
  // which it is not: thread 0 is a full-A scan, thread w-1 is a filler).
  bool differ = false;
  for (u32 t = 0; t < w; ++t) {
    differ = differ ||
             ftb.warp.threads[t].from_a != btf.warp.threads[t].from_a;
  }
  EXPECT_TRUE(differ);
}

TEST_P(SmallE, BackToFrontIsMirrorOfFrontToBack) {
  const auto [w, E] = GetParam();
  const auto ftb =
      build_small_e_variant(w, E, AlignmentStrategy::front_to_back);
  const auto btf =
      build_small_e_variant(w, E, AlignmentStrategy::back_to_front);
  for (u32 t = 0; t < w; ++t) {
    EXPECT_EQ(btf.warp.threads[t].from_a,
              ftb.warp.threads[w - 1 - t].from_a);
    EXPECT_EQ(btf.warp.threads[t].from_b,
              ftb.warp.threads[w - 1 - t].from_b);
  }
  EXPECT_EQ(btf.window_start, w - E);
}

std::vector<Case> all_small_cases() {
  std::vector<Case> cases;
  for (const u32 w : {8u, 16u, 32u, 64u, 128u}) {
    for (u32 E = 3; 2 * E < w; E += 2) {
      if (classify_e(w, E) == ERegime::small) {
        cases.push_back({w, E});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSmallE, SmallE,
                         ::testing::ValuesIn(all_small_cases()),
                         [](const auto& tinfo) {
                           return "w" + std::to_string(tinfo.param.w) + "_E" +
                                  std::to_string(tinfo.param.E);
                         });

TEST(SmallEConstruction, RejectsWrongRegime) {
  EXPECT_THROW((void)build_small_e(32, 17), contract_error);  // large
  EXPECT_THROW((void)build_small_e(32, 8), contract_error);   // pow2
  EXPECT_THROW((void)build_small_e(32, 12), contract_error);  // gcd 4
}

TEST(SmallEConstruction, PaperFigure3LeftShape) {
  // w=16, E=7: thread 0 scans A, thread 1 scans B (proof of Theorem 3).
  const auto wa = build_small_e(16, 7);
  EXPECT_EQ(wa.threads[0].from_a, 7u);
  EXPECT_EQ(wa.threads[1].from_b, 7u);
  EXPECT_EQ(evaluate_warp(wa, 0).aligned, 49u);
}

}  // namespace
}  // namespace wcm::core
