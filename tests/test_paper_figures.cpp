// Golden tests pinning the paper-visible artifacts: the Figure 3 aligned
// thread labels (which the paper depicts explicitly) and regression guards
// on the renderer's stable output.

#include <gtest/gtest.h>

#include <sstream>

#include "core/warp_construction.hpp"
#include "dmm/bank_matrix.hpp"

namespace wcm::core {
namespace {

/// Thread label reading address `addr` of list A (or B) under `wa`, or "."
std::string reader_of(const WarpAssignment& wa, bool in_a, std::size_t addr) {
  std::size_t ca = 0, cb = 0;
  for (u32 t = 0; t < wa.w; ++t) {
    const auto& ta = wa.threads[t];
    if (in_a && addr >= ca && addr < ca + ta.from_a) {
      return std::to_string(t);
    }
    if (!in_a && addr >= cb && addr < cb + ta.from_b) {
      return std::to_string(t);
    }
    ca += ta.from_a;
    cb += ta.from_b;
  }
  return ".";
}

// Figure 3 left (w=16, E=7): the aligned columns of A are read by threads
// 0, 4, 8, 13 and of B by threads 1, 6, 11 — exactly the labels the paper
// prints in banks 0..6.
TEST(PaperFigure3, LeftAlignedThreadLabels) {
  const auto wa = worst_case_warp(16, 7);
  // A: columns at addresses c*16 + bank for banks 0..6.
  const char* a_threads[4] = {"0", "4", "8", "13"};
  for (std::size_t col = 0; col < 4; ++col) {
    for (std::size_t bank = 0; bank < 7; ++bank) {
      EXPECT_EQ(reader_of(wa, true, col * 16 + bank), a_threads[col])
          << "A col " << col << " bank " << bank;
    }
  }
  const char* b_threads[3] = {"1", "6", "11"};
  for (std::size_t col = 0; col < 3; ++col) {
    for (std::size_t bank = 0; bank < 7; ++bank) {
      EXPECT_EQ(reader_of(wa, false, col * 16 + bank), b_threads[col])
          << "B col " << col << " bank " << bank;
    }
  }
}

// Figure 3 right (w=16, E=9): the perfectly aligned columns are the
// (E, 0) / (0, E) threads of sequence T; verify there are r + 1 = 8 of
// them, they sit in banks 7..15 of their columns, and each one's column
// matches its thread id consistently across all nine banks.
TEST(PaperFigure3, RightAlignedColumnsAreSingleThreadScans) {
  const u32 w = 16, E = 9;
  const auto wa = worst_case_warp(w, E);
  u32 full_scans = 0;
  for (const auto& t : wa.threads) {
    full_scans += (t.from_a == E || t.from_b == E) ? 1 : 0;
  }
  EXPECT_EQ(full_scans, 8u);  // r + 1 with r = 7

  std::size_t ca = 0, cb = 0;
  for (u32 t = 0; t < w; ++t) {
    const auto& ta = wa.threads[t];
    if (ta.from_a == E) {
      EXPECT_EQ(ca % w, 7u) << "thread " << t;  // starts at bank r
    }
    if (ta.from_b == E) {
      EXPECT_EQ(cb % w, 7u) << "thread " << t;
    }
    ca += ta.from_a;
    cb += ta.from_b;
  }
}

// Figure 1 (sorted order, w=16, E=12): in sorted order with gcd = 4, the
// aligned chunks are those of threads whose start bank is 0 — every 4th
// thread of each list.
TEST(PaperFigure1, SortedOrderEveryFourthChunkAligned) {
  const u32 w = 16, E = 12;
  const auto wa = sorted_order_warp(w, E);
  const auto eval = evaluate_warp(wa, 0);
  // A has 8 threads (start banks cycle 0,12,8,4,0,...): 2 aligned; B the
  // same: 4 aligned threads x 12 elements.
  EXPECT_EQ(eval.aligned, 4u * 12u);
}

TEST(RenderWarp, StableOutputForFigure3Left) {
  const auto wa = worst_case_warp(16, 7);
  const std::string s = render_warp(wa);
  // The first aligned A column: banks 0..6 all read by thread 0 in column
  // 0, thread 4 in column 1 (regression guard on the exact rendering).
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);  // "A (64 elements):"
  EXPECT_EQ(line, "A (64 elements):");
  std::getline(is, line);
  EXPECT_EQ(line.substr(0, 13), " 0: 0 4 8  13");
}

}  // namespace
}  // namespace wcm::core
