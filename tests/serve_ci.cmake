# Serve gate (ISSUE acceptance): the wcmd daemon end to end, driven by
# wcm-loadgen over real Unix-domain sockets —
#
#   1. determinism: identical requests answer byte-identically across a
#      cold cache, a WCMS-warmed restart (which must compute *nothing*),
#      an in-memory daemon, and different WCM_THREADS settings;
#   2. the malformed-request corpus gets typed error responses and the
#      daemon keeps serving, then drains cleanly (exit 0);
#   3. a seeded closed-loop mix under WCM_THREADS=2 meets the counter
#      invariants (every request counted, cache hits, bounded jobs) and
#      emits the SLO report;
#   4. SIGTERM under load drains with the zero-drop invariant (exit 0)
#      while the still-queued client requests are dropped, not hung;
#   5. kill/resume: WCM_CHAOS_KILL_AFTER murders the daemon mid-campaign;
#      restarting and resubmitting the identical request replays the
#      journaled prefix (serve.campaign.replayed) and converges to the
#      clean reference bytes;
#   6. an injected dispatch fault answers `internal` exactly once and is
#      never cached — the identical resend computes fresh and succeeds.
#
# Run as:  cmake -DWCMD=<bin> -DLOADGEN=<bin> -DWORKDIR=<dir>
#                -P serve_ci.cmake

if(NOT DEFINED WCMD OR NOT DEFINED LOADGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMD=<bin> -DLOADGEN=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
# Abstract-namespace sockets are machine-global; a random run id keeps
# concurrent build trees from colliding.
string(RANDOM LENGTH 8 ALPHABET 0123456789abcdef run_id)

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

function(require_match file pattern why)
  file(READ ${file} contents)
  if(NOT contents MATCHES "${pattern}")
    message(FATAL_ERROR "${why}\npattern: ${pattern}\nin ${file}:\n${contents}")
  endif()
endfunction()

# ---- 1. determinism across cache states, restarts, and thread counts ------

set(script ${WORKDIR}/serve_requests.txt)
file(WRITE ${script} [[{"op":"generate","id":"a","params":{"E":5,"b":64,"k":2}}
{"op":"generate","id":"b","params":{"E":7,"b":64,"k":1,"strategy":"outside-in"}}
{"op":"generate","id":"c","params":{"E":9,"b":128,"k":2,"layout":"xor"}}
{"op":"prove","id":"d","params":{"engine":"pairwise","w":32,"b":64}}
{"op":"prove","id":"e","params":{"engine":"shearsort","w":32,"b":64}}
{"op":"certify","id":"f","params":{"engine":"shearsort","w":32,"bs":[64],"pads":[0,1]}}
]])
set(data1 ${WORKDIR}/serve_data1)
file(REMOVE_RECURSE ${data1})

expect_exit(0 ${CMAKE_COMMAND} -E env WCM_THREADS=1
            ${LOADGEN} --socket @wcm-ci-${run_id}-cold --spawn ${WCMD}
            --data-dir ${data1} --script ${script}
            --out ${WORKDIR}/serve_cold.txt --drain)

# Restarted daemon, WCMS-warmed, different worker count: same bytes.
expect_exit(0 ${CMAKE_COMMAND} -E env WCM_THREADS=4
            ${LOADGEN} --socket @wcm-ci-${run_id}-warm --spawn ${WCMD}
            --data-dir ${data1} --script ${script}
            --out ${WORKDIR}/serve_warm.txt --drain)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/serve_cold.txt ${WORKDIR}/serve_warm.txt)

# A second warmed restart with telemetry on proves the answers came from
# the WCMS cache: zero scheduler jobs ran, and the response prefix is
# byte-identical to the cold run.
set(script_metrics ${WORKDIR}/serve_requests_metrics.txt)
file(READ ${script} script_body)
file(WRITE ${script_metrics} "${script_body}{\"op\":\"metrics\",\"id\":\"m\"}\n")
expect_exit(0 ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1
            ${LOADGEN} --socket @wcm-ci-${run_id}-warm2 --spawn ${WCMD}
            --data-dir ${data1} --script ${script_metrics}
            --out ${WORKDIR}/serve_warm2.txt --drain)
file(READ ${WORKDIR}/serve_cold.txt cold)
file(READ ${WORKDIR}/serve_warm2.txt warm2)
string(FIND "${warm2}" "${cold}" prefix_at)
if(NOT prefix_at EQUAL 0)
  message(FATAL_ERROR "warmed restart answers differ from the cold run:\n"
          "cold:\n${cold}\nwarm:\n${warm2}")
endif()
if(warm2 MATCHES "\"name\":\"serve.jobs\"")
  message(FATAL_ERROR
    "warmed restart ran scheduler jobs instead of serving from WCMS:\n"
    "${warm2}")
endif()
require_match(${WORKDIR}/serve_warm2.txt "\"name\":\"serve.cache.hit\""
              "warmed restart reported no cache hits")

# A fully in-memory daemon recomputes everything — and still matches.
expect_exit(0 ${CMAKE_COMMAND} -E env WCM_THREADS=4
            ${LOADGEN} --socket @wcm-ci-${run_id}-mem --spawn ${WCMD}
            --script ${script} --out ${WORKDIR}/serve_mem.txt --drain)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/serve_cold.txt ${WORKDIR}/serve_mem.txt)

# ---- 2. malformed corpus: typed errors, service continues, clean drain ----

set(corpus ${WORKDIR}/serve_corpus.txt)
string(REPEAT "x" 70000 oversized)
file(WRITE ${corpus} "this is not json
{\"id\":\"x\"}
{\"op\":\"health\",\"op\":\"metrics\"}
{\"op\":\"frobnicate\",\"id\":\"u\"}
{\"op\":\"generate\",\"params\":{\"bogus\":1}}
${oversized}
{\"op\":\"health\",\"id\":\"fin\"}
")
# Six insults answer errors, so the script run reports exit 1 — but every
# error must be *typed*, the final health must succeed, and the daemon
# must still drain with exit 0 (checked through loadgen's daemon reaping).
execute_process(
  COMMAND ${LOADGEN} --socket @wcm-ci-${run_id}-corpus --spawn ${WCMD}
          --script ${corpus} --out ${WORKDIR}/serve_corpus_out.txt --drain
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 1)
  message(FATAL_ERROR "corpus run: expected exit 1 (typed errors), got ${rv}\n"
          "stderr: ${stderr}")
endif()
if(NOT stderr MATCHES "daemon exited 0")
  message(FATAL_ERROR "daemon did not drain cleanly after the corpus:\n"
          "${stderr}")
endif()
file(STRINGS ${WORKDIR}/serve_corpus_out.txt corpus_lines)
list(LENGTH corpus_lines n)
if(NOT n EQUAL 7)
  message(FATAL_ERROR "corpus: expected 7 responses, got ${n}")
endif()
foreach(pair "0;parse" "1;parse" "2;parse" "3;unknown_op" "4;parse"
        "5;too_large")
  list(GET pair 0 idx)
  list(GET pair 1 type)
  list(GET corpus_lines ${idx} line)
  if(NOT line MATCHES "\"type\":\"${type}\"")
    message(FATAL_ERROR
      "corpus line ${idx}: expected error type '${type}', got: ${line}")
  endif()
endforeach()
list(GET corpus_lines 6 last)
if(NOT last MATCHES "\"id\":\"fin\",\"ok\":true")
  message(FATAL_ERROR "daemon stopped serving after the corpus: ${last}")
endif()

# ---- 3. seeded mix: counter invariants + the SLO report -------------------

file(REMOVE_RECURSE ${WORKDIR}/serve_data_mix)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1 WCM_THREADS=2
          ${LOADGEN} --socket @wcm-ci-${run_id}-mix --spawn ${WCMD}
          --data-dir ${WORKDIR}/serve_data_mix
          --requests 240 --conns 4 --seed 7 --drain
          --out ${WORKDIR}/serve_mix.json
          --metrics-out ${WORKDIR}/serve_mix_metrics.json
          --require-counter serve.requests:240,serve.responses:240,serve.cache.hit:100,serve.jobs:1,serve.accepted:4
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "seeded mix failed (exit ${rv})\nstderr: ${stderr}")
endif()
foreach(key "\"p50\"" "\"p99\"" "\"qps\"" "\"hit_rate\"" "\"dropped\":0"
        "\"errors\":0" "\"requests\":240" "\"seed\":7")
  require_match(${WORKDIR}/serve_mix.json "${key}"
                "SLO report is missing ${key}")
endforeach()

# ---- 4. graceful SIGTERM under load: zero-drop drain, clients released ----

execute_process(
  COMMAND ${LOADGEN} --socket @wcm-ci-${run_id}-term --spawn ${WCMD}
          --requests 4000 --conns 4 --seed 11 --term-after 60
          --expect-daemon-exit 0 --out ${WORKDIR}/serve_term.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "SIGTERM drain violated the zero-drop invariant (exit ${rv})\n"
    "stderr: ${stderr}")
endif()
# The drain must have cut the run short (clients see EOF, not a hang).
require_match(${WORKDIR}/serve_term.json "\"dropped\":[1-9]"
              "SIGTERM at 60 responses should drop the queued remainder")

# ---- 5. kill/resume: a murdered campaign resumes through its journal -----

set(camp ${WORKDIR}/serve_campaign.txt)
file(WRITE ${camp} [[{"op":"campaign","id":"camp","params":{"spec":{"name":"serve-ci","device":"m4000","seed":29,"grid":[{"engine":"pairwise","E":5,"b":64,"input":["random","worst-case"],"k":[1,2]}]}}}
]])
set(camp_metrics ${WORKDIR}/serve_campaign_metrics.txt)
file(READ ${camp} camp_body)
file(WRITE ${camp_metrics} "${camp_body}{\"op\":\"metrics\",\"id\":\"m\"}\n")

# Clean reference bytes from an undisturbed daemon.
file(REMOVE_RECURSE ${WORKDIR}/serve_data_cref)
expect_exit(0 ${LOADGEN} --socket @wcm-ci-${run_id}-cref --spawn ${WCMD}
            --data-dir ${WORKDIR}/serve_data_cref --script ${camp}
            --out ${WORKDIR}/serve_camp_ref.txt --drain)

# The chaos hook kills the daemon after the second durable journal append,
# mid-campaign: the client sees EOF (loadgen exit 3, an io error).
set(data5 ${WORKDIR}/serve_data_kill)
file(REMOVE_RECURSE ${data5})
expect_exit(3 ${CMAKE_COMMAND} -E env WCM_CHAOS_KILL_AFTER=2
            ${LOADGEN} --socket @wcm-ci-${run_id}-kill --spawn ${WCMD}
            --data-dir ${data5} --script ${camp})

# Restart on the same data dir and resubmit the identical request: the two
# journaled cells replay, the rest compute, and the response is
# byte-identical to the clean reference.
expect_exit(0 ${CMAKE_COMMAND} -E env WCM_TELEMETRY=1
            ${LOADGEN} --socket @wcm-ci-${run_id}-resume --spawn ${WCMD}
            --data-dir ${data5} --script ${camp_metrics}
            --out ${WORKDIR}/serve_camp_resumed.txt --drain)
file(READ ${WORKDIR}/serve_camp_ref.txt camp_ref)
file(READ ${WORKDIR}/serve_camp_resumed.txt camp_resumed)
string(FIND "${camp_resumed}" "${camp_ref}" camp_prefix_at)
if(NOT camp_prefix_at EQUAL 0)
  message(FATAL_ERROR
    "resumed campaign bytes differ from the clean reference:\n"
    "ref:\n${camp_ref}\nresumed:\n${camp_resumed}")
endif()
require_match(${WORKDIR}/serve_camp_resumed.txt
              "\"name\":\"serve.campaign.replayed\",\"value\":2"
              "resume did not replay the 2 journaled cells")

# ---- 6. injected dispatch fault: typed internal error, never cached ------

set(twice ${WORKDIR}/serve_twice.txt)
file(WRITE ${twice} [[{"op":"generate","id":"g1","params":{"E":5,"b":64,"k":1}}
{"op":"generate","id":"g2","params":{"E":5,"b":64,"k":1}}
]])
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=serve.dispatch=0:1
          ${LOADGEN} --socket @wcm-ci-${run_id}-fp --spawn ${WCMD}
          --script ${twice} --out ${WORKDIR}/serve_fp.txt --drain
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 1)
  message(FATAL_ERROR
    "dispatch-fault run: expected exit 1 (one typed error), got ${rv}\n"
    "stderr: ${stderr}")
endif()
if(NOT stderr MATCHES "daemon exited 0")
  message(FATAL_ERROR "daemon did not survive the dispatch fault:\n${stderr}")
endif()
file(STRINGS ${WORKDIR}/serve_fp.txt fp_lines)
list(GET fp_lines 0 fp_first)
list(GET fp_lines 1 fp_second)
if(NOT fp_first MATCHES "\"type\":\"internal\"")
  message(FATAL_ERROR "injected fault was not answered 'internal': ${fp_first}")
endif()
if(NOT fp_second MATCHES "\"id\":\"g2\",\"ok\":true")
  message(FATAL_ERROR
    "identical resend after the fault did not recover (the error must "
    "never be cached): ${fp_second}")
endif()

file(REMOVE_RECURSE ${WORKDIR})
