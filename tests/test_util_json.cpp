// Strict JSON reader tests: accepted grammar, typed accessors, and the
// deliberate rejections (duplicate keys, deep nesting, trailing garbage,
// \uXXXX escapes) with line:column positions in the error text.

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace wcm::json {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const auto doc = parse(R"({
    "s": "text with \"escapes\" and \\ and \n",
    "i": 42,
    "f": -1.5e2,
    "t": true,
    "nul": null,
    "arr": [1, 2, 3],
    "obj": {"nested": []}
  })");
  const auto& obj = doc.as_object();
  EXPECT_EQ(obj.at("s").as_string(), "text with \"escapes\" and \\ and \n");
  EXPECT_EQ(obj.at("i").as_u64(), 42u);
  EXPECT_EQ(obj.at("f").as_double(), -150.0);
  EXPECT_TRUE(obj.at("t").as_bool());
  EXPECT_TRUE(obj.at("nul").is_null());
  ASSERT_EQ(obj.at("arr").as_array().size(), 3u);
  EXPECT_EQ(obj.at("arr").as_array()[2].as_u64(), 3u);
  EXPECT_TRUE(obj.at("obj").as_object().at("nested").as_array().empty());
}

TEST(Json, AccessorsNameTheActualKind) {
  const auto doc = parse(R"([1])");
  try {
    (void)doc.as_object();
    FAIL() << "as_object on an array did not throw";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
  }
}

TEST(Json, U64RangeChecks) {
  EXPECT_EQ(parse("7").as_u64(7), 7u);
  EXPECT_THROW((void)parse("8").as_u64(7), parse_error);
  EXPECT_THROW((void)parse("-3").as_u64(), parse_error);
  EXPECT_THROW((void)parse("2.5").as_u64(), parse_error);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse(""), parse_error);
  EXPECT_THROW((void)parse("{"), parse_error);
  EXPECT_THROW((void)parse("[1,]"), parse_error);
  EXPECT_THROW((void)parse(R"({"a" 1})"), parse_error);
  EXPECT_THROW((void)parse("tru"), parse_error);
  EXPECT_THROW((void)parse("\"unterminated"), parse_error);
  EXPECT_THROW((void)parse("{} trailing"), parse_error);
  EXPECT_THROW((void)parse(R"({"a": 1, "a": 2})"), parse_error);
  EXPECT_THROW((void)parse("1.e5"), parse_error);
  EXPECT_THROW((void)parse("\"\\u0041\""), parse_error);  // \uXXXX by design
  EXPECT_THROW((void)parse("\"bad \x01 control\""), parse_error);
}

TEST(Json, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) {
    deep += '[';
  }
  EXPECT_THROW((void)parse(deep), parse_error);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    (void)parse("{\n  \"a\": nope\n}");
    FAIL() << "parse did not throw";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace wcm::json
