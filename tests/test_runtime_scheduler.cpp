// Scheduler contract tests: dependency ordering, deterministic outcome
// layout across thread counts, cancellation mid-queue, deadline timeouts
// surfacing as wcm::simulation_error, fail-fast, and failpoint-injected
// worker faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {
namespace {

using namespace std::chrono_literals;

JobOptions deps(std::vector<JobId> ids) {
  JobOptions opts;
  opts.deps = std::move(ids);
  return opts;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPreservesFifoOrder) {
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&order, i] { order.push_back(i); });
    }
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, RejectsZeroWorkersAndEmptyTasks) {
  EXPECT_THROW(ThreadPool pool(0), contract_error);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), contract_error);
}

TEST(Scheduler, DependenciesRunBeforeDependents) {
  JobGraph graph;
  std::mutex mu;
  std::vector<JobId> order;
  const auto record = [&](JobId id) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const JobId a = graph.add([&](JobContext&) { record(0); });
  const JobId b = graph.add([&](JobContext&) { record(1); }, deps({a}));
  const JobId c = graph.add([&](JobContext&) { record(2); }, deps({a}));
  const JobId d = graph.add([&](JobContext&) { record(3); }, deps({b, c}));

  RunOptions opts;
  opts.threads = 4;
  const auto report = run(graph, opts);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](JobId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(d));
  EXPECT_LT(pos(c), pos(d));
}

TEST(Scheduler, ForwardDependenciesAreRejected) {
  JobGraph graph;
  const JobId a = graph.add([](JobContext&) {});
  EXPECT_THROW(graph.add([](JobContext&) {}, deps({a + 1})), contract_error);
  EXPECT_THROW(graph.add(nullptr), contract_error);
}

TEST(Scheduler, OutcomeLayoutIsIndependentOfThreadCount) {
  const auto build = [] {
    JobGraph graph;
    for (int i = 0; i < 12; ++i) {
      if (i == 5) {
        graph.add([](JobContext&) {
          throw config_error("job five always fails");
        });
      } else {
        graph.add([](JobContext&) {});
      }
    }
    return graph;
  };
  for (const u32 threads : {1u, 4u}) {
    const auto graph = build();
    RunOptions opts;
    opts.threads = threads;
    const auto report = run(graph, opts);
    ASSERT_EQ(report.outcomes.size(), 12u) << threads << " threads";
    for (std::size_t i = 0; i < 12; ++i) {
      const auto expected =
          i == 5 ? JobState::failed : JobState::done;
      EXPECT_EQ(report.outcomes[i].state, expected)
          << "job " << i << " with " << threads << " threads";
    }
    EXPECT_EQ(report.outcomes[5].code, errc::invalid_config);
    EXPECT_THROW(report.rethrow_first_error(), config_error);
  }
}

TEST(Scheduler, CancellationSkipsQueuedJobs) {
  JobGraph graph;
  CancelSource cancel;
  std::atomic<int> ran{0};
  graph.add([&](JobContext&) {
    ran.fetch_add(1);
    cancel.cancel();
  });
  for (int i = 0; i < 8; ++i) {
    graph.add([&](JobContext&) { ran.fetch_add(1); });
  }

  RunOptions opts;
  opts.threads = 1;  // deterministic: job 0 runs first, cancels the rest
  opts.cancel = &cancel;
  const auto report = run(graph, opts);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(report.count(JobState::done), 1u);
  EXPECT_EQ(report.count(JobState::skipped_cancelled), 8u);
  EXPECT_FALSE(report.ok());
}

TEST(Scheduler, RunningJobsObserveCancellation) {
  JobGraph graph;
  CancelSource cancel;
  graph.add([&](JobContext& ctx) {
    cancel.cancel();
    EXPECT_TRUE(ctx.cancelled());
    ctx.check_cancelled();  // throws simulation_error -> the job fails
  });
  RunOptions opts;
  opts.threads = 1;
  opts.cancel = &cancel;
  const auto report = run(graph, opts);
  // The job observed cancellation and threw from check_cancelled().
  EXPECT_EQ(report.outcomes[0].state, JobState::failed);
  EXPECT_EQ(report.outcomes[0].code, errc::simulation_invariant);
}

TEST(Scheduler, DeadlineOverrunFailsAsSimulationError) {
  JobGraph graph;
  JobOptions opts_slow;
  opts_slow.timeout = 1ms;
  graph.add([](JobContext&) { std::this_thread::sleep_for(20ms); },
            opts_slow);
  JobOptions opts_fast;
  opts_fast.timeout = 10s;
  graph.add([](JobContext&) {}, opts_fast);

  RunOptions opts;
  opts.threads = 2;
  const auto report = run(graph, opts);
  EXPECT_EQ(report.outcomes[0].state, JobState::failed);
  EXPECT_EQ(report.outcomes[0].code, errc::simulation_invariant);
  EXPECT_THROW(report.rethrow_first_error(), simulation_error);
  EXPECT_EQ(report.outcomes[1].state, JobState::done);
}

TEST(Scheduler, MidJobDeadlineCheckThrows) {
  JobGraph graph;
  JobOptions jopts;
  jopts.timeout = 1ms;
  graph.add(
      [](JobContext& ctx) {
        std::this_thread::sleep_for(20ms);
        EXPECT_TRUE(ctx.deadline_exceeded());
        ctx.check_deadline();  // throws simulation_error
        FAIL() << "check_deadline did not throw";
      },
      jopts);
  RunOptions opts;
  opts.threads = 1;
  const auto report = run(graph, opts);
  EXPECT_EQ(report.outcomes[0].state, JobState::failed);
}

TEST(Scheduler, DependentsOfFailuresAreSkipped) {
  JobGraph graph;
  const JobId a = graph.add([](JobContext&) {
    throw simulation_error("dependency fails");
  });
  const JobId b = graph.add([](JobContext&) {}, deps({a}));
  const JobId c = graph.add([](JobContext&) {}, deps({b}));
  RunOptions opts;
  opts.threads = 2;
  const auto report = run(graph, opts);
  EXPECT_EQ(report.outcomes[a].state, JobState::failed);
  EXPECT_EQ(report.outcomes[b].state, JobState::skipped_dep_failed);
  EXPECT_EQ(report.outcomes[c].state, JobState::skipped_dep_failed);
}

TEST(Scheduler, FailFastCancelsTheRemainingQueue) {
  JobGraph graph;
  std::atomic<int> ran{0};
  graph.add([](JobContext&) { throw io_error("first job fails"); });
  for (int i = 0; i < 8; ++i) {
    graph.add([&](JobContext&) { ran.fetch_add(1); });
  }
  RunOptions opts;
  opts.threads = 1;
  opts.fail_fast = true;
  const auto report = run(graph, opts);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(report.count(JobState::failed), 1u);
  EXPECT_EQ(report.count(JobState::skipped_cancelled), 8u);
  EXPECT_THROW(report.rethrow_first_error(), io_error);
}

TEST(Scheduler, FailpointInjectsWorkerFault) {
  failpoint::scoped_arm fp("runtime.worker.job", /*skip=*/1, /*times=*/1);
  JobGraph graph;
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    graph.add([&](JobContext&) { ran.fetch_add(1); });
  }
  RunOptions opts;
  opts.threads = 1;
  const auto report = run(graph, opts);
  EXPECT_EQ(report.outcomes[0].state, JobState::done);
  EXPECT_EQ(report.outcomes[1].state, JobState::failed);
  EXPECT_EQ(report.outcomes[1].code, errc::simulation_invariant);
  EXPECT_NE(report.outcomes[1].message.find("injected worker fault"),
            std::string::npos);
  EXPECT_EQ(report.outcomes[2].state, JobState::done);
  EXPECT_EQ(ran.load(), 2);
}

TEST(Scheduler, EmptyGraphRunsToEmptyReport) {
  const JobGraph graph;
  RunOptions opts;
  opts.threads = 2;
  const auto report = run(graph, opts);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.outcomes.empty());
  report.rethrow_first_error();  // no-op
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  const auto results = parallel_map(64, 4, [](std::size_t i) {
    return i * i;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelMap, RethrowsTheLowestIndexFailure) {
  try {
    (void)parallel_map(10, 1, [](std::size_t i) -> int {
      if (i >= 4) {
        throw config_error("boom at " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "parallel_map did not throw";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at 4"), std::string::npos);
  }
}

TEST(RecommendedWorkers, HonorsRequestAndDeviceCeiling) {
  const auto dev = gpusim::quadro_m4000();
  EXPECT_EQ(recommended_workers(3, dev, 512, 0), 3u);
  const u32 auto_sized = recommended_workers(0, dev, 512, 0);
  EXPECT_GE(auto_sized, 1u);
  const u32 host = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(auto_sized, host);
  // A launch that cannot fit the device at all falls back to one worker.
  EXPECT_EQ(recommended_workers(0, dev, 512, ~std::size_t{0} / 2), 1u);
}

TEST(ThreadsFromEnv, ParsesStrictly) {
  unsetenv("WCM_THREADS");
  EXPECT_EQ(threads_from_env(7), 7u);
  setenv("WCM_THREADS", "3", 1);
  EXPECT_EQ(threads_from_env(7), 3u);
  setenv("WCM_THREADS", "0", 1);
  EXPECT_EQ(threads_from_env(7), 7u);  // 0 = auto
  setenv("WCM_THREADS", "nope", 1);
  EXPECT_THROW((void)threads_from_env(7), parse_error);
  setenv("WCM_THREADS", "5000", 1);
  EXPECT_THROW((void)threads_from_env(7), parse_error);
  unsetenv("WCM_THREADS");
}

}  // namespace
}  // namespace wcm::runtime
