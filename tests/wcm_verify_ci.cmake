# Static-verification gate (ISSUE acceptance): `wcmgen verify` must prove
# barrier-uniformity, def-use cleanliness, and parametric-w conflict
# bounds for all eight engines across warp widths, the static bounds must
# bracket the DMM-replayed traces on the differential grid, the sealed
# JSON report must be byte-deterministic and carry the non-coprime
# gcd(w,E) breakdown rows (where the Theorem 3/9 closed forms stop being
# worst-case), and an injected mid-pipeline pass fault must exit nonzero
# without emitting a partial report.
#
# Run as:  cmake -DWCMGEN=<bin> -DWORKDIR=<dir> -P wcm_verify_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(run_verify out_rv out_json)
  execute_process(COMMAND ${WCMGEN} verify --json ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rv GREATER 1)
    message(FATAL_ERROR
      "verify run crashed (exit ${rv}) for: ${ARGN}\nstderr: ${err}")
  endif()
  set(${out_rv} ${rv} PARENT_SCOPE)
  set(${out_json} "${out}" PARENT_SCOPE)
endfunction()

# --- the headline proof: all 8 engines, w in {2, 4, 32}, E up to 256 ------
run_verify(rv json --engine all --ws 2,4,32 --E-min 1 --E-max 256)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "verify --engine all: expected exit 0, got ${rv}\n${json}")
endif()
if(NOT json MATCHES "\"proved\":1")
  message(FATAL_ERROR "verify exit 0 without proved:1\n${json}")
endif()
if(NOT json MATCHES "\"differential_ok\":1")
  message(FATAL_ERROR "verify exit 0 without differential_ok:1\n${json}")
endif()
# Every engine shape verdict must be present and individually ok.
foreach(engine blocksort block-merge pairwise multiway bitonic radix scan
        shearsort)
  if(NOT json MATCHES "\"engine\":\"${engine}\",\"w\":32")
    message(FATAL_ERROR "verify report is missing engine ${engine} at w=32")
  endif()
endforeach()
if(json MATCHES "\"ok\":0")
  message(FATAL_ERROR "verify report contains a failing verdict\n${json}")
endif()
# The differential grid must actually have run (static bounds bracketing
# DMM replay on the concrete cells).
if(NOT json MATCHES "\"differential\":\\[{")
  message(FATAL_ERROR "verify report has an empty differential grid\n${json}")
endif()
# The breakdown sweep must pinpoint a non-coprime (w, E) where the coprime
# closed form overpromises: gcd(w,E) = E at E = 4, w = 32 is the canonical
# power-of-two regime row.
if(NOT json MATCHES "\"w\":32,\"E\":4,\"gcd\":4,\"regime\":\"power_of_two\"")
  message(FATAL_ERROR "verify report lacks the w=32 E=4 breakdown row\n${json}")
endif()
if(NOT json MATCHES "\"breaks_down\":1")
  message(FATAL_ERROR
    "breakdown sweep found no (w, E) where Theorem 3/9 stops being "
    "worst-case\n${json}")
endif()
# The documented pinpoint (docs/LINT.md): at w = 32, E = 6 the coprime
# closed form promises E^2 = 36 but the gcd-capped construction tops out
# at 12 — the shared-factor regime is where the theorems stop being
# worst-case.
if(NOT json MATCHES
   "{\"w\":32,\"E\":6,\"gcd\":2,\"regime\":\"shared_factor\",\"promised\":36,\"attained\":12,\"step_bound\":6,\"breaks_down\":1}")
  message(FATAL_ERROR
    "verify report lacks the documented w=32 E=6 pinpoint row\n${json}")
endif()

# --- determinism: the sealed JSON is reproducible byte for byte ----------
run_verify(rv2 json2 --engine all --ws 2,4,32 --E-min 1 --E-max 256)
if(NOT json STREQUAL json2)
  message(FATAL_ERROR "verify JSON is not deterministic across runs")
endif()
if(NOT json MATCHES "\"digest\":\"fnv1a:")
  message(FATAL_ERROR "verify JSON carries no digest seal\n${json}")
endif()

# --- usage contract ------------------------------------------------------
execute_process(COMMAND ${WCMGEN} verify --engine quicksort
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(NOT rv EQUAL 2)
  message(FATAL_ERROR
    "verify with an unknown engine: expected exit 2, got ${rv}")
endif()
execute_process(COMMAND ${WCMGEN} verify --ws 0
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(NOT rv EQUAL 2)
  message(FATAL_ERROR "verify --ws 0: expected exit 2, got ${rv}")
endif()

# --- fault injection: a pass fault must not leave a partial report -------
execute_process(COMMAND ${CMAKE_COMMAND} -E env
                        WCM_FAILPOINTS=analyze.verify.pass
                        ${WCMGEN} verify --engine pairwise --ws 2 --json
                RESULT_VARIABLE rv
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rv EQUAL 0 OR rv EQUAL 1)
  message(FATAL_ERROR
    "injected pass fault must fail the run (exit >= 2), got ${rv}")
endif()
if(out MATCHES "wcm_verify")
  message(FATAL_ERROR
    "injected pass fault leaked a partial verify report:\n${out}")
endif()
if(NOT err MATCHES "injected verification pass failure")
  message(FATAL_ERROR
    "fault exit does not surface the injected failpoint message:\n${err}")
endif()
