// Tests for the simulated bitonic sort: correctness, the comparator-count
// closed form, and — the property that makes it the paper's foil —
// obliviousness: identical access statistics for every input.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/bitonic.hpp"
#include "sort/cpu_reference.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() {
  SortConfig cfg;
  cfg.E = 2;
  cfg.b = 64;
  cfg.w = 32;
  return cfg;
}

TEST(BitonicSort, SortsRandomInputs) {
  const auto cfg = tiny();
  for (const std::size_t n : {128u, 256u, 1024u, 4096u}) {
    const auto input = workload::random_permutation(n, n);
    std::vector<word> out;
    const auto report =
        bitonic_sort(input, cfg, gpusim::quadro_m4000(), &out);
    EXPECT_EQ(out, std_sort(input)) << "n=" << n;
    EXPECT_EQ(report.n, n);
  }
}

TEST(BitonicSort, SortsAdversarialAndStructuredInputs) {
  const auto cfg = tiny();
  const std::size_t n = 2048;
  for (const auto kind :
       {workload::InputKind::sorted, workload::InputKind::reversed,
        workload::InputKind::nearly_sorted}) {
    const auto input = workload::make_input(kind, n, cfg, 3);
    std::vector<word> out;
    (void)bitonic_sort(input, cfg, gpusim::quadro_m4000(), &out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(BitonicSort, DuplicatesSupported) {
  const auto cfg = tiny();
  auto input = workload::random_permutation(512, 9);
  for (auto& x : input) {
    x /= 7;
  }
  std::vector<word> out;
  (void)bitonic_sort(input, cfg, gpusim::quadro_m4000(), &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(BitonicSort, SizeContracts) {
  const auto cfg = tiny();
  const auto dev = gpusim::quadro_m4000();
  EXPECT_THROW((void)bitonic_sort(workload::sorted_input(64), cfg, dev),
               contract_error);  // < 2b
  EXPECT_THROW((void)bitonic_sort(workload::sorted_input(384), cfg, dev),
               contract_error);  // not a power of two
}

TEST(BitonicSort, ComparatorClosedForm) {
  EXPECT_EQ(bitonic_comparator_count(1), 0u);
  EXPECT_EQ(bitonic_comparator_count(2), 1u);
  EXPECT_EQ(bitonic_comparator_count(4), 2u * 3u);
  // n/2 * m(m+1)/2 with m = log2 n.
  EXPECT_EQ(bitonic_comparator_count(1024), 512u * 55u);
}

// The headline property: bitonic sort is oblivious — its access pattern
// (and therefore every conflict statistic) is the same for every input of
// a given size, including the merge sort's worst-case input.
TEST(BitonicSort, ObliviousAccessPattern) {
  SortConfig merge_cfg{5, 64, 32};  // worst-case generator needs bE | n
  const std::size_t n = 4096;      // not a bE multiple issue: use random +
                                   // reversed + nearly-sorted inputs
  const auto cfg = tiny();
  const auto dev = gpusim::quadro_m4000();

  const auto r1 =
      bitonic_sort(workload::random_permutation(n, 1), cfg, dev);
  const auto r2 = bitonic_sort(workload::reversed_input(n), cfg, dev);
  const auto r3 =
      bitonic_sort(workload::nearly_sorted_input(n, 50, 2), cfg, dev);

  for (const auto* other : {&r2, &r3}) {
    EXPECT_EQ(r1.totals.shared.serialization_cycles,
              other->totals.shared.serialization_cycles);
    EXPECT_EQ(r1.totals.shared.replays, other->totals.shared.replays);
    EXPECT_EQ(r1.totals.shared.requests, other->totals.shared.requests);
    EXPECT_EQ(r1.totals.global_transactions,
              other->totals.global_transactions);
    EXPECT_DOUBLE_EQ(r1.seconds(), other->seconds());
  }
  (void)merge_cfg;
}

TEST(BitonicSort, HasStructuralConflictsUnpadded) {
  // Strides >= w put both comparator operands in the same bank: unpadded
  // bitonic has deterministic conflicts even on sorted input.
  const auto cfg = tiny();
  const auto report =
      bitonic_sort(workload::sorted_input(2048), cfg, gpusim::quadro_m4000());
  EXPECT_GT(report.totals.shared.replays, 0u);
}

TEST(BitonicSort, PaddingReducesItsConflicts) {
  auto cfg = tiny();
  const auto unpadded =
      bitonic_sort(workload::sorted_input(2048), cfg, gpusim::quadro_m4000());
  cfg.padding = 1;
  const auto padded =
      bitonic_sort(workload::sorted_input(2048), cfg, gpusim::quadro_m4000());
  EXPECT_LT(padded.totals.shared.replays, unpadded.totals.shared.replays);
}

TEST(BitonicSort, RoundStructure) {
  const auto cfg = tiny();
  const std::size_t n = 2048;  // tile 128, 4 stages above the tile
  const auto report =
      bitonic_sort(workload::random_permutation(n, 5), cfg,
                   gpusim::quadro_m4000());
  ASSERT_EQ(report.rounds.size(), 1u + 4u);
  EXPECT_EQ(report.rounds[0].name, "bitonic stages <= tile");
  EXPECT_EQ(report.rounds.back().name, "bitonic stage 11");
  for (const auto& r : report.rounds) {
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
}

}  // namespace
}  // namespace wcm::sort
