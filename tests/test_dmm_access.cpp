// Tests for the DMM step analyzer — the single definition of every conflict
// metric in the repository.

#include <gtest/gtest.h>

#include <vector>

#include "dmm/access.hpp"
#include "dmm/bank_matrix.hpp"
#include "util/check.hpp"

namespace wcm::dmm {
namespace {

std::vector<Request> reads(std::initializer_list<std::size_t> addrs) {
  std::vector<Request> v;
  std::size_t proc = 0;
  for (const std::size_t a : addrs) {
    v.push_back({proc++, a, Op::read, 0});
  }
  return v;
}

TEST(BankMatrix, AddressMapping) {
  EXPECT_EQ(bank_of(0, 32), 0u);
  EXPECT_EQ(bank_of(31, 32), 31u);
  EXPECT_EQ(bank_of(32, 32), 0u);
  EXPECT_EQ(column_of(31, 32), 0u);
  EXPECT_EQ(column_of(32, 32), 1u);
  EXPECT_EQ(addr_of(5, 3, 32), 101u);
  EXPECT_EQ(addr_of(bank_of(77, 32), column_of(77, 32), 32), 77u);
  EXPECT_THROW((void)addr_of(32, 0, 32), contract_error);
}

TEST(AnalyzeStep, EmptyStepIsFree) {
  const StepCost c = analyze_step({}, 32);
  EXPECT_EQ(c.requests, 0u);
  EXPECT_EQ(c.serialization, 0u);
  EXPECT_EQ(c.replays, 0u);
  EXPECT_EQ(c.conflicting_accesses, 0u);
}

TEST(AnalyzeStep, ConflictFreeFullWarp) {
  std::vector<Request> step;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    step.push_back({lane, lane, Op::read, 0});  // one address per bank
  }
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 1u);
  EXPECT_EQ(c.replays, 0u);
  EXPECT_EQ(c.conflicting_accesses, 0u);
  EXPECT_EQ(c.max_bank_degree, 1u);
}

TEST(AnalyzeStep, StridedAccessSerializesFully) {
  // Stride w: every lane hits bank 0 at a distinct address.
  std::vector<Request> step;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    step.push_back({lane, lane * 32, Op::read, 0});
  }
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 32u);
  EXPECT_EQ(c.replays, 31u);
  EXPECT_EQ(c.conflicting_accesses, 32u);
}

TEST(AnalyzeStep, BroadcastReadsAreFree) {
  // All lanes read the same address: modern GPUs broadcast (paper's
  // footnote 1).
  std::vector<Request> step;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    step.push_back({lane, 7, Op::read, 0});
  }
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 1u);
  EXPECT_EQ(c.replays, 0u);
  EXPECT_EQ(c.conflicting_accesses, 0u);
}

TEST(AnalyzeStep, MixedBroadcastAndConflict) {
  // Lanes 0-3 read address 0; lanes 4-5 read addresses 32 and 64 (bank 0):
  // three distinct addresses in bank 0.
  const auto step = std::vector<Request>{{0, 0, Op::read, 0},
                                         {1, 0, Op::read, 0},
                                         {2, 0, Op::read, 0},
                                         {3, 0, Op::read, 0},
                                         {4, 32, Op::read, 0},
                                         {5, 64, Op::read, 0}};
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 3u);
  EXPECT_EQ(c.replays, 2u);
  EXPECT_EQ(c.conflicting_accesses, 6u);  // all six land in a >=2-cycle bank
}

TEST(AnalyzeStep, TwoWayConflictInTwoBanks) {
  const auto step = reads({0, 32, 1, 33});
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 2u);
  EXPECT_EQ(c.replays, 1u);
  EXPECT_EQ(c.conflicting_accesses, 4u);
  EXPECT_EQ(c.max_bank_degree, 2u);
}

TEST(AnalyzeStep, CrewViolationThrows) {
  // Two writes to the same address.
  std::vector<Request> two_writes{{0, 5, Op::write, 1}, {1, 5, Op::write, 2}};
  EXPECT_THROW((void)analyze_step(two_writes, 32), contract_error);
  // A read and a write of the same address in one step.
  std::vector<Request> rw{{0, 5, Op::read, 0}, {1, 5, Op::write, 2}};
  EXPECT_THROW((void)analyze_step(rw, 32), contract_error);
}

TEST(AnalyzeStep, DistinctWritesAreAllowed) {
  std::vector<Request> step{{0, 5, Op::write, 1}, {1, 6, Op::write, 2}};
  const StepCost c = analyze_step(step, 32);
  EXPECT_EQ(c.serialization, 1u);
}

TEST(AnalyzeStep, DuplicateProcessorThrows) {
  std::vector<Request> step{{0, 5, Op::read, 0}, {0, 5, Op::read, 0}};
  EXPECT_THROW((void)analyze_step(step, 32), contract_error);
}

// Lemma 1 (property over k and w): some set of w distinct addresses within
// k consecutive addresses achieves min(ceil(k/w), w) conflicts — take every
// w-th address; verify the analyzer reports exactly that bound.
TEST(AnalyzeStep, Lemma1WitnessAchievesBound) {
  for (const std::size_t w : {8u, 16u, 32u}) {
    for (const std::size_t k :
         {w / 2, w, 2 * w, 3 * w + 1, w * w, 2 * w * w}) {
      const std::size_t bound =
          std::min((k + w - 1) / w, w);
      std::vector<Request> step;
      // Pick addresses 0, w, 2w, ... (all bank 0) while they fit in [0, k),
      // then fill the remaining lanes with conflict-free addresses in other
      // banks.
      std::size_t lane = 0;
      for (std::size_t a = 0; a < k && lane < bound; a += w) {
        step.push_back({lane++, a, Op::read, 0});
      }
      const StepCost c = analyze_step(step, w);
      EXPECT_EQ(c.serialization, bound) << "k=" << k << " w=" << w;
    }
  }
}

TEST(StepCost, Accumulation) {
  StepCost a{4, 2, 1, 4, 2};
  const StepCost b{8, 3, 2, 6, 3};
  a += b;
  EXPECT_EQ(a.requests, 12u);
  EXPECT_EQ(a.serialization, 5u);
  EXPECT_EQ(a.replays, 3u);
  EXPECT_EQ(a.conflicting_accesses, 10u);
  EXPECT_EQ(a.max_bank_degree, 3u);
}

TEST(RenderBankMatrix, LayoutAndLabels) {
  const std::string s =
      render_bank_matrix(6, 4, [](std::size_t a) { return std::to_string(a); });
  // 4 banks -> 4 lines; addresses 4 and 5 in column 1 of banks 0 and 1.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("0: 0 4"), std::string::npos);
  EXPECT_NE(s.find("1: 1 5"), std::string::npos);
  EXPECT_NE(s.find("2: 2"), std::string::npos);
}

}  // namespace
}  // namespace wcm::dmm
