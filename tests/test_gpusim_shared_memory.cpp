// Tests for the banked shared memory wrapper.

#include <gtest/gtest.h>

#include "gpusim/shared_memory.hpp"
#include "util/check.hpp"

namespace wcm::gpusim {
namespace {

TEST(SharedMemory, ReadReturnsValues) {
  SharedMemory shm(32, 64);
  for (std::size_t a = 0; a < 64; ++a) {
    shm.poke(a, static_cast<word>(100 + a));
  }
  const std::vector<LaneRead> reads{{0, 5}, {1, 37}, {2, 5}};
  const auto vals = shm.warp_read(reads);
  EXPECT_EQ(vals, (std::vector<word>{105, 137, 105}));
}

TEST(SharedMemory, WriteStores) {
  SharedMemory shm(32, 64);
  const std::vector<LaneWrite> writes{{0, 1, 11}, {1, 2, 22}};
  shm.warp_write(writes);
  EXPECT_EQ(shm.peek(1), 11);
  EXPECT_EQ(shm.peek(2), 22);
}

TEST(SharedMemory, ConflictAccounting) {
  SharedMemory shm(32, 128);
  // Lanes 0 and 1 both hit bank 3 at distinct addresses.
  const std::vector<LaneRead> reads{{0, 3}, {1, 35}};
  shm.warp_read(reads);
  EXPECT_EQ(shm.stats().steps, 1u);
  EXPECT_EQ(shm.stats().serialization_cycles, 2u);
  EXPECT_EQ(shm.stats().replays, 1u);
  shm.reset_stats();
  EXPECT_EQ(shm.stats().steps, 0u);
}

TEST(SharedMemory, InactiveLanesAllowed) {
  SharedMemory shm(32, 64);
  const std::vector<LaneRead> reads{{7, 0}};  // one active lane
  EXPECT_EQ(shm.warp_read(reads).size(), 1u);
}

TEST(SharedMemory, RejectsBadLanes) {
  SharedMemory shm(32, 64);
  const std::vector<LaneRead> reads{{32, 0}};
  EXPECT_THROW((void)shm.warp_read(reads), contract_error);
  std::vector<LaneRead> too_many(33);
  for (u32 i = 0; i < 33; ++i) {
    too_many[i] = {i, i};
  }
  EXPECT_THROW((void)shm.warp_read(too_many), contract_error);
}

TEST(SharedMemory, NonPow2WarpAllowedExceptUnderXor) {
  // Linear and rotation layouts are plain mod-w arithmetic, so any
  // positive warp size works (the w = 3 describer cross-check depends on
  // this); the xor permutation is only bijective for a power of two.
  SharedMemory shm(31, 62);
  shm.poke(33, 7);
  const std::vector<LaneRead> reads{{0, 33}};
  EXPECT_EQ(shm.warp_read(reads), std::vector<word>{7});
  EXPECT_THROW(
      SharedMemory(SharedLayout{31, 0, LayoutKind::xor_swizzle}, 62),
      contract_error);
}

TEST(SharedMemory, FillAndDump) {
  SharedMemory shm(32, 64);
  const std::vector<word> vals{5, 6, 7};
  shm.fill(vals, 8);
  EXPECT_EQ(shm.dump(8, 3), vals);
}

}  // namespace
}  // namespace wcm::gpusim
