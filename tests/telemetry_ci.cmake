# Telemetry gate (ISSUE acceptance): `wcmgen profile` must produce a
# strict-JSON Chrome trace and metrics snapshot for both adversarial
# regimes, the cache hit/miss counters must mirror the campaign gate's
# cold/warm invariants, and an injected trace-export failure must degrade
# to a warning without changing the exit code.  Runs under TSan in CI
# (WCM_THREADS=4 campaign cells with telemetry on).
#
# Run as:  cmake -DWCMGEN=<bin> -DWORKDIR=<dir> -P telemetry_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(run_profile out_var err_var)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "expected exit 0, got '${rv}' for: ${ARGN}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# Strict-JSON validation via CMake's parser: a trace must be an object
# whose traceEvents array is non-empty and whose first event is a complete
# duration ("ph": "X") record.
function(check_trace path)
  file(READ ${path} trace)
  string(JSON n_events LENGTH "${trace}" traceEvents)
  if(n_events LESS 1)
    message(FATAL_ERROR "trace ${path} has no events")
  endif()
  string(JSON ph GET "${trace}" traceEvents 0 ph)
  string(JSON name GET "${trace}" traceEvents 0 name)
  string(JSON ts GET "${trace}" traceEvents 0 ts)
  string(JSON dur GET "${trace}" traceEvents 0 dur)
  if(NOT ph STREQUAL "X")
    message(FATAL_ERROR "trace ${path}: first event ph='${ph}', want 'X'")
  endif()
  if(name STREQUAL "")
    message(FATAL_ERROR "trace ${path}: first event has no name")
  endif()
endfunction()

# The metrics JSON must parse, contain at least `min` rows, and include
# the named metric.
function(check_metrics path min metric)
  file(READ ${path} metrics)
  string(JSON n_rows LENGTH "${metrics}" metrics)
  if(n_rows LESS ${min})
    message(FATAL_ERROR
      "metrics ${path}: ${n_rows} rows, want >= ${min}")
  endif()
  if(NOT metrics MATCHES "\"name\":\"${metric}\"")
    message(FATAL_ERROR "metrics ${path}: missing metric '${metric}'")
  endif()
endfunction()

# 1. Canned profiles: both adversarial regimes run end-to-end with tracing
#    and metrics on, exit 0, and emit valid artifacts plus the on-stdout
#    metrics table.
foreach(regime small-E large-E)
  set(trace ${WORKDIR}/profile_${regime}.trace.json)
  set(metrics ${WORKDIR}/profile_${regime}.metrics.json)
  run_profile(out err ${WCMGEN} profile --engine pairwise
              --adversarial ${regime} --k 2
              --telemetry ${trace} --metrics ${metrics})
  check_trace(${trace})
  check_metrics(${metrics} 10 sim.round.replays)
  if(NOT out MATCHES "--- telemetry metrics ---")
    message(FATAL_ERROR "profile ${regime}: metrics table missing\n${out}")
  endif()
  if(NOT out MATCHES "sim\\.rounds{engine=pairwise} [1-9]")
    message(FATAL_ERROR "profile ${regime}: no sim.rounds row\n${out}")
  endif()
endforeach()

# 2. Wrapped mode + cache counters: a cold profiled campaign must report
#    all misses, a warm rerun all hits (the campaign gate's invariants,
#    observed through the metrics registry this time).
set(spec ${WORKDIR}/telemetry_ci.json)
file(WRITE ${spec} [[{
  "name": "telemetry-ci",
  "device": "m4000",
  "seed": 17,
  "grid": [
    {"engine": "pairwise", "E": 5, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2]},
    {"engine": "multiway", "E": 3, "b": 64, "input": "worst-case",
     "k": [1], "ways": 2}
  ]
}]])
set(cache ${WORKDIR}/telemetry_ci.wcmc)
file(REMOVE ${cache})

run_profile(cold_out cold_err ${WCMGEN} profile campaign ${spec}
            --threads 4 --cache ${cache} --quiet
            --out ${WORKDIR}/cold.json
            --metrics ${WORKDIR}/cold.metrics.json)
if(NOT cold_out MATCHES "runtime\\.cache\\.miss{} 5")
  message(FATAL_ERROR "cold campaign: want 5 cache misses\n${cold_out}")
endif()
if(NOT cold_out MATCHES "runtime\\.cache\\.hit{} 0")
  message(FATAL_ERROR "cold campaign: want 0 cache hits\n${cold_out}")
endif()
if(NOT cold_out MATCHES "runtime\\.scheduler\\.jobs\\.completed{} 5")
  message(FATAL_ERROR "cold campaign: want 5 completed jobs\n${cold_out}")
endif()
check_metrics(${WORKDIR}/cold.metrics.json 5 runtime.cache.miss)

run_profile(warm_out warm_err ${WCMGEN} profile campaign ${spec}
            --threads 4 --cache ${cache} --quiet
            --out ${WORKDIR}/warm.json
            --metrics ${WORKDIR}/warm.metrics.json)
if(NOT warm_out MATCHES "runtime\\.cache\\.hit{} 5")
  message(FATAL_ERROR "warm campaign: want 5 cache hits\n${warm_out}")
endif()
if(NOT warm_out MATCHES "runtime\\.cache\\.miss{} 0")
  message(FATAL_ERROR "warm campaign: want 0 cache misses\n${warm_out}")
endif()

# The profiled runs must still produce byte-identical campaign output.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/cold.json ${WORKDIR}/warm.json
                RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR "profiled cold/warm campaign outputs differ")
endif()

# 3. Degrade gracefully: an injected trace-export failure warns on stderr
#    but leaves the profiled run's exit code at 0.
set(doomed ${WORKDIR}/doomed.trace.json)
file(REMOVE ${doomed})
run_profile(fp_out fp_err ${CMAKE_COMMAND} -E env
            WCM_FAILPOINTS=telemetry.export.write
            ${WCMGEN} profile --engine pairwise --adversarial small-E
            --k 1 --telemetry ${doomed})
if(NOT fp_err MATCHES "trace export failed")
  message(FATAL_ERROR
    "injected export failure did not warn\nstderr: ${fp_err}")
endif()
if(NOT fp_err MATCHES "run continues")
  message(FATAL_ERROR "export-failure warning lost its contract\n${fp_err}")
endif()

# 4. WCM_TRACE_OUT drives any subcommand without the profile wrapper.
set(env_trace ${WORKDIR}/env.trace.json)
file(REMOVE ${env_trace})
run_profile(env_out env_err ${CMAKE_COMMAND} -E env
            WCM_TRACE_OUT=${env_trace}
            ${WCMGEN} sort --E 5 --b 64 --k 2 --input worst-case)
check_trace(${env_trace})

file(REMOVE_RECURSE ${WORKDIR})
