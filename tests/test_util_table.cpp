// Tests for the bench-output table writer.

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace wcm {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table(std::vector<std::string>{}), contract_error);
}

TEST(Table, RowDiscipline) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add("x"), contract_error);  // no row started
  t.new_row().add("1").add("2");
  EXPECT_THROW(t.add("3"), contract_error);  // row full
  t.new_row().add("3");
  EXPECT_THROW(t.new_row(), contract_error);  // previous row incomplete
}

TEST(Table, NumericFormatting) {
  Table t({"n", "x"});
  t.new_row().add(std::size_t{42}).add(3.14159, 2);
  EXPECT_EQ(t.data()[0][0], "42");
  EXPECT_EQ(t.data()[0][1], "3.14");
}

TEST(Table, CsvOutput) {
  Table t({"n", "v"});
  t.new_row().add("1").add("2");
  t.new_row().add("3").add("4");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n,v\n1,2\n3,4\n");
}

TEST(Table, CsvRejectsCellsNeedingQuotes) {
  Table t({"v"});
  t.new_row().add("has,comma");
  std::ostringstream os;
  EXPECT_THROW(t.write_csv(os), contract_error);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"col", "x"});
  t.new_row().add("short").add("1");
  t.new_row().add("a-much-longer-cell").add("2");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-cell"), std::string::npos);
  // Header, separator, and two data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(format_fixed(2.25, 1), "2.2");
  EXPECT_EQ(format_fixed(-1.5, 2), "-1.50");
}

}  // namespace
}  // namespace wcm
