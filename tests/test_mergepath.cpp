// Tests for merge path: co-rank search, serial merge, tile partitioning.
// Includes property sweeps over random runs: every diagonal's split must
// reproduce the prefix of the stable merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mergepath/partition.hpp"
#include "mergepath/serial_merge.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::mergepath {
namespace {

std::vector<word> sorted_random(std::size_t n, u64 seed, word lo, word hi) {
  Xoshiro256 rng(seed);
  std::vector<word> v(n);
  for (auto& x : v) {
    x = lo + static_cast<word>(rng.below(static_cast<u64>(hi - lo + 1)));
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SerialMerge, BasicAndStability) {
  const std::vector<word> a{1, 3, 5};
  const std::vector<word> b{2, 3, 6};
  const auto out = serial_merge(a, b);
  EXPECT_EQ(out, (std::vector<word>{1, 2, 3, 3, 5, 6}));
}

TEST(SerialMerge, EmptySides) {
  const std::vector<word> a{1, 2};
  const std::vector<word> empty;
  EXPECT_EQ(serial_merge(a, empty), a);
  EXPECT_EQ(serial_merge(empty, a), a);
  EXPECT_TRUE(serial_merge(empty, empty).empty());
}

TEST(SerialMerge, SizeContract) {
  const std::vector<word> a{1};
  const std::vector<word> b{2};
  std::vector<word> out(3);
  EXPECT_THROW(serial_merge(a, b, out), contract_error);
}

TEST(MergePath, EndpointDiagonals) {
  const std::vector<word> a{1, 3, 5};
  const std::vector<word> b{2, 4};
  const auto r0 = merge_path(a, b, 0);
  EXPECT_EQ(r0.split.i, 0u);
  EXPECT_EQ(r0.split.j, 0u);
  const auto rn = merge_path(a, b, 5);
  EXPECT_EQ(rn.split.i, 3u);
  EXPECT_EQ(rn.split.j, 2u);
  EXPECT_THROW((void)merge_path(a, b, 6), contract_error);
}

TEST(MergePath, TieGoesToA) {
  const std::vector<word> a{5};
  const std::vector<word> b{5};
  // First output must be A's 5 (A-priority): diag 1 -> (1, 0).
  const auto r = merge_path(a, b, 1);
  EXPECT_EQ(r.split.i, 1u);
  EXPECT_EQ(r.split.j, 0u);
}

// Property: for every diagonal, (i, j) reproduces the stable merge prefix.
TEST(MergePath, MatchesSerialMergePrefixes) {
  for (const u64 seed : {1ULL, 2ULL, 3ULL}) {
    const auto a = sorted_random(37, seed, 0, 20);       // many duplicates
    const auto b = sorted_random(23, seed + 100, 0, 20);
    const auto merged = serial_merge(a, b);
    for (std::size_t d = 0; d <= a.size() + b.size(); ++d) {
      const auto r = merge_path(a, b, d);
      ASSERT_EQ(r.split.i + r.split.j, d);
      // The first d merged values must be exactly a[0,i) + b[0,j).
      std::vector<word> prefix(merged.begin(),
                               merged.begin() + static_cast<std::ptrdiff_t>(d));
      std::vector<word> chosen;
      chosen.insert(chosen.end(), a.begin(),
                    a.begin() + static_cast<std::ptrdiff_t>(r.split.i));
      chosen.insert(chosen.end(), b.begin(),
                    b.begin() + static_cast<std::ptrdiff_t>(r.split.j));
      std::sort(chosen.begin(), chosen.end());
      std::sort(prefix.begin(), prefix.end());
      EXPECT_EQ(chosen, prefix) << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(MergePath, SearchStepsLogarithmic) {
  const auto a = sorted_random(1 << 12, 9, 0, 1 << 20);
  const auto b = sorted_random(1 << 12, 10, 0, 1 << 20);
  for (std::size_t d : {1000u, 4096u, 8000u}) {
    const auto r = merge_path(a, b, d);
    EXPECT_LE(r.search_steps, 13u);  // log2(4096) + 1
  }
}

TEST(PartitionTiles, SplitsAreExactAndMonotone) {
  const auto a = sorted_random(64, 4, 0, 100);
  const auto b = sorted_random(64, 5, 0, 100);
  const auto part = partition_tiles(a, b, 16);
  ASSERT_EQ(part.splits.size(), 9u);
  EXPECT_EQ(part.splits.front().i, 0u);
  EXPECT_EQ(part.splits.back().i, 64u);
  EXPECT_EQ(part.splits.back().j, 64u);
  const auto merged = serial_merge(a, b);
  // Re-merging every tile's segments reproduces the full merge.
  std::vector<word> rebuilt;
  for (std::size_t t = 0; t + 1 < part.splits.size(); ++t) {
    const auto lo = part.splits[t];
    const auto hi = part.splits[t + 1];
    const auto piece = serial_merge(
        std::span<const word>(a).subspan(lo.i, hi.i - lo.i),
        std::span<const word>(b).subspan(lo.j, hi.j - lo.j));
    rebuilt.insert(rebuilt.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(rebuilt, merged);
}

TEST(PartitionTiles, RequiresDivisibleTile) {
  const std::vector<word> a{1, 2, 3};
  const std::vector<word> b{4, 5};
  EXPECT_THROW((void)partition_tiles(a, b, 2), contract_error);
  EXPECT_THROW((void)partition_tiles(a, b, 0), contract_error);
}

TEST(PartitionTiles, CountsSearchSteps) {
  const auto a = sorted_random(256, 6, 0, 1000);
  const auto b = sorted_random(256, 7, 0, 1000);
  const auto part = partition_tiles(a, b, 64);
  EXPECT_GT(part.search_steps, 0u);
  EXPECT_GE(part.search_steps, part.max_chain);
}

TEST(IsSortedRun, Basic) {
  EXPECT_TRUE(is_sorted_run(std::vector<word>{}));
  EXPECT_TRUE(is_sorted_run(std::vector<word>{1, 1, 2}));
  EXPECT_FALSE(is_sorted_run(std::vector<word>{2, 1}));
}

}  // namespace
}  // namespace wcm::mergepath
