// Tests for key-value sorting: functional correctness (stability included)
// and the value-traffic accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sort/key_value.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() { return SortConfig{5, 64, 32}; }

TEST(KeyValueSort, SortsPairsCorrectly) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto keys = workload::random_permutation(n, 31);
  std::vector<word> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = keys[i] * 10;  // value encodes its key
  }
  const auto result = pairwise_merge_sort_pairs(keys, values, cfg,
                                                gpusim::quadro_m4000());
  EXPECT_TRUE(std::is_sorted(result.keys.begin(), result.keys.end()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.values[i], result.keys[i] * 10);
  }
}

TEST(KeyValueSort, StableOnDuplicateKeys) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 2;
  std::vector<word> keys(n), values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<word>(i % 7);  // heavy duplication
    values[i] = static_cast<word>(i);    // original position
  }
  const auto result = pairwise_merge_sort_pairs(keys, values, cfg,
                                                gpusim::quadro_m4000());
  // Stability: within equal keys, values (original positions) ascend.
  for (std::size_t i = 1; i < n; ++i) {
    if (result.keys[i] == result.keys[i - 1]) {
      EXPECT_LT(result.values[i - 1], result.values[i]) << "at " << i;
    }
  }
}

TEST(KeyValueSort, SizeMismatchThrows) {
  const auto cfg = tiny();
  const auto keys = workload::random_permutation(cfg.tile() * 2, 1);
  const std::vector<word> values(cfg.tile());
  EXPECT_THROW((void)pairwise_merge_sort_pairs(keys, values, cfg,
                                               gpusim::quadro_m4000()),
               contract_error);
}

TEST(KeyValueSort, ValueTrafficCostsTime) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto keys = workload::random_permutation(n, 5);
  const std::vector<word> values(n, 1);
  const auto dev = gpusim::quadro_m4000();

  const auto key_only = pairwise_merge_sort(keys, cfg, dev);
  const auto pairs = pairwise_merge_sort_pairs(keys, values, cfg, dev);
  EXPECT_GT(pairs.report.seconds(), key_only.seconds());
  EXPECT_GT(pairs.report.totals.global_transactions,
            key_only.totals.global_transactions);
  // Shared-memory behavior is key-driven and identical.
  EXPECT_EQ(pairs.report.totals.shared.replays,
            key_only.totals.shared.replays);
}

TEST(KeyValueSort, WorstCaseAttackStillLands) {
  const auto cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 3);
  const auto random = workload::random_permutation(n, 3);
  std::vector<word> values(n);
  std::iota(values.begin(), values.end(), word{0});
  const auto dev = gpusim::quadro_m4000();

  const auto r_worst = pairwise_merge_sort_pairs(worst, values, cfg, dev);
  const auto r_random = pairwise_merge_sort_pairs(random, values, cfg, dev);
  // The conflicts still land in full (the key phase is unchanged)...
  EXPECT_GT(r_worst.report.beta2(), r_random.report.beta2());
  EXPECT_GT(r_worst.report.total_time.t_shared,
            r_random.report.total_time.t_shared);
  // ...but the extra value traffic makes the pair sort more bandwidth-bound
  // than the key-only sort, which *dilutes* the attack's effect on total
  // time — pair sorts are less conflict-sensitive, a real phenomenon the
  // cost model reproduces.
  EXPECT_GE(r_worst.report.seconds(), r_random.report.seconds() * 0.99);
}

}  // namespace
}  // namespace wcm::sort
