// Tests for device descriptors and the occupancy calculator, including the
// exact occupancy arithmetic the paper walks through in Sec. IV-A.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::gpusim {
namespace {

TEST(Device, PublishedSpecs) {
  const Device m = quadro_m4000();
  EXPECT_EQ(m.cc_major, 5u);
  EXPECT_EQ(m.cc_minor, 2u);
  EXPECT_EQ(m.sm_count, 13u);
  EXPECT_EQ(m.total_cores(), 1664u);  // paper: 1664 physical processors
  EXPECT_EQ(m.shared_mem_per_sm, 96u * 1024u);

  const Device t = rtx_2080ti();
  EXPECT_EQ(t.cc_major, 7u);
  EXPECT_EQ(t.cc_minor, 5u);
  EXPECT_EQ(t.sm_count, 68u);
  EXPECT_EQ(t.total_cores(), 4352u);  // paper: 4352 physical processors
  EXPECT_EQ(t.shared_mem_per_sm, 64u * 1024u);  // 32 L1 / 64 shared split
}

TEST(Device, Gtx770Specs) {
  const Device g = gtx_770();
  EXPECT_EQ(g.cc_major, 3u);
  EXPECT_EQ(g.total_cores(), 1536u);
  EXPECT_EQ(g.shared_mem_per_sm, 48u * 1024u);
  // Thrust E=15,b=512 (30 KiB/block): only one block fits per Kepler SM.
  const auto cfg = wcm::sort::params_15_512();
  const Occupancy o = occupancy(g, cfg.b, cfg.shared_bytes());
  EXPECT_EQ(o.resident_blocks, 1u);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::shared_memory);
}

TEST(Device, Gtx770EndToEnd) {
  // Worst-case inputs slow the sort on the Kepler model too (Karsin et
  // al.'s original observation on this card).
  const wcm::sort::SortConfig cfg{15, 128, 32};
  const std::size_t n = cfg.tile() * 16;
  const auto worst = wcm::workload::make_input(
      wcm::workload::InputKind::worst_case, n, cfg, 3);
  const auto random = wcm::workload::random_permutation(n, 3);
  const auto rw = wcm::sort::pairwise_merge_sort(worst, cfg, gtx_770());
  const auto rr = wcm::sort::pairwise_merge_sort(random, cfg, gtx_770());
  EXPECT_GT(rw.seconds(), rr.seconds());
}

// Paper Sec. IV-A: on the RTX 2080 Ti, E=17,b=256 -> 17 KiB per block, 3
// resident blocks (768 threads), 75% occupancy; E=15,b=512 -> 30 KiB per
// block, 2 resident blocks (1024 threads), 100% occupancy.
TEST(Occupancy, PaperArithmetic2080Ti) {
  const Device t = rtx_2080ti();

  const auto cfg1 = sort::params_17_256();
  EXPECT_EQ(cfg1.shared_bytes(), 17408u);  // "17 KiB"
  const Occupancy o1 = occupancy(t, cfg1.b, cfg1.shared_bytes());
  EXPECT_EQ(o1.resident_blocks, 3u);
  EXPECT_EQ(o1.resident_threads, 768u);
  EXPECT_DOUBLE_EQ(o1.fraction, 0.75);

  const auto cfg2 = sort::params_15_512();
  EXPECT_EQ(cfg2.shared_bytes(), 30720u);  // "30 KiB"
  const Occupancy o2 = occupancy(t, cfg2.b, cfg2.shared_bytes());
  EXPECT_EQ(o2.resident_blocks, 2u);
  EXPECT_EQ(o2.resident_threads, 1024u);
  EXPECT_DOUBLE_EQ(o2.fraction, 1.0);
}

TEST(Occupancy, M4000Thrust) {
  const Device m = quadro_m4000();
  const auto cfg = sort::params_15_512();
  const Occupancy o = occupancy(m, cfg.b, cfg.shared_bytes());
  // 96 KiB / 30 KiB -> 3 blocks; threads allow 4; shared memory limits.
  EXPECT_EQ(o.resident_blocks, 3u);
  EXPECT_EQ(o.resident_threads, 1536u);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::shared_memory);
}

TEST(Occupancy, M4000Mgpu) {
  const Device m = quadro_m4000();
  const auto cfg = sort::params_15_128();
  const Occupancy o = occupancy(m, cfg.b, cfg.shared_bytes());
  // 96 KiB / 7.5 KiB -> 12 blocks; threads allow 16 -> shared limits at 12.
  EXPECT_EQ(o.resident_blocks, 12u);
  EXPECT_EQ(o.resident_threads, 1536u);
}

TEST(Occupancy, BlockTooLarge) {
  const Device t = rtx_2080ti();
  const Occupancy o = occupancy(t, 256, 128 * 1024);
  EXPECT_EQ(o.resident_blocks, 0u);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::block_too_large);
  const Occupancy o2 = occupancy(t, 2048, 0);  // > max threads per SM
  EXPECT_EQ(o2.resident_blocks, 0u);
}

TEST(Occupancy, BlockCountLimiter) {
  const Device m = quadro_m4000();
  // Tiny blocks with no shared memory: limited by max_blocks_per_sm.
  const Occupancy o = occupancy(m, 32, 0);
  EXPECT_EQ(o.resident_blocks, m.max_blocks_per_sm);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::blocks);
}

TEST(Occupancy, PartialWarpsRoundUpAndEmptyBlocksAreRejected) {
  const Device m = quadro_m4000();
  // 48 threads = 1.5 warps: the hardware pads the last warp with
  // inactive lanes, so warp accounting rounds up per resident block.
  const Occupancy o = occupancy(m, 48, 0);
  EXPECT_EQ(o.resident_warps, o.resident_blocks * 2);
  EXPECT_THROW((void)occupancy(m, 0, 0), contract_error);
}

}  // namespace
}  // namespace wcm::gpusim
