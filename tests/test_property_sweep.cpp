// Cross-configuration property sweeps: the attack's exactness for *every*
// co-prime E at several block sizes (TEST_P grid), and an independent
// cross-check of the warp evaluator against a raw DMM replay.

#include <gtest/gtest.h>

#include <numeric>

#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "dmm/machine.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm {
namespace {

struct GridCase {
  u32 E;
  u32 b;
};

class AttackGrid : public ::testing::TestWithParam<GridCase> {};

// For every configuration: the generated input is a permutation, the sort
// returns the identity, every attacked round hits the predicted beta_2
// exactly, and random inputs stay well below it.
TEST_P(AttackGrid, ExactAcrossConfigurations) {
  const auto [E, b] = GetParam();
  const sort::SortConfig cfg{E, b, 32};
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();

  // Shuffled base tiles (the default family member): without the shuffle
  // the ascending tiles make the unattacked block sort conflict-free,
  // which would *lower* the whole-sort beta_2 below random's.
  core::AttackOptions opts;
  opts.tile_shuffle_seed = 1;
  const auto worst = core::worst_case_input(n, cfg, opts);
  ASSERT_TRUE(workload::is_permutation_of_iota(worst));

  std::vector<dmm::word> out;
  const auto report = sort::pairwise_merge_sort(
      worst, cfg, dev, sort::MergeSortLibrary::thrust, &out);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<dmm::word>(i));
  }

  // The construction is deterministic: the evaluator predicts every
  // attacked round's beta_2 to machine precision, for *every* (E, b).
  const double exact = core::exact_beta2_prediction(cfg.w, cfg.E);
  const double lower = core::predicted_beta2(cfg.w, cfg.E);
  EXPECT_GE(exact, lower - 1e-9);
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    EXPECT_NEAR(gpusim::beta2(report.rounds[i].kernel), exact, 1e-9)
        << cfg.to_string() << " round " << i;
  }

  // Against random inputs: random's per-step serialization is the max load
  // of ~32 balls in 32 bins (~3.4), so the deterministic E-way attack wins
  // whenever E clears that bar — which covers every production parameter
  // (the paper's E is 15 or 17).
  if (exact >= 5.0) {
    const auto random = workload::random_permutation(n, 5);
    const auto random_report = sort::pairwise_merge_sort(random, cfg, dev);
    // Compare the attacked rounds themselves (the whole-sort average is
    // diluted by the shared, un-attacked block sort).
    EXPECT_LT(gpusim::beta2(random_report.rounds.back().kernel) * 1.2,
              gpusim::beta2(report.rounds.back().kernel))
        << cfg.to_string();
  }
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  for (const u32 b : {64u, 128u, 256u}) {
    for (const u32 e : {3u, 5u, 7u, 9u, 11u, 13u, 15u, 17u, 19u, 23u, 29u,
                        31u}) {
      const auto regime = core::classify_e(32, e);
      if (regime == core::ERegime::small ||
          regime == core::ERegime::large) {
        // Keep the grid affordable: big blocks only with small E.
        if (b == 256 && e > 9) {
          continue;
        }
        cases.push_back({e, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, AttackGrid, ::testing::ValuesIn(grid()),
                         [](const auto& tinfo) {
                           return "E" + std::to_string(tinfo.param.E) + "_b" +
                                  std::to_string(tinfo.param.b);
                         });

// Independent cross-check: replay a constructed warp's access schedule
// directly through a raw dmm::Machine and compare every statistic with the
// evaluator's totals.
TEST(EvaluatorCrossCheck, MatchesRawDmmReplay) {
  for (const u32 e : {5u, 7u, 15u, 17u, 31u}) {
    const u32 w = 32;
    const auto wa = core::worst_case_warp(w, e);
    const u32 s = core::alignment_window_start(w, e);
    const auto eval = core::evaluate_warp(wa, s);

    // Rebuild the address schedule exactly as the evaluator defines it.
    const std::size_t b_base = ceil_div(wa.total_a(), w) * w;
    dmm::Machine machine(w, b_base + wa.total_b());
    std::vector<std::vector<std::size_t>> addrs(w);
    std::size_t ca = 0, cb = b_base;
    for (u32 t = 0; t < w; ++t) {
      const auto& ta = wa.threads[t];
      std::vector<std::size_t> a_part(ta.from_a), b_part(ta.from_b);
      std::iota(a_part.begin(), a_part.end(), ca);
      std::iota(b_part.begin(), b_part.end(), cb);
      ca += ta.from_a;
      cb += ta.from_b;
      auto& seq = addrs[t];
      if (ta.a_first) {
        seq.insert(seq.end(), a_part.begin(), a_part.end());
        seq.insert(seq.end(), b_part.begin(), b_part.end());
      } else {
        seq.insert(seq.end(), b_part.begin(), b_part.end());
        seq.insert(seq.end(), a_part.begin(), a_part.end());
      }
    }
    for (u32 j = 0; j < e; ++j) {
      std::vector<dmm::Request> step;
      for (u32 t = 0; t < w; ++t) {
        step.push_back({t, addrs[t][j], dmm::Op::read, 0});
      }
      machine.step(step, nullptr);
    }

    EXPECT_EQ(machine.stats().serialization_cycles,
              eval.totals.serialization)
        << "E=" << e;
    EXPECT_EQ(machine.stats().replays, eval.totals.replays) << "E=" << e;
    EXPECT_EQ(machine.stats().conflicting_accesses,
              eval.totals.conflicting_accesses)
        << "E=" << e;
  }
}

}  // namespace
}  // namespace wcm
