// Tests for the event-driven block scheduler.

#include <gtest/gtest.h>

#include "gpusim/timeline.hpp"
#include "sort/config.hpp"
#include "util/check.hpp"

namespace wcm::gpusim {
namespace {

TEST(Timeline, EmptyLaunch) {
  const auto r = schedule_blocks({}, 8);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Timeline, UniformBlocksQuantizeIntoWaves) {
  // 10 blocks of cost 100 on 4 slots: 3 waves, makespan 300.
  const std::vector<double> blocks(10, 100.0);
  const auto r = schedule_blocks(blocks, 4);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 300.0);
  EXPECT_DOUBLE_EQ(r.busy_cycles, 1000.0);
  EXPECT_NEAR(r.utilization, 1000.0 / 1200.0, 1e-12);
}

TEST(Timeline, ExactMultipleIsFullyUtilized) {
  const std::vector<double> blocks(12, 50.0);
  const auto r = schedule_blocks(blocks, 4);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 150.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Timeline, TailEffect) {
  // 5 equal blocks on 4 slots: the straggler doubles the makespan.
  const std::vector<double> blocks(5, 100.0);
  const auto r = schedule_blocks(blocks, 4);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 200.0);
  EXPECT_NEAR(r.utilization, 500.0 / 800.0, 1e-12);
}

TEST(Timeline, GreedyPacksUnevenBlocks) {
  // One long block overlaps several short ones.
  const std::vector<double> blocks{400.0, 100.0, 100.0, 100.0, 100.0};
  const auto r = schedule_blocks(blocks, 2);
  // Slot A: 400; slot B: 100*4 = 400.
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 400.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Timeline, MoreSlotsNeverSlower) {
  std::vector<double> blocks;
  for (int i = 0; i < 37; ++i) {
    blocks.push_back(100.0 + 13.0 * (i % 7));
  }
  double prev = 1e18;
  for (const std::size_t slots : {1u, 2u, 4u, 8u, 64u}) {
    const auto r = schedule_blocks(blocks, slots);
    EXPECT_LE(r.makespan_cycles, prev);
    prev = r.makespan_cycles;
  }
}

TEST(Timeline, SingleSlotIsSerial) {
  const std::vector<double> blocks{10.0, 20.0, 30.0};
  const auto r = schedule_blocks(blocks, 1);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 60.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Timeline, Contracts) {
  EXPECT_THROW((void)schedule_blocks({}, 0), contract_error);
  const std::vector<double> bad{-1.0};
  EXPECT_THROW((void)schedule_blocks(bad, 2), contract_error);
}

TEST(Timeline, DeviceSlotCount) {
  // Thrust E=15,b=512 on the M4000: 3 resident blocks x 13 SMs = 39 slots.
  const auto dev = quadro_m4000();
  const auto cfg = wcm::sort::params_15_512();
  const std::vector<double> blocks(39, 10.0);
  const auto r = schedule_on_device(blocks, dev, cfg.b, cfg.shared_bytes());
  EXPECT_EQ(r.slots, 39u);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 10.0);
  EXPECT_THROW(
      (void)schedule_on_device(blocks, dev, 512, 1024 * 1024),
      contract_error);
}

}  // namespace
}  // namespace wcm::gpusim
