# Chaos gate (ISSUE acceptance): the campaign runtime must end every run
# in a *defined* state no matter what is injected underneath it — transient
# worker faults are retried, permanent ones quarantine their cell and the
# campaign completes degraded (exit 6), a SIGKILL-style death mid-run
# leaves a resumable journal (exit 77 from the chaos hook, then --resume
# converges to byte-identical clean output), a torn journal tail is
# truncated on replay, and an interrupt drains in-flight work and exits
# resumably (exit 7).
#
# Run as:  cmake -DWCMGEN=<bin> -DWORKDIR=<dir> -P chaos_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

set(spec ${WORKDIR}/chaos_ci.json)
set(jrn ${spec}.wcmj)
file(WRITE ${spec} [[{
  "name": "chaos",
  "device": "m4000",
  "seed": 29,
  "grid": [
    {"engine": "pairwise", "E": 5, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2]},
    {"engine": "multiway", "E": 3, "b": 64, "input": "worst-case",
     "k": [1], "ways": 2}
  ]
}]])

# Clean reference: the bytes every recovered run must converge back to.
set(ref ${WORKDIR}/chaos_ref.json)
file(REMOVE ${jrn})
expect_exit(0 ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --out ${ref})

# 1. Seeded fault schedules: five deterministic skip:times shapes for the
#    worker failpoint, run with a retry budget that covers the worst shape
#    (times <= 3 fires on one cell < 4 attempts).  Every run must end
#    defined: either fully recovered (exit 0, bytes identical to the clean
#    reference) or degraded (exit 6, aggregate carries a quarantined
#    section) — never a crash, hang, or undocumented code.
foreach(seed RANGE 1 5)
  math(EXPR skip "(${seed} * 7) % 11")
  math(EXPR times "1 + (${seed} % 3)")
  set(out ${WORKDIR}/chaos_seed${seed}.json)
  file(REMOVE ${jrn})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            WCM_FAILPOINTS=runtime.worker.job=${skip}:${times}
            ${WCMGEN} campaign ${spec} --threads 2 --no-cache --quiet
            --retries 3 --out ${out}
    RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(rv EQUAL 0)
    expect_exit(0 ${CMAKE_COMMAND} -E compare_files ${ref} ${out})
  elseif(rv EQUAL 6)
    file(READ ${out} degraded)
    if(NOT degraded MATCHES "\"quarantined\":\\[\\{")
      message(FATAL_ERROR
        "degraded run (seed ${seed}) lacks a quarantined section: "
        "${degraded}")
    endif()
  else()
    message(FATAL_ERROR
      "chaos schedule ${skip}:${times} ended undefined (exit ${rv})\n"
      "stderr: ${stderr}")
  endif()
  file(REMOVE ${out})
endforeach()

# 2. A permanent fault exhausts every retry: the campaign completes
#    *degraded* instead of failing fast — the quarantined cells are named
#    in the aggregate and on stderr, and the exit code is 6.
file(REMOVE ${jrn})
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=runtime.worker.job
          ${WCMGEN} campaign ${spec} --threads 2 --no-cache --quiet
          --out ${WORKDIR}/chaos_degraded.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 6)
  message(FATAL_ERROR "permanent fault: expected exit 6, got ${rv}\n${stderr}")
endif()
if(NOT stderr MATCHES "quarantined=5")
  message(FATAL_ERROR "summary does not report quarantined=5: ${stderr}")
endif()
file(READ ${WORKDIR}/chaos_degraded.json degraded)
if(NOT degraded MATCHES "\"quarantined\":\\[\\{")
  message(FATAL_ERROR "degraded aggregate lacks quarantined cells")
endif()
file(REMOVE ${WORKDIR}/chaos_degraded.json)

# 3. A transient journal-append fault is absorbed by the retry loop: the
#    failed cell is recomputed, re-journaled, and the output is clean.
file(REMOVE ${jrn})
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          WCM_FAILPOINTS=runtime.journal.append=2:1
          ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
          --out ${WORKDIR}/chaos_append.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
    "transient append fault not absorbed (exit ${rv})\n${stderr}")
endif()
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${ref} ${WORKDIR}/chaos_append.json)
file(REMOVE ${WORKDIR}/chaos_append.json)

# 4. An injected replay fault is an io error (exit 3), not a silent fresh
#    start: a resume that cannot read its own journal must say so.
expect_exit(3 ${CMAKE_COMMAND} -E env
            WCM_FAILPOINTS=runtime.journal.replay
            ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --resume --out ${WORKDIR}/chaos_nope.json)

# 5. Kill/resume cycle: the chaos hook kills the process immediately after
#    the third durable journal append (exit 77).  A --resume run replays
#    exactly those three cells, computes the missing two, and produces
#    byte-identical clean output.
file(REMOVE ${jrn})
expect_exit(77 ${CMAKE_COMMAND} -E env WCM_CHAOS_KILL_AFTER=3
            ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --out ${WORKDIR}/chaos_dead.json)
execute_process(
  COMMAND ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
          --resume --out ${WORKDIR}/chaos_resumed.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "resume after kill failed (exit ${rv})\n${stderr}")
endif()
if(NOT stderr MATCHES "computed=2 cached=0 replayed=3")
  message(FATAL_ERROR "resume did not replay 3 cells: ${stderr}")
endif()
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${ref} ${WORKDIR}/chaos_resumed.json)

# 6. A torn tail (garbage appended after the last sealed record — the
#    classic crash-mid-write artifact) is truncated on replay: the resume
#    still replays every sealed record and converges to clean bytes.
file(APPEND ${jrn} "garbage-torn-tail-bytes")
execute_process(
  COMMAND ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
          --resume --out ${WORKDIR}/chaos_torn.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "resume over torn tail failed (exit ${rv})\n${stderr}")
endif()
if(NOT stderr MATCHES "computed=0 cached=0 replayed=5")
  message(FATAL_ERROR "torn-tail resume did not replay 5 cells: ${stderr}")
endif()
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${ref} ${WORKDIR}/chaos_torn.json)

# 7. Graceful interrupt: the drain failpoint cancels admission after the
#    first completed cell; the run exits 7 (interrupted, resumable) with
#    the finished cell journaled, and --resume completes cleanly.
file(REMOVE ${jrn})
expect_exit(7 ${CMAKE_COMMAND} -E env
            WCM_FAILPOINTS=runtime.campaign.interrupt
            ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --out ${WORKDIR}/chaos_int.json)
execute_process(
  COMMAND ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
          --resume --out ${WORKDIR}/chaos_int.json
  RESULT_VARIABLE rv OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "resume after interrupt failed (exit ${rv})\n${stderr}")
endif()
if(NOT stderr MATCHES "replayed=[1-9]")
  message(FATAL_ERROR "interrupted run journaled nothing: ${stderr}")
endif()
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${ref} ${WORKDIR}/chaos_int.json)

# 8. Resuming with no journal at all is just a fresh run.
file(REMOVE ${jrn})
expect_exit(0 ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --resume --out ${WORKDIR}/chaos_fresh.json)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${ref} ${WORKDIR}/chaos_fresh.json)

# 9. The journal never clobbers a file it does not recognize: a non-WCMJ
#    file at the journal path is an io error (exit 3) and is left intact.
file(WRITE ${jrn} "precious data that is definitely not a journal")
expect_exit(3 ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --out ${WORKDIR}/chaos_clobber.json)
file(READ ${jrn} precious)
if(NOT precious STREQUAL "precious data that is definitely not a journal")
  message(FATAL_ERROR "journal clobbered an unrecognized file")
endif()

file(REMOVE ${spec} ${jrn} ${ref} ${WORKDIR}/chaos_dead.json
     ${WORKDIR}/chaos_resumed.json ${WORKDIR}/chaos_torn.json
     ${WORKDIR}/chaos_int.json ${WORKDIR}/chaos_fresh.json
     ${WORKDIR}/chaos_nope.json ${WORKDIR}/chaos_clobber.json)
