// Fault-injection coverage: every registered failpoint fires at least once
// and surfaces its *typed* error — never std::logic_error or a raw
// std::runtime_error — so each error path is proven reachable and
// correctly classified.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "analyze/passes/verify.hpp"
#include "gpusim/device.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/trace.hpp"
#include "runtime/cache.hpp"
#include "runtime/journal.hpp"
#include "runtime/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "workload/inputs.hpp"
#include "workload/io.hpp"

namespace wcm {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }

  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("wcm_failpoint_" + std::to_string(::getpid()) + ".wcmi");

  std::vector<dmm::word> valid_keys_ = workload::random_permutation(64, 3);

  void write_valid_file() { workload::write_binary(path_, valid_keys_); }

  /// Run a tiny pairwise sort (one global merge round).
  void run_pairwise() {
    const sort::SortConfig cfg{5, 64, 32};
    const auto input = workload::make_input(workload::InputKind::random,
                                            cfg.tile() * 2, cfg, 1);
    (void)sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  }

  void run_multiway() {
    const sort::SortConfig cfg{5, 64, 32};
    const auto input = workload::make_input(workload::InputKind::random,
                                            cfg.tile() * 2, cfg, 1);
    (void)sort::multiway_merge_sort(input, cfg, gpusim::quadro_m4000(), 2);
  }
};

TEST_F(FaultInjectionTest, IoReadOpen) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.open");
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, IoReadAlloc) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.alloc");
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, IoReadTruncated) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.truncated");
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, IoReadChecksum) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.checksum");
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, IoWriteFail) {
  failpoint::scoped_arm fp("io.write.fail");
  EXPECT_THROW(workload::write_binary(path_, valid_keys_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, TraceReadMalformed) {
  failpoint::scoped_arm fp("trace.read.malformed");
  std::istringstream is("WCMT 32 1\nR 0:1\n");
  EXPECT_THROW((void)gpusim::read_trace(is), parse_error);
}

TEST_F(FaultInjectionTest, SimSmemAlloc) {
  failpoint::scoped_arm fp("sim.smem.alloc");
  EXPECT_THROW(gpusim::SharedMemory(32, 64), simulation_error);
}

TEST_F(FaultInjectionTest, SimSmemInvariant) {
  gpusim::SharedMemory shm(32, 64);
  failpoint::scoped_arm fp("sim.smem.invariant");
  const std::vector<gpusim::LaneRead> reads{{0, 0}};
  EXPECT_THROW((void)shm.warp_read(reads), simulation_error);
}

TEST_F(FaultInjectionTest, SortPairwiseRound) {
  failpoint::scoped_arm fp("sort.pairwise.round");
  EXPECT_THROW(run_pairwise(), simulation_error);
}

TEST_F(FaultInjectionTest, SortMultiwayRound) {
  failpoint::scoped_arm fp("sort.multiway.round");
  EXPECT_THROW(run_multiway(), simulation_error);
}

// Satellite contract: a fault injected between verification passes must
// surface as a typed wcm::error (nonzero CLI exit via the main() map) and
// must abort before any report is assembled — never a partially verified
// certificate.
TEST_F(FaultInjectionTest, AnalyzeVerifyPass) {
  failpoint::scoped_arm fp("analyze.verify.pass");
  analyze::passes::VerifyOptions vopts;
  vopts.ws = {2};
  vopts.e_max = 4;
  vopts.differential = false;
  EXPECT_THROW((void)analyze::passes::run_verify({"pairwise"}, vopts),
               simulation_error);
}

TEST_F(FaultInjectionTest, AnalyzeVerifyPassCarriesContext) {
  failpoint::scoped_arm fp("analyze.verify.pass");
  analyze::passes::VerifyOptions vopts;
  vopts.ws = {2};
  vopts.e_max = 4;
  vopts.differential = false;
  try {
    (void)analyze::passes::run_verify({"pairwise"}, vopts);
    FAIL() << "failpoint did not fire";
  } catch (const simulation_error& e) {
    EXPECT_EQ(e.code(), errc::simulation_invariant);
    EXPECT_NE(e.context().find("analyze.verify.pass"), std::string::npos);
  }
}

TEST_F(FaultInjectionTest, TelemetryExportWrite) {
  failpoint::scoped_arm fp("telemetry.export.write");
  std::ostringstream os;
  EXPECT_THROW(telemetry::write_chrome_trace(os), io_error);
}

TEST_F(FaultInjectionTest, TelemetryRegistrySnapshot) {
  failpoint::scoped_arm fp("telemetry.registry.snapshot");
  EXPECT_THROW((void)telemetry::registry().snapshot(), simulation_error);
}

// Satellite contract: a failing trace export must degrade gracefully —
// flush_trace() swallows the injected io_error, warns, and reports false
// so CLI callers can keep their exit code.
TEST_F(FaultInjectionTest, TraceExportFailureDegradesGracefully) {
  telemetry::set_tracing(true);
  { WCM_SPAN("doomed"); }
  telemetry::set_tracing(false);
  telemetry::set_trace_path(
      (std::filesystem::temp_directory_path() /
       ("wcm_flush_fail_" + std::to_string(::getpid()) + ".json"))
          .string());
  failpoint::scoped_arm fp("telemetry.export.write");
  std::ostringstream warn;
  EXPECT_FALSE(telemetry::flush_trace(&warn));
  EXPECT_NE(warn.str().find("trace export failed"), std::string::npos)
      << warn.str();
  EXPECT_NE(warn.str().find("run continues"), std::string::npos);
  EXPECT_TRUE(telemetry::trace_path().empty());
  telemetry::reset_trace();
}

// Satellite contract: a failed event-log write becomes a counter bump —
// the line vanishes, emit() never throws, and the log keeps working once
// the fault clears.
TEST_F(FaultInjectionTest, EventlogWriteFailureDegradesToTheDropCounter) {
  const std::string log = path_.string() + ".jsonl";
  telemetry::eventlog::reset_for_tests();
  telemetry::eventlog::set_path(log);
  {
    const failpoint::scoped_arm fp("telemetry.eventlog.write");
    telemetry::eventlog::emit("doomed", {});  // must not throw
  }
  EXPECT_EQ(telemetry::eventlog::dropped(), 1u);
  telemetry::eventlog::emit("survivor", {});
  EXPECT_EQ(telemetry::eventlog::dropped(), 1u);
  std::ifstream is(log);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_NE(line.find("\"event\":\"survivor\""), std::string::npos) << line;
  EXPECT_FALSE(std::getline(is, line)) << "dropped line was written: " << line;
  telemetry::eventlog::reset_for_tests();
  std::filesystem::remove(log);
}

// Satellite contract: an injected trace-context failure degrades the
// request to untraced — counted on serve.trace.drop — and never costs the
// client its response.
TEST_F(FaultInjectionTest, TraceInjectionFailureNeverCostsAResponse) {
  telemetry::registry().reset();
  telemetry::set_enabled(true);
  telemetry::set_tracing(true);  // trace minting is active, and fails
  const failpoint::scoped_arm fp("serve.trace.inject");
  serve::ServerConfig cfg;
  cfg.socket = "@wcm-fault-trace-" + std::to_string(::getpid());
  serve::Server server(cfg);
  server.set_log(nullptr);
  std::exception_ptr failure;
  std::thread thread([&] {
    try {
      (void)server.serve();
    } catch (...) {
      failure = std::current_exception();
    }
  });
  {
    serve::Client client = serve::connect_with_retry(cfg.socket, 5000);
    const auto reply =
        json::parse(client.roundtrip(
                        R"({"op":"generate","id":"g","params":)"
                        R"({"E":5,"b":64,"k":1},"trace":{"trace_id":"a1"}})"))
            .as_object();
    EXPECT_TRUE(reply.at("ok").as_bool());
    EXPECT_EQ(reply.at("id").as_string(), "g");
  }
  server.request_drain();
  thread.join();
  telemetry::set_tracing(false);
  if (failure) {
    std::rethrow_exception(failure);
  }
  EXPECT_GE(telemetry::registry().snapshot().counter_total(
                "serve.trace.drop"),
            1u);
  telemetry::set_enabled(false);
  telemetry::registry().reset();
  telemetry::reset_trace();
}

TEST_F(FaultInjectionTest, ErrorsCarryFailpointContext) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.checksum");
  try {
    (void)workload::read_binary(path_);
    FAIL() << "failpoint did not fire";
  } catch (const io_error& e) {
    EXPECT_EQ(e.code(), errc::io_failure);
    EXPECT_NE(e.context().find("io.read.checksum"), std::string::npos);
  }
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, DisarmedFailpointsCountEvaluations) {
  const auto before = failpoint::evaluations("io.read.open");
  write_valid_file();
  EXPECT_EQ(workload::read_binary(path_), valid_keys_);  // nothing armed
  EXPECT_EQ(failpoint::evaluations("io.read.open"), before + 1);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, SkipCountDelaysFiring) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.open", /*skip=*/2);
  EXPECT_EQ(workload::read_binary(path_), valid_keys_);
  EXPECT_EQ(workload::read_binary(path_), valid_keys_);
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, TimesLimitStopsFiring) {
  write_valid_file();
  failpoint::scoped_arm fp("io.read.open", /*skip=*/0, /*times=*/1);
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  EXPECT_EQ(workload::read_binary(path_), valid_keys_);  // budget spent
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, ScopedDisarmSuppressesAndRestores) {
  write_valid_file();
  failpoint::arm("io.read.open");
  {
    failpoint::scoped_disarm off("io.read.open");
    EXPECT_EQ(workload::read_binary(path_), valid_keys_);
  }
  EXPECT_TRUE(failpoint::armed("io.read.open"));
  EXPECT_THROW((void)workload::read_binary(path_), io_error);
  failpoint::disarm("io.read.open");
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, ScopedDisarmAllSuppressesEverything) {
  write_valid_file();
  failpoint::arm("io.read.open");
  failpoint::arm("io.read.checksum");
  {
    failpoint::scoped_disarm off;
    EXPECT_EQ(workload::read_binary(path_), valid_keys_);
  }
  EXPECT_TRUE(failpoint::armed("io.read.open"));
  EXPECT_TRUE(failpoint::armed("io.read.checksum"));
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, EnvVarArmsFailpoints) {
  ASSERT_EQ(::setenv("WCM_FAILPOINTS", "io.read.open;io.read.checksum=1",
                     /*overwrite=*/1),
            0);
  EXPECT_EQ(failpoint::configure_from_env(), 2u);
  EXPECT_TRUE(failpoint::armed("io.read.open"));
  EXPECT_TRUE(failpoint::armed("io.read.checksum"));

  write_valid_file();
  failpoint::disarm("io.read.open");
  // skip=1: first read survives, second hits the checksum failpoint.
  EXPECT_EQ(workload::read_binary(path_), valid_keys_);
  EXPECT_THROW((void)workload::read_binary(path_), io_error);

  ASSERT_EQ(::unsetenv("WCM_FAILPOINTS"), 0);
  (void)failpoint::configure_from_env();  // re-sync cached env value
  failpoint::disarm_all();
  std::filesystem::remove(path_);
}

TEST_F(FaultInjectionTest, EnvVarRejectsGarbageSpec) {
  // Every malformed shape is a parse_error, never a silent no-op: an empty
  // site name, non-numeric counts, trailing garbage after a count, and a
  // missing times value all reject the whole variable.
  for (const char* bad :
       {"io.read.open=abc", "=1", "io.read.open=", "io.read.open=1x",
        "io.read.open=1:", "io.read.open=1:2y", "io.read.open=1:2:3",
        "io.read.open=-1"}) {
    ASSERT_EQ(::setenv("WCM_FAILPOINTS", bad, 1), 0);
    EXPECT_THROW((void)failpoint::configure_from_env(), parse_error) << bad;
  }
  ASSERT_EQ(::unsetenv("WCM_FAILPOINTS"), 0);
  (void)failpoint::configure_from_env();
  failpoint::disarm_all();
}

TEST_F(FaultInjectionTest, EnvVarMalformedSpecArmsNothing) {
  // Validate-then-apply: a parse failure anywhere in the list must not arm
  // the well-formed entries that preceded it.
  ASSERT_EQ(::setenv("WCM_FAILPOINTS", "io.read.open;io.read.checksum=zz", 1),
            0);
  EXPECT_THROW((void)failpoint::configure_from_env(), parse_error);
  EXPECT_FALSE(failpoint::armed("io.read.open"));
  EXPECT_FALSE(failpoint::armed("io.read.checksum"));
  ASSERT_EQ(::unsetenv("WCM_FAILPOINTS"), 0);
  (void)failpoint::configure_from_env();
  failpoint::disarm_all();
}

TEST_F(FaultInjectionTest, EnvVarIgnoresEmptySegments) {
  // Stray separators are harmless; only named entries count.
  ASSERT_EQ(::setenv("WCM_FAILPOINTS", ";io.read.open;;io.read.checksum,", 1),
            0);
  EXPECT_EQ(failpoint::configure_from_env(), 2u);
  EXPECT_TRUE(failpoint::armed("io.read.open"));
  EXPECT_TRUE(failpoint::armed("io.read.checksum"));
  ASSERT_EQ(::unsetenv("WCM_FAILPOINTS"), 0);
  (void)failpoint::configure_from_env();
  failpoint::disarm_all();
}

TEST_F(FaultInjectionTest, KnownListsAllBuiltins) {
  const auto names = failpoint::known();
  for (const char* expected :
       {"io.read.open", "io.read.alloc", "io.read.truncated",
        "io.read.checksum", "io.write.fail", "trace.read.malformed",
        "sim.smem.alloc", "sim.smem.invariant", "sort.pairwise.round",
        "sort.multiway.round", "runtime.worker.job", "runtime.cache.load",
        "runtime.cache.store", "runtime.journal.append",
        "runtime.journal.replay", "telemetry.export.write",
        "telemetry.registry.snapshot", "telemetry.eventlog.write",
        "serve.accept", "serve.read", "serve.write", "serve.dispatch",
        "serve.trace.inject"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

// Exhaustive coverage: arm every registered failpoint in turn, drive the
// code path it instruments, and assert the matching typed error surfaces.
// Self-contained (ctest runs each TEST in its own process), and fails if a
// new failpoint is registered without a driver here.
TEST_F(FaultInjectionTest, EveryRegisteredFailpointFired) {
  struct Driver {
    errc expected;
    std::function<void()> run;
    /// False for sites that swallow the injected error by design (the
    /// event log's degrade contract); the loop then only checks that the
    /// failpoint actually fired.
    bool throws = true;
  };
  const std::map<std::string, Driver> drivers{
      {"io.read.open",
       {errc::io_failure, [&] { (void)workload::read_binary(path_); }}},
      {"io.read.alloc",
       {errc::io_failure, [&] { (void)workload::read_binary(path_); }}},
      {"io.read.truncated",
       {errc::io_failure, [&] { (void)workload::read_binary(path_); }}},
      {"io.read.checksum",
       {errc::io_failure, [&] { (void)workload::read_binary(path_); }}},
      {"io.write.fail",
       {errc::io_failure,
        [&] { workload::write_binary(path_, valid_keys_); }}},
      {"trace.read.malformed",
       {errc::parse_failure,
        [] {
          std::istringstream is("WCMT 32 1\nR 0:1\n");
          (void)gpusim::read_trace(is);
        }}},
      {"sim.smem.alloc",
       {errc::simulation_invariant,
        [] { gpusim::SharedMemory shm(32, 64); }}},
      {"sim.smem.invariant",
       {errc::simulation_invariant,
        [] {
          gpusim::SharedMemory shm(32, 64);
          const std::vector<gpusim::LaneRead> reads{{0, 0}};
          (void)shm.warp_read(reads);
        }}},
      {"sort.pairwise.round",
       {errc::simulation_invariant, [&] { run_pairwise(); }}},
      {"sort.multiway.round",
       {errc::simulation_invariant, [&] { run_multiway(); }}},
      {"runtime.worker.job",
       {errc::simulation_invariant,
        [] {
          runtime::JobGraph graph;
          graph.add([](runtime::JobContext&) {});
          runtime::RunOptions opts;
          opts.threads = 1;
          runtime::run(graph, opts).rethrow_first_error();
        }}},
      {"runtime.cache.load",
       {errc::io_failure,
        [&] {
          const auto cache_path = path_.string() + ".wcmc";
          {
            failpoint::scoped_disarm off("runtime.cache.store");
            runtime::ResultCache(u64{1}).store(cache_path);
          }
          const auto guard = std::filesystem::path(cache_path);
          try {
            (void)runtime::ResultCache::load(guard, 1);
          } catch (...) {
            std::filesystem::remove(guard);
            throw;
          }
          std::filesystem::remove(guard);
        }}},
      {"runtime.cache.store",
       {errc::io_failure,
        [&] {
          runtime::ResultCache(u64{1}).store(path_.string() + ".wcmc");
        }}},
      {"runtime.journal.append",
       {errc::io_failure,
        [&] {
          const auto jpath = std::filesystem::path(path_.string() + ".wcmj");
          try {
            runtime::JournalWriter writer(jpath, 1, 1,
                                          runtime::JournalReplay{});
            writer.append(1, runtime::CellMetrics{});
          } catch (...) {
            std::filesystem::remove(jpath);
            throw;
          }
          std::filesystem::remove(jpath);
        }}},
      {"runtime.journal.replay",
       {errc::io_failure,
        [&] {
          // The failpoint fires before the file is touched; no file needed.
          (void)runtime::replay_journal(path_.string() + ".wcmj", 1, 1);
        }}},
      {"telemetry.export.write",
       {errc::io_failure,
        [] {
          std::ostringstream os;
          telemetry::write_chrome_trace(os);
        }}},
      {"telemetry.registry.snapshot",
       {errc::simulation_invariant,
        [] { (void)telemetry::registry().snapshot(); }}},
      // The wcmd daemon catches these at its I/O sites (dropping the
      // connection or logging a failed write); the hooks in
      // serve::detail expose the sites for direct coverage here, and
      // tests/test_serve_daemon.cpp proves the daemon-level handling.
      {"serve.accept", {errc::io_failure, [] { serve::detail::accept_failpoint(); }}},
      {"serve.read", {errc::io_failure, [] { serve::detail::read_failpoint(); }}},
      {"serve.write", {errc::io_failure, [] { serve::detail::write_failpoint(); }}},
      {"serve.dispatch",
       {errc::simulation_invariant,
        [] { serve::detail::dispatch_failpoint(); }}},
      {"serve.trace.inject",
       {errc::simulation_invariant,
        [] { serve::detail::trace_inject_failpoint(); }}},
      // emit() swallows the injected io_error by contract — a dying
      // event log may never cost a response — so this driver checks the
      // degrade path (dropped tally) instead of a surfaced error.
      {"telemetry.eventlog.write",
       {errc::io_failure,
        [&] {
          telemetry::eventlog::reset_for_tests();
          telemetry::eventlog::set_path(path_.string() + ".jsonl");
          const u64 before = telemetry::eventlog::dropped();
          telemetry::eventlog::emit("doomed", {});
          EXPECT_EQ(telemetry::eventlog::dropped(), before + 1);
          telemetry::eventlog::reset_for_tests();
          std::filesystem::remove(path_.string() + ".jsonl");
        },
        /*throws=*/false}},
  };

  for (const auto& name : failpoint::known()) {
    const auto it = drivers.find(name);
    ASSERT_NE(it, drivers.end())
        << "failpoint '" << name << "' has no coverage driver";
    write_valid_file();
    const auto fired_before = failpoint::triggers(name);
    {
      failpoint::scoped_arm fp(name);
      if (!it->second.throws) {
        it->second.run();  // the driver asserts its own degrade path
      } else {
        try {
          it->second.run();
          FAIL() << "failpoint '" << name << "' did not fire";
        } catch (const wcm::error& e) {
          EXPECT_EQ(e.code(), it->second.expected)
              << name << " surfaced the wrong error class: " << e.what();
          EXPECT_NE(e.context().find(name), std::string::npos)
              << name << " error lacks failpoint context: " << e.what();
        }
      }
    }
    EXPECT_GE(failpoint::triggers(name), fired_before + 1) << name;
    EXPECT_GE(failpoint::evaluations(name), failpoint::triggers(name));
    std::filesystem::remove(path_);
  }
}

}  // namespace
}  // namespace wcm
