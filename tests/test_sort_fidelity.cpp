// Tests for the merge-read accounting fidelity modes: the paper's
// consumed-element model vs the realistic initial-heads + refill stream.
// Same functional result; the attack survives both countings.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/conflict_model.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny(bool realistic) {
  SortConfig cfg{5, 64, 32};
  cfg.realistic_refills = realistic;
  return cfg;
}

TEST(Fidelity, BothModesSortIdentically) {
  const std::size_t n = tiny(false).tile() * 4;
  const auto input = workload::random_permutation(n, 21);
  std::vector<word> out_model, out_real;
  (void)pairwise_merge_sort(input, tiny(false), gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out_model);
  (void)pairwise_merge_sort(input, tiny(true), gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out_real);
  EXPECT_EQ(out_model, out_real);
  EXPECT_EQ(out_model, std_sort(input));
}

TEST(Fidelity, RealisticModeStillOneAccessPerElementPlusHeads) {
  const std::size_t n = tiny(false).tile() * 4;
  const auto input = workload::random_permutation(n, 5);
  const auto dev = gpusim::quadro_m4000();
  const auto model = pairwise_merge_sort(input, tiny(false), dev);
  const auto real = pairwise_merge_sort(input, tiny(true), dev);
  // Consumed-model: exactly one merge read per element per round.
  // Realistic: up to two initial head loads per thread extra, minus the
  // refills that never happen on exhausted segments.
  const auto& m = model.rounds.back().kernel.shared_merge_reads;
  const auto& r = real.rounds.back().kernel.shared_merge_reads;
  EXPECT_EQ(m.requests, n);
  EXPECT_LE(r.requests, n + 2 * (n / tiny(false).E));
  EXPECT_GE(r.requests, n - (n / tiny(false).E));
}

TEST(Fidelity, AttackSurvivesRealisticCounting) {
  // An aligned column's refills collide one bank over: the constructed
  // input's merge reads stay heavily serialized under the realistic model
  // (within ~20% of the consumed-model beta_2 = E), and far above random.
  const std::size_t n = tiny(false).tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, tiny(false),
                           3);
  const auto random = workload::random_permutation(n, 3);

  const auto worst_real = pairwise_merge_sort(worst, tiny(true), dev);
  const auto random_real = pairwise_merge_sort(random, tiny(true), dev);
  const double beta2_worst =
      gpusim::beta2(worst_real.rounds.back().kernel);
  const double beta2_random =
      gpusim::beta2(random_real.rounds.back().kernel);
  const double target = core::exact_beta2_prediction(32, 5);
  EXPECT_GT(beta2_worst, 0.75 * target);
  EXPECT_GT(beta2_worst, 1.2 * beta2_random);
}

TEST(Fidelity, RealisticModeCostsSlightlyMore) {
  // The two initial head loads add steps; time should not decrease.
  const std::size_t n = tiny(false).tile() * 4;
  const auto input = workload::random_permutation(n, 5);
  const auto dev = gpusim::quadro_m4000();
  const auto model = pairwise_merge_sort(input, tiny(false), dev);
  const auto real = pairwise_merge_sort(input, tiny(true), dev);
  EXPECT_GE(real.totals.shared.steps, model.totals.shared.steps);
}

}  // namespace
}  // namespace wcm::sort
