// Tests for the warp assignment representation, evaluator, and renderer.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/assignment.hpp"
#include "core/warp_construction.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

WarpAssignment uniform(u32 w, u32 E, u32 from_a) {
  WarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.threads.assign(w, ThreadAssign{from_a, E - from_a, true});
  return wa;
}

TEST(WarpAssignment, Validation) {
  auto wa = uniform(32, 5, 2);
  wa.validate();
  wa.threads[3].from_a = 3;  // now sums to 6
  EXPECT_THROW(wa.validate(), contract_error);
  wa.threads.pop_back();
  EXPECT_THROW(wa.validate(), contract_error);
}

TEST(WarpAssignment, Totals) {
  const auto wa = uniform(32, 5, 2);
  EXPECT_EQ(wa.total_a(), 64u);
  EXPECT_EQ(wa.total_b(), 96u);
}

TEST(WarpAssignment, MirrorSwapsRoles) {
  const auto wa = uniform(32, 5, 2);
  const auto m = wa.mirrored();
  EXPECT_EQ(m.total_a(), wa.total_b());
  EXPECT_EQ(m.total_b(), wa.total_a());
  EXPECT_FALSE(m.threads[0].a_first);
  const auto mm = m.mirrored();
  EXPECT_EQ(mm.total_a(), wa.total_a());
  EXPECT_TRUE(mm.threads[0].a_first);
}

// Sorted order with E | w: every thread's run starts at bank (tE mod w);
// with gcd(w, E) = d, every d-th thread aligns (the Figure 1 situation).
TEST(Evaluate, SortedOrderPowerOfTwoEIsFullyConflicted) {
  // E = 8, w = 32: d = 8; threads 0, 4, 8, ... start at bank 0.  In sorted
  // order, at step j, w/d = 4 A-threads plus B-threads hit the same bank.
  const u32 w = 32, E = 8;
  const auto wa = sorted_order_warp(w, E);
  const auto eval = evaluate_warp(wa, 0);
  // Every aligned element: threads whose start bank is 0.
  // A has 16 threads, stride E=8 -> starts at banks 0,8,16,24,0,...: 4
  // aligned threads; same for B; total (4+4)*E = 64.
  EXPECT_EQ(eval.aligned, 64u);
  EXPECT_GE(eval.totals.max_bank_degree, 8u);  // 8 threads per bank per step
}

TEST(Evaluate, AlignedCountWindowStart) {
  // A single thread scanning A at bank 0 aligns all E elements for s=0 and
  // none for s=1.
  WarpAssignment wa;
  wa.w = 8;
  wa.E = 3;
  wa.threads.assign(8, ThreadAssign{0, 3, false});
  wa.threads[0] = {3, 0, true};
  const auto e0 = evaluate_warp(wa, 0);
  const auto e1 = evaluate_warp(wa, 1);
  // Thread 0's three A elements at banks 0,1,2 read at steps 0,1,2.
  EXPECT_GE(e0.aligned, 3u);
  EXPECT_LT(e1.aligned, e0.aligned + 3);
  EXPECT_THROW((void)evaluate_warp(wa, 8), contract_error);
}

TEST(Evaluate, StepDegreeHasLengthE) {
  const auto wa = worst_case_warp(32, 15);
  const auto eval = evaluate_warp(wa, 0);
  EXPECT_EQ(eval.step_degree.size(), 15u);
  for (const auto d : eval.step_degree) {
    EXPECT_EQ(d, 15u);  // Theorem 3: every step is E-way serialized
  }
}

TEST(Evaluate, TotalsConsistency) {
  const auto wa = worst_case_warp(32, 15);
  const auto eval = evaluate_warp(wa, 0);
  // Requests: w threads x E steps.
  EXPECT_EQ(eval.totals.requests, 32u * 15u);
  // Serialization = sum of per-step max degrees.
  std::size_t sum = 0;
  for (const auto d : eval.step_degree) {
    sum += d;
  }
  EXPECT_EQ(eval.totals.serialization, sum);
  EXPECT_EQ(eval.totals.replays, sum - 15u);
}

TEST(Render, ConflictHeatmapShape) {
  const auto wa = worst_case_warp(32, 5);
  const std::string s = render_conflict_heatmap(wa);
  // Header + separator + E rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2 + 5);
  // Theorem 3: at step j, bank j carries 5 threads — a "5" appears in
  // every data row, and the dot marks empty banks.
  EXPECT_NE(s.find(" 5"), std::string::npos);
  EXPECT_NE(s.find(" ."), std::string::npos);
}

TEST(Render, HeatmapDegreesSumToW) {
  const auto wa = worst_case_warp(32, 7);
  const std::string s = render_conflict_heatmap(wa);
  // Each data row's digits sum to w = 32 (every lane reads once per step).
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);  // separator
  while (std::getline(is, line)) {
    const auto bar = line.find('|');
    ASSERT_NE(bar, std::string::npos);
    int sum = 0;
    for (std::size_t i = bar + 1; i < line.size(); ++i) {
      if (line[i] >= '0' && line[i] <= '9') {
        sum += line[i] - '0';
      } else if (line[i] >= 'a' && line[i] <= 'z') {
        sum += 10 + line[i] - 'a';
      }
    }
    EXPECT_EQ(sum, 32) << line;
  }
}

TEST(Render, ContainsThreadLabelsAndBankRows) {
  const auto wa = worst_case_warp(16, 7);
  const std::string s = render_warp(wa);
  EXPECT_NE(s.find("A (64 elements):"), std::string::npos);
  EXPECT_NE(s.find("B (48 elements):"), std::string::npos);
  // 16 bank rows per list plus two headers.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2 + 16 + 16);
  // Thread 15 appears somewhere.
  EXPECT_NE(s.find("15"), std::string::npos);
}

}  // namespace
}  // namespace wcm::core
