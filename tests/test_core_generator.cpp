// Tests for the full worst-case input generator: permutation validity, the
// unmerge round-trip through the merge tree, the attack actually landing
// (exact beta_2 = predicted on every attacked round), family generation,
// and the intra-block extension.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "core/unmerge.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::core {
namespace {

sort::SortConfig cfg_small() { return sort::SortConfig{5, 64, 32}; }

TEST(Generator, ProducesPermutation) {
  const auto cfg = cfg_small();
  for (const std::size_t k : {1u, 2u, 4u}) {
    const auto v = worst_case_input(cfg.tile() << k, cfg);
    EXPECT_TRUE(workload::is_permutation_of_iota(v)) << "k=" << k;
  }
}

TEST(Generator, SizeContract) {
  const auto cfg = cfg_small();
  EXPECT_THROW((void)worst_case_input(cfg.tile(), cfg), contract_error);
  EXPECT_THROW((void)worst_case_input(cfg.tile() * 3, cfg), contract_error);
  EXPECT_THROW((void)worst_case_input(cfg.tile() * 2 + 1, cfg),
               contract_error);
}

TEST(Generator, RejectsNonCoprimeE) {
  sort::SortConfig cfg{8, 64, 32};  // E = 8: power-of-two regime
  EXPECT_THROW((void)worst_case_input(cfg.tile() * 2, cfg), contract_error);
}

TEST(Generator, DeterministicWithoutSeed) {
  const auto cfg = cfg_small();
  const auto a = worst_case_input(cfg.tile() * 4, cfg);
  const auto b = worst_case_input(cfg.tile() * 4, cfg);
  EXPECT_EQ(a, b);
}

TEST(Generator, FamilyMembersDifferButAllAttack) {
  const auto cfg = cfg_small();
  const std::size_t n = cfg.tile() * 4;
  AttackOptions o1, o2;
  o1.tile_shuffle_seed = 1;
  o2.tile_shuffle_seed = 2;
  const auto v1 = worst_case_input(n, cfg, o1);
  const auto v2 = worst_case_input(n, cfg, o2);
  EXPECT_NE(v1, v2);
  EXPECT_TRUE(workload::is_permutation_of_iota(v1));
  EXPECT_TRUE(workload::is_permutation_of_iota(v2));

  const auto dev = gpusim::quadro_m4000();
  const double target = predicted_beta2(cfg.w, cfg.E);
  for (const auto& v : {v1, v2}) {
    const auto report = sort::pairwise_merge_sort(v, cfg, dev);
    for (std::size_t i = 1; i < report.rounds.size(); ++i) {
      EXPECT_NEAR(gpusim::beta2(report.rounds[i].kernel), target, 1e-9)
          << "member seed round " << i;
    }
  }
}

// The central end-to-end claim: on the constructed input, every global
// merge round's lock-step merge reads serialize exactly as Theorem 3 / 9
// predict — beta_2 equals aligned(w, E) / E on the nose.
TEST(Generator, EveryGlobalRoundHitsPredictedBeta2) {
  for (const sort::SortConfig cfg :
       {sort::SortConfig{5, 64, 32},      // small E
        sort::SortConfig{7, 128, 32},     // small E, more warps
        sort::SortConfig{17, 64, 32}}) {  // large E
    const std::size_t n = cfg.tile() * 8;
    const auto input = worst_case_input(n, cfg);
    const auto report =
        sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
    const double target = predicted_beta2(cfg.w, cfg.E);
    ASSERT_EQ(report.rounds.size(), 4u);
    for (std::size_t i = 1; i < report.rounds.size(); ++i) {
      EXPECT_NEAR(gpusim::beta2(report.rounds[i].kernel), target, 1e-9)
          << cfg.to_string() << " round " << i;
    }
  }
}

TEST(Generator, SortedOutputIsCorrect) {
  const auto cfg = cfg_small();
  const std::size_t n = cfg.tile() * 8;
  const auto input = worst_case_input(n, cfg);
  std::vector<dmm::word> out;
  (void)sort::pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                                  sort::MergeSortLibrary::thrust, &out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], static_cast<dmm::word>(i));
  }
}

TEST(Generator, IntraBlockExtensionAttacksBaseCase) {
  const auto cfg = cfg_small();  // tile 320, w*E = 160: last intra round
  const std::size_t n = cfg.tile() * 4;
  AttackOptions with_intra;
  with_intra.attack_intra_block = true;
  const auto v_intra = worst_case_input(n, cfg, with_intra);
  const auto v_plain = worst_case_input(n, cfg);
  EXPECT_TRUE(workload::is_permutation_of_iota(v_intra));

  const auto dev = gpusim::quadro_m4000();
  const auto r_intra = sort::pairwise_merge_sort(v_intra, cfg, dev);
  const auto r_plain = sort::pairwise_merge_sort(v_plain, cfg, dev);
  // The extension adds conflicts in the block sort without giving up any in
  // the global rounds.
  EXPECT_GT(r_intra.rounds[0].kernel.shared_merge_reads.replays,
            r_plain.rounds[0].kernel.shared_merge_reads.replays);
  for (std::size_t i = 1; i < r_intra.rounds.size(); ++i) {
    EXPECT_EQ(r_intra.rounds[i].kernel.shared_merge_reads.replays,
              r_plain.rounds[i].kernel.shared_merge_reads.replays);
  }
}

TEST(Generator, StrategyVariantsAllAttackEqually) {
  // Each Lemma 2 strategy yields a *different* permutation whose attacked
  // rounds nevertheless serialize identically (beta_2 = E).
  const auto cfg = cfg_small();
  const std::size_t n = cfg.tile() * 4;
  const auto dev = gpusim::quadro_m4000();
  std::vector<std::vector<dmm::word>> inputs;
  for (const auto s :
       {AlignmentStrategy::front_to_back, AlignmentStrategy::back_to_front,
        AlignmentStrategy::outside_in}) {
    AttackOptions opts;
    opts.small_e_strategy = s;
    inputs.push_back(worst_case_input(n, cfg, opts));
    const auto report = sort::pairwise_merge_sort(inputs.back(), cfg, dev);
    for (std::size_t i = 1; i < report.rounds.size(); ++i) {
      EXPECT_NEAR(gpusim::beta2(report.rounds[i].kernel),
                  predicted_beta2(cfg.w, cfg.E), 1e-9)
          << to_string(s) << " round " << i;
    }
  }
  EXPECT_NE(inputs[0], inputs[1]);
  EXPECT_NE(inputs[0], inputs[2]);
  EXPECT_NE(inputs[1], inputs[2]);
}

TEST(Generator, RelaxedAttackDialsConflictsDown) {
  // Sec. V item 3: attacking only the last m global rounds yields
  // permutations with proportionally fewer conflicts.  The attacked rounds
  // still hit beta_2 = E exactly; the released rounds drop to ~1.
  const auto cfg = cfg_small();
  const std::size_t n = cfg.tile() * 8;  // 3 global rounds
  const auto dev = gpusim::quadro_m4000();
  const double target = predicted_beta2(cfg.w, cfg.E);

  for (const std::size_t m : {0u, 1u, 2u, 3u}) {
    AttackOptions opts;
    opts.max_attacked_rounds = m;
    const auto input = worst_case_input(n, cfg, opts);
    const auto report = sort::pairwise_merge_sort(input, cfg, dev);
    ASSERT_EQ(report.rounds.size(), 4u);
    // Rounds execute first-to-last; the dial attacks the *last* m.
    for (std::size_t i = 1; i < report.rounds.size(); ++i) {
      const bool should_attack = i > report.rounds.size() - 1 - m;
      const double beta2 = gpusim::beta2(report.rounds[i].kernel);
      if (should_attack) {
        EXPECT_NEAR(beta2, target, 1e-9) << "m=" << m << " round " << i;
      } else {
        EXPECT_LT(beta2, target / 2.0) << "m=" << m << " round " << i;
      }
    }
  }
}

TEST(Generator, RelaxedAttackTotalsScaleWithRounds) {
  const auto cfg = cfg_small();
  const std::size_t n = cfg.tile() * 8;
  const auto dev = gpusim::quadro_m4000();
  std::vector<std::size_t> totals;
  for (const std::size_t m : {0u, 1u, 2u, 3u}) {
    AttackOptions opts;
    opts.max_attacked_rounds = m;
    const auto input = worst_case_input(n, cfg, opts);
    const auto report = sort::pairwise_merge_sort(input, cfg, dev);
    std::size_t merge_replays = 0;
    for (std::size_t i = 1; i < report.rounds.size(); ++i) {
      merge_replays += report.rounds[i].kernel.shared_merge_reads.replays;
    }
    totals.push_back(merge_replays);
  }
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_GT(totals[i], totals[i - 1]) << "m=" << i;
  }
}

TEST(Generator, AttackedRoundCount) {
  const auto cfg = cfg_small();
  EXPECT_EQ(attacked_round_count(cfg.tile() * 2, cfg), 1u);
  EXPECT_EQ(attacked_round_count(cfg.tile() * 16, cfg), 4u);
  EXPECT_THROW((void)attacked_round_count(cfg.tile() * 3, cfg),
               contract_error);
}

TEST(Generator, NoAttackOptionYieldsNeutralInput) {
  const auto cfg = cfg_small();
  AttackOptions off;
  off.attack_global_rounds = false;
  const auto v = worst_case_input(cfg.tile() * 4, cfg, off);
  // Neutral masks all the way down: the input is fully sorted.
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace wcm::core
