// Observability-layer unit tests: log-scale histogram bounds and bucket
// quantiles (registry), sliding-window latency stats and SLO burn rate,
// the Prometheus text exposition, the JSONL event log (including its
// never-throw failure contract), and the bounded span buffers behind
// WCM_TRACE_MAX_SPANS / telemetry.dropped_spans.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/eventlog.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sliding.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_context.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace wcm::telemetry {
namespace {

struct MetricsOn {
  MetricsOn() {
    registry().reset();
    set_enabled(true);
  }
  ~MetricsOn() {
    set_enabled(false);
    registry().reset();
  }
};

// ---- log-scale bounds ----------------------------------------------------

TEST(LogScaleBounds, CoversTheRangeGeometrically) {
  const auto bounds = log_scale_bounds(0.01, 10000.0, 3);
  ASSERT_FALSE(bounds.empty());
  EXPECT_NEAR(bounds.front(), 0.01, 1e-9);
  EXPECT_GE(bounds.back(), 10000.0);
  // Geometric spacing: each step multiplies by 10^(1/3).
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 1.0 / 3.0), 1e-6);
  }
  // Five decades above covered with 3 per decade: 16 bounds.
  EXPECT_EQ(bounds.size(), 19u);
}

TEST(LogScaleBounds, RejectsDegenerateRanges) {
  EXPECT_THROW(log_scale_bounds(0.0, 1.0, 3), contract_error);
  EXPECT_THROW(log_scale_bounds(-1.0, 1.0, 3), contract_error);
  EXPECT_THROW(log_scale_bounds(1.0, 1.0, 3), contract_error);
  EXPECT_THROW(log_scale_bounds(2.0, 1.0, 3), contract_error);
  EXPECT_THROW(log_scale_bounds(0.1, 10.0, 0), contract_error);
}

TEST(BucketQuantile, InterpolatesInsideTheSelectedBucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // 10 observations in (1,2], none elsewhere.
  const std::vector<u64> buckets = {0, 10, 0, 0};
  EXPECT_NEAR(bucket_quantile(bounds, buckets, 0.0), 1.1, 1e-9);
  EXPECT_NEAR(bucket_quantile(bounds, buckets, 0.5), 1.5, 1e-9);
  EXPECT_NEAR(bucket_quantile(bounds, buckets, 1.0), 2.0, 1e-9);
}

TEST(BucketQuantile, EmptyAndOverflowBehave) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(bucket_quantile(bounds, {0, 0, 0}, 0.99), 0.0);
  // Everything in the overflow bucket clamps to the last finite bound.
  EXPECT_EQ(bucket_quantile(bounds, {0, 0, 5}, 0.99), 2.0);
}

TEST(BucketQuantile, ResolvesSubMillisecondAndMultiSecondFromOneLayout) {
  // The serve.latency_ms layout must distinguish a 0.05 ms cache hit from
  // a 2 s campaign (the satellite's motivating case).
  const auto bounds = log_scale_bounds(0.01, 10000.0, 3);
  Histogram fast(bounds);
  for (int i = 0; i < 100; ++i) {
    fast.observe(0.05);
  }
  const double fast_p99 = bucket_quantile(bounds, fast.bucket_counts(), 0.99);
  EXPECT_GT(fast_p99, 0.01);
  EXPECT_LT(fast_p99, 0.5);
  Histogram slow(bounds);
  for (int i = 0; i < 100; ++i) {
    slow.observe(2000.0);
  }
  const double slow_p99 = bucket_quantile(bounds, slow.bucket_counts(), 0.99);
  EXPECT_GT(slow_p99, 500.0);
}

// ---- sliding window + burn rate ------------------------------------------

constexpr u64 kSecond = 1'000'000'000ULL;

TEST(SlidingStatsTest, EvictsOutsideTheWindow) {
  SlidingStats stats(10.0, 100.0);
  stats.observe(1 * kSecond, 5.0);
  stats.observe(2 * kSecond, 7.0);
  stats.observe(14 * kSecond, 9.0);
  const auto sum = stats.summarize(15 * kSecond);
  // The 1 s and 2 s samples are older than 15-10=5 s; only 9.0 remains.
  EXPECT_EQ(sum.count, 1u);
  EXPECT_EQ(sum.p50_ms, 9.0);
  EXPECT_EQ(sum.p99_ms, 9.0);
}

TEST(SlidingStatsTest, BurnRateIsViolationRateOverErrorBudget) {
  SlidingStats stats(60.0, 100.0, 0.99);  // 1% error budget
  // 2 of 100 over SLO: violation rate 2%, budget 1% -> burn rate 2.
  for (int i = 0; i < 98; ++i) {
    stats.observe(kSecond, 10.0);
  }
  stats.observe(kSecond, 200.0);
  stats.observe(kSecond, 300.0);
  const auto sum = stats.summarize(2 * kSecond);
  EXPECT_EQ(sum.count, 100u);
  EXPECT_EQ(sum.over_slo, 2u);
  EXPECT_NEAR(sum.burn_rate, 2.0, 1e-9);
  EXPECT_LE(sum.p50_ms, 100.0);
  EXPECT_GE(sum.p99_ms, 200.0);
}

TEST(SlidingStatsTest, CleanWindowBurnsNothing) {
  SlidingStats stats(60.0, 100.0);
  for (int i = 0; i < 50; ++i) {
    stats.observe(kSecond, 1.0);
  }
  EXPECT_EQ(stats.summarize(kSecond).burn_rate, 0.0);
}

TEST(SlidingStatsTest, BoundedByMaxSamples) {
  SlidingStats stats(1e6, 100.0, 0.99, 16);
  for (int i = 0; i < 1000; ++i) {
    stats.observe(kSecond + static_cast<u64>(i), static_cast<double>(i));
  }
  EXPECT_LE(stats.summarize(kSecond + 1000).count, 16u);
}

TEST(SlidingStatsTest, RejectsBadConfig) {
  EXPECT_THROW(SlidingStats(0.0, 100.0), contract_error);
  EXPECT_THROW(SlidingStats(60.0, 100.0, 1.5), contract_error);
  EXPECT_THROW(SlidingStats(60.0, 100.0, 0.99, 0), contract_error);
}

// ---- Prometheus exposition -----------------------------------------------

TEST(Exposition, NamesAreSanitizedAndCountersSuffixed) {
  EXPECT_EQ(prometheus_name("serve.requests", MetricKind::counter),
            "serve_requests_total");
  EXPECT_EQ(prometheus_name("serve.queue.depth", MetricKind::gauge),
            "serve_queue_depth");
  EXPECT_EQ(prometheus_name("serve.latency_ms", MetricKind::histogram),
            "serve_latency_ms");
}

TEST(Exposition, RendersTypesLabelsAndHistogramBuckets) {
  const MetricsOn guard;
  Registry& reg = registry();
  reg.counter("serve.requests").add(5);
  reg.counter("sim.rounds", {{"engine", "pairwise"}}).add(3);
  reg.gauge("serve.queue.depth").set(2.0);
  Histogram& h = reg.histogram("serve.latency_ms", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  std::ostringstream os;
  write_prometheus(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_requests_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("sim_rounds_total{engine=\"pairwise\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_latency_ms histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="10" holds 2, +Inf holds 3.
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_count 3\n"), std::string::npos);
}

TEST(Exposition, EscapesLabelValues) {
  const MetricsOn guard;
  registry().counter("odd.metric", {{"path", "a\\b\"c\nd"}}).add(1);
  std::ostringstream os;
  write_prometheus(os, registry().snapshot());
  EXPECT_NE(os.str().find("{path=\"a\\\\b\\\"c\\nd\"}"), std::string::npos);
}

// ---- event log -----------------------------------------------------------

struct EventLogFile {
  EventLogFile() {
    path = std::filesystem::temp_directory_path() /
           ("wcm-eventlog-test-" + std::to_string(::getpid()) + ".jsonl");
    eventlog::reset_for_tests();
    eventlog::set_path(path.string());
  }
  ~EventLogFile() {
    eventlog::reset_for_tests();
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  [[nodiscard]] std::vector<json::Value> lines() const {
    std::ifstream is(path);
    std::vector<json::Value> out;
    std::string line;
    while (std::getline(is, line)) {
      out.push_back(json::parse(line));  // throws on malformed JSONL
    }
    return out;
  }
  std::filesystem::path path;
};

TEST(EventLog, EmitWritesStrictJsonWithCorrelationIds) {
  const EventLogFile log;
  TraceContext ctx;
  ctx.trace_id = 0xab;
  ctx.span_id = 0xcd;
  ctx.tenant = "t1";
  {
    const ScopedTraceContext scope(ctx);
    json::Object fields;
    fields.emplace("op", json::Value(std::string("generate")));
    eventlog::emit("serve.request", std::move(fields));
  }
  eventlog::emit("no.context", {});
  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 2u);
  const json::Object& first = lines[0].as_object();
  EXPECT_EQ(first.at("event").as_string(), "serve.request");
  EXPECT_EQ(first.at("op").as_string(), "generate");
  EXPECT_EQ(first.at("trace_id").as_string(), "00000000000000ab");
  EXPECT_EQ(first.at("span_id").as_string(), "00000000000000cd");
  EXPECT_EQ(first.at("tenant").as_string(), "t1");
  EXPECT_TRUE(first.at("ts_ns").is_number());
  const json::Object& second = lines[1].as_object();
  EXPECT_EQ(second.at("event").as_string(), "no.context");
  EXPECT_EQ(second.find("trace_id"), second.end());
}

TEST(EventLog, ReservedKeysWinOverCallerFields) {
  const EventLogFile log;
  json::Object fields;
  fields.emplace("event", json::Value(std::string("spoofed")));
  eventlog::emit("real.event", std::move(fields));
  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].as_object().at("event").as_string(), "real.event");
}

TEST(EventLog, DisabledLogCostsNothingAndDropsNothing) {
  eventlog::reset_for_tests();
  EXPECT_FALSE(eventlog::log_enabled());
  eventlog::emit("ignored", {});
  EXPECT_EQ(eventlog::dropped(), 0u);
}

TEST(EventLog, InjectedWriteFailureDegradesToTheDropCounter) {
  const MetricsOn metrics;
  const EventLogFile log;
  {
    const failpoint::scoped_arm arm("telemetry.eventlog.write");
    eventlog::emit("doomed", {});  // must not throw
    EXPECT_EQ(eventlog::dropped(), 1u);
  }
  eventlog::emit("survivor", {});
  EXPECT_EQ(eventlog::dropped(), 1u);
  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].as_object().at("event").as_string(), "survivor");
  EXPECT_EQ(registry().snapshot().counter_total("telemetry.eventlog.dropped"),
            1u);
}

TEST(EventLog, UnopenablePathCountsEveryEmitAsDropped) {
  eventlog::reset_for_tests();
  eventlog::set_path("/nonexistent-dir-for-wcm-tests/event.jsonl");
  eventlog::emit("lost", {});
  EXPECT_GE(eventlog::dropped(), 1u);
  eventlog::reset_for_tests();
}

// ---- bounded span buffers ------------------------------------------------

TEST(SpanBuffers, CapDropsEventsAndCountsThem) {
  reset_trace();
  const std::size_t saved = trace_max_spans();
  set_trace_max_spans(4);
  set_tracing(true);
  for (int i = 0; i < 10; ++i) {
    WCM_SPAN("overflowing");
  }
  set_tracing(false);
  EXPECT_EQ(trace_event_count(), 4u);
  EXPECT_EQ(dropped_spans(), 6u);
  // The synthetic counter row surfaces the tally in snapshots.
  const Snapshot snap = registry().snapshot();
  EXPECT_EQ(snap.counter_total("telemetry.dropped_spans"), 6u);
  reset_trace();
  EXPECT_EQ(dropped_spans(), 0u);
  set_trace_max_spans(saved);
}

TEST(SpanBuffers, CapOfZeroStillHoldsOneEvent) {
  reset_trace();
  const std::size_t saved = trace_max_spans();
  set_trace_max_spans(0);
  EXPECT_EQ(trace_max_spans(), 1u);
  set_tracing(true);
  { WCM_SPAN("one"); }
  { WCM_SPAN("two"); }
  set_tracing(false);
  EXPECT_EQ(trace_event_count(), 1u);
  EXPECT_EQ(dropped_spans(), 1u);
  reset_trace();
  set_trace_max_spans(saved);
}

TEST(SpanBuffers, CapIsPerThread) {
  reset_trace();
  const std::size_t saved = trace_max_spans();
  set_trace_max_spans(2);
  set_tracing(true);
  std::thread a([] {
    for (int i = 0; i < 5; ++i) {
      WCM_SPAN("thread-a");
    }
  });
  std::thread b([] {
    for (int i = 0; i < 5; ++i) {
      WCM_SPAN("thread-b");
    }
  });
  a.join();
  b.join();
  set_tracing(false);
  EXPECT_EQ(trace_event_count(), 4u);  // 2 per thread
  EXPECT_EQ(dropped_spans(), 6u);
  reset_trace();
  set_trace_max_spans(saved);
}

}  // namespace
}  // namespace wcm::telemetry
