// Unit tests for the affine stride analyzer (analyze/stride.hpp): the
// closed-form serialization table for strides 1..32 at w = 32 (the paper's
// gcd structure), the exact fallback for padded layouts and non-affine
// steps, and the predicted-vs-measured cross-check against the DMM replay.

#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "analyze/stride.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/trace.hpp"
#include "util/error.hpp"

namespace wcm {
namespace {

using gpusim::SharedLayout;
using gpusim::StepKind;
using gpusim::Trace;
using gpusim::TraceStep;

TraceStep access(StepKind kind,
                 std::vector<std::pair<u32, std::size_t>> accesses) {
  TraceStep step;
  step.kind = kind;
  step.accesses = std::move(accesses);
  return step;
}

TraceStep full_warp_read(u32 w, i64 base, i64 stride) {
  TraceStep step;
  step.kind = StepKind::read;
  for (u32 lane = 0; lane < w; ++lane) {
    step.accesses.emplace_back(
        lane, static_cast<std::size_t>(base + stride * static_cast<i64>(lane)));
  }
  return step;
}

std::vector<u32> full_warp_lanes(u32 w) {
  std::vector<u32> lanes(w);
  std::iota(lanes.begin(), lanes.end(), 0u);
  return lanes;
}

// ------------------------------------------------------- classification --

TEST(AnalyzeStride, ClassifiesAffineSteps) {
  const auto strided = full_warp_read(32, 3, 5);
  const auto cls = analyze::classify_affine(strided);
  EXPECT_TRUE(cls.affine);
  EXPECT_EQ(cls.stride, 5);
  EXPECT_EQ(cls.base, 3);

  // A single request is trivially affine with stride 0.
  const auto lone = access(StepKind::read, {{7, 42}});
  const auto lone_cls = analyze::classify_affine(lone);
  EXPECT_TRUE(lone_cls.affine);
  EXPECT_EQ(lone_cls.stride, 0);
  EXPECT_EQ(lone_cls.base, 42);

  // Negative strides (descending unstage order) classify too.
  const auto desc = access(StepKind::read, {{0, 31}, {1, 30}, {2, 29}});
  const auto desc_cls = analyze::classify_affine(desc);
  EXPECT_TRUE(desc_cls.affine);
  EXPECT_EQ(desc_cls.stride, -1);
  EXPECT_EQ(desc_cls.base, 31);
}

TEST(AnalyzeStride, RejectsNonAffineSteps) {
  // First two accesses fit addr = lane, the third breaks the fit.
  const auto broken = access(StepKind::read, {{0, 0}, {1, 1}, {2, 7}});
  EXPECT_FALSE(analyze::classify_affine(broken).affine);

  // Non-integral stride between the first two lanes.
  const auto frac = access(StepKind::read, {{0, 0}, {2, 3}});
  EXPECT_FALSE(analyze::classify_affine(frac).affine);

  // Two requests from distinct lanes to one address *is* affine (stride 0
  // broadcast) — only genuinely irregular patterns fall to exact mode.
  const auto bcast = access(StepKind::read, {{0, 9}, {1, 9}});
  const auto bcast_cls = analyze::classify_affine(bcast);
  EXPECT_TRUE(bcast_cls.affine);
  EXPECT_EQ(bcast_cls.stride, 0);
}

// ------------------------------------------------------- the gcd table --

TEST(AnalyzeStride, GcdTableMatchesMeasurementForAllStrides) {
  // The paper's central number-theoretic fact: a full-warp affine step of
  // stride s on w = 32 unpadded banks serializes in exactly gcd(w, s)
  // cycles (NOT w / gcd — that counts the banks touched).  Check every
  // stride 1..32 against the closed form AND the DMM-measured replay,
  // under both the unpadded and the one-word-padded layout.
  constexpr u32 w = 32;
  const auto lanes = full_warp_lanes(w);

  Trace trace;
  trace.warp_size = w;
  trace.logical_words = 1024;  // max addr is 32 * 31 = 992
  for (i64 s = 1; s <= 32; ++s) {
    trace.steps.push_back(full_warp_read(w, 0, s));
  }

  const SharedLayout unpadded{w, 0};
  const SharedLayout padded{w, 1};
  const auto measured0 = gpusim::replay_step_costs(trace, unpadded);
  const auto measured1 = gpusim::replay_step_costs(trace, padded);

  for (std::size_t si = 0; si < trace.steps.size(); ++si) {
    const i64 s = static_cast<i64>(si) + 1;
    const auto g = std::gcd(u64{w}, static_cast<u64>(s));

    EXPECT_EQ(analyze::predict_affine_serialization(w, s, lanes), g)
        << "stride " << s;
    EXPECT_EQ(analyze::predict_affine_serialization(w, -s, lanes), g)
        << "stride " << -s;

    const auto p0 = analyze::predict_step_cost(trace.steps[si], unpadded);
    EXPECT_EQ(p0.serialization, g) << "stride " << s;
    EXPECT_TRUE(p0 == measured0[si]) << "stride " << s << " unpadded";
    // Conflicting accesses: every lane of a >= 2-deep residue class.
    EXPECT_EQ(p0.conflicting_accesses, g >= 2 ? std::size_t{w} : 0u)
        << "stride " << s;

    const auto p1 = analyze::predict_step_cost(trace.steps[si], padded);
    EXPECT_TRUE(p1 == measured1[si]) << "stride " << s << " padded";
  }

  // And the whole-trace pass agrees with itself: zero divergence.
  const auto r0 = analyze::check_strides(trace, unpadded);
  EXPECT_TRUE(r0.diagnostics.empty());
  EXPECT_EQ(r0.access_steps, 32u);
  EXPECT_EQ(r0.affine_steps, 32u);
  const auto r1 = analyze::check_strides(trace, padded);
  EXPECT_TRUE(r1.diagnostics.empty());
}

TEST(AnalyzeStride, PaddingBreaksTheWorstCaseStride) {
  // Stride 32 at w = 32: fully serialized unpadded, conflict-free with one
  // word of padding — the Dotsenko mitigation the repo models.
  const auto step = full_warp_read(32, 0, 32);
  const auto worst = analyze::predict_step_cost(step, SharedLayout{32, 0});
  EXPECT_EQ(worst.serialization, 32u);
  const auto fixed = analyze::predict_step_cost(step, SharedLayout{32, 1});
  EXPECT_EQ(fixed.serialization, 1u);
}

// -------------------------------------------- partial warps, broadcasts --

TEST(AnalyzeStride, PartialWarpsUseResidueClasses) {
  // Stride 4, p = 32 / gcd(32,4) = 8: lanes congruent mod 8 collide.
  const std::vector<u32> spread{0, 2, 5, 7};  // distinct residues -> 1
  EXPECT_EQ(analyze::predict_affine_serialization(32, 4, spread), 1u);
  const std::vector<u32> stacked{0, 8, 16};  // one residue class -> 3
  EXPECT_EQ(analyze::predict_affine_serialization(32, 4, stacked), 3u);
  const std::vector<u32> mixed{0, 8, 3};  // class sizes 2 and 1 -> 2
  EXPECT_EQ(analyze::predict_affine_serialization(32, 4, mixed), 2u);
  EXPECT_EQ(analyze::predict_affine_serialization(32, 4, {}), 0u);
}

TEST(AnalyzeStride, ZeroStrideIsTheBroadcast) {
  const auto lanes = full_warp_lanes(32);
  EXPECT_EQ(analyze::predict_affine_serialization(32, 0, lanes), 1u);

  TraceStep bcast;
  bcast.kind = StepKind::read;
  for (u32 lane = 0; lane < 32; ++lane) {
    bcast.accesses.emplace_back(lane, 17);
  }
  const auto cost = analyze::predict_step_cost(bcast, SharedLayout{32, 0});
  EXPECT_EQ(cost.serialization, 1u);
  EXPECT_EQ(cost.conflicting_accesses, 0u);
}

// ------------------------------------------------- exact-mode fallback --

TEST(AnalyzeStride, NonAffineStepsPredictExactly) {
  // Bit-reversal permutation of 0..31 — decidedly not affine, but the
  // exact per-bank counter must still match the machine.
  TraceStep step;
  step.kind = StepKind::read;
  for (u32 lane = 0; lane < 32; ++lane) {
    u32 rev = 0;
    for (u32 bit = 0; bit < 5; ++bit) {
      rev |= ((lane >> bit) & 1u) << (4 - bit);
    }
    step.accesses.emplace_back(lane, static_cast<std::size_t>(rev) * 2);
  }
  EXPECT_FALSE(analyze::classify_affine(step).affine);

  Trace trace;
  trace.warp_size = 32;
  trace.logical_words = 64;
  trace.steps.push_back(step);
  for (const u32 pad : {0u, 1u, 3u}) {
    const SharedLayout layout{32, pad};
    const auto measured = gpusim::replay_step_costs(trace, layout);
    EXPECT_TRUE(analyze::predict_step_cost(step, layout) == measured[0])
        << "pad " << pad;
    EXPECT_TRUE(analyze::check_strides(trace, layout).diagnostics.empty())
        << "pad " << pad;
  }
}

TEST(AnalyzeStride, RecorderCapturedStreamCrossChecks) {
  // Capture a live strided exchange through SharedMemory under a padded
  // layout and cross-check under that same layout: the analyzer's two
  // independent cost paths (closed form + exact) must both agree with the
  // machine that actually executed.
  gpusim::TraceRecorder rec;
  gpusim::SharedMemory shm(8, 64, 1);
  shm.attach_trace(&rec);
  shm.fill(std::vector<gpusim::word>(64, 0));
  for (const std::size_t stride : {1u, 2u, 4u, 8u}) {
    std::vector<gpusim::LaneWrite> writes;
    for (u32 lane = 0; lane < 8; ++lane) {
      writes.push_back({lane, lane * stride, gpusim::word(lane)});
    }
    shm.warp_write(writes);
    shm.barrier();
  }
  shm.attach_trace(nullptr);

  const auto trace = rec.take();
  const auto report = analyze::check_strides(trace, SharedLayout{8, 1});
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.access_steps, 4u);
  EXPECT_EQ(report.affine_steps, 4u);
  // An intentionally wrong layout width must be rejected, not mispriced.
  EXPECT_THROW((void)analyze::check_strides(trace, SharedLayout{16, 0}),
               wcm::error);
}

}  // namespace
}  // namespace wcm
