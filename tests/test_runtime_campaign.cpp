// Campaign-layer tests: spec parsing and validation, deterministic
// expansion with position-independent seeds, byte-identical output across
// thread counts and cache states, WCMC integration (hit/miss/invalidate),
// and the run_sweeps equivalence with the serial analysis::run_sweep.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/experiment.hpp"
#include "runtime/campaign.hpp"
#include "runtime/scheduler.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {
namespace {

constexpr const char* kSmallSpec = R"({
  "name": "unit",
  "device": "m4000",
  "seed": 11,
  "grid": [
    {"engine": "pairwise", "E": 5, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2]}
  ]
})";

TEST(CampaignSpecParse, AcceptsTheFullGrammar) {
  const auto spec = parse_campaign_spec(R"({
    "name": "full",
    "device": "2080ti",
    "seed": 99,
    "threads": 2,
    "trace_dir": "traces",
    "grid": [
      {"engine": "multiway", "E": [3, 5], "b": 64, "w": 32, "padding": [0, 1],
       "input": "sorted", "k": [1], "ways": 8},
      {"engine": "radix", "digit_bits": 6},
      {"engine": "bitonic", "b": 128}
    ]
  })");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.device.name, gpusim::rtx_2080ti().name);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.trace_dir, "traces");
  ASSERT_EQ(spec.grid.size(), 3u);
  EXPECT_EQ(spec.grid[0].engine, Engine::multiway);
  EXPECT_EQ(spec.grid[0].E, (std::vector<u32>{3, 5}));
  EXPECT_EQ(spec.grid[0].padding, (std::vector<u32>{0, 1}));
  EXPECT_EQ(spec.grid[0].ways, 8u);
  EXPECT_EQ(spec.grid[1].digit_bits, 6u);
  EXPECT_EQ(spec.grid[2].engine, Engine::bitonic);
}

TEST(CampaignSpecParse, RejectsUnknownKeysAndValues) {
  EXPECT_THROW((void)parse_campaign_spec(R"({"grid": [{}], "spline": 1})"),
               parse_error);
  EXPECT_THROW(
      (void)parse_campaign_spec(R"({"grid": [{"engine": "quantum"}]})"),
      parse_error);
  EXPECT_THROW(
      (void)parse_campaign_spec(R"({"grid": [{"input": "adversarial"}]})"),
      parse_error);
  EXPECT_THROW((void)parse_campaign_spec(R"({"device": "voodoo2",
                                             "grid": [{}]})"),
               parse_error);
  EXPECT_THROW((void)parse_campaign_spec(R"({"grid": []})"), parse_error);
  EXPECT_THROW((void)parse_campaign_spec(R"({"name": "x"})"), parse_error);
  EXPECT_THROW((void)parse_campaign_spec("not json at all"), parse_error);
  EXPECT_THROW((void)parse_campaign_spec(R"({"grid": [{"k": [50]}]})"),
               parse_error);
}

TEST(CampaignSpecParse, LoadMapsProblemsToIoError) {
  const auto dir = std::filesystem::temp_directory_path();
  EXPECT_THROW((void)load_campaign_spec(dir / "wcm_missing_spec.json"),
               io_error);
  const auto bad = dir / "wcm_bad_spec.json";
  std::ofstream(bad) << "{ definitely not json";
  EXPECT_THROW((void)load_campaign_spec(bad), io_error);
  std::ofstream(bad) << R"({"grid": [{"engine": "quantum"}]})";
  EXPECT_THROW((void)load_campaign_spec(bad), io_error);
  std::filesystem::remove(bad);
}

TEST(CampaignExpand, DeterministicOrderAndPositionIndependentSeeds) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 4u);
  // input varies before k (declaration order of the nesting).
  EXPECT_EQ(cells[0].input, workload::InputKind::random);
  EXPECT_EQ(cells[0].k, 1u);
  EXPECT_EQ(cells[1].k, 2u);
  EXPECT_EQ(cells[2].input, workload::InputKind::worst_case);
  EXPECT_EQ(cells[0].n, cells[0].config.tile() << 1);

  // Seeds are a function of (spec seed, cell config), not of grid
  // position: the same cell in a reordered/extended grid keeps its seed.
  const auto reordered = parse_campaign_spec(R"({
    "name": "unit", "device": "m4000", "seed": 11,
    "grid": [
      {"engine": "pairwise", "E": 7, "b": 64, "input": "sorted", "k": [3]},
      {"engine": "pairwise", "E": 5, "b": 64,
       "input": ["worst-case", "random"], "k": [2, 1]}
    ]
  })");
  const auto moved = expand(reordered);
  ASSERT_EQ(moved.size(), 5u);
  EXPECT_EQ(cells[0].seed, moved[4].seed);  // random k=1
  EXPECT_EQ(cells[3].seed, moved[1].seed);  // worst-case k=2
  EXPECT_NE(cells[0].seed, cells[1].seed);
  EXPECT_NE(cells[0].seed, cells[2].seed);
}

TEST(CampaignExpand, ValidatesCellsAgainstConfigAndDevice) {
  // b < 2w violates the SortConfig contract.
  auto bad_cfg = parse_campaign_spec(
      R"({"grid": [{"engine": "pairwise", "E": 5, "b": 32}]})");
  EXPECT_THROW((void)expand(bad_cfg), wcm::error);
  // A tile too large for shared memory must not fit the device.
  auto too_big = parse_campaign_spec(
      R"({"grid": [{"engine": "pairwise", "E": 1000, "b": 512}]})");
  EXPECT_THROW((void)expand(too_big), wcm::error);
}

TEST(CampaignRun, ByteIdenticalAcrossThreadCountsAndCacheStates) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  CampaignOptions serial;
  serial.threads = 1;
  serial.use_cache = false;
  const auto ref = run_campaign(spec, serial);
  EXPECT_EQ(ref.cells, 4u);
  EXPECT_EQ(ref.computed, 4u);
  EXPECT_EQ(ref.cache_hits, 0u);

  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.use_cache = false;
  const auto wide = run_campaign(spec, parallel);
  EXPECT_EQ(wide.threads, 4u);
  EXPECT_EQ(ref.json, wide.json);  // the headline determinism guarantee

  // With a cache file: cold run computes, warm run hits 100%, output is
  // still byte-identical.
  const auto cache_path = std::filesystem::temp_directory_path() /
                          "wcm_campaign_unit.wcmc";
  std::filesystem::remove(cache_path);
  CampaignOptions cached;
  cached.threads = 4;
  cached.cache_path = cache_path;
  const auto cold = run_campaign(spec, cached);
  EXPECT_EQ(cold.computed, 4u);
  const auto warm = run_campaign(spec, cached);
  EXPECT_EQ(warm.computed, 0u);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(ref.json, cold.json);
  EXPECT_EQ(ref.json, warm.json);

  // A code-version salt change invalidates every entry.
  setenv("WCM_CACHE_SALT", "unit-test-bump", 1);
  const auto invalidated = run_campaign(spec, cached);
  unsetenv("WCM_CACHE_SALT");
  EXPECT_EQ(invalidated.computed, 4u);
  EXPECT_EQ(invalidated.cache_hits, 0u);
  EXPECT_EQ(ref.json, invalidated.json);
  std::filesystem::remove(cache_path);
}

TEST(CampaignRun, AggregateJsonCarriesSeriesAndSlowdowns) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  CampaignOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  const auto outcome = run_campaign(spec, opts);
  EXPECT_NE(outcome.json.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(outcome.json.find("\"cells\":["), std::string::npos);
  EXPECT_NE(outcome.json.find("\"series\":["), std::string::npos);
  // random + worst-case at identical sizes -> one slowdown entry.
  EXPECT_NE(outcome.json.find("\"slowdowns\":[{"), std::string::npos);
  EXPECT_NE(outcome.json.find("\"peak_percent\":"), std::string::npos);
}

TEST(CampaignRun, TraceDirRecordsOneTracePerCell) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  const auto dir = std::filesystem::temp_directory_path() /
                   "wcm_campaign_traces_unit";
  std::filesystem::remove_all(dir);
  CampaignOptions opts;
  opts.threads = 2;
  opts.use_cache = false;
  opts.trace_dir = dir.string();
  const auto outcome = run_campaign(spec, opts);
  EXPECT_EQ(outcome.computed, 4u);
  std::size_t traces = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    traces += entry.path().extension() == ".wcmt" ? 1u : 0u;
  }
  EXPECT_EQ(traces, 4u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRun, AllEnginesExecute) {
  const auto spec = parse_campaign_spec(R"({
    "name": "engines", "device": "m4000", "seed": 5,
    "grid": [
      {"engine": "pairwise", "E": 5, "b": 64, "k": [1]},
      {"engine": "multiway", "E": 5, "b": 64, "k": [1], "ways": 2},
      {"engine": "bitonic", "E": 5, "b": 64, "k": [1]},
      {"engine": "radix", "E": 5, "b": 64, "k": [1], "digit_bits": 8}
    ]
  })");
  CampaignOptions opts;
  opts.threads = 2;
  opts.use_cache = false;
  const auto outcome = run_campaign(spec, opts);
  EXPECT_EQ(outcome.cells, 4u);
  for (const char* engine : {"pairwise", "multiway", "bitonic", "radix"}) {
    EXPECT_NE(outcome.json.find(std::string("\"engine\":\"") + engine + "\""),
              std::string::npos)
        << engine;
  }
}

/// Unique journal path per test (gtest runs each TEST in its own ctest
/// process, but the binary can also be run whole).
std::filesystem::path temp_journal(const char* name) {
  const auto path = std::filesystem::temp_directory_path() /
                    (std::string("wcm_campaign_") + name + ".wcmj");
  std::filesystem::remove(path);
  return path;
}

TEST(CampaignJournal, ResumeIsByteIdenticalToAnUninterruptedRun) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  const auto jpath = temp_journal("resume");

  CampaignOptions plain;
  plain.threads = 1;
  plain.use_cache = false;
  const auto ref = run_campaign(spec, plain);

  CampaignOptions journaled = plain;
  journaled.journal_path = jpath;
  const auto first = run_campaign(spec, journaled);
  EXPECT_EQ(first.computed, 4u);
  EXPECT_EQ(first.json, ref.json);

  // Full resume: every cell replays, nothing recomputes, same bytes.
  CampaignOptions resume = journaled;
  resume.resume = true;
  const auto resumed = run_campaign(spec, resume);
  EXPECT_EQ(resumed.computed, 0u);
  EXPECT_EQ(resumed.replayed, 4u);
  EXPECT_EQ(resumed.json, ref.json);

  // Partial resume (the crash scenario): chop the journal to two sealed
  // records; the resumed run replays those, recomputes the rest, and the
  // aggregate is still byte-identical.
  std::filesystem::resize_file(jpath, 32 + 2 * 64);
  const auto partial = run_campaign(spec, resume);
  EXPECT_EQ(partial.replayed, 2u);
  EXPECT_EQ(partial.computed, 2u);
  EXPECT_EQ(partial.json, ref.json);
  std::filesystem::remove(jpath);
}

TEST(CampaignJournal, FingerprintMismatchStartsFresh) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  const auto jpath = temp_journal("fingerprint");
  CampaignOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  opts.journal_path = jpath;
  (void)run_campaign(spec, opts);

  // Same grid, different seed: every canonical string changes, so the
  // journal belongs to a different campaign and must not replay.
  auto edited_text = std::string(kSmallSpec);
  const auto at = edited_text.find("\"seed\": 11");
  ASSERT_NE(at, std::string::npos);
  edited_text.replace(at, 10, "\"seed\": 12");
  const auto edited = parse_campaign_spec(edited_text);
  opts.resume = true;
  const auto crossed = run_campaign(edited, opts);
  EXPECT_EQ(crossed.replayed, 0u);
  EXPECT_EQ(crossed.computed, 4u);

  // The journal was rewritten for the edited campaign: now it replays.
  const auto again = run_campaign(edited, opts);
  EXPECT_EQ(again.replayed, 4u);
  EXPECT_EQ(again.computed, 0u);
  EXPECT_EQ(again.json, crossed.json);
  std::filesystem::remove(jpath);
}

TEST(CampaignFaults, PermanentFaultQuarantinesInsteadOfFailingFast) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  failpoint::scoped_arm fp("runtime.worker.job");  // every attempt fails
  CampaignOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  const auto outcome = run_campaign(spec, opts);
  EXPECT_TRUE(outcome.degraded());
  EXPECT_FALSE(outcome.interrupted());
  EXPECT_EQ(outcome.computed, 0u);
  ASSERT_EQ(outcome.quarantined.size(), 4u);
  for (const auto& q : outcome.quarantined) {
    EXPECT_EQ(q.attempts, 3u);  // default policy: two retries
    EXPECT_FALSE(q.label.empty());
    EXPECT_NE(q.message.find("runtime.worker.job"), std::string::npos);
  }
  // The aggregate is still written: empty cells, populated quarantine.
  EXPECT_NE(outcome.json.find("\"cells\":[]"), std::string::npos);
  EXPECT_NE(outcome.json.find("\"quarantined\":[{"), std::string::npos);
  EXPECT_NE(outcome.json.find("\"attempts\":3"), std::string::npos);
}

TEST(CampaignFaults, TransientFaultIsRetriedToSuccess) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  CampaignOptions plain;
  plain.threads = 1;
  plain.use_cache = false;
  const auto ref = run_campaign(spec, plain);

  // One injected failure: the first attempt of the first cell dies, the
  // retry recomputes it, and the output converges to the clean bytes.
  failpoint::scoped_arm fp("runtime.worker.job", /*skip=*/0, /*times=*/1);
  const auto retried = run_campaign(spec, plain);
  EXPECT_EQ(retried.computed, 4u);
  EXPECT_TRUE(retried.quarantined.empty());
  EXPECT_EQ(retried.json, ref.json);
}

TEST(CampaignFaults, FailFastRestoresTheOldContract) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  failpoint::scoped_arm fp("runtime.worker.job");
  CampaignOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  opts.fail_fast = true;
  EXPECT_THROW((void)run_campaign(spec, opts), wcm::error);
}

TEST(CampaignFaults, CancelledCampaignDrainsAndStaysResumable) {
  const auto spec = parse_campaign_spec(kSmallSpec);
  const auto jpath = temp_journal("cancel");
  CancelSource cancel;
  cancel.cancel();  // as if SIGINT arrived before admission
  CampaignOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  opts.journal_path = jpath;
  opts.cancel = &cancel;
  const auto interrupted = run_campaign(spec, opts);
  EXPECT_TRUE(interrupted.interrupted());
  EXPECT_EQ(interrupted.cancelled, 4u);
  EXPECT_EQ(interrupted.computed, 0u);
  EXPECT_TRUE(interrupted.json.empty());  // no aggregate: resume instead

  CampaignOptions plain;
  plain.threads = 1;
  plain.use_cache = false;
  const auto ref = run_campaign(spec, plain);
  CampaignOptions resume = opts;
  resume.cancel = nullptr;
  resume.resume = true;
  const auto resumed = run_campaign(spec, resume);
  EXPECT_FALSE(resumed.interrupted());
  EXPECT_EQ(resumed.json, ref.json);
  std::filesystem::remove(jpath);
}

TEST(RunSweeps, MatchesTheSerialSweepExactly) {
  analysis::SweepSpec spec;
  spec.device = gpusim::quadro_m4000();
  spec.config = sort::SortConfig{5, 64, 32};
  spec.input = workload::InputKind::worst_case;
  spec.min_k = 1;
  spec.max_k = 3;
  spec.seed = 21;

  const auto serial = analysis::run_sweep(spec);
  const auto parallel = run_sweeps({spec, spec}, 4);
  ASSERT_EQ(parallel.size(), 2u);
  for (const auto& series : parallel) {
    ASSERT_EQ(series.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(series[i].n, serial[i].n);
      EXPECT_EQ(series[i].throughput, serial[i].throughput);
      EXPECT_EQ(series[i].seconds, serial[i].seconds);
      EXPECT_EQ(series[i].conflicts_per_elem, serial[i].conflicts_per_elem);
      EXPECT_EQ(series[i].beta2, serial[i].beta2);
    }
  }
}

}  // namespace
}  // namespace wcm::runtime
