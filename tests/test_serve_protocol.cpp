// Wire-protocol and tenant-cache units of the wcmd daemon: request
// parsing (strict-JSON line protocol, unknown-field/param rejection),
// canonicalization (the dedup and cache key), response rendering, the
// error taxonomy mapping, and the multi-tenant LRU response cache with
// its WCMS on-disk format.  The daemon end-to-end paths live in
// test_serve_daemon.cpp; the CLI gate in tests/serve_ci.cmake.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "serve/tenant_cache.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace wcm::serve {
namespace {

// ---- parse_request --------------------------------------------------------

TEST(ServeProtocol, ParsesFullRequest) {
  const Request req = parse_request(
      R"({"op":"generate","id":"r1","tenant":"ci","deadline_ms":2000,)"
      R"("params":{"E":5,"b":64}})");
  EXPECT_EQ(req.op, "generate");
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.tenant, "ci");
  EXPECT_EQ(req.deadline_ms, 2000u);
  EXPECT_EQ(req.params.size(), 2u);
}

TEST(ServeProtocol, DefaultsOptionalFields) {
  const Request req = parse_request(R"({"op":"health"})");
  EXPECT_EQ(req.id, "");
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.deadline_ms, 0u);
  EXPECT_TRUE(req.params.empty());
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW((void)parse_request("not json"), parse_error);
  EXPECT_THROW((void)parse_request("[1,2]"), parse_error);       // non-object
  EXPECT_THROW((void)parse_request(R"({"id":"x"})"), parse_error);  // no op
  EXPECT_THROW((void)parse_request(R"({"op":"health","bogus":1})"),
               parse_error);  // unknown field
  EXPECT_THROW((void)parse_request(R"({"op":1})"), parse_error);  // bad type
  EXPECT_THROW((void)parse_request(R"({"op":"health","tenant":""})"),
               parse_error);
  EXPECT_THROW(
      (void)parse_request(R"({"op":"health","tenant":")" +
                          std::string(65, 'x') + R"("})"),
      parse_error);
  EXPECT_THROW(
      (void)parse_request(R"({"op":"health","deadline_ms":3600001})"),
      parse_error);
  // Strict JSON: the parser rejects duplicate keys rather than letting
  // the last one silently win.
  EXPECT_THROW((void)parse_request(R"({"op":"health","op":"metrics"})"),
               parse_error);
}

// ---- the trace field ------------------------------------------------------

TEST(ServeProtocol, ParsesTraceIds) {
  const Request req = parse_request(
      R"({"op":"generate","id":"r1","trace":)"
      R"({"trace_id":"00000000000000ab","parent_span_id":"cd"}})");
  EXPECT_EQ(req.trace_id, 0xabu);
  EXPECT_EQ(req.parent_span_id, 0xcdu);
}

TEST(ServeProtocol, TraceAcceptsShortAndPrefixedHex) {
  EXPECT_EQ(parse_request(R"({"op":"health","trace":{"trace_id":"a1"}})")
                .trace_id,
            0xa1u);
  EXPECT_EQ(parse_request(R"({"op":"health","trace":{"trace_id":"0xA1"}})")
                .trace_id,
            0xa1u);
  EXPECT_EQ(parse_request(R"({"op":"health"})").trace_id, 0u);
}

TEST(ServeProtocol, CorruptTraceFieldsDegradeToAbsentNeverThrow) {
  // The tolerant-parse contract (docs/SERVE.md): observability metadata
  // must never cost a response.  Every insult parses; the ids stay 0.
  const char* corpus[] = {
      R"({"op":"health","trace":1})",                        // non-object
      R"({"op":"health","trace":"a1"})",                     // non-object
      R"({"op":"health","trace":[]})",                       // non-object
      R"({"op":"health","trace":{"trace_id":17}})",          // non-string id
      R"({"op":"health","trace":{"trace_id":"zz"}})",        // non-hex
      R"({"op":"health","trace":{"trace_id":""}})",          // empty
      R"({"op":"health","trace":{"trace_id":"0x"}})",        // digitless
      R"({"op":"health","trace":{"trace_id":"a1 "}})",       // whitespace
      R"({"op":"health","trace":{"trace_id":"-1"}})",        // sign
      R"({"op":"health","trace":{"trace_id":"12345678901234567"}})",  // 17
      R"({"op":"health","trace":{"parent_span_id":null}})",  // non-string
  };
  for (const char* line : corpus) {
    const Request req = parse_request(line);  // must not throw
    EXPECT_EQ(req.trace_id, 0u) << line;
    EXPECT_EQ(req.parent_span_id, 0u) << line;
  }
  // Unknown trace subkeys are ignored (forward compatibility), and do
  // not poison the known ones.
  const Request req = parse_request(
      R"({"op":"health","trace":{"baggage":"x","trace_id":"a1"}})");
  EXPECT_EQ(req.trace_id, 0xa1u);
}

TEST(ServeProtocol, CorruptTraceBumpsTheInvalidCounter) {
  telemetry::registry().reset();
  telemetry::set_enabled(true);
  (void)parse_request(R"({"op":"health","trace":{"trace_id":"zz"}})");
  (void)parse_request(R"({"op":"health","trace":17})");
  telemetry::set_enabled(false);
  EXPECT_EQ(telemetry::registry().snapshot().counter_total(
                "serve.trace.invalid"),
            2u);
  telemetry::registry().reset();
}

// ---- canonical_request ----------------------------------------------------

Request req_of(const std::string& line) { return parse_request(line); }

TEST(ServeProtocol, CanonicalAppliesDefaults) {
  EXPECT_EQ(canonical_request(req_of(R"({"op":"generate"})")),
            "generate|E=15|b=512|w=32|pad=0|layout=linear|k=4|seed=1"
            "|strategy=front-to-back|intra=0");
}

TEST(ServeProtocol, CanonicalIndependentOfFieldOrderTenantAndId) {
  const auto a = canonical_request(
      req_of(R"({"op":"generate","params":{"E":5,"b":64},"tenant":"a"})"));
  const auto b = canonical_request(req_of(
      R"({"id":"z","tenant":"b","params":{"b":64,"E":5},"op":"generate"})"));
  EXPECT_EQ(a, b);
  const auto c = canonical_request(
      req_of(R"({"op":"generate","params":{"E":7,"b":64}})"));
  EXPECT_NE(a, c);
}

TEST(ServeProtocol, CanonicalRejectsUnknownAndIllTypedParams) {
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"generate","params":{"bogus":1}})")),
               parse_error);
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"generate","params":{"E":"five"}})")),
               parse_error);
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"generate","params":{"layout":"spiral"}})")),
               parse_error);
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"generate","params":{"strategy":"sideways"}})")),
               parse_error);
  // Admin ops reject unknown params (metrics knows only "format").
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"metrics","params":{"x":1}})")),
               parse_error);
}

TEST(ServeProtocol, CanonicalIgnoresTheTraceField) {
  // The trace is observability metadata: it must never split the dedup /
  // cache key (two identical asks with different traces share one
  // computation) and never leak into response bytes.
  const auto bare = canonical_request(
      req_of(R"({"op":"generate","params":{"E":5,"b":64}})"));
  const auto traced = canonical_request(req_of(
      R"({"op":"generate","params":{"E":5,"b":64},)"
      R"("trace":{"trace_id":"a1","parent_span_id":"b2"}})"));
  EXPECT_EQ(bare, traced);
}

TEST(ServeProtocol, CanonicalMetricsCarriesTheFormat) {
  EXPECT_EQ(canonical_request(req_of(R"({"op":"metrics"})")),
            "metrics|format=json");
  EXPECT_EQ(canonical_request(req_of(
                R"({"op":"metrics","params":{"format":"prometheus"}})")),
            "metrics|format=prometheus");
  EXPECT_EQ(canonical_request(req_of(
                R"({"op":"metrics","params":{"format":"text"}})")),
            "metrics|format=text");
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"metrics","params":{"format":"xml"}})")),
               parse_error);
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"metrics","params":{"format":17}})")),
               parse_error);
}

TEST(ServeProtocol, CanonicalCampaignNormalizesSpecKeyOrder) {
  const auto a = canonical_request(req_of(
      R"({"op":"campaign","params":{"spec":{"name":"s","engines":["x"]}}})"));
  const auto b = canonical_request(req_of(
      R"({"op":"campaign","params":{"spec":{"engines":["x"],"name":"s"}}})"));
  EXPECT_EQ(a, b);
  EXPECT_THROW(canonical_request(req_of(R"({"op":"campaign"})")),
               parse_error);  // spec is required
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"campaign","params":{"spec":7}})")),
               parse_error);  // ...and must be an object
}

TEST(ServeProtocol, CanonicalCertifyJoinsGridAxes) {
  EXPECT_EQ(canonical_request(req_of(
                R"({"op":"certify","params":{"bs":[64,128],"pads":[0,1]}})")),
            "certify|engine=shearsort|w=32|bs=64,128|pads=0,1|layout=linear"
            "|E_min=3|E_max=0|any_E=0|ways=4|digit_bits=4");
  EXPECT_THROW(canonical_request(req_of(
                   R"({"op":"certify","params":{"bs":[]}})")),
               parse_error);  // empty grid axis
}

// ---- responses ------------------------------------------------------------

TEST(ServeProtocol, RendersResponses) {
  EXPECT_EQ(ok_response("r1", R"({"n":1})"),
            R"({"id":"r1","ok":true,"result":{"n":1}})");
  EXPECT_EQ(error_response("r2", ErrorType::too_large, "big"),
            R"({"error":{"message":"big","type":"too_large"},"id":"r2",)"
            R"("ok":false})");
  // Ids and messages are JSON-escaped, never spliced raw.
  EXPECT_EQ(error_response("a\"b", ErrorType::parse, "x\ny"),
            "{\"error\":{\"message\":\"x\\ny\",\"type\":\"parse\"},"
            "\"id\":\"a\\\"b\",\"ok\":false}");
}

TEST(ServeProtocol, ResponsesRoundTripThroughTheParser) {
  const auto doc = json::parse(ok_response("r", R"({"a":[1,2]})"));
  EXPECT_TRUE(doc.as_object().at("ok").as_bool());
  const auto err =
      json::parse(error_response("r", ErrorType::overloaded, "full"));
  EXPECT_EQ(err.as_object().at("error").as_object().at("type").as_string(),
            "overloaded");
}

// ---- error taxonomy -------------------------------------------------------

TEST(ServeProtocol, ErrorTypeOfMapsTheTaxonomy) {
  EXPECT_EQ(error_type_of(parse_error("x")), ErrorType::parse);
  EXPECT_EQ(error_type_of(io_error("x")), ErrorType::io);
  EXPECT_EQ(error_type_of(config_error("x")), ErrorType::config);
  EXPECT_EQ(error_type_of(interrupted_error("x")), ErrorType::interrupted);
  // Simulator invariants are daemon-side bugs (internal); remaining
  // contract violations are bad request parameters (config).
  EXPECT_EQ(error_type_of(simulation_error("x")), ErrorType::internal);
  EXPECT_EQ(error_type_of(contract_error("x")), ErrorType::config);
  EXPECT_EQ(error_type_of(std::runtime_error("x")), ErrorType::internal);
}

// ---- TenantCache ----------------------------------------------------------

TEST(TenantCache, InsertLookupAndRecency) {
  TenantCache cache(/*salt=*/1, /*max_entries_per_tenant=*/2);
  cache.insert("a", 1, "one");
  cache.insert("a", 2, "two");
  EXPECT_EQ(cache.lookup("a", 1).value_or(""), "one");  // 1 is now hottest
  cache.insert("a", 3, "three");                        // evicts 2
  EXPECT_TRUE(cache.lookup("a", 1).has_value());
  EXPECT_FALSE(cache.lookup("a", 2).has_value());
  EXPECT_TRUE(cache.lookup("a", 3).has_value());
  EXPECT_EQ(cache.size("a"), 2u);
}

TEST(TenantCache, QuotasArePerTenant) {
  TenantCache cache(1, 1);
  cache.insert("a", 1, "a1");
  cache.insert("b", 1, "b1");
  cache.insert("a", 2, "a2");  // evicts a's 1, never b's
  EXPECT_FALSE(cache.lookup("a", 1).has_value());
  EXPECT_TRUE(cache.lookup("b", 1).has_value());
  EXPECT_EQ(cache.total_size(), 2u);
}

TEST(TenantCache, ReinsertIsIdempotent) {
  TenantCache cache(1, 4);
  cache.insert("a", 1, "one");
  cache.insert("a", 1, "one");  // a shared flight's second waiter
  EXPECT_EQ(cache.size("a"), 1u);
  EXPECT_EQ(cache.lookup("a", 1).value_or(""), "one");
}

TEST(TenantCache, KeyOfDependsOnSalt) {
  const TenantCache a(1, 0);
  const TenantCache b(2, 0);
  EXPECT_EQ(a.key_of("generate|E=5"), a.key_of("generate|E=5"));
  EXPECT_NE(a.key_of("generate|E=5"), b.key_of("generate|E=5"));
  EXPECT_NE(a.key_of("generate|E=5"), a.key_of("generate|E=7"));
}

struct WcmsFile : ::testing::Test {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("wcms_test_" + std::to_string(::getpid()) + ".wcms");
  void TearDown() override { std::filesystem::remove(path); }
};

TEST_F(WcmsFile, RoundTripsEntries) {
  TenantCache cache(7, 0);
  cache.insert("a", 1, "one");
  cache.insert("b", 2, "two");
  cache.store(path);
  TenantCache warmed = TenantCache::load(path, 7);
  EXPECT_EQ(warmed.lookup("a", 1).value_or(""), "one");
  EXPECT_EQ(warmed.lookup("b", 2).value_or(""), "two");
  EXPECT_EQ(warmed.total_size(), 2u);
}

TEST_F(WcmsFile, StoresDeterministically) {
  const auto bytes_of = [this](const TenantCache& c) {
    c.store(path);
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  TenantCache a(7, 0);
  a.insert("t", 2, "two");
  a.insert("t", 1, "one");
  TenantCache b(7, 0);
  b.insert("t", 1, "one");
  b.insert("t", 2, "two");
  EXPECT_EQ(bytes_of(a), bytes_of(b));  // (tenant, key) order, not history
}

TEST_F(WcmsFile, SaltMismatchStartsCold) {
  TenantCache cache(7, 0);
  cache.insert("a", 1, "one");
  cache.store(path);
  EXPECT_EQ(TenantCache::load(path, 8).total_size(), 0u);
}

TEST_F(WcmsFile, MissingFileStartsCold) {
  EXPECT_EQ(TenantCache::load(path, 7).total_size(), 0u);
}

TEST_F(WcmsFile, CorruptFileThrows) {
  TenantCache cache(7, 0);
  cache.insert("a", 1, "one");
  cache.store(path);
  // Flip one payload byte: the FNV checksum must catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(30);
  f.put('\x7f');
  f.close();
  EXPECT_THROW((void)TenantCache::load(path, 7), io_error);
  std::ofstream(path, std::ios::trunc) << "WCMS";  // truncated header
  EXPECT_THROW((void)TenantCache::load(path, 7), io_error);
}

}  // namespace
}  // namespace wcm::serve
