// End-to-end tests of the wcmd daemon (serve::Server) over real
// Unix-domain sockets: health and admin ops, cold/warm byte-identity,
// the malformed-request corpus (the daemon answers typed errors and keeps
// serving), the in-flight dedup invariant (N concurrent identical
// requests -> exactly one scheduler job and one cache store), connection
// shedding, dispatch-fault recovery (errors are never cached), WCMS
// persistence across a restart, and the drain zero-drop invariant.
//
// Every test runs its server on a process-unique abstract-namespace
// socket, so parallel ctest invocations never collide and nothing
// touches the filesystem unless the test needs a data dir.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/registry.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace wcm::serve {
namespace {

/// Process-unique abstract socket name; `suffix` keeps the tests in one
/// binary apart when ctest runs them in the same process.
std::string test_socket(const std::string& suffix) {
  return "@wcm-test-" + std::to_string(::getpid()) + "-" + suffix;
}

/// A Server running on its own thread.  drain() requests a graceful
/// drain, joins, and rethrows any serve()-side failure.
struct RunningServer {
  explicit RunningServer(ServerConfig cfg) : server(std::move(cfg)) {
    server.set_log(nullptr);
    thread = std::thread([this] {
      try {
        (void)server.serve();
      } catch (...) {
        failure = std::current_exception();
      }
    });
  }

  ~RunningServer() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }

  ServerStats drain() {
    server.request_drain();
    return join();
  }

  ServerStats join() {
    thread.join();
    if (failure) {
      std::rethrow_exception(failure);
    }
    return server.stats();
  }

  Server server;
  std::thread thread;
  std::exception_ptr failure;
};

constexpr u64 kConnectTimeoutMs = 5000;

const char* kGenerate =
    R"({"op":"generate","id":"g","params":{"E":5,"b":64,"k":1}})";

json::Object response_of(const std::string& line) {
  return json::parse(line).as_object();
}

bool ok_of(const std::string& line) {
  return response_of(line).at("ok").as_bool();
}

std::string error_type_in(const std::string& line) {
  return response_of(line)
      .at("error")
      .as_object()
      .at("type")
      .as_string();
}

u64 counter(const std::string& name) {
  return telemetry::registry().snapshot().counter_total(name);
}

TEST(ServeDaemon, HealthAnswersAndEchoesTheId) {
  ServerConfig cfg;
  cfg.socket = test_socket("health");
  RunningServer rs(cfg);
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  const auto resp = response_of(client.roundtrip(R"({"op":"health","id":"h"})"));
  EXPECT_TRUE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("id").as_string(), "h");
  EXPECT_TRUE(resp.at("result").as_object().at("ok").as_bool());
}

TEST(ServeDaemon, GenerateIsByteIdenticalColdAndWarm) {
  ServerConfig cfg;
  cfg.socket = test_socket("warm");
  RunningServer rs(cfg);
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  const std::string cold = client.roundtrip(kGenerate);
  const std::string warm = client.roundtrip(kGenerate);
  EXPECT_TRUE(ok_of(cold));
  EXPECT_EQ(cold, warm);  // the serve determinism contract, byte for byte
}

TEST(ServeDaemon, MalformedRequestsGetTypedErrorsAndServiceContinues) {
  ServerConfig cfg;
  cfg.socket = test_socket("corpus");
  RunningServer rs(cfg);
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);

  EXPECT_EQ(error_type_in(client.roundtrip("this is not json")), "parse");
  EXPECT_EQ(error_type_in(client.roundtrip(R"({"id":"x"})")), "parse");
  EXPECT_EQ(error_type_in(
                client.roundtrip(R"({"op":"health","op":"metrics"})")),
            "parse");  // strict JSON rejects duplicate keys
  EXPECT_EQ(error_type_in(client.roundtrip(R"({"op":"frobnicate","id":"u"})")),
            "unknown_op");
  EXPECT_EQ(error_type_in(client.roundtrip(
                R"({"op":"generate","params":{"bogus":1}})")),
            "parse");
  // Oversized payload: the daemon answers too_large and discards the
  // rest of the line instead of buffering unboundedly.
  const std::string oversized =
      R"({"op":"health","id":")" + std::string(70'000, 'x') + R"("})";
  EXPECT_EQ(error_type_in(client.roundtrip(oversized)), "too_large");

  // The same connection still serves real requests after every insult.
  EXPECT_TRUE(ok_of(client.roundtrip(R"({"op":"health"})")));
}

TEST(ServeDaemon, TruncatedRequestAndSilentDisconnectKeepServing) {
  ServerConfig cfg;
  cfg.socket = test_socket("truncated");
  RunningServer rs(cfg);
  {
    // A raw connection that dies mid-request: no newline ever arrives, so
    // no response is owed, and the daemon must just reap the connection.
    Client probe = connect_with_retry(cfg.socket, kConnectTimeoutMs);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string name = cfg.socket.substr(1);  // abstract namespace
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, name.data(), name.size());
    const auto len = static_cast<socklen_t>(
        offsetof(sockaddr_un, sun_path) + 1 + name.size());
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len), 0);
    const char truncated[] = R"({"op":"health")";
    ASSERT_GT(::send(fd, truncated, sizeof(truncated) - 1, 0), 0);
    ::close(fd);
  }
  {
    // A connection that closes without sending anything at all.
    Client silent = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  }
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  EXPECT_TRUE(ok_of(client.roundtrip(R"({"op":"health"})")));
  const ServerStats stats = rs.drain();
  EXPECT_EQ(stats.requests, stats.responses);  // the truncated line is not
                                               // a request -- nothing owed
}

TEST(ServeDaemon, ConcurrentIdenticalRequestsShareOneJobAndOneCacheStore) {
  telemetry::registry().reset();
  telemetry::set_enabled(true);
  ServerConfig cfg;
  cfg.socket = test_socket("dedup");
  cfg.threads = 2;  // the invariant must hold under real parallelism
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  {
    RunningServer rs(cfg);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
        responses[static_cast<std::size_t>(i)] = client.roundtrip(kGenerate);
      });
    }
    for (auto& t : clients) {
      t.join();
    }
    const ServerStats stats = rs.drain();
    EXPECT_EQ(stats.requests, static_cast<u64>(kClients));
    EXPECT_EQ(stats.responses, static_cast<u64>(kClients));
  }
  // However the 8 interleaved (join the in-flight computation or hit the
  // cache behind it), exactly one scheduler job ran and exactly one cache
  // admission happened.
  EXPECT_EQ(counter("serve.jobs"), 1u);
  EXPECT_EQ(counter("serve.cache.admit"), 1u);
  // Each request was the leader (1) or was coalesced: joins + cache hits
  // account for the other seven.
  EXPECT_EQ(counter("serve.dedup.hits") + counter("serve.cache.hit"),
            static_cast<u64>(kClients - 1));
  EXPECT_TRUE(ok_of(responses[0]));
  for (const auto& r : responses) {
    EXPECT_EQ(r, responses[0]);  // byte-identical fan-out
  }
  telemetry::set_enabled(false);
  telemetry::registry().reset();
}

TEST(ServeDaemon, ShedsConnectionsOverTheLimit) {
  ServerConfig cfg;
  cfg.socket = test_socket("shed");
  cfg.max_connections = 1;
  RunningServer rs(cfg);
  Client first = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  // Roundtrip so the first connection is registered before the second
  // arrives (accept order alone is not enough under TSan-level delays).
  EXPECT_TRUE(ok_of(first.roundtrip(R"({"op":"health"})")));
  Client second = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  const auto line = second.recv_line();  // courtesy line, then EOF
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(error_type_in(*line), "overloaded");
  EXPECT_FALSE(second.recv_line().has_value());
  // The surviving connection is unaffected.
  EXPECT_TRUE(ok_of(first.roundtrip(R"({"op":"health"})")));
  EXPECT_GE(rs.drain().shed, 1u);
}

TEST(ServeDaemon, DispatchFaultYieldsInternalErrorAndIsNotCached) {
  ServerConfig cfg;
  cfg.socket = test_socket("fault");
  RunningServer rs(cfg);
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  const failpoint::scoped_arm arm("serve.dispatch", /*skip=*/0, /*times=*/1);
  const std::string failed = client.roundtrip(kGenerate);
  EXPECT_FALSE(ok_of(failed));
  EXPECT_EQ(error_type_in(failed), "internal");
  // Errors are never admitted to the cache: the identical resend computes
  // fresh and succeeds.
  EXPECT_TRUE(ok_of(client.roundtrip(kGenerate)));
}

TEST(ServeDaemon, WcmsCacheSurvivesARestart) {
  const std::filesystem::path data_dir =
      std::filesystem::temp_directory_path() /
      ("wcmd_test_data_" + std::to_string(::getpid()));
  std::filesystem::remove_all(data_dir);
  ServerConfig cfg;
  cfg.socket = test_socket("persist");
  cfg.data_dir = data_dir.string();
  std::string cold;
  {
    RunningServer rs(cfg);
    Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
    cold = client.roundtrip(kGenerate);
    EXPECT_TRUE(ok_of(cold));
  }  // drain stores the WCMS cache under data_dir
  telemetry::registry().reset();
  telemetry::set_enabled(true);
  {
    RunningServer rs(cfg);
    Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
    EXPECT_EQ(client.roundtrip(kGenerate), cold);  // warmed from disk
  }
  EXPECT_GE(counter("serve.cache.hit"), 1u);
  EXPECT_EQ(counter("serve.jobs"), 0u);  // nothing was recomputed
  telemetry::set_enabled(false);
  telemetry::registry().reset();
  std::filesystem::remove_all(data_dir);
}

TEST(ServeDaemon, DrainOpAcksThenDrainsTheServer) {
  ServerConfig cfg;
  cfg.socket = test_socket("drainop");
  RunningServer rs(cfg);
  Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
  const auto resp = response_of(client.roundtrip(R"({"op":"drain","id":"d"})"));
  EXPECT_TRUE(resp.at("ok").as_bool());
  EXPECT_TRUE(resp.at("result").as_object().at("draining").as_bool());
  // The ack is the last thing this connection sees; serve() then returns
  // on its own -- no request_drain() from the test side.
  EXPECT_FALSE(client.recv_line().has_value());
  const ServerStats stats = rs.join();
  EXPECT_EQ(stats.requests, stats.responses);
}

TEST(ServeDaemon, DrainBalancesRequestsAndResponsesUnderTraffic) {
  ServerConfig cfg;
  cfg.socket = test_socket("balance");
  cfg.threads = 2;
  RunningServer rs(cfg);
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client = connect_with_retry(cfg.socket, kConnectTimeoutMs);
      for (int i = 0; i < 8; ++i) {
        const std::string req =
            R"({"op":"generate","params":{"E":)" +
            std::to_string(5 + 2 * ((c + i) % 3)) + R"(,"b":64,"k":1}})";
        EXPECT_TRUE(ok_of(client.roundtrip(req)));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  const ServerStats stats = rs.drain();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.requests, 4u * 8u);
  EXPECT_EQ(stats.requests, stats.responses);  // the zero-drop invariant
}

}  // namespace
}  // namespace wcm::serve
