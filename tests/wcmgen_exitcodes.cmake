# Exit-code contract for wcmgen (see docs/API.md "Error handling & exit
# codes"): 0 ok, 2 usage, 3 bad input file, 4 bad configuration, 5 internal,
# 6 degraded campaign (quarantined cells), 7 interrupted campaign.
#
# Run as:  cmake -DWCMGEN=<binary> -DWORKDIR=<dir> -P wcmgen_exitcodes.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<binary> -DWORKDIR=<dir>")
endif()

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# usage errors -> 2
expect_exit(2 ${WCMGEN})
expect_exit(2 ${WCMGEN} frobnicate)
expect_exit(2 ${WCMGEN} generate --E 15x --b 64)
expect_exit(2 ${WCMGEN} generate --E 5 --b 64 --no-such-flag)
expect_exit(2 ${WCMGEN} generate --E 5 --b 64 --strategy nope)
expect_exit(2 ${WCMGEN} sort --E 5 --b 64 --library nope)
expect_exit(2 ${WCMGEN} sort --E 5 --b 64 --algorithm nope)
expect_exit(2 ${WCMGEN} sort --E 5 --b 64 --input nope)
expect_exit(2 ${WCMGEN} evaluate --E 5 --side Q)
expect_exit(2 ${WCMGEN} inspect)
expect_exit(2 ${WCMGEN} sort --E 5 --b 64 --layout nope)
expect_exit(2 ${WCMGEN} prove --layout nope)
expect_exit(2 ${WCMGEN} prove --certify --bs 64x)
expect_exit(2 ${WCMGEN} prove --bs 64,128)  # grid axes need --certify

# The unknown-engine diagnostic must enumerate the registry (one list in
# prove.cpp feeds the error, all_engines(), and the describers), so a new
# engine can never be registered half-way.
execute_process(COMMAND ${WCMGEN} prove --engine quicksort
                RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rv EQUAL 2)
  message(FATAL_ERROR "prove --engine quicksort: expected exit 2, got ${rv}")
endif()
foreach(engine blocksort block-merge pairwise multiway bitonic radix scan
        shearsort)
  if(NOT err MATCHES "${engine}")
    message(FATAL_ERROR
      "unknown-engine diagnostic does not list '${engine}': ${err}")
  endif()
endforeach()

# help -> 0
expect_exit(0 ${WCMGEN} --help)
expect_exit(0 ${WCMGEN} generate --help)

# version -> 0, printing the git-describe build info and the cache salt
# (so an operator can tell at a glance whether two daemons share caches)
foreach(spelling version --version -V)
  execute_process(COMMAND ${WCMGEN} ${spelling}
                  RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "wcmgen ${spelling}: expected exit 0, got ${rv}")
  endif()
  if(NOT out MATCHES "^wcmgen [0-9]+\\.[0-9]+\\.[0-9]+ \\(.+\\)\n")
    message(FATAL_ERROR "wcmgen ${spelling}: malformed version line: ${out}")
  endif()
  if(NOT out MATCHES "cache salt: 0x[0-9a-f]+")
    message(FATAL_ERROR "wcmgen ${spelling}: missing cache salt: ${out}")
  endif()
endforeach()

# serve with malformed bounds is a usage error -> 2
expect_exit(2 ${WCMGEN} serve --queue-max 0)
expect_exit(2 ${WCMGEN} serve --no-such-flag x)

# bad configuration -> 4
expect_exit(4 ${WCMGEN} generate --E 0 --b 64)
expect_exit(4 ${WCMGEN} sort --E 5 --b 32 --w 32)   # b < 2w
expect_exit(4 ${WCMGEN} sort --E 5 --b 63)          # b not a power of two

# bad input file -> 3
expect_exit(3 ${WCMGEN} inspect --in ${WORKDIR}/definitely-missing.wcmi)
file(WRITE ${WORKDIR}/exitcode_corrupt.wcmi "XXXX this is not a wcmi file")
expect_exit(3 ${WCMGEN} inspect --in ${WORKDIR}/exitcode_corrupt.wcmi)

# analyze: usage -> 2, clean trace -> 0, diagnostics -> 1, corrupt -> 3
expect_exit(2 ${WCMGEN} analyze)
expect_exit(2 ${WCMGEN} analyze --in x.wcmt --no-such-flag)
file(WRITE ${WORKDIR}/exitcode_clean.wcmt "WCMT2 32 64 3\nF 0 64\nR 0:0 1:1\nB\n")
expect_exit(0 ${WCMGEN} analyze --in ${WORKDIR}/exitcode_clean.wcmt)
expect_exit(0 ${WCMGEN} analyze --in ${WORKDIR}/exitcode_clean.wcmt --json)
file(WRITE ${WORKDIR}/exitcode_racy.wcmt "WCMT2 32 64 3\nF 0 64\nW 0:5\nR 1:5\n")
expect_exit(1 ${WCMGEN} analyze --in ${WORKDIR}/exitcode_racy.wcmt)
file(WRITE ${WORKDIR}/exitcode_corrupt.wcmt "WCMT2 32 64 1\nR 99:0\n")
expect_exit(3 ${WCMGEN} analyze --in ${WORKDIR}/exitcode_corrupt.wcmt)
expect_exit(3 ${WCMGEN} analyze --in ${WORKDIR}/definitely-missing.wcmt)
file(REMOVE ${WORKDIR}/exitcode_clean.wcmt ${WORKDIR}/exitcode_racy.wcmt
     ${WORKDIR}/exitcode_corrupt.wcmt)

# sort --trace-out produces a trace that analyze accepts cleanly
expect_exit(0 ${WCMGEN} sort --E 5 --b 64 --k 1
            --trace-out ${WORKDIR}/exitcode_sort.wcmt)
expect_exit(0 ${WCMGEN} analyze --in ${WORKDIR}/exitcode_sort.wcmt)
file(REMOVE ${WORKDIR}/exitcode_sort.wcmt)

# internal error (injected simulator invariant break) -> 5
expect_exit(5 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=sort.pairwise.round
            ${WCMGEN} sort --E 5 --b 64 --k 1)
expect_exit(5 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=sim.smem.alloc
            ${WCMGEN} sort --E 5 --b 64 --k 1)

# happy path: generate, inspect round-trip -> 0
expect_exit(0 ${WCMGEN} generate --E 5 --b 64 --k 1
            --out ${WORKDIR}/exitcode_ok.wcmi)
expect_exit(0 ${WCMGEN} inspect --in ${WORKDIR}/exitcode_ok.wcmi)

# an injected I/O fault on a valid file still classifies as bad input -> 3
expect_exit(3 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=io.read.checksum
            ${WCMGEN} inspect --in ${WORKDIR}/exitcode_ok.wcmi)

# a malformed fault schedule is a usage error -> 2 (a typo'd chaos run
# must abort loudly, never silently arm nothing)
expect_exit(2 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=io.read.open=abc
            ${WCMGEN} sort --E 5 --b 64 --k 1)
expect_exit(2 ${CMAKE_COMMAND} -E env "WCM_FAILPOINTS==1"
            ${WCMGEN} sort --E 5 --b 64 --k 1)
expect_exit(2 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=io.read.open=1:2y
            ${WCMGEN} sort --E 5 --b 64 --k 1)

# degraded campaign (every cell's retries exhausted) -> 6
file(WRITE ${WORKDIR}/exitcode_campaign.json
     [[{"grid": [{"engine": "pairwise", "E": 5, "b": 64, "k": [1]}]}]])
expect_exit(6 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=runtime.worker.job
            ${WCMGEN} campaign ${WORKDIR}/exitcode_campaign.json
            --threads 1 --no-cache --quiet)

file(REMOVE ${WORKDIR}/exitcode_corrupt.wcmi ${WORKDIR}/exitcode_ok.wcmi
     ${WORKDIR}/exitcode_campaign.json
     ${WORKDIR}/exitcode_campaign.json.wcmj)
