// Tests for the workload generators and input serialization.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "workload/inputs.hpp"
#include "workload/io.hpp"

namespace wcm::workload {
namespace {

TEST(Inputs, RandomPermutationIsPermutation) {
  const auto v = random_permutation(1000, 42);
  EXPECT_TRUE(is_permutation_of_iota(v));
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
}

TEST(Inputs, RandomDeterministicPerSeed) {
  EXPECT_EQ(random_permutation(100, 7), random_permutation(100, 7));
  EXPECT_NE(random_permutation(100, 7), random_permutation(100, 8));
}

TEST(Inputs, SortedAndReversed) {
  const auto s = sorted_input(5);
  EXPECT_EQ(s, (std::vector<word>{0, 1, 2, 3, 4}));
  const auto r = reversed_input(5);
  EXPECT_EQ(r, (std::vector<word>{4, 3, 2, 1, 0}));
}

TEST(Inputs, NearlySortedHasFewInversions) {
  const auto v = nearly_sorted_input(1000, 5, 3);
  EXPECT_TRUE(is_permutation_of_iota(v));
  std::size_t displaced = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    displaced += v[i] != static_cast<word>(i) ? 1u : 0u;
  }
  EXPECT_LE(displaced, 10u);  // 5 swaps displace at most 10 keys
}

TEST(Inputs, MakeInputDispatch) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 2;
  for (const auto kind : {InputKind::random, InputKind::sorted,
                          InputKind::reversed, InputKind::nearly_sorted,
                          InputKind::worst_case}) {
    const auto v = make_input(kind, n, cfg, 1);
    EXPECT_EQ(v.size(), n);
    EXPECT_TRUE(is_permutation_of_iota(v)) << to_string(kind);
  }
}

TEST(Inputs, WorstCaseFamilySeedChangesInput) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 2;
  EXPECT_NE(make_input(InputKind::worst_case, n, cfg, 1),
            make_input(InputKind::worst_case, n, cfg, 2));
}

TEST(Inputs, IsPermutationRejectsBadVectors) {
  EXPECT_FALSE(is_permutation_of_iota({0, 0}));
  EXPECT_FALSE(is_permutation_of_iota({0, 2}));
  EXPECT_FALSE(is_permutation_of_iota({-1, 0}));
  EXPECT_TRUE(is_permutation_of_iota({}));
  EXPECT_TRUE(is_permutation_of_iota({1, 0, 2}));
}

TEST(Inputs, KindNames) {
  EXPECT_STREQ(to_string(InputKind::random), "random");
  EXPECT_STREQ(to_string(InputKind::worst_case), "worst-case");
}

class IoTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("wcm_io_test_" + std::to_string(::getpid()) + ".bin");
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(IoTest, BinaryRoundTrip) {
  const auto keys = random_permutation(777, 5);
  write_binary(path_, keys);
  EXPECT_EQ(read_binary(path_), keys);
}

TEST_F(IoTest, BinaryEmptyRoundTrip) {
  write_binary(path_, {});
  EXPECT_TRUE(read_binary(path_).empty());
}

TEST_F(IoTest, RejectsGarbage) {
  {
    std::ofstream os(path_, std::ios::binary);
    os << "not a wcmi file at all";
  }
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoTest, RejectsTruncated) {
  const auto keys = random_permutation(100, 5);
  write_binary(path_, keys);
  std::filesystem::resize_file(path_, 30);
  EXPECT_THROW((void)read_binary(path_), io_error);
}

TEST_F(IoTest, CsvHasHeaderAndRows) {
  write_csv(path_, {3, 1, 2});
  std::ifstream is(path_);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "key");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
}

}  // namespace
}  // namespace wcm::workload
