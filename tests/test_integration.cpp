// End-to-end integration tests: the paper's qualitative claims, verified on
// the full pipeline (generator -> simulated sort -> cost model) at test-
// friendly sizes.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.hpp"
#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm {
namespace {

struct DeviceLibCase {
  gpusim::Device device;
  sort::SortConfig config;
  sort::MergeSortLibrary library;
};

class WorstVsRandom : public ::testing::TestWithParam<DeviceLibCase> {};

// The paper's headline experiment: constructed inputs are measurably slower
// than random inputs, and incur more bank conflicts, on every device /
// library / parameter combination evaluated.
TEST_P(WorstVsRandom, WorstCaseSlowerAndMoreConflicted) {
  const auto& p = GetParam();
  const std::size_t n = p.config.tile() * 8;
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, p.config, 3);
  const auto random =
      workload::make_input(workload::InputKind::random, n, p.config, 3);
  const auto rw = sort::pairwise_merge_sort(worst, p.config, p.device,
                                            p.library);
  const auto rr = sort::pairwise_merge_sort(random, p.config, p.device,
                                            p.library);
  EXPECT_GT(rw.seconds(), rr.seconds());
  EXPECT_GT(rw.conflicts_per_element(), rr.conflicts_per_element());
  EXPECT_GT(rw.beta2(), rr.beta2());
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, WorstVsRandom,
    ::testing::Values(
        DeviceLibCase{gpusim::quadro_m4000(), sort::params_15_512(),
                      sort::MergeSortLibrary::thrust},
        DeviceLibCase{gpusim::quadro_m4000(), sort::params_15_128(),
                      sort::MergeSortLibrary::mgpu},
        DeviceLibCase{gpusim::rtx_2080ti(), sort::params_15_512(),
                      sort::MergeSortLibrary::thrust},
        DeviceLibCase{gpusim::rtx_2080ti(), sort::params_17_256(),
                      sort::MergeSortLibrary::thrust},
        DeviceLibCase{gpusim::rtx_2080ti(), sort::params_17_256(),
                      sort::MergeSortLibrary::mgpu}),
    [](const auto& tinfo) {
      return std::string(tinfo.param.device.cc_major == 5 ? "M4000_"
                                                         : "RTX2080Ti_") +
             to_string(tinfo.param.library) + "_E" +
             std::to_string(tinfo.param.config.E) + "_b" +
             std::to_string(tinfo.param.config.b);
    });

// Random inputs produce beta_2 in the low single digits (Karsin et al.
// measured ~2.2 for Modern GPU); the constructed inputs drive the attacked
// rounds to ~E.
TEST(Integration, RandomBeta2IsSmall) {
  const auto cfg = sort::params_15_128();
  const std::size_t n = cfg.tile() * 8;
  const auto input = workload::random_permutation(n, 11);
  const auto r = sort::pairwise_merge_sort(input, cfg,
                                           gpusim::quadro_m4000());
  EXPECT_GT(r.beta2(), 1.5);
  EXPECT_LT(r.beta2(), 4.5);
}

TEST(Integration, SortedInputGentlerThanRandom) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 8;
  const auto dev = gpusim::quadro_m4000();
  const auto r_sorted = sort::pairwise_merge_sort(
      workload::sorted_input(n), cfg, dev);
  const auto r_random = sort::pairwise_merge_sort(
      workload::random_permutation(n, 1), cfg, dev);
  EXPECT_LT(r_sorted.conflicts_per_element(),
            r_random.conflicts_per_element());
}

// Figure 6's qualitative content: both conflicts/element and runtime/element
// grow with N (logarithmically — each doubling adds one attacked round), and
// the conflict curve predicts the runtime curve.
TEST(Integration, ConflictsAndRuntimePerElementGrowWithN) {
  analysis::SweepSpec spec;
  spec.device = gpusim::quadro_m4000();
  spec.config = sort::SortConfig{5, 64, 32};
  spec.input = workload::InputKind::worst_case;
  spec.min_k = 1;
  spec.max_k = 4;
  const auto s = analysis::run_sweep(spec);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s[i].conflicts_per_elem, s[i - 1].conflicts_per_elem);
  }
  // Log growth: increments per doubling shrink or stay roughly constant.
  const double inc1 = s[1].conflicts_per_elem - s[0].conflicts_per_elem;
  const double inc3 = s[3].conflicts_per_elem - s[2].conflicts_per_elem;
  EXPECT_LT(std::abs(inc3 - inc1), 0.5 * inc1 + 0.2);
}

// The Sec. IV-B occupancy finding, end to end: on the 2080 Ti model,
// E=15,b=512 beats E=17,b=256 on random inputs, but suffers a larger
// relative slowdown on the constructed inputs.
TEST(Integration, OccupancyTradeoffOn2080Ti) {
  const auto dev = gpusim::rtx_2080ti();
  const auto full = sort::params_15_512();
  const auto partial = sort::params_17_256();
  // k = 5: large enough that the occupancy asymmetry dominates the fixed
  // per-kernel overheads (the crossover sits around k = 4).
  const std::size_t n_full = full.tile() * 32;
  const std::size_t n_partial = partial.tile() * 32;

  const auto full_rand = sort::pairwise_merge_sort(
      workload::random_permutation(n_full, 2), full, dev);
  const auto full_worst = sort::pairwise_merge_sort(
      workload::make_input(workload::InputKind::worst_case, n_full, full, 2),
      full, dev);
  const auto part_rand = sort::pairwise_merge_sort(
      workload::random_permutation(n_partial, 2), partial, dev);
  const auto part_worst = sort::pairwise_merge_sort(
      workload::make_input(workload::InputKind::worst_case, n_partial,
                           partial, 2),
      partial, dev);

  EXPECT_GT(full_rand.throughput(), part_rand.throughput());
  const double slow_full =
      analysis::slowdown_percent(full_rand.seconds(), full_worst.seconds());
  const double slow_partial =
      analysis::slowdown_percent(part_rand.seconds(), part_worst.seconds());
  EXPECT_GT(slow_full, slow_partial);
  EXPECT_GT(slow_partial, 0.0);
}

// Sec. III-C: the effective parallelism falls to ceil(w/E); check the
// attacked rounds' mean serialization implies exactly that loss.
TEST(Integration, EffectiveParallelismLoss) {
  const sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 4;
  const auto input = core::worst_case_input(n, cfg);
  const auto r = sort::pairwise_merge_sort(input, cfg,
                                           gpusim::quadro_m4000());
  const auto& attacked = r.rounds.back().kernel;
  const double beta2 = gpusim::beta2(attacked);
  // Parallel time is inflated by beta2 = E; effective threads = w / E.
  const double effective = cfg.w / beta2;
  EXPECT_NEAR(effective,
              static_cast<double>(cfg.w) / cfg.E, 1e-9);
  EXPECT_LE(std::ceil(effective),
            static_cast<double>(
                core::effective_parallelism(cfg.w, cfg.E)) + 1.0);
}

}  // namespace
}  // namespace wcm
