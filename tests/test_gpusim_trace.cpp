// Tests for trace recording, replay (including cross-layout re-pricing),
// and serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/trace.hpp"
#include "sort/blocksort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::gpusim {
namespace {

TEST(Trace, RecordsReadsAndWrites) {
  SharedMemory shm(32, 64);
  TraceRecorder rec(32);
  shm.attach_trace(&rec);
  const std::vector<LaneRead> reads{{0, 1}, {1, 33}};
  shm.warp_read(reads);
  const std::vector<LaneWrite> writes{{2, 5, 42}};
  shm.warp_write(writes);
  shm.attach_trace(nullptr);
  shm.warp_read(reads);  // not recorded

  const Trace& t = rec.trace();
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_FALSE(t.steps[0].is_write);
  EXPECT_TRUE(t.steps[1].is_write);
  EXPECT_EQ(t.total_accesses(), 3u);
  EXPECT_EQ(t.steps[0].accesses[1],
            (std::pair<u32, std::size_t>{1u, 33u}));
}

TEST(Trace, ReplayReproducesLiveStats) {
  // Record a whole block sort and replay it: identical statistics.
  const wcm::sort::SortConfig cfg{5, 64, 32};
  auto tile = workload::random_permutation(cfg.tile(), 13);
  SharedMemory shm(cfg.w, cfg.tile());
  TraceRecorder rec(cfg.w);
  shm.attach_trace(&rec);
  KernelStats stats;
  wcm::sort::simulate_block_sort(shm, tile, cfg, stats);

  const auto replayed = replay_stats(rec.trace(), shm.layout());
  EXPECT_EQ(replayed.steps, shm.stats().steps);
  EXPECT_EQ(replayed.requests, shm.stats().requests);
  EXPECT_EQ(replayed.serialization_cycles,
            shm.stats().serialization_cycles);
  EXPECT_EQ(replayed.replays, shm.stats().replays);
  EXPECT_EQ(replayed.conflicting_accesses,
            shm.stats().conflicting_accesses);
}

TEST(Trace, CrossLayoutRepricing) {
  // The same access stream costs less under the padded layout (a stride-w
  // pattern) — offline, without re-running anything.
  Trace t;
  t.warp_size = 32;
  TraceStep step;
  for (u32 lane = 0; lane < 32; ++lane) {
    step.accesses.emplace_back(lane, static_cast<std::size_t>(lane) * 32);
  }
  t.steps.push_back(step);

  const auto unpadded = replay_stats(t, SharedLayout{32, 0});
  const auto padded = replay_stats(t, SharedLayout{32, 1});
  EXPECT_EQ(unpadded.replays, 31u);
  EXPECT_EQ(padded.replays, 0u);
}

TEST(Trace, SerializationRoundTrip) {
  SharedMemory shm(32, 64);
  TraceRecorder rec(32);
  shm.attach_trace(&rec);
  shm.warp_read(std::vector<LaneRead>{{0, 7}, {5, 39}});
  shm.warp_write(std::vector<LaneWrite>{{1, 2, 9}});

  std::stringstream ss;
  write_trace(ss, rec.trace());
  const Trace parsed = read_trace(ss);
  ASSERT_EQ(parsed.steps.size(), 2u);
  EXPECT_EQ(parsed.warp_size, 32u);
  EXPECT_EQ(parsed.steps[0].accesses, rec.trace().steps[0].accesses);
  EXPECT_EQ(parsed.steps[1].is_write, true);

  const auto a = replay_stats(rec.trace(), SharedLayout{32, 0});
  const auto b = replay_stats(parsed, SharedLayout{32, 0});
  EXPECT_EQ(a.serialization_cycles, b.serialization_cycles);
}

TEST(Trace, ParserRejectsGarbage) {
  std::istringstream bad1("nope");
  EXPECT_THROW((void)read_trace(bad1), parse_error);
  std::istringstream bad2("WCMT 32 2\nR 0:1\n");  // truncated
  EXPECT_THROW((void)read_trace(bad2), parse_error);
  std::istringstream bad3("WCMT 32 1\nX 0:1\n");  // bad op
  EXPECT_THROW((void)read_trace(bad3), parse_error);
  std::istringstream bad4("WCMT 32 1\nR 0-1\n");  // bad access
  EXPECT_THROW((void)read_trace(bad4), parse_error);
  std::istringstream bad5("WCMT 32 1\nR x:1\n");  // non-numeric lane
  EXPECT_THROW((void)read_trace(bad5), parse_error);
  std::istringstream bad6("WCMT 32 1\nR 0:1z\n");  // trailing garbage
  EXPECT_THROW((void)read_trace(bad6), parse_error);
}

TEST(Trace, ReplayRequiresMatchingWidth) {
  Trace t;
  t.warp_size = 32;
  EXPECT_THROW((void)replay_stats(t, SharedLayout{16, 0}), contract_error);
}

}  // namespace
}  // namespace wcm::gpusim
