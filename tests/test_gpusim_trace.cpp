// Tests for trace recording, replay (including cross-layout re-pricing and
// per-step costs), and the v1/v2 text formats with their hardened parser.

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/trace.hpp"
#include "sort/blocksort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::gpusim {
namespace {

TEST(Trace, RecordsReadsAndWrites) {
  SharedMemory shm(32, 64);
  TraceRecorder rec(32);
  shm.attach_trace(&rec);
  const std::vector<LaneRead> reads{{0, 1}, {1, 33}};
  shm.warp_read(reads);
  const std::vector<LaneWrite> writes{{2, 5, 42}};
  shm.warp_write(writes);
  shm.attach_trace(nullptr);
  shm.warp_read(reads);  // not recorded

  const Trace& t = rec.trace();
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_FALSE(t.steps[0].is_write());
  EXPECT_TRUE(t.steps[1].is_write());
  EXPECT_EQ(t.total_accesses(), 3u);
  EXPECT_EQ(t.steps[0].accesses[1],
            (std::pair<u32, std::size_t>{1u, 33u}));
}

TEST(Trace, AttachAdoptsGeometryAndRecordsMarkers) {
  SharedMemory shm(32, 64);
  TraceRecorder rec;
  shm.attach_trace(&rec);
  EXPECT_EQ(rec.trace().warp_size, 32u);
  EXPECT_EQ(rec.trace().logical_words, 64u);

  const std::vector<word> values{1, 2, 3, 4};
  shm.fill(values, 8);
  shm.barrier();
  shm.set_atomic_section(true);
  shm.warp_read(std::vector<LaneRead>{{0, 8}});
  shm.warp_write(std::vector<LaneWrite>{{0, 8, 7}});
  shm.set_atomic_section(false);
  shm.warp_read(std::vector<LaneRead>{{1, 9}});

  const Trace& t = rec.trace();
  ASSERT_EQ(t.steps.size(), 5u);
  EXPECT_EQ(t.steps[0].kind, StepKind::fill);
  EXPECT_EQ(t.steps[0].fill_base, 8u);
  EXPECT_EQ(t.steps[0].fill_count, 4u);
  EXPECT_EQ(t.steps[1].kind, StepKind::barrier);
  EXPECT_TRUE(t.steps[2].atomic);
  EXPECT_TRUE(t.steps[3].atomic);
  EXPECT_TRUE(t.steps[3].is_write());
  EXPECT_FALSE(t.steps[4].atomic);
  EXPECT_EQ(t.barrier_count(), 1u);
  EXPECT_EQ(t.access_steps(), 3u);
  EXPECT_EQ(t.steps[4].active_mask(), u64{1} << 1);
}

TEST(Trace, ReplayReproducesLiveStats) {
  // Record a whole block sort and replay it: identical statistics.
  const wcm::sort::SortConfig cfg{5, 64, 32};
  auto tile = workload::random_permutation(cfg.tile(), 13);
  SharedMemory shm(cfg.w, cfg.tile());
  TraceRecorder rec(cfg.w);
  shm.attach_trace(&rec);
  KernelStats stats;
  wcm::sort::simulate_block_sort(shm, tile, cfg, stats);

  const auto replayed = replay_stats(rec.trace(), shm.layout());
  EXPECT_EQ(replayed.steps, shm.stats().steps);
  EXPECT_EQ(replayed.requests, shm.stats().requests);
  EXPECT_EQ(replayed.serialization_cycles,
            shm.stats().serialization_cycles);
  EXPECT_EQ(replayed.replays, shm.stats().replays);
  EXPECT_EQ(replayed.conflicting_accesses,
            shm.stats().conflicting_accesses);

  // The per-step costs are index-aligned with the steps (markers are free)
  // and sum to the aggregate replay.
  const auto costs = replay_step_costs(rec.trace(), shm.layout());
  ASSERT_EQ(costs.size(), rec.trace().steps.size());
  dmm::StepCost total;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (!rec.trace().steps[i].is_access()) {
      EXPECT_EQ(costs[i], dmm::StepCost{});
    }
    total += costs[i];
  }
  EXPECT_EQ(total.serialization, replayed.serialization_cycles);
  EXPECT_EQ(total.requests, replayed.requests);
}

TEST(Trace, CrossLayoutRepricing) {
  // The same access stream costs less under the padded layout (a stride-w
  // pattern) — offline, without re-running anything.
  Trace t;
  t.warp_size = 32;
  TraceStep step;
  for (u32 lane = 0; lane < 32; ++lane) {
    step.accesses.emplace_back(lane, static_cast<std::size_t>(lane) * 32);
  }
  t.steps.push_back(step);

  const auto unpadded = replay_stats(t, SharedLayout{32, 0});
  const auto padded = replay_stats(t, SharedLayout{32, 1});
  EXPECT_EQ(unpadded.replays, 31u);
  EXPECT_EQ(padded.replays, 0u);
}

TEST(Trace, SerializationRoundTrip) {
  SharedMemory shm(32, 64);
  TraceRecorder rec(32);
  shm.attach_trace(&rec);
  shm.fill(std::vector<word>{1, 2}, 0);
  shm.warp_read(std::vector<LaneRead>{{0, 7}, {5, 39}});
  shm.barrier();
  shm.set_atomic_section(true);
  shm.warp_write(std::vector<LaneWrite>{{1, 2, 9}});
  shm.set_atomic_section(false);

  std::stringstream ss;
  write_trace(ss, rec.trace());
  const Trace parsed = read_trace(ss);
  ASSERT_EQ(parsed.steps.size(), 4u);
  EXPECT_EQ(parsed.warp_size, 32u);
  EXPECT_EQ(parsed.logical_words, 64u);
  EXPECT_EQ(parsed.steps[0].kind, StepKind::fill);
  EXPECT_EQ(parsed.steps[0].fill_count, 2u);
  EXPECT_EQ(parsed.steps[1].accesses, rec.trace().steps[1].accesses);
  EXPECT_EQ(parsed.steps[2].kind, StepKind::barrier);
  EXPECT_TRUE(parsed.steps[3].is_write());
  EXPECT_TRUE(parsed.steps[3].atomic);

  const auto a = replay_stats(rec.trace(), SharedLayout{32, 0});
  const auto b = replay_stats(parsed, SharedLayout{32, 0});
  EXPECT_EQ(a.serialization_cycles, b.serialization_cycles);
}

TEST(Trace, ParsesV1Streams) {
  std::istringstream v1("WCMT 32 2\nR 0:1 1:2\nW 3:7\n");
  const Trace t = read_trace(v1);
  EXPECT_EQ(t.warp_size, 32u);
  EXPECT_EQ(t.logical_words, 0u);  // unknown in v1
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_FALSE(t.steps[0].is_write());
  EXPECT_TRUE(t.steps[1].is_write());
  EXPECT_FALSE(t.steps[1].atomic);
}

TEST(Trace, ParserRejectsGarbage) {
  std::istringstream bad1("nope");
  EXPECT_THROW((void)read_trace(bad1), parse_error);
  std::istringstream bad2("WCMT 32 2\nR 0:1\n");  // truncated
  EXPECT_THROW((void)read_trace(bad2), parse_error);
  std::istringstream bad3("WCMT 32 1\nX 0:1\n");  // bad op
  EXPECT_THROW((void)read_trace(bad3), parse_error);
  std::istringstream bad4("WCMT 32 1\nR 0-1\n");  // bad access
  EXPECT_THROW((void)read_trace(bad4), parse_error);
  std::istringstream bad5("WCMT 32 1\nR x:1\n");  // non-numeric lane
  EXPECT_THROW((void)read_trace(bad5), parse_error);
  std::istringstream bad6("WCMT 32 1\nR 0:1z\n");  // trailing garbage
  EXPECT_THROW((void)read_trace(bad6), parse_error);
}

TEST(Trace, ParserRejectsHardenedCases) {
  // Duplicate lane within one step.
  std::istringstream dup("WCMT2 32 64 1\nR 3:1 3:2\n");
  EXPECT_THROW((void)read_trace(dup), parse_error);
  // Lane id outside the declared warp.
  std::istringstream lane("WCMT2 32 64 1\nR 32:1\n");
  EXPECT_THROW((void)read_trace(lane), parse_error);
  // Trailing garbage after the declared steps.
  std::istringstream tail("WCMT2 32 64 1\nR 0:1\njunk\n");
  EXPECT_THROW((void)read_trace(tail), parse_error);
  // Trailing whitespace-only lines are fine.
  std::istringstream pad("WCMT2 32 64 1\nR 0:1\n   \n");
  EXPECT_NO_THROW((void)read_trace(pad));
  // v1 streams cannot carry v2 step kinds.
  std::istringstream atomic_v1("WCMT 32 1\nAR 0:1\n");
  EXPECT_THROW((void)read_trace(atomic_v1), parse_error);
  std::istringstream barrier_v1("WCMT 32 1\nB\n");
  EXPECT_THROW((void)read_trace(barrier_v1), parse_error);
  // Barrier lines take no operands; fills take exactly two.
  std::istringstream btail("WCMT2 32 64 1\nB 3\n");
  EXPECT_THROW((void)read_trace(btail), parse_error);
  std::istringstream fshort("WCMT2 32 64 1\nF 3\n");
  EXPECT_THROW((void)read_trace(fshort), parse_error);
  std::istringstream flong("WCMT2 32 64 1\nF 3 4 5\n");
  EXPECT_THROW((void)read_trace(flong), parse_error);
  // Warp sizes outside 1..64 are rejected up front.
  std::istringstream warp0("WCMT2 0 64 0\n");
  EXPECT_THROW((void)read_trace(warp0), parse_error);
  std::istringstream warp65("WCMT2 65 64 0\n");
  EXPECT_THROW((void)read_trace(warp65), parse_error);
}

TEST(Trace, ReplayRequiresMatchingWidth) {
  Trace t;
  t.warp_size = 32;
  EXPECT_THROW((void)replay_stats(t, SharedLayout{16, 0}), contract_error);
}

}  // namespace
}  // namespace wcm::gpusim
