// Unit tests for the kernel sanitizer's structural passes: the epoch-based
// race detector (analyze/race.hpp) and the memory hygiene pass
// (analyze/memcheck.hpp), plus the analyzer front door's gating and
// rendering.  Fixtures are hand-built traces — the smallest streams that
// exhibit each hazard — alongside a recorder-captured clean kernel.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/memcheck.hpp"
#include "analyze/race.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/trace.hpp"

namespace wcm {
namespace {

using analyze::Diagnostic;
using analyze::Rule;
using analyze::Severity;
using gpusim::StepKind;
using gpusim::Trace;
using gpusim::TraceStep;

TraceStep access(StepKind kind,
                 std::vector<std::pair<u32, std::size_t>> accesses,
                 bool atomic = false) {
  TraceStep step;
  step.kind = kind;
  step.atomic = atomic;
  step.accesses = std::move(accesses);
  return step;
}

TraceStep barrier() {
  TraceStep step;
  step.kind = StepKind::barrier;
  return step;
}

TraceStep fill(std::size_t base, std::size_t count) {
  TraceStep step;
  step.kind = StepKind::fill;
  step.fill_base = base;
  step.fill_count = count;
  return step;
}

Trace make_trace(std::vector<TraceStep> steps, std::size_t words = 64,
                 u32 warp_size = 32) {
  Trace t;
  t.warp_size = warp_size;
  t.logical_words = words;
  t.steps = std::move(steps);
  return t;
}

std::size_t count_rule(const std::vector<Diagnostic>& ds, Rule rule) {
  std::size_t n = 0;
  for (const auto& d : ds) {
    n += d.rule == rule ? 1 : 0;
  }
  return n;
}

// ---------------------------------------------------------------- races --

TEST(AnalyzeRace, WriteThenReadRaces) {
  const auto t = make_trace({access(StepKind::write, {{0, 5}}),
                             access(StepKind::read, {{1, 5}})});
  const auto ds = analyze::check_races(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, Rule::write_read_race);
  EXPECT_EQ(ds[0].severity, Severity::error);
  EXPECT_EQ(ds[0].step, 1u);
  EXPECT_EQ(ds[0].lanes, (std::vector<u32>{0, 1}));
}

TEST(AnalyzeRace, WriteThenWriteRaces) {
  const auto t = make_trace({access(StepKind::write, {{3, 9}}),
                             access(StepKind::write, {{1, 9}})});
  const auto ds = analyze::check_races(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, Rule::write_write_race);
  EXPECT_EQ(ds[0].step, 1u);
  EXPECT_EQ(ds[0].lanes, (std::vector<u32>{1, 3}));
}

TEST(AnalyzeRace, ReadThenWriteRaces) {
  const auto t = make_trace({access(StepKind::read, {{2, 7}}),
                             access(StepKind::write, {{0, 7}})});
  const auto ds = analyze::check_races(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, Rule::read_write_race);
  EXPECT_EQ(ds[0].step, 1u);
  EXPECT_EQ(ds[0].lanes, (std::vector<u32>{0, 2}));
}

TEST(AnalyzeRace, SameLanePairsAreProgramOrdered) {
  // One thread re-reading and overwriting its own slot never races.
  const auto t = make_trace({access(StepKind::write, {{4, 5}}),
                             access(StepKind::read, {{4, 5}}),
                             access(StepKind::write, {{4, 5}})});
  EXPECT_TRUE(analyze::check_races(t).empty());
}

TEST(AnalyzeRace, BarrierSeparatesEpochs) {
  const auto racy = make_trace({access(StepKind::write, {{0, 5}}),
                                access(StepKind::read, {{1, 5}})});
  const auto fenced = make_trace({access(StepKind::write, {{0, 5}}),
                                  barrier(),
                                  access(StepKind::read, {{1, 5}})});
  EXPECT_EQ(analyze::check_races(racy).size(), 1u);
  EXPECT_TRUE(analyze::check_races(fenced).empty());
}

TEST(AnalyzeRace, RacesReappearInLaterEpochs) {
  // The barrier clears state; a racy pair *after* it is still caught.
  const auto t = make_trace({access(StepKind::write, {{0, 5}}),
                             barrier(),
                             access(StepKind::write, {{0, 5}}),
                             access(StepKind::read, {{1, 5}})});
  const auto ds = analyze::check_races(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].step, 3u);
}

TEST(AnalyzeRace, AtomicPairsAreExempt) {
  // Both halves atomic (modeled histogram update) -> no race; an atomic
  // store against a plain load still races.
  const auto both = make_trace({access(StepKind::write, {{0, 5}}, true),
                                access(StepKind::read, {{1, 5}}, true)});
  EXPECT_TRUE(analyze::check_races(both).empty());

  const auto mixed = make_trace({access(StepKind::write, {{0, 5}}, true),
                                 access(StepKind::read, {{1, 5}})});
  ASSERT_EQ(analyze::check_races(mixed).size(), 1u);
  EXPECT_EQ(analyze::check_races(mixed)[0].rule, Rule::write_read_race);
}

TEST(AnalyzeRace, IntraStepCrewReportedOnce) {
  // Two lanes storing to one address in the same step is the DMM's CREW
  // violation — one intra-step-crew finding, not a write-write race too.
  const auto t = make_trace({access(StepKind::write, {{2, 5}, {6, 5}})});
  const auto ds = analyze::check_races(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, Rule::intra_step_crew);
  EXPECT_EQ(ds[0].step, 0u);
  EXPECT_EQ(ds[0].lanes, (std::vector<u32>{2, 6}));
}

TEST(AnalyzeRace, BroadcastReadsAreClean) {
  // Many lanes *loading* one address is the DMM broadcast — no hazard.
  const auto t = make_trace(
      {access(StepKind::write, {{0, 5}}),
       barrier(),
       access(StepKind::read, {{0, 5}, {1, 5}, {2, 5}, {3, 5}})});
  EXPECT_TRUE(analyze::check_races(t).empty());
}

TEST(AnalyzeRace, DistinctAddressesNeverRace) {
  const auto t = make_trace({access(StepKind::write, {{0, 1}, {1, 2}}),
                             access(StepKind::read, {{0, 2}, {1, 1}}),
                             access(StepKind::write, {{0, 2}, {1, 1}})});
  // Cross-lane write->read and read->write on *different* addresses is the
  // staging/unstaging pattern — racy.  Same trace with barriers is clean.
  EXPECT_FALSE(analyze::check_races(t).empty());

  const auto fenced = make_trace({access(StepKind::write, {{0, 1}, {1, 2}}),
                                  barrier(),
                                  access(StepKind::read, {{0, 2}, {1, 1}}),
                                  barrier(),
                                  access(StepKind::write, {{0, 2}, {1, 1}})});
  EXPECT_TRUE(analyze::check_races(fenced).empty());
}

// ------------------------------------------------------------- memcheck --

TEST(AnalyzeMemcheck, OutOfBoundsAccessAndFill) {
  const auto t = make_trace({fill(0, 4),
                             access(StepKind::read, {{0, 9}}),
                             fill(2, 4)},
                            /*words=*/4);
  const auto ds = analyze::check_memory(t);
  EXPECT_EQ(count_rule(ds, Rule::out_of_bounds), 2u);
  // v1 traces carry no word count: bounds checking is disabled there.
  auto v1 = t;
  v1.logical_words = 0;
  EXPECT_EQ(count_rule(analyze::check_memory(v1), Rule::out_of_bounds), 0u);
}

TEST(AnalyzeMemcheck, UninitializedReadIsAWarning) {
  const auto t = make_trace({access(StepKind::read, {{3, 7}})});
  const auto ds = analyze::check_memory(t);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, Rule::uninitialized_read);
  EXPECT_EQ(ds[0].severity, Severity::warning);
  EXPECT_EQ(ds[0].lanes, (std::vector<u32>{3}));
}

TEST(AnalyzeMemcheck, FillAndStoresInitialize) {
  // Initialization is data state: it survives barriers, and a store
  // initializes its word for later epochs.
  const auto t = make_trace({fill(0, 8),
                             access(StepKind::read, {{0, 7}}),
                             access(StepKind::write, {{0, 9}}),
                             barrier(),
                             access(StepKind::read, {{1, 9}})});
  EXPECT_TRUE(analyze::check_memory(t).empty());
}

TEST(AnalyzeMemcheck, DuplicateLaneFlagged) {
  const auto t = make_trace({access(StepKind::read, {{5, 1}, {5, 2}})});
  const auto ds = analyze::check_memory(t);
  EXPECT_EQ(count_rule(ds, Rule::duplicate_lane), 1u);
}

TEST(AnalyzeMemcheck, LaneOutOfRangeFlagged) {
  const auto t = make_trace({access(StepKind::read, {{40, 1}})});
  const auto ds = analyze::check_memory(t);
  ASSERT_EQ(count_rule(ds, Rule::lane_out_of_range), 1u);
  // Lanes >= 64 (beyond the active-mask word) must not trip UB either.
  const auto wide = make_trace({access(StepKind::read, {{200, 1}})},
                               /*words=*/64, /*warp_size=*/32);
  EXPECT_EQ(count_rule(analyze::check_memory(wide), Rule::lane_out_of_range),
            1u);
}

// ------------------------------------------------- analyzer front door --

TEST(AnalyzeReport, CleanTraceCrossChecks) {
  const auto t = make_trace({fill(0, 64),
                             access(StepKind::write, {{0, 0}, {1, 1}}),
                             barrier(),
                             access(StepKind::read, {{0, 1}, {1, 0}})});
  const auto report = analyze::analyze_trace(t);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.cross_checked);
  EXPECT_EQ(report.steps, 4u);
  EXPECT_EQ(report.access_steps, 2u);
  EXPECT_EQ(report.barriers, 1u);
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 0u);
}

TEST(AnalyzeReport, StructuralErrorsGateTheCrossCheck) {
  // A duplicate-lane step would make the DMM replay throw; the analyzer
  // must skip the stride pass instead of dying.
  const auto t = make_trace({fill(0, 64),
                             access(StepKind::read, {{0, 1}, {0, 2}})});
  const auto report = analyze::analyze_trace(t);
  EXPECT_FALSE(report.cross_checked);
  EXPECT_EQ(count_rule(report.diagnostics, Rule::duplicate_lane), 1u);
}

TEST(AnalyzeReport, DiagnosticsSortByStep) {
  const auto t = make_trace({access(StepKind::read, {{0, 9}}),   // OOB
                             access(StepKind::write, {{0, 5}}),
                             access(StepKind::read, {{1, 5}})},  // race
                            /*words=*/8);
  const auto report = analyze::analyze_trace(t);
  ASSERT_GE(report.diagnostics.size(), 2u);
  for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
    EXPECT_LE(report.diagnostics[i - 1].step, report.diagnostics[i].step);
  }
}

TEST(AnalyzeReport, RendersTextAndJson) {
  const auto t = make_trace({fill(0, 64),
                             access(StepKind::write, {{0, 5}}),
                             access(StepKind::read, {{1, 5}})});
  const auto report = analyze::analyze_trace(t);
  ASSERT_FALSE(report.clean());

  std::ostringstream text;
  analyze::render_text(text, report, "fixture.wcmt");
  EXPECT_NE(text.str().find("write-read-race"), std::string::npos);
  EXPECT_NE(text.str().find("fixture.wcmt"), std::string::npos);

  std::ostringstream json;
  analyze::render_json(json, report, "fixture.wcmt");
  EXPECT_NE(json.str().find("\"rule\":\"write-read-race\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.str().find("\"lanes\":[0,1]"), std::string::npos);
}

TEST(AnalyzeReport, RecorderCapturedKernelIsClean) {
  // A well-synchronized staged exchange, captured through the live
  // recorder path rather than hand-built: fill, stage, barrier, unstage.
  gpusim::TraceRecorder rec;
  gpusim::SharedMemory shm(4, 16);
  shm.attach_trace(&rec);
  shm.fill(std::vector<gpusim::word>(16, 1));
  std::vector<gpusim::LaneWrite> stage;
  std::vector<gpusim::LaneRead> unstage;
  for (u32 lane = 0; lane < 4; ++lane) {
    stage.push_back({lane, lane, gpusim::word(lane)});
    unstage.push_back({lane, 3 - lane});
  }
  shm.warp_write(stage);
  shm.barrier();
  (void)shm.warp_read(unstage);
  shm.attach_trace(nullptr);

  const auto report = analyze::analyze_trace(rec.take());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.cross_checked);
  EXPECT_EQ(report.barriers, 1u);
}

}  // namespace
}  // namespace wcm
