// Tests for the full simulated pairwise merge sort: functional correctness
// against the CPU references (including the exact same merge tree), report
// integrity, stats invariants, and non-power-of-two run counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "sort/cpu_reference.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() { return SortConfig{5, 64, 32}; }

TEST(PairwiseSort, SortsRandomInput) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 8;
  const auto input = workload::random_permutation(n, 21);
  std::vector<word> out;
  const auto report = pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                                          MergeSortLibrary::thrust, &out);
  EXPECT_EQ(out, std_sort(input));
  EXPECT_EQ(report.n, n);
}

TEST(PairwiseSort, MatchesCpuMergeTree) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto input = workload::random_permutation(n, 22);
  std::vector<word> out;
  (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out);
  EXPECT_EQ(out, cpu_pairwise_merge_sort(input, cfg.tile()));
}

TEST(PairwiseSort, NonPowerOfTwoRunCount) {
  const SortConfig cfg = tiny();
  for (const std::size_t tiles : {1u, 3u, 5u, 6u, 7u}) {
    const std::size_t n = cfg.tile() * tiles;
    const auto input = workload::random_permutation(n, 30 + tiles);
    std::vector<word> out;
    (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                              MergeSortLibrary::thrust, &out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "tiles=" << tiles;
    EXPECT_EQ(out, std_sort(input));
  }
}

TEST(PairwiseSort, RejectsBadSizes) {
  const SortConfig cfg = tiny();
  const auto dev = gpusim::quadro_m4000();
  EXPECT_THROW((void)pairwise_merge_sort(std::vector<word>{}, cfg, dev),
               contract_error);
  const auto input = workload::random_permutation(cfg.tile() + 1, 1);
  EXPECT_THROW((void)pairwise_merge_sort(input, cfg, dev), contract_error);
}

TEST(PairwiseSort, RoundStructure) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 8;  // 3 global rounds
  const auto input = workload::random_permutation(n, 2);
  const auto report =
      pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  ASSERT_EQ(report.rounds.size(), 4u);  // block-sort + 3 merges
  EXPECT_EQ(report.rounds[0].name, "block-sort");
  EXPECT_EQ(report.rounds[3].name, "merge round 3");
  for (const auto& r : report.rounds) {
    EXPECT_GT(r.modeled_seconds, 0.0) << r.name;
  }
  // Totals are the sum of rounds.
  std::size_t req = 0;
  for (const auto& r : report.rounds) {
    req += r.kernel.shared.requests;
  }
  EXPECT_EQ(report.totals.shared.requests, req);
}

TEST(PairwiseSort, EveryGlobalRoundConsumesEachElementOnce) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto input = workload::random_permutation(n, 8);
  const auto report =
      pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    EXPECT_EQ(report.rounds[i].kernel.shared_merge_reads.requests, n)
        << report.rounds[i].name;
    EXPECT_EQ(report.rounds[i].kernel.elements_processed, n);
  }
}

TEST(PairwiseSort, ThroughputAndPerElementMetrics) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto input = workload::random_permutation(n, 8);
  const auto report =
      pairwise_merge_sort(input, cfg, gpusim::quadro_m4000());
  EXPECT_GT(report.throughput(), 0.0);
  EXPECT_GT(report.ms_per_element(), 0.0);
  EXPECT_GT(report.conflicts_per_element(), 0.0);
  EXPECT_GE(report.beta2(), 1.0);
  EXPECT_GE(report.beta1(), 1.0);
  EXPECT_NEAR(report.throughput() * report.seconds(),
              static_cast<double>(n), 1e-3);
  EXPECT_FALSE(report.summary().empty());
}

TEST(PairwiseSort, MgpuSlowerThanThrustSameInput) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 4;
  const auto input = workload::random_permutation(n, 8);
  const auto dev = gpusim::quadro_m4000();
  const auto thrust =
      pairwise_merge_sort(input, cfg, dev, MergeSortLibrary::thrust);
  const auto mgpu =
      pairwise_merge_sort(input, cfg, dev, MergeSortLibrary::mgpu);
  EXPECT_GT(mgpu.seconds(), thrust.seconds());
  // Same algorithm: identical conflict counts, different modeled time.
  EXPECT_EQ(mgpu.totals.shared.replays, thrust.totals.shared.replays);
}

TEST(PairwiseSort, AlreadySortedInputStillSorts) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 2;
  const auto input = workload::sorted_input(n);
  std::vector<word> out;
  (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out);
  EXPECT_EQ(out, input);
}

TEST(PairwiseSort, DuplicateKeysSupported) {
  const SortConfig cfg = tiny();
  const std::size_t n = cfg.tile() * 2;
  auto input = workload::random_permutation(n, 5);
  for (auto& x : input) {
    x /= 4;  // many duplicates
  }
  std::vector<word> out;
  (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000(),
                            MergeSortLibrary::thrust, &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(CpuReference, PartialRoundsProgressTowardSorted) {
  const auto input = workload::random_permutation(64, 3);
  const auto after0 = cpu_pairwise_partial(input, 8, 0);
  for (std::size_t lo = 0; lo < 64; lo += 8) {
    EXPECT_TRUE(std::is_sorted(
        after0.begin() + static_cast<std::ptrdiff_t>(lo),
        after0.begin() + static_cast<std::ptrdiff_t>(lo + 8)));
  }
  const auto after3 = cpu_pairwise_partial(input, 8, 3);
  EXPECT_TRUE(std::is_sorted(after3.begin(), after3.end()));
  EXPECT_EQ(after3, std_sort(input));
}

TEST(PairwiseSortAny, PadsAndStripsSentinels) {
  const SortConfig cfg = tiny();
  const auto dev = gpusim::quadro_m4000();
  for (const std::size_t n :
       {std::size_t{1}, cfg.tile() - 1, cfg.tile() + 1, cfg.tile() * 3 + 7}) {
    const auto input = workload::random_permutation(n, n);
    std::vector<word> out;
    const auto report = pairwise_merge_sort_any(input, cfg, dev,
                                                MergeSortLibrary::thrust,
                                                &out);
    EXPECT_EQ(out, std_sort(input)) << "n=" << n;
    EXPECT_EQ(report.n % cfg.tile(), 0u);
    EXPECT_GE(report.n, n);
  }
  EXPECT_THROW(
      (void)pairwise_merge_sort_any(std::vector<word>{}, cfg, dev),
      contract_error);
}

TEST(SyntheticDevice, ParameterScaling) {
  const auto d16 = gpusim::synthetic_device(16);
  EXPECT_EQ(d16.warp_size, 16u);
  EXPECT_EQ(d16.max_threads_per_sm, 1024u);
  const auto d64 = gpusim::synthetic_device(64);
  EXPECT_EQ(d64.warp_size, 64u);
  // End to end with a non-standard width.
  SortConfig cfg{7, 64, 16};
  const auto input = workload::random_permutation(cfg.tile() * 4, 2);
  std::vector<word> out;
  (void)pairwise_merge_sort(input, cfg, d16, MergeSortLibrary::thrust, &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(PairwiseSort, WarpSizeMustMatchDevice) {
  SortConfig cfg = tiny();
  cfg.w = 16;
  cfg.b = 64;
  const auto input = workload::random_permutation(cfg.tile() * 2, 5);
  EXPECT_THROW(
      (void)pairwise_merge_sort(input, cfg, gpusim::quadro_m4000()),
      contract_error);
}

}  // namespace
}  // namespace wcm::sort
