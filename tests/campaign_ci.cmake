# Campaign gate (ISSUE acceptance): the batch service must produce
# byte-identical aggregate JSON regardless of worker count and cache
# state, a warm rerun must be 100% cache hits, a WCM_CACHE_SALT bump must
# invalidate every entry, and every per-cell trace must lint clean.  The
# exit-code contract for campaign specs is probed at the end.
#
# Run as:  cmake -DWCMGEN=<bin> -DWCMLINT=<bin> -DWORKDIR=<dir>
#                -P campaign_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WCMLINT OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<bin> -DWCMLINT=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
      "expected exit ${code}, got '${rv}' for: ${ARGN}\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Run one campaign and check the fixed-format stderr summary
# ("campaign <name>: cells=... computed=... cached=...") against the
# expected computed/cached split.
function(run_campaign computed cached)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "campaign run failed (${rv}): ${ARGN}\n${err}")
  endif()
  if(NOT err MATCHES "computed=${computed} cached=${cached} ")
    message(FATAL_ERROR
      "expected computed=${computed} cached=${cached} for: ${ARGN}\n"
      "summary: ${err}")
  endif()
endfunction()

set(spec ${WORKDIR}/campaign_ci.json)
file(WRITE ${spec} [[{
  "name": "ci",
  "device": "m4000",
  "seed": 17,
  "grid": [
    {"engine": "pairwise", "E": 5, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2]},
    {"engine": "multiway", "E": 3, "b": 64, "input": "worst-case",
     "k": [1], "ways": 2}
  ]
}]])
set(cache ${WORKDIR}/campaign_ci.wcmc)
file(REMOVE ${cache})

# 1. Serial reference, no cache.
run_campaign(5 0 ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
             --out ${WORKDIR}/ref.json)

# 2. Parallel run: byte-identical to the serial reference.
run_campaign(5 0 ${WCMGEN} campaign ${spec} --threads 4 --no-cache --quiet
             --out ${WORKDIR}/par.json)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/ref.json ${WORKDIR}/par.json)

# 3. Cold cache computes everything; warm rerun is 100% hits; both are
#    byte-identical to the reference.
run_campaign(5 0 ${WCMGEN} campaign ${spec} --threads 4 --cache ${cache}
             --quiet --out ${WORKDIR}/cold.json)
run_campaign(0 5 ${WCMGEN} campaign ${spec} --threads 4 --cache ${cache}
             --quiet --out ${WORKDIR}/warm.json)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/ref.json ${WORKDIR}/cold.json)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/ref.json ${WORKDIR}/warm.json)

# 4. A code-version salt bump invalidates every entry (recomputes), and the
#    recomputed output is still identical.
run_campaign(5 0 ${CMAKE_COMMAND} -E env WCM_CACHE_SALT=ci-bump
             ${WCMGEN} campaign ${spec} --threads 4 --cache ${cache}
             --quiet --out ${WORKDIR}/salted.json)
expect_exit(0 ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/ref.json ${WORKDIR}/salted.json)

# 5. Every per-cell trace from a parallel campaign lints clean.
set(traces ${WORKDIR}/campaign_traces)
file(REMOVE_RECURSE ${traces})
run_campaign(5 0 ${WCMGEN} campaign ${spec} --threads 4 --no-cache --quiet
             --trace-dir ${traces} --out ${WORKDIR}/traced.json)
file(GLOB cell_traces ${traces}/*.wcmt)
list(LENGTH cell_traces n_traces)
if(NOT n_traces EQUAL 5)
  message(FATAL_ERROR "expected 5 cell traces, found ${n_traces}")
endif()
foreach(trace ${cell_traces})
  expect_exit(0 ${WCMLINT} ${trace})
endforeach()

# 6. Exit-code contract: 2 usage, 3 bad spec file, 4 bad configuration.
expect_exit(2 ${WCMGEN} campaign)
expect_exit(2 ${WCMGEN} campaign ${spec} --no-such-flag)
expect_exit(3 ${WCMGEN} campaign ${WORKDIR}/definitely-missing.json)
file(WRITE ${WORKDIR}/not_json.json "{ definitely not json")
expect_exit(3 ${WCMGEN} campaign ${WORKDIR}/not_json.json)
file(WRITE ${WORKDIR}/unknown_key.json
     [[{"grid": [{"engine": "pairwise", "spline": 1}]}]])
expect_exit(3 ${WCMGEN} campaign ${WORKDIR}/unknown_key.json)
file(WRITE ${WORKDIR}/bad_config.json
     [[{"grid": [{"engine": "pairwise", "E": 5, "b": 32, "w": 32}]}]])
expect_exit(4 ${WCMGEN} campaign ${WORKDIR}/bad_config.json)

# 7. An injected worker fault on every attempt exhausts the retry budget
#    and quarantines every cell: the campaign completes *degraded* -> 6
#    (the pre-quarantine fail-fast behavior is opt-in via --fail-fast,
#    which surfaces the first failure as an internal error -> 5).
expect_exit(6 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=runtime.worker.job
            ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet)
expect_exit(5 ${CMAKE_COMMAND} -E env WCM_FAILPOINTS=runtime.worker.job
            ${WCMGEN} campaign ${spec} --threads 1 --no-cache --quiet
            --fail-fast)

file(REMOVE_RECURSE ${traces})
file(REMOVE ${spec} ${cache} ${spec}.wcmj ${WORKDIR}/ref.json ${WORKDIR}/par.json
     ${WORKDIR}/cold.json ${WORKDIR}/warm.json ${WORKDIR}/salted.json
     ${WORKDIR}/traced.json ${WORKDIR}/not_json.json
     ${WORKDIR}/unknown_key.json ${WORKDIR}/bad_config.json)
