// Differential fuzzing: all five sorting substrates must agree with
// std::sort (and hence each other) across randomized configurations,
// sizes, and key distributions — duplicates, skew, near-sorted, adversarial.
// Every run also records its shared-memory trace and feeds it to the
// static analyzer: zero race/memcheck diagnostics, and the affine stride
// predictor must match the DMM-measured StepCost on every step.
//
// Trials run concurrently on the campaign runtime (parallel_map), each
// with its own rng fork — GTest assertions are not thread-safe, so jobs
// return failure strings and the main thread asserts them empty.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/symbolic/prove.hpp"
#include "gpusim/trace.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "sort/bitonic.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "sort/shearsort.hpp"
#include "util/rng.hpp"
#include "workload/inputs.hpp"

namespace wcm {
namespace {

/// Sanitize one recorded engine trace: no diagnostics of any severity, and
/// the stride cross-check must actually have run.  Returns "" when clean
/// (callable from worker threads; the caller asserts).
std::string check_clean_trace(
    const gpusim::Trace& trace, u32 pad, const char* engine,
    std::size_t trial,
    gpusim::LayoutKind layout = gpusim::LayoutKind::linear) {
  analyze::AnalyzeOptions opts;
  opts.pad = pad;
  opts.layout = layout;
  const auto report = analyze::analyze_trace(trace, opts);
  std::ostringstream os;
  if (!report.cross_checked) {
    os << engine << " trial " << trial << ": stride cross-check did not run";
    return os.str();
  }
  if (!report.clean()) {
    os << engine << " trial " << trial << " diagnostics:\n";
    analyze::render_text(os, report, engine);
    return os.str();
  }
  return "";
}

/// The static/dynamic cross-check of the symbolic prover: derive the
/// engine's per-step conflict-degree bounds for the trial's exact
/// configuration and certify that no replayed step of the recorded trace
/// exceeds them.  Returns "" when every step is within bounds.
std::string certify_trace_bounds(const gpusim::Trace& trace,
                                 const char* engine,
                                 const sort::SortConfig& cfg, u32 ways,
                                 u32 digit_bits, std::size_t trial) {
  analyze::symbolic::ProveOptions popts;
  popts.w = cfg.w;
  popts.b = cfg.b;
  popts.pad = cfg.padding;
  popts.layout = cfg.layout;
  popts.e_min = cfg.E;
  popts.e_max = cfg.E;
  popts.ways = ways;
  popts.digit_bits = digit_bits;
  const auto bounds = analyze::symbolic::prove_engine(engine, popts);
  const auto findings = analyze::symbolic::certify_trace(trace, bounds);
  if (findings.empty()) {
    return "";
  }
  std::ostringstream os;
  os << engine << " trial " << trial << " exceeds its symbolic bound:\n";
  for (const auto& d : findings) {
    analyze::render_text(os, d);
  }
  return os.str();
}

std::vector<dmm::word> fuzz_keys(std::size_t n, Xoshiro256& rng) {
  std::vector<dmm::word> v(n);
  switch (rng.below(5)) {
    case 0:  // uniform small range (heavy duplicates)
      for (auto& x : v) {
        x = static_cast<dmm::word>(rng.below(7));
      }
      break;
    case 1:  // uniform wide
      for (auto& x : v) {
        x = static_cast<dmm::word>(rng.below(1u << 20));
      }
      break;
    case 2: {  // nearly sorted
      v = workload::nearly_sorted_input(n, n / 20 + 1, rng());
      break;
    }
    case 3:  // organ pipe
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<dmm::word>(std::min(i, n - 1 - i));
      }
      break;
    default:  // runs of equal keys
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<dmm::word>((i / 13) % 11);
      }
      break;
  }
  return v;
}

TEST(DifferentialFuzz, AllSortsAgreeWithStdSort) {
  const auto dev = gpusim::quadro_m4000();
  const sort::SortConfig configs[] = {
      {3, 64, 32}, {5, 64, 32}, {7, 128, 32}, {15, 128, 32}, {4, 64, 32}};
  const Xoshiro256 root(20260706);

  constexpr std::size_t kTrials = 12;
  const u32 workers = runtime::recommended_workers(
      runtime::threads_from_env(0), dev, 128, 0);
  const auto failures = runtime::parallel_map(
      kTrials, workers, [&](std::size_t trial) -> std::string {
        auto rng = root.fork(static_cast<u64>(trial));
        sort::SortConfig cfg = configs[rng.below(5)];
        const std::size_t tiles = 1 + rng.below(6);
        const std::size_t n = cfg.tile() * tiles;
        const auto input = fuzz_keys(n, rng);
        const auto expected = sort::std_sort(input);

        std::vector<dmm::word> out;
        gpusim::TraceRecorder rec;
        cfg.trace_sink = &rec;
        (void)sort::pairwise_merge_sort(input, cfg, dev,
                                        sort::MergeSortLibrary::thrust, &out);
        if (out != expected) {
          return "pairwise disagrees with std::sort in trial " +
                 std::to_string(trial);
        }
        {
          const auto trace = rec.take();
          if (auto msg = check_clean_trace(trace, 0, "pairwise", trial);
              !msg.empty()) {
            return msg;
          }
          if (auto msg =
                  certify_trace_bounds(trace, "pairwise", cfg, 4, 4, trial);
              !msg.empty()) {
            return msg;
          }
        }

        const u32 ways = 2 + static_cast<u32>(rng.below(4));
        (void)sort::multiway_merge_sort(input, cfg, dev, ways, &out);
        if (out != expected) {
          return "multiway disagrees with std::sort in trial " +
                 std::to_string(trial);
        }
        {
          const auto trace = rec.take();
          if (auto msg = check_clean_trace(trace, 0, "multiway", trial);
              !msg.empty()) {
            return msg;
          }
          if (auto msg =
                  certify_trace_bounds(trace, "multiway", cfg, ways, 4, trial);
              !msg.empty()) {
            return msg;
          }
        }

        // Radix needs non-negative keys (all fuzz classes are); bitonic
        // needs a power-of-two size — run it on a truncated prefix.
        const u32 digit_bits = 1 + static_cast<u32>(rng.below(8));
        (void)sort::radix_sort(input, cfg, dev, digit_bits, &out);
        if (out != expected) {
          return "radix disagrees with std::sort in trial " +
                 std::to_string(trial);
        }
        {
          const auto trace = rec.take();
          if (auto msg = check_clean_trace(trace, 0, "radix", trial);
              !msg.empty()) {
            return msg;
          }
          if (auto msg = certify_trace_bounds(trace, "radix", cfg, 4,
                                              digit_bits, trial);
              !msg.empty()) {
            return msg;
          }
        }

        // Shearsort runs under the xor layout — the configuration whose
        // conflict-freedom the certification gate proves; its trace must
        // both lint clean and stay within the degree-1 symbolic bounds.
        {
          sort::SortConfig scfg = cfg;
          scfg.layout = gpusim::LayoutKind::xor_swizzle;
          (void)sort::shearsort(input, scfg, dev, &out);
          if (out != expected) {
            return "shearsort disagrees with std::sort in trial " +
                   std::to_string(trial);
          }
          const auto trace = rec.take();
          if (auto msg = check_clean_trace(trace, 0, "shearsort", trial,
                                           scfg.layout);
              !msg.empty()) {
            return msg;
          }
          if (auto msg =
                  certify_trace_bounds(trace, "shearsort", scfg, 4, 4, trial);
              !msg.empty()) {
            return msg;
          }
        }

        std::size_t n2 = 1;
        while (n2 * 2 <= n) {
          n2 *= 2;
        }
        if (n2 >= 2 * cfg.b) {
          std::vector<dmm::word> prefix(input.begin(),
                                        input.begin() +
                                            static_cast<std::ptrdiff_t>(n2));
          sort::SortConfig bcfg;
          bcfg.E = 2;
          bcfg.b = cfg.b;
          bcfg.trace_sink = &rec;
          (void)sort::bitonic_sort(prefix, bcfg, dev, &out);
          if (out != sort::std_sort(prefix)) {
            return "bitonic disagrees with std::sort in trial " +
                   std::to_string(trial);
          }
          const auto trace = rec.take();
          if (auto msg = check_clean_trace(trace, 0, "bitonic", trial);
              !msg.empty()) {
            return msg;
          }
          if (auto msg =
                  certify_trace_bounds(trace, "bitonic", bcfg, 4, 4, trial);
              !msg.empty()) {
            return msg;
          }
        }
        return "";
      });
  for (std::size_t trial = 0; trial < failures.size(); ++trial) {
    EXPECT_TRUE(failures[trial].empty()) << failures[trial];
  }
}

TEST(DifferentialFuzz, PaddedConfigsAlsoAgree) {
  Xoshiro256 rng(777);
  const auto dev = gpusim::quadro_m4000();
  for (int trial = 0; trial < 4; ++trial) {
    sort::SortConfig cfg{5, 64, 32};
    cfg.padding = 1 + static_cast<u32>(rng.below(3));
    const std::size_t n = cfg.tile() * (2 + rng.below(3));
    const auto input = fuzz_keys(n, rng);
    std::vector<dmm::word> out;
    (void)sort::pairwise_merge_sort(input, cfg, dev,
                                    sort::MergeSortLibrary::thrust, &out);
    ASSERT_EQ(out, sort::std_sort(input)) << "trial " << trial;
  }
}

TEST(DifferentialFuzz, RealisticFidelityAgrees) {
  Xoshiro256 rng(99);
  const auto dev = gpusim::quadro_m4000();
  for (int trial = 0; trial < 4; ++trial) {
    sort::SortConfig cfg{7, 64, 32};
    cfg.realistic_refills = true;
    const std::size_t n = cfg.tile() * (1 + rng.below(4));
    const auto input = fuzz_keys(n, rng);
    std::vector<dmm::word> out;
    (void)sort::pairwise_merge_sort(input, cfg, dev,
                                    sort::MergeSortLibrary::thrust, &out);
    ASSERT_EQ(out, sort::std_sort(input)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace wcm
