// Tests for the stochastic worst-case search: it must respect the proven
// E^2 ceiling, rediscover the optimum on small instances, and get close to
// the constructions on bigger ones — an independent check that the
// constructive results are not artifacts of the evaluator.

#include <gtest/gtest.h>

#include "core/numbers.hpp"
#include "core/search.hpp"
#include "util/check.hpp"

namespace wcm::core {
namespace {

TEST(Search, RespectsTheoremCeiling) {
  SearchOptions opts;
  opts.restarts = 2;
  opts.iterations = 400;
  for (const u32 e : {5u, 9u, 17u}) {
    const auto r = search_worst_case_warp(32, e, opts);
    EXPECT_LE(r.aligned, static_cast<std::size_t>(e) * e);
    EXPECT_GT(r.evaluations, 0u);
    r.best.validate();
  }
}

TEST(Search, RediscoversOptimumOnSmallInstances) {
  // w = 8, E = 3: 9 aligned is the proven optimum and the space is tiny.
  SearchOptions opts;
  opts.restarts = 6;
  opts.iterations = 1500;
  opts.seed = 3;
  const auto r = search_worst_case_warp(8, 3, opts);
  EXPECT_EQ(r.aligned, 9u);
  EXPECT_EQ(evaluate_warp(r.best, r.window_start).aligned, 9u);
}

TEST(Search, MatchesConstructionOnMidSizeSmallE) {
  // w = 16, E = 7: the search should reach (or at least approach within
  // one column) the constructive optimum of 49.
  SearchOptions opts;
  opts.restarts = 10;
  opts.iterations = 4000;
  opts.seed = 11;
  const auto r = search_worst_case_warp(16, 7, opts);
  EXPECT_GE(r.aligned, 49u - 7u);
  EXPECT_LE(r.aligned, 49u);
}

TEST(Search, LargeERegimeApproachesTheorem9) {
  // w = 16, E = 9: Theorem 9 aligns 80.  The search must stay under the
  // E^2 = 81 ceiling; reaching or beating 80 - E is expected with this
  // budget.  (If a search ever *exceeded* 80 it would be a finding — the
  // bench reports the comparison; the test only pins the proven bound.)
  SearchOptions opts;
  opts.restarts = 10;
  opts.iterations = 4000;
  opts.seed = 5;
  const auto r = search_worst_case_warp(16, 9, opts);
  EXPECT_GE(r.aligned, aligned_large_e(16, 9) - 9);
  EXPECT_LE(r.aligned, 81u);
}

TEST(Search, DeterministicPerSeed) {
  SearchOptions opts;
  opts.restarts = 2;
  opts.iterations = 300;
  opts.seed = 42;
  const auto a = search_worst_case_warp(16, 5, opts);
  const auto b = search_worst_case_warp(16, 5, opts);
  EXPECT_EQ(a.aligned, b.aligned);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Search, Contracts) {
  EXPECT_THROW((void)search_worst_case_warp(32, 16, {}), contract_error);
  SearchOptions bad;
  bad.restarts = 0;
  EXPECT_THROW((void)search_worst_case_warp(32, 5, bad), contract_error);
}

}  // namespace
}  // namespace wcm::core
