// Direct unit tests for the warp-synchronous block-merge engine (the code
// path the construction attacks): search equivalence with the host merge
// path, merge output equivalence with the host serial merge, accounting
// sub-counter consistency, and contract checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mergepath/serial_merge.hpp"
#include "sort/block_merge.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::sort {
namespace {

/// Shared memory preloaded with sorted A at [0, na) and sorted B at
/// [na, na+nb).
gpusim::SharedMemory make_shm(const std::vector<word>& a,
                              const std::vector<word>& b) {
  gpusim::SharedMemory shm(32, a.size() + b.size());
  shm.fill(a, 0);
  shm.fill(b, a.size());
  return shm;
}

std::vector<word> sorted_random(std::size_t n, u64 seed, word bound) {
  Xoshiro256 rng(seed);
  std::vector<word> v(n);
  for (auto& x : v) {
    x = static_cast<word>(rng.below(static_cast<u64>(bound)));
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(BlockSearch, MatchesHostMergePath) {
  const auto a = sorted_random(160, 1, 300);
  const auto b = sorted_random(160, 2, 300);
  auto shm = make_shm(a, b);
  gpusim::KernelStats stats;

  const u32 E = 5;
  std::vector<ThreadSearchCtx> ctxs(64);
  for (u32 t = 0; t < 64; ++t) {
    ctxs[t] = {0, a.size(), a.size(), a.size() + b.size(),
               static_cast<std::size_t>(t) * E};
  }
  const auto sim = simulate_block_search(shm, ctxs, stats);
  for (u32 t = 0; t < 64; ++t) {
    const auto host = mergepath::merge_path(a, b, t * E);
    EXPECT_EQ(sim[t].i, host.split.i) << "t=" << t;
    EXPECT_EQ(sim[t].j, host.split.j) << "t=" << t;
  }
  EXPECT_GT(stats.shared_search.steps, 0u);
  EXPECT_GT(stats.shared_search.requests, 0u);
}

TEST(BlockMerge, OutputMatchesSerialMerge) {
  const auto a = sorted_random(80, 3, 500);
  const auto b = sorted_random(80, 4, 500);
  auto shm = make_shm(a, b);
  gpusim::KernelStats stats;

  const u32 E = 5;
  const u32 threads = 32;
  std::vector<ThreadSearchCtx> sctx(threads);
  for (u32 t = 0; t < threads; ++t) {
    sctx[t] = {0, a.size(), a.size(), a.size() + b.size(),
               static_cast<std::size_t>(t) * E};
  }
  const auto coranks = simulate_block_search(shm, sctx, stats);
  std::vector<ThreadMergeCtx> mctx(threads);
  for (u32 t = 0; t < threads; ++t) {
    const bool last = t + 1 == threads;
    mctx[t].a_begin = coranks[t].i;
    mctx[t].a_end = last ? a.size() : coranks[t + 1].i;
    mctx[t].b_begin = a.size() + coranks[t].j;
    mctx[t].b_end = a.size() + (last ? b.size() : coranks[t + 1].j);
    mctx[t].out_begin = static_cast<std::size_t>(t) * E;
  }
  const auto regs = simulate_block_merge(shm, mctx, E, /*write_back=*/true,
                                         stats);
  const auto expected = mergepath::serial_merge(a, b);
  EXPECT_EQ(regs, expected);
  EXPECT_EQ(shm.dump(0, expected.size()), expected);
}

TEST(BlockMerge, AccountsOneReadPerElementPerRound) {
  const auto a = sorted_random(80, 5, 100);
  const auto b = sorted_random(80, 6, 100);
  auto shm = make_shm(a, b);
  gpusim::KernelStats stats;
  const u32 E = 5;
  std::vector<ThreadMergeCtx> mctx(32);
  // Trivial partition: thread t owns a[5t..5t+5) merged with nothing... use
  // equal split via host merge path for validity.
  std::vector<ThreadSearchCtx> sctx(32);
  for (u32 t = 0; t < 32; ++t) {
    sctx[t] = {0, a.size(), a.size(), 160, static_cast<std::size_t>(t) * E};
  }
  const auto coranks = simulate_block_search(shm, sctx, stats);
  const auto before = stats.shared_merge_reads.requests;
  for (u32 t = 0; t < 32; ++t) {
    const bool last = t + 1 == 32;
    mctx[t] = {coranks[t].i, last ? a.size() : coranks[t + 1].i,
               a.size() + coranks[t].j,
               a.size() + (last ? b.size() : coranks[t + 1].j),
               static_cast<std::size_t>(t) * E};
  }
  (void)simulate_block_merge(shm, mctx, E, false, stats);
  EXPECT_EQ(stats.shared_merge_reads.requests - before, 160u);
  EXPECT_EQ(stats.warp_merge_steps, E);  // one warp, E lock-step iterations
}

TEST(BlockMerge, RejectsWrongQuantileSize) {
  gpusim::SharedMemory shm(32, 64);
  gpusim::KernelStats stats;
  std::vector<ThreadMergeCtx> ctxs(1);
  ctxs[0] = {0, 3, 32, 34, 0};  // 5 elements, E = 4
  EXPECT_THROW((void)simulate_block_merge(shm, ctxs, 4, false, stats),
               contract_error);
}

TEST(BlockSearch, RejectsBadRanges) {
  gpusim::SharedMemory shm(32, 64);
  gpusim::KernelStats stats;
  std::vector<ThreadSearchCtx> bad(1);
  bad[0] = {0, 100, 0, 0, 0};  // a_end beyond shared memory
  EXPECT_THROW((void)simulate_block_search(shm, bad, stats), contract_error);
  bad[0] = {0, 32, 32, 64, 70};  // diagonal beyond both lists
  EXPECT_THROW((void)simulate_block_search(shm, bad, stats), contract_error);
}

TEST(BlockMerge, TiesPreferA) {
  // A-priority on equal keys, matching the host serial merge.
  const std::vector<word> a{5, 5, 5, 5, 5};
  const std::vector<word> b{5, 5, 5, 5, 5};
  auto shm = make_shm(a, b);
  gpusim::KernelStats stats;
  std::vector<ThreadMergeCtx> ctxs(2);
  ctxs[0] = {0, 5, 5, 5, 0};    // all of A
  ctxs[1] = {5, 5, 5, 10, 5};   // all of B
  const auto regs = simulate_block_merge(shm, ctxs, 5, false, stats);
  EXPECT_EQ(regs, mergepath::serial_merge(a, b));
}

}  // namespace
}  // namespace wcm::sort
