# Certification gate (ISSUE acceptance): engines that claim bank-conflict
# immunity must *keep* their machine-checked certificate, and the prover
# must be able to refute a vulnerable engine with a DMM-replay-confirmed
# counterexample — so the gate can actually fail in both directions.
#
#   certified side  shearsort under the xor, rotation, and pad-1 linear
#                   layouts: exit 0 and a JSON verdict of "certified" with
#                   zero counterexamples, over a (b, pad) grid.
#   refuted side    shearsort under the plain linear layout and pairwise
#                   under every layout: exit 1, verdict "refuted", and at
#                   least one counterexample with "confirmed":1 (the
#                   witness valuation replayed through the DMM at the
#                   same degree).
#
# The certificate digest is also checked for self-consistency: two runs of
# the same grid must render byte-identical JSON (the digest seals the body).
#
# Run as:  cmake -DWCMGEN=<bin> -DWORKDIR=<dir> -P wcm_certify_ci.cmake

if(NOT DEFINED WCMGEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWCMGEN=<bin> -DWORKDIR=<dir>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

# Run `wcmgen prove --certify` and capture (exit, stdout).
function(run_certify out_rv out_json)
  execute_process(COMMAND ${WCMGEN} prove --certify --json ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rv GREATER 1)
    message(FATAL_ERROR
      "certify run crashed (exit ${rv}) for: ${ARGN}\nstderr: ${err}")
  endif()
  set(${out_rv} ${rv} PARENT_SCOPE)
  set(${out_json} "${out}" PARENT_SCOPE)
endfunction()

# An engine claiming immunity must certify: exit 0, verdict "certified",
# no counterexamples.
function(expect_certified)
  run_certify(rv json ${ARGN})
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "expected certification (exit 0), got ${rv} for: "
      "${ARGN}\n${json}")
  endif()
  if(NOT json MATCHES "\"verdict\":\"certified\"")
    message(FATAL_ERROR "exit 0 without a certified verdict for: ${ARGN}\n"
      "${json}")
  endif()
  if(NOT json MATCHES "\"counterexamples\":\\[\\]")
    message(FATAL_ERROR "certified verdict carries counterexamples for: "
      "${ARGN}\n${json}")
  endif()
endfunction()

# A vulnerable engine must be refuted with a replay-confirmed witness.
function(expect_refuted)
  run_certify(rv json ${ARGN})
  if(NOT rv EQUAL 1)
    message(FATAL_ERROR "expected refutation (exit 1), got ${rv} for: "
      "${ARGN}\n${json}")
  endif()
  if(NOT json MATCHES "\"verdict\":\"refuted\"")
    message(FATAL_ERROR "exit 1 without a refuted verdict for: ${ARGN}\n"
      "${json}")
  endif()
  if(NOT json MATCHES "\"confirmed\":1")
    message(FATAL_ERROR
      "refutation has no DMM-replay-confirmed counterexample for: ${ARGN}\n"
      "${json}")
  endif()
endfunction()

# --- certified side: the BCF engine keeps its certificate -----------------
expect_certified(--engine shearsort --layout xor --bs 64,128 --pads 0)
expect_certified(--engine shearsort --layout rotation --bs 64,128 --pads 0)
expect_certified(--engine shearsort --layout linear --pads 1)
# Immunity holds with the E-odd congruence dropped, too.
expect_certified(--engine shearsort --layout xor --any-E)

# --- refuted side: the gate can fail -------------------------------------
expect_refuted(--engine shearsort --layout linear --pads 0)
expect_refuted(--engine pairwise --layout linear)
expect_refuted(--engine pairwise --layout xor)
expect_refuted(--engine pairwise --layout rotation)
# A mixed grid with one vulnerable cell refutes the whole certificate.
expect_refuted(--engine shearsort --layout linear --pads 0,1)
# Padding *composes badly* with rotation: the effective column bank stride
# becomes 1 + pad, so pad 1 halves the bank coverage (degree 2).
expect_refuted(--engine shearsort --layout rotation --pads 1)

# --- determinism: the sealed JSON is reproducible byte for byte ----------
run_certify(rv1 json1 --engine shearsort --layout xor --bs 64,128)
run_certify(rv2 json2 --engine shearsort --layout xor --bs 64,128)
if(NOT json1 STREQUAL json2)
  message(FATAL_ERROR "certificate JSON is not deterministic")
endif()

# --- usage contract ------------------------------------------------------
execute_process(COMMAND ${WCMGEN} prove --certify --engine quicksort
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(NOT rv EQUAL 2)
  message(FATAL_ERROR
    "certify with an unknown engine: expected exit 2, got ${rv}")
endif()
