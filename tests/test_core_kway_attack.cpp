// Tests for the K-way generalization of the worst-case construction: the
// per-warp greedy reaches E^2 for every (w, E, K) in the small-E regime,
// warp groups balance run totals, and the generated inputs drive the
// simulated multiway merge sort's rounds to near-worst-case serialization.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/conflict_model.hpp"
#include "core/kway_attack.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::core {
namespace {

struct Case {
  u32 w;
  u32 E;
  u32 ways;
};

class KWay : public ::testing::TestWithParam<Case> {};

TEST_P(KWay, WarpAlignsESquared) {
  const auto [w, E, ways] = GetParam();
  const auto wa = build_kway_warp(w, E, ways);
  const auto eval = evaluate_kway_warp(wa, 0);
  EXPECT_EQ(eval.aligned, static_cast<std::size_t>(E) * E);
  EXPECT_GE(eval.totals.serialization, static_cast<std::size_t>(E) * E);
}

TEST_P(KWay, GroupBalancesRunTotals) {
  const auto [w, E, ways] = GetParam();
  const auto group = build_kway_warp_group(w, E, ways);
  ASSERT_EQ(group.size(), ways);
  std::vector<std::size_t> sum(ways, 0);
  for (const auto& wa : group) {
    const auto t = wa.totals();
    for (u32 k = 0; k < ways; ++k) {
      sum[k] += t[k];
    }
    // Every rotation is itself a valid E^2 attack.
    EXPECT_EQ(evaluate_kway_warp(wa, 0).aligned,
              static_cast<std::size_t>(E) * E);
  }
  for (u32 k = 1; k < ways; ++k) {
    EXPECT_EQ(sum[k], sum[0]);  // balanced across the group
  }
}

std::vector<Case> grid() {
  std::vector<Case> cases;
  for (const u32 w : {32u, 64u}) {
    for (const u32 e : {5u, 7u, 11u, 15u}) {
      if (classify_e(w, e) != ERegime::small) {
        continue;
      }
      for (const u32 k : {2u, 3u, 4u, 5u}) {
        if (k <= e) {
          cases.push_back({w, e, k});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, KWay, ::testing::ValuesIn(grid()),
                         [](const auto& tinfo) {
                           return "w" + std::to_string(tinfo.param.w) + "_E" +
                                  std::to_string(tinfo.param.E) + "_K" +
                                  std::to_string(tinfo.param.ways);
                         });

TEST(KWayAttack, RejectsWrongRegimeAndShapes) {
  EXPECT_THROW((void)build_kway_warp(32, 17, 4), contract_error);  // large E
  EXPECT_THROW((void)build_kway_warp(32, 15, 1), contract_error);
  EXPECT_THROW((void)build_kway_warp(32, 5, 6), contract_error);  // K > E
}

TEST(KWayAttack, GeneratorProducesPermutation) {
  const sort::SortConfig cfg{5, 128, 32};  // b/w = 4, K = 4 divides it
  const std::size_t n = cfg.tile() * 16;   // 4^2 runs
  const auto v = kway_worst_case_input(n, cfg, 4, 1);
  EXPECT_TRUE(workload::is_permutation_of_iota(v));
  EXPECT_THROW((void)kway_worst_case_input(cfg.tile() * 8, cfg, 4, 1),
               contract_error);  // 8 != 4^j
}

// The payoff: the K-way input drives the multiway sort's merge rounds to
// (near-)worst-case serialization, where the pairwise worst case only
// partially transfers.
TEST(KWayAttack, DrivesMultiwaySortToWorstCase) {
  const sort::SortConfig cfg{5, 128, 32};
  const u32 ways = 4;
  const std::size_t n = cfg.tile() * 16;
  const auto dev = gpusim::quadro_m4000();

  const auto kworst = kway_worst_case_input(n, cfg, ways, 1);
  const auto pworst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 1);
  const auto random = workload::random_permutation(n, 1);

  const auto r_k = sort::multiway_merge_sort(kworst, cfg, dev, ways);
  const auto r_p = sort::multiway_merge_sort(pworst, cfg, dev, ways);
  const auto r_r = sort::multiway_merge_sort(random, cfg, dev, ways);

  const double k_beta2 = gpusim::beta2(r_k.rounds.back().kernel);
  const double p_beta2 = gpusim::beta2(r_p.rounds.back().kernel);
  const double r_beta2 = gpusim::beta2(r_r.rounds.back().kernel);
  // The tailored input beats both the transferred pairwise input and
  // random, and sits near the E ceiling.
  EXPECT_GT(k_beta2, p_beta2);
  EXPECT_GT(k_beta2, r_beta2);
  EXPECT_GT(k_beta2, 0.8 * cfg.E);
  // And it still sorts.
  std::vector<dmm::word> out;
  (void)sort::multiway_merge_sort(kworst, cfg, dev, ways, &out);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(KWayAttack, TwoWayMatchesPairwiseQuotas) {
  // K = 2 degenerates to the paper's L-warp list sizes.
  const auto wa = build_kway_warp(32, 15, 2);
  const auto t = wa.totals();
  EXPECT_EQ(t[0], 8u * 32u);  // (E+1)/2 columns
  EXPECT_EQ(t[1], 7u * 32u);  // (E-1)/2 columns
}

}  // namespace
}  // namespace wcm::core
