// WCMC result-cache tests: key addressing, disk round trip, salt-based
// invalidation, corruption detection (checksum, truncation, trailing
// bytes, bad magic), and the load/store failpoints.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/cache.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {
namespace {

class CacheFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wcmc_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

CellMetrics metrics(u64 n, double seconds) {
  CellMetrics m;
  m.n = n;
  m.seconds = seconds;
  m.throughput = static_cast<double>(n) / seconds;
  m.conflicts_per_element = 0.5;
  m.beta1 = 1.5;
  m.beta2 = 2.5;
  return m;
}

TEST(CacheKey, DependsOnConfigAndSalt) {
  const ResultCache a(1);
  const ResultCache b(2);
  EXPECT_NE(a.key_of("x"), a.key_of("y"));
  EXPECT_NE(a.key_of("x"), b.key_of("x"));
  EXPECT_EQ(a.key_of("x"), ResultCache(1).key_of("x"));
}

TEST(CacheKey, SaltReactsToEnvironment) {
  unsetenv("WCM_CACHE_SALT");
  const u64 base = code_version_salt();
  EXPECT_EQ(base, code_version_salt());  // stable
  setenv("WCM_CACHE_SALT", "bump-1", 1);
  const u64 bumped = code_version_salt();
  EXPECT_NE(base, bumped);
  unsetenv("WCM_CACHE_SALT");
  EXPECT_EQ(base, code_version_salt());
}

TEST(Cache, LookupMissesThenHits) {
  ResultCache cache(7);
  const u64 key = cache.key_of("cell");
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, metrics(100, 0.5));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, metrics(100, 0.5));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(CacheFile, MissingFileLoadsEmpty) {
  const auto cache = ResultCache::load(path_, 7);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.salt(), 7u);
}

TEST_F(CacheFile, RoundTripsEveryEntry) {
  ResultCache cache(42);
  for (u64 i = 0; i < 10; ++i) {
    cache.insert(cache.key_of("cell-" + std::to_string(i)),
                 metrics(100 + i, 0.1 * static_cast<double>(i + 1)));
  }
  cache.store(path_);

  const auto loaded = ResultCache::load(path_, 42);
  EXPECT_EQ(loaded.size(), 10u);
  for (u64 i = 0; i < 10; ++i) {
    const auto hit = loaded.lookup(loaded.key_of("cell-" + std::to_string(i)));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, metrics(100 + i, 0.1 * static_cast<double>(i + 1))) << i;
  }
}

TEST_F(CacheFile, StoredFilesAreByteStable) {
  const auto write = [&](const std::filesystem::path& p) {
    ResultCache cache(42);
    cache.insert(cache.key_of("b"), metrics(2, 0.2));
    cache.insert(cache.key_of("a"), metrics(1, 0.1));
    cache.store(p);
  };
  const auto other = path_.string() + ".second";
  write(path_);
  write(other);
  std::ifstream f1(path_, std::ios::binary);
  std::ifstream f2(other, std::ios::binary);
  const std::string c1((std::istreambuf_iterator<char>(f1)), {});
  const std::string c2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_EQ(c1, c2);
  std::filesystem::remove(other);
}

TEST_F(CacheFile, SaltMismatchInvalidatesEverything) {
  ResultCache cache(1);
  cache.insert(cache.key_of("cell"), metrics(5, 0.5));
  cache.store(path_);

  const auto stale = ResultCache::load(path_, 2);  // code changed
  EXPECT_EQ(stale.size(), 0u);
  EXPECT_EQ(stale.salt(), 2u);

  const auto fresh = ResultCache::load(path_, 1);
  EXPECT_EQ(fresh.size(), 1u);
}

TEST_F(CacheFile, CorruptPayloadIsRejected) {
  ResultCache cache(1);
  cache.insert(cache.key_of("cell"), metrics(5, 0.5));
  cache.store(path_);

  // Flip one payload byte: the checksum must catch it.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(20);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);
}

TEST_F(CacheFile, TruncationAndTrailingBytesAreRejected) {
  ResultCache cache(1);
  cache.insert(cache.key_of("cell"), metrics(5, 0.5));
  cache.store(path_);
  const auto size = std::filesystem::file_size(path_);

  std::filesystem::resize_file(path_, size - 3);
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);

  std::filesystem::resize_file(path_, size);  // zero-padded -> bad checksum
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);

  cache.store(path_);
  std::ofstream(path_, std::ios::app | std::ios::binary) << 'x';
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);
}

TEST_F(CacheFile, BadMagicIsRejected) {
  std::ofstream(path_, std::ios::binary) << "WCMI this is not a cache";
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);
}

TEST_F(CacheFile, AbsurdRecordCountIsRejectedBeforeAllocation) {
  ResultCache cache(1);
  cache.store(path_);
  // Patch the count field (offset 16: magic 4 + version 4 + salt 8) to a
  // value far above the format cap.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  const u64 absurd = max_wcmc_records + 1;
  f.seekp(16);
  f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  f.close();
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);
}

// LRU bound (WCM_CACHE_MAX): a capped cache admits every insert but
// evicts the coldest entries over the cap; lookups refresh recency.
TEST(CacheLru, BoundedCacheEvictsTheColdestEntry) {
  ResultCache cache(7, 3);
  EXPECT_EQ(cache.max_entries(), 3u);
  const u64 a = cache.key_of("a");
  const u64 b = cache.key_of("b");
  const u64 c = cache.key_of("c");
  cache.insert(a, metrics(1, 0.1));
  cache.insert(b, metrics(2, 0.2));
  cache.insert(c, metrics(3, 0.3));
  ASSERT_TRUE(cache.lookup(a).has_value());  // refresh: b is now coldest
  cache.insert(cache.key_of("d"), metrics(4, 0.4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_TRUE(cache.lookup(cache.key_of("d")).has_value());
}

TEST(CacheLru, ReinsertRefreshesInsteadOfGrowing) {
  ResultCache cache(7, 2);
  const u64 a = cache.key_of("a");
  const u64 b = cache.key_of("b");
  cache.insert(a, metrics(1, 0.1));
  cache.insert(b, metrics(2, 0.2));
  cache.insert(a, metrics(9, 0.9));  // refresh + overwrite, no eviction
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(cache.key_of("c"), metrics(3, 0.3));  // evicts b, not a
  EXPECT_FALSE(cache.lookup(b).has_value());
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, metrics(9, 0.9));
}

TEST(CacheLru, ZeroMeansUnbounded) {
  ResultCache cache(7, 0);
  for (u64 i = 0; i < 100; ++i) {
    cache.insert(cache.key_of(std::to_string(i)), metrics(i, 0.1));
  }
  EXPECT_EQ(cache.size(), 100u);
}

TEST(CacheLru, EnvVarBoundsEveryNewCache) {
  setenv("WCM_CACHE_MAX", "2", 1);
  ResultCache cache(7);
  unsetenv("WCM_CACHE_MAX");
  EXPECT_EQ(cache.max_entries(), 2u);
  for (int i = 0; i < 5; ++i) {
    cache.insert(cache.key_of(std::to_string(i)), metrics(1, 0.1));
  }
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CacheLru, GarbageEnvVarIsConfigError) {
  for (const char* bad : {"abc", "12x", "-3", " 4"}) {
    setenv("WCM_CACHE_MAX", bad, 1);
    EXPECT_THROW(ResultCache{7}, config_error) << bad;
    EXPECT_THROW((void)cache_max_from_env(), config_error) << bad;
  }
  unsetenv("WCM_CACHE_MAX");
  EXPECT_EQ(cache_max_from_env(), 0u);
}

TEST_F(CacheFile, LoadAppliesTheEnvBound) {
  {
    ResultCache cache(1, 0);
    for (u64 i = 0; i < 5; ++i) {
      cache.insert(cache.key_of(std::to_string(i)), metrics(i, 0.5));
    }
    cache.store(path_);
  }
  setenv("WCM_CACHE_MAX", "2", 1);
  const auto bounded = ResultCache::load(path_, 1);
  unsetenv("WCM_CACHE_MAX");
  EXPECT_EQ(bounded.size(), 2u);
  const auto full = ResultCache::load(path_, 1);
  EXPECT_EQ(full.size(), 5u);
}

TEST_F(CacheFile, LoadFailpointFires) {
  ResultCache cache(1);
  cache.store(path_);
  failpoint::scoped_arm fp("runtime.cache.load");
  EXPECT_THROW((void)ResultCache::load(path_, 1), io_error);
}

TEST_F(CacheFile, StoreFailpointFires) {
  const ResultCache cache(1);
  failpoint::scoped_arm fp("runtime.cache.store");
  EXPECT_THROW(cache.store(path_), io_error);
}

}  // namespace
}  // namespace wcm::runtime
