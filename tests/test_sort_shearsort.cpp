// Tests for the simulated shearsort engine: correctness across shapes and
// input classes, data-obliviousness, and — the property that earns it a
// place in this repo — zero shared-memory bank conflicts under the xor and
// rotation layouts, on every input including the pairwise merge sort's
// engineered worst cases.

#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/layout.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/shearsort.hpp"
#include "util/check.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig small() {
  SortConfig cfg;
  cfg.E = 4;
  cfg.b = 64;
  cfg.w = 32;
  return cfg;
}

TEST(Shearsort, SortsRandomInputs) {
  for (const u32 e : {1u, 2u, 4u, 7u}) {
    auto cfg = small();
    cfg.E = e;
    for (const std::size_t tiles : {1u, 2u, 4u}) {
      const std::size_t n = cfg.tile() * tiles;
      const auto input = workload::random_permutation(n, n + e);
      std::vector<word> out;
      const auto report =
          shearsort(input, cfg, gpusim::quadro_m4000(), &out);
      EXPECT_EQ(out, std_sort(input)) << "E=" << e << " tiles=" << tiles;
      EXPECT_EQ(report.n, n);
    }
  }
}

TEST(Shearsort, SortsStructuredAndAdversarialInputs) {
  auto cfg = small();
  cfg.E = 5;  // worst-case generator needs gcd(w, E) == 1
  const std::size_t n = cfg.tile() * 4;
  for (const auto kind :
       {workload::InputKind::sorted, workload::InputKind::reversed,
        workload::InputKind::nearly_sorted, workload::InputKind::worst_case}) {
    const auto input = workload::make_input(kind, n, cfg, 3);
    std::vector<word> out;
    (void)shearsort(input, cfg, gpusim::quadro_m4000(), &out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(Shearsort, DuplicatesSupported) {
  const auto cfg = small();
  auto input = workload::random_permutation(cfg.tile() * 2, 9);
  for (auto& x : input) {
    x /= 5;
  }
  std::vector<word> out;
  (void)shearsort(input, cfg, gpusim::quadro_m4000(), &out);
  EXPECT_EQ(out, std_sort(input));
}

TEST(Shearsort, SizeContracts) {
  const auto cfg = small();
  const auto dev = gpusim::quadro_m4000();
  EXPECT_THROW((void)shearsort(workload::sorted_input(cfg.tile() / 2), cfg,
                               dev),
               contract_error);  // < one tile
  EXPECT_THROW((void)shearsort(workload::sorted_input(cfg.tile() + 1), cfg,
                               dev),
               contract_error);  // not a tile multiple
}

// Shearsort is a comparison network over a fixed mesh: its shared-memory
// traffic is input-independent.
TEST(Shearsort, ObliviousAccessPattern) {
  const auto cfg = small();
  const auto dev = gpusim::quadro_m4000();
  const std::size_t n = cfg.tile() * 2;
  const auto r1 = shearsort(workload::random_permutation(n, 1), cfg, dev);
  const auto r2 = shearsort(workload::reversed_input(n), cfg, dev);
  EXPECT_EQ(r1.totals.shared.serialization_cycles,
            r2.totals.shared.serialization_cycles);
  EXPECT_EQ(r1.totals.shared.replays, r2.totals.shared.replays);
  EXPECT_EQ(r1.totals.shared.requests, r2.totals.shared.requests);
}

// The certified claim, measured: under the linear layout the column passes
// serialize (stride-w accesses), under xor/rotation the same engine is
// replay-free on every input class.
TEST(Shearsort, XorAndRotationLayoutsAreConflictFree) {
  auto cfg = small();
  cfg.E = 5;  // worst-case generator needs gcd(w, E) == 1
  const auto dev = gpusim::quadro_m4000();
  const std::size_t n = cfg.tile() * 2;
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 3);

  const auto linear = shearsort(worst, cfg, dev);
  EXPECT_GT(linear.totals.shared.replays, 0u);

  for (const auto kind : {gpusim::LayoutKind::xor_swizzle,
                          gpusim::LayoutKind::rotation}) {
    cfg.layout = kind;
    std::vector<word> out;
    const auto defended = shearsort(worst, cfg, dev, &out);
    EXPECT_EQ(defended.totals.shared.replays, 0u)
        << gpusim::to_string(kind);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

// Dotsenko padding also certifies (pad coprime to w rotates the column
// across all banks) — and costs shared capacity instead of an xor.
TEST(Shearsort, PaddingAlsoRemovesConflicts) {
  auto cfg = small();
  const auto dev = gpusim::quadro_m4000();
  const std::size_t n = cfg.tile() * 2;
  const auto input = workload::random_permutation(n, 11);
  cfg.padding = 1;
  const auto padded = shearsort(input, cfg, dev);
  EXPECT_EQ(padded.totals.shared.replays, 0u);
}

TEST(Shearsort, RoundStructure) {
  const auto cfg = small();
  const std::size_t n = cfg.tile() * 4;  // 2 global merge rounds
  const auto report = shearsort(workload::random_permutation(n, 5), cfg,
                                gpusim::quadro_m4000());
  ASSERT_EQ(report.rounds.size(), 3u);
  EXPECT_EQ(report.rounds[0].name, "shearsort tiles");
  EXPECT_EQ(report.rounds[1].name, "merge round 1");
  EXPECT_EQ(report.rounds[2].name, "merge round 2");
  for (const auto& r : report.rounds) {
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
}

}  // namespace
}  // namespace wcm::sort
