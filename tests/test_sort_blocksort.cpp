// Tests for the simulated block sort (base case): functional correctness
// against std::sort, stats plausibility, and warp-synchronous access
// invariants.

#include <gtest/gtest.h>

#include <algorithm>

#include "gpusim/shared_memory.hpp"
#include "sort/blocksort.hpp"
#include "sort/registers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/inputs.hpp"

namespace wcm::sort {
namespace {

SortConfig tiny() { return SortConfig{5, 64, 32}; }

TEST(BlockSort, SortsRandomTile) {
  const SortConfig cfg = tiny();
  auto tile = workload::random_permutation(cfg.tile(), 17);
  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  gpusim::KernelStats stats;
  simulate_block_sort(shm, tile, cfg, stats);
  EXPECT_TRUE(std::is_sorted(tile.begin(), tile.end()));
  EXPECT_EQ(tile.front(), 0);
  EXPECT_EQ(tile.back(), static_cast<word>(cfg.tile() - 1));
}

TEST(BlockSort, SortsAdversarialPatterns) {
  const SortConfig cfg = tiny();
  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  for (const auto kind :
       {workload::InputKind::sorted, workload::InputKind::reversed,
        workload::InputKind::nearly_sorted}) {
    auto tile = workload::make_input(kind, cfg.tile(), cfg, 3);
    gpusim::KernelStats stats;
    simulate_block_sort(shm, tile, cfg, stats);
    EXPECT_TRUE(std::is_sorted(tile.begin(), tile.end()));
  }
}

TEST(BlockSort, StatsAccounting) {
  const SortConfig cfg = tiny();
  auto tile = workload::random_permutation(cfg.tile(), 5);
  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  gpusim::KernelStats stats;
  simulate_block_sort(shm, tile, cfg, stats);

  // Coalesced load + store of the tile.
  EXPECT_EQ(stats.global_transactions, 2 * cfg.tile() / cfg.w);
  EXPECT_EQ(stats.global_requests, 2 * cfg.tile());
  // One odd-even network per warp's threads, log2(b) merge rounds.
  EXPECT_EQ(stats.register_compare_steps,
            (cfg.b / cfg.w) * odd_even_comparator_count(cfg.E));
  const u32 rounds = log2_exact(cfg.b);
  EXPECT_EQ(stats.warp_merge_steps,
            static_cast<std::size_t>(rounds) * (cfg.b / cfg.w) * cfg.E);
  // Merge reads: every round, every element is consumed exactly once.
  EXPECT_EQ(stats.shared_merge_reads.requests,
            static_cast<std::size_t>(rounds) * cfg.tile());
  // Searches happened and were accounted separately.
  EXPECT_GT(stats.shared_search.steps, 0u);
  // The sub-counters are subsets of the machine totals recorded by caller;
  // here stats.shared is still zero because the caller adds shm.stats().
  EXPECT_GT(shm.stats().requests, 0u);
}

TEST(BlockSort, DeterministicStats) {
  const SortConfig cfg = tiny();
  const auto input = workload::random_permutation(cfg.tile(), 23);
  gpusim::KernelStats s1, s2;
  {
    auto tile = input;
    gpusim::SharedMemory shm(cfg.w, cfg.tile());
    simulate_block_sort(shm, tile, cfg, s1);
  }
  {
    auto tile = input;
    gpusim::SharedMemory shm(cfg.w, cfg.tile());
    simulate_block_sort(shm, tile, cfg, s2);
  }
  EXPECT_EQ(s1.shared_merge_reads.serialization_cycles,
            s2.shared_merge_reads.serialization_cycles);
  EXPECT_EQ(s1.shared_search.serialization_cycles,
            s2.shared_search.serialization_cycles);
}

TEST(BlockSort, SortedInputHasFewerMergeConflictsThanRandom) {
  const SortConfig cfg = tiny();
  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  gpusim::KernelStats sorted_stats, random_stats;
  {
    auto tile = workload::sorted_input(cfg.tile());
    simulate_block_sort(shm, tile, cfg, sorted_stats);
    shm.reset_stats();
  }
  {
    auto tile = workload::random_permutation(cfg.tile(), 11);
    simulate_block_sort(shm, tile, cfg, random_stats);
  }
  EXPECT_LT(sorted_stats.shared_merge_reads.replays,
            random_stats.shared_merge_reads.replays);
}

TEST(BlockSort, ContractChecks) {
  const SortConfig cfg = tiny();
  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  gpusim::KernelStats stats;
  std::vector<word> wrong_size(cfg.tile() - 1);
  EXPECT_THROW(simulate_block_sort(shm, wrong_size, cfg, stats),
               contract_error);
  gpusim::SharedMemory small(cfg.w, cfg.tile() - 1);
  std::vector<word> tile(cfg.tile());
  EXPECT_THROW(simulate_block_sort(small, tile, cfg, stats), contract_error);
}

TEST(BlockSort, VariousConfigsAllSort) {
  for (const SortConfig cfg :
       {SortConfig{3, 64, 32}, SortConfig{7, 128, 32}, SortConfig{4, 64, 32},
        SortConfig{15, 128, 32}}) {
    auto tile = workload::random_permutation(cfg.tile(), 99);
    gpusim::SharedMemory shm(cfg.w, cfg.tile());
    gpusim::KernelStats stats;
    simulate_block_sort(shm, tile, cfg, stats);
    EXPECT_TRUE(std::is_sorted(tile.begin(), tile.end()))
        << cfg.to_string();
  }
}

}  // namespace
}  // namespace wcm::sort
