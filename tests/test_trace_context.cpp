// Request-tracing tests (docs/TELEMETRY.md "Request tracing"): the
// trace-context primitives (hex ids, scoped install/restore), span
// parent-chaining through nested scopes, propagation across the
// scheduler's thread hop via JobOptions::trace, and the end-to-end causal
// tree — a batched 2-request wcmd dispatch under threads>1 must export
// one Chrome trace where every span of each request shares that request's
// trace_id across at least two threads, with parent links rooted at the
// serve.request span.

#include <gtest/gtest.h>
#include <unistd.h>

#include <exception>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_context.hpp"
#include "util/json.hpp"

namespace wcm::telemetry {
namespace {

TEST(TraceHex, RoundTripsSixteenDigitLowercase) {
  EXPECT_EQ(trace_hex(0), "0000000000000000");
  EXPECT_EQ(trace_hex(0xa7), "00000000000000a7");
  EXPECT_EQ(trace_hex(~u64{0}), "ffffffffffffffff");
  for (const u64 v : {u64{1}, u64{0xdeadbeef}, u64{0x0123456789abcdefULL},
                      ~u64{0}}) {
    u64 parsed = 0;
    ASSERT_TRUE(parse_trace_hex(trace_hex(v), parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(TraceHex, ParseAcceptsShortFormsAndOptionalPrefix) {
  u64 v = 0;
  EXPECT_TRUE(parse_trace_hex("a7", v));
  EXPECT_EQ(v, 0xa7u);
  EXPECT_TRUE(parse_trace_hex("0xA7", v));
  EXPECT_EQ(v, 0xa7u);
  EXPECT_TRUE(parse_trace_hex("F", v));
  EXPECT_EQ(v, 0xfu);
}

TEST(TraceHex, ParseRejectsGarbage) {
  u64 v = 0;
  for (const char* bad :
       {"", "0x", "xyz", "12g4", "0123456789abcdef0",  // 17 digits
        " a7", "a7 ", "-1", "0x0x1"}) {
    EXPECT_FALSE(parse_trace_hex(bad, v)) << bad;
  }
}

TEST(TraceContextTest, IdsAreFreshAndNonZero) {
  const u64 a = next_trace_id();
  const u64 b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(next_span_id(), next_span_id());
}

TEST(TraceContextTest, ScopedInstallAndNestedRestore) {
  EXPECT_FALSE(current_trace_context().active());
  {
    TraceContext outer;
    outer.trace_id = 7;
    outer.span_id = 70;
    outer.tenant = "t-outer";
    const ScopedTraceContext outer_scope(outer);
    EXPECT_EQ(current_trace_context().trace_id, 7u);
    EXPECT_EQ(current_trace_context().tenant, "t-outer");
    {
      TraceContext inner;
      inner.trace_id = 8;
      inner.span_id = 80;
      const ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(current_trace_context().trace_id, 8u);
    }
    EXPECT_EQ(current_trace_context().trace_id, 7u);
    EXPECT_EQ(current_trace_context().span_id, 70u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

TEST(TraceContextTest, ScopedContextIsPerThread) {
  TraceContext ctx;
  ctx.trace_id = 11;
  const ScopedTraceContext scope(ctx);
  u64 other_thread_trace = ~u64{0};
  std::thread([&other_thread_trace] {
    other_thread_trace = current_trace_context().trace_id;
  }).join();
  EXPECT_EQ(other_thread_trace, 0u);
  EXPECT_EQ(current_trace_context().trace_id, 11u);
}

// ---- span parent-chaining ------------------------------------------------

/// Exported events of one Chrome trace, decoded for assertions.
struct ExportedSpan {
  std::string name;
  u64 tid = 0;
  u64 trace_id = 0;
  u64 span_id = 0;
  u64 parent_span_id = 0;
  std::string tenant;
  bool has_args = false;
};

std::vector<ExportedSpan> export_spans() {
  std::ostringstream os;
  write_chrome_trace(os);
  std::vector<ExportedSpan> out;
  const json::Value doc = json::parse(os.str());
  for (const json::Value& ev :
       doc.as_object().at("traceEvents").as_array()) {
    const json::Object& e = ev.as_object();
    ExportedSpan span;
    span.name = e.at("name").as_string();
    span.tid = e.at("tid").as_u64();
    const auto args = e.find("args");
    if (args != e.end()) {
      span.has_args = true;
      const json::Object& a = args->second.as_object();
      EXPECT_TRUE(parse_trace_hex(a.at("trace_id").as_string(),
                                  span.trace_id));
      EXPECT_TRUE(parse_trace_hex(a.at("span_id").as_string(),
                                  span.span_id));
      EXPECT_TRUE(parse_trace_hex(a.at("parent_span_id").as_string(),
                                  span.parent_span_id));
      span.tenant = a.at("tenant").as_string();
    }
    out.push_back(std::move(span));
  }
  return out;
}

struct TracingOn {
  TracingOn() {
    reset_trace();
    set_tracing(true);
  }
  ~TracingOn() {
    set_tracing(false);
    reset_trace();
  }
};

TEST(TraceSpans, NestedSpansChainParentIds) {
  const TracingOn guard;
  TraceContext ctx;
  ctx.trace_id = 0x77;
  ctx.tenant = "nest";
  {
    const ScopedTraceContext scope(ctx);
    WCM_SPAN("outer");
    { WCM_SPAN("inner"); }
  }
  { WCM_SPAN("untraced"); }  // no context: must export without args
  const auto spans = export_spans();
  ASSERT_EQ(spans.size(), 3u);
  const ExportedSpan* outer = nullptr;
  const ExportedSpan* inner = nullptr;
  const ExportedSpan* untraced = nullptr;
  for (const auto& s : spans) {
    if (s.name == "outer") {
      outer = &s;
    } else if (s.name == "inner") {
      inner = &s;
    } else if (s.name == "untraced") {
      untraced = &s;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(untraced, nullptr);
  EXPECT_TRUE(outer->has_args);
  EXPECT_TRUE(inner->has_args);
  EXPECT_FALSE(untraced->has_args);
  EXPECT_EQ(outer->trace_id, 0x77u);
  EXPECT_EQ(inner->trace_id, 0x77u);
  EXPECT_EQ(outer->tenant, "nest");
  EXPECT_EQ(outer->parent_span_id, 0u);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
}

TEST(TraceSpans, SchedulerJobInheritsTheJobOptionsContext) {
  const TracingOn guard;
  TraceContext ctx;
  ctx.trace_id = 0x99;
  ctx.span_id = 0x1234;  // pretend parent from the submitting thread
  ctx.tenant = "sched";
  runtime::JobGraph graph;
  runtime::JobOptions opts;
  opts.trace = ctx;
  graph.add([](runtime::JobContext&) { WCM_SPAN("job.body"); },
            std::move(opts));
  graph.add([](runtime::JobContext&) {}, {});  // untraced job
  runtime::RunOptions ropts;
  ropts.threads = 2;
  EXPECT_TRUE(runtime::run(graph, ropts).ok());
  const auto spans = export_spans();
  const ExportedSpan* job_span = nullptr;
  const ExportedSpan* body = nullptr;
  std::size_t untraced_jobs = 0;
  for (const auto& s : spans) {
    if (s.name == "scheduler.job" && s.has_args) {
      job_span = &s;
    } else if (s.name == "scheduler.job") {
      ++untraced_jobs;
    } else if (s.name == "job.body") {
      body = &s;
    }
  }
  ASSERT_NE(job_span, nullptr);
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(untraced_jobs, 1u);  // the context-free job exports bare
  EXPECT_EQ(job_span->trace_id, 0x99u);
  EXPECT_EQ(job_span->parent_span_id, 0x1234u);
  EXPECT_EQ(job_span->tenant, "sched");
  EXPECT_EQ(body->trace_id, 0x99u);
  EXPECT_EQ(body->parent_span_id, job_span->span_id);
}

// ---- end-to-end causal tree through the daemon ---------------------------

std::string test_socket(const std::string& suffix) {
  return "@wcm-trace-test-" + std::to_string(::getpid()) + "-" + suffix;
}

struct RunningServer {
  explicit RunningServer(serve::ServerConfig cfg) : server(std::move(cfg)) {
    server.set_log(nullptr);
    thread = std::thread([this] {
      try {
        (void)server.serve();
      } catch (...) {
        failure = std::current_exception();
      }
    });
  }
  ~RunningServer() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }
  void drain() {
    server.request_drain();
    thread.join();
    if (failure) {
      std::rethrow_exception(failure);
    }
  }
  serve::Server server;
  std::thread thread;
  std::exception_ptr failure;
};

TEST(TraceCausalTree, BatchedDispatchSharesTraceIdsAcrossThreads) {
  const TracingOn guard;
  serve::ServerConfig cfg;
  cfg.socket = test_socket("tree");
  cfg.threads = 2;  // the satellite demands WCM_THREADS>1 semantics
  {
    RunningServer rs(cfg);
    serve::Client client = serve::connect_with_retry(cfg.socket, 5000);
    // Two distinct requests (different canonicals, so neither joins the
    // other's flight) with client-chosen trace ids.
    client.send(
        R"({"op":"generate","id":"r1","params":{"E":5,"b":64,"k":1},)"
        R"("trace":{"trace_id":"a7"}})");
    client.send(
        R"({"op":"generate","id":"r2","params":{"E":7,"b":64,"k":1},)"
        R"("trace":{"trace_id":"b8","parent_span_id":"c9"}})");
    ASSERT_TRUE(client.recv_line().has_value());
    ASSERT_TRUE(client.recv_line().has_value());
    rs.drain();
  }

  const auto spans = export_spans();
  for (const u64 trace_id : {u64{0xa7}, u64{0xb8}}) {
    std::set<std::string> names;
    std::set<u64> tids;
    std::map<u64, u64> parent_of;  // span_id -> parent_span_id
    u64 request_span = 0;
    u64 request_parent = ~u64{0};
    for (const auto& s : spans) {
      if (!s.has_args || s.trace_id != trace_id) {
        continue;
      }
      names.insert(s.name);
      tids.insert(s.tid);
      parent_of[s.span_id] = s.parent_span_id;
      if (s.name == "serve.request") {
        request_span = s.span_id;
        request_parent = s.parent_span_id;
      }
      EXPECT_EQ(s.tenant, "default");
    }
    // The full causal chain: protocol read -> scheduler job (worker
    // thread, kernel work nested below) -> response write.
    EXPECT_TRUE(names.count("serve.request")) << trace_hex(trace_id);
    EXPECT_TRUE(names.count("scheduler.job")) << trace_hex(trace_id);
    EXPECT_TRUE(names.count("serve.generate")) << trace_hex(trace_id);
    EXPECT_TRUE(names.count("serve.respond")) << trace_hex(trace_id);
    EXPECT_GE(tids.size(), 2u) << trace_hex(trace_id);
    ASSERT_NE(request_span, 0u);
    // Every span of the request must reach serve.request by walking
    // parent links (the tree is rooted there; the root's parent is the
    // wire-provided parent_span_id or 0).
    for (const auto& [span_id, parent] : parent_of) {
      u64 cursor = span_id;
      std::size_t hops = 0;
      while (cursor != request_span && hops < 100) {
        const auto it = parent_of.find(cursor);
        if (it == parent_of.end()) {
          break;
        }
        cursor = it->second;
        ++hops;
      }
      if (span_id != request_span) {
        EXPECT_EQ(cursor, request_span)
            << "span " << trace_hex(span_id) << " of trace "
            << trace_hex(trace_id) << " is not rooted at serve.request";
      }
    }
    if (trace_id == 0xb8) {
      EXPECT_EQ(request_parent, 0xc9u);  // wire parent_span_id honored
    } else {
      EXPECT_EQ(request_parent, 0u);
    }
  }

  // The two requests' trees never share a span id.
  std::set<u64> a_spans;
  std::set<u64> b_spans;
  for (const auto& s : spans) {
    if (s.trace_id == 0xa7) {
      a_spans.insert(s.span_id);
    } else if (s.trace_id == 0xb8) {
      b_spans.insert(s.span_id);
    }
  }
  for (const u64 id : a_spans) {
    EXPECT_FALSE(b_spans.count(id));
  }
}

TEST(TraceCausalTree, DaemonMintsATraceIdWhenTheWireHasNone) {
  const TracingOn guard;
  serve::ServerConfig cfg;
  cfg.socket = test_socket("minted");
  {
    RunningServer rs(cfg);
    serve::Client client = serve::connect_with_retry(cfg.socket, 5000);
    ASSERT_FALSE(client
                     .roundtrip(R"({"op":"generate","id":"m",)"
                                R"("params":{"E":5,"b":64,"k":1}})")
                     .empty());
    rs.drain();
  }
  const auto spans = export_spans();
  u64 minted = 0;
  for (const auto& s : spans) {
    if (s.name == "serve.request") {
      EXPECT_TRUE(s.has_args);
      minted = s.trace_id;
    }
  }
  EXPECT_NE(minted, 0u);
  std::set<std::string> names;
  for (const auto& s : spans) {
    if (s.has_args && s.trace_id == minted) {
      names.insert(s.name);
    }
  }
  EXPECT_TRUE(names.count("scheduler.job"));
  EXPECT_TRUE(names.count("serve.respond"));
}

}  // namespace
}  // namespace wcm::telemetry
