// Tests for the slowdown statistics and the sweep runner.

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/experiment.hpp"
#include "util/check.hpp"

namespace wcm::analysis {
namespace {

TEST(Slowdown, Percent) {
  EXPECT_DOUBLE_EQ(slowdown_percent(1.0, 1.5), 50.0);
  EXPECT_DOUBLE_EQ(slowdown_percent(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(slowdown_percent(2.0, 1.0), -50.0);
  EXPECT_THROW((void)slowdown_percent(0.0, 1.0), contract_error);
}

std::vector<SeriesPoint> series(std::initializer_list<double> seconds) {
  std::vector<SeriesPoint> s;
  std::size_t n = 1000;
  for (const double sec : seconds) {
    SeriesPoint p;
    p.n = n;
    p.seconds = sec;
    p.throughput = static_cast<double>(n) / sec;
    s.push_back(p);
    n *= 2;
  }
  return s;
}

TEST(CompareSeries, PeakAndAverage) {
  const auto base = series({1.0, 2.0, 4.0});
  const auto slow = series({1.1, 3.0, 4.4});
  const auto stats = compare_series(base, slow);
  EXPECT_NEAR(stats.peak_percent, 50.0, 1e-9);
  EXPECT_EQ(stats.peak_n, 2000u);
  EXPECT_NEAR(stats.average_percent, (10.0 + 50.0 + 10.0) / 3.0, 1e-9);
}

TEST(CompareSeries, Contracts) {
  const auto a = series({1.0, 2.0});
  auto b = series({1.0});
  EXPECT_THROW((void)compare_series(a, b), contract_error);
  EXPECT_THROW((void)compare_series({}, {}), contract_error);
  b = series({1.0, 2.0});
  b[1].n = 999;  // mismatched size grid
  EXPECT_THROW((void)compare_series(a, b), contract_error);
}

TEST(Sweep, RunsAndGrowsGeometrically) {
  SweepSpec spec;
  spec.device = gpusim::quadro_m4000();
  spec.config = sort::SortConfig{5, 64, 32};
  spec.input = workload::InputKind::random;
  spec.min_k = 1;
  spec.max_k = 3;
  const auto s = run_sweep(spec);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].n, spec.config.tile() * 2);
  EXPECT_EQ(s[1].n, spec.config.tile() * 4);
  EXPECT_EQ(s[2].n, spec.config.tile() * 8);
  for (const auto& p : s) {
    EXPECT_GT(p.throughput, 0.0);
    EXPECT_GT(p.conflicts_per_elem, 0.0);
    EXPECT_GE(p.beta2, 1.0);
  }
}

TEST(Sweep, EnvOverrides) {
  SweepSpec spec;
  spec.min_k = 1;
  spec.max_k = 8;
  ASSERT_EQ(setenv("WCM_MIN_K", "2", 1), 0);
  ASSERT_EQ(setenv("WCM_MAX_K", "3", 1), 0);
  apply_env_overrides(spec);
  EXPECT_EQ(spec.min_k, 2u);
  EXPECT_EQ(spec.max_k, 3u);
  ASSERT_EQ(setenv("WCM_MIN_K", "5", 1), 0);  // min > max must throw
  EXPECT_THROW(apply_env_overrides(spec), contract_error);
  unsetenv("WCM_MIN_K");
  unsetenv("WCM_MAX_K");
}

}  // namespace
}  // namespace wcm::analysis
