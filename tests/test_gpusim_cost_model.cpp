// Tests for the analytical cost model: monotonicity in every counted event,
// the occupancy asymmetry between base accesses and replays, and basic
// plausibility of the modeled times.

#include <gtest/gtest.h>

#include "gpusim/cost_model.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"

namespace wcm::gpusim {
namespace {

KernelStats base_stats() {
  KernelStats s;
  s.shared.steps = 100000;
  s.shared.serialization_cycles = 150000;
  s.shared.replays = 50000;
  s.global_transactions = 40000;
  s.binary_search_steps = 2400;
  s.warp_merge_steps = 30000;
  s.blocks_launched = 120;
  s.elements_processed = 120 * 7680;
  return s;
}

LaunchConfig launch_thrust_m4000() {
  const auto cfg = wcm::sort::params_15_512();
  return {120, cfg.b, cfg.shared_bytes()};
}

TEST(CostModel, PositiveComponents) {
  const auto t = estimate_kernel_time(quadro_m4000(), launch_thrust_m4000(),
                                      base_stats());
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_GT(t.t_bandwidth, 0.0);
  EXPECT_GT(t.t_latency, 0.0);
  EXPECT_GT(t.t_shared, 0.0);
  EXPECT_GT(t.t_compute, 0.0);
  EXPECT_GE(t.seconds, t.t_latency + t.t_overhead);
}

TEST(CostModel, MoreReplaysNeverFaster) {
  const auto dev = quadro_m4000();
  const auto launch = launch_thrust_m4000();
  KernelStats s = base_stats();
  const double t0 = estimate_kernel_time(dev, launch, s).seconds;
  s.shared.replays += 100000;
  const double t1 = estimate_kernel_time(dev, launch, s).seconds;
  EXPECT_GT(t1, t0);
}

TEST(CostModel, MoreTransactionsNeverFaster) {
  const auto dev = quadro_m4000();
  const auto launch = launch_thrust_m4000();
  KernelStats s = base_stats();
  const double t0 = estimate_kernel_time(dev, launch, s).seconds;
  s.global_transactions *= 20;
  const double t1 = estimate_kernel_time(dev, launch, s).seconds;
  EXPECT_GT(t1, t0);
}

TEST(CostModel, LongerSearchChainsNeverFaster) {
  const auto dev = quadro_m4000();
  const auto launch = launch_thrust_m4000();
  KernelStats s = base_stats();
  const double t0 = estimate_kernel_time(dev, launch, s).seconds;
  s.binary_search_steps *= 4;
  const double t1 = estimate_kernel_time(dev, launch, s).seconds;
  EXPECT_GT(t1, t0);
}

// The asymmetry that reproduces the paper's Sec. IV-B occupancy finding:
// at 75% occupancy (E=17,b=256 on the 2080 Ti) the *baseline* is slower,
// but each additional replay costs less than at 100% occupancy.
TEST(CostModel, OccupancyAsymmetry) {
  const auto dev = rtx_2080ti();
  const auto full = wcm::sort::params_15_512();   // 100% occupancy
  const auto partial = wcm::sort::params_17_256();  // 75% occupancy
  const LaunchConfig lf{120, full.b, full.shared_bytes()};
  const LaunchConfig lp{240, partial.b, partial.shared_bytes()};

  KernelStats s = base_stats();
  s.shared.replays = 0;
  const double base_full = estimate_kernel_time(dev, lf, s).t_shared;
  const double base_partial = estimate_kernel_time(dev, lp, s).t_shared;
  EXPECT_GT(base_partial, base_full);  // slower baseline at low occupancy

  KernelStats s2 = s;
  s2.shared.replays = 200000;
  const double delta_full =
      estimate_kernel_time(dev, lf, s2).t_shared - base_full;
  const double delta_partial =
      estimate_kernel_time(dev, lp, s2).t_shared - base_partial;
  EXPECT_LT(delta_partial, delta_full);  // replays cheaper at low occupancy
}

TEST(CostModel, RejectsImpossibleLaunches) {
  const auto dev = quadro_m4000();
  KernelStats s = base_stats();
  EXPECT_THROW(
      (void)estimate_kernel_time(dev, {0, 512, 1024}, s),
      wcm::contract_error);
  EXPECT_THROW(
      (void)estimate_kernel_time(dev, {10, 512, 1024 * 1024}, s),
      wcm::contract_error);
}

TEST(CostModel, KernelTimeAccumulation) {
  KernelTime a;
  a.seconds = 1.0;
  a.t_shared = 0.5;
  KernelTime b;
  b.seconds = 2.0;
  b.t_shared = 0.25;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.t_shared, 0.75);
}

TEST(CostModel, ThrustCheaperThanMgpuPerStep) {
  const auto thrust =
      wcm::sort::library_calibration(wcm::sort::MergeSortLibrary::thrust);
  const auto mgpu =
      wcm::sort::library_calibration(wcm::sort::MergeSortLibrary::mgpu);
  EXPECT_LT(thrust.compute_cycles_per_merge_step,
            mgpu.compute_cycles_per_merge_step);
}

}  // namespace
}  // namespace wcm::gpusim
