// RetryPolicy: the transient/permanent split of the error taxonomy and
// the deterministic jittered backoff schedule (runtime/retry.hpp).

#include <gtest/gtest.h>

#include <limits>

#include "runtime/retry.hpp"

namespace wcm::runtime {
namespace {

TEST(RetryClassification, TransientCodesAreRetryable) {
  EXPECT_TRUE(is_transient(errc::io_failure));
  EXPECT_TRUE(is_transient(errc::simulation_invariant));
}

TEST(RetryClassification, PermanentCodesAreNot) {
  EXPECT_FALSE(is_transient(errc::contract_violation));
  EXPECT_FALSE(is_transient(errc::invalid_config));
  EXPECT_FALSE(is_transient(errc::parse_failure));
}

TEST(RetryBackoff, PureFunctionOfSeedStreamAndAttempt) {
  RetryPolicy policy;
  policy.seed = 41;
  const double a = backoff_delay_seconds(policy, 7, 1);
  const double b = backoff_delay_seconds(policy, 7, 1);
  EXPECT_EQ(a, b);  // bitwise repeatable, not merely close
}

TEST(RetryBackoff, DistinctStreamsAndAttemptsJitterIndependently) {
  RetryPolicy policy;
  policy.seed = 41;
  EXPECT_NE(backoff_delay_seconds(policy, 7, 1),
            backoff_delay_seconds(policy, 8, 1));
  EXPECT_NE(backoff_delay_seconds(policy, 7, 1),
            backoff_delay_seconds(policy, 7, 2));
  RetryPolicy other = policy;
  other.seed = 42;
  EXPECT_NE(backoff_delay_seconds(policy, 7, 1),
            backoff_delay_seconds(other, 7, 1));
}

TEST(RetryBackoff, DelaysStayInTheJitterBand) {
  // delay = base * 2^(k-1) * (0.5 + jitter/2), jitter in [0, 1): every
  // delay lands in [scaled/2, scaled) until the ceiling kicks in.
  RetryPolicy policy;
  policy.base_delay_seconds = 0.01;
  policy.max_delay_seconds = 1e9;  // disable the cap for this test
  for (u64 stream = 0; stream < 16; ++stream) {
    double scaled = policy.base_delay_seconds;
    for (u32 attempt = 1; attempt <= 8; ++attempt) {
      const double d = backoff_delay_seconds(policy, stream, attempt);
      EXPECT_GE(d, scaled * 0.5) << stream << ":" << attempt;
      EXPECT_LT(d, scaled) << stream << ":" << attempt;
      scaled *= 2.0;
    }
  }
}

TEST(RetryBackoff, ExponentDoublesBetweenAttempts) {
  // The jitter band for attempt k+1 starts where attempt k's band ends,
  // so successive delays on one stream are strictly increasing.
  RetryPolicy policy;
  policy.max_delay_seconds = 1e9;
  for (u32 attempt = 1; attempt < 8; ++attempt) {
    EXPECT_LT(backoff_delay_seconds(policy, 3, attempt),
              backoff_delay_seconds(policy, 3, attempt + 1));
  }
}

TEST(RetryBackoff, CeilingClampsLargeAttempts) {
  // From attempt 7 on the whole jitter band (>= 0.01 * 2^6 / 2 = 0.32)
  // sits above the 0.25 ceiling, so every delay is exactly the ceiling.
  RetryPolicy policy;  // base 0.01, max 0.25
  for (u32 attempt = 7; attempt <= 80; ++attempt) {
    EXPECT_EQ(backoff_delay_seconds(policy, 0, attempt),
              policy.max_delay_seconds);
  }
}

TEST(RetryBackoff, HugeAttemptCountsDoNotOverflow) {
  // The exponent is clamped before shifting; attempt counts far past 64
  // must still produce the (finite) ceiling, not UB or inf.
  RetryPolicy policy;
  const double d =
      backoff_delay_seconds(policy, 1, std::numeric_limits<u32>::max());
  EXPECT_EQ(d, policy.max_delay_seconds);
}

TEST(RetryBackoff, ZeroAttemptsAndZeroBaseAreFree) {
  RetryPolicy policy;
  EXPECT_EQ(backoff_delay_seconds(policy, 5, 0), 0.0);
  policy.base_delay_seconds = 0.0;
  EXPECT_EQ(backoff_delay_seconds(policy, 5, 3), 0.0);
}

TEST(RetryPolicyDefaults, SingleAttemptNeverRetries) {
  // The default policy is "no retries": schedulers must opt in.
  const RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 1u);
}

}  // namespace
}  // namespace wcm::runtime
