// Exhaustive small-parameter cross-check of every engine describer against
// concrete recorded traces: at small warp widths (synthetic_device) the
// whole configuration grid E in 1..8, b in {4, 8}, pad in {0, 1}, layout
// in {linear, xor, rotation} is cheap enough to run every engine end to
// end and certify the recorded trace against the bounds the symbolic
// prover derives for that exact cell.  Any describer whose IR under- or
// mis-declares an access pattern produces a step that exceeds its own
// bound, so this is the ground-truth audit of the describer layer — the
// certificates the wcm_certify_ci gate pins are only as good as these
// declarations.
//
// The sweep runs at w = 2, 3, and 4: w = 3 pins the parametric-w lift to
// a non-power-of-two warp, where every is_pow2(w) shortcut in a describer
// or bound derivation would go wrong silently.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analyze/symbolic/prove.hpp"
#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "sort/bitonic.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "sort/shearsort.hpp"
#include "workload/inputs.hpp"

namespace wcm {
namespace {

constexpr u32 kWays = 2;
constexpr u32 kDigitBits = 1;

/// Run one engine at one grid cell, recording its trace; returns "" when
/// the engine is inapplicable at this cell (so the caller can count real
/// coverage), the failure message when the trace breaks its bounds, and
/// "ok" otherwise.
std::string run_cell(const std::string& engine, const sort::SortConfig& base,
                     const gpusim::Device& dev) {
  sort::SortConfig cfg = base;
  gpusim::TraceRecorder rec;
  cfg.trace_sink = &rec;
  // Two tiles so the global merge rounds (windows in the IR) are exercised.
  const std::size_t n = cfg.tile() * 2;
  const auto input = workload::random_permutation(n, 7 + cfg.E);
  std::vector<dmm::word> out;
  if (engine == "pairwise") {
    (void)sort::pairwise_merge_sort(input, cfg, dev,
                                    sort::MergeSortLibrary::thrust, &out);
  } else if (engine == "multiway") {
    (void)sort::multiway_merge_sort(input, cfg, dev, kWays, &out);
  } else if (engine == "radix") {
    (void)sort::radix_sort(input, cfg, dev, kDigitBits, &out);
  } else if (engine == "bitonic") {
    if (cfg.E != 2) {
      return "";  // the bitonic engine is specified at E = 2 only
    }
    (void)sort::bitonic_sort(input, cfg, dev, &out);
  } else if (engine == "shearsort") {
    if (cfg.b % cfg.w != 0) {
      return "";  // the shearsort mesh needs whole warps per block
    }
    (void)sort::shearsort(input, cfg, dev, &out);
  }
  if (out != sort::std_sort(input)) {
    return engine + " " + cfg.to_string() + ": did not sort";
  }

  analyze::symbolic::ProveOptions popts;
  popts.w = cfg.w;
  popts.b = cfg.b;
  popts.pad = cfg.padding;
  popts.layout = cfg.layout;
  popts.e_min = cfg.E;
  popts.e_max = cfg.E;
  popts.ways = kWays;
  popts.digit_bits = kDigitBits;
  const auto bounds = analyze::symbolic::prove_engine(engine, popts);
  const auto findings =
      analyze::symbolic::certify_trace(rec.take(), bounds);
  if (findings.empty()) {
    return "ok";
  }
  std::ostringstream os;
  os << engine << " " << cfg.to_string() << " pad " << cfg.padding
     << " layout " << gpusim::to_string(cfg.layout)
     << " exceeds its symbolic bound:\n";
  for (const auto& d : findings) {
    analyze::render_text(os, d);
  }
  return os.str();
}

std::size_t sweep_width(u32 w) {
  const auto dev = gpusim::synthetic_device(w);
  const char* engines[] = {"pairwise", "multiway", "radix", "bitonic",
                           "shearsort"};
  const gpusim::LayoutKind layouts[] = {gpusim::LayoutKind::linear,
                                        gpusim::LayoutKind::xor_swizzle,
                                        gpusim::LayoutKind::rotation};
  std::size_t covered = 0;
  for (const char* engine : engines) {
    for (u32 e = 1; e <= 8; ++e) {
      for (const u32 b : {4u, 8u}) {
        if (b < 2 * w) {
          continue;  // a block must contain at least two warps
        }
        for (const u32 pad : {0u, 1u}) {
          for (const auto layout : layouts) {
            if (layout == gpusim::LayoutKind::xor_swizzle && !is_pow2(w)) {
              continue;  // the xor permutation is bijective for pow2 w only
            }
            sort::SortConfig cfg{e, b, w};
            cfg.padding = pad;
            cfg.layout = layout;
            cfg.validate();
            const std::string result = run_cell(engine, cfg, dev);
            if (result.empty()) {
              continue;  // engine inapplicable at this cell
            }
            EXPECT_EQ(result, "ok") << result;
            if (result != "ok") {
              return covered;
            }
            ++covered;
          }
        }
      }
    }
  }
  return covered;
}

TEST(DescribeCrosscheck, EveryEngineEveryCellStaysWithinItsBoundsW2) {
  // Four full-grid engines (8 E x 2 b x 2 pad x 3 layouts = 96 cells each)
  // plus bitonic at E = 2 (12 cells): the audit must never silently shrink.
  EXPECT_EQ(sweep_width(2), 4 * 96u + 12u);
}

TEST(DescribeCrosscheck, EveryEngineEveryCellStaysWithinItsBoundsW3) {
  // Non-power-of-two warp: b = 4 < 2w drops out, the xor layout needs
  // pow2 w, and shearsort needs w | b — leaving pairwise/multiway/radix
  // at 8 E x 1 b x 2 pad x 2 layouts = 32 cells each plus bitonic's 4.
  EXPECT_EQ(sweep_width(3), 3 * 32u + 4u);
}

TEST(DescribeCrosscheck, EveryEngineEveryCellStaysWithinItsBoundsW4) {
  // b = 4 < 2w drops out; the four full-grid engines keep 8 E x 1 b x
  // 2 pad x 3 layouts = 48 cells each plus bitonic's 6.
  EXPECT_EQ(sweep_width(4), 4 * 48u + 6u);
}

}  // namespace
}  // namespace wcm
