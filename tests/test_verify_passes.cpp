// Unit and sweep tests for the static-analysis pass manager
// (analyze/passes): the barrier-divergence checker on synthetic bad IR,
// the symbolic def-use pass's interval/tiling reasoning, the
// parametric-w conflict-bound lift, the footprint-widening eval_extent
// domain entry point, and the whole-engine verify sweep with its
// breakdown rows and digest determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/passes/pass.hpp"
#include "analyze/passes/verify.hpp"
#include "analyze/symbolic/domain.hpp"
#include "analyze/symbolic/prove.hpp"

namespace wcm {
namespace {

namespace ir = gpusim::ir;
using analyze::Diagnostic;
using analyze::Rule;
using analyze::Severity;
using analyze::passes::PassContext;
using analyze::passes::PassManager;

/// Minimal well-formed two-lane kernel: fill the 8-word tile, barrier,
/// read it back contiguously.
ir::KernelDesc tiny_desc() {
  ir::KernelDesc d;
  d.kernel = "tiny";
  d.w = 2;
  d.b = 2;
  d.words = ir::LinForm::constant(8);
  d.groups.push_back(ir::with_region(ir::fill_group("stage", "1"),
                                     ir::LinForm::constant(0),
                                     ir::LinForm::constant(7)));
  d.groups.push_back(ir::barrier_group("sync"));
  d.groups.push_back(ir::affine_group("load", ir::GroupKind::read, 2,
                                      ir::LinForm::constant(0),
                                      ir::LinForm::constant(1), "1"));
  return d;
}

PassContext run_passes(ir::KernelDesc desc) {
  PassContext ctx;
  ctx.engine = "synthetic";
  ctx.opts.w = desc.w;
  ctx.opts.b = desc.b;
  ctx.opts.e_min = 1;
  ctx.opts.e_max = 1;
  ctx.desc = std::move(desc);
  PassManager pm;
  pm.add(analyze::passes::make_barrier_divergence_pass());
  pm.add(analyze::passes::make_defuse_pass());
  pm.run(ctx);
  return ctx;
}

bool has_rule(const PassContext& ctx, Rule rule) {
  return std::any_of(ctx.findings.begin(), ctx.findings.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

// --- barrier-divergence pass ---------------------------------------------

TEST(BarrierDivergence, CleanKernelIsUniform) {
  const PassContext ctx = run_passes(tiny_desc());
  EXPECT_TRUE(ctx.barriers_uniform);
  EXPECT_EQ(ctx.barriers_checked, 1u);
  EXPECT_TRUE(ctx.defuse_clean);
  EXPECT_TRUE(ctx.findings.empty());
}

TEST(BarrierDivergence, BarrierCarryingLaneWorkIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  ir::StepGroup bad = ir::affine_group("work", ir::GroupKind::read, 2,
                                       ir::LinForm::constant(0),
                                       ir::LinForm::constant(1), "1");
  bad.kind = ir::GroupKind::barrier;
  d.groups[1] = bad;
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::barrier_divergence));
}

TEST(BarrierDivergence, LanePieceOutsideWarpIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  d.groups[2].pattern.pieces[0].lane_hi = 5;  // warp has lanes 0..1
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::lane_out_of_range));
}

TEST(BarrierDivergence, OverlappingLanePiecesAreFlagged) {
  ir::KernelDesc d = tiny_desc();
  d.groups[2].pattern.pieces.push_back(d.groups[2].pattern.pieces[0]);
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::duplicate_lane));
}

TEST(BarrierDivergence, WindowAdmittingTooManyLanesIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  d.groups[2] = ir::window_group("gather", ir::GroupKind::read, 7,
                                 ir::LinForm::constant(4),
                                 ir::LinForm::constant(1), "1");
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::lane_out_of_range));
}

TEST(BarrierDivergence, DanglingSymbolReferenceIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  d.groups[2].pattern.pieces[0].base = ir::LinForm::sym(9);
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::barrier_divergence));
}

TEST(BarrierDivergence, EmptySymbolRangeIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  (void)d.add_symbol("k", ir::SymRole::parameter, 5, 2);
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::barrier_divergence));
}

TEST(BarrierDivergence, HalfDeclaredWarpShiftExtentIsFlagged) {
  ir::KernelDesc d = tiny_desc();
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0);
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::constant(4);  // step_form left zero
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.barriers_uniform);
  EXPECT_TRUE(has_rule(ctx, Rule::barrier_divergence));
}

// --- def-use pass --------------------------------------------------------

TEST(DefUse, ReadPastTheBudgetIsOutOfBounds) {
  ir::KernelDesc d = tiny_desc();
  d.groups[2].pattern.pieces[0].base = ir::LinForm::constant(7);
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.defuse_clean);
  EXPECT_TRUE(has_rule(ctx, Rule::out_of_bounds));
}

TEST(DefUse, ReadOutsideTheFillRegionIsUninitialized) {
  ir::KernelDesc d = tiny_desc();
  d.groups[0] = ir::with_region(ir::fill_group("stage", "1"),
                                ir::LinForm::constant(0),
                                ir::LinForm::constant(0));  // one word only
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.defuse_clean);
  EXPECT_TRUE(has_rule(ctx, Rule::uninitialized_read));
}

TEST(DefUse, ContiguousWriteEarnsCoverageCredit) {
  ir::KernelDesc d = tiny_desc();
  d.groups[0] = ir::affine_group("store", ir::GroupKind::write, 2,
                                 ir::LinForm::constant(0),
                                 ir::LinForm::constant(1), "1");
  const int k = d.add_symbol("k", ir::SymRole::parameter, 0, 2);
  d.groups[0].pattern.pieces[0].base = ir::LinForm::sym(k, 2);
  // Lane stride 1 (2 lanes) x parameter step 2 (3 values) tiles [0, 7]:
  // every generator step fits inside the accumulated span.
  d.groups[2].pattern.pieces[0].base = ir::LinForm::constant(0);
  d.groups[2].pattern.pieces[0].stride = ir::LinForm::constant(1);
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_TRUE(ctx.defuse_clean) << ctx.findings.size();
}

TEST(DefUse, NonContiguousWriteEarnsNoCredit) {
  ir::KernelDesc d = tiny_desc();
  // Two lanes at stride 4 leave holes: {0, 4} covers nothing contiguous,
  // so the later full-tile read must be flagged.
  d.groups[0] = ir::affine_group("scatter", ir::GroupKind::write, 2,
                                 ir::LinForm::constant(0),
                                 ir::LinForm::constant(4), "1");
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_FALSE(ctx.defuse_clean);
  EXPECT_TRUE(has_rule(ctx, Rule::uninitialized_read));
}

TEST(DefUse, LeadingReadSeedsTheCallerStagedPrecondition) {
  ir::KernelDesc d = tiny_desc();
  d.groups.erase(d.groups.begin());  // drop the fill: read leads
  const PassContext ctx = run_passes(std::move(d));
  EXPECT_TRUE(ctx.defuse_clean);
  EXPECT_TRUE(ctx.defuse_seeded);
  // The seed is visible in the findings as a note, not silent.
  EXPECT_TRUE(has_rule(ctx, Rule::uninitialized_read));
  for (const Diagnostic& diag : ctx.findings) {
    EXPECT_EQ(diag.severity, Severity::note);
  }
}

TEST(DefUse, MaskedGroupSkipsTheUpperBoundCheck) {
  ir::KernelDesc d = tiny_desc();
  ir::StepGroup store = ir::affine_group("edge", ir::GroupKind::write, 2,
                                         ir::LinForm::constant(6),
                                         ir::LinForm::constant(1), "1");
  store.masked = true;  // kernel clamps the straggler lane at the edge
  d.groups.insert(d.groups.begin() + 2, store);
  ir::KernelDesc unmasked = d;
  unmasked.groups[2].masked = false;
  unmasked.groups[2].pattern.pieces[0].base = ir::LinForm::constant(7);
  EXPECT_TRUE(run_passes(std::move(d)).defuse_clean);
  EXPECT_FALSE(run_passes(std::move(unmasked)).defuse_clean);
}

// --- eval_extent ---------------------------------------------------------

TEST(EvalExtent, WarpShiftWidensToItsDeclaredValueSet) {
  ir::KernelDesc d;
  d.kernel = "extent";
  d.w = 4;
  d.b = 16;
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3, 3);
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0);
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::sym(e, 4);  // {0, 4, 8, 12} at E = 3 -> max 12
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(4);

  // The conflict domain pins the shift to its [lo, hi] = [0, 0] range...
  const auto pinned = analyze::symbolic::eval(ir::LinForm::sym(ws), d);
  EXPECT_EQ(pinned.lo, 0);
  EXPECT_EQ(pinned.hi, 0);
  // ...while the footprint domain widens it to the declared extent with
  // the step congruence.
  const auto wide = analyze::symbolic::eval_extent(ir::LinForm::sym(ws), d);
  EXPECT_EQ(wide.lo, 0);
  EXPECT_EQ(wide.hi, 12);
  EXPECT_EQ(wide.mod, 4u);
  EXPECT_EQ(wide.rem, 0);
  // A pinned-zero shift (no declared extent) keeps the pinned range.
  const int fixed = d.add_symbol("ws0", ir::SymRole::warp_shift, 0, 0);
  const auto still =
      analyze::symbolic::eval_extent(ir::LinForm::sym(fixed), d);
  EXPECT_EQ(still.hi, 0);
}

// --- conflict-bound pass + whole-engine sweep ----------------------------

TEST(VerifySweep, EveryEngineProvesAtSampledWidths) {
  analyze::passes::VerifyOptions opts;
  opts.ws = {2, 4, 8};
  opts.e_min = 1;
  opts.e_max = 64;
  opts.differential = false;  // covered by its own test below
  const auto report = analyze::passes::run_verify(
      analyze::symbolic::all_engines(), opts);
  for (const auto& shape : report.shapes) {
    EXPECT_TRUE(shape.ok) << shape.engine << " w=" << shape.w;
    EXPECT_TRUE(shape.barriers_uniform) << shape.engine;
    EXPECT_TRUE(shape.defuse_clean) << shape.engine;
    EXPECT_TRUE(shape.bounds_proved) << shape.engine;
  }
  EXPECT_TRUE(report.proved);
  EXPECT_EQ(report.shapes.size(),
            analyze::symbolic::all_engines().size() * 3);
}

TEST(VerifySweep, BreakdownRowsCoverTheNonCoprimeRegimes) {
  analyze::passes::VerifyOptions opts;
  opts.ws = {8};
  opts.differential = false;
  const auto report = analyze::passes::run_verify({"pairwise"}, opts);
  // w = 8 has non-coprime E in {4, 6}: both rows must be present, typed
  // to the regime taxonomy, and internally consistent.
  ASSERT_EQ(report.breakdown.size(), 2u);
  const auto& pow2 = report.breakdown[0];
  EXPECT_EQ(pow2.E, 4u);
  EXPECT_EQ(pow2.gcd, 4u);
  EXPECT_EQ(pow2.regime, "power_of_two");
  const auto& shared = report.breakdown[1];
  EXPECT_EQ(shared.E, 6u);
  EXPECT_EQ(shared.gcd, 2u);
  EXPECT_EQ(shared.regime, "shared_factor");
  for (const auto& row : report.breakdown) {
    EXPECT_GT(row.promised, 0u);
    EXPECT_GT(row.step_bound, 0u);
    EXPECT_EQ(row.breaks_down, row.attained < row.promised);
  }
}

TEST(VerifySweep, DifferentialGridBracketsEveryReplay) {
  analyze::passes::VerifyOptions opts;
  opts.ws = {2, 4};
  opts.e_max = 8;
  const auto report =
      analyze::passes::run_verify({"pairwise", "shearsort"}, opts);
  EXPECT_TRUE(report.differential_ok);
  EXPECT_FALSE(report.differential.empty());
  for (const auto& cell : report.differential) {
    EXPECT_TRUE(cell.ok) << cell.engine << " w=" << cell.w
                         << " E=" << cell.E;
    EXPECT_EQ(cell.violations, 0u);
  }
}

TEST(VerifySweep, ReportDigestIsDeterministic) {
  analyze::passes::VerifyOptions opts;
  opts.ws = {4};
  opts.e_max = 16;
  opts.differential = false;
  const auto a = analyze::passes::run_verify({"bitonic"}, opts);
  const auto b = analyze::passes::run_verify({"bitonic"}, opts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_NE(a.digest, 0u);
}

}  // namespace
}  // namespace wcm
