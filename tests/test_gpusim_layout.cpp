// Tests for the padded shared-memory layout (the Dotsenko-style
// bank-conflict mitigation) and its end-to-end effect on the attack.

#include <gtest/gtest.h>

#include "gpusim/layout.hpp"
#include "gpusim/shared_memory.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "workload/inputs.hpp"

namespace wcm::gpusim {
namespace {

TEST(SharedLayout, IdentityWithoutPadding) {
  const SharedLayout l{32, 0};
  for (const std::size_t a : {0u, 1u, 31u, 32u, 1000u}) {
    EXPECT_EQ(l.physical(a), a);
  }
  EXPECT_EQ(l.physical_words(100), 100u);
  EXPECT_EQ(l.physical_words(0), 0u);
}

TEST(SharedLayout, PaddingShiftsColumns) {
  const SharedLayout l{32, 1};
  EXPECT_EQ(l.physical(0), 0u);
  EXPECT_EQ(l.physical(31), 31u);
  EXPECT_EQ(l.physical(32), 33u);  // one pad word after each 32
  EXPECT_EQ(l.physical(64), 66u);
  EXPECT_EQ(l.physical_words(64), 65u);  // physical(63) + 1
}

TEST(SharedLayout, BankRotationProperty) {
  // With pad = 1, logical column c of bank b lands in bank (b + c) mod w:
  // a full stride-w logical column (the worst unpadded pattern) becomes
  // conflict-free.
  const SharedLayout l{32, 1};
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(l.physical(c * 32) % 32, c % 32);
  }
}

TEST(SharedMemoryPadded, ValuesUnaffectedByPadding) {
  SharedMemory shm(32, 128, 1);
  const auto vals = workload::random_permutation(128, 3);
  shm.fill(vals);
  EXPECT_EQ(shm.dump(0, 128), vals);
  shm.poke(100, 42);
  EXPECT_EQ(shm.peek(100), 42);
}

TEST(SharedMemoryPadded, StrideWBecomesConflictFree) {
  // Logical stride-w reads: all one bank unpadded, all different banks with
  // pad = 1.
  std::vector<LaneRead> reads;
  for (u32 lane = 0; lane < 32; ++lane) {
    reads.push_back({lane, static_cast<std::size_t>(lane) * 32});
  }
  SharedMemory unpadded(32, 32 * 32, 0);
  unpadded.warp_read(reads);
  EXPECT_EQ(unpadded.stats().replays, 31u);

  SharedMemory padded(32, 32 * 32, 1);
  padded.warp_read(reads);
  EXPECT_EQ(padded.stats().replays, 0u);
}

TEST(SharedMemoryPadded, BoundsAreLogical) {
  SharedMemory shm(32, 64, 1);
  EXPECT_EQ(shm.words(), 64u);
  EXPECT_THROW((void)shm.peek(64), contract_error);
  const std::vector<LaneRead> bad{{0, 64}};
  EXPECT_THROW((void)shm.warp_read(bad), contract_error);
}

TEST(SharedLayout, PermutationsAreRowBijections) {
  // xor and rotation must permute each row's w columns bijectively —
  // otherwise two logical words would alias one physical word.
  for (const LayoutKind kind :
       {LayoutKind::xor_swizzle, LayoutKind::rotation}) {
    const SharedLayout l{32, 0, kind};
    for (std::size_t row = 0; row < 64; ++row) {
      std::vector<bool> hit(32, false);
      for (u32 col = 0; col < 32; ++col) {
        const u32 p = l.permute(col, row);
        ASSERT_LT(p, 32u);
        ASSERT_FALSE(hit[p]) << "row " << row << " col " << col;
        hit[p] = true;
      }
    }
  }
}

TEST(SharedLayout, PermutedColumnsAreConflictFree) {
  // A logical column (stride w, the attacked pattern) touches w distinct
  // banks under both memory-free permutations.
  for (const LayoutKind kind :
       {LayoutKind::xor_swizzle, LayoutKind::rotation}) {
    const SharedLayout l{32, 0, kind};
    for (u32 c = 0; c < 32; ++c) {
      std::vector<bool> bank(32, false);
      for (std::size_t r = 0; r < 32; ++r) {
        const u32 b = l.bank(r * 32 + c);
        ASSERT_FALSE(bank[b]) << to_string(kind) << " col " << c;
        bank[b] = true;
      }
    }
  }
}

TEST(SharedLayout, PermutedPhysicalWordsRoundUpToFullRows) {
  const SharedLayout x{32, 0, LayoutKind::xor_swizzle};
  // Row 1 column 0 lives at physical column 0^1 = 1; a partial row still
  // needs the full row allocated.
  EXPECT_EQ(x.physical_words(33), 64u);
  EXPECT_EQ(x.physical_words(32), 32u);
  const SharedLayout r{32, 1, LayoutKind::rotation};
  EXPECT_EQ(r.physical_words(33), 66u);
}

TEST(SharedMemoryPermuted, ValuesUnaffectedByPermutation) {
  for (const LayoutKind kind :
       {LayoutKind::xor_swizzle, LayoutKind::rotation}) {
    SharedMemory shm(SharedLayout{32, 0, kind}, 128);
    const auto vals = workload::random_permutation(128, 5);
    shm.fill(vals);
    EXPECT_EQ(shm.dump(0, 128), vals);
    shm.poke(100, 42);
    EXPECT_EQ(shm.peek(100), 42);
  }
}

TEST(SharedMemoryPermuted, StrideWBecomesConflictFree) {
  std::vector<LaneRead> reads;
  for (u32 lane = 0; lane < 32; ++lane) {
    reads.push_back({lane, static_cast<std::size_t>(lane) * 32});
  }
  for (const LayoutKind kind :
       {LayoutKind::xor_swizzle, LayoutKind::rotation}) {
    SharedMemory shm(SharedLayout{32, 0, kind}, 32 * 32);
    shm.warp_read(reads);
    EXPECT_EQ(shm.stats().replays, 0u) << to_string(kind);
  }
}

TEST(SharedLayout, ParseRoundTrip) {
  EXPECT_EQ(parse_layout_kind("linear"), LayoutKind::linear);
  EXPECT_EQ(parse_layout_kind("xor"), LayoutKind::xor_swizzle);
  EXPECT_EQ(parse_layout_kind("rotation"), LayoutKind::rotation);
  EXPECT_THROW((void)parse_layout_kind("nope"), parse_error);
  EXPECT_STREQ(to_string(LayoutKind::xor_swizzle), "xor");
}

TEST(PaddingMitigation, ConfigSharedBytesIncludePadding) {
  auto cfg = wcm::sort::params_15_512();
  const auto base = cfg.shared_bytes();
  cfg.padding = 1;
  EXPECT_EQ(cfg.shared_bytes(), base + cfg.tile() / cfg.w * 4);
}

// End to end: padding collapses the constructed input's beta_2 to
// random-like levels and removes the slowdown.
TEST(PaddingMitigation, DefeatsTheConstruction) {
  wcm::sort::SortConfig cfg{5, 64, 32};
  const std::size_t n = cfg.tile() * 8;
  const auto dev = quadro_m4000();
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 3);
  const auto random =
      workload::make_input(workload::InputKind::random, n, cfg, 3);

  const auto attacked = wcm::sort::pairwise_merge_sort(worst, cfg, dev);
  cfg.padding = 1;
  const auto mitigated = wcm::sort::pairwise_merge_sort(worst, cfg, dev);
  const auto random_padded =
      wcm::sort::pairwise_merge_sort(random, cfg, dev);

  // Sharpest on the attacked rounds themselves: beta_2 = E without
  // padding, collapses well below E/1.5 with it.
  const double attacked_round_beta2 =
      beta2(attacked.rounds.back().kernel);
  const double mitigated_round_beta2 =
      beta2(mitigated.rounds.back().kernel);
  EXPECT_DOUBLE_EQ(attacked_round_beta2, 5.0);  // = E
  EXPECT_LT(mitigated_round_beta2, attacked_round_beta2 / 1.5);
  EXPECT_LT(mitigated.beta2(), attacked.beta2());
  // With padding, the constructed input behaves like any other input.
  EXPECT_NEAR(mitigated.seconds(), random_padded.seconds(),
              0.15 * random_padded.seconds());
  // And it still sorts.
  std::vector<word> out;
  cfg.padding = 1;
  (void)wcm::sort::pairwise_merge_sort(worst, cfg, dev,
                                       wcm::sort::MergeSortLibrary::thrust,
                                       &out);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

}  // namespace
}  // namespace wcm::gpusim
