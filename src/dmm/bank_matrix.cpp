#include "dmm/bank_matrix.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace wcm::dmm {

std::size_t bank_of(std::size_t addr, std::size_t w) {
  WCM_EXPECTS(w > 0, "bank count must be positive");
  return addr % w;
}

std::size_t column_of(std::size_t addr, std::size_t w) {
  WCM_EXPECTS(w > 0, "bank count must be positive");
  return addr / w;
}

std::size_t addr_of(std::size_t bank, std::size_t column, std::size_t w) {
  WCM_EXPECTS(w > 0, "bank count must be positive");
  WCM_EXPECTS(bank < w, "bank out of range");
  return column * w + bank;
}

std::string render_bank_matrix(
    std::size_t size, std::size_t w,
    const std::function<std::string(std::size_t)>& cell) {
  WCM_EXPECTS(w > 0, "bank count must be positive");
  const std::size_t cols = static_cast<std::size_t>(
      ceil_div(static_cast<u64>(size), static_cast<u64>(w)));

  // Collect labels and the widest label per column for alignment.
  std::vector<std::vector<std::string>> labels(w,
                                               std::vector<std::string>(cols));
  std::vector<std::size_t> width(cols, 1);
  for (std::size_t addr = 0; addr < size; ++addr) {
    std::string s = cell(addr);
    if (s.empty()) {
      s = ".";
    }
    const std::size_t b = bank_of(addr, w);
    const std::size_t c = column_of(addr, w);
    width[c] = std::max(width[c], s.size());
    labels[b][c] = std::move(s);
  }

  std::ostringstream os;
  const std::size_t bank_label_width = std::to_string(w - 1).size();
  for (std::size_t b = 0; b < w; ++b) {
    std::string bank_label = std::to_string(b);
    os << std::string(bank_label_width - bank_label.size(), ' ') << bank_label
       << ": ";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& s = labels[b][c].empty() ? "." : labels[b][c];
      os << s << std::string(width[c] - s.size() + 1, ' ');
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wcm::dmm
