#pragma once
// The Distributed Memory Machine (Mehlhorn & Vishkin 1984; paper Sec. II-B):
// w synchronous processors, w memory modules, address x stored in module
// x mod w.  Each module answers one request per time step; contended
// requests serialize.  This Machine executes steps functionally (values
// really move) while accumulating the contention statistics defined in
// dmm/access.hpp.  It is the backing store for the GPU simulator's shared
// memory.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dmm/access.hpp"

namespace wcm::dmm {

using word = std::int64_t;

/// Running totals over all executed steps.
struct MachineStats {
  std::size_t steps = 0;
  std::size_t requests = 0;
  std::size_t serialization_cycles = 0;
  std::size_t replays = 0;
  std::size_t conflicting_accesses = 0;
  std::size_t max_bank_degree = 0;

  MachineStats& operator+=(const StepCost& c) noexcept;
  MachineStats& operator+=(const MachineStats& o) noexcept;
};

class Machine {
 public:
  /// A machine with `num_modules` banks and `memory_words` addressable words.
  Machine(std::size_t num_modules, std::size_t memory_words);

  [[nodiscard]] std::size_t num_modules() const noexcept { return w_; }
  [[nodiscard]] std::size_t memory_words() const noexcept {
    return mem_.size();
  }

  /// Unaccounted host-side access (setup / verification only).
  [[nodiscard]] word peek(std::size_t addr) const;
  void poke(std::size_t addr, word value);
  void fill(std::span<const word> values, std::size_t base = 0);
  [[nodiscard]] std::vector<word> dump(std::size_t base,
                                       std::size_t count) const;

  /// Execute one synchronous step.  `reads_out`, when non-null, receives the
  /// value read by each read request, in request order.  Returns the cost of
  /// the step (already accumulated into stats()).
  StepCost step(std::span<const Request> requests,
                std::vector<word>* reads_out = nullptr);

  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  std::size_t w_;
  std::vector<word> mem_;
  MachineStats stats_;
};

}  // namespace wcm::dmm
