#pragma once
// Contention analysis of one synchronous DMM step: a set of simultaneous
// memory requests, one per processor at most.  This is where every conflict
// metric in the repository is defined, in one place:
//
//  * serialization        — cycles the step takes: max over banks of the
//                           number of distinct addresses requested in that
//                           bank (a module answers one request per cycle;
//                           same-address reads broadcast, per the paper's
//                           footnote 1).
//  * replays              — serialization - 1 when any request was made;
//                           matches the "extra wavefronts" notion reported
//                           by NVIDIA profilers (l1tex bank-conflict sums).
//  * conflicting_accesses — sum over banks of the number of requests to
//                           banks that needed >= 2 cycles.  This is the
//                           paper's "total bank conflicts" count: Theorem 3
//                           constructs E^2 of these per warp per round.
//
// CREW: concurrent writes to the same address are a model violation and
// throw; concurrent reads are allowed (and broadcast for free).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wcm::dmm {

enum class Op : unsigned char { read, write };

/// One processor's request within a synchronous step.  `value` is the
/// payload of a write and ignored for reads.
struct Request {
  std::size_t proc = 0;
  std::size_t addr = 0;
  Op op = Op::read;
  std::int64_t value = 0;
};

/// Cost of one synchronous step (see file comment for definitions).
struct StepCost {
  std::size_t requests = 0;
  std::size_t serialization = 0;
  std::size_t replays = 0;
  std::size_t conflicting_accesses = 0;
  std::size_t max_bank_degree = 0;  ///< distinct addresses in the worst bank

  StepCost& operator+=(const StepCost& o) noexcept;
  /// Field-wise equality — the static stride analyzer asserts its
  /// predicted costs equal the measured ones step by step.
  bool operator==(const StepCost& o) const noexcept = default;
};

/// Analyze one synchronous step on a machine with `num_banks` modules.
/// Throws wcm::contract_error on a CREW violation (two writes, or a read and
/// a write, to the same address) or on duplicate processor ids.
[[nodiscard]] StepCost analyze_step(std::span<const Request> step,
                                    std::size_t num_banks);

}  // namespace wcm::dmm
