#include "dmm/machine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wcm::dmm {

MachineStats& MachineStats::operator+=(const StepCost& c) noexcept {
  steps += 1;
  requests += c.requests;
  serialization_cycles += c.serialization;
  replays += c.replays;
  conflicting_accesses += c.conflicting_accesses;
  max_bank_degree = std::max(max_bank_degree, c.max_bank_degree);
  return *this;
}

MachineStats& MachineStats::operator+=(const MachineStats& o) noexcept {
  steps += o.steps;
  requests += o.requests;
  serialization_cycles += o.serialization_cycles;
  replays += o.replays;
  conflicting_accesses += o.conflicting_accesses;
  max_bank_degree = std::max(max_bank_degree, o.max_bank_degree);
  return *this;
}

Machine::Machine(std::size_t num_modules, std::size_t memory_words)
    : w_(num_modules), mem_(memory_words, word{0}) {
  WCM_EXPECTS(num_modules > 0, "need at least one memory module");
}

word Machine::peek(std::size_t addr) const {
  WCM_EXPECTS(addr < mem_.size(), "peek out of bounds");
  return mem_[addr];
}

void Machine::poke(std::size_t addr, word value) {
  WCM_EXPECTS(addr < mem_.size(), "poke out of bounds");
  mem_[addr] = value;
}

void Machine::fill(std::span<const word> values, std::size_t base) {
  WCM_EXPECTS(base + values.size() <= mem_.size(), "fill out of bounds");
  std::copy(values.begin(), values.end(),
            mem_.begin() + static_cast<std::ptrdiff_t>(base));
}

std::vector<word> Machine::dump(std::size_t base, std::size_t count) const {
  WCM_EXPECTS(base + count <= mem_.size(), "dump out of bounds");
  return {mem_.begin() + static_cast<std::ptrdiff_t>(base),
          mem_.begin() + static_cast<std::ptrdiff_t>(base + count)};
}

StepCost Machine::step(std::span<const Request> requests,
                       std::vector<word>* reads_out) {
  for (const Request& r : requests) {
    WCM_EXPECTS(r.proc < w_, "processor id out of range");
    WCM_EXPECTS(r.addr < mem_.size(), "request address out of bounds");
  }

  const StepCost cost = analyze_step(requests, w_);
  stats_ += cost;

  // Reads see the pre-step memory state (synchronous semantics); CREW (no
  // read+write of one address in a step, enforced by analyze_step) makes
  // the read/write order within the step immaterial.
  if (reads_out != nullptr) {
    reads_out->clear();
    for (const Request& r : requests) {
      if (r.op == Op::read) {
        reads_out->push_back(mem_[r.addr]);
      }
    }
  }
  for (const Request& r : requests) {
    if (r.op == Op::write) {
      mem_[r.addr] = r.value;
    }
  }
  return cost;
}

}  // namespace wcm::dmm
