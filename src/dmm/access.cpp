#include "dmm/access.hpp"

#include <algorithm>
#include <array>

#include "dmm/bank_matrix.hpp"
#include "util/check.hpp"

namespace wcm::dmm {

StepCost& StepCost::operator+=(const StepCost& o) noexcept {
  requests += o.requests;
  serialization += o.serialization;
  replays += o.replays;
  conflicting_accesses += o.conflicting_accesses;
  max_bank_degree = std::max(max_bank_degree, o.max_bank_degree);
  return *this;
}

StepCost analyze_step(std::span<const Request> step, std::size_t num_banks) {
  WCM_EXPECTS(num_banks > 0, "bank count must be positive");

  StepCost cost;
  cost.requests = step.size();
  if (step.empty()) {
    return cost;
  }

  // Sort a copy by (bank, addr) so distinct addresses per bank — and CREW
  // violations — can be found with one linear scan.  Steps are at most one
  // warp wide; a stack buffer keeps this allocation-free on the hot path.
  constexpr std::size_t kStackLanes = 64;
  std::array<Request, kStackLanes> stack_buf;
  std::vector<Request> heap_buf;
  std::span<Request> sorted;
  if (step.size() <= kStackLanes) {
    std::copy(step.begin(), step.end(), stack_buf.begin());
    sorted = {stack_buf.data(), step.size()};
  } else {
    heap_buf.assign(step.begin(), step.end());
    sorted = heap_buf;
  }
  std::sort(sorted.begin(), sorted.end(),
            [num_banks](const Request& a, const Request& b) {
              const std::size_t ba = bank_of(a.addr, num_banks);
              const std::size_t bb = bank_of(b.addr, num_banks);
              if (ba != bb) {
                return ba < bb;
              }
              return a.addr < b.addr;
            });

  for (std::size_t i = 1; i < sorted.size(); ++i) {
    WCM_EXPECTS(sorted[i].proc != sorted[i - 1].proc ||
                    sorted[i].addr != sorted[i - 1].addr,
                "duplicate processor id in one step");
  }

  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::size_t bank = bank_of(sorted[i].addr, num_banks);
    std::size_t bank_end = i;
    while (bank_end < sorted.size() &&
           bank_of(sorted[bank_end].addr, num_banks) == bank) {
      ++bank_end;
    }

    // Count distinct addresses within [i, bank_end); enforce CREW.
    std::size_t distinct = 0;
    std::size_t j = i;
    while (j < bank_end) {
      const std::size_t addr = sorted[j].addr;
      std::size_t same = 0;
      bool any_write = false;
      while (j < bank_end && sorted[j].addr == addr) {
        any_write = any_write || sorted[j].op == Op::write;
        ++same;
        ++j;
      }
      WCM_EXPECTS(!any_write || same == 1,
                  "CREW violation: concurrent access to a written address");
      ++distinct;
    }

    cost.max_bank_degree = std::max(cost.max_bank_degree, distinct);
    if (distinct >= 2) {
      cost.conflicting_accesses += bank_end - i;
    }
    i = bank_end;
  }

  cost.serialization = cost.max_bank_degree;
  cost.replays = cost.max_bank_degree > 0 ? cost.max_bank_degree - 1 : 0;
  return cost;
}

}  // namespace wcm::dmm
