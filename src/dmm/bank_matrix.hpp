#pragma once
// The DMM views a memory of M words on w modules as a w x ceil(M/w) matrix:
// row = memory module (bank), columns = consecutive "stripes" of the address
// space, contiguous addresses laid out in column-major order (paper, Sec.
// II-B).  These helpers convert between addresses and (bank, column) pairs
// and render such matrices for the Figure-1/Figure-3 style depictions.

#include <cstddef>
#include <functional>
#include <string>

namespace wcm::dmm {

/// Bank (memory module) holding address `addr` on a machine with `w` banks.
[[nodiscard]] std::size_t bank_of(std::size_t addr, std::size_t w);

/// Column of the bank matrix holding address `addr`.
[[nodiscard]] std::size_t column_of(std::size_t addr, std::size_t w);

/// Address stored at (bank, column).
[[nodiscard]] std::size_t addr_of(std::size_t bank, std::size_t column,
                                  std::size_t w);

/// Render the bank matrix of an address range [0, size) as aligned text.
/// `cell(addr)` supplies the label for each address (e.g. the id of the
/// thread that reads it); empty labels render as '.'.
[[nodiscard]] std::string render_bank_matrix(
    std::size_t size, std::size_t w,
    const std::function<std::string(std::size_t)>& cell);

}  // namespace wcm::dmm
