#pragma once
// Sequential stable merge (A-priority) used as the reference for every
// simulated merge and by the CPU baseline sort.

#include <span>
#include <vector>

#include "mergepath/corank.hpp"

namespace wcm::mergepath {

/// Stable merge of sorted a and b into out (out.size() == |a| + |b|).
void serial_merge(std::span<const word> a, std::span<const word> b,
                  std::span<word> out);

/// Convenience allocating overload.
[[nodiscard]] std::vector<word> serial_merge(std::span<const word> a,
                                             std::span<const word> b);

/// True iff v is sorted ascending.
[[nodiscard]] bool is_sorted_run(std::span<const word> v) noexcept;

}  // namespace wcm::mergepath
