#include "mergepath/corank.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wcm::mergepath {

CoRankResult merge_path(std::span<const word> a, std::span<const word> b,
                        std::size_t diag) {
  WCM_EXPECTS(diag <= a.size() + b.size(), "diagonal beyond both lists");

  std::size_t lo = diag > b.size() ? diag - b.size() : 0;
  std::size_t hi = std::min(diag, a.size());
  std::size_t steps = 0;

  // Invariant: the answer i (number of A elements among the first `diag`
  // outputs of the stable merge) lies in [lo, hi].
  while (lo < hi) {
    ++steps;
    const std::size_t i = lo + (hi - lo) / 2;
    const std::size_t j = diag - i;
    // If A[i] precedes B[j-1] in the stable merge (A-priority on ties),
    // then A[i] must be among the first `diag` outputs: grow i.
    if (a[i] <= b[j - 1]) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return {{lo, diag - lo}, steps};
}

}  // namespace wcm::mergepath
