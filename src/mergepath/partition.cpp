#include "mergepath/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wcm::mergepath {

PartitionResult partition_tiles(std::span<const word> a,
                                std::span<const word> b, std::size_t tile) {
  WCM_EXPECTS(tile > 0, "tile must be positive");
  const std::size_t n = a.size() + b.size();
  WCM_EXPECTS(n % tile == 0, "merged size must be a multiple of the tile");

  PartitionResult result;
  result.splits.reserve(n / tile + 1);
  for (std::size_t diag = 0; diag <= n; diag += tile) {
    const CoRankResult r = merge_path(a, b, diag);
    result.splits.push_back(r.split);
    result.search_steps += r.search_steps;
    result.max_chain = std::max(result.max_chain, r.search_steps);
  }

  // Postcondition: splits are monotone and consistent.
  for (std::size_t t = 1; t < result.splits.size(); ++t) {
    WCM_ENSURES(result.splits[t].i >= result.splits[t - 1].i &&
                    result.splits[t].j >= result.splits[t - 1].j,
                "merge-path splits must be monotone");
  }
  WCM_ENSURES(result.splits.back().i == a.size() &&
                  result.splits.back().j == b.size(),
              "final split must consume both runs");
  return result;
}

}  // namespace wcm::mergepath
