#pragma once
// GPU Merge Path primitives (Green, McColl & Bader 2012): the diagonal
// binary search ("co-rank") that lets t threads merge two sorted lists
// independently.  Host-side reference implementations with explicit step
// counting — the step counts feed the partition-stage cost in the GPU
// simulator.
//
// Stability convention used throughout the repository: A has priority, i.e.
// an element of A precedes an equal element of B.  All worst-case inputs are
// permutations (distinct keys), but the convention matters for tests.

#include <cstddef>
#include <span>

#include "dmm/machine.hpp"

namespace wcm::mergepath {

using dmm::word;

/// Split point of the merge of A and B at output rank `diag`: the first
/// `diag` merged elements are exactly A[0..i) and B[0..j) with i + j = diag.
struct CoRank {
  std::size_t i = 0;
  std::size_t j = 0;
};

struct CoRankResult {
  CoRank split;
  std::size_t search_steps = 0;  ///< binary-search iterations performed
};

/// Diagonal binary search for the stable (A-priority) merge path.
/// Requires a and b sorted ascending and diag <= |a| + |b|.
[[nodiscard]] CoRankResult merge_path(std::span<const word> a,
                                      std::span<const word> b,
                                      std::size_t diag);

}  // namespace wcm::mergepath
