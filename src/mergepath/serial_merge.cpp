#include "mergepath/serial_merge.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wcm::mergepath {

void serial_merge(std::span<const word> a, std::span<const word> b,
                  std::span<word> out) {
  WCM_EXPECTS(out.size() == a.size() + b.size(), "output size mismatch");
  std::size_t i = 0, j = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    const bool take_a =
        j >= b.size() || (i < a.size() && a[i] <= b[j]);  // A-priority
    out[k] = take_a ? a[i++] : b[j++];
  }
}

std::vector<word> serial_merge(std::span<const word> a,
                               std::span<const word> b) {
  std::vector<word> out(a.size() + b.size());
  serial_merge(a, b, out);
  return out;
}

bool is_sorted_run(std::span<const word> v) noexcept {
  return std::is_sorted(v.begin(), v.end());
}

}  // namespace wcm::mergepath
