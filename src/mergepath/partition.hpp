#pragma once
// Partition stage of GPU Merge Path: compute, for every tile boundary, the
// co-rank split of a pair of sorted runs.  On the GPU this is the global-
// memory mutual binary search each thread block performs; here we count the
// dependent search iterations so the cost model can charge global latency.

#include <vector>

#include "mergepath/corank.hpp"

namespace wcm::mergepath {

struct PartitionResult {
  /// Splits at diagonals 0, tile, 2*tile, ..., |a|+|b| (inclusive of both
  /// ends), so tile t merges a[splits[t].i, splits[t+1].i) with
  /// b[splits[t].j, splits[t+1].j).
  std::vector<CoRank> splits;
  /// Total binary-search iterations over all boundaries.
  std::size_t search_steps = 0;
  /// Worst single boundary's iterations (per-block dependent chain length).
  std::size_t max_chain = 0;
};

/// Partition the merge of runs a and b into tiles of `tile` output elements.
/// Requires |a| + |b| to be a multiple of `tile`.
[[nodiscard]] PartitionResult partition_tiles(std::span<const word> a,
                                              std::span<const word> b,
                                              std::size_t tile);

}  // namespace wcm::mergepath
