#include "core/unmerge.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wcm::core {

std::vector<bool> attack_block_mask(const sort::SortConfig& cfg,
                                    const WarpAssignment& l,
                                    const WarpAssignment& r) {
  cfg.validate();
  l.validate();
  r.validate();
  WCM_EXPECTS(l.w == cfg.w && l.E == cfg.E, "L assignment mismatch");
  WCM_EXPECTS(r.w == cfg.w && r.E == cfg.E, "R assignment mismatch");
  WCM_EXPECTS(l.total_a() == r.total_b() && l.total_b() == r.total_a(),
              "L and R must be symmetric so block halves balance");

  const std::size_t tile = cfg.tile();
  const u32 warps = cfg.warps_per_block();
  WCM_EXPECTS(warps % 2 == 0, "need an even number of warps per block");

  std::vector<bool> mask(tile, false);
  std::size_t rank = 0;
  for (u32 q = 0; q < warps; ++q) {
    const WarpAssignment& wa = q < warps / 2 ? l : r;
    for (u32 t = 0; t < cfg.w; ++t) {
      const ThreadAssign& ta = wa.threads[t];
      // Thread t's ranks [rank, rank + E): its A elements are a contiguous
      // run at the start (a_first) or the end (!a_first) of the range,
      // because the thread scans one whole list then the other.
      const std::size_t a_lo = ta.a_first ? rank : rank + ta.from_b;
      for (u32 k = 0; k < ta.from_a; ++k) {
        mask[a_lo + k] = true;
      }
      rank += cfg.E;
    }
  }
  WCM_ENSURES(rank == tile, "mask must cover the whole tile");

  const auto trues = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), true));
  WCM_ENSURES(trues == tile / 2, "block must draw exactly bE/2 from A");
  return mask;
}

std::vector<bool> attack_pair_mask(std::size_t pair_out,
                                   const sort::SortConfig& cfg,
                                   const WarpAssignment& l,
                                   const WarpAssignment& r) {
  const std::size_t tile = cfg.tile();
  WCM_EXPECTS(pair_out > 0 && pair_out % tile == 0,
              "pair output must be a multiple of bE");
  const std::vector<bool> block = attack_block_mask(cfg, l, r);
  std::vector<bool> mask;
  mask.reserve(pair_out);
  for (std::size_t base = 0; base < pair_out; base += tile) {
    mask.insert(mask.end(), block.begin(), block.end());
  }
  return mask;
}

std::vector<bool> neutral_pair_mask(std::size_t pair_out) {
  WCM_EXPECTS(pair_out % 2 == 0, "pair output must be even");
  std::vector<bool> mask(pair_out, false);
  std::fill(mask.begin(),
            mask.begin() + static_cast<std::ptrdiff_t>(pair_out / 2), true);
  return mask;
}

UnmergeSplit unmerge(std::span<const dmm::word> values,
                     const std::vector<bool>& mask) {
  WCM_EXPECTS(values.size() == mask.size(), "mask / values size mismatch");
  UnmergeSplit split;
  split.a.reserve(values.size() / 2);
  split.b.reserve(values.size() / 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    (mask[i] ? split.a : split.b).push_back(values[i]);
  }
  return split;
}

}  // namespace wcm::core
