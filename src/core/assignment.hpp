#pragma once
// Per-warp thread assignments — the language Section III's constructions
// are written in.  An assignment says, for each of the w threads of a warp,
// how many of its E merged elements come from list A, how many from list B,
// and which list it scans first (the paper designs inputs so each thread
// scans one list, then the other).
//
// The evaluator replays the resulting lock-step access schedule and counts
// aligned elements exactly as the paper defines them: element read at
// iteration j located in bank (s + j) mod w — plus the full conflict
// metrics via the DMM step analyzer.

#include <string>
#include <vector>

#include "dmm/access.hpp"
#include "util/math.hpp"

namespace wcm::core {

struct ThreadAssign {
  u32 from_a = 0;
  u32 from_b = 0;
  bool a_first = true;  ///< scan A then B (all A values < all B values)
};

/// Assignment of one warp's wE elements to its w threads.
struct WarpAssignment {
  u32 w = 0;
  u32 E = 0;
  std::vector<ThreadAssign> threads;  // size w

  [[nodiscard]] std::size_t total_a() const noexcept;
  [[nodiscard]] std::size_t total_b() const noexcept;

  /// Contract-checks: w threads, every thread sums to E.
  void validate() const;

  /// Swap the roles of A and B (the paper's symmetric R-warp strategy).
  [[nodiscard]] WarpAssignment mirrored() const;
};

/// Evaluation of a warp assignment's lock-step merge schedule.
struct WarpEval {
  std::size_t aligned = 0;  ///< elements read at step j from bank (s+j)%w
  dmm::StepCost totals;     ///< summed conflict metrics over the E steps
  /// Worst-bank degree per step (length E), for plotting/debugging.
  std::vector<std::size_t> step_degree;
};

/// Replay the warp's E lock-step iterations.  A occupies shared addresses
/// [0, total_a); B occupies [ceil(total_a / w) * w, ...), so both lists
/// start at bank 0 exactly as the constructions (and the simulated block
/// layout, where per-warp list sizes are multiples of w) guarantee.
/// `s` is the start bank of the E-bank alignment window.
[[nodiscard]] WarpEval evaluate_warp(const WarpAssignment& wa, u32 s);

/// Choose each thread's scan order to maximize its aligned elements for
/// window start `s`.  Exact: a thread's element *addresses* are fixed by
/// the counts (prefix sums over threads); its order only shifts the
/// iteration at which each element is read, so per-thread choice is
/// globally optimal.  A contiguous run of n <= w elements starting at bank
/// c, read at iterations j0..j0+n-1, is aligned iff c === s + j0 (mod w) —
/// all or nothing per (thread, list).
void optimize_scan_orders(WarpAssignment& wa, u32 s);

/// Figure-3 style rendering: the warp's A and B lists as bank matrices with
/// each element labeled by the thread that reads it.
[[nodiscard]] std::string render_warp(const WarpAssignment& wa);

/// Conflict heatmap: one row per lock-step iteration, one column per bank,
/// each cell the number of threads hitting that bank at that iteration
/// ('.' for zero).  The worst-case construction shows as a diagonal stripe
/// of E-high cells across the alignment window.
[[nodiscard]] std::string render_conflict_heatmap(const WarpAssignment& wa);

}  // namespace wcm::core
