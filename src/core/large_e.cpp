#include "core/large_e.hpp"

#include "core/numbers.hpp"
#include "util/check.hpp"

namespace wcm::core {

std::vector<ThreadAssign> build_sequence_s(u32 w, u32 E) {
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);

  std::vector<ThreadAssign> s;
  s.reserve(E - 1);
  for (u32 i = 1; i < E; ++i) {
    if (i % 2 == 0) {
      s.push_back({x[i], y[i], true});
    } else {
      s.push_back({y[i], x[i], true});
    }
  }
  return s;
}

std::vector<ThreadAssign> build_sequence_t(u32 w, u32 E) {
  const u32 r = large_e_r(w, E);
  const auto x = x_sequence(w, E);
  const auto y = y_sequence(w, E);
  const auto s = build_sequence_s(w, E);

  // insert_after[i] lists tuples to append after S's (1-based) entry i, in
  // rule order (rule 1 before rule 3 when both fire at i = E-1).
  std::vector<std::vector<ThreadAssign>> insert_after(E);

  // Rule 1: (E, 0) after (a_1, b_1) = (r, E-r) and after
  // (a_{E-1}, b_{E-1}) = (r, E-r).
  insert_after[1].push_back({E, 0, true});
  insert_after[E - 1].push_back({E, 0, true});

  // Rule 2: for k = 1 .. (E-1)/2 - 1, if x_{2k} + y_{2k+1} == r, insert
  // (E, 0) after entry 2k+1.
  for (u32 k = 1; k + 1 <= (E - 1) / 2; ++k) {
    if (2 * k + 1 <= E - 1 && x[2 * k] + y[2 * k + 1] == r) {
      insert_after[2 * k + 1].push_back({E, 0, true});
    }
  }

  // Rule 3: for k = 1 .. (E-1)/2, if x_{2k-1} + y_{2k} == r, insert (0, E)
  // after entry 2k.
  for (u32 k = 1; k <= (E - 1) / 2; ++k) {
    if (2 * k <= E - 1 && x[2 * k - 1] + y[2 * k] == r) {
      insert_after[2 * k].push_back({0, E, false});
    }
  }

  std::vector<ThreadAssign> t;
  t.reserve(w);
  for (u32 i = 1; i < E; ++i) {
    t.push_back(s[i - 1]);
    for (const ThreadAssign& ins : insert_after[i]) {
      t.push_back(ins);
    }
  }
  WCM_ENSURES(t.size() == w,
              "sequence T must have exactly w entries (r+1 insertions)");
  return t;
}

WarpAssignment build_large_e(u32 w, u32 E) {
  WCM_EXPECTS(classify_e(w, E) == ERegime::large,
              "Theorem 9 requires gcd(w, E) == 1 and w/2 < E < w");

  WarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.threads = build_sequence_t(w, E);
  wa.validate();
  WCM_ENSURES(wa.total_a() ==
                  static_cast<std::size_t>((E + 1) / 2) * w,
              "A list must have (E+1)/2 full columns");
  WCM_ENSURES(wa.total_b() ==
                  static_cast<std::size_t>((E - 1) / 2) * w,
              "B list must have (E-1)/2 full columns");

  const u32 s = w - E;  // align to the last E banks
  optimize_scan_orders(wa, s);

  const WarpEval eval = evaluate_warp(wa, s);
  WCM_ENSURES(eval.aligned == aligned_large_e(w, E),
              "Theorem 9 construction must match its closed-form count");
  return wa;
}

}  // namespace wcm::core
