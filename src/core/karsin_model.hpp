#pragma once
// The asymptotic access-complexity formulas the paper quotes from Karsin et
// al. (ICS 2018) / Karsin's thesis in Sec. II-A, implemented so the
// simulator's measured counts can be validated against them:
//
//   A_g = O( Nw/(PbE) log^2(N/bE) + N/P log(N/bE) )
//   A_s = O( N/(PE) log(N/bE) (beta_1 log(bE) + beta_2 E) )
//
// where P is the number of physical cores, beta_1 the mean bank-conflict
// serialization per partition probe, beta_2 per merge read.  These are the
// quantities whose worst case the paper then pins down (beta_2 = Theta(E)).
//
// The functions return the formulas' values with all hidden constants set
// to 1; tests and the bench check *scaling* (ratios across n and E), never
// absolute equality.

#include "sort/config.hpp"

namespace wcm::core {

/// Parallel coalesced global-memory access complexity A_g (constant = 1).
[[nodiscard]] double karsin_global_accesses(std::size_t n,
                                            const sort::SortConfig& cfg,
                                            double physical_cores);

/// Parallel shared-memory access complexity A_s (constant = 1).
[[nodiscard]] double karsin_shared_accesses(std::size_t n,
                                            const sort::SortConfig& cfg,
                                            double physical_cores,
                                            double beta1, double beta2);

/// The paper's empirical reference values for Modern GPU on random inputs
/// (Karsin et al.): beta_1 = 3.1, beta_2 = 2.2.
inline constexpr double kKarsinBeta1Random = 3.1;
inline constexpr double kKarsinBeta2Random = 2.2;

}  // namespace wcm::core
