#pragma once
// Inverse merging ("unmerge"): turn warp assignments into a boolean mask
// over a merge round's output ranks that says which list each rank came
// from.  Applying the masks top-down from the sorted array through the
// merge tree yields the worst-case input permutation (see generator.hpp).

#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "dmm/machine.hpp"
#include "sort/config.hpp"

namespace wcm::core {

/// Per-rank origin mask of one thread block's bE output ranks under the
/// attack: the first b/(2w) warps use the L assignment, the rest the R
/// assignment; within a warp, thread t covers ranks [tE, (t+1)E) and, per
/// its scan order, the A-origin ranks are the first from_a (a_first) or the
/// last from_a (!a_first) of its range.  Exactly bE/2 entries are true
/// (from A).
[[nodiscard]] std::vector<bool> attack_block_mask(const sort::SortConfig& cfg,
                                                  const WarpAssignment& l,
                                                  const WarpAssignment& r);

/// Convenience: the attack mask for one pair of runs whose merged output
/// has `pair_out` elements (a multiple of cfg.tile()): the block mask tiled
/// across the pair's blocks.
[[nodiscard]] std::vector<bool> attack_pair_mask(std::size_t pair_out,
                                                 const sort::SortConfig& cfg,
                                                 const WarpAssignment& l,
                                                 const WarpAssignment& r);

/// Neutral mask: first half of the ranks from A (i.e. the pair's runs are
/// fully ordered, A entirely below B).  Used for rounds the attack skips.
[[nodiscard]] std::vector<bool> neutral_pair_mask(std::size_t pair_out);

/// Split `values` (ascending) into the A-run and B-run dictated by `mask`
/// (A = values at true ranks, order preserved; both outputs are sorted).
struct UnmergeSplit {
  std::vector<dmm::word> a;
  std::vector<dmm::word> b;
};
[[nodiscard]] UnmergeSplit unmerge(std::span<const dmm::word> values,
                                   const std::vector<bool>& mask);

}  // namespace wcm::core
