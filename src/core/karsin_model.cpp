#include "core/karsin_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wcm::core {

namespace {
double log2_pos(double x) { return std::log2(std::max(x, 2.0)); }
}  // namespace

double karsin_global_accesses(std::size_t n, const sort::SortConfig& cfg,
                              double physical_cores) {
  cfg.validate();
  WCM_EXPECTS(physical_cores > 0, "need at least one core");
  const double N = static_cast<double>(n);
  const double rounds = log2_pos(N / static_cast<double>(cfg.tile()));
  const double partition_term = N * cfg.w /
                                (physical_cores * cfg.b * cfg.E) * rounds *
                                rounds;
  const double transfer_term = N / physical_cores * rounds;
  return partition_term + transfer_term;
}

double karsin_shared_accesses(std::size_t n, const sort::SortConfig& cfg,
                              double physical_cores, double beta1,
                              double beta2) {
  cfg.validate();
  WCM_EXPECTS(physical_cores > 0, "need at least one core");
  WCM_EXPECTS(beta1 >= 1.0 && beta2 >= 1.0, "betas are serialization >= 1");
  const double N = static_cast<double>(n);
  const double rounds = log2_pos(N / static_cast<double>(cfg.tile()));
  return N / (physical_cores * cfg.E) * rounds *
         (beta1 * log2_pos(static_cast<double>(cfg.tile())) +
          beta2 * cfg.E);
}

}  // namespace wcm::core
