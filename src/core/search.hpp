#pragma once
// Stochastic search for worst-case warp assignments — an independent probe
// of the constructions.  The paper proves its constructions reach E^2
// (small E) and (E^2+E+2Er-r^2-r)/2 (large E) aligned elements; this module
// searches the assignment space directly (randomized hill climbing with
// restarts over per-thread counts and scan orders, the evaluator as the
// objective) and lets tests and the bench ask:
//
//   * does search rediscover the closed-form optimum for small E?  (It
//     must: E^2 is a proven ceiling.)
//   * does search ever *beat* the large-E construction?  (It should not if
//     Theorem 9's count is the true maximum over this assignment family —
//     an empirical tightness check the paper leaves implicit.)
//
// The search space is the paper's own input family: each thread scans one
// contiguous chunk of A then one of B (or vice versa), chunk sizes
// summing to E, list totals fixed at ((E+1)/2) w and ((E-1)/2) w.

#include "core/assignment.hpp"

namespace wcm::core {

struct SearchOptions {
  std::size_t restarts = 8;
  std::size_t iterations = 4000;  ///< proposal steps per restart
  u64 seed = 1;
};

struct SearchResult {
  WarpAssignment best;
  u32 window_start = 0;     ///< the window the search targeted
  std::size_t aligned = 0;  ///< evaluator count of `best`
  std::size_t evaluations = 0;
};

/// Maximize aligned elements over the paper's assignment family for the
/// regime's natural window (bank 0 for small E, w - E for large E).
/// Requires gcd(w, E) = 1 and 3 <= E < w.
[[nodiscard]] SearchResult search_worst_case_warp(u32 w, u32 E,
                                                  const SearchOptions& opts = {});

}  // namespace wcm::core
