#pragma once
// Theorem 9: for gcd(w, E) = 1 and w/2 < E < w, a warp assignment aligning
// (E^2 + E + 2Er - r^2 - r)/2 elements (r = w - E) to the *last* E memory
// banks (s = r), built from the residue sequences x_i = -ir mod E and
// y_i = ir mod E assembled into the paper's sequences S and T.

#include "core/assignment.hpp"

namespace wcm::core {

/// The sequence S of Section III-B: pairs (a_i, b_i) for i = 1..E-1 with
/// a_i = x_i for even i, y_i for odd i (and b_i the other one).
[[nodiscard]] std::vector<ThreadAssign> build_sequence_s(u32 w, u32 E);

/// The sequence T: S with (E, 0) / (0, E) tuples inserted after every group
/// of entries whose A- (resp. B-) components sum to a multiple of w, per the
/// three insertion rules of Section III-B.  |T| == w.
[[nodiscard]] std::vector<ThreadAssign> build_sequence_t(u32 w, u32 E);

/// Build the L-warp assignment of Theorem 9 (scan orders chosen per thread
/// to realize the alignment; the choice is exact because a thread's element
/// addresses depend only on the counts, not the orders).  Postcondition
/// (self-checked): evaluate_warp(result, w - E).aligned equals the
/// closed-form count of Theorem 9.
[[nodiscard]] WarpAssignment build_large_e(u32 w, u32 E);

}  // namespace wcm::core
