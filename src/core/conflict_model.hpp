#pragma once
// Closed-form predictions derived from Theorems 3 and 9, used to cross-check
// the measured conflict counts of the simulated sort (tests) and to annotate
// the benches.  All counts refer to the lock-step merge reads of attacked
// rounds; the simulator's measured numbers additionally contain the
// (constant, small) incidental conflicts of un-attacked traffic, so tests
// compare with >= on totals and == on the per-warp construction itself.

#include "core/numbers.hpp"
#include "sort/config.hpp"

namespace wcm::core {

/// Aligned elements per warp per attacked merge round (both L and R warps
/// achieve the same count, by symmetry).
[[nodiscard]] u64 predicted_aligned_per_warp(u32 w, u32 E);

/// Predicted beta_2 (mean merge-read serialization) of a fully attacked
/// warp-round: one serialized access per aligned element across E steps,
/// plus one wavefront per step -> 1 + (aligned - E) / E ... simplified to
/// aligned / E, which equals E exactly in the small-E regime.  A *lower
/// bound* in the large-E regime, where misaligned window elements add
/// serialization beyond the aligned count.
[[nodiscard]] double predicted_beta2(u32 w, u32 E);

/// Exact beta_2 of an attacked round: the constructions are deterministic,
/// so the evaluator's serialization count (averaged over the L and R warp,
/// which a block uses in equal numbers) predicts the simulated sort's
/// per-round beta_2 to machine precision.
[[nodiscard]] double exact_beta2_prediction(u32 w, u32 E);

/// Lower bound on the paper-style "total bank conflicts" (conflicting
/// accesses) the constructed input inflicts on the whole sort: per attacked
/// round, every warp serializes its aligned elements.
[[nodiscard]] u64 predicted_total_conflicts(std::size_t n,
                                            const sort::SortConfig& cfg,
                                            std::size_t attacked_rounds);

/// Effective parallelism of an attacked warp: ceil(w / E) (the paper's
/// headline loss-of-parallelism figure).
[[nodiscard]] u64 effective_parallelism(u32 w, u32 E);

}  // namespace wcm::core
