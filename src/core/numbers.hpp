#pragma once
// Number-theoretic machinery of Section III: the co-primality lemma for the
// large-E case (Lemma 4), the x_i / y_i residue sequences (Lemmas 7 and 8),
// the closed-form aligned-element counts (Theorems 3 and 9), and the
// pigeonhole bound of Lemma 1.

#include <vector>

#include "util/math.hpp"

namespace wcm::core {

/// Which of the paper's construction regimes a (w, E) pair falls in.
enum class ERegime {
  power_of_two,  ///< gcd(w, E) = E: sorted order is already worst case
  shared_factor, ///< 1 < gcd(w, E) < E: every d-th chunk aligns in sorted order
  small,         ///< gcd = 1, E < w/2: Theorem 3, E^2 aligned
  large,         ///< gcd = 1, w/2 < E < w: Theorem 9
  unsupported,   ///< E >= w or degenerate (E < 3)
};

[[nodiscard]] ERegime classify_e(u32 w, u32 E);

/// Lemma 1: worst-case bank conflicts for any warp access into k consecutive
/// addresses on w banks: min(ceil(k / w), w).
[[nodiscard]] u64 lemma1_bound(u64 k, u64 w);

/// r = w - E of the large-E case (odd and co-prime with E by Lemma 4).
[[nodiscard]] u32 large_e_r(u32 w, u32 E);

/// x_i = -i r mod E for i = 1..E-1 (paper Sec. III-B).
[[nodiscard]] std::vector<u32> x_sequence(u32 w, u32 E);
/// y_i = i r mod E for i = 1..E-1.
[[nodiscard]] std::vector<u32> y_sequence(u32 w, u32 E);

/// Theorem 3's aligned-element count for small E: E^2.
[[nodiscard]] u64 aligned_small_e(u32 E);

/// Theorem 9's aligned-element count for large E:
/// (E^2 + E + 2 E r - r^2 - r) / 2 with r = w - E.
[[nodiscard]] u64 aligned_large_e(u32 w, u32 E);

/// Aligned elements the dispatcher's construction achieves for any co-prime
/// E < w (selects the regime's closed form).
[[nodiscard]] u64 aligned_worst_case(u32 w, u32 E);

}  // namespace wcm::core
