#include "core/generator.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::core {

namespace {

struct GeneratorState {
  const sort::SortConfig* cfg = nullptr;
  const AttackOptions* opts = nullptr;
  WarpAssignment l;
  WarpAssignment r;
  std::vector<bool> block_mask;  // cached attack mask of one bE tile
  std::vector<dmm::word>* out = nullptr;
  Xoshiro256 rng{0};
};

/// Attack mask for an intra-block pair of `size` output elements
/// (size = 2^i E with 2^i threads, spanning size / (wE) >= 2 warps).
std::vector<bool> intra_attack_mask(const GeneratorState& g,
                                    std::size_t size) {
  const sort::SortConfig& cfg = *g.cfg;
  const std::size_t warp_span = static_cast<std::size_t>(cfg.w) * cfg.E;
  WCM_EXPECTS(size % warp_span == 0 && (size / warp_span) % 2 == 0,
              "intra-block attack needs an even number of warps");
  const std::size_t warps = size / warp_span;

  std::vector<bool> mask(size, false);
  std::size_t rank = 0;
  for (std::size_t q = 0; q < warps; ++q) {
    const WarpAssignment& wa = q < warps / 2 ? g.l : g.r;
    for (u32 t = 0; t < cfg.w; ++t) {
      const ThreadAssign& ta = wa.threads[t];
      const std::size_t a_lo = ta.a_first ? rank : rank + ta.from_b;
      for (u32 k = 0; k < ta.from_a; ++k) {
        mask[a_lo + k] = true;
      }
      rank += cfg.E;
    }
  }
  return mask;
}

void place(GeneratorState& g, std::vector<dmm::word> values, std::size_t base,
            std::size_t depth) {
  const sort::SortConfig& cfg = *g.cfg;
  const std::size_t size = values.size();
  const std::size_t tile = cfg.tile();
  const std::size_t warp_span = static_cast<std::size_t>(cfg.w) * cfg.E;

  // `depth` counts merge rounds from the *final* round downward: the split
  // of the full array is depth 0 (the last global round), its children
  // depth 1, and so on.
  const bool global_level = size > tile;
  const bool intra_attackable = g.opts->attack_intra_block &&
                                size <= tile && size >= 2 * warp_span &&
                                size % warp_span == 0 &&
                                (size / warp_span) % 2 == 0;
  const bool attacked = ((global_level && g.opts->attack_global_rounds &&
                          depth < g.opts->max_attacked_rounds) ||
                         intra_attackable);
  const bool keep_splitting = global_level || intra_attackable;

  if (!keep_splitting) {
    // Leaf segment: internal order is invisible to every level above (the
    // block sort re-sorts it), so identity or a seeded shuffle both work.
    if (g.opts->tile_shuffle_seed != 0) {
      shuffle(values, g.rng);
    }
    std::copy(values.begin(), values.end(),
              g.out->begin() + static_cast<std::ptrdiff_t>(base));
    return;
  }

  std::vector<bool> mask;
  if (!attacked) {
    mask = neutral_pair_mask(size);
  } else if (global_level) {
    // Tile the cached block mask across the pair's thread blocks.
    mask.reserve(size);
    for (std::size_t lo = 0; lo < size; lo += tile) {
      mask.insert(mask.end(), g.block_mask.begin(), g.block_mask.end());
    }
  } else {
    mask = intra_attack_mask(g, size);
  }

  UnmergeSplit split = unmerge(values, mask);
  WCM_ENSURES(split.a.size() == size / 2 && split.b.size() == size / 2,
              "unmerge must split a pair evenly");
  place(g, std::move(split.a), base, depth + 1);
  place(g, std::move(split.b), base + size / 2, depth + 1);
}

}  // namespace

std::vector<dmm::word> worst_case_input(std::size_t n,
                                        const sort::SortConfig& cfg,
                                        const AttackOptions& opts) {
  cfg.validate();
  const ERegime regime = classify_e(cfg.w, cfg.E);
  WCM_EXPECTS(regime == ERegime::small || regime == ERegime::large,
              "worst-case input needs gcd(w, E) == 1 and 3 <= E < w");
  const std::size_t tile = cfg.tile();
  WCM_EXPECTS(n >= 2 * tile && n % tile == 0 && is_pow2(n / tile),
              "n must be bE * 2^k with k >= 1");

  GeneratorState g;
  g.cfg = &cfg;
  g.opts = &opts;
  g.l = worst_case_warp(cfg.w, cfg.E, WarpSide::L, opts.small_e_strategy);
  g.r = worst_case_warp(cfg.w, cfg.E, WarpSide::R, opts.small_e_strategy);
  g.block_mask = attack_block_mask(cfg, g.l, g.r);
  g.rng = Xoshiro256(opts.tile_shuffle_seed);

  std::vector<dmm::word> out(n);
  g.out = &out;

  std::vector<dmm::word> all(n);
  std::iota(all.begin(), all.end(), dmm::word{0});
  place(g, std::move(all), 0, 0);
  return out;
}

std::size_t attacked_round_count(std::size_t n, const sort::SortConfig& cfg) {
  const std::size_t tile = cfg.tile();
  WCM_EXPECTS(n % tile == 0 && is_pow2(n / tile), "n must be bE * 2^k");
  return log2_exact(n / tile);
}

}  // namespace wcm::core
