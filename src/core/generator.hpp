#pragma once
// The worst-case input generator — the library's headline entry point.
//
// Construction: the sorted output of the full sort is the identity
// permutation 0..N-1.  Walking the merge tree top-down, every pair-merge of
// the global rounds is "unmerged" with the attack mask (which output rank
// came from which input run), fixing exactly which values land in each run;
// recursion bottoms out at the bE base-case tiles.  Because all keys are
// distinct, the simulated (and any real) pairwise merge sort then
// reproduces the adversarial per-warp access pattern at *every* global
// merge round.
//
// Options cover the paper's Sec. V discussion: the intra-block extension
// (attack the block sort's rounds with >= 2 warps per pair too) and the
// permutation *family* (item 2: elements in the non-aligned banks can be
// permuted freely — seeded shuffling of the base tiles yields many distinct
// worst-case inputs).

#include <vector>

#include "core/unmerge.hpp"
#include "core/warp_construction.hpp"
#include "sort/config.hpp"

namespace wcm::core {

struct AttackOptions {
  /// Attack every global pairwise merge round (the paper's construction).
  bool attack_global_rounds = true;
  /// Extension: also attack intra-block merge rounds whose pairs span at
  /// least two warps (pair size >= 2wE).
  bool attack_intra_block = false;
  /// Nonzero: shuffle each base tile with this seed (the inner order of a
  /// tile is irrelevant to every attacked round — the block sort re-sorts
  /// it — so this produces a family of distinct worst-case permutations).
  u64 tile_shuffle_seed = 0;
  /// Which Lemma 2 alignment strategy builds the small-E warps.  All three
  /// achieve E^2 aligned elements but yield different permutations —
  /// another axis of the worst-case family.  Ignored in the large-E regime.
  AlignmentStrategy small_e_strategy = AlignmentStrategy::front_to_back;
  /// Attack only the *last* `max_attacked_rounds` global merge rounds
  /// (counted from the final round down); earlier rounds get neutral
  /// splits.  Paper Sec. V item 3: relaxing the construction produces many
  /// more permutations with a dialed-down — but still large — number of
  /// conflicts.  Default: attack every global round.
  std::size_t max_attacked_rounds = static_cast<std::size_t>(-1);
};

/// Generate the worst-case input permutation of {0, .., n-1} for the given
/// sort configuration.  Requires n = bE * 2^k, k >= 1, and a co-prime
/// E < w with E >= 3.
[[nodiscard]] std::vector<dmm::word> worst_case_input(
    std::size_t n, const sort::SortConfig& cfg, const AttackOptions& opts = {});

/// Number of global merge rounds the generator attacks for input size n.
[[nodiscard]] std::size_t attacked_round_count(std::size_t n,
                                               const sort::SortConfig& cfg);

}  // namespace wcm::core
