#include "core/assignment.hpp"

#include <iomanip>
#include <numeric>
#include <sstream>

#include "dmm/bank_matrix.hpp"
#include "util/check.hpp"

namespace wcm::core {

std::size_t WarpAssignment::total_a() const noexcept {
  return std::accumulate(threads.begin(), threads.end(), std::size_t{0},
                         [](std::size_t acc, const ThreadAssign& t) {
                           return acc + t.from_a;
                         });
}

std::size_t WarpAssignment::total_b() const noexcept {
  return std::accumulate(threads.begin(), threads.end(), std::size_t{0},
                         [](std::size_t acc, const ThreadAssign& t) {
                           return acc + t.from_b;
                         });
}

void WarpAssignment::validate() const {
  WCM_EXPECTS(is_pow2(w), "warp size must be a power of two");
  WCM_EXPECTS(threads.size() == w, "need exactly w thread assignments");
  for (const ThreadAssign& t : threads) {
    WCM_EXPECTS(t.from_a + t.from_b == E, "every thread must merge E keys");
  }
}

WarpAssignment WarpAssignment::mirrored() const {
  WarpAssignment m = *this;
  for (ThreadAssign& t : m.threads) {
    std::swap(t.from_a, t.from_b);
    t.a_first = !t.a_first;
  }
  return m;
}

namespace {

/// Shared-memory address of each element a thread reads, in read order.
/// A occupies [0, total_a); B starts at the next multiple of w.
struct AddressSchedule {
  std::vector<std::vector<std::size_t>> per_thread;  // [thread][step] -> addr
  std::size_t b_base = 0;
};

AddressSchedule schedule_addresses(const WarpAssignment& wa) {
  AddressSchedule sched;
  sched.b_base = ceil_div(wa.total_a(), wa.w) * wa.w;
  sched.per_thread.assign(wa.w, {});

  std::size_t a_cursor = 0;
  std::size_t b_cursor = sched.b_base;
  for (u32 t = 0; t < wa.w; ++t) {
    const ThreadAssign& ta = wa.threads[t];
    auto& addrs = sched.per_thread[t];
    addrs.reserve(wa.E);
    // The thread's A elements are the next from_a of the A list (threads
    // consume the lists in thread order because output ranks ascend), and
    // likewise for B; a_first decides the interleaving in *time*.
    std::vector<std::size_t> a_part(ta.from_a), b_part(ta.from_b);
    std::iota(a_part.begin(), a_part.end(), a_cursor);
    std::iota(b_part.begin(), b_part.end(), b_cursor);
    a_cursor += ta.from_a;
    b_cursor += ta.from_b;
    if (ta.a_first) {
      addrs.insert(addrs.end(), a_part.begin(), a_part.end());
      addrs.insert(addrs.end(), b_part.begin(), b_part.end());
    } else {
      addrs.insert(addrs.end(), b_part.begin(), b_part.end());
      addrs.insert(addrs.end(), a_part.begin(), a_part.end());
    }
  }
  return sched;
}

}  // namespace

WarpEval evaluate_warp(const WarpAssignment& wa, u32 s) {
  wa.validate();
  WCM_EXPECTS(s < wa.w, "alignment window start out of range");
  const AddressSchedule sched = schedule_addresses(wa);

  WarpEval eval;
  eval.step_degree.reserve(wa.E);
  std::vector<dmm::Request> step;
  step.reserve(wa.w);
  for (u32 j = 0; j < wa.E; ++j) {
    step.clear();
    const std::size_t aligned_bank = (s + j) % wa.w;
    for (u32 t = 0; t < wa.w; ++t) {
      const std::size_t addr = sched.per_thread[t][j];
      step.push_back({t, addr, dmm::Op::read, 0});
      if (addr % wa.w == aligned_bank) {
        ++eval.aligned;
      }
    }
    const dmm::StepCost cost = dmm::analyze_step(step, wa.w);
    eval.step_degree.push_back(cost.max_bank_degree);
    eval.totals += cost;
  }
  return eval;
}

void optimize_scan_orders(WarpAssignment& wa, u32 s) {
  wa.validate();
  WCM_EXPECTS(s < wa.w, "alignment window start out of range");
  std::size_t ca = 0;  // A elements consumed by previous threads
  std::size_t cb = 0;
  for (ThreadAssign& t : wa.threads) {
    const u32 w = wa.w;
    const u32 bank_a = static_cast<u32>(ca % w);
    const u32 bank_b = static_cast<u32>(cb % w);
    // a_first: A read at iterations 0.., B at iterations from_a..
    const std::size_t af = (bank_a == s % w ? t.from_a : 0) +
                           (bank_b == (s + t.from_a) % w ? t.from_b : 0);
    // b_first: B read at iterations 0.., A at iterations from_b..
    const std::size_t bf = (bank_b == s % w ? t.from_b : 0) +
                           (bank_a == (s + t.from_b) % w ? t.from_a : 0);
    t.a_first = af >= bf;
    ca += t.from_a;
    cb += t.from_b;
  }
}

std::string render_warp(const WarpAssignment& wa) {
  wa.validate();
  const AddressSchedule sched = schedule_addresses(wa);
  const std::size_t na = wa.total_a();
  const std::size_t nb = wa.total_b();

  // Label every address with the thread that reads it.
  std::vector<std::string> label(sched.b_base + nb);
  for (u32 t = 0; t < wa.w; ++t) {
    for (const std::size_t addr : sched.per_thread[t]) {
      label[addr] = std::to_string(t);
    }
  }

  std::ostringstream os;
  os << "A (" << na << " elements):\n"
     << dmm::render_bank_matrix(
            na, wa.w, [&](std::size_t a) { return label[a]; })
     << "B (" << nb << " elements):\n"
     << dmm::render_bank_matrix(nb, wa.w, [&](std::size_t a) {
          return label[sched.b_base + a];
        });
  return os.str();
}

std::string render_conflict_heatmap(const WarpAssignment& wa) {
  wa.validate();
  const AddressSchedule sched = schedule_addresses(wa);

  std::ostringstream os;
  os << "step |";
  for (u32 b = 0; b < wa.w; ++b) {
    os << ' ' << (b % 10);
  }
  os << "  (bank mod 10)\n-----+" << std::string(2 * wa.w + 1, '-') << '\n';
  for (u32 j = 0; j < wa.E; ++j) {
    std::vector<u32> degree(wa.w, 0);
    for (u32 t = 0; t < wa.w; ++t) {
      ++degree[sched.per_thread[t][j] % wa.w];
    }
    os << std::setw(4) << j << " |";
    for (u32 b = 0; b < wa.w; ++b) {
      if (degree[b] == 0) {
        os << " .";
      } else if (degree[b] < 10) {
        os << ' ' << degree[b];
      } else {
        os << ' ' << static_cast<char>('a' + (degree[b] - 10) % 26);
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wcm::core
