#include "core/kway_attack.hpp"

#include <algorithm>
#include <numeric>

#include "core/numbers.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::core {

std::vector<std::size_t> KWarpAssignment::totals() const {
  std::vector<std::size_t> t(ways, 0);
  for (const auto& th : threads) {
    for (u32 k = 0; k < ways; ++k) {
      t[k] += th.counts[k];
    }
  }
  return t;
}

void KWarpAssignment::validate() const {
  WCM_EXPECTS(is_pow2(w), "warp size must be a power of two");
  WCM_EXPECTS(ways >= 2, "need at least two runs");
  WCM_EXPECTS(threads.size() == w, "need exactly w thread assignments");
  for (const auto& th : threads) {
    WCM_EXPECTS(th.counts.size() == ways, "counts per run mismatch");
    u32 sum = 0;
    for (const u32 c : th.counts) {
      sum += c;
    }
    WCM_EXPECTS(sum == E, "every thread must merge E keys");
    // Order must name each touched run exactly once.
    std::vector<bool> seen(ways, false);
    for (const u32 k : th.order) {
      WCM_EXPECTS(k < ways && !seen[k], "order must be a run subset");
      seen[k] = true;
      WCM_EXPECTS(th.counts[k] > 0, "ordered run must contribute");
    }
    u32 ordered = 0;
    for (const u32 k : th.order) {
      ordered += th.counts[k];
    }
    WCM_EXPECTS(ordered == E, "order must cover every contributed run");
  }
  const auto t = totals();
  for (const std::size_t tk : t) {
    WCM_EXPECTS(tk % w == 0, "per-run totals must be multiples of w");
  }
}

KWarpEval evaluate_kway_warp(const KWarpAssignment& wa, u32 s) {
  wa.validate();
  WCM_EXPECTS(s < wa.w, "alignment window start out of range");

  const auto totals = wa.totals();
  std::vector<std::size_t> base(wa.ways, 0);
  for (u32 k = 1; k < wa.ways; ++k) {
    base[k] = base[k - 1] + totals[k - 1];
  }

  // Per-thread read schedule.
  std::vector<std::size_t> cursor(base.begin(), base.end());
  std::vector<std::vector<std::size_t>> sched(wa.w);
  for (u32 t = 0; t < wa.w; ++t) {
    const auto& th = wa.threads[t];
    auto& addrs = sched[t];
    addrs.reserve(wa.E);
    for (const u32 k : th.order) {
      for (u32 i = 0; i < th.counts[k]; ++i) {
        addrs.push_back(cursor[k] + i);
      }
      cursor[k] += th.counts[k];
    }
  }

  KWarpEval eval;
  std::vector<dmm::Request> step;
  for (u32 j = 0; j < wa.E; ++j) {
    step.clear();
    const std::size_t aligned_bank = (s + j) % wa.w;
    for (u32 t = 0; t < wa.w; ++t) {
      const std::size_t addr = sched[t][j];
      step.push_back({t, addr, dmm::Op::read, 0});
      if (addr % wa.w == aligned_bank) {
        ++eval.aligned;
      }
    }
    eval.totals += dmm::analyze_step(step, wa.w);
  }
  return eval;
}

KWarpAssignment build_kway_warp(u32 w, u32 E, u32 ways) {
  WCM_EXPECTS(classify_e(w, E) == ERegime::small,
              "K-way attack needs the small-E regime");
  WCM_EXPECTS(ways >= 2 && ways <= E, "need 2 <= ways <= E");

  // Column quotas: runs 0..(E mod K - 1) get ceil(E/K) columns, the rest
  // floor(E/K); per-run totals are quota * w.
  std::vector<std::size_t> rem(ways);
  for (u32 k = 0; k < ways; ++k) {
    rem[k] = static_cast<std::size_t>(E / ways + (k < E % ways ? 1 : 0)) * w;
  }
  std::vector<std::size_t> pos(ways, 0);

  KWarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.ways = ways;
  wa.threads.resize(w);

  for (u32 t = 0; t < w; ++t) {
    KThreadAssign& th = wa.threads[t];
    th.counts.assign(ways, 0);

    // Aligned scan: a run whose cursor sits on a column boundary with a
    // full column's worth remaining (prefer the fullest such run).
    u32 best = ways;
    for (u32 k = 0; k < ways; ++k) {
      if (pos[k] % w == 0 && rem[k] >= E &&
          (best == ways || rem[k] > rem[best])) {
        best = k;
      }
    }
    if (best != ways) {
      th.counts[best] = E;
      th.order = {best};
      pos[best] += E;
      rem[best] -= E;
      continue;
    }

    // Filler: repeatedly close the smallest positive gap (multi-run
    // threads are fine — the generator controls the values, so a thread
    // may scan any number of runs in sequence).  Gap ties break toward the
    // run with the most remaining elements: without this, the low-index
    // runs monopolize the fillers and the largest run is stranded alone at
    // the end, where consecutive E-scans of a single run cannot all start
    // on column boundaries.
    u32 budget = E;
    while (budget > 0) {
      u32 pick = ways;
      std::size_t pick_gap = 0;
      for (u32 k = 0; k < ways; ++k) {
        if (rem[k] == 0) {
          continue;
        }
        const std::size_t g =
            (w - pos[k] % w) % w == 0 ? w : (w - pos[k] % w) % w;
        if (pick == ways || g < pick_gap ||
            (g == pick_gap && rem[k] > rem[pick])) {
          pick = k;
          pick_gap = g;
        }
      }
      WCM_EXPECTS(pick != ways, "filler ran out of elements");
      const u32 take = static_cast<u32>(std::min<std::size_t>(
          {pick_gap, static_cast<std::size_t>(budget), rem[pick]}));
      th.counts[pick] += take;
      if (th.order.empty() || th.order.back() != pick) {
        th.order.push_back(pick);
      }
      pos[pick] += take;
      rem[pick] -= take;
      budget -= take;
    }
  }

  for (const std::size_t r : rem) {
    WCM_ENSURES(r == 0, "construction must consume wE keys");
  }
  wa.validate();
  const auto eval = evaluate_kway_warp(wa, 0);
  WCM_ENSURES(eval.aligned == static_cast<std::size_t>(E) * E,
              "K-way construction must align exactly E^2 elements");
  return wa;
}

std::vector<KWarpAssignment> build_kway_warp_group(u32 w, u32 E, u32 ways) {
  const KWarpAssignment base = build_kway_warp(w, E, ways);
  std::vector<KWarpAssignment> group;
  group.reserve(ways);
  for (u32 q = 0; q < ways; ++q) {
    KWarpAssignment rotated = base;
    for (auto& th : rotated.threads) {
      std::vector<u32> counts(ways);
      for (u32 k = 0; k < ways; ++k) {
        counts[(k + q) % ways] = th.counts[k];
      }
      th.counts = std::move(counts);
      for (u32& k : th.order) {
        k = (k + q) % ways;
      }
    }
    group.push_back(std::move(rotated));
  }
  return group;
}

namespace {

/// Per-rank origin labels of one block's bE output ranks: the warp group
/// tiled across the block's warps.
std::vector<u32> kway_block_origins(const sort::SortConfig& cfg,
                                    const std::vector<KWarpAssignment>& group) {
  const u32 warps = cfg.warps_per_block();
  WCM_EXPECTS(warps % group.size() == 0,
              "(b / w) must be a multiple of ways for balanced blocks");
  std::vector<u32> origins;
  origins.reserve(cfg.tile());
  for (u32 q = 0; q < warps; ++q) {
    const KWarpAssignment& wa = group[q % group.size()];
    for (u32 t = 0; t < cfg.w; ++t) {
      const auto& th = wa.threads[t];
      for (const u32 k : th.order) {
        origins.insert(origins.end(), th.counts[k], k);
      }
    }
  }
  WCM_ENSURES(origins.size() == cfg.tile(), "origin labels must cover bE");
  return origins;
}

struct KGenState {
  const sort::SortConfig* cfg = nullptr;
  u32 ways = 0;
  std::vector<u32> block_origins;
  std::vector<dmm::word>* out = nullptr;
  Xoshiro256 rng{0};
  bool shuffle_tiles = false;
};

void kplace(KGenState& g, std::vector<dmm::word> values, std::size_t base) {
  const std::size_t size = values.size();
  const std::size_t tile = g.cfg->tile();
  if (size == tile) {
    if (g.shuffle_tiles) {
      shuffle(values, g.rng);
    }
    std::copy(values.begin(), values.end(),
              g.out->begin() + static_cast<std::ptrdiff_t>(base));
    return;
  }
  // Split the sorted values into `ways` runs per the tiled block origins.
  std::vector<std::vector<dmm::word>> runs(g.ways);
  const std::size_t child = size / g.ways;
  for (auto& r : runs) {
    r.reserve(child);
  }
  for (std::size_t i = 0; i < size; ++i) {
    runs[g.block_origins[i % tile]].push_back(values[i]);
  }
  for (u32 k = 0; k < g.ways; ++k) {
    WCM_ENSURES(runs[k].size() == child, "origin split must be balanced");
    kplace(g, std::move(runs[k]), base + k * child);
  }
}

}  // namespace

std::vector<dmm::word> kway_worst_case_input(std::size_t n,
                                             const sort::SortConfig& cfg,
                                             u32 ways,
                                             u64 tile_shuffle_seed) {
  cfg.validate();
  const std::size_t tile = cfg.tile();
  WCM_EXPECTS(n > tile && n % tile == 0, "n must be bE * ways^j");
  std::size_t runs = n / tile;
  while (runs > 1) {
    WCM_EXPECTS(runs % ways == 0, "n must be bE * ways^j");
    runs /= ways;
  }

  KGenState g;
  g.cfg = &cfg;
  g.ways = ways;
  g.block_origins = kway_block_origins(cfg, build_kway_warp_group(cfg.w, cfg.E, ways));
  g.rng = Xoshiro256(tile_shuffle_seed);
  g.shuffle_tiles = tile_shuffle_seed != 0;

  std::vector<dmm::word> out(n);
  g.out = &out;
  std::vector<dmm::word> all(n);
  std::iota(all.begin(), all.end(), dmm::word{0});
  kplace(g, std::move(all), 0);
  return out;
}

}  // namespace wcm::core
