#include "core/numbers.hpp"

#include "util/check.hpp"

namespace wcm::core {

ERegime classify_e(u32 w, u32 E) {
  WCM_EXPECTS(is_pow2(w), "warp size must be a power of two");
  if (E < 3 || E >= w) {
    return ERegime::unsupported;
  }
  const u64 d = gcd(w, E);
  if (d == E) {
    return ERegime::power_of_two;
  }
  if (d > 1) {
    return ERegime::shared_factor;
  }
  // gcd(w, E) == 1 and w is a power of two, so E is odd; E != w/2.
  return 2 * E < w ? ERegime::small : ERegime::large;
}

u64 lemma1_bound(u64 k, u64 w) {
  WCM_EXPECTS(w > 0, "bank count must be positive");
  const u64 by_pigeonhole = ceil_div(k, w);
  return by_pigeonhole < w ? by_pigeonhole : w;
}

u32 large_e_r(u32 w, u32 E) {
  WCM_EXPECTS(classify_e(w, E) == ERegime::large, "not a large-E pair");
  const u32 r = w - E;
  // Lemma 4: gcd(E, r) = 1 because E + r = w is a power of two and both are
  // odd.  Checked here so every caller inherits the guarantee.
  WCM_ENSURES(gcd(E, r) == 1, "Lemma 4 violated");
  return r;
}

std::vector<u32> x_sequence(u32 w, u32 E) {
  const u32 r = large_e_r(w, E);
  std::vector<u32> x(E);  // x[0] unused; indices 1..E-1 as in the paper
  for (u32 i = 1; i < E; ++i) {
    x[i] = static_cast<u32>(
        mod_floor(-static_cast<i64>(i) * r, static_cast<i64>(E)));
  }
  return x;
}

std::vector<u32> y_sequence(u32 w, u32 E) {
  const u32 r = large_e_r(w, E);
  std::vector<u32> y(E);
  for (u32 i = 1; i < E; ++i) {
    y[i] = static_cast<u32>(
        mod_floor(static_cast<i64>(i) * r, static_cast<i64>(E)));
  }
  return y;
}

u64 aligned_small_e(u32 E) { return static_cast<u64>(E) * E; }

u64 aligned_large_e(u32 w, u32 E) {
  const u64 r = large_e_r(w, E);
  const u64 e = E;
  // (E^2 + E + 2Er - r^2 - r) / 2, Theorem 9.
  return (e * e + e + 2 * e * r - r * r - r) / 2;
}

u64 aligned_worst_case(u32 w, u32 E) {
  switch (classify_e(w, E)) {
    case ERegime::small:
      return aligned_small_e(E);
    case ERegime::large:
      return aligned_large_e(w, E);
    default:
      WCM_EXPECTS(false, "aligned_worst_case requires gcd(w, E) == 1, E < w");
      return 0;
  }
}

}  // namespace wcm::core
