#include "core/small_e.hpp"

#include <algorithm>

#include "core/numbers.hpp"
#include "util/check.hpp"

namespace wcm::core {

namespace {

// Shared greedy machinery.  A "cursor" tracks how many elements of a list
// one end has consumed; column alignment is a congruence on the cursor:
//  * walking forward, a full-column scan starts at bank 0 when the cursor
//    is a multiple of w;
//  * walking backward, the scan [total - cursor - E, total - cursor) starts
//    at bank 0 when cursor + E is a multiple of w (list totals are
//    multiples of w).

struct EndState {
  std::size_t pos_a = 0;  // elements consumed from this end
  std::size_t pos_b = 0;
};

struct Budget {
  std::size_t rem_a = 0;
  std::size_t rem_b = 0;

  void take(bool from_a, std::size_t count) {
    auto& rem = from_a ? rem_a : rem_b;
    WCM_EXPECTS(count <= rem, "overdrew a list");
    rem -= count;
  }
};

/// Gap to the next aligned position.  `aligned_mod` is the cursor residue
/// (mod w) at which the end may start an aligned scan (0 going forward,
/// (w - E) mod w going backward expressed on cursor + E === 0).  A zero gap
/// with too few remaining elements is "dead": report a full column.
std::size_t gap_to_alignment(std::size_t cursor, std::size_t target_mod,
                             std::size_t rem, u32 w) {
  if (rem == 0) {
    return 0;  // unusable
  }
  const std::size_t g = (target_mod + w - cursor % w) % w;
  return g == 0 ? w : g;
}

/// One greedy step for one end of the lists.  Appends the thread's
/// assignment; `target_a` / `target_b` are the cursor residues at which an
/// aligned scan may start for each list.
ThreadAssign greedy_step(EndState& end, Budget& budget, u32 E, u32 w,
                         std::size_t target_a, std::size_t target_b) {
  const bool align_a = end.pos_a % w == target_a && budget.rem_a >= E;
  const bool align_b = end.pos_b % w == target_b && budget.rem_b >= E;

  ThreadAssign ta;
  if (align_a && (!align_b || budget.rem_a >= budget.rem_b)) {
    ta = {E, 0, true};
    budget.take(true, E);
    end.pos_a += E;
    return ta;
  }
  if (align_b) {
    ta = {0, E, false};
    budget.take(false, E);
    end.pos_b += E;
    return ta;
  }

  // Filler: close the smaller positive gap, top up from the other list.
  const std::size_t gap_a =
      gap_to_alignment(end.pos_a, target_a, budget.rem_a, w);
  const std::size_t gap_b =
      gap_to_alignment(end.pos_b, target_b, budget.rem_b, w);
  bool primary_a;
  if (gap_a == 0) {
    primary_a = false;
  } else if (gap_b == 0) {
    primary_a = true;
  } else {
    primary_a = gap_a <= gap_b;
  }

  const std::size_t prim_gap = primary_a ? gap_a : gap_b;
  const std::size_t prim_rem = primary_a ? budget.rem_a : budget.rem_b;
  const std::size_t other_rem = primary_a ? budget.rem_b : budget.rem_a;

  std::size_t from_prim =
      std::min({prim_gap, static_cast<std::size_t>(E), prim_rem});
  std::size_t from_other = std::min<std::size_t>(E - from_prim, other_rem);
  if (from_prim + from_other < E) {
    from_prim = std::min<std::size_t>(E - from_other, prim_rem);
  }
  WCM_EXPECTS(from_prim + from_other == E,
              "filler thread cannot gather E elements");

  const u32 fa = static_cast<u32>(primary_a ? from_prim : from_other);
  const u32 fb = static_cast<u32>(primary_a ? from_other : from_prim);
  budget.take(true, fa);
  budget.take(false, fb);
  end.pos_a += fa;
  end.pos_b += fb;
  return {fa, fb, primary_a};
}

WarpAssignment assemble(u32 w, u32 E, std::vector<ThreadAssign> front,
                        const std::vector<ThreadAssign>& back) {
  WarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.threads = std::move(front);
  wa.threads.insert(wa.threads.end(), back.rbegin(), back.rend());
  return wa;
}

WarpAssignment front_to_back_impl(u32 w, u32 E) {
  EndState front;
  Budget budget{static_cast<std::size_t>((E + 1) / 2) * w,
                static_cast<std::size_t>((E - 1) / 2) * w};
  std::vector<ThreadAssign> threads;
  threads.reserve(w);
  for (u32 t = 0; t < w; ++t) {
    threads.push_back(greedy_step(front, budget, E, w, 0, 0));
  }
  WCM_ENSURES(budget.rem_a == 0 && budget.rem_b == 0,
              "construction must consume wE keys");
  return assemble(w, E, std::move(threads), {});
}

WarpAssignment back_to_front_impl(u32 w, u32 E) {
  // The mirror walk: the front-to-back solution traversed from the last
  // thread to the first.  A column aligned to banks [0, E) from the front
  // lands on banks [w-E, w) after reversal, so the window starts at w - E.
  WarpAssignment fwd = front_to_back_impl(w, E);
  std::reverse(fwd.threads.begin(), fwd.threads.end());
  optimize_scan_orders(fwd, w - E);
  return fwd;
}

WarpAssignment outside_in_impl(u32 w, u32 E) {
  // Claim aligned columns alternately from both ends (the proof of
  // Lemma 2's synthesis strategy).  Going backward, a full-column scan
  // [total - pos - E, total - pos) starts at bank 0 exactly when
  // pos === (w - E) mod w, since list totals are multiples of w.
  EndState front, back;
  Budget budget{static_cast<std::size_t>((E + 1) / 2) * w,
                static_cast<std::size_t>((E - 1) / 2) * w};
  const std::size_t back_target = (w - E % w) % w;

  std::vector<ThreadAssign> front_threads, back_threads;
  for (u32 t = 0; t < w; ++t) {
    if (t % 2 == 0) {
      front_threads.push_back(greedy_step(front, budget, E, w, 0, 0));
    } else {
      back_threads.push_back(
          greedy_step(back, budget, E, w, back_target, back_target));
    }
  }
  WCM_ENSURES(budget.rem_a == 0 && budget.rem_b == 0,
              "construction must consume wE keys");
  WarpAssignment wa = assemble(w, E, std::move(front_threads), back_threads);
  optimize_scan_orders(wa, 0);
  return wa;
}

}  // namespace

const char* to_string(AlignmentStrategy s) noexcept {
  switch (s) {
    case AlignmentStrategy::front_to_back:
      return "front-to-back";
    case AlignmentStrategy::back_to_front:
      return "back-to-front";
    case AlignmentStrategy::outside_in:
      return "outside-in";
  }
  return "?";
}

SmallEConstruction build_small_e_variant(u32 w, u32 E, AlignmentStrategy s) {
  WCM_EXPECTS(classify_e(w, E) == ERegime::small,
              "Theorem 3 requires gcd(w, E) == 1 and E < w/2");
  SmallEConstruction c;
  switch (s) {
    case AlignmentStrategy::front_to_back:
      c.warp = front_to_back_impl(w, E);
      c.window_start = 0;
      break;
    case AlignmentStrategy::back_to_front:
      c.warp = back_to_front_impl(w, E);
      c.window_start = w - E;
      break;
    case AlignmentStrategy::outside_in:
      c.warp = outside_in_impl(w, E);
      c.window_start = 0;
      break;
  }
  c.warp.validate();
  const WarpEval eval = evaluate_warp(c.warp, c.window_start);
  WCM_ENSURES(eval.aligned == aligned_small_e(E),
              "every Lemma 2 strategy must align exactly E^2 elements");
  return c;
}

WarpAssignment build_small_e(u32 w, u32 E) {
  return build_small_e_variant(w, E, AlignmentStrategy::front_to_back).warp;
}

}  // namespace wcm::core
