#include "core/conflict_model.hpp"

#include "core/warp_construction.hpp"
#include "util/check.hpp"

namespace wcm::core {

u64 predicted_aligned_per_warp(u32 w, u32 E) {
  return aligned_worst_case(w, E);
}

double predicted_beta2(u32 w, u32 E) {
  return static_cast<double>(aligned_worst_case(w, E)) / E;
}

double exact_beta2_prediction(u32 w, u32 E) {
  const u32 s = alignment_window_start(w, E);
  const auto l = evaluate_warp(worst_case_warp(w, E, WarpSide::L), s);
  const auto r = evaluate_warp(worst_case_warp(w, E, WarpSide::R), s);
  return static_cast<double>(l.totals.serialization +
                             r.totals.serialization) /
         (2.0 * E);
}

u64 predicted_total_conflicts(std::size_t n, const sort::SortConfig& cfg,
                              std::size_t attacked_rounds) {
  cfg.validate();
  const std::size_t warp_span = static_cast<std::size_t>(cfg.w) * cfg.E;
  WCM_EXPECTS(n % warp_span == 0, "n must be a multiple of wE");
  const u64 warps_per_round = n / warp_span;
  return warps_per_round * attacked_rounds *
         aligned_worst_case(cfg.w, cfg.E);
}

u64 effective_parallelism(u32 w, u32 E) {
  WCM_EXPECTS(E > 0, "E must be positive");
  return ceil_div(w, E);
}

}  // namespace wcm::core
