#include "core/search.hpp"

#include <algorithm>

#include "core/numbers.hpp"
#include "core/warp_construction.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::core {

namespace {

WarpAssignment assignment_from_counts(u32 w, u32 E,
                                      const std::vector<u32>& from_a) {
  WarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.threads.resize(w);
  for (u32 t = 0; t < w; ++t) {
    wa.threads[t] = {from_a[t], E - from_a[t], true};
  }
  return wa;
}

std::size_t objective(u32 w, u32 E, u32 s, const std::vector<u32>& from_a) {
  WarpAssignment wa = assignment_from_counts(w, E, from_a);
  // Scan orders are exactly optimizable per thread, so the search space is
  // the counts alone.
  optimize_scan_orders(wa, s);
  return evaluate_warp(wa, s).aligned;
}

/// Random feasible counts: from_a[t] in [0, E], summing to (E+1)/2 * w.
std::vector<u32> random_counts(u32 w, u32 E, Xoshiro256& rng) {
  const std::size_t target = static_cast<std::size_t>((E + 1) / 2) * w;
  std::vector<u32> counts(w, 0);
  std::size_t placed = 0;
  // Round-robin random increments until the target is met.
  while (placed < target) {
    const auto t = static_cast<std::size_t>(rng.below(w));
    if (counts[t] < E) {
      ++counts[t];
      ++placed;
    }
  }
  return counts;
}

}  // namespace

SearchResult search_worst_case_warp(u32 w, u32 E, const SearchOptions& opts) {
  const ERegime regime = classify_e(w, E);
  WCM_EXPECTS(regime == ERegime::small || regime == ERegime::large,
              "search targets the co-prime regimes");
  WCM_EXPECTS(opts.restarts > 0 && opts.iterations > 0,
              "need a positive search budget");
  const u32 s = regime == ERegime::small ? 0 : w - E;

  Xoshiro256 rng(opts.seed);
  SearchResult result;
  result.window_start = s;

  for (std::size_t restart = 0; restart < opts.restarts; ++restart) {
    std::vector<u32> counts = random_counts(w, E, rng);
    std::size_t current = objective(w, E, s, counts);
    ++result.evaluations;
    if (current >= result.aligned) {
      result.aligned = current;
      WarpAssignment wa = assignment_from_counts(w, E, counts);
      optimize_scan_orders(wa, s);
      result.best = std::move(wa);
    }

    for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
      // Proposal: move delta units of A-work from thread i to thread j.
      const auto i = static_cast<std::size_t>(rng.below(w));
      const auto j = static_cast<std::size_t>(rng.below(w));
      if (i == j || counts[i] == 0 || counts[j] == E) {
        continue;
      }
      const u32 max_delta = std::min<u32>(
          {counts[i], E - counts[j], 1 + static_cast<u32>(rng.below(3))});
      const u32 delta = 1 + static_cast<u32>(rng.below(max_delta));
      counts[i] -= delta;
      counts[j] += delta;
      const std::size_t candidate = objective(w, E, s, counts);
      ++result.evaluations;
      // Strictly better always accepted; equal accepted often (plateau
      // walks); slightly worse rarely (escape shallow optima).
      const bool accept = candidate > current ||
                          (candidate == current && rng.below(10) < 3) ||
                          (candidate + 2 >= current && rng.below(100) < 2);
      if (accept) {
        current = candidate;
      } else {
        counts[i] += delta;
        counts[j] -= delta;
      }
      if (current > result.aligned) {
        result.aligned = current;
        WarpAssignment wa = assignment_from_counts(w, E, counts);
        optimize_scan_orders(wa, s);
        result.best = std::move(wa);
      }
    }
  }

  WCM_ENSURES(result.aligned <= static_cast<std::size_t>(E) * E,
              "aligned count can never exceed the E^2 ceiling");
  return result;
}

}  // namespace wcm::core
