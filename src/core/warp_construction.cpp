#include "core/warp_construction.hpp"

#include "core/large_e.hpp"
#include "core/small_e.hpp"
#include "util/check.hpp"

namespace wcm::core {

WarpAssignment worst_case_warp(u32 w, u32 E, WarpSide side,
                               AlignmentStrategy strategy) {
  const ERegime regime = classify_e(w, E);
  WarpAssignment wa;
  switch (regime) {
    case ERegime::small:
      wa = build_small_e_variant(w, E, strategy).warp;
      break;
    case ERegime::large:
      wa = build_large_e(w, E);
      break;
    default:
      WCM_EXPECTS(false,
                  "worst-case construction requires gcd(w, E) == 1, "
                  "3 <= E < w");
  }
  return side == WarpSide::L ? wa : wa.mirrored();
}

u32 alignment_window_start(u32 w, u32 E, AlignmentStrategy strategy) {
  const ERegime regime = classify_e(w, E);
  WCM_EXPECTS(regime == ERegime::small || regime == ERegime::large,
              "no alignment window outside the co-prime regimes");
  if (regime == ERegime::large) {
    return w - E;
  }
  return strategy == AlignmentStrategy::back_to_front ? w - E : 0;
}

WarpAssignment sorted_order_warp(u32 w, u32 E) {
  WCM_EXPECTS(E >= 1 && E <= w, "E out of range");
  // Sorted data: the warp's first total_a/E threads scan A, the rest scan
  // B.  With |A| = ceil(w/2) E and |B| = floor(w/2) E both lists split at a
  // thread boundary.
  WarpAssignment wa;
  wa.w = w;
  wa.E = E;
  wa.threads.assign(w, ThreadAssign{});
  const u32 half = (w + 1) / 2;
  for (u32 t = 0; t < w; ++t) {
    if (t < half) {
      wa.threads[t] = {E, 0, true};
    } else {
      wa.threads[t] = {0, E, false};
    }
  }
  return wa;
}

}  // namespace wcm::core
