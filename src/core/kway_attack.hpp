#pragma once
// Extension beyond the paper: the worst-case construction generalized to
// K-way merging (the paper attacks K = 2; its Sec. V invites extensions).
//
// Setting: in a K-way merge round, each warp merges wE elements drawn from
// K sorted runs staged contiguously in shared memory; thread t reads its E
// elements in value order.  Give each run a per-warp total that is a
// multiple of w (so every warp's run segments start at bank 0) and assign
// per-thread counts exactly as in Theorem 3's greedy: a thread whose run
// cursor sits on a column boundary takes a full aligned scan of E; filler
// threads burn the gaps (with K runs a filler may touch several runs — the
// thread's scan order across runs is free because the generator controls
// the values).  E columns spread across the K runs yield the same E^2
// aligned elements as the pairwise case, for every K <= E in the small-E
// regime.
//
// The block balances run totals by rotating the per-warp run roles across
// groups of K warps, which requires (b / w) % K == 0 and K | (wE) totals;
// see build_kway_warp_group.

#include <vector>

#include "core/assignment.hpp"
#include "dmm/machine.hpp"
#include "sort/config.hpp"

namespace wcm::core {

/// One thread's assignment across K runs: counts[k] elements from run k,
/// scanned in `order` (a permutation of the runs it touches first-to-last).
struct KThreadAssign {
  std::vector<u32> counts;
  std::vector<u32> order;
};

/// One warp's K-way assignment.
struct KWarpAssignment {
  u32 w = 0;
  u32 E = 0;
  u32 ways = 0;
  std::vector<KThreadAssign> threads;  // size w

  [[nodiscard]] std::vector<std::size_t> totals() const;  // per run
  void validate() const;
};

struct KWarpEval {
  std::size_t aligned = 0;
  dmm::StepCost totals;
};

/// Replay the warp's E lock-step iterations (run k staged at the cumulative
/// base of runs < k; every total is a multiple of w so bases are bank 0).
/// Window starts at bank `s`.
[[nodiscard]] KWarpEval evaluate_kway_warp(const KWarpAssignment& wa, u32 s);

/// Build the K-way worst-case warp: column quota per run differing by at
/// most one (sum = E), Theorem 3's greedy over K cursors.  Requires the
/// small-E regime (gcd(w, E) = 1, 3 <= E < w/2) and 2 <= ways <= E.
/// Postcondition (self-checked): aligned == E^2.
[[nodiscard]] KWarpAssignment build_kway_warp(u32 w, u32 E, u32 ways);

/// A group of `ways` warps with rotated run roles, so the group's total per
/// run is exactly ways * wE / ways = wE elements ... i.e. balanced: every
/// run receives the same number of elements across the group.
[[nodiscard]] std::vector<KWarpAssignment> build_kway_warp_group(u32 w, u32 E,
                                                                 u32 ways);

/// Worst-case input permutation for the K-way merge sort
/// (sort::multiway_merge_sort with the same cfg and ways).  Requires
/// n = bE * ways^j (j >= 1), (b / w) % ways == 0, and the small-E regime.
/// `tile_shuffle_seed` as in AttackOptions.
[[nodiscard]] std::vector<dmm::word> kway_worst_case_input(
    std::size_t n, const sort::SortConfig& cfg, u32 ways,
    u64 tile_shuffle_seed = 0);

}  // namespace wcm::core
