#pragma once
// Dispatcher over the paper's construction regimes, plus the baseline
// assignments used for comparison figures.

#include "core/assignment.hpp"
#include "core/numbers.hpp"
#include "core/small_e.hpp"

namespace wcm::core {

/// Which half of the thread block a warp belongs to (Sec. III "General
/// Strategy"): L warps get (E+1)/2 columns of A and (E-1)/2 of B; R warps
/// the symmetric assignment, so block totals are bE/2 from each list.
enum class WarpSide { L, R };

/// The worst-case warp assignment for any co-prime E < w (E >= 3):
/// Theorem 3 for E < w/2, Theorem 9 for E > w/2.  Self-checked against the
/// closed forms.  `strategy` selects among the Lemma 2 alignment strategies
/// in the small-E regime (all align E^2; large E has one construction and
/// ignores it).
[[nodiscard]] WarpAssignment worst_case_warp(
    u32 w, u32 E, WarpSide side = WarpSide::L,
    AlignmentStrategy strategy = AlignmentStrategy::front_to_back);

/// Start bank s of the alignment window the construction targets (0 for
/// small E front-to-back / outside-in, w - E for small E back-to-front and
/// for large E).
[[nodiscard]] u32 alignment_window_start(
    u32 w, u32 E, AlignmentStrategy strategy = AlignmentStrategy::front_to_back);

/// Baseline: the assignment realized by already-sorted data (all of A
/// before all of B), the pattern of Figure 1.
[[nodiscard]] WarpAssignment sorted_order_warp(u32 w, u32 E);

}  // namespace wcm::core
