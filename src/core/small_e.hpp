#pragma once
// Theorem 3: for gcd(w, E) = 1 and E < w/2, a warp assignment aligning all
// E^2 possible elements (E full columns, one per aligned thread) to the
// first E memory banks (s = 0).

#include "core/assignment.hpp"

namespace wcm::core {

/// Build the L-warp assignment of Theorem 3 (A gets (E+1)/2 columns, B gets
/// (E-1)/2).  Postcondition (self-checked): evaluate_warp(result, 0)
/// .aligned == E^2.  R warps use result.mirrored().
[[nodiscard]] WarpAssignment build_small_e(u32 w, u32 E);

/// The three alignment strategies named in the proof of Lemma 2.  All
/// achieve the full E^2 aligned elements but produce *different* warp
/// assignments (and hence different members of the worst-case permutation
/// family, paper Sec. V item 2):
///   front_to_back — columns claimed walking the threads forward (the
///                   default construction above; window starts at bank 0),
///   back_to_front — the mirror walk from the last thread backward
///                   (window starts at bank w - E),
///   outside_in    — columns claimed alternately from both ends (window
///                   starts at bank 0).
enum class AlignmentStrategy { front_to_back, back_to_front, outside_in };

[[nodiscard]] const char* to_string(AlignmentStrategy s) noexcept;

/// A constructed warp plus the bank where its alignment window starts.
struct SmallEConstruction {
  WarpAssignment warp;
  u32 window_start = 0;
};

/// Build Theorem 3's assignment with the chosen alignment strategy.
/// Postcondition (self-checked): evaluate_warp(warp, window_start).aligned
/// == E^2 for every strategy.
[[nodiscard]] SmallEConstruction build_small_e_variant(u32 w, u32 E,
                                                       AlignmentStrategy s);

}  // namespace wcm::core
