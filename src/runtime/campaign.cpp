#include "runtime/campaign.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include <optional>

#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"
#include "runtime/journal.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stopwatch.hpp"
#include "sort/bitonic.hpp"
#include "sort/multiway.hpp"
#include "sort/radix.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace wcm::runtime {

namespace {

/// Hard cap on expanded cells: a typo'd spec must not OOM the host.
constexpr std::size_t kMaxCells = 1u << 20;
constexpr u32 kMaxK = 40;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

template <typename T>
T choice(const std::string& field, const std::string& value,
         const std::vector<std::pair<std::string, T>>& choices) {
  std::string names;
  for (const auto& [name, v] : choices) {
    if (value == name) {
      return v;
    }
    names += names.empty() ? name : ", " + name;
  }
  throw parse_error("unknown value '" + value + "' for campaign field '" +
                    field + "' (valid: " + names + ")");
}

Engine engine_from(const std::string& s) {
  return choice<Engine>("engine", s,
                        {{"pairwise", Engine::pairwise},
                         {"multiway", Engine::multiway},
                         {"bitonic", Engine::bitonic},
                         {"radix", Engine::radix}});
}

sort::MergeSortLibrary library_from(const std::string& s) {
  return choice<sort::MergeSortLibrary>(
      "library", s,
      {{"thrust", sort::MergeSortLibrary::thrust},
       {"mgpu", sort::MergeSortLibrary::mgpu}});
}

workload::InputKind input_from(const std::string& s) {
  return choice<workload::InputKind>(
      "input", s,
      {{"random", workload::InputKind::random},
       {"sorted", workload::InputKind::sorted},
       {"reversed", workload::InputKind::reversed},
       {"nearly-sorted", workload::InputKind::nearly_sorted},
       {"worst-case", workload::InputKind::worst_case}});
}

gpusim::Device device_from(const std::string& s) {
  return choice<gpusim::Device>("device", s,
                                {{"m4000", gpusim::quadro_m4000()},
                                 {"quadro", gpusim::quadro_m4000()},
                                 {"2080ti", gpusim::rtx_2080ti()},
                                 {"rtx2080ti", gpusim::rtx_2080ti()},
                                 {"gtx770", gpusim::gtx_770()}});
}

/// A grid field that is either one number or an array of numbers.
std::vector<u32> u32_list(const json::Value& v, const std::string& field,
                          u32 max) {
  std::vector<u32> out;
  if (v.is_array()) {
    for (const auto& item : v.as_array()) {
      out.push_back(static_cast<u32>(item.as_u64(max)));
    }
  } else {
    out.push_back(static_cast<u32>(v.as_u64(max)));
  }
  if (out.empty()) {
    throw parse_error("campaign field '" + field + "' must not be empty");
  }
  return out;
}

std::vector<workload::InputKind> input_list(const json::Value& v) {
  std::vector<workload::InputKind> out;
  if (v.is_array()) {
    for (const auto& item : v.as_array()) {
      out.push_back(input_from(item.as_string()));
    }
  } else {
    out.push_back(input_from(v.as_string()));
  }
  if (out.empty()) {
    throw parse_error("campaign field 'input' must not be empty");
  }
  return out;
}

void reject_unknown_keys(const json::Object& obj,
                         const std::vector<std::string>& allowed,
                         const char* where) {
  for (const auto& [key, value] : obj) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string names;
      for (const auto& a : allowed) {
        names += names.empty() ? a : ", " + a;
      }
      throw parse_error("unknown key \"" + key + "\" in " + where +
                        " (valid: " + names + ")");
    }
  }
}

GridEntry entry_from(const json::Value& v) {
  const auto& obj = v.as_object();
  reject_unknown_keys(obj,
                      {"engine", "library", "E", "b", "w", "padding", "input",
                       "k", "ways", "digit_bits"},
                      "grid entry");
  GridEntry e;
  if (auto it = obj.find("engine"); it != obj.end()) {
    e.engine = engine_from(it->second.as_string());
  }
  if (auto it = obj.find("library"); it != obj.end()) {
    e.library = library_from(it->second.as_string());
  }
  if (auto it = obj.find("E"); it != obj.end()) {
    e.E = u32_list(it->second, "E", 1u << 10);
  }
  if (auto it = obj.find("b"); it != obj.end()) {
    e.b = u32_list(it->second, "b", 1u << 16);
  }
  if (auto it = obj.find("w"); it != obj.end()) {
    e.w = static_cast<u32>(it->second.as_u64(1u << 8));
  }
  if (auto it = obj.find("padding"); it != obj.end()) {
    e.padding = u32_list(it->second, "padding", 1u << 8);
  }
  if (auto it = obj.find("input"); it != obj.end()) {
    e.inputs = input_list(it->second);
  }
  if (auto it = obj.find("k"); it != obj.end()) {
    e.k = u32_list(it->second, "k", kMaxK);
  }
  if (auto it = obj.find("ways"); it != obj.end()) {
    e.ways = static_cast<u32>(it->second.as_u64(64));
  }
  if (auto it = obj.find("digit_bits"); it != obj.end()) {
    e.digit_bits = static_cast<u32>(it->second.as_u64(16));
  }
  return e;
}

/// The configuration the cell's engine actually launches: bitonic always
/// runs with E = 2 on a power-of-two prefix (same transformation as
/// `wcmgen sort --algorithm bitonic`).
sort::SortConfig effective_config(const CampaignCell& cell) {
  sort::SortConfig cfg = cell.config;
  if (cell.engine == Engine::bitonic) {
    cfg.E = 2;
  }
  return cfg;
}

CellMetrics metrics_of(const sort::SortReport& report) {
  CellMetrics m;
  m.n = report.n;
  m.seconds = report.seconds();
  m.throughput = report.throughput();
  m.conflicts_per_element = report.conflicts_per_element();
  m.beta1 = report.beta1();
  m.beta2 = report.beta2();
  return m;
}

/// Compute one cell.  `recorder` non-null = capture the cell's
/// shared-memory trace for wcm-lint.
CellMetrics compute_cell(const CampaignCell& cell, const gpusim::Device& dev,
                         gpusim::TraceRecorder* recorder) {
  // Inputs are generated trace-free: the recorded WCMT must contain only
  // the sort's own access stream, not the adversarial generator's.
  const auto input =
      workload::make_input(cell.input, cell.n, cell.config, cell.seed);
  sort::SortConfig cfg = cell.config;
  cfg.trace_sink = recorder;
  sort::SortReport report;
  switch (cell.engine) {
    case Engine::pairwise:
      report = sort::pairwise_merge_sort(input, cfg, dev, cell.library);
      break;
    case Engine::multiway:
      report = sort::multiway_merge_sort(input, cfg, dev, cell.ways);
      break;
    case Engine::radix:
      report = sort::radix_sort(input, cfg, dev, cell.digit_bits);
      break;
    case Engine::bitonic: {
      sort::SortConfig bcfg = effective_config(cell);
      bcfg.trace_sink = recorder;
      std::size_t n2 = 1;
      while (n2 * 2 <= cell.n) {
        n2 *= 2;
      }
      report = sort::bitonic_sort(
          std::vector<dmm::word>(
              input.begin(),
              input.begin() + static_cast<std::ptrdiff_t>(n2)),
          bcfg, dev);
      break;
    }
  }
  return metrics_of(report);
}

/// Base label shared by every size of one curve (everything but input/k).
std::string base_label(const CampaignCell& cell) {
  std::ostringstream os;
  os << to_string(cell.engine);
  if (cell.engine == Engine::pairwise) {
    os << '/'
       << (cell.library == sort::MergeSortLibrary::thrust ? "thrust" : "mgpu");
  }
  os << " E=" << cell.config.E << " b=" << cell.config.b
     << " w=" << cell.config.w << " pad=" << cell.config.padding;
  if (cell.engine == Engine::multiway) {
    os << " ways=" << cell.ways;
  }
  if (cell.engine == Engine::radix) {
    os << " bits=" << cell.digit_bits;
  }
  return os.str();
}

struct CellRun {
  CampaignCell cell;
  u64 key = 0;
  CellMetrics metrics;
  bool cached = false;
  bool replayed = false;  ///< restored from the journal
  bool have = false;      ///< metrics are valid (cached/replayed/computed)
};

void write_aggregate_json(std::ostream& os, const CampaignSpec& spec,
                          const std::vector<CellRun>& runs,
                          const std::vector<QuarantinedCell>& quarantined) {
  os << "{\"campaign\":\"" << escape(spec.name) << "\""
     << ",\"device\":\"" << escape(spec.device.name) << "\""
     << ",\"seed\":" << spec.seed << ",\"cells\":[";
  bool first_cell = true;
  for (const auto& r : runs) {
    if (!r.have) {
      continue;  // quarantined: reported in the quarantined section instead
    }
    if (!first_cell) {
      os << ',';
    }
    first_cell = false;
    os << "{\"engine\":\"" << to_string(r.cell.engine) << "\""
       << ",\"library\":\""
       << (r.cell.library == sort::MergeSortLibrary::thrust ? "thrust"
                                                            : "mgpu")
       << "\"" << ",\"E\":" << r.cell.config.E << ",\"b\":" << r.cell.config.b
       << ",\"w\":" << r.cell.config.w
       << ",\"padding\":" << r.cell.config.padding << ",\"input\":\""
       << workload::to_string(r.cell.input) << "\"" << ",\"k\":" << r.cell.k
       << ",\"ways\":" << r.cell.ways
       << ",\"digit_bits\":" << r.cell.digit_bits << ",\"seed\":" << r.cell.seed
       << ",\"n\":" << r.metrics.n << ",\"seconds\":" << r.metrics.seconds
       << ",\"throughput\":" << r.metrics.throughput
       << ",\"conflicts_per_element\":" << r.metrics.conflicts_per_element
       << ",\"beta1\":" << r.metrics.beta1
       << ",\"beta2\":" << r.metrics.beta2 << "}";
  }
  os << "]";

  // Series: one curve per (base label, input), points in expansion order.
  // std::map keys make the section order deterministic and spec-shuffle
  // resistant.
  std::map<std::string, std::map<std::string, std::vector<analysis::SeriesPoint>>>
      curves;
  for (const auto& r : runs) {
    if (!r.have) {
      continue;
    }
    analysis::SeriesPoint p;
    p.n = static_cast<std::size_t>(r.metrics.n);
    p.throughput = r.metrics.throughput;
    p.seconds = r.metrics.seconds;
    p.conflicts_per_elem = r.metrics.conflicts_per_element;
    p.beta2 = r.metrics.beta2;
    curves[base_label(r.cell)][workload::to_string(r.cell.input)].push_back(p);
  }
  os << ",\"series\":[";
  bool first = true;
  for (const auto& [base, by_input] : curves) {
    for (const auto& [input, points] : by_input) {
      if (!first) {
        os << ',';
      }
      first = false;
      os << "{\"label\":\"" << escape(base + " " + input)
         << "\",\"points\":[";
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (i) {
          os << ',';
        }
        os << "{\"n\":" << points[i].n
           << ",\"throughput\":" << points[i].throughput
           << ",\"seconds\":" << points[i].seconds
           << ",\"conflicts_per_element\":" << points[i].conflicts_per_elem
           << ",\"beta2\":" << points[i].beta2 << "}";
      }
      os << "]}";
    }
  }
  os << "]";

  // Slowdown stats (the paper's headline metric) wherever one curve has
  // both a random baseline and a worst-case attack at identical sizes.
  os << ",\"slowdowns\":[";
  first = true;
  for (const auto& [base, by_input] : curves) {
    const auto rand_it = by_input.find("random");
    const auto worst_it = by_input.find("worst-case");
    if (rand_it == by_input.end() || worst_it == by_input.end()) {
      continue;
    }
    const auto& baseline = rand_it->second;
    const auto& degraded = worst_it->second;
    if (baseline.size() != degraded.size()) {
      continue;
    }
    bool sizes_match = true;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      sizes_match = sizes_match && baseline[i].n == degraded[i].n;
    }
    if (!sizes_match) {
      continue;
    }
    const auto stats = analysis::compare_series(baseline, degraded);
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"label\":\"" << escape(base)
       << "\",\"peak_percent\":" << stats.peak_percent
       << ",\"peak_n\":" << stats.peak_n
       << ",\"average_percent\":" << stats.average_percent << "}";
  }
  os << "]";

  // Quarantined cells, in expansion order.  Always present (empty on a
  // clean run) so a resumed clean run stays byte-identical to an
  // uninterrupted one.
  os << ",\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    const auto& q = quarantined[i];
    if (i) {
      os << ',';
    }
    os << "{\"index\":" << q.index << ",\"label\":\"" << escape(q.label)
       << "\",\"code\":\"" << wcm::to_string(q.code) << "\""
       << ",\"message\":\"" << escape(q.message)
       << "\",\"attempts\":" << q.attempts << "}";
  }
  os << "]}";
}

}  // namespace

const char* to_string(Engine engine) noexcept {
  switch (engine) {
    case Engine::pairwise:
      return "pairwise";
    case Engine::multiway:
      return "multiway";
    case Engine::bitonic:
      return "bitonic";
    case Engine::radix:
      return "radix";
  }
  return "?";
}

CampaignSpec parse_campaign_spec(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  const auto& obj = doc.as_object();
  reject_unknown_keys(
      obj, {"name", "device", "seed", "threads", "trace_dir", "grid"},
      "campaign spec");
  CampaignSpec spec;
  if (auto it = obj.find("name"); it != obj.end()) {
    spec.name = it->second.as_string();
  }
  if (auto it = obj.find("device"); it != obj.end()) {
    spec.device_name = it->second.as_string();
  }
  spec.device = device_from(spec.device_name);
  if (auto it = obj.find("seed"); it != obj.end()) {
    spec.seed = it->second.as_u64();
  }
  if (auto it = obj.find("threads"); it != obj.end()) {
    spec.threads = static_cast<u32>(it->second.as_u64(4096));
  }
  if (auto it = obj.find("trace_dir"); it != obj.end()) {
    spec.trace_dir = it->second.as_string();
  }
  const auto grid_it = obj.find("grid");
  if (grid_it == obj.end() || !grid_it->second.is_array() ||
      grid_it->second.as_array().empty()) {
    throw parse_error(
        "campaign spec needs a non-empty \"grid\" array of entries");
  }
  for (const auto& entry : grid_it->second.as_array()) {
    spec.grid.push_back(entry_from(entry));
  }
  return spec;
}

CampaignSpec load_campaign_spec(const std::filesystem::path& path) {
  std::ifstream is(path);
  WCM_CHECK_IO(is.is_open(), "cannot open campaign spec: " + path.string());
  std::ostringstream buf;
  buf << is.rdbuf();
  WCM_CHECK_IO(static_cast<bool>(is), "cannot read campaign spec: " +
                                          path.string());
  try {
    CampaignSpec spec = parse_campaign_spec(buf.str());
    spec.source_path = path;
    return spec;
  } catch (const parse_error& e) {
    // A spec that does not parse is a bad input *file* (exit 3), exactly
    // like a corrupt WCMI/WCMT; semantic config errors keep their class.
    throw io_error(std::string("invalid campaign spec: ") + e.what(),
                   path.string());
  }
}

std::vector<CampaignCell> expand(const CampaignSpec& spec) {
  WCM_SPAN("campaign.expand");
  std::vector<CampaignCell> cells;
  for (const auto& entry : spec.grid) {
    for (const u32 e : entry.E) {
      for (const u32 b : entry.b) {
        for (const u32 pad : entry.padding) {
          for (const auto input : entry.inputs) {
            for (const u32 k : entry.k) {
              WCM_CHECK_CONFIG(cells.size() < kMaxCells,
                               "campaign expands to more than " +
                                   std::to_string(kMaxCells) + " cells");
              CampaignCell cell;
              cell.engine = entry.engine;
              cell.library = entry.library;
              cell.config.E = e;
              cell.config.b = b;
              cell.config.w = entry.w;
              cell.config.padding = pad;
              cell.input = input;
              cell.k = k;
              cell.ways = entry.engine == Engine::multiway ? entry.ways : 0;
              cell.digit_bits =
                  entry.engine == Engine::radix ? entry.digit_bits : 0;
              cell.config.validate();
              const auto launch = effective_config(cell);
              launch.validate();
              const auto occ = gpusim::occupancy(spec.device, launch.b,
                                                 launch.shared_bytes());
              WCM_CHECK_CONFIG(
                  occ.resident_blocks > 0,
                  "grid cell does not fit on " + spec.device.name + ": E=" +
                      std::to_string(launch.E) + " b=" + std::to_string(b) +
                      " pad=" + std::to_string(pad));
              cell.n = cell.config.tile() << k;

              std::ostringstream canon;
              canon << "wcmc1|device=" << spec.device.name
                    << "|engine=" << to_string(cell.engine) << "|lib="
                    << (cell.library == sort::MergeSortLibrary::thrust
                            ? "thrust"
                            : "mgpu")
                    << "|E=" << e << "|b=" << b << "|w=" << entry.w
                    << "|pad=" << pad << "|refills=0"
                    << "|input=" << workload::to_string(input) << "|k=" << k
                    << "|n=" << cell.n << "|ways=" << cell.ways
                    << "|bits=" << cell.digit_bits;
              const std::string base = canon.str();
              cell.seed = fork_seed(
                  spec.seed, fnv1a(fnv_offset_basis, base.data(),
                                   base.size()));
              cell.canonical = base + "|seed=" + std::to_string(cell.seed);

              std::ostringstream label;
              label << base_label(cell) << " "
                    << workload::to_string(input) << " k=" << k;
              cell.label = label.str();
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  return cells;
}

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options) {
  WCM_SPAN("campaign.run");
  const telemetry::Stopwatch wall;
  const auto cells = expand(spec);

  CampaignOutcome outcome;
  outcome.cells = cells.size();

  // Resolve the cache file: explicit option, else next to the spec.
  std::filesystem::path cache_path = options.cache_path;
  if (cache_path.empty() && !spec.source_path.empty()) {
    cache_path = spec.source_path;
    cache_path += ".wcmc";
  }
  const bool caching = options.use_cache && !cache_path.empty();
  const u64 salt = code_version_salt();
  ResultCache cache = caching ? ResultCache::load(cache_path, salt)
                              : ResultCache(salt);

  const std::string trace_dir =
      options.trace_dir.empty() ? spec.trace_dir : options.trace_dir;
  if (!trace_dir.empty()) {
    std::filesystem::create_directories(trace_dir);
  }

  // Journal replay (resume): cells already sealed in the journal are not
  // recomputed.  Traces disable journaling — a replayed cell cannot
  // reproduce its trace side effect.
  const bool journaling = !options.journal_path.empty() && trace_dir.empty();
  const u64 fingerprint = campaign_fingerprint(cells);
  JournalReplay replay;
  if (journaling && options.resume) {
    replay = replay_journal(options.journal_path, salt, fingerprint);
  }
  std::map<u64, CellMetrics> journaled;
  if (replay.compatible) {
    for (const auto& rec : replay.records) {
      journaled[rec.key] = rec.metrics;
    }
  }

  // Cell resolution is serial and deterministic: journal first, then
  // cache; only the remainder becomes jobs.
  std::vector<CellRun> runs(cells.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    runs[i].cell = cells[i];
    runs[i].key = cache.key_of(cells[i].canonical);
    if (const auto it = journaled.find(runs[i].key); it != journaled.end()) {
      runs[i].metrics = it->second;
      runs[i].replayed = true;
      runs[i].have = true;
      cache.insert(runs[i].key, it->second);  // replay feeds the cache too
      continue;
    }
    // A cache hit still recomputes when traces were requested: the trace
    // is a side effect the cache does not store.
    const auto hit = trace_dir.empty() ? cache.lookup(runs[i].key)
                                       : std::nullopt;
    if (hit.has_value()) {
      runs[i].metrics = *hit;
      runs[i].cached = true;
      runs[i].have = true;
    } else {
      misses.push_back(i);
    }
  }
  for (const auto& r : runs) {
    outcome.cache_hits += r.cached ? 1 : 0;
    outcome.replayed += r.replayed ? 1 : 0;
  }

  // Open the journal for append and seal every already-known cell up
  // front, so a crash from here on resumes with all of them.
  std::optional<JournalWriter> journal;
  if (journaling) {
    journal.emplace(options.journal_path, salt, fingerprint, replay);
    for (const auto& r : runs) {
      if (r.cached) {
        journal->append(r.key, r.metrics);
      }
    }
  }

  // Device-aware worker sizing from the heaviest cell's launch shape.
  u32 requested = options.threads != 0 ? options.threads : spec.threads;
  if (requested == 0) {
    requested = threads_from_env(0);
  }
  sort::SortConfig heavy;
  std::size_t heavy_bytes = 0;
  for (const auto& cell : cells) {
    const auto launch = effective_config(cell);
    if (launch.shared_bytes() >= heavy_bytes) {
      heavy_bytes = launch.shared_bytes();
      heavy = launch;
    }
  }
  u32 threads = recommended_workers(requested, spec.device, heavy.b,
                                    heavy.shared_bytes());
  if (!misses.empty()) {
    threads = std::min<u32>(threads, static_cast<u32>(misses.size()));
  }
  threads = std::max(1u, threads);
  outcome.threads = threads;

  // Interrupt handling: an external cancel (wcmgen's signal handler) or
  // the "runtime.campaign.interrupt" failpoint drains the run — in-flight
  // cells finish and are journaled; queued cells are skipped.
  CancelSource local_cancel;
  CancelSource* cancel =
      options.cancel != nullptr ? options.cancel : &local_cancel;

  std::mutex mu;  // guards cache/journal writes and progress lines
  std::size_t finished = outcome.cache_hits + outcome.replayed;
  if (options.progress != nullptr) {
    const std::lock_guard<std::mutex> lock(mu);
    for (const auto& r : runs) {
      if (r.cached || r.replayed) {
        *options.progress << "[" << (r.replayed ? "replayed" : "cached")
                          << "] " << r.cell.label << "\n";
      }
    }
  }

  JobGraph graph;
  // A campaign submitted through wcmd runs under that request's trace
  // context; hand it to every cell so the per-cell spans stay in the
  // request's causal tree across the second thread hop.
  const telemetry::TraceContext campaign_trace =
      telemetry::current_trace_context();
  for (const std::size_t idx : misses) {
    graph.add(
        [&, idx](JobContext&) {
          WCM_SPAN("campaign.cell");
          gpusim::TraceRecorder recorder;
          gpusim::TraceRecorder* sink =
              trace_dir.empty() ? nullptr : &recorder;
          const CellMetrics metrics =
              compute_cell(runs[idx].cell, spec.device, sink);
          if (sink != nullptr) {
            std::ostringstream name;
            name << "cell_";
            const std::string digits = std::to_string(idx);
            for (std::size_t pad = digits.size(); pad < 4; ++pad) {
              name << '0';
            }
            name << digits << ".wcmt";
            const auto path = std::filesystem::path(trace_dir) / name.str();
            std::ofstream os(path);
            WCM_CHECK_IO(os.is_open(), "cannot open trace output: " +
                                           path.string());
            gpusim::write_trace(os, recorder.trace());
            WCM_CHECK_IO(static_cast<bool>(os), "trace write failed: " +
                                                    path.string());
          }
          {
            const std::lock_guard<std::mutex> lock(mu);
            cache.insert(runs[idx].key, metrics);
            // A journal-append failure fails the cell (retry recomputes
            // it); `have` stays false until the record is sealed.
            if (journal.has_value()) {
              journal->append(runs[idx].key, metrics);
            }
            runs[idx].metrics = metrics;
            runs[idx].have = true;
            ++finished;
            if (options.progress != nullptr) {
              *options.progress << "[" << finished << "/" << runs.size()
                                << "] " << runs[idx].cell.label << ": "
                                << metrics.seconds << " s modeled\n";
            }
          }
          if (failpoint::should_fail("runtime.campaign.interrupt")) {
            cancel->cancel();  // chaos: drain as if a signal arrived
          }
        },
        JobOptions{{}, {}, runs[idx].cell.label, campaign_trace});
  }

  RunOptions run_opts;
  run_opts.threads = threads;
  run_opts.fail_fast = options.fail_fast;
  run_opts.quarantine = !options.fail_fast;
  run_opts.retry = options.retry;
  if (run_opts.retry.seed == 0) {
    run_opts.retry.seed = spec.seed;
  }
  run_opts.cancel = cancel;
  const RunReport report = run(graph, run_opts);

  // Persist whatever was computed before surfacing any failure: a partial
  // cache makes the retry cheaper.
  if (caching && !misses.empty()) {
    cache.store(cache_path);
  }
  if (options.fail_fast) {
    report.rethrow_first_error();
  }

  for (std::size_t j = 0; j < misses.size(); ++j) {
    const JobOutcome& o = report.outcomes[j];
    switch (o.state) {
      case JobState::done:
        ++outcome.computed;
        break;
      case JobState::failed:
      case JobState::quarantined:
      case JobState::skipped_quarantined:
        outcome.quarantined.push_back(
            {misses[j], runs[misses[j]].cell.label, o.code, o.message,
             o.attempts});
        break;
      case JobState::skipped_cancelled:
      case JobState::skipped_dep_failed:
        ++outcome.cancelled;
        break;
    }
  }

  if (outcome.interrupted()) {
    // Drained: no aggregate — the journal holds the resumable prefix.
    outcome.wall_seconds = wall.elapsed_seconds();
    return outcome;
  }

  {
    WCM_SPAN("campaign.aggregate");
    std::ostringstream json;
    write_aggregate_json(json, spec, runs, outcome.quarantined);
    outcome.json = json.str();
  }
  outcome.wall_seconds = wall.elapsed_seconds();
  return outcome;
}

std::vector<std::vector<analysis::SeriesPoint>> run_sweeps(
    const std::vector<analysis::SweepSpec>& specs, u32 threads) {
  WCM_SPAN("campaign.sweeps");
  if (specs.empty()) {
    return {};
  }
  struct CellRef {
    std::size_t spec_index;
    u32 k;
  };
  std::vector<CellRef> cells;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    WCM_EXPECTS(specs[s].min_k >= 1 && specs[s].min_k <= specs[s].max_k,
                "sweep k range out of order");
    for (u32 k = specs[s].min_k; k <= specs[s].max_k; ++k) {
      cells.push_back({s, k});
    }
  }

  u32 requested = threads != 0 ? threads : threads_from_env(0);
  const auto& first = specs.front();
  const u32 workers = std::min<u32>(
      std::max(1u, recommended_workers(requested, first.device,
                                       first.config.b,
                                       first.config.shared_bytes())),
      static_cast<u32>(cells.size()));

  const auto points = parallel_map(
      cells.size(), workers, [&](std::size_t i) {
        const auto& spec = specs[cells[i].spec_index];
        const u32 k = cells[i].k;
        // Same sizes and seeds as the serial analysis::run_sweep, so the
        // ported benches print identical numbers.
        const std::size_t n = spec.config.tile() << k;
        const auto input =
            workload::make_input(spec.input, n, spec.config, spec.seed + k);
        const auto report = sort::pairwise_merge_sort(input, spec.config,
                                                      spec.device,
                                                      spec.library);
        analysis::SeriesPoint p;
        p.n = n;
        p.throughput = report.throughput();
        p.seconds = report.seconds();
        p.conflicts_per_elem = report.conflicts_per_element();
        p.beta2 = report.beta2();
        return p;
      });

  std::vector<std::vector<analysis::SeriesPoint>> series(specs.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    series[cells[i].spec_index].push_back(points[i]);
  }
  return series;
}

}  // namespace wcm::runtime
