#pragma once
// Fixed-size std::thread worker pool: the execution substrate of the
// campaign runtime (runtime/scheduler.hpp).  Tasks are type-erased
// closures; submission is thread-safe; the destructor drains the queue and
// joins every worker, so a pool never outlives work it accepted.
//
// Tasks must not throw — the scheduler wraps every job in its own
// try/catch and records the outcome, so an exception escaping a pool task
// is a programming error (std::terminate, same as an exception escaping a
// thread).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "gpusim/occupancy.hpp"
#include "util/math.hpp"

namespace wcm::runtime {

class ThreadPool {
 public:
  /// Spawn exactly `threads` workers (>= 1, contract-checked).
  explicit ThreadPool(u32 threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task; runs on some worker, in FIFO dequeue order.
  void submit(std::function<void()> task);

  [[nodiscard]] u32 thread_count() const noexcept {
    return static_cast<u32>(workers_.size());
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Worker count for a campaign whose heaviest cell launches
/// `threads_per_block` threads with `shared_bytes_per_block` of shared
/// memory on the modeled device `dev`.
///
/// `requested` > 0 is honored verbatim (the operator knows best).  With
/// `requested` == 0, the count is sized device-aware: the simulation of one
/// sort executes its resident blocks sequentially on the host, so the
/// modeled device's own concurrency — occupancy().resident_blocks x
/// sm_count, the number of blocks the real card would run at once — is the
/// natural ceiling on how many cells are worth simulating concurrently;
/// host hardware concurrency caps it from below.  Launches that do not fit
/// the device (Occupancy::Limiter::block_too_large) get 1 worker; the cell
/// itself will fail validation with the real error.
[[nodiscard]] u32 recommended_workers(u32 requested, const gpusim::Device& dev,
                                      u32 threads_per_block,
                                      std::size_t shared_bytes_per_block);

/// Strictly-parsed WCM_THREADS environment override; `fallback` when the
/// variable is unset or empty.  Throws wcm::parse_error on garbage.
[[nodiscard]] u32 threads_from_env(u32 fallback = 0);

}  // namespace wcm::runtime
