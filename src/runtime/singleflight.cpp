#include "runtime/singleflight.hpp"

#include <utility>

namespace wcm::runtime {

bool SingleFlight::lead_or_join(u64 key, Callback cb) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, led] = flights_.try_emplace(key);
  it->second.push_back(std::move(cb));
  return led;
}

void SingleFlight::complete(u64 key, const FlightResult& result) {
  std::vector<Callback> callbacks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) {
      return;
    }
    callbacks = std::move(it->second);
    flights_.erase(it);
  }
  // Outside the lock: a callback may start (and even complete) a fresh
  // flight for the same key.
  for (const Callback& cb : callbacks) {
    cb(result);
  }
}

std::size_t SingleFlight::inflight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace wcm::runtime
