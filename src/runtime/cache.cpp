#include "runtime/cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {

namespace {

constexpr char kMagic[4] = {'W', 'C', 'M', 'C'};

/// Bump whenever the meaning of cached metrics changes (new cost model,
/// new aggregation): every existing cache entry must miss afterwards.
constexpr const char* kResultFormat = "wcmc-metrics-1";

template <typename T>
void write_pod(std::ostream& os, u64& h, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  h = fnv1a(h, &v, sizeof(v));
}

template <typename T>
T read_pod(std::istream& is, u64& h, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WCM_CHECK_IO(static_cast<bool>(is), std::string("truncated WCMC file (") +
                                          what + ")");
  h = fnv1a(h, &v, sizeof(v));
  return v;
}

}  // namespace

u64 code_version_salt() {
  u64 h = fnv1a(fnv_offset_basis, std::string_view(kResultFormat));
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  if (const char* env = std::getenv("WCM_CACHE_SALT");
      env != nullptr && *env != '\0') {
    h = fnv1a(h, std::string_view(env));
  }
  return h;
}

u64 cache_max_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* env = std::getenv("WCM_CACHE_MAX");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  u64 value = 0;
  const char* end = env + std::strlen(env);
  const auto [ptr, err] = std::from_chars(env, end, value);
  WCM_CHECK_CONFIG(err == std::errc() && ptr == end,
                   std::string("invalid WCM_CACHE_MAX value '") + env +
                       "' (expected an unsigned integer; 0 = unbounded)");
  return value;
}

ResultCache::ResultCache() : ResultCache(code_version_salt()) {}

ResultCache::ResultCache(u64 salt)
    : salt_(salt), max_entries_(cache_max_from_env()) {}

u64 ResultCache::key_of(const std::string& canonical_config) const noexcept {
  u64 h = fnv1a(fnv_offset_basis, &salt_, sizeof(salt_));
  return fnv1a(h, canonical_config.data(), canonical_config.size());
}

void ResultCache::evict_over_cap() {
  if (max_entries_ == 0) {
    return;
  }
  while (entries_.size() > max_entries_ && !lru_.empty()) {
    entries_.erase(lru_.pop_coldest());
    if (telemetry::enabled()) {
      telemetry::registry().counter("runtime.cache.evict").add(1);
    }
  }
}

std::optional<CellMetrics> ResultCache::lookup(u64 key) const {
  const auto it = entries_.find(key);
  if (telemetry::enabled()) {
    // Register both counters up front so a snapshot always carries a hit
    // AND a miss row (even at zero) — CI greps rely on both lines.
    telemetry::Registry& reg = telemetry::registry();
    telemetry::Counter& hits = reg.counter("runtime.cache.hit");
    telemetry::Counter& misses = reg.counter("runtime.cache.miss");
    (it == entries_.end() ? misses : hits).add(1);
  }
  if (it == entries_.end()) {
    return std::nullopt;
  }
  lru_.touch(key);
  return it->second;
}

void ResultCache::insert(u64 key, const CellMetrics& metrics) {
  const auto [it, admitted] = entries_.insert_or_assign(key, metrics);
  if (!admitted) {
    lru_.touch(key);  // overwrite of a live entry refreshes it
    return;
  }
  lru_.insert(key);
  if (telemetry::enabled()) {
    telemetry::registry().counter("runtime.cache.admit").add(1);
  }
  evict_over_cap();
}

ResultCache ResultCache::load(const std::filesystem::path& path, u64 salt) {
  WCM_SPAN("cache.load");
  ResultCache cache(salt);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return cache;  // cold start
  }
  std::ifstream is(path, std::ios::binary);
  WCM_FAILPOINT("runtime.cache.load", io_error,
                "injected cache read failure");
  // Any WCM_CHECK_IO below this point is a corrupt-file rejection; count
  // them so operators can spot a rotting cache without scraping logs.
  struct CorruptCounter {
    bool disarm = false;
    ~CorruptCounter() {
      if (!disarm && telemetry::enabled()) {
        telemetry::registry().counter("runtime.cache.corrupt").add(1);
      }
    }
  } corrupt_counter;
  WCM_CHECK_IO(is.is_open(), "cannot open cache file: " + path.string());

  u64 h = fnv_offset_basis;
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  WCM_CHECK_IO(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
               "not a WCMC file: " + path.string());
  h = fnv1a(h, magic, sizeof(magic));

  const auto version = read_pod<std::uint32_t>(is, h, "version");
  WCM_CHECK_IO(version == wcmc_version,
               "unsupported WCMC version " + std::to_string(version) + ": " +
                   path.string());
  const u64 file_salt = read_pod<u64>(is, h, "salt");
  const u64 count = read_pod<u64>(is, h, "count");
  WCM_CHECK_IO(count <= max_wcmc_records,
               "WCMC record count " + std::to_string(count) +
                   " exceeds the format cap (corrupt header?): " +
                   path.string());

  std::map<u64, CellMetrics> entries;
  for (u64 i = 0; i < count; ++i) {
    const u64 key = read_pod<u64>(is, h, "record key");
    CellMetrics m;
    m.n = read_pod<u64>(is, h, "record n");
    m.seconds = read_pod<double>(is, h, "record seconds");
    m.throughput = read_pod<double>(is, h, "record throughput");
    m.conflicts_per_element = read_pod<double>(is, h, "record conflicts");
    m.beta1 = read_pod<double>(is, h, "record beta1");
    m.beta2 = read_pod<double>(is, h, "record beta2");
    entries[key] = m;
  }

  const u64 expected = h;  // checksum covers everything before itself
  u64 ignored = fnv_offset_basis;
  const u64 stored = read_pod<u64>(is, ignored, "checksum");
  WCM_CHECK_IO(stored == expected,
               "WCMC checksum mismatch (corrupt file): " + path.string());
  char extra = 0;
  is.read(&extra, 1);
  WCM_CHECK_IO(is.eof(), "trailing bytes after WCMC checksum: " +
                             path.string());

  corrupt_counter.disarm = true;
  if (file_salt != salt) {
    if (telemetry::enabled()) {
      telemetry::registry().counter("runtime.cache.salt_mismatch").add(1);
    }
    return cache;  // salt changed -> every entry is stale; start cold
  }
  cache.entries_ = std::move(entries);
  // Recency for loaded entries is unknowable; seed it in key order (the
  // file's order) and let the bound trim deterministically from the low
  // keys.
  for (const auto& [key, m] : cache.entries_) {
    cache.lru_.insert(key);
  }
  cache.evict_over_cap();
  if (telemetry::enabled()) {
    telemetry::registry()
        .gauge("runtime.cache.store.entries")
        .set(static_cast<double>(cache.entries_.size()));
  }
  return cache;
}

void ResultCache::store(const std::filesystem::path& path) const {
  WCM_SPAN("cache.store");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  WCM_FAILPOINT("runtime.cache.store", io_error,
                "injected cache write failure");
  WCM_CHECK_IO(os.is_open(), "cannot open cache file for writing: " +
                                 path.string());
  u64 h = fnv_offset_basis;
  os.write(kMagic, sizeof(kMagic));
  h = fnv1a(h, kMagic, sizeof(kMagic));
  write_pod(os, h, wcmc_version);
  write_pod(os, h, salt_);
  const u64 count = entries_.size();
  write_pod(os, h, count);
  for (const auto& [key, m] : entries_) {
    write_pod(os, h, key);
    write_pod(os, h, m.n);
    write_pod(os, h, m.seconds);
    write_pod(os, h, m.throughput);
    write_pod(os, h, m.conflicts_per_element);
    write_pod(os, h, m.beta1);
    write_pod(os, h, m.beta2);
  }
  const u64 checksum = h;
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  WCM_CHECK_IO(static_cast<bool>(os), "cache write failed: " + path.string());
}

}  // namespace wcm::runtime
