#pragma once
// In-flight request coalescing ("single flight"): concurrent demands for
// the same key share one computation.  The first caller becomes the
// *leader* and owes the flight a result; everyone who asks for the same
// key before the leader completes *joins* the flight and is answered by
// the leader's result.  The serve layer (src/serve/server.cpp) keys
// flights by the canonical request hash, which is what turns N identical
// concurrent `generate` requests into exactly one scheduler job and one
// cache store (docs/SERVE.md; asserted by tests/test_serve_daemon.cpp).
//
// The callback contract: callbacks registered via lead_or_join() fire
// exactly once, from the thread that calls complete(), outside the
// table lock (a callback may re-enter the SingleFlight).  A leader that
// cannot deliver (queue full, shutdown) must still complete() its flight
// — typically with an error result — or its followers wait forever.

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace wcm::runtime {

/// Outcome of one coalesced computation, fanned out verbatim to the leader
/// and every joined follower.
struct FlightResult {
  bool ok = false;
  std::string value;          ///< serialized result when ok
  std::string error_type;     ///< typed error class otherwise
  std::string error_message;  ///< human-readable detail otherwise
};

class SingleFlight {
 public:
  using Callback = std::function<void(const FlightResult&)>;

  /// Returns true when the caller is now the leader of `key` (it must
  /// eventually call complete(key, ...)); false when an in-flight leader
  /// already exists and `cb` joined its flight.  In both cases `cb` fires
  /// exactly once, when the flight completes.
  [[nodiscard]] bool lead_or_join(u64 key, Callback cb);

  /// Resolve `key`: deliver `result` to the leader's callback and every
  /// joined follower in join order, then forget the flight.  Calling
  /// complete for a key with no flight is a no-op (a shed flight may race
  /// a second completion path).
  void complete(u64 key, const FlightResult& result);

  /// Number of open flights (leaders that have not completed yet).
  [[nodiscard]] std::size_t inflight() const;

 private:
  mutable std::mutex mu_;
  std::map<u64, std::vector<Callback>> flights_;
};

}  // namespace wcm::runtime
