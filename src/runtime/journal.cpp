#include "runtime/journal.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>

#include "runtime/campaign.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {

namespace {

constexpr char kMagic[4] = {'W', 'C', 'M', 'J'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kPayloadBytes = 8 + 8 + 5 * 8;  // key + CellMetrics
constexpr std::size_t kRecordBytes = kPayloadBytes + 8;  // + chain word

template <typename T>
void put(char* buf, std::size_t& off, const T& v) {
  std::memcpy(buf + off, &v, sizeof(v));
  off += sizeof(v);
}

template <typename T>
T get(const char* buf, std::size_t& off) {
  T v{};
  std::memcpy(&v, buf + off, sizeof(v));
  off += sizeof(v);
  return v;
}

/// Serialize header fields (without the trailing header_sum).
void build_header_prefix(char (&buf)[kHeaderBytes], u64 salt,
                         u64 fingerprint) {
  std::size_t off = 0;
  std::memcpy(buf + off, kMagic, sizeof(kMagic));
  off += sizeof(kMagic);
  put(buf, off, wcmj_version);
  put(buf, off, salt);
  put(buf, off, fingerprint);
}

void build_payload(char (&buf)[kPayloadBytes], u64 key,
                   const CellMetrics& m) {
  std::size_t off = 0;
  put(buf, off, key);
  put(buf, off, m.n);
  put(buf, off, m.seconds);
  put(buf, off, m.throughput);
  put(buf, off, m.conflicts_per_element);
  put(buf, off, m.beta1);
  put(buf, off, m.beta2);
}

/// Strict parse of the WCM_CHAOS_KILL_AFTER chaos hook (0/unset =
/// disabled); garbage is a configuration error, not a silent no-op — a
/// chaos harness that typos the hook must find out.
u64 kill_after_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* env = std::getenv("WCM_CHAOS_KILL_AFTER");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  u64 value = 0;
  const char* end = env + std::strlen(env);
  const auto [ptr, err] = std::from_chars(env, end, value);
  WCM_CHECK_CONFIG(err == std::errc() && ptr == end,
                   std::string("invalid WCM_CHAOS_KILL_AFTER value '") + env +
                       "' (expected an unsigned integer)");
  return value;
}

}  // namespace

u64 campaign_fingerprint(const std::vector<CampaignCell>& cells) {
  u64 h = fnv_offset_basis;
  for (const auto& cell : cells) {
    h = fnv1a(h, cell.canonical.data(), cell.canonical.size());
  }
  return h;
}

JournalReplay replay_journal(const std::filesystem::path& path, u64 salt,
                             u64 fingerprint) {
  WCM_SPAN("journal.replay");
  WCM_FAILPOINT("runtime.journal.replay", io_error,
                "injected journal replay failure: " + path.string());
  JournalReplay replay;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return replay;  // fresh start
  }
  std::ifstream is(path, std::ios::binary);
  WCM_CHECK_IO(is.is_open(), "cannot open journal file: " + path.string());
  const std::vector<char> bytes{std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>()};
  WCM_CHECK_IO(!is.bad(), "cannot read journal file: " + path.string());
  if (bytes.empty()) {
    return replay;  // an empty file is a fresh start, not corruption
  }

  // A non-empty file that is recognizably not WCMJ must never be
  // overwritten by the writer: surface it instead of truncating.
  if (bytes.size() >= sizeof(kMagic)) {
    WCM_CHECK_IO(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
                 "not a WCMJ journal file: " + path.string());
  }
  const auto torn_header = [&replay] {
    replay.truncated = true;  // header never finished: rewrite from scratch
    if (telemetry::enabled()) {
      telemetry::registry().counter("runtime.journal.truncated").add(1);
    }
    return replay;
  };
  if (bytes.size() < kHeaderBytes) {
    return torn_header();
  }

  std::size_t off = sizeof(kMagic);
  const auto version = get<std::uint32_t>(bytes.data(), off);
  WCM_CHECK_IO(version == wcmj_version,
               "unsupported WCMJ version " + std::to_string(version) + ": " +
                   path.string());
  const u64 file_salt = get<u64>(bytes.data(), off);
  const u64 file_fingerprint = get<u64>(bytes.data(), off);
  const u64 stored_header_sum = get<u64>(bytes.data(), off);
  const u64 header_sum =
      fnv1a(fnv_offset_basis, bytes.data(), kHeaderBytes - sizeof(u64));
  if (stored_header_sum != header_sum) {
    return torn_header();
  }
  if (file_salt != salt || file_fingerprint != fingerprint) {
    replay.compatible = false;  // different code version or spec
    if (telemetry::enabled()) {
      telemetry::registry().counter("runtime.journal.incompatible").add(1);
    }
    return replay;
  }

  u64 chain = fnv1a(fnv_offset_basis, bytes.data(), kHeaderBytes);
  replay.valid_bytes = kHeaderBytes;
  replay.chain = chain;
  std::size_t p = kHeaderBytes;
  while (bytes.size() - p >= kRecordBytes &&
         replay.records.size() < max_wcmj_records) {
    const u64 next = fnv1a(chain, bytes.data() + p, kPayloadBytes);
    std::size_t chain_off = p + kPayloadBytes;
    const u64 stored = get<u64>(bytes.data(), chain_off);
    if (stored != next) {
      break;  // flipped byte or torn write: drop this record and the tail
    }
    JournalRecord rec;
    std::size_t field = p;
    rec.key = get<u64>(bytes.data(), field);
    rec.metrics.n = get<u64>(bytes.data(), field);
    rec.metrics.seconds = get<double>(bytes.data(), field);
    rec.metrics.throughput = get<double>(bytes.data(), field);
    rec.metrics.conflicts_per_element = get<double>(bytes.data(), field);
    rec.metrics.beta1 = get<double>(bytes.data(), field);
    rec.metrics.beta2 = get<double>(bytes.data(), field);
    replay.records.push_back(rec);
    chain = next;
    p += kRecordBytes;
    replay.valid_bytes = p;
    replay.chain = chain;
  }
  replay.truncated = p < bytes.size();

  if (telemetry::enabled()) {
    telemetry::Registry& reg = telemetry::registry();
    reg.counter("runtime.journal.replayed").add(replay.records.size());
    if (replay.truncated) {
      reg.counter("runtime.journal.truncated").add(1);
    }
  }
  return replay;
}

JournalWriter::JournalWriter(std::filesystem::path path, u64 salt,
                             u64 fingerprint, const JournalReplay& replay)
    : path_(std::move(path)), kill_after_(kill_after_from_env()) {
  if (replay.compatible && replay.valid_bytes >= kHeaderBytes) {
    // Keep the valid prefix: physically drop any torn tail, then append.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec && size > replay.valid_bytes) {
      std::filesystem::resize_file(path_, replay.valid_bytes, ec);
      WCM_CHECK_IO(!ec, "cannot truncate torn journal tail: " +
                            path_.string());
    }
    os_.open(path_, std::ios::binary | std::ios::app);
    WCM_CHECK_IO(os_.is_open(),
                 "cannot open journal for append: " + path_.string());
    chain_ = replay.chain;
    return;
  }
  // Fresh start (new journal, torn header, or incompatible file).  Never
  // clobber a file that is recognizably not WCMJ — a fat-fingered
  // --journal path must not erase unrelated data.
  {
    std::ifstream probe(path_, std::ios::binary);
    if (probe.is_open()) {
      char magic[sizeof(kMagic)] = {};
      probe.read(magic, sizeof(magic));
      if (probe.gcount() == sizeof(magic)) {
        WCM_CHECK_IO(std::memcmp(magic, kMagic, sizeof(magic)) == 0,
                     "refusing to overwrite non-WCMJ file: " + path_.string());
      }
    }
  }
  os_.open(path_, std::ios::binary | std::ios::trunc);
  WCM_CHECK_IO(os_.is_open(),
               "cannot open journal for writing: " + path_.string());
  char header[kHeaderBytes];
  build_header_prefix(header, salt, fingerprint);
  const u64 header_sum =
      fnv1a(fnv_offset_basis, header, kHeaderBytes - sizeof(u64));
  std::size_t off = kHeaderBytes - sizeof(u64);
  put(header, off, header_sum);
  os_.write(header, kHeaderBytes);
  os_.flush();
  WCM_CHECK_IO(static_cast<bool>(os_),
               "journal header write failed: " + path_.string());
  chain_ = fnv1a(fnv_offset_basis, header, kHeaderBytes);
}

void JournalWriter::append(u64 key, const CellMetrics& metrics) {
  WCM_FAILPOINT("runtime.journal.append", io_error,
                "injected journal append failure: " + path_.string());
  char payload[kPayloadBytes];
  build_payload(payload, key, metrics);
  const u64 next = fnv1a(chain_, payload, kPayloadBytes);
  os_.write(payload, kPayloadBytes);
  os_.write(reinterpret_cast<const char*>(&next), sizeof(next));
  os_.flush();
  WCM_CHECK_IO(static_cast<bool>(os_),
               "journal append failed: " + path_.string());
  chain_ = next;
  ++appended_;
  if (telemetry::enabled()) {
    telemetry::registry().counter("runtime.journal.appended").add(1);
  }
  if (kill_after_ != 0 && appended_ >= kill_after_) {
    // Chaos hook: simulate process death immediately after a durable
    // append (tests/chaos_ci.cmake drives the kill/resume cycle with it).
    std::_Exit(chaos_kill_exit);
  }
}

}  // namespace wcm::runtime
