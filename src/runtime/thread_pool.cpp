#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace wcm::runtime {

ThreadPool::ThreadPool(u32 threads) {
  WCM_EXPECTS(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (u32 i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  WCM_EXPECTS(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

u32 recommended_workers(u32 requested, const gpusim::Device& dev,
                        u32 threads_per_block,
                        std::size_t shared_bytes_per_block) {
  if (requested > 0) {
    return requested;
  }
  const u32 host = std::max(1u, std::thread::hardware_concurrency());
  const gpusim::Occupancy occ =
      gpusim::occupancy(dev, threads_per_block, shared_bytes_per_block);
  if (occ.resident_blocks == 0) {
    return 1;  // launch does not fit; let validation report it
  }
  const u32 device_parallelism = occ.resident_blocks * dev.sm_count;
  return std::max(1u, std::min(host, device_parallelism));
}

u32 threads_from_env(u32 fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* env = std::getenv("WCM_THREADS");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  u32 value = 0;
  const std::string text(env);
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (err != std::errc() || ptr != text.data() + text.size() || value > 4096) {
    throw parse_error("invalid WCM_THREADS value '" + text +
                      "' (expected an integer 0..4096)");
  }
  return value == 0 ? fallback : value;
}

}  // namespace wcm::runtime
