#pragma once
// Retry policy for the fault-tolerant campaign runtime.
//
// A failing job is worth retrying only when its error class is
// *transient* — an injected or real I/O hiccup, a simulator invariant
// tripped by a fault — never when it is *permanent* (invalid
// configuration, parse failure, contract violation: running the same body
// again cannot change the outcome).  is_transient() encodes that split of
// the wcm::error taxonomy (util/error.hpp, PR 1).
//
// Backoff is deterministic by construction: the delay before retrying a
// job depends only on (policy seed, job stream, attempt number), jittered
// through fork_seed (util/rng.hpp) exactly like every other stochastic
// quantity in the repository.  Delays therefore never depend on worker
// scheduling, which keeps campaign aggregates byte-identical across
// thread counts even when retries fire (docs/RUNTIME.md).

#include "util/error.hpp"
#include "util/math.hpp"

namespace wcm::runtime {

struct RetryPolicy {
  /// Total times a job body may run (1 = never retry).
  u32 max_attempts = 1;
  /// Delay before the first retry; doubles per attempt.
  double base_delay_seconds = 0.01;
  /// Ceiling on any single backoff delay.
  double max_delay_seconds = 0.25;
  /// Root of the jitter stream (commonly the campaign seed).
  u64 seed = 0;
};

/// True iff `code` names a transient failure class worth retrying:
/// io_failure (reads/writes can succeed on a second try) and
/// simulation_invariant (the class every injected worker fault and
/// cancellation surfaces as).  invalid_config, parse_failure, and
/// contract_violation are permanent — deterministic re-execution of the
/// same body cannot fix them.
[[nodiscard]] bool is_transient(errc code) noexcept;

/// Deterministic jittered exponential backoff: the delay (seconds) to
/// sleep after `failed_attempts` consecutive failures of the job on
/// logical stream `stream` (1-based: pass 1 after the first failure).
/// delay = min(max, base * 2^(failed_attempts-1) * (0.5 + jitter/2)) with
/// jitter in [0, 1) drawn from fork_seed(policy.seed, stream, attempt) —
/// a pure function of its arguments, never of wall clock or threads.
[[nodiscard]] double backoff_delay_seconds(const RetryPolicy& policy,
                                           u64 stream,
                                           u32 failed_attempts) noexcept;

}  // namespace wcm::runtime
