#pragma once
// Campaign layer: expand a JSON grid spec (engine x E x b x padding x
// input x size) into jobs, execute them on the runtime scheduler, reuse
// prior results through the WCMC cache, and aggregate everything into one
// deterministic JSON document via the existing analysis series machinery.
//
// Determinism contract (asserted by tests/test_runtime_campaign.cpp and
// the campaign_ci gate): the aggregated JSON is a pure function of the
// spec — cells are keyed and ordered by their expansion index, every
// stochastic input is seeded by fork_seed(spec.seed, hash(cell config)),
// and cached results are bit-identical to recomputed ones — so 1-thread
// and N-thread runs, and cold and warm caches, produce byte-identical
// output.
//
// The campaign JSON grammar and the WCMC cache format are documented in
// docs/RUNTIME.md.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "runtime/cache.hpp"
#include "runtime/retry.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm::runtime {

class CancelSource;  // runtime/scheduler.hpp

enum class Engine { pairwise, multiway, bitonic, radix };

[[nodiscard]] const char* to_string(Engine engine) noexcept;

/// One rectangle of the grid: the cartesian product of its list-valued
/// fields, sharing the scalar-valued ones.
struct GridEntry {
  Engine engine = Engine::pairwise;
  sort::MergeSortLibrary library = sort::MergeSortLibrary::thrust;
  std::vector<u32> E{15};
  std::vector<u32> b{512};
  u32 w = 32;
  std::vector<u32> padding{0};
  std::vector<workload::InputKind> inputs{workload::InputKind::random};
  std::vector<u32> k{1};  ///< n = bE * 2^k
  u32 ways = 4;           ///< multiway fan-in
  u32 digit_bits = 4;     ///< radix digit width
};

struct CampaignSpec {
  std::string name = "campaign";
  std::string device_name = "m4000";
  gpusim::Device device;  ///< resolved from device_name
  u64 seed = 1;
  u32 threads = 0;        ///< 0 = device-aware auto (see thread_pool.hpp)
  std::string trace_dir;  ///< record one WCMT per cell when non-empty
  std::vector<GridEntry> grid;
  /// Where the spec was loaded from; empty for in-memory specs.  The
  /// default cache file is `<source_path>.wcmc`.
  std::filesystem::path source_path;
};

/// Parse a campaign spec document.  Throws wcm::parse_error on JSON syntax
/// errors, unknown keys, or invalid field values.
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& json_text);

/// Read and parse a spec file.  Throws wcm::io_error for unreadable or
/// syntactically invalid files (a corrupt spec is a bad input *file*, exit
/// code 3 in wcmgen) and wcm::parse_error only for semantically invalid
/// values inside valid JSON.
[[nodiscard]] CampaignSpec load_campaign_spec(
    const std::filesystem::path& path);

/// One expanded grid cell, in deterministic expansion order.
struct CampaignCell {
  Engine engine = Engine::pairwise;
  sort::MergeSortLibrary library = sort::MergeSortLibrary::thrust;
  sort::SortConfig config;
  workload::InputKind input = workload::InputKind::random;
  u32 k = 1;
  std::size_t n = 0;  ///< requested size (bE * 2^k)
  u64 seed = 0;       ///< fork_seed(spec.seed, hash(cell)); input seed
  u32 ways = 0;       ///< non-zero for multiway only
  u32 digit_bits = 0; ///< non-zero for radix only
  std::string label;      ///< human-readable, used in progress lines
  std::string canonical;  ///< cache-key string (includes seed and device)
};

/// Expand the grid (validating every cell's SortConfig and its fit on the
/// device — throws wcm::config_error otherwise).  Deterministic order:
/// grid entries in spec order, then E, b, padding, input, k in list order.
[[nodiscard]] std::vector<CampaignCell> expand(const CampaignSpec& spec);

struct CampaignOptions {
  u32 threads = 0;   ///< overrides spec.threads when non-zero
  bool use_cache = true;
  /// Cache file; empty = `<spec.source_path>.wcmc`, or no cache at all for
  /// in-memory specs.
  std::filesystem::path cache_path;
  std::ostream* progress = nullptr;  ///< per-cell progress lines; may be null
  std::string trace_dir;             ///< overrides spec.trace_dir when set
  /// Write-ahead journal of completed cells (WCMJ, runtime/journal.hpp);
  /// empty = no journal.  Ignored while traces are recorded (a replayed
  /// cell cannot reproduce its trace side effect).
  std::filesystem::path journal_path;
  /// Replay `journal_path` before scheduling: cells already journaled are
  /// not recomputed.  A journal from a different spec or code version is
  /// ignored (and rewritten).
  bool resume = false;
  /// Per-cell retry policy for transient failures; seed 0 = spec.seed.
  /// The default re-runs a failing cell twice before giving up.
  RetryPolicy retry{3};
  /// Restore the pre-quarantine behavior: first failing cell (by
  /// expansion index) cancels the rest and is rethrown.
  bool fail_fast = false;
  /// External cancellation (SIGINT/SIGTERM drain); may be null.  After
  /// cancel() the campaign finishes in-flight cells, flushes journal and
  /// cache, and returns with interrupted() true and an empty json.
  CancelSource* cancel = nullptr;
};

/// A cell that exhausted its retries (or failed permanently) while the
/// rest of the campaign completed.
struct QuarantinedCell {
  std::size_t index = 0;   ///< expansion index
  std::string label;       ///< CampaignCell::label
  errc code = errc::simulation_invariant;
  std::string message;     ///< final attempt's error text
  u32 attempts = 0;        ///< times the cell body ran
};

struct CampaignOutcome {
  std::string json;        ///< aggregated document (see docs/RUNTIME.md)
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t replayed = 0;   ///< cells restored from the journal
  std::size_t computed = 0;   ///< cells actually (re)computed to completion
  /// Cells isolated after exhausting retries, in expansion order; the
  /// campaign is *degraded* when non-empty (wcmgen exits 6).
  std::vector<QuarantinedCell> quarantined;
  std::size_t cancelled = 0;  ///< cells skipped by an interrupt drain
  u32 threads = 1;            ///< workers actually used
  double wall_seconds = 0.0;

  [[nodiscard]] bool degraded() const noexcept { return !quarantined.empty(); }
  /// True when a cancel drained the run before every cell finished: json
  /// is empty and the journal (if any) holds the resumable prefix
  /// (wcmgen exits 7).
  [[nodiscard]] bool interrupted() const noexcept { return cancelled > 0; }
};

/// Run the campaign: journal replay (resume) and cache lookups, parallel
/// execution of the misses with retry/backoff, quarantine of cells that
/// exhaust their attempts (fail_fast instead rethrows the first failure by
/// expansion index), journal/cache write-back, aggregation.  The aggregate
/// of a resumed run is byte-identical to an uninterrupted one.
[[nodiscard]] CampaignOutcome run_campaign(const CampaignSpec& spec,
                                           const CampaignOptions& options);

/// Run several figure sweeps concurrently (one job per (sweep, size) cell)
/// and return each sweep's series in input order.  Seeds match
/// analysis::run_sweep exactly, so a ported bench prints the same numbers
/// as its serial ancestor.  `threads` 0 = WCM_THREADS env, else
/// device-aware auto.
[[nodiscard]] std::vector<std::vector<analysis::SeriesPoint>> run_sweeps(
    const std::vector<analysis::SweepSpec>& specs, u32 threads = 0);

}  // namespace wcm::runtime
