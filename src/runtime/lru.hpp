#pragma once
// LRU recency index: the eviction-order bookkeeping shared by the WCMC
// result cache (runtime/cache.hpp) and the serve layer's multi-tenant
// response cache (serve/tenant_cache.hpp).  The index tracks *order only*;
// the owning container stores the values and drives eviction by popping
// the coldest key while it is over its bound.
//
// All operations are O(log n) (one map lookup) plus an O(1) list splice;
// iterators into the recency list stay valid across touches, which is what
// makes the splice trick safe.  Not thread-safe — owners serialize access
// under their own lock, exactly like the containers this was extracted
// from.

#include <cstddef>
#include <list>
#include <map>

#include "util/check.hpp"

namespace wcm::runtime {

/// Recency order over a set of keys: front = coldest (evict first),
/// back = hottest (most recently touched).
template <typename Key>
class LruIndex {
 public:
  /// Record `key` as the hottest entry.  Inserting an already-tracked key
  /// is a touch.
  void insert(const Key& key) {
    const auto it = where_.find(key);
    if (it != where_.end()) {
      order_.splice(order_.end(), order_, it->second);
      return;
    }
    where_[key] = order_.insert(order_.end(), key);
  }

  /// Refresh `key` to hottest; unknown keys are ignored (a lookup racing
  /// an eviction is not an error).
  void touch(const Key& key) {
    const auto it = where_.find(key);
    if (it != where_.end()) {
      order_.splice(order_.end(), order_, it->second);  // iterator stays valid
    }
  }

  /// Forget `key` wherever it sits in the order; unknown keys are ignored.
  void erase(const Key& key) {
    const auto it = where_.find(key);
    if (it != where_.end()) {
      order_.erase(it->second);
      where_.erase(it);
    }
  }

  /// Remove and return the coldest key (contract-checked non-empty).
  [[nodiscard]] Key pop_coldest() {
    WCM_EXPECTS(!order_.empty(), "LruIndex::pop_coldest on an empty index");
    Key victim = order_.front();
    order_.pop_front();
    where_.erase(victim);
    return victim;
  }

  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return where_.size(); }

  void clear() noexcept {
    order_.clear();
    where_.clear();
  }

 private:
  std::list<Key> order_;
  std::map<Key, typename std::list<Key>::iterator> where_;
};

}  // namespace wcm::runtime
