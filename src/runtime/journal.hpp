#pragma once
// Crash-safe write-ahead journal of completed campaign cells.
//
// A campaign that dies — worker crash, SIGKILL, power loss — must not
// lose the cells it already finished.  The journal is an append-only file
// of (key, metrics) records, each sealed by a running FNV-1a chain over
// every byte of the file so far, flushed after every append.  On resume,
// replay_journal() walks the records, stops at the first torn or corrupt
// one (truncating the tail instead of rejecting the file: a torn final
// record is the *expected* crash artifact, not corruption worth dying
// over), and the campaign re-schedules only the cells that are missing.
//
// On-disk WCMJ format, version 1 (little-endian):
//   magic        "WCMJ"   4 bytes
//   version      u32      currently 1
//   salt         u64      code-version salt (runtime/cache.hpp)
//   fingerprint  u64      campaign_fingerprint() of the expanded cells
//   header_sum   u64      FNV-1a over the preceding 24 bytes
//   records      repeated 64-byte records:
//     key        u64      cache key of the cell (ResultCache::key_of)
//     n          u64      CellMetrics payload...
//     seconds    f64
//     throughput f64
//     conflicts  f64
//     beta1      f64
//     beta2      f64      ...CellMetrics payload ends
//     chain      u64      FNV-1a over every payload byte of the file so
//                         far (header included, prior chain words
//                         excluded) — a flipped byte anywhere invalidates
//                         this and every later record
//
// A salt or fingerprint mismatch marks the journal incompatible (the code
// or the spec changed): replay returns no records and the writer starts
// fresh.  A non-empty file that is not WCMJ at all is an io_error — the
// journal never clobbers a file it does not recognize.
//
// Failpoints: "runtime.journal.replay" (replay_journal) and
// "runtime.journal.append" (JournalWriter::append) both surface io_error.
// Chaos hook: WCM_CHAOS_KILL_AFTER=<n> makes the writer _Exit(77) after n
// appends, simulating process death mid-campaign (tests/chaos_ci.cmake).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "runtime/cache.hpp"
#include "util/math.hpp"

namespace wcm::runtime {

struct CampaignCell;

/// The WCMJ version JournalWriter emits.
inline constexpr std::uint32_t wcmj_version = 1;

/// Exit code of the WCM_CHAOS_KILL_AFTER chaos hook (distinct from every
/// documented wcmgen exit code so a harness can tell "injected death"
/// from a real failure).
inline constexpr int chaos_kill_exit = 77;

/// Hard cap on records replayed from one WCMJ file; anything larger is
/// treated as a corrupt length and truncated (same defense as WCMC's
/// max_wcmc_records).
inline constexpr u64 max_wcmj_records = u64{1} << 24;

/// FNV-1a chained over every expanded cell's canonical string, in
/// expansion order: identifies *which campaign* a journal belongs to, so
/// resuming against an edited spec starts fresh instead of replaying
/// records whose keys happen to collide.
[[nodiscard]] u64 campaign_fingerprint(const std::vector<CampaignCell>& cells);

struct JournalRecord {
  u64 key = 0;
  CellMetrics metrics;
};

/// Result of replaying a journal file.
struct JournalReplay {
  std::vector<JournalRecord> records;  ///< the valid prefix, in file order
  /// A torn or corrupt tail was dropped (the records above are still good).
  bool truncated = false;
  /// False when salt/fingerprint did not match: the journal belongs to a
  /// different code version or spec; the writer must start fresh.
  bool compatible = true;
  /// Byte length of the valid prefix a writer may append after (0 = the
  /// writer rewrites the file from scratch, header included).
  u64 valid_bytes = 0;
  /// FNV-1a chain state at valid_bytes (resumes the checksum chain).
  u64 chain = 0;
};

/// Replay `path`.  A missing or empty file yields an empty, compatible
/// replay (fresh start); a torn header or corrupt record tail is
/// truncated at the last good byte; a salt/fingerprint mismatch yields an
/// incompatible replay.  Throws wcm::io_error only for a non-empty file
/// that is not WCMJ at all (bad magic or unsupported version).
[[nodiscard]] JournalReplay replay_journal(const std::filesystem::path& path,
                                           u64 salt, u64 fingerprint);

/// Append-side of the journal.  Constructed from a replay: a non-empty
/// valid prefix is kept and appended after (the torn tail, if any, is
/// physically truncated first); otherwise the file is rewritten with a
/// fresh header.  Every append is flushed before returning, so the
/// journal is never more than one record behind the in-memory state.
class JournalWriter {
 public:
  JournalWriter(std::filesystem::path path, u64 salt, u64 fingerprint,
                const JournalReplay& replay);

  /// Append one sealed record and flush.  Throws wcm::io_error on write
  /// failure (also the "runtime.journal.append" failpoint).
  void append(u64 key, const CellMetrics& metrics);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::size_t appended() const noexcept { return appended_; }

 private:
  std::filesystem::path path_;
  std::ofstream os_;
  u64 chain_ = 0;          ///< running FNV-1a over payload bytes
  std::size_t appended_ = 0;
  u64 kill_after_ = 0;     ///< WCM_CHAOS_KILL_AFTER (0 = disabled)
};

}  // namespace wcm::runtime
