#pragma once
// Content-addressed result cache for campaign cells.
//
// A cell's key is the FNV-1a hash of its canonical configuration string
// (engine, library, E/b/w/pad, input kind, k/n, derived seed, device, ...)
// salted with the code-version salt, so a cache survives re-runs of the
// same grid but a change to either the cell or the code addresses a
// different slot.  Values are the flat per-cell metrics the campaign
// aggregates (runtime does not cache full SortReports: the metrics are
// what the figures plot, and they keep the file a few dozen bytes per
// cell).
//
// On-disk WCMC format, version 1 (little-endian), mirroring WCMI v2:
//   magic    "WCMC"          4 bytes
//   version  u32             currently 1
//   salt     u64             code-version salt the entries were computed at
//   count    u64             number of records
//   records  count x { key u64, n u64, seconds f64, throughput f64,
//                      conflicts_per_element f64, beta1 f64, beta2 f64 }
//   checksum u64             FNV-1a over every preceding byte
//
// load() discards a file whose salt differs from the current salt (that is
// the invalidation mechanism: bump the salt, every entry misses) and
// throws wcm::io_error on a corrupt file, exactly like WCMI.

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "runtime/lru.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"

namespace wcm::runtime {
// Cache keys chain wcm::fnv1a (util/hash.hpp) — the same hash the WCMI
// checksum and the prover's report digest use; unqualified fnv1a /
// fnv_offset_basis below resolve to it through the enclosing namespace.

/// The salt folded into every cache key: a hash of the runtime's result
/// format version (bump kResultFormat in cache.cpp whenever cached metrics
/// change meaning) plus the WCM_CACHE_SALT environment variable, which
/// tests and operators use to force a cold cache without deleting files.
[[nodiscard]] u64 code_version_salt();

/// Entry bound from the WCM_CACHE_MAX environment variable (0 or unset =
/// unbounded).  Throws wcm::config_error on a malformed value.
[[nodiscard]] u64 cache_max_from_env();

/// Flat metrics of one computed campaign cell.
struct CellMetrics {
  u64 n = 0;
  double seconds = 0.0;
  double throughput = 0.0;
  double conflicts_per_element = 0.0;
  double beta1 = 0.0;
  double beta2 = 0.0;

  bool operator==(const CellMetrics&) const = default;
};

/// Hard cap on records in a WCMC file; load() rejects larger counts as
/// corrupt before allocating (same defense as WCMI's max_wcmi_keys).
inline constexpr u64 max_wcmc_records = u64{1} << 24;

/// The WCMC version store() emits.
inline constexpr std::uint32_t wcmc_version = 1;

/// In-memory cache; thread-safety is the caller's concern (the campaign
/// serializes lookups at expansion time and inserts under its own mutex).
///
/// The entry count is LRU-bounded by WCM_CACHE_MAX (0/unset = unbounded):
/// a crashed-and-resumed or long chaos run cannot grow the cache without
/// bound.  lookup() refreshes recency; insert() admits (counter
/// runtime.cache.admit) then evicts the coldest entries over the cap
/// (counter runtime.cache.evict).  Stored files stay deterministic in
/// *key* order for a given surviving entry set, but under a cap the
/// surviving set itself depends on completion order, so bounded cache
/// files are not byte-identical across thread counts (the aggregate JSON
/// still is — eviction only forces recomputation).
class ResultCache {
 public:
  /// Empty cache keyed at the current code_version_salt().
  ResultCache();
  /// Empty cache with an explicit salt, bounded per WCM_CACHE_MAX.
  explicit ResultCache(u64 salt);
  /// Empty cache with an explicit salt and entry bound (tests; 0 =
  /// unbounded).
  ResultCache(u64 salt, u64 max_entries)
      : salt_(salt), max_entries_(max_entries) {}

  /// Hash a canonical cell-configuration string into this cache's address
  /// space (folds the salt first, then the string).
  [[nodiscard]] u64 key_of(const std::string& canonical_config) const noexcept;

  [[nodiscard]] std::optional<CellMetrics> lookup(u64 key) const;
  void insert(u64 key, const CellMetrics& metrics);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] u64 salt() const noexcept { return salt_; }
  [[nodiscard]] u64 max_entries() const noexcept { return max_entries_; }

  /// Parse a WCMC file.  A missing file yields an empty cache; a salt
  /// mismatch yields an empty cache (invalidation); a malformed file
  /// throws wcm::io_error.  The returned cache is keyed at `salt`.
  [[nodiscard]] static ResultCache load(const std::filesystem::path& path,
                                        u64 salt);

  /// Write every entry to `path` (atomic enough for a cache: whole-file
  /// rewrite).  Throws wcm::io_error on failure.
  void store(const std::filesystem::path& path) const;

 private:
  void evict_over_cap();

  u64 salt_;
  u64 max_entries_ = 0;  // 0 = unbounded
  std::map<u64, CellMetrics> entries_;  // ordered -> deterministic files
  // Recency bookkeeping (runtime/lru.hpp, shared with the serve-layer
  // response cache); mutable so a const lookup() can refresh the entry it
  // just served.
  mutable LruIndex<u64> lru_;
};

}  // namespace wcm::runtime
