#include "runtime/scheduler.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "runtime/thread_pool.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::runtime {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::done:
      return "done";
    case JobState::failed:
      return "failed";
    case JobState::quarantined:
      return "quarantined";
    case JobState::skipped_cancelled:
      return "skipped-cancelled";
    case JobState::skipped_dep_failed:
      return "skipped-dep-failed";
    case JobState::skipped_quarantined:
      return "skipped-quarantined";
  }
  return "?";
}

void JobContext::check_cancelled() const {
  if (cancelled()) {
    throw simulation_error("job cancelled",
                           "job " + std::to_string(id_));
  }
}

void JobContext::check_deadline() const {
  if (deadline_exceeded()) {
    throw simulation_error("job exceeded its deadline",
                           "job " + std::to_string(id_));
  }
}

JobId JobGraph::add(std::function<void(JobContext&)> fn, JobOptions opts) {
  WCM_EXPECTS(fn != nullptr, "cannot add an empty job");
  const JobId id = jobs_.size();
  for (const JobId dep : opts.deps) {
    WCM_EXPECTS(dep < id, "job dependencies must reference earlier jobs");
  }
  jobs_.push_back(Job{std::move(fn), std::move(opts)});
  return id;
}

bool RunReport::ok() const noexcept {
  for (const auto& o : outcomes) {
    if (o.state != JobState::done) {
      return false;
    }
  }
  return true;
}

std::size_t RunReport::count(JobState state) const noexcept {
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    n += o.state == state ? 1 : 0;
  }
  return n;
}

void RunReport::rethrow_first_error() const {
  for (const auto& o : outcomes) {
    if (o.state != JobState::failed && o.state != JobState::quarantined) {
      continue;
    }
    if (o.error) {
      std::rethrow_exception(o.error);
    }
    throw simulation_error(o.message);
  }
}

/// Shared state of one run(); jobs touch it only under `mu` (the outcome
/// slots are written by exactly one worker each, but the dependency
/// counters and completion bookkeeping need the lock anyway).
struct RunState {
  explicit RunState(const JobGraph& g) : graph(g) {}

  const JobGraph& graph;
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<JobOutcome> outcomes;
  std::vector<std::size_t> pending_deps;
  std::vector<std::vector<JobId>> dependents;
  /// Body executions per job; only the single worker currently running the
  /// job touches its slot (retry resubmission orders through the pool).
  std::vector<u32> attempts;
  std::size_t terminal = 0;
  bool fail_fast_tripped = false;
  CancelSource* external_cancel = nullptr;
  bool fail_fast = false;
  bool quarantine = false;
  RetryPolicy retry;
  std::chrono::steady_clock::time_point start;
  ThreadPool* pool = nullptr;

  [[nodiscard]] bool cancelled() const noexcept {
    return fail_fast_tripped ||
           (external_cancel != nullptr && external_cancel->cancelled());
  }

  /// Record `id` reaching a terminal state and hand newly-ready dependents
  /// to the pool.  Called with `mu` held by the finishing worker (or the
  /// submitter, for roots).
  void finish_locked(JobId id, JobOutcome outcome) {
    outcomes[id] = std::move(outcome);
    if (fail_fast && outcomes[id].state == JobState::failed) {
      fail_fast_tripped = true;
    }
    ++terminal;
    if (telemetry::enabled()) {
      telemetry::registry()
          .gauge("runtime.scheduler.queue.depth")
          .set(static_cast<double>(graph.jobs_.size() - terminal));
    }
    if (terminal == graph.jobs_.size()) {
      done_cv.notify_all();
    }
    for (const JobId next : dependents[id]) {
      if (--pending_deps[next] == 0) {
        pool->submit([this, next] { execute(next); });
      }
    }
  }

  void execute(JobId id) {
    // Install the job's request context before the span opens, so
    // "scheduler.job" and everything nested under it (kernel rounds
    // included) carry the originating request's trace_id on this worker.
    const telemetry::ScopedTraceContext trace_scope(
        graph.jobs_[id].opts.trace);
    WCM_SPAN("scheduler.job");
    const auto& job = graph.jobs_[id];
    JobOutcome outcome;

    // Terminal-dependency and cancellation checks: a job only runs when
    // every dependency finished `done` and the run is still live.
    bool runnable = true;
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const JobId dep : job.opts.deps) {
        const JobState dep_state = outcomes[dep].state;
        if (dep_state != JobState::done) {
          outcome.state = (dep_state == JobState::quarantined ||
                           dep_state == JobState::skipped_quarantined)
                              ? JobState::skipped_quarantined
                              : JobState::skipped_dep_failed;
          outcome.message = "dependency " + std::to_string(dep) + " " +
                            std::string(to_string(dep_state));
          runnable = false;
          break;
        }
      }
      if (runnable && cancelled()) {
        outcome.state = JobState::skipped_cancelled;
        runnable = false;
      }
    }

    if (runnable) {
      const bool has_deadline =
          job.opts.timeout != std::chrono::steady_clock::duration{0};
      const auto deadline = start + job.opts.timeout;
      JobContext ctx(id, external_cancel, deadline, has_deadline);
      outcome.attempts = ++attempts[id];
      const auto job_start = std::chrono::steady_clock::now();
      try {
        WCM_FAILPOINT("runtime.worker.job", simulation_error,
                      "injected worker fault in job " + std::to_string(id) +
                          (job.opts.label.empty() ? ""
                                                  : " (" + job.opts.label +
                                                        ")"));
        if (has_deadline && job_start > deadline) {
          throw simulation_error("job deadline expired while queued",
                                 "job " + std::to_string(id));
        }
        job.fn(ctx);
        if (has_deadline && std::chrono::steady_clock::now() > deadline) {
          throw simulation_error("job exceeded its deadline",
                                 "job " + std::to_string(id));
        }
        outcome.state = JobState::done;
      } catch (const wcm::error& e) {
        outcome.state = JobState::failed;
        outcome.code = e.code();
        outcome.message = e.what();
        outcome.error = std::current_exception();
      } catch (const std::exception& e) {
        outcome.state = JobState::failed;
        outcome.code = errc::simulation_invariant;
        outcome.message = e.what();
        outcome.error = std::current_exception();
      } catch (...) {
        outcome.state = JobState::failed;
        outcome.code = errc::simulation_invariant;
        outcome.message = "unknown exception";
        outcome.error = std::current_exception();
      }
      outcome.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job_start)
              .count();

      if (outcome.state == JobState::failed) {
        const bool transient = is_transient(outcome.code);
        bool live = true;
        {
          const std::lock_guard<std::mutex> lock(mu);
          live = !cancelled();
        }
        if (transient && live && outcome.attempts < retry.max_attempts) {
          // Back off deterministically, then re-run the same job.  The
          // failed attempt is *not* terminal: run() keeps waiting.
          if (telemetry::enabled()) {
            telemetry::registry().counter("runtime.retry.attempts").add(1);
          }
          const double delay =
              backoff_delay_seconds(retry, id, outcome.attempts);
          if (delay > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
          }
          pool->submit([this, id] { execute(id); });
          return;
        }
        if (transient && retry.max_attempts > 1 &&
            outcome.attempts >= retry.max_attempts &&
            telemetry::enabled()) {
          telemetry::registry().counter("runtime.retry.exhausted").add(1);
        }
        if (quarantine) {
          outcome.state = JobState::quarantined;
        }
      } else if (outcome.state == JobState::done && outcome.attempts > 1 &&
                 telemetry::enabled()) {
        telemetry::registry().counter("runtime.retry.success").add(1);
      }
    }

    if (telemetry::enabled()) {
      telemetry::Registry& reg = telemetry::registry();
      switch (outcome.state) {
        case JobState::done:
          reg.counter("runtime.scheduler.jobs.completed").add(1);
          reg.histogram("runtime.scheduler.job.seconds", {},
                        {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0})
              .observe(outcome.seconds);
          break;
        case JobState::failed:
          reg.counter("runtime.scheduler.jobs.failed").add(1);
          break;
        case JobState::quarantined:
          reg.counter("runtime.quarantine.jobs").add(1);
          break;
        case JobState::skipped_quarantined:
          reg.counter("runtime.quarantine.deps_skipped").add(1);
          reg.counter("runtime.scheduler.jobs.skipped").add(1);
          break;
        case JobState::skipped_cancelled:
        case JobState::skipped_dep_failed:
          reg.counter("runtime.scheduler.jobs.skipped").add(1);
          break;
      }
    }

    const std::lock_guard<std::mutex> lock(mu);
    finish_locked(id, std::move(outcome));
  }
};

RunReport run(const JobGraph& graph, const RunOptions& opts) {
  WCM_SPAN("scheduler.run");
  WCM_EXPECTS(opts.threads >= 1, "run() needs at least one worker");
  RunReport report;
  const std::size_t n = graph.size();
  report.outcomes.resize(n);
  if (n == 0) {
    return report;
  }

  RunState state(graph);
  state.outcomes.resize(n);
  state.pending_deps.resize(n);
  state.dependents.resize(n);
  state.attempts.resize(n, 0);
  state.external_cancel = opts.cancel;
  state.fail_fast = opts.fail_fast;
  state.quarantine = opts.quarantine;
  state.retry = opts.retry;
  state.start = std::chrono::steady_clock::now();
  for (JobId id = 0; id < n; ++id) {
    const auto& deps = state.graph.jobs_[id].opts.deps;
    state.pending_deps[id] = deps.size();
    for (const JobId dep : deps) {
      state.dependents[dep].push_back(id);
    }
  }

  {
    ThreadPool pool(opts.threads);
    state.pool = &pool;
    {
      // Seed the roots in id order; FIFO dequeue then gives the 1-thread
      // run an exact topological-by-id execution order.
      const std::lock_guard<std::mutex> lock(state.mu);
      for (JobId id = 0; id < n; ++id) {
        if (state.pending_deps[id] == 0) {
          pool.submit([&state, id] { state.execute(id); });
        }
      }
    }
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state, n] { return state.terminal == n; });
  }

  report.outcomes = std::move(state.outcomes);
  return report;
}

}  // namespace wcm::runtime
