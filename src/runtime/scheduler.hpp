#pragma once
// Job-graph scheduler on top of runtime/thread_pool.hpp.
//
// A JobGraph is a DAG of type-erased jobs: each job may depend on
// earlier-added jobs (dependencies are ids < the job's own id, which makes
// the graph acyclic by construction), may carry a deadline, and runs at
// most once.  run() executes the graph on a fixed-size worker pool and
// returns one JobOutcome per job, indexed by JobId — the result layout is
// a pure function of the graph, never of worker scheduling, which is what
// lets campaign output stay byte-identical between 1-thread and N-thread
// runs.
//
// Error model (wcm::error taxonomy, PR 1):
//   * a job that throws is recorded `failed` with the thrown error's code
//     (non-wcm exceptions are classified simulation_invariant);
//   * a job whose deadline passes — before it starts, inside the job via
//     JobContext::check_deadline(), or by the time it returns — fails with
//     wcm::simulation_error;
//   * jobs behind a failed dependency are `skipped_dep_failed`;
//   * after CancelSource::cancel() (or any failure under
//     RunOptions::fail_fast) still-queued jobs finish as
//     `skipped_cancelled`; running jobs can poll JobContext::cancelled().
//
// Fault tolerance (PR 6): RunOptions::retry re-runs a job whose failure
// is transient (runtime/retry.hpp) up to max_attempts times, sleeping a
// deterministic fork_seed'ed backoff between attempts.  Under
// RunOptions::quarantine, a job that exhausts its attempts (or fails
// permanently) is recorded `quarantined` instead of tripping fail-fast,
// its dependents finish `skipped_quarantined`, and every unrelated job
// still runs to completion — the degraded-but-complete mode the campaign
// runtime builds on (docs/RUNTIME.md).
//
// The worker wrapper evaluates the "runtime.worker.job" failpoint before
// invoking each job, so WCM_FAILPOINTS can prove the whole
// fail/skip/report pipeline end to end (docs/RUNTIME.md).

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "runtime/retry.hpp"
#include "telemetry/trace_context.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace wcm::runtime {

using JobId = std::size_t;

class JobContext;

struct JobOptions {
  std::vector<JobId> deps;  ///< must all be ids of earlier-added jobs
  /// Wall-clock budget measured from run() start; zero = unlimited.
  std::chrono::steady_clock::duration timeout{0};
  std::string label;  ///< for error messages and progress lines
  /// Request trace context installed on the worker for the job's whole
  /// execution (including retries), so spans recorded inside the job —
  /// down to kernel rounds — carry the originating request's trace_id
  /// across the thread hop (docs/TELEMETRY.md "Request tracing").
  /// Default ({}): no context.
  telemetry::TraceContext trace;
};

enum class JobState {
  done,
  failed,
  /// Exhausted its retry budget (or failed permanently) under
  /// RunOptions::quarantine: isolated instead of tripping fail-fast.
  quarantined,
  skipped_cancelled,
  skipped_dep_failed,
  /// Skipped because a dependency was quarantined (distinct from
  /// skipped_dep_failed so callers can report degraded completion).
  skipped_quarantined,
};

[[nodiscard]] const char* to_string(JobState state) noexcept;

struct JobOutcome {
  JobState state = JobState::skipped_cancelled;
  errc code = errc::simulation_invariant;  ///< valid when failed/quarantined
  std::string message;                     ///< error text when failed
  std::exception_ptr error;                ///< original exception when failed
  double seconds = 0.0;                    ///< job body wall clock (last try)
  u32 attempts = 0;                        ///< times the body actually ran
};

/// Cooperative cancellation shared between the caller and running jobs.
class CancelSource {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Handed to every job body; all methods are safe to call from the job's
/// worker thread.
class JobContext {
 public:
  JobContext(JobId id, const CancelSource* cancel,
             std::chrono::steady_clock::time_point deadline, bool has_deadline)
      : id_(id),
        cancel_(cancel),
        deadline_(deadline),
        has_deadline_(has_deadline) {}

  [[nodiscard]] JobId id() const noexcept { return id_; }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_ != nullptr && cancel_->cancelled();
  }
  /// Throws wcm::simulation_error when the run has been cancelled.
  void check_cancelled() const;
  [[nodiscard]] bool deadline_exceeded() const noexcept {
    return has_deadline_ && std::chrono::steady_clock::now() > deadline_;
  }
  /// Throws wcm::simulation_error when past this job's deadline.
  void check_deadline() const;

 private:
  JobId id_;
  const CancelSource* cancel_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_;
};

struct RunOptions;
struct RunReport;

class JobGraph {
 public:
  /// Add a job; `opts.deps` must reference earlier-added jobs
  /// (contract-checked).  Returns the job's id (= insertion index).
  JobId add(std::function<void(JobContext&)> fn, JobOptions opts = {});

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

 private:
  friend struct RunState;
  friend RunReport run(const JobGraph& graph, const RunOptions& opts);
  struct Job {
    std::function<void(JobContext&)> fn;
    JobOptions opts;
  };
  std::vector<Job> jobs_;
};

struct RunOptions {
  u32 threads = 1;
  /// Cancel everything still queued as soon as one job fails.
  bool fail_fast = false;
  /// Isolate exhausted jobs as `quarantined` (dependents finish
  /// `skipped_quarantined`) instead of failing; unrelated jobs still run.
  /// Takes precedence over fail_fast for the quarantined jobs themselves.
  bool quarantine = false;
  /// Transient failures re-run up to retry.max_attempts times with
  /// deterministic backoff (stream = job id).  Default: never retry.
  RetryPolicy retry;
  /// Optional external cancellation handle (not owned; may be null).
  CancelSource* cancel = nullptr;
};

struct RunReport {
  std::vector<JobOutcome> outcomes;  ///< indexed by JobId

  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] std::size_t count(JobState state) const noexcept;
  /// Rethrow the failure of the lowest-id failed job (deterministic across
  /// thread counts); no-op when every job succeeded.
  void rethrow_first_error() const;
};

/// Execute the graph to completion on `opts.threads` workers and report
/// every job's outcome.  Never throws for job failures — inspect the
/// report (or use rethrow_first_error()).
[[nodiscard]] RunReport run(const JobGraph& graph, const RunOptions& opts);

/// Deterministic parallel map: results[i] = fn(i), computed on `threads`
/// workers, returned in index order.  The first failure (by index) is
/// rethrown after the queue drains (fail-fast cancels the remainder).
template <typename Fn>
auto parallel_map(std::size_t count, u32 threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  std::vector<Result> results(count);
  JobGraph graph;
  for (std::size_t i = 0; i < count; ++i) {
    graph.add([&results, &fn, i](JobContext&) { results[i] = fn(i); });
  }
  RunOptions opts;
  opts.threads = threads;
  opts.fail_fast = true;
  run(graph, opts).rethrow_first_error();
  return results;
}

}  // namespace wcm::runtime
