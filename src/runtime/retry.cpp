#include "runtime/retry.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace wcm::runtime {

bool is_transient(errc code) noexcept {
  switch (code) {
    case errc::io_failure:
    case errc::simulation_invariant:
      return true;
    case errc::contract_violation:
    case errc::invalid_config:
    case errc::parse_failure:
      return false;
  }
  return false;
}

double backoff_delay_seconds(const RetryPolicy& policy, u64 stream,
                             u32 failed_attempts) noexcept {
  if (failed_attempts == 0 || policy.base_delay_seconds <= 0.0) {
    return 0.0;
  }
  // 2^(attempt-1), saturating well before the double exponent range so a
  // pathological attempt count cannot overflow to inf.
  const u32 exponent = std::min(failed_attempts - 1, 60u);
  const double scaled =
      policy.base_delay_seconds * static_cast<double>(u64{1} << exponent);
  // Jitter in [0, 1): a pure function of (seed, stream, attempt).
  const u64 draw =
      fork_seed(fork_seed(policy.seed, stream), failed_attempts);
  const double jitter =
      static_cast<double>(draw >> 11) * 0x1.0p-53;  // 53 mantissa bits
  const double delay = scaled * (0.5 + 0.5 * jitter);
  return std::min(delay, policy.max_delay_seconds);
}

}  // namespace wcm::runtime
