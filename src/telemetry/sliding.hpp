#pragma once
// Sliding-window latency statistics + SLO burn rate, feeding the
// per-tenant gauges the wcmd daemon exports (docs/TELEMETRY.md).
//
// A cumulative histogram answers "p99 since boot", which goes stale the
// moment traffic changes; the serve layer wants "p99 over the last
// minute" and "how fast is this tenant burning its error budget".
// SlidingStats keeps the raw observations of the last `window_seconds`
// (bounded by `max_samples`, oldest evicted first) and summarizes them
// on demand:
//
//   * p50 / p99 by nearest-rank over the live window;
//   * burn rate = (fraction of observations over `slo_ms`) divided by
//     the error budget (1 - slo_target).  1.0 means the tenant is
//     consuming budget exactly as fast as the SLO allows; 10.0 means
//     ten times too fast (page); 0 means no violations in the window.
//
// Time is passed in explicitly (monotonic ns) so tests drive the window
// deterministically.

#include <vector>

#include "util/math.hpp"

namespace wcm::telemetry {

class SlidingStats {
 public:
  /// `slo_target` is the availability objective (default 99% of
  /// observations under `slo_ms`).  Throws wcm::contract_error on a
  /// non-positive window, a non-positive max_samples, or a target
  /// outside (0, 1).
  SlidingStats(double window_seconds, double slo_ms, double slo_target = 0.99,
               std::size_t max_samples = 4096);

  void observe(u64 now_ns, double value_ms);

  struct Summary {
    u64 count = 0;       ///< observations in the live window
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    u64 over_slo = 0;    ///< observations above slo_ms
    double burn_rate = 0.0;
  };

  /// Evict everything older than the window, then summarize what's left.
  [[nodiscard]] Summary summarize(u64 now_ns);

  [[nodiscard]] double slo_ms() const noexcept { return slo_ms_; }
  [[nodiscard]] double window_seconds() const noexcept {
    return window_seconds_;
  }

 private:
  void evict(u64 now_ns);

  double window_seconds_;
  double slo_ms_;
  double error_budget_;  ///< 1 - slo_target
  std::size_t max_samples_;
  struct Sample {
    u64 at_ns;
    double value_ms;
  };
  std::vector<Sample> samples_;  ///< ring in arrival order
  std::size_t head_ = 0;         ///< index of the oldest live sample
};

}  // namespace wcm::telemetry
