#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <ostream>
#include <sstream>

#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

/// Canonical instrument key: `name{k=v,...}` with labels sorted by key.
/// Doubles as the deterministic sort key for snapshot rows, so dumps are
/// byte-stable regardless of registration order or thread interleaving.
std::string instrument_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  key.push_back('{');
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      key.push_back(',');
    }
    key += labels[i].first;
    key.push_back('=');
    key += labels[i].second;
  }
  key.push_back('}');
  return key;
}

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

/// Render a double with enough digits to round-trip, but as "N" (no
/// trailing ".0") when it is integral — keeps text dumps readable and
/// JSON numbers strict.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<double> log_scale_bounds(double lo, double hi, u32 per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || per_decade == 0) {
    throw contract_error(
        "log_scale_bounds requires 0 < lo < hi and per_decade >= 1");
  }
  std::vector<double> bounds;
  const double lg_lo = std::log10(lo);
  for (u32 i = 0;; ++i) {
    const double bound = std::pow(10.0, lg_lo + static_cast<double>(i) /
                                                    per_decade);
    bounds.push_back(bound);
    if (bound >= hi) {
      break;
    }
  }
  return bounds;
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<u64>& buckets, double q) noexcept {
  u64 total = 0;
  for (const u64 n : buckets) {
    total += n;
  }
  if (total == 0 || bounds.empty()) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based; q=0 selects the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  u64 seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) < rank) {
      continue;
    }
    if (i >= bounds.size()) {
      return bounds.back();  // overflow bucket: clamp to the last bound
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const u64 before = seen - buckets[i];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw contract_error("histogram bucket bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::counter:
      return "counter";
    case MetricKind::gauge:
      return "gauge";
    case MetricKind::histogram:
      return "histogram";
  }
  return "counter";
}

namespace {

struct Instrument {
  std::string name;
  Labels labels;  // sorted
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  // Keyed by instrument_key(); std::map iteration order is the snapshot
  // row order, so dumps are deterministic by construction.
  std::map<std::string, Instrument> instruments;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter& Registry::counter(const std::string& name, Labels labels) {
  sort_labels(labels);
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->instruments.find(key);
  if (it == impl_->instruments.end()) {
    Instrument inst;
    inst.name = name;
    inst.labels = std::move(labels);
    inst.kind = MetricKind::counter;
    inst.counter = std::make_unique<Counter>();
    it = impl_->instruments.emplace(key, std::move(inst)).first;
  } else if (it->second.kind != MetricKind::counter) {
    throw contract_error("metric '" + key + "' already registered as " +
                         to_string(it->second.kind));
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  sort_labels(labels);
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->instruments.find(key);
  if (it == impl_->instruments.end()) {
    Instrument inst;
    inst.name = name;
    inst.labels = std::move(labels);
    inst.kind = MetricKind::gauge;
    inst.gauge = std::make_unique<Gauge>();
    it = impl_->instruments.emplace(key, std::move(inst)).first;
  } else if (it->second.kind != MetricKind::gauge) {
    throw contract_error("metric '" + key + "' already registered as " +
                         to_string(it->second.kind));
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name, Labels labels,
                               std::vector<double> bounds) {
  sort_labels(labels);
  const std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->instruments.find(key);
  if (it == impl_->instruments.end()) {
    Instrument inst;
    inst.name = name;
    inst.labels = std::move(labels);
    inst.kind = MetricKind::histogram;
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = impl_->instruments.emplace(key, std::move(inst)).first;
  } else if (it->second.kind != MetricKind::histogram) {
    throw contract_error("metric '" + key + "' already registered as " +
                         to_string(it->second.kind));
  } else if (it->second.histogram->bounds() != bounds) {
    throw contract_error("histogram '" + key +
                         "' re-registered with different bucket bounds");
  }
  return *it->second.histogram;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->instruments.clear();
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->instruments.size();
}

Snapshot Registry::snapshot() const {
  WCM_FAILPOINT("telemetry.registry.snapshot", simulation_error,
                "injected registry snapshot failure");
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    snap.rows.reserve(impl_->instruments.size());
    for (const auto& [key, inst] : impl_->instruments) {
      MetricRow row;
      row.name = inst.name;
      row.labels = inst.labels;
      row.kind = inst.kind;
      switch (inst.kind) {
        case MetricKind::counter:
          row.counter_value = inst.counter->value();
          break;
        case MetricKind::gauge:
          row.gauge_value = inst.gauge->value();
          break;
        case MetricKind::histogram:
          row.hist_count = inst.histogram->count();
          row.hist_sum = inst.histogram->sum();
          row.hist_bounds = inst.histogram->bounds();
          row.hist_buckets = inst.histogram->bucket_counts();
          break;
      }
      snap.rows.push_back(std::move(row));
    }
  }
  // Fold fired failpoints in as synthetic counters, so "failpoint trips"
  // show up next to the I/O byte counts they explain.  known() is sorted,
  // and the rows sort after any real metric of the same name prefix
  // anyway because the full set is re-sorted below.
  for (const std::string& name : failpoint::known()) {
    const u64 trips = failpoint::triggers(name);
    if (trips == 0) {
      continue;
    }
    MetricRow row;
    row.name = "failpoint.triggers";
    row.labels = {{"name", name}};
    row.kind = MetricKind::counter;
    row.counter_value = trips;
    snap.rows.push_back(std::move(row));
  }
  // Span-buffer overflow is tallied in the tracer (telemetry/span.cpp),
  // not through an instrument handle; surface it as a synthetic counter
  // so the daemon's metrics op reports trace degradation.
  if (const u64 dropped = dropped_spans(); dropped > 0) {
    MetricRow row;
    row.name = "telemetry.dropped_spans";
    row.kind = MetricKind::counter;
    row.counter_value = dropped;
    snap.rows.push_back(std::move(row));
  }
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return instrument_key(a.name, a.labels) <
                     instrument_key(b.name, b.labels);
            });
  return snap;
}

void Snapshot::write_text(std::ostream& os) const {
  for (const MetricRow& row : rows) {
    os << instrument_key(row.name, row.labels) << ' ';
    switch (row.kind) {
      case MetricKind::counter:
        os << row.counter_value;
        break;
      case MetricKind::gauge:
        os << format_number(row.gauge_value);
        break;
      case MetricKind::histogram: {
        os << "count=" << row.hist_count
           << " sum=" << format_number(row.hist_sum) << " buckets=[";
        for (std::size_t i = 0; i < row.hist_buckets.size(); ++i) {
          if (i > 0) {
            os << ',';
          }
          if (i < row.hist_bounds.size()) {
            os << "le" << format_number(row.hist_bounds[i]) << ':';
          } else {
            os << "le+inf:";
          }
          os << row.hist_buckets[i];
        }
        os << ']';
        break;
      }
    }
    os << '\n';
  }
}

void Snapshot::write_json(std::ostream& os) const {
  os << "{\"metrics\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const MetricRow& row = rows[r];
    if (r > 0) {
      os << ',';
    }
    os << "{\"name\":";
    write_json_string(os, row.name);
    os << ",\"labels\":{";
    for (std::size_t i = 0; i < row.labels.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      write_json_string(os, row.labels[i].first);
      os << ':';
      write_json_string(os, row.labels[i].second);
    }
    os << "},\"kind\":\"" << to_string(row.kind) << '"';
    switch (row.kind) {
      case MetricKind::counter:
        os << ",\"value\":" << row.counter_value;
        break;
      case MetricKind::gauge:
        os << ",\"value\":" << format_number(row.gauge_value);
        break;
      case MetricKind::histogram: {
        os << ",\"count\":" << row.hist_count
           << ",\"sum\":" << format_number(row.hist_sum) << ",\"buckets\":[";
        for (std::size_t i = 0; i < row.hist_buckets.size(); ++i) {
          if (i > 0) {
            os << ',';
          }
          os << "{\"le\":";
          if (i < row.hist_bounds.size()) {
            os << format_number(row.hist_bounds[i]);
          } else {
            os << "null";
          }
          os << ",\"count\":" << row.hist_buckets[i] << '}';
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "]}\n";
}

u64 Snapshot::counter_total(const std::string& name) const noexcept {
  u64 total = 0;
  for (const MetricRow& row : rows) {
    if (row.kind == MetricKind::counter && row.name == name) {
      total += row.counter_value;
    }
  }
  return total;
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace wcm::telemetry
