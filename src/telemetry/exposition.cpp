#include "telemetry/exposition.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace wcm::telemetry {

namespace {

/// Same rendering contract as the text/JSON writers: integral values
/// print as integers, everything else with round-trip precision.
std::string number_text(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Escape one label value per the exposition spec.
void write_label_value(std::ostream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

/// Render `{k="v",...}` (plus an optional trailing `le`), or nothing when
/// there are no labels at all.
void write_labels(std::ostream& os, const Labels& labels, const char* le_key,
                  const std::string& le_value) {
  if (labels.empty() && le_key == nullptr) {
    return;
  }
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << key << '=';
    write_label_value(os, value);
  }
  if (le_key != nullptr) {
    if (!first) {
      os << ',';
    }
    os << le_key << '=';
    write_label_value(os, le_value);
  }
  os << '}';
}

const char* type_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::counter:
      return "counter";
    case MetricKind::gauge:
      return "gauge";
    case MetricKind::histogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string prometheus_name(const std::string& name, MetricKind kind) {
  std::string out;
  out.reserve(name.size() + 6);
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  constexpr const char* suffix = "_total";
  const bool has_suffix =
      out.size() >= 6 && out.compare(out.size() - 6, 6, suffix) == 0;
  if (kind == MetricKind::counter && !has_suffix) {
    out += suffix;
  }
  return out;
}

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  std::string open_family;  // family whose # TYPE header is already out
  for (const MetricRow& row : snap.rows) {
    const std::string family = prometheus_name(row.name, row.kind);
    if (family != open_family) {
      os << "# TYPE " << family << ' ' << type_name(row.kind) << '\n';
      open_family = family;
    }
    switch (row.kind) {
      case MetricKind::counter:
        os << family;
        write_labels(os, row.labels, nullptr, "");
        os << ' ' << row.counter_value << '\n';
        break;
      case MetricKind::gauge:
        os << family;
        write_labels(os, row.labels, nullptr, "");
        os << ' ' << number_text(row.gauge_value) << '\n';
        break;
      case MetricKind::histogram: {
        u64 cumulative = 0;
        for (std::size_t i = 0; i < row.hist_buckets.size(); ++i) {
          cumulative += row.hist_buckets[i];
          const std::string le = i < row.hist_bounds.size()
                                     ? number_text(row.hist_bounds[i])
                                     : std::string("+Inf");
          os << family << "_bucket";
          write_labels(os, row.labels, "le", le);
          os << ' ' << cumulative << '\n';
        }
        os << family << "_sum";
        write_labels(os, row.labels, nullptr, "");
        os << ' ' << number_text(row.hist_sum) << '\n';
        os << family << "_count";
        write_labels(os, row.labels, nullptr, "");
        os << ' ' << row.hist_count << '\n';
        break;
      }
    }
  }
}

}  // namespace wcm::telemetry
