#include "telemetry/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/trace_context.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace wcm::telemetry {

namespace {

std::atomic<bool> g_tracing{false};

/// Per-thread event cap (satellite: a long-running daemon must degrade
/// its trace on overflow, never OOM) and the overflow tally behind
/// dropped_spans().
std::atomic<std::size_t> g_max_spans{std::size_t{1} << 20};
std::atomic<u64> g_dropped_spans{0};

// Spans read the library-wide clock (telemetry/stopwatch.hpp) so trace
// timestamps line up with every other reported duration.
[[nodiscard]] u64 now_ns() noexcept { return monotonic_ns(); }

}  // namespace

namespace detail {

/// One completed span.  The trace fields are zero / empty when the span
/// ran outside any TraceContext, and the export omits "args" for them.
struct Event {
  const char* name;
  u64 start_ns;
  u64 dur_ns;
  u32 depth;  ///< nesting level at entry (0 = top of this thread's stack)
  u64 seq;    ///< per-thread entry order — the deterministic sort key
  u64 trace_id = 0;        ///< correlation id of the owning request
  u64 span_id = 0;         ///< this span's own id
  u64 parent_span_id = 0;  ///< enclosing span (possibly on another thread)
  std::string tenant;      ///< the context's tenant, for per-tenant filters
};

/// Per-thread span storage.  `depth`/`next_seq` are touched only by the
/// owning thread; `events` is appended by the owner and drained by the
/// exporter, so it rides under `mu` (keeps TSan clean without putting an
/// atomic on the span hot path).
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  u32 depth = 0;
  u64 next_seq = 0;
  u64 registration_order = 0;
};

namespace {

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> buffers;  // outlive their threads
  u64 next_registration = 0;
  std::string path;
};

TraceState& trace_state() {
  static TraceState s;
  return s;
}

/// Registers the calling thread's buffer globally and keeps it alive past
/// thread exit (shared_ptr held by TraceState), so export after join is
/// safe.
thread_local std::shared_ptr<ThreadBuf> t_buf;

}  // namespace

ThreadBuf* thread_buf() {
  if (t_buf == nullptr) {
    t_buf = std::make_shared<ThreadBuf>();
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lock(s.mu);
    t_buf->registration_order = s.next_registration++;
    s.buffers.push_back(t_buf);
  }
  return t_buf.get();
}

void span_begin(ThreadBuf* buf, const char* /*name*/, u32& depth_out,
                u64& seq_out, u64& start_ns_out, u64& span_id_out,
                u64& parent_span_id_out) noexcept {
  depth_out = buf->depth++;
  seq_out = buf->next_seq++;
  // Become the current parent for nested spans (restored in span_end);
  // the ids cost one relaxed atomic and keep the causal tree linked even
  // across the thread hops a TraceContext makes.
  TraceContext& ctx = detail::mutable_trace_context();
  parent_span_id_out = ctx.span_id;
  span_id_out = next_span_id();
  ctx.span_id = span_id_out;
  start_ns_out = now_ns();
}

void span_end(ThreadBuf* buf, const char* name, u32 depth, u64 seq,
              u64 start_ns, u64 span_id, u64 parent_span_id) noexcept {
  const u64 end_ns = now_ns();
  buf->depth = depth;  // unwind even if inner spans leaked depth
  TraceContext& ctx = detail::mutable_trace_context();
  ctx.span_id = parent_span_id;
  Event event{name, start_ns, end_ns - start_ns, depth, seq};
  if (ctx.active()) {
    event.trace_id = ctx.trace_id;
    event.span_id = span_id;
    event.parent_span_id = parent_span_id;
    event.tenant = ctx.tenant;
  }
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= trace_max_spans()) {
    g_dropped_spans.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(std::move(event));
}

}  // namespace detail

bool tracing() noexcept { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

namespace {

struct ThreadView {
  u64 tid = 0;  ///< dense index, assigned deterministically
  std::vector<detail::Event> events;
};

/// Copy out every thread's events and assign dense thread-ids ordered by
/// (first event start, registration order) — OS thread ids never leak
/// into the export, so re-runs with different pool threads compare equal.
std::vector<ThreadView> collect_views() {
  detail::TraceState& s = detail::trace_state();
  std::vector<std::pair<u64, std::shared_ptr<detail::ThreadBuf>>> bufs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.buffers) {
      bufs.emplace_back(buf->registration_order, buf);
    }
  }
  std::vector<ThreadView> views;
  std::vector<std::pair<std::pair<u64, u64>, std::size_t>> order;
  for (const auto& [reg, buf] : bufs) {
    ThreadView view;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      view.events = buf->events;
    }
    if (view.events.empty()) {
      continue;
    }
    std::sort(view.events.begin(), view.events.end(),
              [](const detail::Event& a, const detail::Event& b) {
                return a.seq < b.seq;
              });
    order.push_back({{view.events.front().start_ns, reg}, views.size()});
    views.push_back(std::move(view));
  }
  std::sort(order.begin(), order.end());
  std::vector<ThreadView> sorted;
  sorted.reserve(views.size());
  for (const auto& [key, idx] : order) {
    views[idx].tid = sorted.size();
    sorted.push_back(std::move(views[idx]));
  }
  return sorted;
}

/// Print `ns` nanoseconds as a decimal microsecond literal (e.g. 1234 ->
/// "1.234") — exact, so strict-JSON parsing and golden comparisons never
/// see float rounding.
void write_us(std::ostream& os, u64 ns) {
  os << ns / 1000 << '.';
  const u64 frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

std::size_t trace_event_count() {
  detail::TraceState& s = detail::trace_state();
  std::vector<std::shared_ptr<detail::ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bufs = s.buffers;
  }
  std::size_t n = 0;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void set_trace_max_spans(std::size_t cap) noexcept {
  g_max_spans.store(cap == 0 ? 1 : cap, std::memory_order_relaxed);
}

std::size_t trace_max_spans() noexcept {
  return g_max_spans.load(std::memory_order_relaxed);
}

u64 dropped_spans() noexcept {
  return g_dropped_spans.load(std::memory_order_relaxed);
}

void reset_trace() {
  detail::TraceState& s = detail::trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  g_dropped_spans.store(0, std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& os) {
  WCM_FAILPOINT("telemetry.export.write", io_error,
                "injected trace export failure");
  const std::vector<ThreadView> views = collect_views();
  u64 t0 = ~u64{0};
  for (const ThreadView& view : views) {
    for (const detail::Event& e : view.events) {
      t0 = std::min(t0, e.start_ns);
    }
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadView& view : views) {
    for (const detail::Event& e : view.events) {
      if (!first) {
        os << ',';
      }
      first = false;
      os << "{\"name\":\"" << e.name
         << "\",\"cat\":\"wcm\",\"ph\":\"X\",\"pid\":0,\"tid\":" << view.tid
         << ",\"ts\":";
      write_us(os, e.start_ns - t0);
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
      if (e.trace_id != 0) {
        // The causal tree: every span of one request carries that
        // request's trace_id, whatever thread recorded it.  Keys sorted
        // so exports stay canonical.
        os << ",\"args\":{\"parent_span_id\":\"" << trace_hex(e.parent_span_id)
           << "\",\"span_id\":\"" << trace_hex(e.span_id) << "\",\"tenant\":";
        json::write_string(os, e.tenant);
        os << ",\"trace_id\":\"" << trace_hex(e.trace_id) << "\"}";
      }
      os << '}';
    }
  }
  os << "]}\n";
  if (!os) {
    throw io_error("trace export stream failed");
  }
}

void write_flamegraph(std::ostream& os) {
  const std::vector<ThreadView> views = collect_views();
  struct PathStats {
    u64 count = 0;
    u64 total_ns = 0;
  };
  std::map<std::string, PathStats> paths;
  for (const ThreadView& view : views) {
    // Events are in entry (seq) order; `depth` reconstructs the stack.
    std::vector<const char*> stack;
    for (const detail::Event& e : view.events) {
      stack.resize(e.depth);
      stack.push_back(e.name);
      std::string path;
      for (const char* frame : stack) {
        if (!path.empty()) {
          path.push_back(';');
        }
        path += frame;
      }
      PathStats& ps = paths[path];
      ps.count += 1;
      ps.total_ns += e.dur_ns;
    }
  }
  for (const auto& [path, ps] : paths) {
    os << path << "  count=" << ps.count << "  total_us=";
    write_us(os, ps.total_ns);
    os << '\n';
  }
}

void set_trace_path(std::string path) {
  detail::TraceState& s = detail::trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = std::move(path);
}

std::string trace_path() {
  detail::TraceState& s = detail::trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

void configure_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* trace_out = std::getenv("WCM_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    set_trace_path(trace_out);
    set_tracing(true);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe.
  const char* metrics_on = std::getenv("WCM_TELEMETRY");
  if (metrics_on != nullptr && metrics_on[0] != '\0') {
    set_enabled(true);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe.
  const char* max_spans = std::getenv("WCM_TRACE_MAX_SPANS");
  if (max_spans != nullptr && max_spans[0] != '\0') {
    char* end = nullptr;
    const unsigned long long cap = std::strtoull(max_spans, &end, 10);
    if (end != max_spans && *end == '\0') {
      set_trace_max_spans(static_cast<std::size_t>(cap));
    }
  }
}

bool flush_trace(std::ostream* warn) noexcept {
  const std::string path = trace_path();
  if (path.empty()) {
    return true;  // nothing requested
  }
  set_trace_path("");  // one flush per configuration
  try {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      throw io_error("cannot open trace output", path);
    }
    write_chrome_trace(out);
    out.close();
    if (!out) {
      throw io_error("trace write failed", path);
    }
    return true;
  } catch (const std::exception& e) {
    if (warn != nullptr) {
      *warn << "warning: telemetry: trace export failed: " << e.what()
            << " (run continues)\n";
    }
    return false;
  }
}

}  // namespace wcm::telemetry
