#pragma once
// Structured JSONL event log: one strict-JSON object per line, carrying
// the same correlation ids as the span tracer, so a request can be
// followed through admission, batching, execution, and response without
// loading a full Chrome trace (docs/TELEMETRY.md "Request tracing").
//
// Each line is rendered through util/json (sorted keys, strict syntax),
// so `util/json`-based consumers — and the obs_ci gate — can parse every
// line back.  Alongside the caller's fields, emit() attaches:
//
//   "event"    the event name (the caller's first argument)
//   "ts_ns"    monotonic timestamp (volatile, like trace timestamps)
//   "trace_id"/"span_id"/"tenant"  from the calling thread's
//              TraceContext, when one is active
//
// Failure contract (the fault-injection satellite): a failed write —
// including the "telemetry.eventlog.write" failpoint — increments
// dropped() and the `telemetry.eventlog.dropped` counter and otherwise
// disappears; emit() never throws, so a dying event log can never cost a
// response.  The log is disabled (zero-cost boolean check) until a path
// is set via set_path(), WCM_EVENTLOG, or the daemon's --eventlog flag.

#include <string>

#include "util/json.hpp"
#include "util/math.hpp"

namespace wcm::telemetry::eventlog {

/// Open (append) the JSONL sink at `path`; an empty path closes and
/// disables the log.  A path that cannot be opened counts every
/// subsequent emit() as dropped.
void set_path(const std::string& path);
[[nodiscard]] std::string path();

/// True iff a sink path is configured (emit() is a no-op otherwise).
[[nodiscard]] bool log_enabled() noexcept;

/// Apply WCM_EVENTLOG=<path>.  Idempotent, called from CLI main()s.
void configure_from_env();

/// Append one event line.  `fields` must not use the reserved keys
/// (event, ts_ns, trace_id, span_id, tenant) — reserved keys win.
/// Never throws; failures increment dropped().
void emit(const char* event, json::Object fields) noexcept;

/// Lines lost to write failures since the last reset_for_tests().
[[nodiscard]] u64 dropped() noexcept;

/// Close the sink, clear the path, and zero the dropped tally.
void reset_for_tests();

}  // namespace wcm::telemetry::eventlog
