#include "telemetry/eventlog.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "telemetry/registry.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/trace_context.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::telemetry::eventlog {

namespace {

struct LogState {
  std::mutex mu;
  std::string path;
  std::ofstream out;
};

LogState& log_state() {
  static LogState s;
  return s;
}

/// Fast-path guard so a disabled log costs one relaxed load per emit().
std::atomic<bool> g_enabled{false};
std::atomic<u64> g_dropped{0};

void count_dropped() noexcept {
  g_dropped.fetch_add(1, std::memory_order_relaxed);
  try {
    if (telemetry::enabled()) {
      registry().counter("telemetry.eventlog.dropped").add();
    }
  } catch (...) {  // a dying counter must not escalate a dropped line
  }
}

}  // namespace

void set_path(const std::string& path) {
  LogState& s = log_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) {
    s.out.close();
  }
  s.path = path;
  if (!path.empty()) {
    s.out.clear();
    s.out.open(path, std::ios::binary | std::ios::app);
  }
  g_enabled.store(!path.empty(), std::memory_order_relaxed);
}

std::string path() {
  LogState& s = log_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

bool log_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void configure_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe.
  const char* path = std::getenv("WCM_EVENTLOG");
  if (path != nullptr && path[0] != '\0') {
    set_path(path);
  }
}

void emit(const char* event, json::Object fields) noexcept {
  if (!log_enabled()) {
    return;
  }
  try {
    const TraceContext& ctx = current_trace_context();
    fields.insert_or_assign("event", json::Value(std::string(event)));
    fields.insert_or_assign(
        "ts_ns", json::Value(static_cast<double>(monotonic_ns())));
    if (ctx.active()) {
      fields.insert_or_assign("trace_id",
                              json::Value(trace_hex(ctx.trace_id)));
      fields.insert_or_assign("span_id", json::Value(trace_hex(ctx.span_id)));
      fields.insert_or_assign("tenant", json::Value(ctx.tenant));
    }
    const std::string line = json::to_text(json::Value(std::move(fields)));
    LogState& s = log_state();
    std::lock_guard<std::mutex> lock(s.mu);
    WCM_FAILPOINT("telemetry.eventlog.write", io_error,
                  "injected event-log write failure");
    if (!s.out.is_open()) {
      throw io_error("event log is not open", s.path);
    }
    s.out << line << '\n';
    s.out.flush();
    if (!s.out) {
      s.out.clear();  // keep the stream usable for the next attempt
      throw io_error("event log write failed", s.path);
    }
    if (telemetry::enabled()) {
      registry().counter("telemetry.eventlog.lines").add();
    }
  } catch (...) {
    // The degrade contract: a failed event-log write becomes a counter
    // bump, never a lost response or a thrown exception.
    count_dropped();
  }
}

u64 dropped() noexcept { return g_dropped.load(std::memory_order_relaxed); }

void reset_for_tests() {
  set_path("");
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace wcm::telemetry::eventlog
