#include "telemetry/sliding.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wcm::telemetry {

SlidingStats::SlidingStats(double window_seconds, double slo_ms,
                           double slo_target, std::size_t max_samples)
    : window_seconds_(window_seconds),
      slo_ms_(slo_ms),
      error_budget_(1.0 - slo_target),
      max_samples_(max_samples) {
  if (!(window_seconds > 0.0)) {
    throw contract_error("SlidingStats window must be positive");
  }
  if (!(slo_ms > 0.0)) {
    throw contract_error("SlidingStats slo_ms must be positive");
  }
  if (!(slo_target > 0.0) || !(slo_target < 1.0)) {
    throw contract_error("SlidingStats slo_target must be in (0, 1)");
  }
  if (max_samples == 0) {
    throw contract_error("SlidingStats max_samples must be >= 1");
  }
}

void SlidingStats::evict(u64 now_ns) {
  const u64 window_ns = static_cast<u64>(window_seconds_ * 1e9);
  const u64 horizon = now_ns >= window_ns ? now_ns - window_ns : 0;
  while (head_ < samples_.size() && samples_[head_].at_ns < horizon) {
    ++head_;
  }
  // Compact once the dead prefix dominates, keeping appends amortized
  // O(1) without a deque's per-block allocation.
  if (head_ > 1024 && head_ * 2 > samples_.size()) {
    samples_.erase(samples_.begin(),
                   samples_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void SlidingStats::observe(u64 now_ns, double value_ms) {
  evict(now_ns);
  if (samples_.size() - head_ >= max_samples_) {
    ++head_;  // bounded memory beats a perfect window under overload
  }
  samples_.push_back(Sample{now_ns, value_ms});
}

SlidingStats::Summary SlidingStats::summarize(u64 now_ns) {
  evict(now_ns);
  Summary out;
  const std::size_t n = samples_.size() - head_;
  if (n == 0) {
    return out;
  }
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = head_; i < samples_.size(); ++i) {
    values.push_back(samples_[i].value_ms);
    if (samples_[i].value_ms > slo_ms_) {
      ++out.over_slo;
    }
  }
  std::sort(values.begin(), values.end());
  const auto rank = [n](double q) {
    const auto r = static_cast<std::size_t>(q * static_cast<double>(n - 1));
    return std::min(r, n - 1);
  };
  out.count = n;
  out.p50_ms = values[rank(0.50)];
  out.p99_ms = values[rank(0.99)];
  const double violation_rate =
      static_cast<double>(out.over_slo) / static_cast<double>(n);
  out.burn_rate = violation_rate / error_budget_;
  return out;
}

}  // namespace wcm::telemetry
