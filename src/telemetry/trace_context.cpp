#include "telemetry/trace_context.hpp"

#include <atomic>
#include <utility>

namespace wcm::telemetry {

namespace {

std::atomic<u64> g_next_trace_id{1};
std::atomic<u64> g_next_span_id{1};

thread_local TraceContext t_context;

[[nodiscard]] int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

const TraceContext& current_trace_context() noexcept { return t_context; }

u64 next_trace_id() noexcept {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

u64 next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::string trace_hex(u64 v) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool parse_trace_hex(const std::string& text, u64& out) noexcept {
  std::size_t start = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    start = 2;
  }
  const std::size_t len = text.size() - start;
  if (len == 0 || len > 16) {
    return false;
  }
  u64 value = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    const int d = hex_digit(text[i]);
    if (d < 0) {
      return false;
    }
    value = (value << 4) | static_cast<u64>(d);
  }
  out = value;
  return true;
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) noexcept
    : saved_(std::move(t_context)) {
  t_context = std::move(ctx);
}

ScopedTraceContext::~ScopedTraceContext() { t_context = std::move(saved_); }

namespace detail {
TraceContext& mutable_trace_context() noexcept { return t_context; }
}  // namespace detail

}  // namespace wcm::telemetry
