#pragma once
// The library's one wall-clock source.  Everything that reports elapsed
// time — the campaign runtime's wall_seconds, the bench harnesses'
// sweep timings, the span tracer's export — derives from the same
// steady_clock read so numbers from different layers are comparable.
// (Satellite: bench/fig4/fig5 previously each rolled their own timing.)

#include <chrono>
#include <cstdint>

namespace wcm::telemetry {

/// Monotonic nanoseconds since an arbitrary epoch.
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Elapsed-time reader started at construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_ns_(monotonic_ns()) {}

  void restart() noexcept { start_ns_ = monotonic_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return monotonic_ns() - start_ns_;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace wcm::telemetry
