#pragma once
// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with labels, shared by the simulator kernels, the campaign runtime, and
// the workload I/O layer (docs/TELEMETRY.md catalogues every metric).
//
// Design constraints, in order:
//   1. Zero measurable cost when telemetry is off (the default).  Every
//      instrumented site guards on telemetry::enabled() — one relaxed
//      atomic load — before touching the registry, and the acceptance
//      microbenchmarks (bench/microbench.cpp BM_Telemetry*) pin the
//      disabled overhead.
//   2. Lock-free-enough updates when on: instrument handles are stable
//      references whose hot-path mutation is a relaxed atomic add;
//      the registry mutex is taken only to *create* an instrument.
//   3. Deterministic output: snapshots order rows by (name, sorted label
//      string), so byte comparisons of metric dumps do not depend on
//      registration order or on WCM_THREADS (tests/test_telemetry_metrics
//      asserts this; satellite "deterministic under WCM_THREADS>1").
//
// Snapshots render as a greppable text table (`name{k=v,...} value`) and
// as strict JSON that round-trips through util/json's parser.

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/math.hpp"

namespace wcm::telemetry {

/// Master switch for metric collection.  Off by default; every
/// instrumentation site checks this before doing any work.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Label set of one instrument instance, e.g. {{"engine","pairwise"},
/// {"round","merge round 1"}}.  Keys are sorted on registration, so the
/// same set in any order addresses the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] u64 value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written (or accumulated) instantaneous value, e.g. a queue depth.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Geometrically spaced histogram bounds: `per_decade` bounds per power
/// of ten, starting at `lo`, extended until `hi` is covered (the last
/// bound is >= hi).  This is how latency histograms stay meaningful
/// across five orders of magnitude — `serve.latency_ms` resolves a
/// 0.05 ms cache hit and a multi-second campaign from the same
/// instrument.  Throws wcm::contract_error unless 0 < lo < hi and
/// per_decade >= 1.
[[nodiscard]] std::vector<double> log_scale_bounds(double lo, double hi,
                                                   u32 per_decade);

/// Estimate the q-quantile (0 <= q <= 1) of a bucketed distribution by
/// linear interpolation inside the selected bucket; `bounds` and
/// `buckets` follow the Histogram layout (buckets has one extra overflow
/// slot).  Returns 0 when the histogram is empty; an overflow-bucket hit
/// clamps to the last finite bound.
[[nodiscard]] double bucket_quantile(const std::vector<double>& bounds,
                                     const std::vector<u64>& buckets,
                                     double q) noexcept;

/// Bucketed histogram: `bounds` are inclusive upper bounds, plus an
/// implicit +inf overflow bucket.  Bounds may be any sorted sequence —
/// use log_scale_bounds() for wide-dynamic-range latencies.  Observation
/// is two relaxed adds and a CAS-accumulated sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] u64 count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; index bounds().size() is the overflow bucket.
  [[nodiscard]] std::vector<u64> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<u64>[]> buckets_;
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { counter, gauge, histogram };

[[nodiscard]] const char* to_string(MetricKind kind) noexcept;

/// One rendered metric in a snapshot.
struct MetricRow {
  std::string name;
  Labels labels;  ///< sorted by key
  MetricKind kind = MetricKind::counter;
  u64 counter_value = 0;      ///< counter only
  double gauge_value = 0.0;   ///< gauge only
  u64 hist_count = 0;         ///< histogram only
  double hist_sum = 0.0;      ///< histogram only
  std::vector<double> hist_bounds;
  std::vector<u64> hist_buckets;  ///< bounds.size()+1 entries
};

/// Deterministic point-in-time view of a registry: rows sorted by
/// (name, serialized labels), independent of registration order and of
/// which worker thread bumped what.
struct Snapshot {
  std::vector<MetricRow> rows;

  /// `name{k=v,...} value` per line (histograms add count/sum/buckets).
  void write_text(std::ostream& os) const;
  /// Strict JSON: {"metrics":[{"name":...,"labels":{...},"kind":...}]},
  /// parseable by util/json (tests round-trip it).
  void write_json(std::ostream& os) const;

  /// Sum of every counter row named `name`, over all label sets (the
  /// cross-check tests reconcile these sums against KernelStats totals).
  [[nodiscard]] u64 counter_total(const std::string& name) const noexcept;
};

/// Instrument store.  counter()/gauge()/histogram() return stable
/// references that remain valid until reset(); looking up an existing name
/// with a different kind (or a histogram with different bounds) throws
/// wcm::contract_error.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, Labels labels = {});
  [[nodiscard]] Histogram& histogram(const std::string& name, Labels labels,
                                     std::vector<double> bounds);

  /// Drop every instrument (outstanding references dangle; callers must
  /// not cache handles across reset — instrumented sites re-look-up).
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// Render every instrument, plus one synthetic
  /// `failpoint.triggers{name=...}` counter row per fired failpoint (the
  /// workload-I/O "failpoint trips" metric).  Evaluates the
  /// "telemetry.registry.snapshot" failpoint.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide registry every instrumented site feeds.
[[nodiscard]] Registry& registry();

}  // namespace wcm::telemetry
