#pragma once
// Request-scoped trace context: the correlation triple (trace_id, parent
// span_id, tenant) that the wcmd daemon threads from the wire protocol
// through batching, scheduler jobs, and down to kernel-round spans, so
// one Chrome-trace export shows a request's full causal tree across
// threads (docs/TELEMETRY.md "Request tracing").
//
// The context is a thread-local value installed with ScopedTraceContext
// (RAII save/restore, so nesting and retry re-entry are safe).  Span
// (telemetry/span.hpp) reads it on entry: every span recorded while a
// context is active carries the context's trace_id and tenant, gets a
// fresh span_id, and records the enclosing span's id as its parent —
// crossing threads whenever the context is re-installed on a worker
// (runtime::JobOptions::trace).
//
// Ids are process-unique and never 0 (0 means "absent"); they are
// volatile like timestamps, so golden tests normalize them by order of
// first appearance rather than by value.

#include <string>

#include "util/math.hpp"

namespace wcm::telemetry {

/// The correlation triple.  trace_id == 0 means no active trace.
struct TraceContext {
  u64 trace_id = 0;
  u64 span_id = 0;  ///< id of the enclosing span (parent for new spans)
  std::string tenant;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// The calling thread's current context ({} when none is installed).
[[nodiscard]] const TraceContext& current_trace_context() noexcept;

/// Fresh process-unique ids; never 0.
[[nodiscard]] u64 next_trace_id() noexcept;
[[nodiscard]] u64 next_span_id() noexcept;

/// Wire rendering of an id: 16 lowercase hex digits, zero-padded (the
/// trace-field format of docs/SERVE.md).
[[nodiscard]] std::string trace_hex(u64 v);

/// Parse a wire id: 1..16 hex digits, optional "0x" prefix.  Returns
/// false (out untouched) on anything else — a corrupt trace field must
/// degrade to "no context", never to a refused request.
[[nodiscard]] bool parse_trace_hex(const std::string& text,
                                   u64& out) noexcept;

/// Install `ctx` as the calling thread's context for the current scope.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

namespace detail {
/// Mutable access for Span, which installs itself as the current parent
/// for the duration of its scope.  Not part of the public API.
[[nodiscard]] TraceContext& mutable_trace_context() noexcept;
}  // namespace detail

}  // namespace wcm::telemetry
