#pragma once
// Prometheus text exposition (format 0.0.4) of a metrics Snapshot — the
// scrape surface of the wcmd daemon: the `metrics` op serves it with
// params {"format":"prometheus"}, and `wcmgen metrics
// --format=prometheus` prints it for piping into node_exporter-style
// collectors (docs/TELEMETRY.md "Exposition formats").
//
// Mapping rules, chosen so the output validates under promtool:
//   * names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots/dashes ->
//     underscores) and counters gain the conventional `_total` suffix;
//   * one `# TYPE` header per metric family, families in sorted order
//     (snapshots are already deterministically sorted, so the exposition
//     inherits the byte-stability of write_text/write_json);
//   * histograms render as cumulative `_bucket{le="..."}` series plus
//     `_sum` and `_count`, with the implicit overflow bucket as
//     `le="+Inf"`;
//   * label values are escaped per the exposition spec (backslash,
//     double-quote, newline).

#include <iosfwd>
#include <string>

#include "telemetry/registry.hpp"

namespace wcm::telemetry {

/// Sanitized exposition name of one metric family: invalid characters
/// become '_', a leading digit gains a '_' prefix, and counters are
/// suffixed `_total` (idempotently).
[[nodiscard]] std::string prometheus_name(const std::string& name,
                                          MetricKind kind);

/// Render the snapshot in the Prometheus text exposition format.
void write_prometheus(std::ostream& os, const Snapshot& snap);

}  // namespace wcm::telemetry
