#pragma once
// Span tracer: RAII `WCM_SPAN("phase")` scopes with nesting and
// thread-ids, buffered per-thread and exported as Chrome trace-event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev) or as a
// compact text flamegraph.  docs/TELEMETRY.md documents the span-naming
// conventions and the Perfetto workflow.
//
// Tracing is off by default; a Span constructed while tracing is off does
// nothing but read one relaxed atomic, which is what keeps the
// instrumentation sweep free (bench/microbench.cpp BM_TelemetrySpan*
// pins the disabled cost).  Enable with set_tracing(true), the
// `--telemetry <path>` wcmgen flag, or `WCM_TRACE_OUT=<path>` in the
// environment (configure_from_env()).
//
// Determinism: exported thread-ids are NOT OS thread ids — threads are
// renumbered densely (0, 1, ...) ordered by (first event start time,
// registration order), and events within a thread are ordered by a
// per-thread sequence number, so two runs that do the same work in the
// same per-thread order export byte-identical traces modulo timestamps
// (and golden tests can compare structure without flaking under
// WCM_THREADS>1).
//
// Request tracing (docs/TELEMETRY.md): a span recorded while a
// TraceContext is active (telemetry/trace_context.hpp) carries the
// context's trace_id and tenant, a fresh span_id, and its parent span's
// id — exported as the event's "args" object — so every span of one wcmd
// request shares that request's trace_id across threads.  Spans recorded
// with no context export exactly as before (no "args").
//
// Buffers are bounded: each thread keeps at most trace_max_spans()
// events (WCM_TRACE_MAX_SPANS, default 2^20); overflow drops the event
// and bumps dropped_spans(), surfaced as the `telemetry.dropped_spans`
// counter — a long-running daemon degrades its trace, never its memory.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "util/math.hpp"

namespace wcm::telemetry {

/// Master switch for span recording (independent of metrics `enabled()`).
[[nodiscard]] bool tracing() noexcept;
void set_tracing(bool on) noexcept;

namespace detail {

struct ThreadBuf;

/// The calling thread's span buffer, creating and registering it on first
/// use.  Exposed for Span; not part of the public API.
[[nodiscard]] ThreadBuf* thread_buf();

void span_begin(ThreadBuf* buf, const char* name, u32& depth_out,
                u64& seq_out, u64& start_ns_out, u64& span_id_out,
                u64& parent_span_id_out) noexcept;
void span_end(ThreadBuf* buf, const char* name, u32 depth, u64 seq,
              u64 start_ns, u64 span_id, u64 parent_span_id) noexcept;

}  // namespace detail

/// One traced scope.  Constructed cheaply when tracing is off; when on,
/// records {name, thread, depth, start, duration} at destruction.
/// `name` must outlive the span (string literals only — WCM_SPAN enforces
/// this by construction).
class Span {
 public:
  explicit Span(const char* name) noexcept : name_(name) {
    if (tracing()) {
      buf_ = detail::thread_buf();
      detail::span_begin(buf_, name_, depth_, seq_, start_ns_, span_id_,
                         parent_span_id_);
    }
  }
  ~Span() {
    if (buf_ != nullptr) {
      detail::span_end(buf_, name_, depth_, seq_, start_ns_, span_id_,
                       parent_span_id_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  detail::ThreadBuf* buf_ = nullptr;  // non-null iff recording
  u32 depth_ = 0;
  u64 seq_ = 0;
  u64 start_ns_ = 0;
  u64 span_id_ = 0;
  u64 parent_span_id_ = 0;
};

/// Number of completed span events buffered across all threads.
[[nodiscard]] std::size_t trace_event_count();

/// Per-thread cap on buffered span events (default 2^20, or
/// WCM_TRACE_MAX_SPANS via configure_from_env()).  A cap of 0 is treated
/// as 1: the buffer must be able to hold at least one event.
void set_trace_max_spans(std::size_t cap) noexcept;
[[nodiscard]] std::size_t trace_max_spans() noexcept;

/// Span events dropped on buffer overflow since the last reset_trace()
/// (exported as the `telemetry.dropped_spans` counter in snapshots).
[[nodiscard]] u64 dropped_spans() noexcept;

/// Drop every buffered event (and the dropped-span tally) and forget
/// dead threads' buffers.
void reset_trace();

/// Export the buffered spans as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`, strict JSON, microsecond timestamps relative
/// to the earliest event).  Evaluates the "telemetry.export.write"
/// failpoint.
void write_chrome_trace(std::ostream& os);

/// Export the buffered spans as a text flamegraph: one line per distinct
/// call path (`a;b;c  count=N  total_us=T`), sorted by path.
void write_flamegraph(std::ostream& os);

/// Destination for flush_trace(); set by `--telemetry <path>` or
/// WCM_TRACE_OUT.  Empty = no export.
void set_trace_path(std::string path);
[[nodiscard]] std::string trace_path();

/// Apply WCM_TRACE_OUT (enables tracing, sets the path), WCM_TELEMETRY
/// (any non-empty value enables the metrics registry), and
/// WCM_TRACE_MAX_SPANS (per-thread buffer cap; non-numeric values are
/// ignored).  Called once from CLI main()s; idempotent.
void configure_from_env();

/// Write the Chrome trace to trace_path() if tracing produced events.
/// Never throws: on export failure, prints a warning to `*warn` (if
/// non-null) and returns false — a failed trace export must not fail the
/// run it observed (satellite: degrade gracefully, exit 0).  Clears the
/// path afterwards so a second flush is a no-op.
bool flush_trace(std::ostream* warn) noexcept;

}  // namespace wcm::telemetry

#define WCM_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define WCM_TELEMETRY_CONCAT(a, b) WCM_TELEMETRY_CONCAT_IMPL(a, b)

/// Trace the enclosing scope as a span named `name` (string literal).
#define WCM_SPAN(name)                                      \
  const ::wcm::telemetry::Span WCM_TELEMETRY_CONCAT(        \
      wcm_span_, __COUNTER__) {                             \
    name                                                    \
  }
