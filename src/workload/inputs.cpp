#include "workload/inputs.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wcm::workload {

const char* to_string(InputKind kind) noexcept {
  switch (kind) {
    case InputKind::random:
      return "random";
    case InputKind::sorted:
      return "sorted";
    case InputKind::reversed:
      return "reversed";
    case InputKind::nearly_sorted:
      return "nearly-sorted";
    case InputKind::worst_case:
      return "worst-case";
  }
  return "?";
}

std::vector<word> random_permutation(std::size_t n, u64 seed) {
  std::vector<word> v(n);
  std::iota(v.begin(), v.end(), word{0});
  Xoshiro256 rng(seed);
  shuffle(v, rng);
  return v;
}

std::vector<word> sorted_input(std::size_t n) {
  std::vector<word> v(n);
  std::iota(v.begin(), v.end(), word{0});
  return v;
}

std::vector<word> reversed_input(std::size_t n) {
  std::vector<word> v(n);
  std::iota(v.rbegin(), v.rend(), word{0});
  return v;
}

std::vector<word> nearly_sorted_input(std::size_t n, std::size_t swaps,
                                      u64 seed) {
  std::vector<word> v = sorted_input(n);
  if (n < 2) {
    return v;
  }
  Xoshiro256 rng(seed);
  for (std::size_t k = 0; k < swaps; ++k) {
    const auto i = static_cast<std::size_t>(rng.below(n));
    const auto j = static_cast<std::size_t>(rng.below(n));
    std::swap(v[i], v[j]);
  }
  return v;
}

std::vector<word> make_input(InputKind kind, std::size_t n,
                             const sort::SortConfig& cfg, u64 seed) {
  switch (kind) {
    case InputKind::random:
      return random_permutation(n, seed);
    case InputKind::sorted:
      return sorted_input(n);
    case InputKind::reversed:
      return reversed_input(n);
    case InputKind::nearly_sorted:
      return nearly_sorted_input(n, n / 100 + 1, seed);
    case InputKind::worst_case: {
      // Shuffle the base tiles (invisible to every attacked round) so the
      // block sort behaves like it does on random data; the plain
      // ascending-tile variant is strictly gentler on the victim and is
      // covered by the ablation bench.
      core::AttackOptions opts;
      opts.tile_shuffle_seed = seed;
      return core::worst_case_input(n, cfg, opts);
    }
  }
  WCM_EXPECTS(false, "unknown input kind");
  return {};
}

bool is_permutation_of_iota(const std::vector<word>& v) {
  std::vector<bool> seen(v.size(), false);
  for (const word x : v) {
    if (x < 0 || static_cast<std::size_t>(x) >= v.size() ||
        seen[static_cast<std::size_t>(x)]) {
      return false;
    }
    seen[static_cast<std::size_t>(x)] = true;
  }
  return true;
}

}  // namespace wcm::workload
