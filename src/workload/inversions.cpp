#include "workload/inversions.hpp"

#include <vector>

namespace wcm::workload {

namespace {

// Bottom-up merge counting crossings: when an element of the right run is
// emitted before remaining elements of the left run, each remaining left
// element forms an inversion with it.
u64 merge_count(std::vector<dmm::word>& data, std::vector<dmm::word>& buffer) {
  const std::size_t n = data.size();
  u64 inversions = 0;
  for (std::size_t run = 1; run < n; run *= 2) {
    for (std::size_t lo = 0; lo + run < n; lo += 2 * run) {
      const std::size_t mid = lo + run;
      const std::size_t hi = std::min(lo + 2 * run, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (data[i] <= data[j]) {
          buffer[k++] = data[i++];
        } else {
          inversions += mid - i;
          buffer[k++] = data[j++];
        }
      }
      while (i < mid) {
        buffer[k++] = data[i++];
      }
      while (j < hi) {
        buffer[k++] = data[j++];
      }
      std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(lo),
                buffer.begin() + static_cast<std::ptrdiff_t>(hi),
                data.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

}  // namespace

u64 count_inversions(std::span<const dmm::word> v) {
  std::vector<dmm::word> data(v.begin(), v.end());
  std::vector<dmm::word> buffer(data.size());
  return merge_count(data, buffer);
}

double inversion_fraction(std::span<const dmm::word> v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double max_inv = static_cast<double>(v.size()) *
                         (static_cast<double>(v.size()) - 1.0) / 2.0;
  return static_cast<double>(count_inversions(v)) / max_inv;
}

}  // namespace wcm::workload
