#pragma once
// Inversion counting.  Karsin et al. (2018) observed that the merge sort's
// bank conflicts grow with the number of inversions in the input; this
// metric lets the benches quantify that correlation and place the
// constructed worst-case input on the inversion spectrum.

#include <span>

#include "dmm/machine.hpp"
#include "util/math.hpp"

namespace wcm::workload {

/// Number of pairs (i, j) with i < j and v[i] > v[j].  O(n log n)
/// merge-based counting; at most n(n-1)/2.
[[nodiscard]] u64 count_inversions(std::span<const dmm::word> v);

/// Inversions as a fraction of the maximum n(n-1)/2 (0 = sorted,
/// 1 = reversed, ~0.5 = random).
[[nodiscard]] double inversion_fraction(std::span<const dmm::word> v);

}  // namespace wcm::workload
