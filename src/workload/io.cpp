#include "workload/io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>

#include "util/check.hpp"

namespace wcm::workload {

namespace {
constexpr char kMagic[4] = {'W', 'C', 'M', 'I'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WCM_EXPECTS(static_cast<bool>(is), "truncated WCMI file");
  return v;
}
}  // namespace

void write_binary(const std::filesystem::path& path,
                  const std::vector<word>& keys) {
  std::ofstream os(path, std::ios::binary);
  WCM_EXPECTS(os.is_open(), "cannot open output file");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(keys.size()));
  for (const word k : keys) {
    WCM_EXPECTS(k >= std::numeric_limits<std::int32_t>::min() &&
                    k <= std::numeric_limits<std::int32_t>::max(),
                "key does not fit in int32");
    write_pod(os, static_cast<std::int32_t>(k));
  }
  WCM_ENSURES(static_cast<bool>(os), "write failed");
}

std::vector<word> read_binary(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  WCM_EXPECTS(is.is_open(), "cannot open input file");
  char magic[4];
  is.read(magic, sizeof(magic));
  WCM_EXPECTS(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
              "not a WCMI file");
  const auto version = read_pod<std::uint32_t>(is);
  WCM_EXPECTS(version == kVersion, "unsupported WCMI version");
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<word> keys(n);
  for (auto& k : keys) {
    k = read_pod<std::int32_t>(is);
  }
  return keys;
}

void write_csv(const std::filesystem::path& path,
               const std::vector<word>& keys) {
  std::ofstream os(path);
  WCM_EXPECTS(os.is_open(), "cannot open output file");
  os << "key\n";
  for (const word k : keys) {
    os << k << '\n';
  }
  WCM_ENSURES(static_cast<bool>(os), "write failed");
}

}  // namespace wcm::workload
