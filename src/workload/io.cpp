#include "workload/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <new>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace wcm::workload {

namespace {
constexpr char kMagic[4] = {'W', 'C', 'M', 'I'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint64_t kHeaderBytes = 16;  // magic + version + n
// WCMI checksums chain wcm::fnv1a (util/hash.hpp); the digest-pinning test
// in tests/test_util_hash.cpp guards the constants.
constexpr std::uint64_t kFnvOffset = fnv_offset_basis;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WCM_CHECK_IO(static_cast<bool>(is), "truncated WCMI file");
  return v;
}
}  // namespace

void write_binary(const std::filesystem::path& path,
                  const std::vector<word>& keys) {
  WCM_SPAN("io.write_binary");
  std::ofstream os(path, std::ios::binary);
  WCM_FAILPOINT("io.write.fail", io_error, "injected write failure");
  WCM_CHECK_IO(os.is_open(),
               "cannot open output file: " + path.string());

  std::vector<std::int32_t> buf;
  buf.reserve(keys.size());
  for (const word k : keys) {
    WCM_EXPECTS(k >= std::numeric_limits<std::int32_t>::min() &&
                    k <= std::numeric_limits<std::int32_t>::max(),
                "key does not fit in int32");
    buf.push_back(static_cast<std::int32_t>(k));
  }

  const auto n = static_cast<std::uint64_t>(keys.size());
  std::uint64_t h = kFnvOffset;
  os.write(kMagic, sizeof(kMagic));
  h = fnv1a(h, kMagic, sizeof(kMagic));
  write_pod(os, wcmi_version);
  h = fnv1a(h, &wcmi_version, sizeof(wcmi_version));
  write_pod(os, n);
  h = fnv1a(h, &n, sizeof(n));
  if (!buf.empty()) {
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size() * sizeof(std::int32_t)));
    h = fnv1a(h, buf.data(), buf.size() * sizeof(std::int32_t));
  }
  write_pod(os, h);
  WCM_CHECK_IO(static_cast<bool>(os), "write failed: " + path.string());
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("workload.io.write.bytes")
        .add(kHeaderBytes + buf.size() * sizeof(std::int32_t) +
             sizeof(std::uint64_t));
  }
}

std::vector<word> read_binary(const std::filesystem::path& path) {
  WCM_SPAN("io.read_binary");
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  std::ifstream is(path, std::ios::binary);
  WCM_FAILPOINT("io.read.open", io_error, "injected open failure");
  WCM_CHECK_IO(!ec && is.is_open(),
               "cannot open input file: " + path.string());
  WCM_CHECK_IO(file_size >= kHeaderBytes,
               "truncated WCMI header (" + std::to_string(file_size) +
                   " bytes): " + path.string());

  char magic[4];
  is.read(magic, sizeof(magic));
  WCM_CHECK_IO(static_cast<bool>(is) &&
                   std::equal(magic, magic + 4, kMagic),
               "not a WCMI file: " + path.string());
  const auto version = read_pod<std::uint32_t>(is);
  WCM_CHECK_IO(version == kVersionV1 || version == wcmi_version,
               "unsupported WCMI version " + std::to_string(version) +
                   ": " + path.string());
  const auto n = read_pod<std::uint64_t>(is);

  // Sanity-check the declared count against the cap and the actual file
  // size *before* allocating, so a corrupt header cannot drive an OOM.
  WCM_CHECK_IO(n <= max_wcmi_keys,
               "WCMI element count " + std::to_string(n) +
                   " exceeds the cap of " + std::to_string(max_wcmi_keys) +
                   ": " + path.string());
  const std::uint64_t payload_bytes = n * sizeof(std::int32_t);
  const std::uint64_t expected =
      kHeaderBytes + payload_bytes +
      (version == wcmi_version ? sizeof(std::uint64_t) : 0);
  if (version == wcmi_version) {
    WCM_CHECK_IO(file_size == expected,
                 "WCMI file size " + std::to_string(file_size) +
                     " does not match header (expected " +
                     std::to_string(expected) + "): " + path.string());
  } else {
    WCM_CHECK_IO(file_size >= expected,
                 "truncated WCMI payload (" + std::to_string(file_size) +
                     " of " + std::to_string(expected) +
                     " bytes): " + path.string());
  }

  WCM_FAILPOINT("io.read.alloc", io_error, "injected allocation failure");
  std::vector<std::int32_t> buf;
  try {
    buf.resize(n);
  } catch (const std::bad_alloc&) {
    throw io_error("cannot allocate " + std::to_string(payload_bytes) +
                       " bytes for WCMI payload",
                   path.string());
  }
  if (n > 0) {
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(payload_bytes));
  }
  WCM_FAILPOINT("io.read.truncated", io_error, "injected short read");
  WCM_CHECK_IO(static_cast<bool>(is),
               "truncated WCMI payload: " + path.string());

  if (version == wcmi_version) {
    const auto stored = read_pod<std::uint64_t>(is);
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, kMagic, sizeof(kMagic));
    h = fnv1a(h, &version, sizeof(version));
    h = fnv1a(h, &n, sizeof(n));
    h = fnv1a(h, buf.data(), buf.size() * sizeof(std::int32_t));
    WCM_FAILPOINT("io.read.checksum", io_error,
                  "injected checksum mismatch");
    if (h != stored && telemetry::enabled()) {
      telemetry::registry().counter("workload.io.checksum.failures").add(1);
    }
    WCM_CHECK_IO(h == stored, "WCMI checksum mismatch: " + path.string());
  }

  if (telemetry::enabled()) {
    telemetry::registry().counter("workload.io.read.bytes").add(file_size);
  }
  return {buf.begin(), buf.end()};
}

void write_csv(const std::filesystem::path& path,
               const std::vector<word>& keys) {
  WCM_SPAN("io.write_csv");
  std::ofstream os(path);
  WCM_CHECK_IO(os.is_open(),
               "cannot open output file: " + path.string());
  os << "key\n";
  for (const word k : keys) {
    os << k << '\n';
  }
  WCM_CHECK_IO(static_cast<bool>(os), "write failed: " + path.string());
}

}  // namespace wcm::workload
