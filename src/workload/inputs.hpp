#pragma once
// Input workload generators used across the evaluation: seeded random
// permutations (the paper's baseline), sorted / reversed / nearly-sorted
// inputs, and the adversarial inputs of core/generator.hpp behind one
// uniform interface.

#include <string>
#include <vector>

#include "core/generator.hpp"

namespace wcm::workload {

using dmm::word;

enum class InputKind {
  random,         ///< seeded uniform random permutation
  sorted,         ///< 0..n-1
  reversed,       ///< n-1..0
  nearly_sorted,  ///< sorted with a few random swaps
  worst_case,     ///< the paper's constructed adversarial permutation
};

[[nodiscard]] const char* to_string(InputKind kind) noexcept;

/// Random permutation of {0..n-1} (Fisher–Yates over Xoshiro256).
[[nodiscard]] std::vector<word> random_permutation(std::size_t n, u64 seed);

[[nodiscard]] std::vector<word> sorted_input(std::size_t n);
[[nodiscard]] std::vector<word> reversed_input(std::size_t n);

/// Sorted input with `swaps` random transpositions.
[[nodiscard]] std::vector<word> nearly_sorted_input(std::size_t n,
                                                    std::size_t swaps,
                                                    u64 seed);

/// Uniform dispatcher: build input of `kind` for a sort configuration (the
/// configuration only matters for worst_case).
[[nodiscard]] std::vector<word> make_input(InputKind kind, std::size_t n,
                                           const sort::SortConfig& cfg,
                                           u64 seed = 1);

/// True iff v is a permutation of {0..n-1}.
[[nodiscard]] bool is_permutation_of_iota(const std::vector<word>& v);

}  // namespace wcm::workload
