#pragma once
// Serialization of generated inputs: a small binary container (so the
// adversarial inputs can be exported and fed to a real GPU harness) and a
// CSV form for inspection.
//
// Binary layout, version 2 (little-endian):
//   magic    "WCMI"            4 bytes
//   version  u32               currently 2
//   n        u64
//   keys     n x i32           (inputs are permutations of 0..n-1, which the
//                               paper's 4-byte-integer experiments match)
//   checksum u64               FNV-1a over every preceding byte
//
// Version 1 files (identical, minus the trailing checksum) remain readable
// forever; the writer always emits version 2.  The reader cross-checks the
// declared element count against the actual file size *before* allocating
// anything, and rejects counts above max_wcmi_keys, so a corrupt header can
// never drive an out-of-memory allocation.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "dmm/machine.hpp"

namespace wcm::workload {

using dmm::word;

/// Hard cap on the element count of a WCMI file (2^33 keys = 32 GiB of
/// payload); read_binary rejects anything larger as corrupt.
inline constexpr std::uint64_t max_wcmi_keys = std::uint64_t{1} << 33;

/// The WCMI version write_binary emits.
inline constexpr std::uint32_t wcmi_version = 2;

/// Write keys to `path` in the WCMI v2 binary format (with trailing FNV-1a
/// checksum).  Every key must fit in int32 (contract-checked).  Throws
/// wcm::io_error when the file cannot be written.
void write_binary(const std::filesystem::path& path,
                  const std::vector<word>& keys);

/// Read a WCMI file (version 1 or 2).  Throws wcm::io_error on malformed,
/// truncated, oversized, or checksum-failing content.
[[nodiscard]] std::vector<word> read_binary(const std::filesystem::path& path);

/// Write keys as a one-column CSV with header "key".
void write_csv(const std::filesystem::path& path,
               const std::vector<word>& keys);

}  // namespace wcm::workload
