#pragma once
// Serialization of generated inputs: a small binary container (so the
// adversarial inputs can be exported and fed to a real GPU harness) and a
// CSV form for inspection.
//
// Binary layout (little-endian):
//   magic   "WCMI"            4 bytes
//   version u32               currently 1
//   n       u64
//   keys    n x i32           (inputs are permutations of 0..n-1, which the
//                              paper's 4-byte-integer experiments match)

#include <filesystem>
#include <vector>

#include "dmm/machine.hpp"

namespace wcm::workload {

using dmm::word;

/// Write keys to `path` in the WCMI binary format.  Every key must fit in
/// int32 (contract-checked).
void write_binary(const std::filesystem::path& path,
                  const std::vector<word>& keys);

/// Read a WCMI file.  Throws wcm::contract_error on malformed content.
[[nodiscard]] std::vector<word> read_binary(const std::filesystem::path& path);

/// Write keys as a one-column CSV with header "key".
void write_csv(const std::filesystem::path& path,
               const std::vector<word>& keys);

}  // namespace wcm::workload
