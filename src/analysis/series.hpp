#pragma once
// Throughput series and the slowdown statistics the paper reports (peak and
// average slowdown of worst-case versus random inputs).

#include <vector>

#include "util/math.hpp"

namespace wcm::analysis {

/// One measured point of a throughput curve.
struct SeriesPoint {
  std::size_t n = 0;
  double throughput = 0.0;       ///< elements per second
  double seconds = 0.0;          ///< modeled time
  double conflicts_per_elem = 0.0;
  double beta2 = 0.0;
};

/// Slowdown of `slow` relative to `fast` at one size:
/// (T_slow - T_fast) / T_fast, in percent.
[[nodiscard]] double slowdown_percent(double fast_seconds,
                                      double slow_seconds);

struct SlowdownStats {
  double peak_percent = 0.0;
  std::size_t peak_n = 0;  ///< input size where the peak occurs
  double average_percent = 0.0;
};

/// Compare two curves measured at identical sizes (contract-checked) and
/// report the paper's peak / average slowdown statistics.
[[nodiscard]] SlowdownStats compare_series(
    const std::vector<SeriesPoint>& baseline,
    const std::vector<SeriesPoint>& degraded);

}  // namespace wcm::analysis
