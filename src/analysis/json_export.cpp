#include "analysis/json_export.hpp"

#include <ostream>
#include <sstream>

namespace wcm::analysis {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_kernel(std::ostream& os, const gpusim::KernelStats& k) {
  os << "{\"shared_steps\":" << k.shared.steps
     << ",\"shared_serialization\":" << k.shared.serialization_cycles
     << ",\"shared_replays\":" << k.shared.replays
     << ",\"merge_read_steps\":" << k.shared_merge_reads.steps
     << ",\"merge_read_serialization\":"
     << k.shared_merge_reads.serialization_cycles
     << ",\"search_steps\":" << k.shared_search.steps
     << ",\"global_transactions\":" << k.global_transactions
     << ",\"binary_search_steps\":" << k.binary_search_steps
     << ",\"blocks\":" << k.blocks_launched << "}";
}

}  // namespace

void write_report_json(std::ostream& os, const sort::SortReport& report) {
  os << "{\"device\":\"" << escape(report.device.name) << "\""
     << ",\"config\":{\"E\":" << report.config.E
     << ",\"b\":" << report.config.b << ",\"w\":" << report.config.w
     << ",\"padding\":" << report.config.padding << "}"
     << ",\"n\":" << report.n
     << ",\"seconds\":" << report.seconds()
     << ",\"throughput\":" << report.throughput()
     << ",\"beta1\":" << report.beta1()
     << ",\"beta2\":" << report.beta2()
     << ",\"conflicts_per_element\":" << report.conflicts_per_element()
     << ",\"rounds\":[";
  for (std::size_t i = 0; i < report.rounds.size(); ++i) {
    const auto& r = report.rounds[i];
    if (i) {
      os << ',';
    }
    os << "{\"name\":\"" << escape(r.name) << "\""
       << ",\"seconds\":" << r.modeled_seconds << ",\"kernel\":";
    write_kernel(os, r.kernel);
    os << "}";
  }
  os << "],\"totals\":";
  write_kernel(os, report.totals);
  os << "}";
}

std::string report_to_json(const sort::SortReport& report) {
  std::ostringstream os;
  write_report_json(os, report);
  return os.str();
}

}  // namespace wcm::analysis
