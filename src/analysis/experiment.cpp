#include "analysis/experiment.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace wcm::analysis {

namespace {
bool env_u32(const char* name, u32& out) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return false;
  }
  out = static_cast<u32>(std::stoul(v));
  return true;
}
}  // namespace

void apply_env_overrides(SweepSpec& spec) {
  env_u32("WCM_MIN_K", spec.min_k);
  env_u32("WCM_MAX_K", spec.max_k);
  WCM_EXPECTS(spec.min_k >= 1 && spec.min_k <= spec.max_k,
              "WCM_MIN_K / WCM_MAX_K out of range");
}

std::vector<SeriesPoint> run_sweep(const SweepSpec& spec) {
  std::vector<SeriesPoint> series;
  series.reserve(spec.max_k - spec.min_k + 1);
  for (u32 k = spec.min_k; k <= spec.max_k; ++k) {
    const std::size_t n = spec.config.tile() << k;
    const auto input = workload::make_input(spec.input, n, spec.config,
                                            spec.seed + k);
    const auto report = sort::pairwise_merge_sort(input, spec.config,
                                                  spec.device, spec.library);
    SeriesPoint p;
    p.n = n;
    p.throughput = report.throughput();
    p.seconds = report.seconds();
    p.conflicts_per_elem = report.conflicts_per_element();
    p.beta2 = report.beta2();
    series.push_back(p);
  }
  return series;
}

}  // namespace wcm::analysis
