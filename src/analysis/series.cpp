#include "analysis/series.hpp"

#include "util/check.hpp"

namespace wcm::analysis {

double slowdown_percent(double fast_seconds, double slow_seconds) {
  WCM_EXPECTS(fast_seconds > 0.0, "baseline time must be positive");
  return (slow_seconds - fast_seconds) / fast_seconds * 100.0;
}

SlowdownStats compare_series(const std::vector<SeriesPoint>& baseline,
                             const std::vector<SeriesPoint>& degraded) {
  WCM_EXPECTS(!baseline.empty(), "empty series");
  WCM_EXPECTS(baseline.size() == degraded.size(), "series length mismatch");

  SlowdownStats stats;
  double sum = 0.0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    WCM_EXPECTS(baseline[i].n == degraded[i].n, "series sizes must match");
    const double s =
        slowdown_percent(baseline[i].seconds, degraded[i].seconds);
    sum += s;
    if (s > stats.peak_percent) {
      stats.peak_percent = s;
      stats.peak_n = baseline[i].n;
    }
  }
  stats.average_percent = sum / static_cast<double>(baseline.size());
  return stats;
}

}  // namespace wcm::analysis
