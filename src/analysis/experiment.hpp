#pragma once
// Experiment runner shared by the figure benches: sweep input sizes
// n = bE * 2^k for one (device, library, config, input kind) combination
// and collect the throughput series.  Honors the WCM_MAX_K / WCM_MIN_K
// environment variables so the full paper-scale sweep can be requested
// explicitly (functional simulation of 1e8+ elements takes hours on one
// host core; the shape is present by k ~ 8).

#include <vector>

#include "analysis/series.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm::analysis {

struct SweepSpec {
  gpusim::Device device;
  sort::SortConfig config;
  sort::MergeSortLibrary library = sort::MergeSortLibrary::thrust;
  workload::InputKind input = workload::InputKind::random;
  u32 min_k = 1;  ///< smallest size: bE * 2^min_k
  u32 max_k = 8;  ///< largest size: bE * 2^max_k
  u64 seed = 1;   ///< seed for stochastic inputs
};

/// Clamp a sweep's k range from the environment (WCM_MIN_K / WCM_MAX_K).
void apply_env_overrides(SweepSpec& spec);

/// Run the sweep; one simulated sort per size.  Validates that every sort's
/// output is sorted (the simulator enforces this internally).
[[nodiscard]] std::vector<SeriesPoint> run_sweep(const SweepSpec& spec);

}  // namespace wcm::analysis
