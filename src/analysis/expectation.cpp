#include "analysis/expectation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "workload/inversions.hpp"

namespace wcm::analysis {

Moments moments_of(const std::vector<double>& xs) {
  WCM_EXPECTS(!xs.empty(), "moments of an empty sample");
  Moments m;
  m.min = xs.front();
  m.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    m.min = std::min(m.min, x);
    m.max = std::max(m.max, x);
  }
  m.mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (const double x : xs) {
    sq += (x - m.mean) * (x - m.mean);
  }
  // Population variance: the samples *are* the population of interest for
  // reporting; with the sample counts used here the distinction is noise.
  m.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
  return m;
}

ConflictDistribution sample_distribution(workload::InputKind kind,
                                         std::size_t n,
                                         const sort::SortConfig& cfg,
                                         const gpusim::Device& dev,
                                         std::size_t samples, u64 seed) {
  WCM_EXPECTS(samples > 0, "need at least one sample");
  std::vector<double> beta2s, confl, secs;
  beta2s.reserve(samples);
  confl.reserve(samples);
  secs.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto input = workload::make_input(kind, n, cfg, seed + s);
    const auto report = sort::pairwise_merge_sort(input, cfg, dev);
    beta2s.push_back(report.beta2());
    confl.push_back(report.conflicts_per_element());
    secs.push_back(report.seconds());
  }
  ConflictDistribution d;
  d.samples = samples;
  d.beta2 = moments_of(beta2s);
  d.conflicts_per_element = moments_of(confl);
  d.seconds = moments_of(secs);
  return d;
}

double z_score(const Moments& m, double value) {
  if (m.stddev <= 0.0) {
    return value > m.mean ? std::numeric_limits<double>::infinity()
                          : value < m.mean
                                ? -std::numeric_limits<double>::infinity()
                                : 0.0;
  }
  return (value - m.mean) / m.stddev;
}

std::vector<InversionPoint> inversion_sweep(
    std::size_t n, const sort::SortConfig& cfg, const gpusim::Device& dev,
    const std::vector<std::size_t>& swap_counts, u64 seed) {
  std::vector<InversionPoint> points;
  points.reserve(swap_counts.size());
  for (const std::size_t swaps : swap_counts) {
    const auto input = workload::nearly_sorted_input(n, swaps, seed);
    const auto report = sort::pairwise_merge_sort(input, cfg, dev);
    InversionPoint p;
    p.swaps = swaps;
    p.inversion_fraction = workload::inversion_fraction(input);
    p.beta2 = report.beta2();
    p.conflicts_per_element = report.conflicts_per_element();
    points.push_back(p);
  }
  return points;
}

}  // namespace wcm::analysis
