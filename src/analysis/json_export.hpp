#pragma once
// Minimal JSON export of sort reports for downstream tooling (plotting,
// dashboards, regression tracking).  Hand-rolled writer — the structure is
// flat and fixed, so a JSON library would be overkill; the output is
// valid, stable-ordered JSON (tests parse-check it structurally).

#include <iosfwd>
#include <string>

#include "sort/report.hpp"

namespace wcm::analysis {

/// Serialize a report: config, device, totals, per-round rows, derived
/// metrics.  Deterministic field order; numbers in minimal-precision
/// printf formats.
void write_report_json(std::ostream& os, const sort::SortReport& report);

/// Convenience: the JSON as a string.
[[nodiscard]] std::string report_to_json(const sort::SortReport& report);

}  // namespace wcm::analysis
