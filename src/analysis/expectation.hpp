#pragma once
// Monte Carlo estimation of the *expected* number of bank conflicts for a
// given input distribution — the open problem the paper's conclusion poses
// ("can we analyze the expected number of bank conflicts for a given
// algorithm, for a specific input distribution?").  A closed form is out of
// reach for data-dependent merging; the simulator makes the empirical
// distribution cheap and exact, which is the natural first step the paper
// calls for.

#include <vector>

#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

namespace wcm::analysis {

/// Summary statistics of one scalar across samples.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Moments moments_of(const std::vector<double>& xs);

/// Distribution of the conflict metrics over `samples` independent inputs
/// of `kind` (seeded deterministically from `seed`).
struct ConflictDistribution {
  std::size_t samples = 0;
  Moments beta2;
  Moments conflicts_per_element;
  Moments seconds;
};

[[nodiscard]] ConflictDistribution sample_distribution(
    workload::InputKind kind, std::size_t n, const sort::SortConfig& cfg,
    const gpusim::Device& dev, std::size_t samples, u64 seed);

/// How many standard deviations `value` sits above the distribution mean.
[[nodiscard]] double z_score(const Moments& m, double value);

/// One point of the inversions-vs-conflicts sweep.
struct InversionPoint {
  std::size_t swaps = 0;
  double inversion_fraction = 0.0;
  double beta2 = 0.0;
  double conflicts_per_element = 0.0;
};

/// Sweep nearly-sorted inputs with increasing numbers of random
/// transpositions and record the conflict metrics (Karsin et al.: conflicts
/// grow with inversions).
[[nodiscard]] std::vector<InversionPoint> inversion_sweep(
    std::size_t n, const sort::SortConfig& cfg, const gpusim::Device& dev,
    const std::vector<std::size_t>& swap_counts, u64 seed);

}  // namespace wcm::analysis
