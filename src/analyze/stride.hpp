#pragma once
// Affine stride analysis: classify each warp-wide access step as
// addr = base + stride * lane where possible, and *predict* its
// serialization from number theory alone — then cross-check the prediction
// against the DMM-measured StepCost of the same step.  Agreement is what
// makes the conflict model trustworthy; any divergence is a model bug and
// is reported as a stride-divergence diagnostic.
//
// The mathematics (unpadded layout, w banks, stride s != 0, full or
// partial warp): let g = gcd(w, |s|) and p = w / g.  Lanes l1, l2 hit the
// same bank iff s*(l1 - l2) === 0 (mod w) iff l1 === l2 (mod p), and lanes
// of one residue class modulo p always request *distinct* addresses, all
// in one bank (s*p === 0 (mod w)); distinct classes land in distinct
// banks.  Hence
//
//   serialization = max over residue classes mod p of the class size
//                 = gcd(w, s) for a full warp
//
// (the "w / gcd(w, s) distinct banks" phrasing counts the banks touched,
// not the cycles; docs/LINT.md spells out both).  A zero stride is the
// broadcast: one cycle regardless of warp occupancy — for loads; stores
// to one address are a CREW violation, which the race pass reports.
//
// Padded and permuted layouts (gpusim/layout.hpp) keep a closed form
// whenever the stride is a multiple of w: the column is lane-invariant,
// the row advances by k = s/w per lane, and the bank becomes an affine
// (or, for xor, bijective) function of the row residue with an *effective*
// stride — k*pad (linear), k*(1+pad) (rotation), k (xor, unpadded) — fed
// into the same gcd argument.  Combinations with no clean residue form
// (sub-w strides under padding/permutation, xor with padding) and
// non-affine steps fall back to exact per-bank counting over physical
// addresses, mirroring dmm::analyze_step without executing the machine.

#include <span>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "gpusim/trace.hpp"

namespace wcm::analyze {

/// Affine classification of one access step.
struct AffineClass {
  bool affine = false;  ///< every access satisfies addr == base + stride*lane
  i64 base = 0;         ///< extrapolated lane-0 address (may be negative)
  i64 stride = 0;
};

/// Classify an access step; steps with < 2 accesses are affine with
/// stride 0, non-access steps are not affine.
[[nodiscard]] AffineClass classify_affine(const gpusim::TraceStep& step);

/// Closed-form serialization of an affine step on `w` unpadded banks:
/// max residue-class population of `lanes` modulo w / gcd(w, |stride|)
/// (1 for a zero stride — the broadcast).  `lanes` need not be sorted.
[[nodiscard]] std::size_t predict_affine_serialization(
    u32 w, i64 stride, std::span<const u32> lanes);

/// Full predicted StepCost of one step under `layout`: closed form for
/// affine steps on unpadded layouts, exact per-bank address counting
/// otherwise.  Never executes the DMM machine.  Zero cost for non-access
/// steps.
[[nodiscard]] dmm::StepCost predict_step_cost(
    const gpusim::TraceStep& step, const gpusim::SharedLayout& layout);

/// Result of the stride pass over a whole trace.
struct StrideReport {
  std::vector<Diagnostic> diagnostics;  ///< stride-divergence findings
  std::size_t access_steps = 0;
  std::size_t affine_steps = 0;  ///< of which affine (incl. broadcasts)
};

/// Predict every step and cross-check against replay_step_costs under the
/// same layout.  Precondition: the trace is race/CREW/duplicate-lane clean
/// (the DMM replay throws on such traces); the analyzer gates on that.
[[nodiscard]] StrideReport check_strides(const gpusim::Trace& trace,
                                         const gpusim::SharedLayout& layout);

}  // namespace wcm::analyze
