#pragma once
// Diagnostics emitted by the static trace analyzer (the "kernel
// sanitizer"): every finding names a rule, a severity, the trace step it
// anchors to, and the lanes involved, so the text and JSON renderers — and
// the tests — can treat all passes uniformly.  Rules are documented in
// docs/LINT.md.

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace wcm::analyze {

enum class Severity : unsigned char { note, warning, error };

/// Which check produced a diagnostic (see docs/LINT.md for the catalogue).
enum class Rule : unsigned char {
  write_read_race,    ///< write then read, same addr, no barrier between
  write_write_race,   ///< two writes, same addr, no barrier between
  read_write_race,    ///< read then write, same addr, no barrier between
  intra_step_crew,    ///< >= 2 lanes touch one written addr in one step
  out_of_bounds,      ///< access or fill beyond the trace's logical words
  uninitialized_read, ///< read of a word no fill or write initialized
  duplicate_lane,     ///< one lane issues two requests in one step
  lane_out_of_range,  ///< lane id >= the trace's warp size
  stride_divergence,  ///< predicted serialization != measured StepCost
  unproved_access,    ///< symbolic prover could not bound a step group
  symbolic_divergence, ///< symbolic bound vs gcd/replay model disagreement
  theorem_divergence, ///< Theorem 3/9 instance failed its cross-check
  barrier_divergence, ///< a barrier not provably reached by all lanes
};

[[nodiscard]] const char* to_string(Severity s) noexcept;
[[nodiscard]] const char* to_string(Rule r) noexcept;

/// One finding.  `step` indexes Trace::steps (kNoStep for trace-level
/// findings); `lanes` lists the offending lanes in ascending order.
struct Diagnostic {
  static constexpr std::size_t kNoStep =
      std::numeric_limits<std::size_t>::max();

  Severity severity = Severity::error;
  Rule rule = Rule::write_read_race;
  std::size_t step = kNoStep;
  std::vector<u32> lanes;
  std::string message;
};

/// `wcm-lint`-style one-per-line rendering:
///   error: write-read-race at step 12 [lanes 0,3]: <message>
void render_text(std::ostream& os, const Diagnostic& d);

/// One JSON object per diagnostic (hand-rolled, matching
/// analysis/json_export.cpp's conventions).
void render_json(std::ostream& os, const Diagnostic& d);

}  // namespace wcm::analyze
