#include "analyze/stride.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace wcm::analyze {

AffineClass classify_affine(const gpusim::TraceStep& step) {
  AffineClass cls;
  if (!step.is_access() || step.accesses.empty()) {
    return cls;
  }
  const auto& acc = step.accesses;
  if (acc.size() == 1) {
    cls.affine = true;
    cls.stride = 0;
    cls.base = static_cast<i64>(acc[0].second);
    return cls;
  }
  // Fit stride from the first two distinct lanes, then verify every access.
  const i64 l0 = static_cast<i64>(acc[0].first);
  const i64 a0 = static_cast<i64>(acc[0].second);
  const i64 dl = static_cast<i64>(acc[1].first) - l0;
  const i64 da = static_cast<i64>(acc[1].second) - a0;
  if (dl == 0 || da % dl != 0) {
    return cls;
  }
  const i64 stride = da / dl;
  const i64 base = a0 - stride * l0;
  for (const auto& [lane, addr] : acc) {
    if (static_cast<i64>(addr) != base + stride * static_cast<i64>(lane)) {
      return cls;
    }
  }
  cls.affine = true;
  cls.stride = stride;
  cls.base = base;
  return cls;
}

std::size_t predict_affine_serialization(u32 w, i64 stride,
                                         std::span<const u32> lanes) {
  WCM_EXPECTS(w >= 1, "warp size must be positive");
  if (lanes.empty()) {
    return 0;
  }
  if (stride == 0) {
    return 1;  // broadcast: one address, one cycle
  }
  const u64 mag = static_cast<u64>(stride < 0 ? -stride : stride);
  const u64 g = gcd(w, mag);
  const u64 p = w / g;  // lanes collide iff congruent mod p
  std::vector<std::size_t> population(p, 0);
  std::size_t worst = 0;
  for (const u32 lane : lanes) {
    worst = std::max(worst, ++population[lane % p]);
  }
  return worst;
}

namespace {

/// Exact predictor: per-bank distinct physical addresses, the definition
/// dmm::analyze_step implements — recomputed here without the machine so
/// the cross-check exercises two independent code paths.
dmm::StepCost exact_cost(const gpusim::TraceStep& step,
                         const gpusim::SharedLayout& layout) {
  dmm::StepCost cost;
  cost.requests = step.accesses.size();
  std::vector<std::pair<std::size_t, std::size_t>> by_bank;  // (bank, phys)
  by_bank.reserve(step.accesses.size());
  for (const auto& [lane, addr] : step.accesses) {
    (void)lane;
    const std::size_t phys = layout.physical(addr);
    by_bank.emplace_back(phys % layout.w, phys);
  }
  std::sort(by_bank.begin(), by_bank.end());
  std::size_t i = 0;
  while (i < by_bank.size()) {
    const std::size_t bank = by_bank[i].first;
    std::size_t bank_end = i;
    std::size_t distinct = 0;
    std::size_t prev_addr = 0;
    while (bank_end < by_bank.size() && by_bank[bank_end].first == bank) {
      if (bank_end == i || by_bank[bank_end].second != prev_addr) {
        ++distinct;  // same-address requests broadcast
      }
      prev_addr = by_bank[bank_end].second;
      ++bank_end;
    }
    cost.max_bank_degree = std::max(cost.max_bank_degree, distinct);
    if (distinct >= 2) {
      cost.conflicting_accesses += bank_end - i;
    }
    i = bank_end;
  }
  cost.serialization = cost.max_bank_degree;
  cost.replays = cost.max_bank_degree > 0 ? cost.max_bank_degree - 1 : 0;
  return cost;
}

/// Closed-form predictor for affine steps: lanes of an affine step collide
/// iff they are congruent modulo w / gcd(w, eff), where `eff` is the
/// layout's *effective bank stride*:
///   linear, pad 0       eff = |stride|      (the classic gcd form)
///   stride ≡ 0 (mod w)  the column is lane-invariant and the row advances
///                       by k = stride / w per lane, so the bank is an
///                       affine function of the row residue:
///     linear, pad p       bank += k*p        eff = |k*p|
///     rotation, pad p     bank += k*(1+p)    eff = |k*(1+p)|
///     xor, pad 0          col ^ r is bijective in r for a fixed col, so
///                         lanes collide iff their rows agree mod w:
///                                            eff = |k|
/// Any other layout x stride combination (sub-w strides under padding or
/// permutation, xor with padding) has no clean residue form.  Returns
/// false in that case; the caller falls back to exact counting.
bool affine_closed_form(const gpusim::TraceStep& step,
                        const gpusim::SharedLayout& layout, i64 stride,
                        dmm::StepCost& cost) {
  using gpusim::LayoutKind;
  cost = {};
  cost.requests = step.accesses.size();
  if (step.accesses.empty()) {
    return true;
  }
  if (stride == 0) {
    cost.serialization = 1;
    cost.replays = 0;
    cost.conflicting_accesses = 0;
    cost.max_bank_degree = 1;
    return true;  // broadcast: one address, one bank under every layout
  }
  const i64 w = static_cast<i64>(layout.w);
  u64 eff = 0;
  if (layout.kind == LayoutKind::linear && layout.pad == 0) {
    eff = static_cast<u64>(stride < 0 ? -stride : stride);
  } else if (stride % w == 0) {
    const i64 k = stride / w;
    i64 signed_eff = 0;
    switch (layout.kind) {
      case LayoutKind::linear:
        signed_eff = k * static_cast<i64>(layout.pad);
        break;
      case LayoutKind::rotation:
        signed_eff = k * (1 + static_cast<i64>(layout.pad));
        break;
      case LayoutKind::xor_swizzle:
        if (layout.pad != 0) {
          return false;
        }
        signed_eff = k;
        break;
    }
    eff = static_cast<u64>(signed_eff < 0 ? -signed_eff : signed_eff);
  } else {
    return false;
  }
  // gcd(w, 0) = w: a zero effective stride parks every lane in one bank,
  // with pairwise-distinct addresses (stride != 0).
  const u64 p = layout.w / gcd(layout.w, eff);
  // Residue classes mod p partition the active lanes; one class = one bank
  // full of pairwise-distinct addresses, distinct classes = distinct banks.
  std::vector<std::size_t> population(p, 0);
  for (const auto& [lane, addr] : step.accesses) {
    (void)addr;
    ++population[lane % p];
  }
  for (const std::size_t n : population) {
    cost.max_bank_degree = std::max(cost.max_bank_degree, n);
    if (n >= 2) {
      cost.conflicting_accesses += n;
    }
  }
  cost.serialization = cost.max_bank_degree;
  cost.replays = cost.max_bank_degree > 0 ? cost.max_bank_degree - 1 : 0;
  return true;
}

}  // namespace

dmm::StepCost predict_step_cost(const gpusim::TraceStep& step,
                                const gpusim::SharedLayout& layout) {
  if (!step.is_access()) {
    return {};
  }
  const AffineClass cls = classify_affine(step);
  if (cls.affine &&
      !(cls.stride == 0 && step.is_write() && step.accesses.size() > 1)) {
    // The excluded case — a multi-lane store to one address — is a CREW
    // violation with no defined cost; exact mode degrades gracefully.
    dmm::StepCost cost;
    if (affine_closed_form(step, layout, cls.stride, cost)) {
      return cost;
    }
  }
  return exact_cost(step, layout);
}

StrideReport check_strides(const gpusim::Trace& trace,
                           const gpusim::SharedLayout& layout) {
  WCM_EXPECTS(layout.w == trace.warp_size,
              "layout bank count must match the trace's warp size");
  StrideReport report;
  const auto measured = gpusim::replay_step_costs(trace, layout);
  for (std::size_t si = 0; si < trace.steps.size(); ++si) {
    const gpusim::TraceStep& step = trace.steps[si];
    if (!step.is_access()) {
      continue;
    }
    ++report.access_steps;
    const AffineClass cls = classify_affine(step);
    if (cls.affine) {
      ++report.affine_steps;
    }
    const dmm::StepCost predicted = predict_step_cost(step, layout);
    if (!(predicted == measured[si])) {
      std::vector<u32> lanes;
      lanes.reserve(step.accesses.size());
      for (const auto& [lane, addr] : step.accesses) {
        (void)addr;
        lanes.push_back(lane);
      }
      std::sort(lanes.begin(), lanes.end());
      std::string what =
          cls.affine ? "affine step (stride " + std::to_string(cls.stride) +
                           ", base " + std::to_string(cls.base) + ")"
                     : "non-affine step";
      report.diagnostics.push_back(
          {Severity::error, Rule::stride_divergence, si, std::move(lanes),
           what + ": predicted serialization " +
               std::to_string(predicted.serialization) + " (" +
               std::to_string(predicted.conflicting_accesses) +
               " conflicting accesses) but the DMM measured " +
               std::to_string(measured[si].serialization) + " (" +
               std::to_string(measured[si].conflicting_accesses) +
               ") — conflict-model bug"});
    }
  }
  return report;
}

}  // namespace wcm::analyze
