#include "analyze/memcheck.hpp"

#include <algorithm>
#include <string>

namespace wcm::analyze {

std::vector<Diagnostic> check_memory(const gpusim::Trace& trace) {
  std::vector<Diagnostic> out;
  const std::size_t words = trace.logical_words;

  // Initialized-word bitmap, grown on demand so v1 traces (words == 0) and
  // hand-built out-of-bounds fixtures still get read-before-write checking.
  std::vector<bool> init(words, false);
  const auto mark_init = [&init](std::size_t addr) {
    if (addr >= init.size()) {
      init.resize(addr + 1, false);
    }
    init[addr] = true;
  };
  const auto is_init = [&init](std::size_t addr) {
    return addr < init.size() && init[addr];
  };

  for (std::size_t si = 0; si < trace.steps.size(); ++si) {
    const gpusim::TraceStep& step = trace.steps[si];
    if (step.kind == gpusim::StepKind::fill) {
      if (words > 0 &&
          (step.fill_base > words || step.fill_count > words - step.fill_base)) {
        out.push_back({Severity::error, Rule::out_of_bounds, si,
                       {},
                       "fill of [" + std::to_string(step.fill_base) + ", " +
                           std::to_string(step.fill_base + step.fill_count) +
                           ") exceeds the " + std::to_string(words) +
                           " logical words"});
      }
      for (std::size_t i = 0; i < step.fill_count; ++i) {
        mark_init(step.fill_base + i);
      }
      continue;
    }
    if (!step.is_access()) {
      continue;
    }

    u64 seen_lanes = 0;
    for (const auto& [lane, addr] : step.accesses) {
      if (lane >= trace.warp_size || lane >= 64) {
        out.push_back({Severity::error, Rule::lane_out_of_range, si,
                       {lane},
                       "lane " + std::to_string(lane) + " outside warp of " +
                           std::to_string(trace.warp_size)});
      } else if ((seen_lanes & (u64{1} << lane)) != 0) {
        out.push_back({Severity::error, Rule::duplicate_lane, si,
                       {lane},
                       "lane " + std::to_string(lane) +
                           " issues more than one request in this step"});
      } else {
        seen_lanes |= u64{1} << lane;
      }

      if (words > 0 && addr >= words) {
        out.push_back({Severity::error, Rule::out_of_bounds, si,
                       {lane},
                       "lane " + std::to_string(lane) + " accesses logical " +
                           "address " + std::to_string(addr) + " beyond the " +
                           std::to_string(words) + " logical words"});
        continue;
      }
      if (step.is_write()) {
        mark_init(addr);
      } else if (!is_init(addr)) {
        out.push_back({Severity::warning, Rule::uninitialized_read, si,
                       {lane},
                       "lane " + std::to_string(lane) + " loads logical " +
                           "address " + std::to_string(addr) +
                           " before any fill or store initialized it"});
      }
    }
  }
  return out;
}

}  // namespace wcm::analyze
