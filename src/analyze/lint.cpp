#include "analyze/lint.hpp"

#include <fstream>
#include <ostream>

#include "util/error.hpp"

namespace wcm::analyze {

int run_lint(const std::vector<std::string>& files,
             const LintOptions& options, std::ostream& out,
             std::ostream& err) {
  bool any_findings = false;
  bool any_bad_file = false;
  bool first_json = true;

  if (options.json) {
    out << "[";
  }
  for (const std::string& file : files) {
    gpusim::Trace trace;
    try {
      std::ifstream is(file);
      if (!is) {
        throw io_error("cannot open trace file", file);
      }
      trace = gpusim::read_trace(is);
    } catch (const error& e) {
      // Unreadable or corrupt input is exit 3 regardless of which layer
      // (io_error or parse_error) rejected it.
      err << file << ": error: " << e.what() << '\n';
      any_bad_file = true;
      continue;
    }

    const AnalysisReport report = analyze_trace(trace, options.analysis);
    any_findings = any_findings || !report.clean();
    if (options.json) {
      if (!first_json) {
        out << ',';
      }
      first_json = false;
      render_json(out, report, file);
    } else {
      render_text(out, report, file);
    }
  }
  if (options.json) {
    out << "]\n";
  }

  if (any_bad_file) {
    return 3;
  }
  return any_findings ? 1 : 0;
}

}  // namespace wcm::analyze
