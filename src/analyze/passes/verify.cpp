#include "analyze/passes/verify.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "analyze/symbolic/domain.hpp"
#include "analyze/symbolic/prove.hpp"
#include "core/assignment.hpp"
#include "core/numbers.hpp"
#include "core/warp_construction.hpp"
#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "sort/bitonic.hpp"
#include "sort/cpu_reference.hpp"
#include "sort/describe.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "sort/shearsort.hpp"
#include "telemetry/registry.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"
#include "workload/inputs.hpp"

namespace wcm::analyze::passes {

namespace {

std::string render_hex(u64 v) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << v;
  return os.str();
}

const char* regime_name(core::ERegime r) {
  switch (r) {
    case core::ERegime::power_of_two:
      return "power_of_two";
    case core::ERegime::shared_factor:
      return "shared_factor";
    case core::ERegime::small:
      return "small";
    case core::ERegime::large:
      return "large";
    case core::ERegime::unsupported:
      return "unsupported";
  }
  return "?";
}

ShapeVerdict verify_shape(const PassManager& pm, const std::string& engine,
                          u32 w, const VerifyOptions& opts) {
  PassContext ctx;
  ctx.engine = engine;
  ctx.opts.w = w;
  ctx.opts.b = opts.b;
  ctx.opts.pad = opts.pad;
  ctx.opts.layout = opts.layout;
  ctx.opts.e_min = opts.e_min;
  ctx.opts.e_max = opts.e_max;
  ctx.opts.ways = opts.ways;
  ctx.opts.digit_bits = opts.digit_bits;
  ctx.opts.any_e = opts.any_e;
  ctx.desc = symbolic::describe_engine(engine, ctx.opts);
  pm.run(ctx);

  ShapeVerdict v;
  v.engine = engine;
  v.w = w;
  v.barriers_uniform = ctx.barriers_uniform;
  v.barriers_checked = ctx.barriers_checked;
  v.defuse_clean = ctx.defuse_clean;
  v.defuse_seeded = ctx.defuse_seeded;
  v.bounds_proved = ctx.bounds_proved;
  v.max_read_bound = ctx.bounds.max_read_bound;
  v.max_write_bound = ctx.bounds.max_write_bound;
  v.ok = ctx.barriers_uniform && ctx.defuse_clean && ctx.bounds_proved &&
         ctx.error_count() == 0;
  v.findings = std::move(ctx.findings);
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("analyze.verify.shapes",
                 {{"engine", engine}, {"ok", v.ok ? "1" : "0"}})
        .add(1);
  }
  return v;
}

/// The symbolic merge-read bound at one concrete E: the pairwise engine's
/// theorem-site window group, instantiated (mirrors the theorem
/// cross-check's internal recount, but swept over non-coprime E too).
u64 theorem_site_bound_at(u32 w, u32 E) {
  const gpusim::ir::KernelDesc desc =
      sort::describe_pairwise(w, /*b=*/2 * w, /*pad=*/0);
  symbolic::Valuation valuation(desc.symbols.size(), 0);
  for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
    valuation[i] = desc.symbols[i].lo;
  }
  const int e_index = desc.find_symbol("E");
  WCM_EXPECTS(e_index >= 0, "pairwise describer must declare E");
  valuation[static_cast<std::size_t>(e_index)] = E;
  for (const gpusim::ir::StepGroup& g : desc.groups) {
    if (g.theorem_site) {
      return symbolic::window_bound_at(desc, g, valuation);
    }
  }
  WCM_EXPECTS(false, "pairwise describer must mark a theorem site");
  return 0;
}

/// Sweep the non-coprime (w, E) regimes the Theorem 3/9 constructions
/// exclude and measure how far the coprime closed form overshoots what a
/// sorted-order warp can actually attain there.
std::vector<BreakdownRow> sweep_breakdown(const VerifyOptions& opts) {
  std::vector<BreakdownRow> rows;
  for (const u32 w : opts.ws) {
    if (w < 4 || !is_pow2(w)) {
      continue;  // the closed forms assume pow2 w >= 4; w=2 has no E >= 3
    }
    const u32 e_hi = std::min(opts.e_max, w - 1);
    for (u32 E = 3; E <= e_hi; ++E) {
      const u32 g = std::gcd(w, E);
      if (g <= 1) {
        continue;  // coprime: Theorem 3/9 territory, audited elsewhere
      }
      BreakdownRow row;
      row.w = w;
      row.E = E;
      row.gcd = g;
      row.regime = regime_name(core::classify_e(w, E));
      // The Theorem 3/9 closed forms, applied *outside* their coprime
      // domain on purpose (core::aligned_*_e precondition-check the
      // regime, so the formulas are inlined here): the row records what
      // the coprime analysis would promise at this (w, E).
      if (2 * E < w) {
        row.promised = static_cast<u64>(E) * E;
      } else {
        const u64 r = w - E;
        const u64 e = E;
        row.promised = (e * e + e + 2 * e * r - r * r - r) / 2;
      }
      for (u32 s = 0; s < w; ++s) {
        core::WarpAssignment wa = core::sorted_order_warp(w, E);
        core::optimize_scan_orders(wa, s);
        row.attained =
            std::max<u64>(row.attained, core::evaluate_warp(wa, s).aligned);
      }
      row.step_bound = theorem_site_bound_at(w, E);
      row.breaks_down = row.attained < row.promised;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

/// Run one engine end to end at a concrete cell and count replayed steps
/// that exceed the statically derived bounds.
DifferentialCell run_differential_cell(const std::string& engine, u32 w,
                                       u32 E, gpusim::LayoutKind layout) {
  constexpr u32 kB = 8;
  constexpr u32 kWays = 2;
  constexpr u32 kDigitBits = 1;

  DifferentialCell cell;
  cell.engine = engine;
  cell.w = w;
  cell.E = E;
  cell.layout = layout;

  const auto dev = gpusim::synthetic_device(w);
  sort::SortConfig cfg{E, kB, w};
  cfg.layout = layout;
  cfg.validate();
  gpusim::TraceRecorder rec;
  cfg.trace_sink = &rec;

  const std::size_t n = cfg.tile() * 2;
  const auto input = workload::random_permutation(n, 7 + E + w);
  std::vector<dmm::word> out;
  if (engine == "pairwise") {
    (void)sort::pairwise_merge_sort(input, cfg, dev,
                                    sort::MergeSortLibrary::thrust, &out);
  } else if (engine == "multiway") {
    (void)sort::multiway_merge_sort(input, cfg, dev, kWays, &out);
  } else if (engine == "radix") {
    (void)sort::radix_sort(input, cfg, dev, kDigitBits, &out);
  } else if (engine == "bitonic") {
    (void)sort::bitonic_sort(input, cfg, dev, &out);
  } else if (engine == "shearsort") {
    (void)sort::shearsort(input, cfg, dev, &out);
  }
  if (out != sort::std_sort(input)) {
    cell.violations = 1;
    cell.ok = false;
    return cell;
  }

  symbolic::ProveOptions popts;
  popts.w = w;
  popts.b = kB;
  popts.pad = 0;
  popts.layout = layout;
  popts.e_min = E;
  popts.e_max = E;
  popts.ways = kWays;
  popts.digit_bits = kDigitBits;
  const symbolic::EngineReport bounds =
      symbolic::prove_engine(engine, popts);
  cell.max_read_bound = bounds.max_read_bound;
  cell.max_write_bound = bounds.max_write_bound;
  cell.violations = symbolic::certify_trace(rec.take(), bounds).size();
  cell.ok = cell.violations == 0;
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("analyze.verify.differential",
                 {{"engine", engine}, {"ok", cell.ok ? "1" : "0"}})
        .add(1);
  }
  return cell;
}

std::vector<DifferentialCell> run_differential(
    const std::vector<std::string>& engines, const VerifyOptions& opts) {
  // The runnable subset (scan/blocksort/block-merge are exercised inside
  // pairwise) on a grid small enough for CI but wide enough to cross the
  // coprime boundary: both layouts, both non-trivial warp widths, E values
  // hitting gcd(w, E) = 1, 2 and 4.
  static const char* kRunnable[] = {"pairwise", "multiway", "radix",
                                    "bitonic", "shearsort"};
  const gpusim::LayoutKind layouts[] = {gpusim::LayoutKind::linear,
                                        gpusim::LayoutKind::rotation};
  std::vector<DifferentialCell> cells;
  for (const char* engine : kRunnable) {
    if (std::find(engines.begin(), engines.end(), engine) == engines.end()) {
      continue;
    }
    for (const u32 w : {2u, 4u}) {
      if (std::find(opts.ws.begin(), opts.ws.end(), w) == opts.ws.end()) {
        continue;
      }
      for (const u32 E : {1u, 2u, 3u, 5u}) {
        if (std::string_view(engine) == "bitonic" && E != 2) {
          continue;  // the bitonic engine is specified at E = 2 only
        }
        for (const auto layout : layouts) {
          cells.push_back(run_differential_cell(engine, w, E, layout));
        }
      }
    }
  }
  return cells;
}

std::string json_body(const VerifyReport& r) {
  std::ostringstream os;
  os << "{\"wcm_verify\":1,\"b\":" << r.opts.b << ",\"pad\":" << r.opts.pad
     << ",\"layout\":\"" << gpusim::to_string(r.opts.layout)
     << "\",\"e_min\":" << r.opts.e_min << ",\"e_max\":" << r.opts.e_max
     << ",\"shapes\":[";
  for (std::size_t i = 0; i < r.shapes.size(); ++i) {
    const ShapeVerdict& s = r.shapes[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"engine\":\"" << s.engine << "\",\"w\":" << s.w
       << ",\"barriers_uniform\":" << (s.barriers_uniform ? 1 : 0)
       << ",\"barriers_checked\":" << s.barriers_checked
       << ",\"defuse_clean\":" << (s.defuse_clean ? 1 : 0)
       << ",\"defuse_seeded\":" << (s.defuse_seeded ? 1 : 0)
       << ",\"bounds_proved\":" << (s.bounds_proved ? 1 : 0)
       << ",\"max_read_bound\":" << s.max_read_bound
       << ",\"max_write_bound\":" << s.max_write_bound
       << ",\"ok\":" << (s.ok ? 1 : 0) << ",\"findings\":[";
    for (std::size_t j = 0; j < s.findings.size(); ++j) {
      if (j > 0) {
        os << ',';
      }
      analyze::render_json(os, s.findings[j]);
    }
    os << "]}";
  }
  os << "],\"skipped\":[";
  for (std::size_t i = 0; i < r.skipped.size(); ++i) {
    os << (i > 0 ? "," : "") << '"' << r.skipped[i] << '"';
  }
  os << "],\"breakdown\":[";
  for (std::size_t i = 0; i < r.breakdown.size(); ++i) {
    const BreakdownRow& b = r.breakdown[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"w\":" << b.w << ",\"E\":" << b.E << ",\"gcd\":" << b.gcd
       << ",\"regime\":\"" << b.regime << "\",\"promised\":" << b.promised
       << ",\"attained\":" << b.attained
       << ",\"step_bound\":" << b.step_bound
       << ",\"breaks_down\":" << (b.breaks_down ? 1 : 0) << "}";
  }
  os << "],\"differential\":[";
  for (std::size_t i = 0; i < r.differential.size(); ++i) {
    const DifferentialCell& c = r.differential[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"engine\":\"" << c.engine << "\",\"w\":" << c.w
       << ",\"E\":" << c.E << ",\"layout\":\"" << gpusim::to_string(c.layout)
       << "\",\"max_read_bound\":" << c.max_read_bound
       << ",\"max_write_bound\":" << c.max_write_bound
       << ",\"violations\":" << c.violations
       << ",\"ok\":" << (c.ok ? 1 : 0) << "}";
  }
  os << "],\"proved\":" << (r.proved ? 1 : 0)
     << ",\"differential_ok\":" << (r.differential_ok ? 1 : 0);
  return os.str();
}

}  // namespace

VerifyReport run_verify(const std::vector<std::string>& engines,
                        const VerifyOptions& opts) {
  VerifyReport report;
  report.opts = opts;
  const PassManager pm = PassManager::standard();

  for (const std::string& engine : engines) {
    for (const u32 w : opts.ws) {
      if (opts.b < w) {
        report.skipped.push_back(engine + "@w=" + std::to_string(w) +
                                 ": block smaller than the warp");
        continue;
      }
      if (engine == "shearsort" && opts.b % w != 0) {
        report.skipped.push_back(engine + "@w=" + std::to_string(w) +
                                 ": block not a multiple of the warp");
        continue;
      }
      report.shapes.push_back(verify_shape(pm, engine, w, opts));
    }
  }

  report.breakdown = sweep_breakdown(opts);
  if (opts.differential) {
    report.differential = run_differential(engines, opts);
  }

  report.proved = !report.shapes.empty();
  for (const ShapeVerdict& s : report.shapes) {
    report.proved = report.proved && s.ok;
  }
  report.differential_ok = true;
  for (const DifferentialCell& c : report.differential) {
    report.differential_ok = report.differential_ok && c.ok;
  }

  report.digest = fnv1a(json_body(report));
  return report;
}

void render_text(std::ostream& os, const VerifyReport& report) {
  for (const ShapeVerdict& s : report.shapes) {
    os << "verify " << s.engine << " w=" << s.w << ": barriers "
       << (s.barriers_uniform ? "uniform" : "DIVERGENT") << " ("
       << s.barriers_checked << "), def-use "
       << (s.defuse_clean ? "clean" : "DIRTY")
       << (s.defuse_seeded ? " [seeded]" : "") << ", bounds "
       << (s.bounds_proved ? "proved" : "UNPROVED") << " (read<="
       << s.max_read_bound << " write<=" << s.max_write_bound << ")"
       << (s.ok ? "" : " FAIL") << '\n';
    for (const Diagnostic& d : s.findings) {
      os << "  ";
      analyze::render_text(os, d);
    }
  }
  for (const std::string& s : report.skipped) {
    os << "skipped " << s << '\n';
  }
  for (const BreakdownRow& b : report.breakdown) {
    os << "breakdown w=" << b.w << " E=" << b.E << " gcd=" << b.gcd << " ("
       << b.regime << "): promised " << b.promised << ", attained "
       << b.attained << ", step bound " << b.step_bound
       << (b.breaks_down ? "  <- closed form no longer worst-case" : "")
       << '\n';
  }
  if (!report.differential.empty()) {
    std::size_t ok = 0;
    for (const DifferentialCell& c : report.differential) {
      ok += c.ok ? 1 : 0;
      if (!c.ok) {
        os << "differential FAIL " << c.engine << " w=" << c.w
           << " E=" << c.E << " layout=" << gpusim::to_string(c.layout)
           << ": " << c.violations << " step(s) exceed the static bound\n";
      }
    }
    os << "differential: " << ok << "/" << report.differential.size()
       << " cells bracketed\n";
  }
  os << (report.proved && report.differential_ok ? "verified"
                                                 : "NOT verified")
     << " [digest fnv1a:" << render_hex(report.digest) << "]\n";
}

void render_json(std::ostream& os, const VerifyReport& report) {
  os << json_body(report) << ",\"digest\":\"fnv1a:"
     << render_hex(report.digest) << "\"}\n";
}

}  // namespace wcm::analyze::passes
