#pragma once
// Static-analysis pass manager over the parametric access-pattern IR
// (gpusim/access_ir.hpp): ordered, composable verification passes that
// each read one engine's KernelDesc at one concrete warp width and emit
// analyze::Diagnostic findings.  Where the symbolic prover (analyze/
// symbolic) bounds *conflict degree*, these passes prove the memory-safety
// side of the same declarations, universally over the declared E range:
//
//   barrier-divergence  every barrier group is structurally well-formed
//                       and reached uniformly by all w lanes for every
//                       valuation (no lane-dependent trip counts, no
//                       overlapping or out-of-range lane pieces);
//   def-use             shared-memory liveness over interval x congruence
//                       address sets: every read group's footprint is
//                       contained in words initialized by an earlier fill
//                       or tiling-proved write, and every access stays
//                       inside [0, words);
//   conflict-bound      the parametric-w lift of the abstract interpreter:
//                       re-derives the prover's per-group bounds at the
//                       context's warp width and flags unproved groups and
//                       model divergences.
//
// The manager runs the passes in registration order, bumps the
// analyze.verify.* telemetry counters, and evaluates the
// "analyze.verify.pass" failpoint before each pass, so fault-injection
// tests can prove that a mid-pipeline failure surfaces as a typed
// wcm::error and never as a partially verified report.

#include <memory>
#include <string_view>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/symbolic/prove.hpp"
#include "gpusim/access_ir.hpp"

namespace wcm::analyze::passes {

/// Mutable state one (engine, shape) verification run threads through the
/// pipeline: the lifted IR, the findings sink, and per-pass verdict slots
/// the report renderer reads back.
struct PassContext {
  std::string engine;
  symbolic::ProveOptions opts;    ///< shape: w, b, pad, layout, E range
  gpusim::ir::KernelDesc desc;    ///< describe_engine(engine, opts)
  std::vector<Diagnostic> findings;

  // barrier-divergence verdict:
  bool barriers_uniform = false;
  std::size_t barriers_checked = 0;

  // def-use verdict:
  bool defuse_clean = false;
  /// The tile was assumed staged by the caller (an engine with no fill
  /// group whose first access is a read, e.g. block-merge) — a documented
  /// precondition, not a proof.
  bool defuse_seeded = false;

  // conflict-bound verdict:
  bool bounds_proved = false;
  symbolic::EngineReport bounds;

  [[nodiscard]] std::size_t error_count() const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : findings) {
      n += d.severity == Severity::error ? 1 : 0;
    }
    return n;
  }
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void run(PassContext& ctx) = 0;
};

[[nodiscard]] std::unique_ptr<Pass> make_barrier_divergence_pass();
[[nodiscard]] std::unique_ptr<Pass> make_defuse_pass();
[[nodiscard]] std::unique_ptr<Pass> make_conflict_bound_pass();

/// Ordered pass pipeline.  run() executes every registered pass against
/// the context and returns the number of error-severity findings added.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass);
  std::size_t run(PassContext& ctx) const;

  /// The canonical `wcmgen verify` pipeline: barrier-divergence, def-use,
  /// conflict-bound, in that order.
  [[nodiscard]] static PassManager standard();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace wcm::analyze::passes
