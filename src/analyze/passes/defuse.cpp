// Symbolic def-use pass: shared-memory liveness over interval x congruence
// address sets.  Proves, for every E in the declared range, that
//
//   * every access lands in [0, words)  (OOB-freedom; masked groups skip
//     the upper check because the kernel clamps lane participation at the
//     tile edge), and
//   * every read group's address set is contained in words initialized by
//     an earlier fill region or by a write group whose footprint is
//     *proved contiguous* by a tiling argument.
//
// The universal quantifier over E is discharged by pinning E to each value
// in [e_min, e_max] in turn; all other dimensions (warp shifts, inner loop
// parameters, lanes) stay symbolic and are handled abstractly:
//
// Tiling argument.  A pinned piece's address set is base + a sum of
// independent arithmetic generators {0, s, 2s, ..., s*(n-1)} — one per
// lane dimension, per parameter symbol (step = coeff * congruence modulus),
// and per warp-shift extent (step = step_form).  Sorting the generators by
// |step| and checking each |step| <= 1 + sum of earlier spans proves the
// set is a contiguous interval, which then credits the initialized set;
// a group that fails the argument simply earns no credit (sound: def-use
// may under-approximate writes, never over-approximate).
//
// Engines with no fill group whose first access is a read (block-merge)
// get the whole tile seeded as a *documented caller precondition* — the
// report flags the seed so the claim is visibly weaker than a proof.

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/passes/pass.hpp"
#include "analyze/symbolic/domain.hpp"
#include "util/math.hpp"

namespace wcm::analyze::passes {

namespace ir = gpusim::ir;

namespace {

/// Sorted, merged set of inclusive address intervals.
class IntervalSet {
 public:
  void add(i64 lo, i64 hi) {
    if (lo > hi) {
      return;
    }
    iv_.emplace_back(lo, hi);
    std::sort(iv_.begin(), iv_.end());
    std::vector<std::pair<i64, i64>> merged;
    for (const auto& [l, h] : iv_) {
      if (!merged.empty() && l <= merged.back().second + 1) {
        merged.back().second = std::max(merged.back().second, h);
      } else {
        merged.emplace_back(l, h);
      }
    }
    iv_ = std::move(merged);
  }

  [[nodiscard]] bool covers(i64 lo, i64 hi) const {
    if (lo > hi) {
      return true;
    }
    for (const auto& [l, h] : iv_) {
      if (l <= lo && hi <= h) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::pair<i64, i64>> iv_;
};

/// One arithmetic generator: the value set {0, step, ..., step*(count-1)}.
struct Gen {
  i64 step = 0;
  i64 count = 1;
};

/// A pinned piece decomposed into base + generators, or the reason it
/// could not be decomposed exactly.
struct PieceSet {
  bool exact = false;    ///< generators below are the exact address set
  bool executes = true;  ///< some symbol range was empty: piece never runs
  i64 base = 0;
  std::vector<Gen> gens;
  i64 lo = 0;  ///< footprint bounds (always valid, even when !exact)
  i64 hi = 0;
};

i64 span_of(const Gen& g) { return g.step * (g.count - 1); }

/// Decompose one lane piece of a pinned desc into base + generators.
PieceSet decompose(const ir::KernelDesc& desc, const ir::LanePiece& piece) {
  PieceSet out;
  out.base = piece.base.c;
  bool exact = true;

  const auto symbol_values =
      [&](const ir::Symbol& s) -> std::optional<std::pair<i64, Gen>> {
    // Returns (first value, generator over the offsets), or nullopt when
    // the value set cannot be enumerated exactly.
    if (s.role == ir::SymRole::warp_shift) {
      if (s.step_form.is_zero()) {
        if (s.lo != s.hi) {
          return std::nullopt;
        }
        return std::make_pair(s.lo, Gen{0, 1});
      }
      const auto step = symbolic::eval(s.step_form, desc);
      const auto max = symbolic::eval(s.max_form, desc);
      if (!step.exact() || !max.exact() || step.lo < 1 || max.lo < 0) {
        return std::nullopt;
      }
      return std::make_pair(i64{0}, Gen{step.lo, max.lo / step.lo + 1});
    }
    i64 hi = s.hi;
    if (s.upper_sym >= 0) {
      const ir::Symbol& upper =
          desc.symbols[static_cast<std::size_t>(s.upper_sym)];
      if (upper.lo != upper.hi) {
        return std::nullopt;
      }
      hi = upper.lo - 1;
    }
    const i64 m = s.mod > 1 ? static_cast<i64>(s.mod) : 1;
    const i64 first = s.lo + mod_floor(s.rem - s.lo, m);
    if (first > hi) {
      return std::make_pair(i64{0}, Gen{0, 0});  // empty range: never runs
    }
    return std::make_pair(first, Gen{m, (hi - first) / m + 1});
  };

  for (const auto& [idx, coeff] : piece.base.terms) {
    const ir::Symbol& s = desc.symbols[static_cast<std::size_t>(idx)];
    const auto values = symbol_values(s);
    if (!values) {
      exact = false;
      continue;
    }
    if (values->second.count == 0) {
      out.executes = false;
      return out;
    }
    out.base += coeff * values->first;
    if (values->second.count > 1) {
      out.gens.push_back(
          Gen{coeff * values->second.step, values->second.count});
    }
  }

  const auto stride = symbolic::eval(piece.stride, desc);
  const i64 nlanes =
      static_cast<i64>(piece.lane_hi) - static_cast<i64>(piece.lane_lo) + 1;
  if (nlanes > 1) {
    if (stride.exact()) {
      out.gens.push_back(Gen{stride.lo, nlanes});
    } else {
      exact = false;
    }
  }

  if (exact) {
    out.exact = true;
    out.lo = out.base;
    out.hi = out.base;
    for (const Gen& g : out.gens) {
      out.lo += std::min<i64>(0, span_of(g));
      out.hi += std::max<i64>(0, span_of(g));
    }
  } else {
    // Fall back to the abstract footprint: base through the extent-aware
    // domain plus the stride term's interval span.
    const auto base = symbolic::eval_extent(piece.base, desc);
    out.lo = base.lo;
    out.hi = base.hi;
    if (nlanes > 1) {
      out.lo += std::min<i64>({i64{0}, stride.lo * (nlanes - 1),
                               stride.hi * (nlanes - 1)});
      out.hi += std::max<i64>({i64{0}, stride.lo * (nlanes - 1),
                               stride.hi * (nlanes - 1)});
    }
  }
  return out;
}

/// Tiling contiguity proof over the generators.
bool proves_contiguous(std::vector<Gen> gens) {
  for (Gen& g : gens) {
    g.step = g.step < 0 ? -g.step : g.step;
  }
  std::sort(gens.begin(), gens.end(),
            [](const Gen& a, const Gen& b) { return a.step < b.step; });
  i64 span = 1;  // one address is trivially contiguous
  for (const Gen& g : gens) {
    if (g.step > span) {
      return false;
    }
    span += g.step * (g.count - 1);
  }
  return true;
}

class DefUsePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "def-use";
  }

  void run(PassContext& ctx) override {
    const std::size_t errors_before = ctx.error_count();
    ctx.defuse_seeded = false;

    if (ctx.desc.words.is_zero()) {
      Diagnostic d;
      d.severity = Severity::warning;
      d.rule = Rule::out_of_bounds;
      d.message = "kernel '" + ctx.desc.kernel +
                  "' declares no shared-word budget; def-use not provable";
      ctx.findings.push_back(std::move(d));
      ctx.defuse_clean = false;
      return;
    }

    const int e_sym = ctx.desc.find_symbol("E");
    const u32 e_lo = e_sym >= 0 ? ctx.opts.e_min : 1;
    const u32 e_hi = e_sym >= 0 ? ctx.opts.effective_e_max() : 1;
    for (u32 e = e_lo; e <= e_hi; ++e) {
      if (e_sym >= 0) {
        // Respect the declared E congruence (an odd-E-only range must not
        // be "refuted" at an E outside it).
        const ir::Symbol& es =
            ctx.desc.symbols[static_cast<std::size_t>(e_sym)];
        if (es.mod > 1 &&
            mod_floor(static_cast<i64>(e), static_cast<i64>(es.mod)) !=
                es.rem) {
          continue;
        }
      }
      ir::KernelDesc pinned = ctx.desc;
      if (e_sym >= 0) {
        ir::Symbol& s = pinned.symbols[static_cast<std::size_t>(e_sym)];
        s.lo = e;
        s.hi = e;
        s.mod = 1;
        s.rem = 0;
      }
      check_pinned(ctx, pinned, e);
    }

    ctx.defuse_clean = ctx.error_count() == errors_before;
  }

 private:
  /// One finding per (group, rule) across the whole E sweep — the first
  /// failing E is the witness; repeating it 256 times adds nothing.
  std::set<std::pair<std::size_t, int>> reported_;

  void emit(PassContext& ctx, Rule rule, std::size_t g, Severity severity,
            std::string message) {
    if (!reported_.insert({g, static_cast<int>(rule)}).second) {
      return;
    }
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.step = g;
    d.message = std::move(message);
    ctx.findings.push_back(std::move(d));
  }

  void check_pinned(PassContext& ctx, const ir::KernelDesc& desc, u32 e) {
    const auto words = symbolic::eval(desc.words, desc);
    if (!words.exact() || words.lo < 1) {
      emit(ctx, Rule::out_of_bounds, Diagnostic::kNoStep, Severity::error,
           "shared-word budget does not evaluate to a positive constant at "
           "E=" + std::to_string(e));
      return;
    }
    const i64 W = words.lo;
    const std::string at = " at E=" + std::to_string(e);

    IntervalSet init;
    seed_if_precondition(ctx, desc, W, init);

    for (std::size_t g = 0; g < desc.groups.size(); ++g) {
      const ir::StepGroup& group = desc.groups[g];
      switch (group.kind) {
        case ir::GroupKind::barrier:
          break;
        case ir::GroupKind::fill: {
          const auto region = region_of(desc, group);
          if (!region) {
            emit(ctx, Rule::uninitialized_read, g, Severity::warning,
                 "fill '" + group.name +
                     "' has no evaluable region; no initialization credit");
            break;
          }
          check_bounds(ctx, g, group, region->first, region->second, W, at);
          init.add(region->first, region->second);
          break;
        }
        case ir::GroupKind::read:
        case ir::GroupKind::write:
          check_access(ctx, desc, g, group, W, init, at);
          break;
      }
    }
  }

  void seed_if_precondition(PassContext& ctx, const ir::KernelDesc& desc,
                            i64 W, IntervalSet& init) {
    bool has_fill = false;
    for (const ir::StepGroup& g : desc.groups) {
      has_fill = has_fill || g.kind == ir::GroupKind::fill;
    }
    if (has_fill) {
      return;
    }
    for (const ir::StepGroup& g : desc.groups) {
      if (g.kind == ir::GroupKind::barrier) {
        continue;
      }
      if (g.kind == ir::GroupKind::read) {
        // No fill and the kernel leads with a read: the tile is staged by
        // the caller (block-merge runs after blocksort).  Seed the whole
        // budget and say so — this is a precondition, not a proof.
        init.add(0, W - 1);
        if (!ctx.defuse_seeded) {
          ctx.defuse_seeded = true;
          Diagnostic d;
          d.severity = Severity::note;
          d.rule = Rule::uninitialized_read;
          d.message = "kernel '" + ctx.desc.kernel +
                      "' reads before any fill or write: tile assumed "
                      "caller-staged (documented precondition)";
          ctx.findings.push_back(std::move(d));
        }
      }
      return;  // only the first access group decides
    }
  }

  /// Declared region of a group, exactly evaluated; nullopt when absent or
  /// not constant under the pinned valuation.
  static std::optional<std::pair<i64, i64>> region_of(
      const ir::KernelDesc& desc, const ir::StepGroup& group) {
    if (!group.has_region) {
      return std::nullopt;
    }
    const auto lo = symbolic::eval(group.region_lo, desc);
    const auto hi = symbolic::eval(group.region_hi, desc);
    if (!lo.exact() || !hi.exact()) {
      return std::nullopt;
    }
    return std::make_pair(lo.lo, hi.lo);
  }

  void check_bounds(PassContext& ctx, std::size_t g,
                    const ir::StepGroup& group, i64 lo, i64 hi, i64 W,
                    const std::string& at) {
    if (lo < 0) {
      emit(ctx, Rule::out_of_bounds, g, Severity::error,
           "group '" + group.name + "' reaches address " +
               std::to_string(lo) + " below the tile" + at);
    }
    // Masked groups clamp lane participation at the tile edge, so their
    // declared upper footprint may legally overshoot the budget.
    if (!group.masked && hi >= W) {
      emit(ctx, Rule::out_of_bounds, g, Severity::error,
           "group '" + group.name + "' reaches address " +
               std::to_string(hi) + " past the " + std::to_string(W) +
               "-word budget" + at);
    }
  }

  void check_access(PassContext& ctx, const ir::KernelDesc& desc,
                    std::size_t g, const ir::StepGroup& group, i64 W,
                    IntervalSet& init, const std::string& at) {
    const bool is_read = group.kind == ir::GroupKind::read;
    const auto region = region_of(desc, group);

    if (group.pattern.kind == ir::PatternKind::window) {
      if (!region) {
        emit(ctx, is_read ? Rule::uninitialized_read : Rule::out_of_bounds,
             g, is_read ? Severity::error : Severity::warning,
             "window '" + group.name +
                 "' has no declared region; containment unprovable" + at);
        return;
      }
      check_bounds(ctx, g, group, region->first, region->second, W, at);
      if (is_read && !init.covers(region->first,
                                  std::min(region->second, W - 1))) {
        emit(ctx, Rule::uninitialized_read, g, Severity::error,
             "window read '" + group.name + "' region [" +
                 std::to_string(region->first) + ", " +
                 std::to_string(region->second) +
                 "] is not fully initialized" + at);
      }
      // Window writes scatter data-dependently inside the region: sound
      // for bounds, but no coverage credit.
      return;
    }

    for (const ir::LanePiece& piece : group.pattern.pieces) {
      const PieceSet set = decompose(desc, piece);
      if (!set.executes) {
        continue;
      }
      const i64 lo = region ? std::max(set.lo, region->first) : set.lo;
      const i64 hi = region ? std::min(set.hi, region->second) : set.hi;
      check_bounds(ctx, g, group,
                   region ? region->first : set.lo,
                   region ? region->second : set.hi, W, at);
      if (is_read) {
        if (!init.covers(lo, std::min(hi, W - 1))) {
          emit(ctx, Rule::uninitialized_read, g, Severity::error,
               "read '" + group.name + "' footprint [" + std::to_string(lo) +
                   ", " + std::to_string(hi) +
                   "] is not fully initialized" + at);
        }
      } else if (!group.masked && set.exact &&
                 proves_contiguous(set.gens)) {
        init.add(std::max<i64>(set.lo, 0), std::min<i64>(set.hi, W - 1));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_defuse_pass() {
  return std::make_unique<DefUsePass>();
}

}  // namespace wcm::analyze::passes
