#pragma once
// The `wcmgen verify` front end: runs the static-analysis pass pipeline
// (pass.hpp) over every requested engine at every requested warp width,
// then backs the static claims with two independent obligations:
//
//   breakdown — the parametric-w sweep's negative result, made precise:
//               for every non-coprime (w, E) regime (gcd(w, E) > 1) the
//               report compares the aligned-element count the Theorem 3/9
//               closed forms would promise against what the sorted-order
//               construction actually attains (maximised over the
//               alignment-window start and per-thread scan orders),
//               pinpointing exactly where the paper's worst-case
//               constructions stop being worst-case;
//   differential — the static-vs-dynamic gate: on a small concrete grid
//               every engine runs end to end with a trace recorder and the
//               replayed per-step conflict degrees must be bracketed by
//               the conflict bounds the static pipeline derived for that
//               exact (engine, E, w, layout) cell.
//
// The report is deterministic and digest-sealed (fnv1a over the JSON body,
// same sealing as `wcmgen prove`), so CI can byte-compare two runs.

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/passes/pass.hpp"
#include "gpusim/layout.hpp"

namespace wcm::analyze::passes {

struct VerifyOptions {
  std::vector<u32> ws = {2, 4, 8, 16, 32, 64};  ///< warp widths to sweep
  u32 b = 64;
  u32 pad = 0;
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 1;
  u32 e_max = 256;
  u32 ways = 4;        ///< multiway fan-in
  u32 digit_bits = 4;  ///< radix digit width
  bool any_e = true;   ///< verify every E, not only the odd ones
  bool differential = true;
  bool json = false;
};

/// One (engine, w) shape's verdicts from the three passes.
struct ShapeVerdict {
  std::string engine;
  u32 w = 0;
  bool barriers_uniform = false;
  std::size_t barriers_checked = 0;
  bool defuse_clean = false;
  bool defuse_seeded = false;
  bool bounds_proved = false;
  u64 max_read_bound = 0;
  u64 max_write_bound = 0;
  std::vector<Diagnostic> findings;
  bool ok = false;  ///< all three verdicts hold and no error finding
};

/// One non-coprime (w, E) cell of the parametric sweep: does the coprime
/// closed form still describe the worst case here?
struct BreakdownRow {
  u32 w = 0;
  u32 E = 0;
  u32 gcd = 0;
  std::string regime;  ///< "power_of_two" | "shared_factor"
  u64 promised = 0;    ///< Theorem 3/9 closed form, coprimality assumed
  u64 attained = 0;    ///< best sorted-order alignment over window starts
  u64 step_bound = 0;  ///< symbolic theorem-site window bound at this E
  bool breaks_down = false;  ///< attained < promised
};

/// One cell of the static-vs-dynamic differential gate.
struct DifferentialCell {
  std::string engine;
  u32 w = 0;
  u32 E = 0;
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u64 max_read_bound = 0;
  u64 max_write_bound = 0;
  std::size_t violations = 0;  ///< replayed steps exceeding their bound
  bool ok = false;
};

struct VerifyReport {
  VerifyOptions opts;
  std::vector<ShapeVerdict> shapes;
  std::vector<std::string> skipped;  ///< "engine@w: reason" shape skips
  std::vector<BreakdownRow> breakdown;
  std::vector<DifferentialCell> differential;
  bool proved = false;           ///< every shape verdict ok
  bool differential_ok = false;  ///< every differential cell bracketed
  u64 digest = 0;                ///< fnv1a over the rendered JSON body
};

/// Run the pipeline.  Throws wcm::parse_error on an unknown engine name;
/// propagates the typed error of an injected pass failure unchanged (no
/// partial report survives a mid-pipeline fault).
[[nodiscard]] VerifyReport run_verify(const std::vector<std::string>& engines,
                                      const VerifyOptions& opts);

void render_text(std::ostream& os, const VerifyReport& report);
void render_json(std::ostream& os, const VerifyReport& report);

}  // namespace wcm::analyze::passes
