// Parametric-w conflict-bound pass: the lift of the symbolic abstract
// interpreter from the hardcoded w=32 shape to the pass context's warp
// width.  Re-derives every group's conflict bound through prove_engine at
// (w, b, pad, layout, E-range) and converts the prover's weak spots into
// pass findings:
//
//   * a group whose bound came from the trivial fallback method means the
//     abstract domain could not classify the pattern at this w — flagged
//     as unproved_access so the aggregate "proved" verdict is honest;
//   * a nonempty divergence note means the closed-form theorem bound and
//     the interpreter disagree at this w — flagged as symbolic_divergence
//     (this is exactly where the Theorem 3/9 constructions stop being
//     worst-case for non-coprime gcd(w, E) regimes).
//
// The full EngineReport is parked on the context so the verify report can
// render per-group bounds and the differential gate can replay them.

#include <algorithm>
#include <string>

#include "analyze/passes/pass.hpp"
#include "analyze/symbolic/prove.hpp"

namespace wcm::analyze::passes {

namespace {

class ConflictBoundPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "conflict-bound";
  }

  void run(PassContext& ctx) override {
    // The conflict prover's domain is the paper's E < w regime (the
    // describers declare E up to w - 1); def-use deliberately sweeps far
    // past it, so clamp the prover's range rather than feed it empty or
    // out-of-model E intervals.
    symbolic::ProveOptions popts = ctx.opts;
    const u32 w = popts.w;
    const u32 hi =
        std::max<u32>(1, std::min(popts.effective_e_max(),
                                  w > 1 ? w - 1 : 1));
    popts.e_max = hi;
    popts.e_min = std::max<u32>(1, std::min(popts.e_min, hi));
    ctx.bounds = symbolic::prove_engine(ctx.engine, popts);
    ctx.bounds_proved = ctx.bounds.all_proved;

    for (const symbolic::GroupReport& group : ctx.bounds.groups) {
      if (group.bound.method == "trivial") {
        Diagnostic d;
        d.severity = Severity::error;
        d.rule = Rule::unproved_access;
        d.message = "group '" + group.name +
                    "' conflict bound not proved at w=" +
                    std::to_string(ctx.opts.w) + " (trivial fallback: " +
                    group.bound.detail + ")";
        ctx.findings.push_back(std::move(d));
      }
      if (!group.bound.divergence.empty()) {
        Diagnostic d;
        d.severity = Severity::warning;
        d.rule = Rule::symbolic_divergence;
        d.message = "group '" + group.name + "' at w=" +
                    std::to_string(ctx.opts.w) + ": " +
                    group.bound.divergence;
        ctx.findings.push_back(std::move(d));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_conflict_bound_pass() {
  return std::make_unique<ConflictBoundPass>();
}

}  // namespace wcm::analyze::passes
