// Barrier-divergence pass: proves every barrier group of a KernelDesc is
// reached uniformly by all w lanes for every valuation of the declared
// symbol ranges.
//
// The IR is straight-line (groups execute in declaration order; repeat
// counts come from warp-uniform parameter symbols), so divergence can only
// enter through an ill-formed declaration: a barrier that carries an
// access pattern, a lane piece outside [0, w), two pieces claiming the
// same lane in one step, a window admitting more lanes than the warp has,
// or a trip-count symbol whose declared range is empty or whose warp-shift
// extent is malformed.  Each such defect is a concrete way real kernels
// deadlock (a __syncthreads inside a lane-divergent branch); proving their
// absence, together with the warp-uniformity of every symbol role, proves
// uniform reachability.

#include <string>

#include "analyze/passes/pass.hpp"
#include "analyze/symbolic/domain.hpp"

namespace wcm::analyze::passes {

namespace ir = gpusim::ir;

namespace {

class BarrierDivergencePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "barrier-divergence";
  }

  void run(PassContext& ctx) override {
    const ir::KernelDesc& desc = ctx.desc;
    const std::size_t errors_before = ctx.error_count();
    ctx.barriers_checked = 0;

    check_symbols(ctx);
    for (std::size_t g = 0; g < desc.groups.size(); ++g) {
      const ir::StepGroup& group = desc.groups[g];
      if (group.kind == ir::GroupKind::barrier) {
        ++ctx.barriers_checked;
        check_barrier(ctx, g, group);
      } else {
        check_lanes(ctx, g, group);
      }
      check_forms(ctx, g, group);
    }

    ctx.barriers_uniform = ctx.error_count() == errors_before;
  }

 private:
  static void emit(PassContext& ctx, Rule rule, std::size_t step,
                   std::string message) {
    Diagnostic d;
    d.severity = Severity::error;
    d.rule = rule;
    d.step = step;
    d.message = std::move(message);
    ctx.findings.push_back(std::move(d));
  }

  /// Every symbol a trip count or address can mention must be warp-uniform
  /// with a nonempty value set; warp-shift extents may only reference
  /// earlier parameter symbols (so they evaluate before the shift does).
  static void check_symbols(PassContext& ctx) {
    const ir::KernelDesc& desc = ctx.desc;
    for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
      const ir::Symbol& s = desc.symbols[i];
      if (s.mod < 1) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "symbol '" + s.name + "' declares a zero congruence modulus");
        continue;
      }
      if (s.upper_sym < 0 && s.lo > s.hi) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "symbol '" + s.name + "' has an empty declared range [" +
                 std::to_string(s.lo) + ", " + std::to_string(s.hi) + "]");
      }
      if (s.upper_sym >= 0 && static_cast<std::size_t>(s.upper_sym) >= i) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "symbol '" + s.name + "' bounds itself by a later symbol");
      }
      if (s.role != ir::SymRole::warp_shift) {
        continue;
      }
      // A zero step_form is the "pinned" sentinel, so an extent declared
      // without a step is unverifiable; a zero max_form with a live step
      // is fine — it is the degenerate one-warp value set {0} (b == w).
      if (s.step_form.is_zero() && !s.max_form.is_zero()) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "warp shift '" + s.name + "' declares an extent but no step");
        continue;
      }
      if (s.step_form.is_zero()) {
        continue;  // pinned-zero shift: nothing else to validate
      }
      for (const ir::LinForm* form : {&s.max_form, &s.step_form}) {
        for (const auto& [idx, coeff] : form->terms) {
          (void)coeff;
          const bool earlier_param =
              idx >= 0 && static_cast<std::size_t>(idx) < i &&
              desc.symbols[static_cast<std::size_t>(idx)].role ==
                  ir::SymRole::parameter;
          if (!earlier_param) {
            emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
                 "warp shift '" + s.name +
                     "' extent references a non-prior symbol");
          }
        }
      }
      const symbolic::AbsVal step = symbolic::eval(s.step_form, desc);
      if (step.lo < 1) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "warp shift '" + s.name + "' can step by less than one word");
      }
      if (symbolic::eval(s.max_form, desc).lo < 0) {
        emit(ctx, Rule::barrier_divergence, Diagnostic::kNoStep,
             "warp shift '" + s.name + "' extent can be negative");
      }
    }
  }

  /// A barrier is uniform only if it is *bare*: any attached access,
  /// masking, or atomicity means some lanes would do work others skip on
  /// the way in.
  static void check_barrier(PassContext& ctx, std::size_t g,
                            const ir::StepGroup& group) {
    const bool bare = group.pattern.pieces.empty() &&
                      group.pattern.active == 0 && !group.atomic &&
                      !group.masked;
    if (!bare) {
      emit(ctx, Rule::barrier_divergence, g,
           "barrier '" + group.name +
               "' carries lane work; not provably reached uniformly");
    }
  }

  static void check_lanes(PassContext& ctx, std::size_t g,
                          const ir::StepGroup& group) {
    const u32 w = ctx.desc.w;
    if (group.pattern.kind == ir::PatternKind::window) {
      if (group.pattern.active < 1 || group.pattern.active > w) {
        emit(ctx, Rule::lane_out_of_range, g,
             "window '" + group.name + "' admits " +
                 std::to_string(group.pattern.active) + " lanes on a " +
                 std::to_string(w) + "-lane warp");
      }
      return;
    }
    std::vector<bool> claimed(w, false);
    for (const ir::LanePiece& piece : group.pattern.pieces) {
      if (piece.lane_lo > piece.lane_hi || piece.lane_hi >= w) {
        emit(ctx, Rule::lane_out_of_range, g,
             "group '" + group.name + "' piece covers lanes [" +
                 std::to_string(piece.lane_lo) + ", " +
                 std::to_string(piece.lane_hi) + "] outside the " +
                 std::to_string(w) + "-lane warp");
        continue;
      }
      for (u32 lane = piece.lane_lo; lane <= piece.lane_hi; ++lane) {
        if (claimed[lane]) {
          emit(ctx, Rule::duplicate_lane, g,
               "group '" + group.name + "' claims lane " +
                   std::to_string(lane) + " in two pieces of one step");
          break;
        }
        claimed[lane] = true;
      }
    }
  }

  /// Every linear form must stay inside the symbol table.
  static void check_forms(PassContext& ctx, std::size_t g,
                          const ir::StepGroup& group) {
    const auto valid = [&](const ir::LinForm& lf) {
      for (const auto& [idx, coeff] : lf.terms) {
        (void)coeff;
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= ctx.desc.symbols.size()) {
          return false;
        }
      }
      return true;
    };
    bool ok = valid(group.pattern.span) && valid(group.pattern.nranges) &&
              valid(group.region_lo) && valid(group.region_hi);
    for (const ir::LanePiece& piece : group.pattern.pieces) {
      ok = ok && valid(piece.base) && valid(piece.stride);
    }
    if (!ok) {
      emit(ctx, Rule::barrier_divergence, g,
           "group '" + group.name +
               "' references a symbol outside the declared table");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_barrier_divergence_pass() {
  return std::make_unique<BarrierDivergencePass>();
}

}  // namespace wcm::analyze::passes
