#include "analyze/passes/pass.hpp"

#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace wcm::analyze::passes {

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::size_t PassManager::run(PassContext& ctx) const {
  const std::size_t before = ctx.error_count();
  for (const auto& pass : passes_) {
    // Fault-injection seam: a failure here must abort the whole shape's
    // verification (typed error, nonzero exit, no partial report) rather
    // than let later passes certify on top of a half-run pipeline.
    WCM_FAILPOINT("analyze.verify.pass", simulation_error,
                  "injected verification pass failure");
    if (telemetry::enabled()) {
      telemetry::registry()
          .counter("analyze.verify.pass",
                   {{"pass", std::string(pass->name())},
                    {"engine", ctx.engine}})
          .add(1);
    }
    pass->run(ctx);
    if (ctx.error_count() > before) {
      // Each pass assumes the invariants its predecessors proved (the
      // def-use decomposition indexes symbols the divergence pass vets),
      // so stop at the first erroring pass; the skipped passes leave
      // their verdict slots at the unproven default.
      break;
    }
  }
  const std::size_t added = ctx.error_count() - before;
  if (telemetry::enabled() && added > 0) {
    telemetry::registry()
        .counter("analyze.verify.findings", {{"engine", ctx.engine}})
        .add(added);
  }
  return added;
}

PassManager PassManager::standard() {
  PassManager pm;
  pm.add(make_barrier_divergence_pass());
  pm.add(make_defuse_pass());
  pm.add(make_conflict_bound_pass());
  return pm;
}

}  // namespace wcm::analyze::passes
