#pragma once
// Shared driver behind `wcm-lint` and `wcmgen analyze`: load each trace
// file, run the analyzer, render the findings, and fold everything into
// one process exit code:
//
//   0  every trace parsed and produced zero diagnostics
//   1  at least one diagnostic (any severity) was reported
//   3  at least one trace file was missing, unreadable, or corrupt
//
// 3 dominates 1: a stream the parser rejected may hide anything.  Usage
// errors (unknown flags) are the CLIs' own concern and exit 2, matching
// wcmgen's established 0/2/3/4/5 contract (docs/API.md).

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace wcm::analyze {

struct LintOptions {
  AnalyzeOptions analysis;
  bool json = false;
};

/// Lint `files` (each a WCMT/WCMT2 stream); reports go to `out`, file-level
/// failures to `err`.  Returns the exit code described above.
[[nodiscard]] int run_lint(const std::vector<std::string>& files,
                           const LintOptions& options, std::ostream& out,
                           std::ostream& err);

}  // namespace wcm::analyze
