#include "analyze/race.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace wcm::analyze {

namespace {

/// Pairing state of one logical address within the current epoch.
struct AddrState {
  /// Last write, if any: step index, lane, atomic tag.
  bool written = false;
  std::size_t write_step = 0;
  u32 write_lane = 0;
  bool write_atomic = false;
  /// One recorded load of the address since the last write.
  struct Reader {
    u32 lane = 0;
    bool atomic = false;
    std::size_t step = 0;
  };
  std::vector<Reader> readers;
};

std::string addr_text(std::size_t addr) {
  return "logical address " + std::to_string(addr);
}

}  // namespace

std::vector<Diagnostic> check_races(const gpusim::Trace& trace) {
  std::vector<Diagnostic> out;
  std::unordered_map<std::size_t, AddrState> state;

  for (std::size_t si = 0; si < trace.steps.size(); ++si) {
    const gpusim::TraceStep& step = trace.steps[si];
    if (step.kind == gpusim::StepKind::barrier) {
      state.clear();
      continue;
    }
    if (!step.is_access()) {
      continue;
    }

    // Intra-step CREW: any address touched by >= 2 lanes of a write step
    // has racing simultaneous stores (duplicate lanes are the memcheck
    // pass's finding, not repeated here).
    if (step.is_write()) {
      std::unordered_map<std::size_t, std::vector<u32>> by_addr;
      for (const auto& [lane, addr] : step.accesses) {
        by_addr[addr].push_back(lane);
      }
      for (auto& [addr, lanes] : by_addr) {
        std::sort(lanes.begin(), lanes.end());
        if (lanes.size() >= 2 && lanes.front() != lanes.back()) {
          out.push_back({Severity::error, Rule::intra_step_crew, si, lanes,
                         "simultaneous stores to " + addr_text(addr)});
        }
      }
    }

    for (const auto& [lane, addr] : step.accesses) {
      AddrState& st = state[addr];
      const bool exempt_vs_write = st.write_atomic && step.atomic;
      if (step.is_write()) {
        // Same-step write pairs are the intra-step CREW finding above.
        if (st.written && st.write_step != si && st.write_lane != lane &&
            !exempt_vs_write) {
          out.push_back(
              {Severity::error, Rule::write_write_race, si,
               {std::min(st.write_lane, lane), std::max(st.write_lane, lane)},
               "store in step " + std::to_string(si) + " races store in step " +
                   std::to_string(st.write_step) + " to " + addr_text(addr) +
                   " (no barrier between)"});
        }
        for (const auto& r : st.readers) {
          if (r.lane != lane && !(r.atomic && step.atomic)) {
            out.push_back(
                {Severity::error, Rule::read_write_race, si,
                 {std::min(r.lane, lane), std::max(r.lane, lane)},
                 "store in step " + std::to_string(si) +
                     " races load in step " + std::to_string(r.step) + " of " +
                     addr_text(addr) + " (no barrier between)"});
          }
        }
        st.written = true;
        st.write_step = si;
        st.write_lane = lane;
        st.write_atomic = step.atomic;
        st.readers.clear();
      } else {
        if (st.written && st.write_lane != lane && !exempt_vs_write) {
          out.push_back(
              {Severity::error, Rule::write_read_race, si,
               {std::min(st.write_lane, lane), std::max(st.write_lane, lane)},
               "load in step " + std::to_string(si) + " races store in step " +
                   std::to_string(st.write_step) + " to " + addr_text(addr) +
                   " (no barrier between)"});
        }
        st.readers.push_back({lane, step.atomic, si});
      }
    }
  }
  return out;
}

}  // namespace wcm::analyze
