#include "analyze/analyzer.hpp"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <string>

#include "analyze/memcheck.hpp"
#include "analyze/race.hpp"

namespace wcm::analyze {

std::size_t AnalysisReport::errors() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::error;
                    }));
}

std::size_t AnalysisReport::warnings() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::warning;
                    }));
}

AnalysisReport analyze_trace(const gpusim::Trace& trace,
                             const AnalyzeOptions& options) {
  AnalysisReport report;
  report.steps = trace.steps.size();
  report.access_steps = trace.access_steps();
  report.barriers = trace.barrier_count();

  auto mem = check_memory(trace);
  auto races = check_races(trace);

  // The DMM replay rejects exactly the structural findings of those two
  // passes (duplicate lanes, CREW stores); cross-check only clean traces.
  const bool replayable =
      std::none_of(mem.begin(), mem.end(),
                   [](const Diagnostic& d) {
                     return d.rule == Rule::duplicate_lane ||
                            d.rule == Rule::lane_out_of_range;
                   }) &&
      std::none_of(races.begin(), races.end(), [](const Diagnostic& d) {
        return d.rule == Rule::intra_step_crew;
      });

  report.diagnostics.reserve(mem.size() + races.size());
  std::move(mem.begin(), mem.end(), std::back_inserter(report.diagnostics));
  std::move(races.begin(), races.end(),
            std::back_inserter(report.diagnostics));

  if (options.cross_check && replayable) {
    StrideReport strides = check_strides(
        trace,
        gpusim::SharedLayout{trace.warp_size, options.pad, options.layout});
    report.affine_steps = strides.affine_steps;
    report.cross_checked = true;
    std::move(strides.diagnostics.begin(), strides.diagnostics.end(),
              std::back_inserter(report.diagnostics));
  }

  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.step != b.step) {
                       return a.step < b.step;
                     }
                     return static_cast<int>(a.rule) <
                            static_cast<int>(b.rule);
                   });
  return report;
}

void render_text(std::ostream& os, const AnalysisReport& report,
                 const std::string& name) {
  for (const Diagnostic& d : report.diagnostics) {
    os << name << ": ";
    render_text(os, d);
  }
  os << name << ": " << report.errors() << " error(s), " << report.warnings()
     << " warning(s) over " << report.access_steps << " access step(s), "
     << report.barriers << " barrier(s)";
  if (report.cross_checked) {
    os << "; " << report.affine_steps << " affine step(s) cross-checked";
  } else {
    os << "; stride cross-check skipped";
  }
  os << '\n';
}

void render_json(std::ostream& os, const AnalysisReport& report,
                 const std::string& name) {
  os << "{\"trace\":\"" << name << "\",\"steps\":" << report.steps
     << ",\"access_steps\":" << report.access_steps
     << ",\"barriers\":" << report.barriers
     << ",\"affine_steps\":" << report.affine_steps
     << ",\"cross_checked\":" << (report.cross_checked ? "true" : "false")
     << ",\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings() << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    render_json(os, report.diagnostics[i]);
  }
  os << "]}";
}

}  // namespace wcm::analyze
