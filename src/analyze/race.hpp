#pragma once
// Static race detection over a recorded shared-memory access trace.
//
// The model: all lanes of a step execute simultaneously, and steps within
// one *barrier interval* (the span between two `B` markers, a.k.a. an
// epoch) have no ordering guarantee across lanes — exactly the CUDA
// shared-memory contract.  Two accesses to the same logical address in the
// same epoch race when they come from *different* lanes, at least one is a
// write, and they are not both halves of modeled atomics:
//
//   * write in step i, read  in step j > i  -> write-read race
//   * write in step i, write in step j > i  -> write-write race
//   * read  in step i, write in step j > i  -> read-write race
//
// Same-lane pairs are program-ordered (a thread observes its own stores)
// and exempt.  Atomic/atomic pairs (the `AR`/`AW` halves of histogram
// updates) are exempt; atomic/non-atomic pairs still race.  A barrier
// clears all pairing state.  Within one step, >= 2 lanes touching one
// written address is the DMM's CREW violation, reported statically as
// intra-step-crew.

#include <vector>

#include "analyze/diagnostics.hpp"
#include "gpusim/trace.hpp"

namespace wcm::analyze {

/// Run the race pass; diagnostics are ordered by the (later) step index.
[[nodiscard]] std::vector<Diagnostic> check_races(const gpusim::Trace& trace);

}  // namespace wcm::analyze
