#include "analyze/diagnostics.hpp"

#include <ostream>

namespace wcm::analyze {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::note:
      return "note";
    case Severity::warning:
      return "warning";
    case Severity::error:
      return "error";
  }
  return "?";
}

const char* to_string(Rule r) noexcept {
  switch (r) {
    case Rule::write_read_race:
      return "write-read-race";
    case Rule::write_write_race:
      return "write-write-race";
    case Rule::read_write_race:
      return "read-write-race";
    case Rule::intra_step_crew:
      return "intra-step-crew";
    case Rule::out_of_bounds:
      return "out-of-bounds";
    case Rule::uninitialized_read:
      return "uninitialized-read";
    case Rule::duplicate_lane:
      return "duplicate-lane";
    case Rule::lane_out_of_range:
      return "lane-out-of-range";
    case Rule::stride_divergence:
      return "stride-divergence";
    case Rule::unproved_access:
      return "unproved-access";
    case Rule::symbolic_divergence:
      return "symbolic-divergence";
    case Rule::theorem_divergence:
      return "theorem-divergence";
    case Rule::barrier_divergence:
      return "barrier-divergence";
  }
  return "?";
}

namespace {

void render_lanes(std::ostream& os, const std::vector<u32>& lanes,
                  const char* open, const char* close) {
  os << open;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << lanes[i];
  }
  os << close;
}

/// Escape for a JSON string literal (mirrors analysis/json_export.cpp).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void render_text(std::ostream& os, const Diagnostic& d) {
  os << to_string(d.severity) << ": " << to_string(d.rule);
  if (d.step != Diagnostic::kNoStep) {
    os << " at step " << d.step;
  }
  if (!d.lanes.empty()) {
    render_lanes(os, d.lanes, " [lanes ", "]");
  }
  os << ": " << d.message << '\n';
}

void render_json(std::ostream& os, const Diagnostic& d) {
  os << "{\"severity\":\"" << to_string(d.severity) << "\",\"rule\":\""
     << to_string(d.rule) << "\"";
  if (d.step != Diagnostic::kNoStep) {
    os << ",\"step\":" << d.step;
  }
  render_lanes(os, d.lanes, ",\"lanes\":[", "]");
  os << ",\"message\":\"" << escape(d.message) << "\"}";
}

}  // namespace wcm::analyze
