#pragma once
// The kernel sanitizer's front door: run every static pass over one
// recorded trace and collect the findings into one report.  Pass order
// matters — memcheck and the race/CREW pass are pure trace walks, while
// the stride cross-check replays the trace through the DMM machine, which
// *throws* on CREW violations and duplicate lanes; the analyzer therefore
// only cross-checks traces the structural passes found clean.

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/stride.hpp"
#include "gpusim/trace.hpp"

namespace wcm::analyze {

struct AnalyzeOptions {
  /// Padding words per w logical words for the stride cross-check; the
  /// bank count always comes from the trace's warp size.
  u32 pad = 0;
  /// Bank permutation for the stride cross-check (gpusim/layout.hpp).
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  /// Run the predicted-vs-measured stride cross-check (skipped
  /// automatically when structural errors make the replay impossible).
  bool cross_check = true;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t steps = 0;
  std::size_t access_steps = 0;
  std::size_t barriers = 0;
  std::size_t affine_steps = 0;
  /// False when structural errors forced the stride pass to be skipped.
  bool cross_checked = false;

  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;
  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
};

/// Run memcheck, the race detector, and (optionally) the stride
/// cross-check.  Diagnostics are sorted by step index, then rule.
[[nodiscard]] AnalysisReport analyze_trace(const gpusim::Trace& trace,
                                           const AnalyzeOptions& options = {});

/// Human-readable report: one line per diagnostic plus a summary line.
/// `name` labels the trace (typically the file path).
void render_text(std::ostream& os, const AnalysisReport& report,
                 const std::string& name);

/// JSON object for the whole report.
void render_json(std::ostream& os, const AnalysisReport& report,
                 const std::string& name);

}  // namespace wcm::analyze
