#include "analyze/symbolic/theorems.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "analyze/symbolic/domain.hpp"
#include "core/assignment.hpp"
#include "core/numbers.hpp"
#include "core/warp_construction.hpp"
#include "sort/describe.hpp"
#include "util/check.hpp"

namespace wcm::analyze::symbolic {

namespace {

/// Static aligned-element recount: pure residue arithmetic over the
/// assignment's prefix sums, no access replay.  Layout as evaluate_warp:
/// A at [0, total_a), B at ceil(total_a / w) * w.
u64 static_aligned(const core::WarpAssignment& wa, u32 s) {
  const u32 w = wa.w;
  const std::size_t base_b = ceil_div(wa.total_a(), std::size_t{wa.w}) * wa.w;
  u64 aligned = 0;
  std::size_t prefix_a = 0;
  std::size_t prefix_b = 0;
  for (const core::ThreadAssign& t : wa.threads) {
    // The thread's A (B) elements are one contiguous run; scanning order
    // only fixes the iteration j0 at which the run starts.
    const std::size_t a_start = prefix_a;
    const std::size_t b_start = base_b + prefix_b;
    const u32 a_j0 = t.a_first ? 0 : t.from_b;
    const u32 b_j0 = t.a_first ? t.from_a : 0;
    if (t.from_a > 0 && a_start % w == (s + a_j0) % w) {
      aligned += t.from_a;
    }
    if (t.from_b > 0 && b_start % w == (s + b_j0) % w) {
      aligned += t.from_b;
    }
    prefix_a += t.from_a;
    prefix_b += t.from_b;
  }
  return aligned;
}

/// The symbolic merge-read bound at this concrete E: the pairwise engine's
/// theorem-site window group, instantiated.
u64 theorem_site_bound(u32 w, u32 E) {
  const gpusim::ir::KernelDesc desc =
      sort::describe_pairwise(w, /*b=*/2 * w, /*pad=*/0);
  Valuation valuation(desc.symbols.size(), 0);
  for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
    valuation[i] = desc.symbols[i].lo;
  }
  const int e_index = desc.find_symbol("E");
  WCM_EXPECTS(e_index >= 0, "pairwise describer must declare E");
  valuation[static_cast<std::size_t>(e_index)] = E;
  for (const gpusim::ir::StepGroup& g : desc.groups) {
    if (g.theorem_site) {
      return window_bound_at(desc, g, valuation);
    }
  }
  WCM_EXPECTS(false, "pairwise describer must mark a theorem site");
  return 0;
}

}  // namespace

TheoremInstance check_theorem(u32 w, u32 E) {
  const core::ERegime regime = core::classify_e(w, E);
  WCM_EXPECTS(regime == core::ERegime::small || regime == core::ERegime::large,
              "theorem instance needs co-prime 3 <= E < w");
  TheoremInstance t;
  t.w = w;
  t.E = E;
  t.small = regime == core::ERegime::small;

  // Closed form, re-derived inline (Theorem 3: E^2; Theorem 9 with
  // r = w - E: (E^2 + E + 2Er - r^2 - r) / 2).
  const u64 e64 = E;
  const u64 r = w - E;
  t.aligned_closed =
      t.small ? e64 * e64
              : (e64 * e64 + e64 + 2 * e64 * r - r * r - r) / 2;

  const u32 s = core::alignment_window_start(w, E);
  const core::WarpAssignment wa = core::worst_case_warp(w, E);
  t.aligned_static = static_aligned(wa, s);
  const core::WarpEval eval = core::evaluate_warp(wa, s);
  t.aligned_dynamic = eval.aligned;
  t.max_step_degree = eval.step_degree.empty()
                          ? 0
                          : *std::max_element(eval.step_degree.begin(),
                                              eval.step_degree.end());
  t.step_bound = theorem_site_bound(w, E);

  std::ostringstream note;
  if (core::aligned_worst_case(w, E) != t.aligned_closed) {
    note << "closed form mismatch vs core::aligned_worst_case="
         << core::aligned_worst_case(w, E) << "; ";
  }
  if (t.aligned_static != t.aligned_closed) {
    note << "static recount " << t.aligned_static << " != closed form "
         << t.aligned_closed << "; ";
  }
  if (t.aligned_dynamic != t.aligned_closed) {
    note << "replayed count " << t.aligned_dynamic << " != closed form "
         << t.aligned_closed << "; ";
  }
  if (t.small && t.aligned_closed != e64 * e64) {
    note << "Theorem 3 beta_2 != E; ";
  }
  if (t.max_step_degree > t.step_bound) {
    note << "replayed step degree " << t.max_step_degree
         << " exceeds symbolic bound " << t.step_bound << "; ";
  }
  t.note = note.str();
  t.ok = t.note.empty();
  return t;
}

std::vector<TheoremInstance> check_theorems(u32 w, u32 e_min, u32 e_max) {
  WCM_EXPECTS(w >= 8 && is_pow2(w), "warp width must be a power of two >= 8");
  std::vector<TheoremInstance> out;
  const u32 lo = std::max<u32>(3, e_min);
  const u32 hi = std::min<u32>(e_max, w - 1);
  for (u32 e = lo; e <= hi; ++e) {
    if (std::gcd(w, e) != 1) {
      continue;  // w is a power of two: skips exactly the even E
    }
    out.push_back(check_theorem(w, e));
  }
  return out;
}

}  // namespace wcm::analyze::symbolic
