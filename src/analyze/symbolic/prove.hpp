#pragma once
// The `wcmgen prove` / `wcm-prove` engine: derives — without executing any
// trace — per-step bank-conflict-degree bounds for every declared step
// group of every sort engine, valid for all parameter valuations in a
// declared range, runs the Theorem 3/9 cross-check instances, and renders
// the result in wcm-lint's text/JSON diagnostic format.
//
// Findings (analyze::Diagnostic, rules documented in docs/LINT.md):
//   unproved-access      a step group no proof method could bound
//   symbolic-divergence  symbolic bound vs stride-gcd/replayed-StepCost
//                        disagreement (a conflict-model bug)
//   theorem-divergence   a Theorem 3/9 instance failed its cross-check
//
// certify_trace() is the dynamic side: every read/write step of a recorded
// trace, replayed through the DMM, must cost no more than the engine's
// derived bound — the differential fuzzer runs it on every trial.

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "analyze/symbolic/domain.hpp"
#include "analyze/symbolic/theorems.hpp"
#include "gpusim/access_ir.hpp"
#include "gpusim/trace.hpp"

namespace wcm::analyze::symbolic {

struct ProveOptions {
  u32 w = 32;
  u32 b = 64;
  u32 pad = 0;
  /// Shared-memory bank permutation the engines are proved under.
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 3;
  u32 e_max = 0;  ///< 0: defaults to w - 1
  u32 ways = 4;        ///< multiway fan-in
  u32 digit_bits = 4;  ///< radix digit width
  bool any_e = false;  ///< drop the E-odd congruence from the range
  bool json = false;

  [[nodiscard]] u32 effective_e_max() const noexcept {
    return e_max == 0 ? w - 1 : e_max;
  }
};

/// One step group's derived bound plus its rendered IR.
struct GroupReport {
  std::string name;
  std::string kind;  ///< "read" | "write" | "barrier" | "fill"
  bool atomic = false;
  bool theorem_site = false;
  std::string pattern;  ///< to_string of the access pattern
  StepBound bound;
};

struct EngineReport {
  std::string engine;
  u32 w = 0;
  u32 b = 0;
  u32 pad = 0;
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 0;
  u32 e_max = 0;
  std::vector<GroupReport> groups;
  u64 max_read_bound = 0;   ///< max degree over read/atomic-read groups
  u64 max_write_bound = 0;  ///< max degree over write groups
  bool all_proved = true;   ///< no group fell back to the trivial bound
};

struct ProveReport {
  std::vector<EngineReport> engines;
  std::vector<TheoremInstance> theorems;
  std::vector<Diagnostic> findings;
  u64 digest = 0;  ///< fnv1a over the rendered JSON body
};

/// The canonical engine list (`--engine all`), derived from the describer
/// registry — the single source the unknown-engine diagnostic and the CLI
/// choices quote, so it cannot go stale against the registered describers.
[[nodiscard]] const std::vector<std::string>& all_engines();

/// Lift one engine into the IR with the options' E range applied.
[[nodiscard]] gpusim::ir::KernelDesc describe_engine(const std::string& name,
                                                     const ProveOptions& opts);

/// Bound every step group of one engine.
[[nodiscard]] EngineReport prove_engine(const std::string& name,
                                        const ProveOptions& opts);

/// Prove a set of engines, run the theorem instances over the co-prime E
/// in range, and collect findings.  Throws wcm::parse_error on an unknown
/// engine name or an invalid shape.
[[nodiscard]] ProveReport prove(const std::vector<std::string>& engines,
                                const ProveOptions& opts);

void render_text(std::ostream& os, const ProveReport& report);
void render_json(std::ostream& os, const ProveReport& report);

/// Fold externally-derived findings (certify_trace results) into a report
/// and refresh its digest.
void append_findings(ProveReport& report, std::vector<Diagnostic> findings);

/// Dynamic certification: replay the trace's step costs under the
/// (w, pad, layout) shape the report was proved for and flag every read/write
/// step whose worst-bank degree exceeds the engine's derived bound.
[[nodiscard]] std::vector<Diagnostic> certify_trace(
    const gpusim::Trace& trace, const EngineReport& report);

}  // namespace wcm::analyze::symbolic
