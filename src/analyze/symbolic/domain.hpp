#pragma once
// Congruence/interval product domain and the per-group bound engine of the
// symbolic bank-conflict prover.
//
// An abstract value is (interval [lo, hi]) x (congruence v ≡ rem mod m);
// linear forms over a KernelDesc's symbol table evaluate into the domain,
// and pairwise lane address *differences* — where per-warp shift symbols
// cancel exactly — decide bank relations the way analyze/stride.cpp's gcd
// closed form does, generalized to symbolic strides: lanes collide on a
// w-bank layout iff their address difference ≡ 0 (mod w), which a declared
// congruence can refute (E odd → stride-E differences are never ≡ 0 mod w
// unless the lane distance is) or confirm for every valuation at once.
//
// Three proof methods, tried in order per step group:
//   congruence  — all lane pairs decided abstractly; bound valid for every
//                 valuation in the declared ranges.  Under a permuted
//                 layout (pad == 0 only) the classification runs on the
//                 row/column split: permutations are bijective within a
//                 row and injective in the row residue for a fixed column.
//   enumeration — exhaustive instantiation over the (finite) declared
//                 ranges of the symbols the group uses.  Warp-shift
//                 symbols are pinned to zero where a uniform multiple-of-w
//                 shift rotates banks bijectively (linear, padded,
//                 rotation layouts) — but under the xor layout such a
//                 shift changes which rows alias, so each shift symbol is
//                 instead swept over its w distinct residues mod w².
//                 Exact, and cross-checked against stride.cpp's gcd
//                 prediction on the linear unpadded layout.
//   window      — closed-form capacity bound for data-dependent patterns:
//                 a contiguous range of L words holds at most ceil(L/w)
//                 addresses per bank (one more per range straddle when
//                 padded or permuted: every touched row then contributes
//                 independently).
// A group none of them can bound reports method "trivial" with the
// min(active, w) fallback — the prover turns that into an
// unproved-access finding.

#include <string>
#include <vector>

#include "gpusim/access_ir.hpp"
#include "util/math.hpp"

namespace wcm::analyze::symbolic {

/// Interval x congruence abstract value.  Invariants: lo <= hi,
/// mod >= 1, rem in [0, mod); lo == hi means exactly known.
struct AbsVal {
  i64 lo = 0;
  i64 hi = 0;
  u64 mod = 1;
  i64 rem = 0;

  [[nodiscard]] bool exact() const noexcept { return lo == hi; }
};

[[nodiscard]] AbsVal abs_constant(i64 v);
[[nodiscard]] AbsVal abs_add(const AbsVal& a, const AbsVal& b);
[[nodiscard]] AbsVal abs_scale(const AbsVal& a, i64 k);

/// Can the value be proven ≢ 0 (mod m) for every valuation?
[[nodiscard]] bool proves_nonzero_mod(const AbsVal& v, u64 m);
/// Can the value be proven ≡ 0 (mod m) for every valuation?
[[nodiscard]] bool proves_zero_mod(const AbsVal& v, u64 m);

/// Evaluate a linear form over the declared symbol ranges/congruences.
[[nodiscard]] AbsVal eval(const gpusim::ir::LinForm& lf,
                          const gpusim::ir::KernelDesc& desc);

/// Footprint variant for the static verifier: warp-shift symbols widen to
/// their declared value set {0, step_form, ..., max_form} instead of the
/// pinned [lo, hi] the conflict prover uses (bank rotation lets the prover
/// pin shifts; address-range reasoning must not).  Shifts with a zero
/// step_form (undeclared extent) keep the pinned range.  The extent forms
/// may reference only earlier, non-shift symbols and evaluate through the
/// plain domain.
[[nodiscard]] AbsVal eval_extent(const gpusim::ir::LinForm& lf,
                                 const gpusim::ir::KernelDesc& desc);

/// A derived per-step conflict-degree bound for one step group.
struct StepBound {
  u64 degree = 0;     ///< bound on max per-bank distinct addresses per step
  bool free = false;  ///< degree <= 1 proven for all valuations in range
  bool exact = false; ///< attained by some valuation (congruence/enumeration)
  std::string method; ///< "congruence" | "enumeration" | "window" |
                      ///< "trivial" | "none" (barrier/fill)
  std::string detail;
  /// Non-empty when the enumeration cross-check against stride.cpp's gcd
  /// closed form disagreed — a conflict-model bug.
  std::string divergence;
};

/// Derive the conflict-degree bound of one step group, valid for every
/// parameter valuation in the KernelDesc's declared ranges.
[[nodiscard]] StepBound bound_group(const gpusim::ir::KernelDesc& desc,
                                    const gpusim::ir::StepGroup& group);

/// One concrete valuation of a KernelDesc's symbols (by symbol index).
using Valuation = std::vector<i64>;

/// Exact max per-bank distinct-address count of concrete lane addresses
/// under a shared-memory layout — the enumeration inner loop, exposed for
/// the property tests and the certification replay.
[[nodiscard]] u64 exact_degree(const gpusim::SharedLayout& layout,
                               const std::vector<i64>& addrs);
/// Linear-layout convenience overload.
[[nodiscard]] u64 exact_degree(u32 w, u32 pad, const std::vector<i64>& addrs);

/// Result of an exhaustive per-group sweep: the worst conflict degree found
/// and one valuation attaining it — certification's counterexample seed.
struct EnumWorst {
  bool feasible = false;  ///< false: range too large to enumerate
  u64 degree = 0;
  Valuation valuation;
};

/// Sweep a pieces-pattern group over the declared ranges of the symbols it
/// uses (warp shifts pinned or xor-swept as in bound_group) and return the
/// argmax valuation.
[[nodiscard]] EnumWorst enumerate_worst(const gpusim::ir::KernelDesc& desc,
                                        const gpusim::ir::StepGroup& group);

/// Instantiate a pieces-pattern group at one valuation (warp-shift symbols
/// honored from the valuation vector) and return the per-lane addresses.
[[nodiscard]] std::vector<i64> instantiate_addresses(
    const gpusim::ir::KernelDesc& desc, const gpusim::ir::StepGroup& group,
    const Valuation& valuation);

/// Instantiate a window-pattern group's closed-form bound at one concrete
/// valuation: min(active, ceil(span/w) + nranges - 1), padding-adjusted.
[[nodiscard]] u64 window_bound_at(const gpusim::ir::KernelDesc& desc,
                                  const gpusim::ir::StepGroup& group,
                                  const Valuation& valuation);

}  // namespace wcm::analyze::symbolic
