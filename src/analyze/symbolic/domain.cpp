#include "analyze/symbolic/domain.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "analyze/stride.hpp"
#include "util/check.hpp"

namespace wcm::analyze::symbolic {

namespace ir = gpusim::ir;

namespace {

/// Enumeration budget: the product of parameter range sizes the prover is
/// willing to sweep per group.  Generous — the kernel descriptions have at
/// most two nested parameters (E and an inner step).
constexpr u64 kEnumLimit = 1u << 21;

i64 floordiv(i64 a, i64 b) {
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

}  // namespace

AbsVal abs_constant(i64 v) {
  AbsVal a;
  a.lo = v;
  a.hi = v;
  a.mod = 1;
  a.rem = 0;
  return a;
}

AbsVal abs_add(const AbsVal& a, const AbsVal& b) {
  AbsVal r;
  r.lo = a.lo + b.lo;
  r.hi = a.hi + b.hi;
  if (a.exact()) {
    r.mod = b.mod;
    r.rem = mod_floor(b.rem + a.lo, static_cast<i64>(b.mod));
  } else if (b.exact()) {
    r.mod = a.mod;
    r.rem = mod_floor(a.rem + b.lo, static_cast<i64>(a.mod));
  } else {
    r.mod = std::gcd(a.mod, b.mod);
    if (r.mod == 0) {
      r.mod = 1;
    }
    r.rem = mod_floor(a.rem + b.rem, static_cast<i64>(r.mod));
  }
  return r;
}

AbsVal abs_scale(const AbsVal& a, i64 k) {
  if (k == 0) {
    return abs_constant(0);
  }
  AbsVal r;
  r.lo = k > 0 ? a.lo * k : a.hi * k;
  r.hi = k > 0 ? a.hi * k : a.lo * k;
  const u64 mag = static_cast<u64>(k > 0 ? k : -k);
  r.mod = a.mod * mag;
  r.rem = mod_floor(a.rem * k, static_cast<i64>(r.mod));
  return r;
}

bool proves_nonzero_mod(const AbsVal& v, u64 m) {
  WCM_EXPECTS(m >= 1, "modulus must be positive");
  const i64 mi = static_cast<i64>(m);
  if (v.exact()) {
    return mod_floor(v.lo, mi) != 0;
  }
  // Congruence refutation: v ≡ rem (mod g) with g = gcd(mod, m) dividing m;
  // a nonzero residue mod g rules out every multiple of m.
  const u64 g = std::gcd(v.mod, m);
  if (g > 1 && mod_floor(v.rem, static_cast<i64>(g)) != 0) {
    return true;
  }
  // Interval refutation: the range contains no multiple of m.
  if (v.lo > 0 && v.hi < mi) {
    return true;
  }
  if (v.hi < 0 && v.lo > -mi) {
    return true;
  }
  return false;
}

bool proves_zero_mod(const AbsVal& v, u64 m) {
  WCM_EXPECTS(m >= 1, "modulus must be positive");
  const i64 mi = static_cast<i64>(m);
  if (v.exact()) {
    return mod_floor(v.lo, mi) == 0;
  }
  return v.mod % m == 0 && mod_floor(v.rem, mi) == 0;
}

AbsVal eval(const ir::LinForm& lf, const ir::KernelDesc& desc) {
  AbsVal acc = abs_constant(lf.c);
  for (const auto& [idx, coeff] : lf.terms) {
    const ir::Symbol& s = desc.symbols[static_cast<std::size_t>(idx)];
    AbsVal sv;
    sv.lo = s.lo;
    sv.hi = s.hi;
    sv.mod = s.mod;
    sv.rem = s.mod > 1 ? mod_floor(s.rem, static_cast<i64>(s.mod)) : 0;
    if (s.mod <= 1) {
      sv.mod = 1;
      sv.rem = 0;
    }
    acc = abs_add(acc, abs_scale(sv, coeff));
  }
  return acc;
}

AbsVal eval_extent(const ir::LinForm& lf, const ir::KernelDesc& desc) {
  AbsVal acc = abs_constant(lf.c);
  for (const auto& [idx, coeff] : lf.terms) {
    const ir::Symbol& s = desc.symbols[static_cast<std::size_t>(idx)];
    AbsVal sv;
    if (s.role == ir::SymRole::warp_shift && !s.step_form.is_zero()) {
      const AbsVal max_av = eval(s.max_form, desc);
      const AbsVal step_av = eval(s.step_form, desc);
      sv.lo = 0;
      sv.hi = std::max<i64>(max_av.hi, 0);
      if (step_av.exact() && step_av.lo > 1) {
        sv.mod = static_cast<u64>(step_av.lo);
        sv.rem = 0;
      } else {
        sv.mod = 1;
        sv.rem = 0;
      }
    } else {
      sv.lo = s.lo;
      sv.hi = s.hi;
      sv.mod = s.mod > 1 ? s.mod : 1;
      sv.rem = s.mod > 1 ? mod_floor(s.rem, static_cast<i64>(s.mod)) : 0;
    }
    acc = abs_add(acc, abs_scale(sv, coeff));
  }
  return acc;
}

namespace {

/// Bank of a (possibly negative) logical address under a layout: the
/// floor-division generalization of SharedLayout::bank, so symbolic
/// instantiations that dip below zero still classify consistently.
i64 bank_of(const gpusim::SharedLayout& layout, i64 a) {
  const i64 w = static_cast<i64>(layout.w);
  const i64 row = floordiv(a, w);
  const u32 col = static_cast<u32>(mod_floor(a, w));
  const u32 perm = layout.permute(
      col, static_cast<std::size_t>(mod_floor(row, w)));
  return mod_floor(row * static_cast<i64>(layout.pad) +
                       static_cast<i64>(perm),
                   w);
}

}  // namespace

u64 exact_degree(const gpusim::SharedLayout& layout,
                 const std::vector<i64>& addrs) {
  WCM_EXPECTS(layout.w > 0, "need at least one bank");
  std::map<i64, std::set<i64>> per_bank;  // bank -> distinct addresses
  for (const i64 a : addrs) {
    per_bank[bank_of(layout, a)].insert(a);
  }
  u64 degree = 0;
  for (const auto& [bank, set] : per_bank) {
    degree = std::max<u64>(degree, set.size());
  }
  return degree;
}

u64 exact_degree(u32 w, u32 pad, const std::vector<i64>& addrs) {
  return exact_degree(gpusim::SharedLayout{w, pad}, addrs);
}

namespace {

/// Per-lane symbolic addresses of a pieces pattern.
std::vector<std::pair<u32, ir::LinForm>> lane_addresses(
    const ir::StepGroup& group) {
  std::vector<std::pair<u32, ir::LinForm>> lanes;
  for (const ir::LanePiece& p : group.pattern.pieces) {
    for (u32 lane = p.lane_lo; lane <= p.lane_hi; ++lane) {
      ir::LinForm addr = p.base;
      addr.add(p.stride, static_cast<i64>(lane - p.lane_lo));
      lanes.emplace_back(lane, std::move(addr));
    }
  }
  return lanes;
}

enum class PairRel : unsigned char {
  distinct_bank,
  same_bank,
  same_addr,
  unknown
};

PairRel classify_pair(const ir::LinForm& a, const ir::LinForm& b,
                      const ir::KernelDesc& desc) {
  const AbsVal d = eval(b - a, desc);
  if (d.exact() && d.lo == 0) {
    return PairRel::same_addr;
  }
  if (proves_nonzero_mod(d, desc.w)) {
    return PairRel::distinct_bank;
  }
  // ≡ 0 (mod w): colliding for every valuation (or broadcasting when the
  // difference can be zero — counting it as a collision is the safe side).
  if (proves_zero_mod(d, desc.w)) {
    return PairRel::same_bank;
  }
  return PairRel::unknown;
}

/// Split one symbolic address into H + L with H provably ≡ 0 (mod w):
/// every term whose contribution is a proven multiple of w — plus the
/// w-aligned part of the constant — lands in H (the row part); the rest is
/// the residue L.  When L is additionally proven to lie in [0, w), L *is*
/// the logical column and H/w the logical row, which is what both the
/// padded-layout and the permuted-layout congruence arguments consume.
struct AddrSplit {
  ir::LinForm residue;   ///< L: the column candidate
  bool resident = false; ///< eval(L) ⊆ [0, w) proven
};

AddrSplit split_address(const ir::LinForm& addr, const ir::KernelDesc& desc) {
  AddrSplit out;
  const i64 w = static_cast<i64>(desc.w);
  out.residue = ir::LinForm::constant(mod_floor(addr.c, w));
  for (const auto& [idx, coeff] : addr.terms) {
    const ir::Symbol& s = desc.symbols[static_cast<std::size_t>(idx)];
    AbsVal sv;
    sv.lo = s.lo;
    sv.hi = s.hi;
    sv.mod = s.mod <= 1 ? 1 : s.mod;
    sv.rem = s.mod > 1 ? mod_floor(s.rem, static_cast<i64>(s.mod)) : 0;
    if (proves_zero_mod(abs_scale(sv, coeff), desc.w)) {
      continue;  // lands in H
    }
    out.residue.add(ir::LinForm::sym(idx, coeff));
  }
  const AbsVal l = eval(out.residue, desc);
  out.resident = l.lo >= 0 && l.hi < w;
  return out;
}

/// Under padding, the plain congruence argument stays valid iff the whole
/// step provably lives inside one w-aligned block: every lane's residue in
/// [0, w) *and* every lane's row part H identical (pairwise H difference
/// exactly zero).  Then physical differences equal logical differences and
/// bank relations are pad-invariant.  Residency alone is not enough — a
/// stride-w column access has every lane row-aligned yet spans w rows, and
/// its banks are pad-dependent.
bool same_block_under_padding(
    const std::vector<std::pair<u32, ir::LinForm>>& lanes,
    const ir::KernelDesc& desc) {
  bool first = true;
  ir::LinForm row0;
  for (const auto& [lane, addr] : lanes) {
    const AddrSplit split = split_address(addr, desc);
    if (!split.resident) {
      return false;
    }
    ir::LinForm row = addr - split.residue;
    if (first) {
      row0 = std::move(row);
      first = false;
      continue;
    }
    const AbsVal dh = eval(row - row0, desc);
    if (!(dh.exact() && dh.lo == 0)) {
      return false;
    }
  }
  return true;
}

/// Bank relation of one lane pair under a permuted (xor/rotation), unpadded
/// layout.  Both layouts permute columns *within* a row bijectively and
/// injectively in the row residue for a fixed column, so with each address
/// split into H (≡ 0 mod w, the row part) + L (the column, in [0, w)):
///   same column (L diff exactly 0):   rows ≡ (mod w), i.e. H diff ≡ 0
///     (mod w²)  → same bank; rows provably distinct mod w → distinct bank.
///   same row (H diff ≡ 0 mod w²):     columns distinct (L diff nonzero,
///     both in [0, w)) → distinct bank.
/// Distinct column *and* distinct row is undecidable abstractly (xor can
/// collide or not) → unknown, deferring to enumeration.  Requires pad == 0:
/// with padding, the row term pad*Δrow can cancel a column permutation
/// difference, so only the same-row/same-column cases would survive.
PairRel classify_pair_permuted(const ir::LinForm& a, const AddrSplit& sa,
                               const ir::LinForm& b, const AddrSplit& sb,
                               const ir::KernelDesc& desc) {
  const ir::LinForm full = b - a;
  const AbsVal dfull = eval(full, desc);
  if (dfull.exact() && dfull.lo == 0) {
    return PairRel::same_addr;
  }
  const ir::LinForm ldiff = sb.residue - sa.residue;
  const AbsVal dl = eval(ldiff, desc);
  const AbsVal dh = eval(full - ldiff, desc);
  const u64 w2 = static_cast<u64>(desc.w) * desc.w;
  if (dl.exact() && dl.lo == 0) {
    if (proves_nonzero_mod(dh, w2)) {
      return PairRel::distinct_bank;
    }
    if (proves_zero_mod(dh, w2)) {
      return PairRel::same_bank;
    }
    return PairRel::unknown;
  }
  if (proves_zero_mod(dh, w2)) {
    // Same row residue; columns are both in [0, w), so a sign-definite
    // interval on the difference proves them distinct.
    if (dl.lo > 0 || dl.hi < 0) {
      return PairRel::distinct_bank;
    }
  }
  return PairRel::unknown;
}

struct CongruenceResult {
  bool decided = false;
  u64 degree = 0;
};

CongruenceResult congruence_degree(
    const std::vector<std::pair<u32, ir::LinForm>>& lanes,
    const ir::KernelDesc& desc) {
  const bool permuted = desc.layout != gpusim::LayoutKind::linear;
  std::vector<AddrSplit> splits;
  if (permuted) {
    if (desc.pad != 0) {
      // Padding composed with a permutation mixes the row term into the
      // permuted column; no abstract rule survives — defer to enumeration.
      return {};
    }
    splits.reserve(lanes.size());
    for (const auto& [lane, addr] : lanes) {
      splits.push_back(split_address(addr, desc));
      if (!splits.back().resident) {
        return {};
      }
    }
  }
  const std::size_t n = lanes.size();
  // Union-find over broadcast (same-address) lanes.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::vector<PairRel>> rel(n, std::vector<PairRel>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const PairRel r =
          permuted ? classify_pair_permuted(lanes[i].second, splits[i],
                                            lanes[j].second, splits[j], desc)
                   : classify_pair(lanes[i].second, lanes[j].second, desc);
      if (r == PairRel::unknown) {
        return {};
      }
      rel[i][j] = rel[j][i] = r;
      if (r == PairRel::same_addr) {
        parent[find(i)] = find(j);
      }
    }
  }
  // Distinct addresses sharing a bank form cliques (bank equality is an
  // equivalence on concrete addresses), so 1 + neighbour count is the
  // degree.  Broadcast supernodes count once.
  u64 degree = n > 0 ? 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) != i) {
      continue;
    }
    std::set<std::size_t> neighbours;
    for (std::size_t j = 0; j < n; ++j) {
      if (find(j) != j || j == i) {
        continue;
      }
      if (rel[i][j] == PairRel::same_bank) {
        neighbours.insert(j);
      }
    }
    degree = std::max<u64>(degree, 1 + neighbours.size());
  }
  return {true, degree};
}

struct EnumVar {
  int idx = -1;
  /// Warp-shift symbol swept over the w residues {0, w, ..., (w-1)*w}
  /// instead of pinned to zero.  Needed under the xor layout only: there a
  /// uniform shift by k*w xors every lane's column with a different row
  /// residue, which is *not* a uniform bank rotation (two lanes on distinct
  /// banks can collide after the shift), so the shift's value mod w² — and
  /// only that — matters.  {t*w : t in [0, w)} covers every contribution a
  /// ≡ 0 (mod w) symbol with any coefficient can make mod w².
  bool shift_sweep = false;
};

struct EnumPlan {
  bool feasible = false;
  std::vector<EnumVar> order;  // symbol indices, declaration order
};

/// Enumeration plan restricted to the symbols the group actually reads
/// (base/stride terms, expanded transitively through upper_sym chains):
/// unused symbols stay at zero in the valuation vector and never influence
/// instantiate_addresses, so skipping them keeps the sweep budget tiny.
EnumPlan enumeration_plan(const ir::KernelDesc& desc,
                          const ir::StepGroup& group) {
  std::set<int> used;
  const auto add_with_uppers = [&](int idx) {
    while (idx >= 0 && used.insert(idx).second) {
      idx = desc.symbols[static_cast<std::size_t>(idx)].upper_sym;
    }
  };
  for (const ir::LanePiece& p : group.pattern.pieces) {
    for (const auto& [idx, coeff] : p.base.terms) {
      add_with_uppers(idx);
    }
    for (const auto& [idx, coeff] : p.stride.terms) {
      add_with_uppers(idx);
    }
  }
  EnumPlan plan;
  u64 combos = 1;
  for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
    if (!used.contains(static_cast<int>(i))) {
      continue;
    }
    const ir::Symbol& s = desc.symbols[i];
    EnumVar var;
    var.idx = static_cast<int>(i);
    u64 width = 1;
    if (s.role == ir::SymRole::warp_shift) {
      if (desc.layout != gpusim::LayoutKind::xor_swizzle) {
        // Pinned to zero: under linear, padded, and rotation layouts a
        // uniform shift by a multiple of w rotates every lane's bank by the
        // same amount, leaving the conflict degree invariant.
        continue;
      }
      var.shift_sweep = true;
      width = desc.w;
    } else {
      if (s.hi < s.lo) {
        return {};
      }
      width = static_cast<u64>(s.hi - s.lo + 1);
    }
    if (combos > kEnumLimit / std::max<u64>(width, 1)) {
      return {};
    }
    combos *= std::max<u64>(width, 1);
    plan.order.push_back(var);
  }
  plan.feasible = true;
  return plan;
}

i64 eval_concrete(const ir::LinForm& lf, const Valuation& valuation) {
  i64 v = lf.c;
  for (const auto& [idx, coeff] : lf.terms) {
    v += coeff * valuation[static_cast<std::size_t>(idx)];
  }
  return v;
}

/// Recursive sweep over parameter valuations; calls visit(valuation).
template <typename Visit>
void for_each_valuation(const ir::KernelDesc& desc,
                        const std::vector<EnumVar>& order, std::size_t pos,
                        Valuation& valuation, const Visit& visit) {
  if (pos == order.size()) {
    visit(valuation);
    return;
  }
  const auto idx = static_cast<std::size_t>(order[pos].idx);
  const ir::Symbol& s = desc.symbols[idx];
  if (order[pos].shift_sweep) {
    const i64 w = static_cast<i64>(desc.w);
    for (i64 t = 0; t < w; ++t) {
      valuation[idx] = t * w;
      for_each_valuation(desc, order, pos + 1, valuation, visit);
    }
    return;
  }
  i64 hi = s.hi;
  if (s.upper_sym >= 0) {
    hi = std::min<i64>(hi,
                       valuation[static_cast<std::size_t>(s.upper_sym)] - 1);
  }
  for (i64 v = s.lo; v <= hi; ++v) {
    if (s.mod > 1 &&
        mod_floor(v, static_cast<i64>(s.mod)) !=
            mod_floor(s.rem, static_cast<i64>(s.mod))) {
      continue;
    }
    valuation[idx] = v;
    for_each_valuation(desc, order, pos + 1, valuation, visit);
  }
}

/// Per-range straddle slack in the window capacity bound.  A contiguous
/// logical range touches at most ceil(L/w) + 1 rows; under the linear
/// unpadded layout consecutive rows alias bank-for-bank so the two partial
/// rows at the ends merge into the ceil, but padding or a bank permutation
/// makes every touched row contribute up to one address per bank on its
/// own — one extra unit of slack per range.
u64 window_straddle(const ir::KernelDesc& desc) {
  return (desc.pad > 0 || desc.layout != gpusim::LayoutKind::linear) ? 2 : 1;
}

}  // namespace

std::vector<i64> instantiate_addresses(const ir::KernelDesc& desc,
                                       const ir::StepGroup& group,
                                       const Valuation& valuation) {
  WCM_EXPECTS(group.pattern.kind == ir::PatternKind::pieces,
              "only pieces patterns instantiate to addresses");
  WCM_EXPECTS(valuation.size() == desc.symbols.size(),
              "valuation must cover every symbol");
  std::vector<i64> addrs;
  for (const ir::LanePiece& p : group.pattern.pieces) {
    const i64 base = eval_concrete(p.base, valuation);
    const i64 stride = eval_concrete(p.stride, valuation);
    for (u32 lane = p.lane_lo; lane <= p.lane_hi; ++lane) {
      addrs.push_back(base + stride * static_cast<i64>(lane - p.lane_lo));
    }
  }
  return addrs;
}

u64 window_bound_at(const ir::KernelDesc& desc, const ir::StepGroup& group,
                    const Valuation& valuation) {
  WCM_EXPECTS(group.pattern.kind == ir::PatternKind::window,
              "not a window pattern");
  const i64 span = eval_concrete(group.pattern.span, valuation);
  const i64 nranges = eval_concrete(group.pattern.nranges, valuation);
  WCM_EXPECTS(span >= 0 && nranges >= 1, "malformed window instantiation");
  const u64 cap = ceil_div(static_cast<u64>(span), desc.w) +
                  window_straddle(desc) * static_cast<u64>(nranges) - 1;
  return std::min<u64>(group.pattern.active, cap);
}

EnumWorst enumerate_worst(const ir::KernelDesc& desc,
                          const ir::StepGroup& group) {
  WCM_EXPECTS(group.pattern.kind == ir::PatternKind::pieces,
              "only pieces patterns enumerate");
  const EnumPlan plan = enumeration_plan(desc, group);
  if (!plan.feasible) {
    return {};
  }
  EnumWorst out;
  out.feasible = true;
  out.valuation.assign(desc.symbols.size(), 0);
  const gpusim::SharedLayout layout{desc.w, desc.pad, desc.layout};
  Valuation valuation(desc.symbols.size(), 0);
  for_each_valuation(
      desc, plan.order, 0, valuation, [&](const Valuation& val) {
        const auto addrs = instantiate_addresses(desc, group, val);
        const u64 degree = exact_degree(layout, addrs);
        if (degree > out.degree) {
          out.degree = degree;
          out.valuation = val;
        }
      });
  return out;
}

StepBound bound_group(const ir::KernelDesc& desc,
                      const ir::StepGroup& group) {
  StepBound bound;
  if (group.kind == ir::GroupKind::barrier ||
      group.kind == ir::GroupKind::fill) {
    bound.free = true;
    bound.method = "none";
    bound.detail = "no banked access";
    return bound;
  }

  if (group.pattern.kind == ir::PatternKind::window) {
    for (const auto& lf : {group.pattern.span, group.pattern.nranges}) {
      for (const auto& [idx, coeff] : lf.terms) {
        WCM_EXPECTS(desc.symbols[static_cast<std::size_t>(idx)].role !=
                        ir::SymRole::warp_shift,
                    "warp-shift symbols have no interval; not usable in "
                    "window spans");
      }
    }
    const AbsVal span = eval(group.pattern.span, desc);
    const AbsVal nranges = eval(group.pattern.nranges, desc);
    WCM_EXPECTS(span.lo >= 0 && nranges.lo >= 1, "malformed window pattern");
    const u64 straddle = window_straddle(desc);
    const u64 cap = ceil_div(static_cast<u64>(span.hi), desc.w) +
                    straddle * static_cast<u64>(nranges.hi) - 1;
    bound.degree = std::min<u64>(group.pattern.active, cap);
    bound.free = bound.degree <= 1;
    bound.method = "window";
    std::ostringstream os;
    os << "ceil(span/w) + " << (straddle == 2 ? "2*" : "")
       << "ranges - 1 capacity bound";
    bound.detail = os.str();
    return bound;
  }

  const auto lanes = lane_addresses(group);
  WCM_EXPECTS(!lanes.empty(), "pieces pattern with no lanes");
  WCM_EXPECTS(lanes.size() <= desc.w, "more lanes than the warp width");

  // 1. Congruence: decide every lane pair abstractly.  Under the linear
  //    layout, valid with padding only when the step provably stays inside
  //    one w-aligned block; under a permuted layout congruence_degree
  //    itself requires pad == 0 and row/column residency.
  const bool linear = desc.layout == gpusim::LayoutKind::linear;
  const bool congruence_applies =
      linear ? (desc.pad == 0 || same_block_under_padding(lanes, desc))
             : desc.pad == 0;
  if (congruence_applies) {
    const CongruenceResult cr = congruence_degree(lanes, desc);
    if (cr.decided) {
      bound.degree = cr.degree;
      bound.free = bound.degree <= 1;
      // Every pair decided means the relation graph — hence the per-bank
      // count — is the same for every valuation: the bound is attained.
      bound.exact = true;
      bound.method = "congruence";
      bound.detail = !linear ? "row/column split decided under permutation"
                     : desc.pad == 0
                         ? "all lane-pair residues decided mod w"
                         : "single w-block step: pad-invariant residues";
      return bound;
    }
  }

  // 2. Enumeration over the declared (finite) ranges of the symbols this
  //    group uses; warp-shift symbols pinned to zero, except under the xor
  //    layout where each is swept over its w residues mod w².
  const EnumPlan plan = enumeration_plan(desc, group);
  if (plan.feasible) {
    u64 worst = 0;
    std::string divergence;
    const gpusim::SharedLayout layout{desc.w, desc.pad, desc.layout};
    Valuation valuation(desc.symbols.size(), 0);
    for_each_valuation(
        desc, plan.order, 0, valuation, [&](const Valuation& val) {
          const auto addrs = instantiate_addresses(desc, group, val);
          const u64 degree = exact_degree(layout, addrs);
          worst = std::max(worst, degree);
          // Cross-check the gcd closed form from stride.cpp on full-warp
          // affine instantiations: any disagreement is a model bug.
          if (linear && desc.pad == 0 &&
              group.pattern.pieces.size() == 1 && addrs.size() == desc.w &&
              divergence.empty()) {
            const i64 stride =
                eval_concrete(group.pattern.pieces[0].stride, val);
            std::vector<u32> lane_ids(desc.w);
            for (u32 l = 0; l < desc.w; ++l) {
              lane_ids[l] = l;
            }
            const u64 predicted =
                predict_affine_serialization(desc.w, stride, lane_ids);
            if (predicted != degree) {
              std::ostringstream os;
              os << "stride " << stride << ": gcd closed form predicts "
                 << predicted << ", exact counting finds " << degree;
              divergence = os.str();
            }
          }
        });
    bound.degree = worst;
    bound.free = worst <= 1;
    bound.exact = true;
    bound.method = "enumeration";
    bound.detail = desc.layout == gpusim::LayoutKind::xor_swizzle
                       ? "exhaustive over declared ranges, warp shifts "
                         "swept mod w*w"
                       : "exhaustive over declared parameter ranges";
    bound.divergence = divergence;
    return bound;
  }

  // 3. Give up: trivially sound.
  bound.degree = std::min<u64>(lanes.size(), desc.w);
  bound.method = "trivial";
  bound.detail = "pattern not decidable; range too large to enumerate";
  return bound;
}

}  // namespace wcm::analyze::symbolic
