#include "analyze/symbolic/certify.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace wcm::analyze::symbolic {

namespace ir = gpusim::ir;

namespace {

/// Replay concrete lane addresses as one warp step through a fresh DMM and
/// return the worst per-bank distinct-address count.  Addresses are
/// shifted by a multiple of w² when negative — a w²-aligned shift keeps
/// both row residue and column, hence every layout's bank, invariant.
u64 replay_degree(const gpusim::SharedLayout& layout, std::vector<i64> addrs,
                  ir::GroupKind kind) {
  if (addrs.empty()) {
    return 0;
  }
  const i64 w2 = static_cast<i64>(layout.w) * layout.w;
  const i64 min = *std::min_element(addrs.begin(), addrs.end());
  if (min < 0) {
    const i64 shift = static_cast<i64>(
        ceil_div(static_cast<u64>(-min), static_cast<u64>(w2)) *
        static_cast<u64>(w2));
    for (i64& a : addrs) {
      a += shift;
    }
  }
  gpusim::Trace trace;
  trace.warp_size = layout.w;
  gpusim::TraceStep step;
  // A write step with duplicate addresses from distinct lanes is a CREW
  // race; replay the witness as a read (bank pricing is identical).
  step.kind = gpusim::StepKind::read;
  (void)kind;
  u32 lane = 0;
  for (const i64 a : addrs) {
    if (lane >= layout.w) {
      break;
    }
    step.accesses.emplace_back(lane++, static_cast<std::size_t>(a));
  }
  trace.logical_words =
      static_cast<std::size_t>(
          *std::max_element(addrs.begin(), addrs.end())) +
      1;
  trace.steps.push_back(std::move(step));
  const auto costs = gpusim::replay_step_costs(trace, layout);
  WCM_EXPECTS(costs.size() == 1, "replay must price the witness step");
  return costs[0].max_bank_degree;
}

/// Witness valuation for a window group: maximize the instantiated span
/// greedily (positive span coefficient → symbol high, negative → low),
/// honoring upper_sym chains and congruences in declaration order.
Valuation window_valuation(const ir::KernelDesc& desc,
                           const ir::StepGroup& group) {
  std::map<int, i64> span_coeff;
  for (const auto& [idx, coeff] : group.pattern.span.terms) {
    span_coeff[idx] = coeff;
  }
  Valuation val(desc.symbols.size(), 0);
  for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
    const ir::Symbol& s = desc.symbols[i];
    if (s.role != ir::SymRole::parameter) {
      continue;  // warp shifts stay 0 (asserted interval-free by the prover)
    }
    i64 hi = s.hi;
    if (s.upper_sym >= 0) {
      hi = std::min<i64>(
          hi, val[static_cast<std::size_t>(s.upper_sym)] - 1);
    }
    const i64 lo = std::min<i64>(s.lo, hi);
    const auto it = span_coeff.find(static_cast<int>(i));
    i64 want = (it != span_coeff.end() && it->second < 0) ? lo : hi;
    if (s.mod > 1) {
      const i64 m = static_cast<i64>(s.mod);
      while (want > lo && mod_floor(want, m) != mod_floor(s.rem, m)) {
        --want;
      }
    }
    val[i] = std::max(want, lo);
  }
  return val;
}

/// Witness addresses inside a window instantiation: bucket the span's
/// logical addresses (based at 0 — one contiguous range is an admissible
/// region shape) by layout bank and aim every active lane at the fullest
/// bucket.
std::vector<i64> window_witness(const ir::KernelDesc& desc,
                                const ir::StepGroup& group,
                                const Valuation& val) {
  const gpusim::SharedLayout layout{desc.w, desc.pad, desc.layout};
  i64 span = group.pattern.span.c;
  for (const auto& [idx, coeff] : group.pattern.span.terms) {
    span += coeff * val[static_cast<std::size_t>(idx)];
  }
  span = std::max<i64>(span, 0);
  std::map<u32, std::vector<i64>> buckets;
  for (i64 a = 0; a < span; ++a) {
    buckets[layout.bank(static_cast<std::size_t>(a))].push_back(a);
  }
  std::vector<i64> best;
  for (const auto& [bank, addrs] : buckets) {
    if (addrs.size() > best.size()) {
      best = addrs;
    }
  }
  if (best.size() > group.pattern.active) {
    best.resize(group.pattern.active);
  }
  return best;
}

void append_counterexample(std::vector<CertCounterexample>& out,
                           const ir::KernelDesc& desc,
                           const ir::StepGroup& group, u32 b, u32 pad,
                           u64 bound_degree) {
  CertCounterexample ce;
  ce.b = b;
  ce.pad = pad;
  ce.group = group.name;
  ce.kind = ir::to_string(group.kind);
  ce.pattern = ir::to_string(group.pattern, desc);
  ce.bound_degree = bound_degree;
  const gpusim::SharedLayout layout{desc.w, desc.pad, desc.layout};
  Valuation val;
  if (group.pattern.kind == ir::PatternKind::pieces) {
    const EnumWorst worst = enumerate_worst(desc, group);
    if (!worst.feasible) {
      out.push_back(std::move(ce));  // unconfirmed refutation
      return;
    }
    val = worst.valuation;
    ce.addresses = instantiate_addresses(desc, group, val);
  } else {
    val = window_valuation(desc, group);
    ce.addresses = window_witness(desc, group, val);
  }
  for (std::size_t i = 0; i < desc.symbols.size(); ++i) {
    ce.valuation.emplace_back(desc.symbols[i].name, val[i]);
  }
  ce.witness_degree = exact_degree(layout, ce.addresses);
  ce.replayed_degree = replay_degree(layout, ce.addresses, group.kind);
  ce.confirmed =
      ce.replayed_degree == ce.witness_degree && ce.replayed_degree > 1;
  out.push_back(std::move(ce));
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
}

std::string render_hex(u64 v) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << v;
  return os.str();
}

/// Deterministic JSON body (integers and strings only), hashed into the
/// certificate digest; the digest field itself is appended by render_json.
std::string json_body(const Certificate& cert) {
  std::ostringstream os;
  os << "{\"wcm_certify\":1,\"engine\":\"" << cert.engine
     << "\",\"w\":" << cert.w << ",\"layout\":\""
     << gpusim::to_string(cert.layout) << "\",\"e_min\":" << cert.e_min
     << ",\"e_max\":" << cert.e_max << ",\"any_e\":" << (cert.any_e ? 1 : 0)
     << ",\"cells\":[";
  for (std::size_t i = 0; i < cert.cells.size(); ++i) {
    const CertCell& cell = cert.cells[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"b\":" << cell.b << ",\"pad\":" << cell.pad
       << ",\"max_read_bound\":" << cell.report.max_read_bound
       << ",\"max_write_bound\":" << cell.report.max_write_bound
       << ",\"all_proved\":" << (cell.report.all_proved ? 1 : 0)
       << ",\"groups\":[";
    bool first = true;
    for (const GroupReport& gr : cell.report.groups) {
      if (gr.bound.method == "none") {
        continue;  // barriers and fills carry no fact
      }
      if (!first) {
        os << ',';
      }
      first = false;
      os << "{\"name\":\"";
      json_escape_into(os, gr.name);
      os << "\",\"kind\":\"" << gr.kind
         << "\",\"theorem_site\":" << (gr.theorem_site ? 1 : 0)
         << ",\"method\":\"" << gr.bound.method
         << "\",\"degree\":" << gr.bound.degree
         << ",\"free\":" << (gr.bound.free ? 1 : 0)
         << ",\"exact\":" << (gr.bound.exact ? 1 : 0) << ",\"detail\":\"";
      json_escape_into(os, gr.bound.detail);
      os << "\"}";
    }
    os << "]}";
  }
  os << "],\"counterexamples\":[";
  for (std::size_t i = 0; i < cert.counterexamples.size(); ++i) {
    const CertCounterexample& ce = cert.counterexamples[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"b\":" << ce.b << ",\"pad\":" << ce.pad << ",\"group\":\"";
    json_escape_into(os, ce.group);
    os << "\",\"kind\":\"" << ce.kind << "\",\"pattern\":\"";
    json_escape_into(os, ce.pattern);
    os << "\",\"valuation\":[";
    for (std::size_t v = 0; v < ce.valuation.size(); ++v) {
      if (v > 0) {
        os << ',';
      }
      os << "{\"sym\":\"";
      json_escape_into(os, ce.valuation[v].first);
      os << "\",\"value\":" << ce.valuation[v].second << "}";
    }
    os << "],\"addresses\":[";
    for (std::size_t a = 0; a < ce.addresses.size(); ++a) {
      if (a > 0) {
        os << ',';
      }
      os << ce.addresses[a];
    }
    os << "],\"bound_degree\":" << ce.bound_degree
       << ",\"witness_degree\":" << ce.witness_degree
       << ",\"replayed_degree\":" << ce.replayed_degree
       << ",\"confirmed\":" << (ce.confirmed ? 1 : 0) << "}";
  }
  os << "],\"verdict\":\"" << (cert.certified ? "certified" : "refuted")
     << "\"";
  return os.str();
}

}  // namespace

Certificate certify_engine(const std::string& engine,
                           const CertifyOptions& opts) {
  WCM_EXPECTS(!opts.bs.empty() && !opts.pads.empty(),
              "certification grid must not be empty");
  Certificate cert;
  cert.engine = engine;
  cert.w = opts.w;
  cert.layout = opts.layout;
  cert.e_min = opts.e_min;
  cert.any_e = opts.any_e;
  cert.certified = true;

  for (const u32 b : opts.bs) {
    for (const u32 pad : opts.pads) {
      ProveOptions popts;
      popts.w = opts.w;
      popts.b = b;
      popts.pad = pad;
      popts.layout = opts.layout;
      popts.e_min = opts.e_min;
      popts.e_max = opts.e_max;
      popts.ways = opts.ways;
      popts.digit_bits = opts.digit_bits;
      popts.any_e = opts.any_e;
      cert.e_max = popts.effective_e_max();

      CertCell cell;
      cell.b = b;
      cell.pad = pad;
      cell.report = prove_engine(engine, popts);
      const ir::KernelDesc desc = describe_engine(engine, popts);
      WCM_EXPECTS(desc.groups.size() == cell.report.groups.size(),
                  "report must cover every IR statement");
      for (std::size_t g = 0; g < desc.groups.size(); ++g) {
        const GroupReport& gr = cell.report.groups[g];
        if (gr.bound.method == "none" || gr.bound.free) {
          continue;
        }
        cert.certified = false;
        append_counterexample(cert.counterexamples, desc, desc.groups[g], b,
                              pad, gr.bound.degree);
      }
      if (!cell.report.all_proved) {
        cert.certified = false;
      }
      cert.cells.push_back(std::move(cell));
    }
  }

  cert.digest = fnv1a(json_body(cert));
  return cert;
}

void render_text(std::ostream& os, const Certificate& cert) {
  os << "certify " << cert.engine << " (w=" << cert.w << " layout="
     << gpusim::to_string(cert.layout) << " E=" << cert.e_min << ".."
     << cert.e_max << (cert.any_e ? " any-E" : "") << ")\n";
  for (const CertCell& cell : cert.cells) {
    os << "  cell b=" << cell.b << " pad=" << cell.pad << ": ";
    u64 unfree = 0;
    for (const GroupReport& gr : cell.report.groups) {
      if (gr.bound.method != "none" && !gr.bound.free) {
        ++unfree;
      }
    }
    if (unfree == 0 && cell.report.all_proved) {
      os << "all " << cell.report.groups.size()
         << " statements proved conflict-free\n";
    } else {
      os << unfree << " statement(s) not conflict-free"
         << (cell.report.all_proved ? "" : " (and unproved patterns remain)")
         << "\n";
    }
    for (const GroupReport& gr : cell.report.groups) {
      if (gr.bound.method == "none") {
        continue;
      }
      os << "    " << gr.kind << " '" << gr.name << "': degree <= "
         << gr.bound.degree << (gr.bound.free ? " (free)" : "") << " via "
         << gr.bound.method << "\n";
    }
  }
  for (const CertCounterexample& ce : cert.counterexamples) {
    os << "  counterexample b=" << ce.b << " pad=" << ce.pad << " " << ce.kind
       << " '" << ce.group << "': bound " << ce.bound_degree << ", witness "
       << ce.witness_degree << ", replay " << ce.replayed_degree
       << (ce.confirmed ? " (confirmed)" : " (UNCONFIRMED)") << "\n    at";
    for (const auto& [sym, value] : ce.valuation) {
      os << " " << sym << "=" << value;
    }
    os << "\n";
  }
  os << "verdict: " << (cert.certified ? "certified" : "refuted")
     << " [digest fnv1a:" << render_hex(cert.digest) << "]\n";
}

void render_json(std::ostream& os, const Certificate& cert) {
  os << json_body(cert) << ",\"digest\":\"fnv1a:" << render_hex(cert.digest)
     << "\"}\n";
}

}  // namespace wcm::analyze::symbolic
