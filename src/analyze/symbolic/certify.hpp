#pragma once
// Certification mode of the symbolic prover (`wcmgen prove --certify`):
// a universal-quantification pass over an engine's access-pattern IR that
// either machine-proves conflict_degree == 1 for *every* shared-memory
// step and every valuation of (E, b, pad, warp shifts) in the declared
// ranges, or emits a concrete counterexample — the offending IR statement,
// a valuation, and the witness lane addresses — cross-checked by replaying
// that valuation through the DMM simulator.
//
// A Certificate is the machine-readable artifact the wcm_certify_ci gate
// pins: the per-statement congruence facts (method, degree, exactness) for
// every (b, pad) cell in the requested grid, the verdict, and an fnv1a
// digest over the rendered JSON body.  An engine that claims bank-conflict
// immunity (shearsort under xor/rotation/pad-coprime layouts) fails the
// build the moment any statement loses its degree-1 proof.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analyze/symbolic/prove.hpp"

namespace wcm::analyze::symbolic {

struct CertifyOptions {
  u32 w = 32;
  std::vector<u32> bs = {64};    ///< block sizes to certify (grid axis)
  std::vector<u32> pads = {0};   ///< padding values to certify (grid axis)
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 3;
  u32 e_max = 0;  ///< 0: defaults to w - 1
  u32 ways = 4;
  u32 digit_bits = 4;
  bool any_e = false;
  bool json = false;
};

/// One refutation: a concrete valuation and lane-address witness for a
/// statement whose proved degree exceeds 1, plus the DMM replay verdict.
struct CertCounterexample {
  u32 b = 0;
  u32 pad = 0;
  std::string group;    ///< offending IR statement
  std::string kind;     ///< "read" | "write"
  std::string pattern;  ///< rendered IR
  /// (symbol, value) rows of the witness valuation, declaration order.
  std::vector<std::pair<std::string, i64>> valuation;
  std::vector<i64> addresses;  ///< witness lane addresses (lane = index)
  u64 bound_degree = 0;     ///< the symbolic bound being refuted
  u64 witness_degree = 0;   ///< exact per-bank count of the witness
  u64 replayed_degree = 0;  ///< DMM replay of the same addresses
  bool confirmed = false;   ///< replayed_degree == witness_degree > 1
};

/// One (b, pad) cell of the certification grid: the full per-statement
/// fact table is the cell's EngineReport groups.
struct CertCell {
  u32 b = 0;
  u32 pad = 0;
  EngineReport report;
};

struct Certificate {
  std::string engine;
  u32 w = 0;
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 0;
  u32 e_max = 0;
  bool any_e = false;
  std::vector<CertCell> cells;
  std::vector<CertCounterexample> counterexamples;
  /// True iff every statement of every cell is proved degree <= 1.
  bool certified = false;
  u64 digest = 0;  ///< fnv1a over the rendered JSON body
};

/// Run the certification pass for one engine over the options' (b, pad)
/// grid.  Throws wcm::parse_error on an unknown engine.
[[nodiscard]] Certificate certify_engine(const std::string& engine,
                                         const CertifyOptions& opts);

void render_text(std::ostream& os, const Certificate& cert);
void render_json(std::ostream& os, const Certificate& cert);

}  // namespace wcm::analyze::symbolic
