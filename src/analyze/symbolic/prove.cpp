#include "analyze/symbolic/prove.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>

#include "sort/describe.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace wcm::analyze::symbolic {

namespace ir = gpusim::ir;

namespace {

/// The describer registry: one row per provable engine.  all_engines(),
/// describe_engine()'s dispatch, and the unknown-engine diagnostic all read
/// this table, so registering a describer here is the single step that
/// surfaces it everywhere.
struct EngineEntry {
  const char* name;
  ir::KernelDesc (*describe)(const ProveOptions& opts);
};

constexpr EngineEntry kEngineRegistry[] = {
    {"blocksort",
     [](const ProveOptions& o) {
       return sort::describe_blocksort(o.w, o.b, o.pad);
     }},
    {"block-merge",
     [](const ProveOptions& o) {
       return sort::describe_block_merge(o.w, o.b, o.pad);
     }},
    {"pairwise",
     [](const ProveOptions& o) {
       return sort::describe_pairwise(o.w, o.b, o.pad);
     }},
    {"multiway",
     [](const ProveOptions& o) {
       return sort::describe_multiway(o.w, o.b, o.pad, o.ways);
     }},
    {"bitonic",
     [](const ProveOptions& o) {
       return sort::describe_bitonic(o.w, o.b, o.pad);
     }},
    {"radix",
     [](const ProveOptions& o) {
       return sort::describe_radix(o.w, o.b, o.pad, o.digit_bits);
     }},
    {"scan",
     [](const ProveOptions& o) {
       return sort::describe_block_scan(o.w, o.b, o.pad);
     }},
    {"shearsort",
     [](const ProveOptions& o) {
       return sort::describe_shearsort(o.w, o.b, o.pad);
     }},
};

}  // namespace

const std::vector<std::string>& all_engines() {
  static const std::vector<std::string> kEngines = [] {
    std::vector<std::string> names;
    for (const EngineEntry& e : kEngineRegistry) {
      names.emplace_back(e.name);
    }
    return names;
  }();
  return kEngines;
}

namespace {

/// Re-range the describer's symbolic E (and the dependent inner step s) to
/// the options' declared range; `--any-E` drops the odd congruence.
void apply_e_range(ir::KernelDesc& desc, const ProveOptions& opts) {
  const int e = desc.find_symbol("E");
  if (e < 0) {
    return;  // bitonic: E = 2 is baked into the shape
  }
  ir::Symbol& sym = desc.symbols[static_cast<std::size_t>(e)];
  const u32 e_max = opts.effective_e_max();
  WCM_EXPECTS(opts.e_min >= 1 && opts.e_min <= e_max,
              "need 1 <= E-min <= E-max");
  sym.lo = opts.e_min;
  sym.hi = e_max;
  if (opts.e_min == e_max) {
    sym.mod = 1;  // exact value: interval alone carries everything
    sym.rem = 0;
  } else if (opts.any_e) {
    sym.mod = 1;
    sym.rem = 0;
  } else {
    sym.mod = 2;
    sym.rem = 1;
    WCM_EXPECTS(opts.e_min % 2 == 1 || opts.e_min < e_max,
                "empty odd E range");
  }
  const int s = desc.find_symbol("s");
  if (s >= 0) {
    // s is the inner step in [0, E): follow the declared E range exactly.
    // The describer's static hi (w - 2) assumes E <= w - 1 and silently
    // under-covers the enumeration sweep when the proof range pushes E
    // past the warp width (e.g. the w = 2 cross-check grid).
    ir::Symbol& inner = desc.symbols[static_cast<std::size_t>(s)];
    inner.hi = static_cast<i64>(e_max) - 1;
    inner.lo = 0;
  }
}

std::string render_hex(u64 v) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << v;
  return os.str();
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
}

/// The JSON body everything hashes and renders: deterministic, integers
/// and strings only (no floats), no digest field.
std::string json_body(const ProveReport& report) {
  std::ostringstream os;
  os << "{\"wcm_prove\":1,\"engines\":[";
  for (std::size_t i = 0; i < report.engines.size(); ++i) {
    const EngineReport& e = report.engines[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"engine\":\"" << e.engine << "\",\"w\":" << e.w
       << ",\"b\":" << e.b << ",\"pad\":" << e.pad << ",\"layout\":\""
       << gpusim::to_string(e.layout) << "\",\"e_min\":" << e.e_min
       << ",\"e_max\":" << e.e_max
       << ",\"max_read_bound\":" << e.max_read_bound
       << ",\"max_write_bound\":" << e.max_write_bound
       << ",\"all_proved\":" << (e.all_proved ? 1 : 0) << ",\"groups\":[";
    for (std::size_t g = 0; g < e.groups.size(); ++g) {
      const GroupReport& gr = e.groups[g];
      if (g > 0) {
        os << ',';
      }
      os << "{\"name\":\"";
      json_escape_into(os, gr.name);
      os << "\",\"kind\":\"" << gr.kind << "\",\"atomic\":"
         << (gr.atomic ? 1 : 0)
         << ",\"theorem_site\":" << (gr.theorem_site ? 1 : 0)
         << ",\"pattern\":\"";
      json_escape_into(os, gr.pattern);
      os << "\",\"method\":\"" << gr.bound.method
         << "\",\"degree\":" << gr.bound.degree
         << ",\"free\":" << (gr.bound.free ? 1 : 0)
         << ",\"exact\":" << (gr.bound.exact ? 1 : 0) << ",\"detail\":\"";
      json_escape_into(os, gr.bound.detail);
      os << "\",\"divergence\":\"";
      json_escape_into(os, gr.bound.divergence);
      os << "\"}";
    }
    os << "]}";
  }
  os << "],\"theorems\":[";
  for (std::size_t i = 0; i < report.theorems.size(); ++i) {
    const TheoremInstance& t = report.theorems[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"w\":" << t.w << ",\"E\":" << t.E << ",\"regime\":\""
       << (t.small ? "small" : "large")
       << "\",\"aligned_closed\":" << t.aligned_closed
       << ",\"aligned_static\":" << t.aligned_static
       << ",\"aligned_dynamic\":" << t.aligned_dynamic
       << ",\"step_bound\":" << t.step_bound
       << ",\"max_step_degree\":" << t.max_step_degree
       << ",\"ok\":" << (t.ok ? 1 : 0) << ",\"note\":\"";
    json_escape_into(os, t.note);
    os << "\"}";
  }
  os << "],\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    analyze::render_json(os, report.findings[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace

ir::KernelDesc describe_engine(const std::string& name,
                               const ProveOptions& opts) {
  for (const EngineEntry& entry : kEngineRegistry) {
    if (name == entry.name) {
      ir::KernelDesc desc = entry.describe(opts);
      // The bank permutation is a property of the machine the engine is
      // proved on, not of the describer: apply it centrally so every
      // registered engine is provable under every layout.
      desc.layout = opts.layout;
      apply_e_range(desc, opts);
      return desc;
    }
  }
  std::string valid;
  for (const std::string& n : all_engines()) {
    valid += n;
    valid += ", ";
  }
  throw parse_error("unknown engine '" + name + "' (valid: " + valid +
                    "all)");
}

EngineReport prove_engine(const std::string& name, const ProveOptions& opts) {
  const ir::KernelDesc desc = describe_engine(name, opts);
  EngineReport report;
  report.engine = name;
  report.w = desc.w;
  report.b = desc.b;
  report.pad = desc.pad;
  report.layout = desc.layout;
  report.e_min = opts.e_min;
  report.e_max = opts.effective_e_max();
  for (const ir::StepGroup& group : desc.groups) {
    GroupReport gr;
    gr.name = group.name;
    gr.kind = ir::to_string(group.kind);
    gr.atomic = group.atomic;
    gr.theorem_site = group.theorem_site;
    gr.pattern = ir::to_string(group.pattern, desc);
    gr.bound = bound_group(desc, group);
    if (group.kind == ir::GroupKind::read) {
      report.max_read_bound = std::max(report.max_read_bound,
                                       gr.bound.degree);
    } else if (group.kind == ir::GroupKind::write) {
      report.max_write_bound = std::max(report.max_write_bound,
                                        gr.bound.degree);
    }
    if (gr.bound.method == "trivial") {
      report.all_proved = false;
    }
    report.groups.push_back(std::move(gr));
  }
  return report;
}

ProveReport prove(const std::vector<std::string>& engines,
                  const ProveOptions& opts) {
  ProveReport report;
  for (const std::string& name : engines) {
    report.engines.push_back(prove_engine(name, opts));
  }

  // Findings: unproved groups and model divergences.
  for (const EngineReport& e : report.engines) {
    for (std::size_t g = 0; g < e.groups.size(); ++g) {
      const GroupReport& gr = e.groups[g];
      if (gr.bound.method == "trivial") {
        Diagnostic d;
        d.severity = Severity::error;
        d.rule = Rule::unproved_access;
        d.message = e.engine + " group '" + gr.name +
                    "': no proof method bounded this pattern (trivial bound " +
                    std::to_string(gr.bound.degree) + ")";
        report.findings.push_back(std::move(d));
      }
      if (!gr.bound.divergence.empty()) {
        Diagnostic d;
        d.severity = Severity::error;
        d.rule = Rule::symbolic_divergence;
        d.message = e.engine + " group '" + gr.name +
                    "': " + gr.bound.divergence;
        report.findings.push_back(std::move(d));
      }
    }
  }

  // Theorem cross-check instances over every co-prime E in range (the
  // constructions need 3 <= E < w and odd E; even E are skipped by the
  // co-primality filter since w is a power of two).
  const u32 e_max = std::min(opts.effective_e_max(), opts.w - 1);
  if (opts.e_min <= e_max) {
    report.theorems = check_theorems(opts.w, opts.e_min, e_max);
  }
  for (const TheoremInstance& t : report.theorems) {
    if (!t.ok) {
      Diagnostic d;
      d.severity = Severity::error;
      d.rule = Rule::theorem_divergence;
      d.message = "theorem instance (w=" + std::to_string(t.w) +
                  ", E=" + std::to_string(t.E) + ", " +
                  (t.small ? "Theorem 3" : "Theorem 9") + "): " + t.note;
      report.findings.push_back(std::move(d));
    }
  }

  report.digest = fnv1a(json_body(report));
  return report;
}

void render_text(std::ostream& os, const ProveReport& report) {
  for (const EngineReport& e : report.engines) {
    os << "engine " << e.engine << " (w=" << e.w << " b=" << e.b
       << " pad=" << e.pad << " layout=" << gpusim::to_string(e.layout)
       << " E=" << e.e_min << ".." << e.e_max << ")\n";
    for (const GroupReport& gr : e.groups) {
      if (gr.bound.method == "none") {
        continue;  // barriers and fills carry no bound
      }
      os << "  " << gr.kind << (gr.atomic ? " atomic" : "") << " '"
         << gr.name << "'";
      if (gr.theorem_site) {
        os << " [theorem site]";
      }
      os << ": degree <= " << gr.bound.degree
         << (gr.bound.free ? " (conflict-free)" : "")
         << (gr.bound.exact ? " (exact)" : "") << " via " << gr.bound.method
         << "\n    " << gr.pattern << "\n";
    }
    os << "  max step bound: read " << e.max_read_bound << ", write "
       << e.max_write_bound << "\n";
  }
  if (!report.theorems.empty()) {
    os << "theorem instances (w=" << report.theorems.front().w << "):\n";
    for (const TheoremInstance& t : report.theorems) {
      os << "  E=" << t.E << " " << (t.small ? "Thm3" : "Thm9")
         << ": aligned closed=" << t.aligned_closed
         << " static=" << t.aligned_static << " replay=" << t.aligned_dynamic
         << ", step degree " << t.max_step_degree << " <= bound "
         << t.step_bound << (t.ok ? " ok" : " FAIL") << "\n";
    }
  }
  for (const Diagnostic& d : report.findings) {
    analyze::render_text(os, d);
  }
  os << (report.findings.empty() ? "clean" : "findings: ")
     << (report.findings.empty() ? std::string()
                                 : std::to_string(report.findings.size()))
     << " [digest fnv1a:" << render_hex(report.digest) << "]\n";
}

void render_json(std::ostream& os, const ProveReport& report) {
  os << json_body(report) << ",\"digest\":\"fnv1a:"
     << render_hex(report.digest) << "\"}\n";
}

void append_findings(ProveReport& report, std::vector<Diagnostic> findings) {
  for (Diagnostic& d : findings) {
    report.findings.push_back(std::move(d));
  }
  report.digest = fnv1a(json_body(report));
}

std::vector<Diagnostic> certify_trace(const gpusim::Trace& trace,
                                      const EngineReport& report) {
  std::vector<Diagnostic> findings;
  const gpusim::SharedLayout layout{report.w, report.pad, report.layout};
  WCM_EXPECTS(trace.warp_size == report.w,
              "trace warp size does not match the proved shape");
  const std::vector<dmm::StepCost> costs =
      gpusim::replay_step_costs(trace, layout);
  WCM_EXPECTS(costs.size() == trace.steps.size(),
              "replay must price every step");
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const gpusim::TraceStep& step = trace.steps[i];
    if (!step.is_access()) {
      continue;
    }
    const u64 bound =
        step.is_write() ? report.max_write_bound : report.max_read_bound;
    const u64 degree = costs[i].max_bank_degree;
    if (degree > bound) {
      Diagnostic d;
      d.severity = Severity::error;
      d.rule = Rule::symbolic_divergence;
      d.step = i;
      for (const auto& [lane, addr] : step.accesses) {
        d.lanes.push_back(lane);
      }
      std::sort(d.lanes.begin(), d.lanes.end());
      std::ostringstream msg;
      msg << report.engine << ": replayed worst-bank degree " << degree
          << " exceeds the symbolic " << (step.is_write() ? "write" : "read")
          << " bound " << bound << " (pad " << report.pad << ", layout "
          << gpusim::to_string(report.layout) << ")";
      d.message = msg.str();
      findings.push_back(std::move(d));
    }
  }
  return findings;
}

}  // namespace wcm::analyze::symbolic
