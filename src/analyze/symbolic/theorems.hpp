#pragma once
// Theorem cross-check layer: instantiates the symbolic prover's derived
// bounds at the paper's worst-case constructions and asserts they reproduce
// the closed forms — Theorem 3's beta_2 = E (E^2 aligned elements for
// co-prime E < w/2) and Theorem 9's (E^2 + E + 2Er - r^2 - r) / 2 count
// for w/2 < E < w, r = w - E.
//
// Each instance triangulates one (w, E) three independent ways:
//   closed  — the core/numbers.cpp closed form (re-derived inline here so a
//             typo in numbers.cpp cannot self-certify);
//   static  — a residue-class recount over the construction that never
//             replays an access: a thread's run of n contiguous elements
//             starting at bank c, read first at iteration j0, is aligned
//             all-or-nothing iff c ≡ s + j0 (mod w);
//   dynamic — core/assignment.cpp's evaluate_warp DMM replay.
// plus the symbolic side: the replayed per-step worst-bank degree must
// never exceed the merge-read window bound the prover derived for the
// kernel's theorem site.  Any disagreement is a conflict-model bug and is
// surfaced as a theorem-divergence finding.

#include <string>
#include <vector>

#include "util/math.hpp"

namespace wcm::analyze::symbolic {

/// One machine-checked instance of Theorem 3 (small E) or Theorem 9
/// (large E) at a concrete co-prime (w, E).
struct TheoremInstance {
  u32 w = 0;
  u32 E = 0;
  bool small = false;       ///< Theorem 3 regime (E < w/2); else Theorem 9
  u64 aligned_closed = 0;   ///< closed form re-derived inline
  u64 aligned_static = 0;   ///< independent residue-class recount
  u64 aligned_dynamic = 0;  ///< evaluate_warp DMM replay
  u64 step_bound = 0;       ///< symbolic merge-read bound, instantiated
  u64 max_step_degree = 0;  ///< replayed per-step worst-bank degree
  bool ok = false;
  std::string note;  ///< non-empty explanation when !ok
};

/// Cross-check one co-prime (w, E) pair; contract-checks the regime.
[[nodiscard]] TheoremInstance check_theorem(u32 w, u32 E);

/// Sweep every co-prime odd E with max(3, e_min) <= E <= min(e_max, w-1).
[[nodiscard]] std::vector<TheoremInstance> check_theorems(u32 w, u32 e_min,
                                                          u32 e_max);

}  // namespace wcm::analyze::symbolic
